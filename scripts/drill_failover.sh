#!/bin/sh
# drill_failover.sh — the coordinator-failover drill.
#
# Runs the same transmission sweep twice: once serial, once distributed
# with the coordinator SIGKILLed mid-sweep and restarted with -resume on
# the same port (and a downgraded JSON wire, proving mixed-format
# rejoins). Three externally launched workers carry a -rejoin-window
# and must survive the crash: detect the hangup, re-dial the address,
# re-handshake under the journal-pinned run ID, and finish the sweep
# under the restarted coordinator's bumped epoch.
#
# The drill passes only if, despite the coordinator dying with leases in
# flight:
#   - the resumed run's observables are byte-identical to the serial run,
#   - the merged flop total is exactly the serial count,
#   - the journal holds exactly one record per task (no holes from the
#     crash, no duplicates from stale epoch-1 results) at epoch >= 2,
#   - every worker exits 0 and its stderr shows the rejoin happened,
#   - the restart restored a strictly partial journal (the kill really
#     landed mid-sweep).
#
# Usage: scripts/drill_failover.sh [path-to-omen] [path-to-journalcheck]
set -eu

OMEN=${1:-./bin/omen}
JCHECK=${2:-./bin/journalcheck}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# A sweep big enough (~4s serial) that the kill lands mid-run.
ARGS="-device agnr7 -cellsx 40 -ne 3000 -emin -2.5 -emax 2.5"
TOTAL=3000
JOURNAL="$WORKDIR/failover.journal"
PORT=$((22000 + $$ % 20000))

echo "drill-failover: serial reference run"
# shellcheck disable=SC2086
"$OMEN" $ARGS > "$WORKDIR/serial.txt"

echo "drill-failover: coordinator #1 on 127.0.0.1:$PORT (journal + 3 external rejoin-capable workers)"
# shellcheck disable=SC2086
"$OMEN" $ARGS -serve "127.0.0.1:$PORT" -workers 0 \
	-checkpoint "$JOURNAL" -lease-timeout 2s \
	> "$WORKDIR/coord1.txt" 2> "$WORKDIR/coord1.err" &
COORD1=$!

# Workers dial the fixed port (DialRetry tolerates launch order) and are
# width-1 pools so the merged flop accounting stays exact.
WPIDS=""
for i in 1 2 3; do
	# shellcheck disable=SC2086
	"$OMEN" $ARGS -worker "127.0.0.1:$PORT" -workers 1 -rejoin-window 45s \
		2> "$WORKDIR/worker$i.err" &
	WPIDS="$WPIDS $!"
done

sleep 1.0
echo "drill-failover: SIGKILL coordinator pid $COORD1 mid-sweep"
kill -9 "$COORD1" 2>/dev/null || true
wait "$COORD1" 2>/dev/null || true

# The restart also flips the wire format: the workers negotiated the
# binary wire with coordinator #1, but #2 only offers JSON, so on rejoin
# every worker must renegotiate down to JSON frames mid-job. The wire is
# per-session and unhashed, so the spec hash pinned in the journal still
# matches — a mixed-format failover has to be bitwise invisible.
echo "drill-failover: restarting coordinator with -resume -wire json on the same port"
# shellcheck disable=SC2086
"$OMEN" $ARGS -serve "127.0.0.1:$PORT" -workers 0 \
	-checkpoint "$JOURNAL" -resume -wire json -lease-timeout 2s \
	> "$WORKDIR/coord2.txt" 2> "$WORKDIR/coord2.err"

for pid in $WPIDS; do
	if ! wait "$pid"; then
		echo "drill-failover: FAIL — a worker exited non-zero after the failover" >&2
		cat "$WORKDIR"/worker*.err >&2
		exit 1
	fi
done

if ! grep -q 'epoch 2' "$WORKDIR/coord2.err"; then
	echo "drill-failover: FAIL — restarted coordinator did not announce epoch 2:" >&2
	cat "$WORKDIR/coord2.err" >&2
	exit 1
fi
if ! grep -qi 'rejoin' "$WORKDIR/worker1.err" "$WORKDIR/worker2.err" "$WORKDIR/worker3.err"; then
	echo "drill-failover: FAIL — no worker logged a rejoin; did the kill land mid-sweep?" >&2
	cat "$WORKDIR"/worker*.err >&2
	exit 1
fi

# The restart must have found a strictly partial journal: some tasks
# committed by incarnation #1 (the fsync journal did its job), some left
# for incarnation #2 (the kill really interrupted the sweep).
RESUMED=$(sed -n 's|^# resumed: \([0-9]*\)/.*|\1|p' "$WORKDIR/coord2.txt")
if [ -z "$RESUMED" ] || [ "$RESUMED" -lt 1 ] || [ "$RESUMED" -ge "$TOTAL" ]; then
	echo "drill-failover: FAIL — expected a strictly partial resume, got '# resumed: ${RESUMED:-none}/$TOTAL'" >&2
	grep '^#' "$WORKDIR/coord2.txt" >&2 || true
	exit 1
fi

grep -v '^#' "$WORKDIR/serial.txt" > "$WORKDIR/serial_obs.txt"
grep -v '^#' "$WORKDIR/coord2.txt" > "$WORKDIR/coord2_obs.txt"
if ! diff "$WORKDIR/serial_obs.txt" "$WORKDIR/coord2_obs.txt" > /dev/null; then
	echo "drill-failover: FAIL — observables differ between serial and failed-over runs" >&2
	diff "$WORKDIR/serial_obs.txt" "$WORKDIR/coord2_obs.txt" | head -20 >&2
	exit 1
fi

SERIAL_FLOPS=$(grep '^# flops' "$WORKDIR/serial.txt")
DIST_FLOPS=$(grep '^# flops' "$WORKDIR/coord2.txt")
if [ "$SERIAL_FLOPS" != "$DIST_FLOPS" ]; then
	echo "drill-failover: FAIL — flop counts differ: serial '$SERIAL_FLOPS' vs failed-over '$DIST_FLOPS'" >&2
	exit 1
fi

# Exactly-once: one digest-valid record per task, under a bumped epoch.
if ! "$JCHECK" -journal "$JOURNAL" -total "$TOTAL" -min-epoch 2; then
	echo "drill-failover: FAIL — journal audit failed" >&2
	exit 1
fi

grep '^# cluster' "$WORKDIR/coord2.txt"
echo "drill-failover: PASS — resumed $RESUMED/$TOTAL, observables byte-identical, $SERIAL_FLOPS exact across the coordinator kill"
