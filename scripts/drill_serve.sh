#!/bin/sh
# drill_serve.sh — the simulation-service drill.
#
# Boots the omend daemon with 2 self-spawned workers per job and drives
# it over HTTP through the failure modes the service is sold on:
#
#   1. A job survives a SIGKILLed worker mid-run and its result is
#      byte-identical to the serial engine with the exact same merged
#      flop count.
#   2. Re-submitting a completed spec is a journal replay: the job comes
#      back "replayed" with every task restored and the exact journaled
#      flop total — zero new solves.
#   3. SIGTERM mid-job drains gracefully (exit 0, job lands "drained"),
#      and re-submitting the spec to a restarted daemon over the same
#      data directory completes the remainder: byte-identical
#      observables, exact flops, and a journal holding exactly one
#      record per task at epoch >= 2 (proof of the resume).
#
# Usage: scripts/drill_serve.sh [omend] [omen] [journalcheck]
set -eu

OMEND=${1:-./bin/omend}
OMEN=${2:-./bin/omen}
JOURNALCHECK=${3:-./bin/journalcheck}
WORKDIR=$(mktemp -d)
DATA="$WORKDIR/data"
DAEMON=""
cleanup() {
	[ -n "$DAEMON" ] && kill "$DAEMON" 2>/dev/null || true
	rm -rf "$WORKDIR"
}
trap cleanup EXIT

PORT=$((20000 + $$ % 20000))
BASE="http://127.0.0.1:$PORT"

# Two distinct sweeps (different grids, so different job IDs). The lease
# timeout keeps re-dispatch after the worker kill fast; exec knobs are
# not part of the content hash, so the serial references below (default
# exec) are the same jobs.
SPEC1='{"device":{"name":"agnr7","cellsX":40},"grid":{"eMin":-2.5,"eMax":2.5,"nE":3600,"nK":1},"exec":{"leaseTimeout":"2s"}}'
SPEC2='{"device":{"name":"agnr7","cellsX":40},"grid":{"eMin":-2.5,"eMax":2.4,"nE":2000,"nK":1},"exec":{"leaseTimeout":"2s"}}'
NE1=3600
NE2=2000

echo "drill-serve: serial reference runs"
"$OMEN" -device agnr7 -cellsx 40 -ne 3600 -emin -2.5 -emax 2.5 > "$WORKDIR/serial1.txt"
"$OMEN" -device agnr7 -cellsx 40 -ne 2000 -emin -2.5 -emax 2.4 > "$WORKDIR/serial2.txt"

start_daemon() {
	"$OMEND" -addr "127.0.0.1:$PORT" -data "$DATA" -default-workers 2 \
		2>> "$WORKDIR/omend.err" &
	DAEMON=$!
	for _ in $(seq 1 50); do
		curl -sf "$BASE/healthz" > /dev/null 2>&1 && return 0
		sleep 0.2
	done
	echo "drill-serve: FAIL — daemon never became healthy" >&2
	cat "$WORKDIR/omend.err" >&2
	exit 1
}

# submit SPEC -> job id on stdout
submit() {
	curl -sf -X POST "$BASE/v1/jobs" -d "$1" \
		| sed -n 's/.*"id": "\([0-9a-f]*\)".*/\1/p'
}

# field ID NAME -> raw value of "NAME" in the job's status JSON
field() {
	curl -sf "$BASE/v1/jobs/$1" | sed -n "s/^  \"$2\": \(.*\)/\1/p" | sed 's/,$//'
}

# wait_state ID STATE [tries]
wait_state() {
	for _ in $(seq 1 "${3:-600}"); do
		ST=$(field "$1" state)
		case "$ST" in
		"\"$2\"") return 0 ;;
		'"failed"' | '"canceled"')
			echo "drill-serve: FAIL — job $1 landed $ST waiting for $2" >&2
			curl -s "$BASE/v1/jobs/$1" >&2
			exit 1
			;;
		esac
		sleep 0.2
	done
	echo "drill-serve: FAIL — job $1 stuck (last state $ST, wanted $2)" >&2
	exit 1
}

# check_result ID SERIAL_FILE LABEL — byte-identical observables + exact flops
check_result() {
	curl -sf "$BASE/v1/jobs/$1/result" > "$WORKDIR/$3.txt"
	grep -v '^#' "$WORKDIR/$3.txt" > "$WORKDIR/$3_obs.txt"
	grep -v '^#' "$2" > "$WORKDIR/$3_ref.txt"
	if ! diff "$WORKDIR/$3_ref.txt" "$WORKDIR/$3_obs.txt" > /dev/null; then
		echo "drill-serve: FAIL — $3 observables differ from serial" >&2
		diff "$WORKDIR/$3_ref.txt" "$WORKDIR/$3_obs.txt" | head -20 >&2
		exit 1
	fi
	REF_FLOPS=$(grep '^# flops' "$2")
	GOT_FLOPS=$(grep '^# flops' "$WORKDIR/$3.txt")
	if [ "$REF_FLOPS" != "$GOT_FLOPS" ]; then
		echo "drill-serve: FAIL — $3 flops '$GOT_FLOPS' != serial '$REF_FLOPS'" >&2
		exit 1
	fi
}

echo "drill-serve: starting daemon on $BASE"
start_daemon

# --- Leg 1: worker-kill job -------------------------------------------
ID1=$(submit "$SPEC1")
[ -n "$ID1" ] || { echo "drill-serve: FAIL — submit returned no job id" >&2; exit 1; }
echo "drill-serve: job 1 is $ID1 — streaming, then SIGKILLing a worker"
curl -sN --max-time 600 "$BASE/v1/jobs/$ID1/stream" > "$WORKDIR/stream1.txt" &
STREAM=$!

wait_state "$ID1" running 100
sleep 1.2
VICTIM=$(pgrep -f "omend -worker" | head -1 || true)
if [ -z "$VICTIM" ]; then
	echo "drill-serve: FAIL — no spawned worker process found to kill" >&2
	exit 1
fi
echo "drill-serve: SIGKILL worker pid $VICTIM"
kill -9 "$VICTIM" 2>/dev/null || true

wait_state "$ID1" done
check_result "$ID1" "$WORKDIR/serial1.txt" job1
if ! grep -q '^# cluster: 2 workers' "$WORKDIR/job1.txt"; then
	echo "drill-serve: FAIL — expected 2 workers in the cluster summary:" >&2
	grep '^# cluster' "$WORKDIR/job1.txt" >&2 || true
	exit 1
fi
grep '^# cluster' "$WORKDIR/job1.txt"

wait "$STREAM" || { echo "drill-serve: FAIL — stream curl exited non-zero" >&2; exit 1; }
NPOINTS=$(grep -c '^event: point' "$WORKDIR/stream1.txt" || true)
if [ "$NPOINTS" -ne "$NE1" ] || ! grep -q '^event: done' "$WORKDIR/stream1.txt"; then
	echo "drill-serve: FAIL — stream carried $NPOINTS/$NE1 points (done event: $(grep -c '^event: done' "$WORKDIR/stream1.txt"))" >&2
	exit 1
fi
echo "drill-serve: PASS — worker-kill job byte-identical, flops exact, $NPOINTS points streamed"

# --- Leg 2: replay of a completed spec --------------------------------
ID1B=$(submit "$SPEC1")
if [ "$ID1B" != "$ID1" ]; then
	echo "drill-serve: FAIL — identical spec got a different job id ($ID1B vs $ID1)" >&2
	exit 1
fi
echo "drill-serve: restarting daemon to force a replay from the journal"
kill -TERM "$DAEMON" && wait "$DAEMON" || true
start_daemon
ID1C=$(submit "$SPEC1")
wait_state "$ID1C" done
if [ "$(field "$ID1C" replayed)" != "true" ]; then
	echo "drill-serve: FAIL — completed spec was not replayed from its journal:" >&2
	curl -s "$BASE/v1/jobs/$ID1C" >&2
	exit 1
fi
check_result "$ID1C" "$WORKDIR/serial1.txt" replay1
echo "drill-serve: PASS — re-submitted spec replayed from journal (zero new solves), result and flops exact"

# --- Leg 3: SIGTERM drain mid-job, resume on restart ------------------
ID2=$(submit "$SPEC2")
echo "drill-serve: job 2 is $ID2 — SIGTERM mid-run"
wait_state "$ID2" running 100
# Let some results commit so the resume has something to restore.
for _ in $(seq 1 200); do
	DONE=$(field "$ID2" done)
	[ "${DONE:-0}" -ge 50 ] && break
	sleep 0.2
done
kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
	echo "drill-serve: FAIL — daemon exited non-zero on SIGTERM" >&2
	cat "$WORKDIR/omend.err" >&2
	exit 1
fi
DAEMON=""

echo "drill-serve: daemon restarted — re-submitting the drained spec"
start_daemon
ID2B=$(submit "$SPEC2")
[ "$ID2B" = "$ID2" ] || { echo "drill-serve: FAIL — drained spec changed id" >&2; exit 1; }
wait_state "$ID2B" done
RESTORED=$(field "$ID2B" restored)
if [ "${RESTORED:-0}" -lt 1 ]; then
	echo "drill-serve: FAIL — resume restored nothing (journal lost?):" >&2
	curl -s "$BASE/v1/jobs/$ID2B" >&2
	exit 1
fi
check_result "$ID2B" "$WORKDIR/serial2.txt" job2
"$JOURNALCHECK" -journal "$DATA/$ID2.journal" -total "$NE2" -min-epoch 2
echo "drill-serve: PASS — drained job resumed ($RESTORED tasks restored), result and flops exact"

kill -TERM "$DAEMON" && wait "$DAEMON" || true
DAEMON=""
echo "drill-serve: PASS — all legs green"
