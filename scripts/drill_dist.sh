#!/bin/sh
# drill_dist.sh — the distributed kill drill.
#
# Runs the same transmission sweep twice under 10% deterministic fault
# injection: once serial, once distributed (a coordinator that
# self-spawns 3 workers plus one externally launched victim worker that
# is SIGKILLed mid-run). The drill passes only if the distributed run,
# despite losing a worker, produces byte-identical observables AND the
# exact same merged flop count as the serial run.
#
# Two negative drills ride along, exercising the run-spec content hash:
# a worker launched with a perturbed spec (same grid dimensions, so only
# the hash can catch it) must be rejected at the handshake, and a
# -resume against a journal written by a different spec must exit
# non-zero.
#
# Usage: scripts/drill_dist.sh [path-to-omen-binary]
set -eu

OMEN=${1:-./bin/omen}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# A sweep big enough (~4s serial) that the kill lands mid-run.
ARGS="-device agnr7 -cellsx 40 -ne 3000 -emin -2.5 -emax 2.5"
FAULTS="-fault-rate 0.1 -max-retries 3 -fault-seed 7"

echo "drill-dist: serial reference run"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS > "$WORKDIR/serial.txt"

PORT=$((20000 + $$ % 20000))
echo "drill-dist: distributed run on 127.0.0.1:$PORT (3 spawned workers + 1 victim)"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -serve "127.0.0.1:$PORT" -workers 3 -lease-timeout 2s \
	> "$WORKDIR/dist.txt" 2> "$WORKDIR/dist.err" &
COORD=$!

# The victim dials the same fixed port; DialRetry tolerates launch order.
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -worker "127.0.0.1:$PORT" -workers 1 \
	2> "$WORKDIR/victim.err" &
VICTIM=$!

sleep 0.8
echo "drill-dist: SIGKILL worker pid $VICTIM"
kill -9 "$VICTIM" 2>/dev/null || true

# Negative drill, while the coordinator is still up: a worker whose spec
# was perturbed by one flag (-emin -2.4 instead of -2.5 — same task-grid
# dimensions, so the pre-spec dims check cannot catch it) must be turned
# away at the handshake with a spec-mismatch error.
echo "drill-dist: launching spec-mismatched worker (must be rejected)"
# shellcheck disable=SC2086
if "$OMEN" $ARGS $FAULTS -emin -2.4 -worker "127.0.0.1:$PORT" -workers 1 \
	> /dev/null 2> "$WORKDIR/mismatch.err"; then
	echo "drill-dist: FAIL — spec-mismatched worker was accepted" >&2
	exit 1
fi
if ! grep -qi 'spec' "$WORKDIR/mismatch.err"; then
	echo "drill-dist: FAIL — mismatched worker died without naming the spec mismatch:" >&2
	cat "$WORKDIR/mismatch.err" >&2
	exit 1
fi

if ! wait "$COORD"; then
	echo "drill-dist: FAIL — coordinator exited non-zero" >&2
	cat "$WORKDIR/dist.err" >&2
	exit 1
fi
wait "$VICTIM" 2>/dev/null || true

grep -v '^#' "$WORKDIR/serial.txt" > "$WORKDIR/serial_obs.txt"
grep -v '^#' "$WORKDIR/dist.txt" > "$WORKDIR/dist_obs.txt"
if ! diff "$WORKDIR/serial_obs.txt" "$WORKDIR/dist_obs.txt" > /dev/null; then
	echo "drill-dist: FAIL — observables differ between serial and distributed runs" >&2
	diff "$WORKDIR/serial_obs.txt" "$WORKDIR/dist_obs.txt" | head -20 >&2
	exit 1
fi

SERIAL_FLOPS=$(grep '^# flops' "$WORKDIR/serial.txt")
DIST_FLOPS=$(grep '^# flops' "$WORKDIR/dist.txt")
if [ "$SERIAL_FLOPS" != "$DIST_FLOPS" ]; then
	echo "drill-dist: FAIL — flop counts differ: serial '$SERIAL_FLOPS' vs distributed '$DIST_FLOPS'" >&2
	exit 1
fi

grep '^# cluster' "$WORKDIR/dist.txt"
echo "drill-dist: PASS — observables byte-identical, $SERIAL_FLOPS exact across the kill"

# Batched-solve leg: the same sweep with -solve-batch 8 — serial and
# distributed — must reproduce the unbatched serial reference byte for
# byte with the exact same flop total. Batching is an executor knob;
# any drift here means the batched kernels stopped being the same
# arithmetic (DESIGN.md §14).
echo "drill-dist: batched serial run (-solve-batch 8)"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -solve-batch 8 > "$WORKDIR/batched.txt"
BPORT=$((PORT + 1))
echo "drill-dist: batched distributed run on 127.0.0.1:$BPORT (3 spawned workers)"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -solve-batch 8 -serve "127.0.0.1:$BPORT" -workers 3 \
	> "$WORKDIR/batched_dist.txt" 2> "$WORKDIR/batched_dist.err"
for RUN in batched batched_dist; do
	grep -v '^#' "$WORKDIR/$RUN.txt" > "$WORKDIR/${RUN}_obs.txt"
	if ! diff "$WORKDIR/serial_obs.txt" "$WORKDIR/${RUN}_obs.txt" > /dev/null; then
		echo "drill-dist: FAIL — $RUN observables differ from the unbatched serial run" >&2
		diff "$WORKDIR/serial_obs.txt" "$WORKDIR/${RUN}_obs.txt" | head -20 >&2
		exit 1
	fi
	RUN_FLOPS=$(grep '^# flops' "$WORKDIR/$RUN.txt")
	if [ "$SERIAL_FLOPS" != "$RUN_FLOPS" ]; then
		echo "drill-dist: FAIL — $RUN flop count differs: '$RUN_FLOPS' vs '$SERIAL_FLOPS'" >&2
		exit 1
	fi
done
if ! grep -q '^# batch' "$WORKDIR/batched.txt"; then
	echo "drill-dist: FAIL — batched run printed no # batch counters (batching never engaged)" >&2
	exit 1
fi
echo "drill-dist: PASS — -solve-batch 8 byte-identical with exact flops, serial and distributed"

# Sharded work-stealing leg: the same sweep on 2 coordinator shards with
# the v3-compatible JSON wire. -shard-hold 60s freezes every shard-0-homed
# worker for longer than the run, so the shard-1 worker must drain its own
# half of the grid and then steal the entirety of shard 0's — the drill
# proves stealing is load-bearing, not decorative. Sharding and the wire
# format are pure scheduling/transport knobs: observables must stay
# byte-identical to the serial reference with the exact flop total
# (DESIGN.md §16).
SPORT=$((PORT + 2))
echo "drill-dist: sharded run on 127.0.0.1:$SPORT (-shards 2 -shard-hold 60s -wire json)"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -serve "127.0.0.1:$SPORT" -workers 3 \
	-shards 2 -shard-hold 60s -wire json \
	> "$WORKDIR/shard.txt" 2> "$WORKDIR/shard.err"
grep -v '^#' "$WORKDIR/shard.txt" > "$WORKDIR/shard_obs.txt"
if ! diff "$WORKDIR/serial_obs.txt" "$WORKDIR/shard_obs.txt" > /dev/null; then
	echo "drill-dist: FAIL — sharded observables differ from the serial run" >&2
	diff "$WORKDIR/serial_obs.txt" "$WORKDIR/shard_obs.txt" | head -20 >&2
	exit 1
fi
SHARD_FLOPS=$(grep '^# flops' "$WORKDIR/shard.txt")
if [ "$SERIAL_FLOPS" != "$SHARD_FLOPS" ]; then
	echo "drill-dist: FAIL — sharded flop count differs: '$SHARD_FLOPS' vs '$SERIAL_FLOPS'" >&2
	exit 1
fi
STEALS=$(sed -n 's|^# shards: 2, steals: \([0-9][0-9]*\)$|\1|p' "$WORKDIR/shard.txt")
if [ -z "$STEALS" ] || [ "$STEALS" -lt 1 ]; then
	echo "drill-dist: FAIL — sharded run reported no steals (want >= 1):" >&2
	grep '^#' "$WORKDIR/shard.txt" >&2 || true
	exit 1
fi
echo "drill-dist: PASS — 2-shard run byte-identical with exact flops, $STEALS batches stolen across shards"

# Negative drill: resuming a checkpoint journal with a different spec
# must fail loudly; resuming with the same spec must succeed.
SMALL="-device agnr7 -cellsx 6 -ne 64 -emin -1 -emax 1"
JOURNAL="$WORKDIR/resume.journal"
echo "drill-dist: foreign-spec resume drill"
# shellcheck disable=SC2086
"$OMEN" $SMALL -checkpoint "$JOURNAL" > /dev/null
# shellcheck disable=SC2086
if "$OMEN" $SMALL -emin -1.1 -checkpoint "$JOURNAL" -resume \
	> /dev/null 2> "$WORKDIR/resume.err"; then
	echo "drill-dist: FAIL — resume with a foreign spec was accepted" >&2
	exit 1
fi
if ! grep -q 'different run spec' "$WORKDIR/resume.err"; then
	echo "drill-dist: FAIL — foreign-spec resume died for the wrong reason:" >&2
	cat "$WORKDIR/resume.err" >&2
	exit 1
fi
# shellcheck disable=SC2086
"$OMEN" $SMALL -checkpoint "$JOURNAL" -resume > "$WORKDIR/resume.txt"
if ! grep -q '^# resumed: 64/64' "$WORKDIR/resume.txt"; then
	echo "drill-dist: FAIL — same-spec resume did not restore all tasks" >&2
	grep '^#' "$WORKDIR/resume.txt" >&2
	exit 1
fi
echo "drill-dist: PASS — mismatched worker rejected at handshake, foreign-spec resume refused, same-spec resume restored 64/64"
