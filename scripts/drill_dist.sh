#!/bin/sh
# drill_dist.sh — the distributed kill drill.
#
# Runs the same transmission sweep twice under 10% deterministic fault
# injection: once serial, once distributed (a coordinator that
# self-spawns 3 workers plus one externally launched victim worker that
# is SIGKILLed mid-run). The drill passes only if the distributed run,
# despite losing a worker, produces byte-identical observables AND the
# exact same merged flop count as the serial run.
#
# Usage: scripts/drill_dist.sh [path-to-omen-binary]
set -eu

OMEN=${1:-./bin/omen}
WORKDIR=$(mktemp -d)
trap 'rm -rf "$WORKDIR"' EXIT

# A sweep big enough (~4s serial) that the kill lands mid-run.
ARGS="-device agnr7 -cellsx 40 -ne 3000 -emin -2.5 -emax 2.5"
FAULTS="-fault-rate 0.1 -max-retries 3 -fault-seed 7"

echo "drill-dist: serial reference run"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS > "$WORKDIR/serial.txt"

PORT=$((20000 + $$ % 20000))
echo "drill-dist: distributed run on 127.0.0.1:$PORT (3 spawned workers + 1 victim)"
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -serve "127.0.0.1:$PORT" -workers 3 -lease-timeout 2s \
	> "$WORKDIR/dist.txt" 2> "$WORKDIR/dist.err" &
COORD=$!

# The victim dials the same fixed port; DialRetry tolerates launch order.
# shellcheck disable=SC2086
"$OMEN" $ARGS $FAULTS -worker "127.0.0.1:$PORT" -workers 1 \
	2> "$WORKDIR/victim.err" &
VICTIM=$!

sleep 0.8
echo "drill-dist: SIGKILL worker pid $VICTIM"
kill -9 "$VICTIM" 2>/dev/null || true

if ! wait "$COORD"; then
	echo "drill-dist: FAIL — coordinator exited non-zero" >&2
	cat "$WORKDIR/dist.err" >&2
	exit 1
fi
wait "$VICTIM" 2>/dev/null || true

grep -v '^#' "$WORKDIR/serial.txt" > "$WORKDIR/serial_obs.txt"
grep -v '^#' "$WORKDIR/dist.txt" > "$WORKDIR/dist_obs.txt"
if ! diff "$WORKDIR/serial_obs.txt" "$WORKDIR/dist_obs.txt" > /dev/null; then
	echo "drill-dist: FAIL — observables differ between serial and distributed runs" >&2
	diff "$WORKDIR/serial_obs.txt" "$WORKDIR/dist_obs.txt" | head -20 >&2
	exit 1
fi

SERIAL_FLOPS=$(grep '^# flops' "$WORKDIR/serial.txt")
DIST_FLOPS=$(grep '^# flops' "$WORKDIR/dist.txt")
if [ "$SERIAL_FLOPS" != "$DIST_FLOPS" ]; then
	echo "drill-dist: FAIL — flop counts differ: serial '$SERIAL_FLOPS' vs distributed '$DIST_FLOPS'" >&2
	exit 1
fi

grep '^# cluster' "$WORKDIR/dist.txt"
echo "drill-dist: PASS — observables byte-identical, $SERIAL_FLOPS exact across the kill"
