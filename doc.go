// Package repro is a from-scratch Go reproduction of the SC11 paper
// "Atomistic nanoelectronic device engineering with sustained performances
// up to 1.44 PFlop/s" (Luisier, Boykin, Klimeck, Fichtner): an atomistic
// quantum-transport device simulator in the OMEN tradition — nearest-
// neighbor tight-binding Hamiltonians up to sp3d5s* with spin-orbit
// coupling, wave-function and NEGF ballistic transport solvers, the
// SplitSolve spatial domain-decomposition linear solver, self-consistent
// Poisson coupling, and a four-level parallel execution model calibrated
// to reproduce the paper's petascale performance figures.
//
// The public API lives in internal/core (Simulator, FET); the benchmark
// harness in bench_test.go regenerates every table and figure of the
// reconstructed evaluation (see DESIGN.md and EXPERIMENTS.md).
package repro
