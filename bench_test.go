package repro

// The benchmark harness regenerates every table and figure of the
// reconstructed evaluation (DESIGN.md §4). Each benchmark prints the rows
// of its table/series once (on the first iteration) and reports the
// quantitative headline as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Shapes — who wins, by what factor,
// where crossovers fall — are the comparison target; see EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/alloy"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dephasing"
	"repro/internal/device"
	"repro/internal/lanczos"
	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/perf"
	"repro/internal/phonon"
	"repro/internal/sparse"
	"repro/internal/splitsolve"
	"repro/internal/tb"
	"repro/internal/transport"
	"repro/internal/wavefunction"
)

// printOnce guards the one-time table output of each benchmark.
var printOnce sync.Map

func once(key string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fn()
	}
}

// --- T1: device benchmark suite -------------------------------------------

func BenchmarkT1_DeviceSuite(b *testing.B) {
	suite := device.BenchmarkSuite()
	for i := 0; i < b.N; i++ {
		for _, d := range suite {
			built, err := d.Build()
			if err != nil {
				b.Fatal(err)
			}
			st := built.Stats(d.Name, d.Kind.String())
			once("T1:"+d.Name, func() {
				fmt.Printf("T1\t%-14s %-22s atoms=%-6d layers=%-3d orb/atom=%-3d order=%-7d block=%d\n",
					st.Name, st.Kind, st.Atoms, st.Layers, st.OrbitalsAtom, st.MatrixOrder, st.BlockSize)
			})
		}
	}
}

// --- T2: per-energy-point kernel cost, WF vs NEGF --------------------------

func benchWire(b *testing.B) *sparse.BlockTridiag {
	b.Helper()
	s, err := lattice.NewZincblendeNanowire(0.5431, 10, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkT2_KernelCost_WF(b *testing.B) {
	h := benchWire(b)
	sol, err := wavefunction.NewSolver(h, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	perf.ResetFlops()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sol.Solve(6.8, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fl := float64(perf.ResetFlops()) / float64(b.N)
	b.ReportMetric(fl, "flops/solve")
	once("T2wf", func() { fmt.Printf("T2\tWF solve  \t%.3g flops per (E,k) point\n", fl) })
}

func BenchmarkT2_KernelCost_NEGF(b *testing.B) {
	h := benchWire(b)
	sol, err := negf.NewSolver(h, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	perf.ResetFlops()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sol.Solve(6.8, false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	fl := float64(perf.ResetFlops()) / float64(b.N)
	b.ReportMetric(fl, "flops/solve")
	once("T2negf", func() { fmt.Printf("T2\tNEGF solve\t%.3g flops per (E,k) point\n", fl) })
}

// --- F1: transmission/DOS spectrum with cross-formalism validation ---------

func BenchmarkF1_Transmission(b *testing.B) {
	s, err := lattice.NewArmchairGNR(7, 10)
	if err != nil {
		b.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.Graphene(), tb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	wf, err := transport.NewEngine(h, transport.Config{Formalism: transport.WaveFunction})
	if err != nil {
		b.Fatal(err)
	}
	gf, err := transport.NewEngine(h, transport.Config{Formalism: transport.NEGFRGF})
	if err != nil {
		b.Fatal(err)
	}
	grid := transport.UniformGrid(-3, 3, 41)
	b.ReportAllocs()
	b.ResetTimer()
	var tw, tg []float64
	for i := 0; i < b.N; i++ {
		tw, err = wf.Transmissions(context.Background(), grid)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tg, err = gf.Transmissions(context.Background(), grid)
	if err != nil {
		b.Fatal(err)
	}
	var maxDev float64
	for i := range tw {
		if d := tw[i] - tg[i]; d > maxDev {
			maxDev = d
		} else if -d > maxDev {
			maxDev = -d
		}
	}
	b.ReportMetric(maxDev, "maxWFvsNEGF")
	once("F1", func() {
		fmt.Println("F1\t7-AGNR transmission spectrum (E, T_WF, T_NEGF):")
		for i := 0; i < len(grid); i += 5 {
			fmt.Printf("F1\t%+.2f\t%.6f\t%.6f\n", grid[i], tw[i], tg[i])
		}
		fmt.Printf("F1\tmax |T_WF − T_NEGF| = %.3g\n", maxDev)
	})
}

// --- F2: self-consistent Id-Vg of a gated device ----------------------------

func BenchmarkF2_IdVg(b *testing.B) {
	sim, err := core.New(device.Description{
		Name: "AGNR-7 FET", Kind: device.ArmchairGNR, CellsX: 20, CellsY: 7,
	}, transport.Config{})
	if err != nil {
		b.Fatal(err)
	}
	fet, err := core.NewFET(sim)
	if err != nil {
		b.Fatal(err)
	}
	fet.Lambda = 1.2
	fet.SourceDoping = 0.1
	fet.GateStart, fet.GateEnd = 0.3, 0.7
	fet.NE = 100
	vgs := []float64{-0.4, -0.1, 0.2, 0.5}
	b.ResetTimer()
	var points []core.IVPoint
	for i := 0; i < b.N; i++ {
		points, err = fet.GateSweep(context.Background(), vgs, 0.2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	onOff := points[len(points)-1].Current / points[0].Current
	b.ReportMetric(onOff, "on/off")
	if ss, err := core.SubthresholdSlope(points[0], points[1]); err == nil {
		b.ReportMetric(ss, "mV/dec")
	}
	once("F2", func() {
		fmt.Println("F2\tself-consistent Id-Vg at Vd = 0.2 V:")
		for _, p := range points {
			fmt.Printf("F2\tVg=%+.2f\tId=%.4e A\titers=%d\n", p.VGate, p.Current, p.Iterations)
		}
	})
}

// BenchmarkF1_GateSweep_CacheReuse is the headline number for the
// sweep-scale self-energy cache (DESIGN.md §11): one cold gate sweep per
// iteration, with every grid point of every SCF iteration and final
// current pass sharing a single shift-invariant cache. The hits/op and
// misses/op metrics pin the reuse ratio the speedup comes from; a fresh
// cache per iteration keeps iterations independent and cold-start honest.
func BenchmarkF1_GateSweep_CacheReuse(b *testing.B) {
	sim, err := core.New(device.Description{
		Name: "AGNR-7 FET", Kind: device.ArmchairGNR, CellsX: 12, CellsY: 7,
	}, transport.Config{})
	if err != nil {
		b.Fatal(err)
	}
	fet, err := core.NewFET(sim)
	if err != nil {
		b.Fatal(err)
	}
	fet.Lambda = 1.2
	fet.SourceDoping = 0.1
	fet.GateStart, fet.GateEnd = 0.3, 0.7
	fet.NE = 64
	vgs := []float64{-0.4, -0.1, 0.2, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	var hits, misses int64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fet.Cache = negf.NewSelfEnergyCache() // cold sweep, intra-sweep reuse only
		b.StartTimer()
		if _, err := fet.GateSweep(context.Background(), vgs, 0.2); err != nil {
			b.Fatal(err)
		}
		st := fet.Cache.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	b.StopTimer()
	b.ReportMetric(float64(hits)/float64(b.N), "hits/op")
	b.ReportMetric(float64(misses)/float64(b.N), "misses/op")
	once("F1cache", func() {
		fmt.Printf("F1\tgate sweep Σ-cache reuse: %.0f hits, %.0f misses per sweep (%.1f×)\n",
			float64(hits)/float64(b.N), float64(misses)/float64(b.N),
			float64(hits+misses)/float64(misses))
	})
}

// BenchmarkF1_BatchedSweep is the headline number for the batched
// per-energy solver (DESIGN.md §14): the same cold gate sweep run point
// by point and through width-8 interleaved batches. The batched sweep
// must reproduce the looped one bit for bit — batching is an executor
// choice, not an observable one — so the only thing allowed to differ is
// the wall time, reported as the gated speedup metric.
func BenchmarkF1_BatchedSweep(b *testing.B) {
	mkFET := func(batch int) *core.FET {
		sim, err := core.New(device.Description{
			Name: "AGNR-7 FET", Kind: device.ArmchairGNR, CellsX: 12, CellsY: 7,
		}, transport.Config{SolveBatch: batch})
		if err != nil {
			b.Fatal(err)
		}
		fet, err := core.NewFET(sim)
		if err != nil {
			b.Fatal(err)
		}
		fet.Lambda = 1.2
		fet.SourceDoping = 0.1
		fet.GateStart, fet.GateEnd = 0.3, 0.7
		fet.NE = 64
		return fet
	}
	looped, batched := mkFET(0), mkFET(2)
	vgs := []float64{-0.4, -0.1, 0.2, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	var tLoop, tBatch time.Duration
	var pl, pb []core.IVPoint
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		looped.Cache = negf.NewSelfEnergyCache() // cold sweeps, like F1cache
		batched.Cache = negf.NewSelfEnergyCache()
		b.StartTimer()
		var err error
		start := time.Now()
		pl, err = looped.GateSweep(context.Background(), vgs, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		tLoop += time.Since(start)
		start = time.Now()
		pb, err = batched.GateSweep(context.Background(), vgs, 0.2)
		if err != nil {
			b.Fatal(err)
		}
		tBatch += time.Since(start)
	}
	b.StopTimer()
	for i := range pl {
		if pl[i].Current != pb[i].Current {
			b.Fatalf("batched sweep diverged at Vg=%+.2f: Id=%g, looped Id=%g",
				pb[i].VGate, pb[i].Current, pl[i].Current)
		}
	}
	speedup := tLoop.Seconds() / tBatch.Seconds()
	b.ReportMetric(speedup, "speedup")
	once("F1batch", func() {
		fmt.Printf("F1\tbatched gate sweep: %.3fs looped, %.3fs batched (%.2f× speedup, bitwise-identical)\n",
			tLoop.Seconds()/float64(b.N), tBatch.Seconds()/float64(b.N), speedup)
	})
}

// --- F3: SplitSolve domain sweep vs serial solve ----------------------------

func BenchmarkF3_SplitSolve(b *testing.B) {
	// A long device: 48 layers of 40 orbitals.
	s, err := lattice.NewZincblendeNanowire(0.5431, 48, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		b.Fatal(err)
	}
	a := sparse.ShiftedFromHermitian(h, complex(6.8, 1e-6))
	rhs := make([]*linalg.Matrix, a.Layers())
	rng := rand.New(rand.NewSource(7))
	for i := range rhs {
		rhs[i] = linalg.New(a.LayerSize(i), 8)
		for j := range rhs[i].Data {
			rhs[i].Data[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
	}
	for _, p := range []int{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("domains=%d", p), func(b *testing.B) {
			perf.ResetFlops()
			for i := 0; i < b.N; i++ {
				if _, err := splitsolve.Solve(context.Background(), a, rhs, splitsolve.Options{Domains: p}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fl := float64(perf.ResetFlops()) / float64(b.N)
			b.ReportMetric(fl, "flops/solve")
			// Modeled parallel wall time of this decomposition (critical
			// domain path + serial reduced system) on one Jaguar core per
			// domain — the series whose minimum is the F3 crossover.
			w := cluster.Workload{
				NBias: 1, NK: 1, NE: 1,
				NLayers: a.Layers(), BlockSize: a.LayerSize(0), RHSWidth: 8,
				SelfEnergyIterations: 30,
				CouplingRank:         splitsolve.InterfaceRank(a),
			}
			ss, err := w.SplitSolve(p)
			if err != nil {
				b.Fatal(err)
			}
			rate := cluster.Jaguar().SustainedFlopsPerCore()
			modeled := (float64(ss.CriticalFlops) + float64(ss.ReducedFlops)) / rate
			b.ReportMetric(modeled*1e3, "modeled-ms")
			once(fmt.Sprintf("F3:%d", p), func() {
				fmt.Printf("F3\tP=%-3d total flops per solve = %.3g\tmodeled parallel time = %.3f ms\n",
					p, fl, modeled*1e3)
			})
		})
	}
}

// --- F4: strong scaling on the machine model --------------------------------

func flagshipWorkload() cluster.Workload {
	return cluster.Workload{
		NBias: 16, NK: 21, NE: 1316,
		NLayers: 140, BlockSize: 480, RHSWidth: 480,
		SelfEnergyIterations: 30,
		EnergyCostCV:         0.1,
		CouplingRank:         120,
	}
}

func BenchmarkF4_StrongScaling(b *testing.B) {
	m := cluster.Jaguar()
	w := flagshipWorkload()
	counts := []int{1344, 5376, 21504, 86016, 172032, 221400}
	var reports []cluster.Report
	var err error
	for i := 0; i < b.N; i++ {
		reports, err = m.StrongScaling(w, counts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := reports[len(reports)-1]
	b.ReportMetric(last.SustainedFlops/1e15, "PFlop/s@221k")
	once("F4", func() {
		fmt.Println("F4\tstrong scaling (cores, wall s, TFlop/s, efficiency):")
		for _, r := range reports {
			fmt.Printf("F4\t%d\t%.1f\t%.1f\t%.3f\n",
				r.CoresUsed, r.WallTime, r.SustainedFlops/1e12, r.Efficiency)
		}
		fmt.Printf("F4\theadline: %.2f PFlop/s sustained on %d cores (paper: 1.44 PFlop/s)\n",
			last.SustainedFlops/1e15, last.CoresUsed)
	})
}

// --- F5: weak scaling with growing cross-section ----------------------------

func BenchmarkF5_WeakScaling(b *testing.B) {
	m := cluster.Jaguar()
	type step struct{ cores, block, layers int }
	steps := []step{
		{2688, 120, 100}, {10752, 190, 110}, {43008, 300, 120},
		{120000, 420, 130}, {221400, 480, 140},
	}
	var rows []cluster.Report
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, s := range steps {
			w := cluster.Workload{
				NBias: 16, NK: 21, NE: 1316,
				NLayers: s.layers, BlockSize: s.block, RHSWidth: s.block,
				SelfEnergyIterations: 30, EnergyCostCV: 0.1,
				CouplingRank: s.block / 4,
			}
			r, err := m.PredictAuto(w, s.cores)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r)
		}
	}
	b.ReportMetric(rows[len(rows)-1].SustainedFlops/1e15, "PFlop/s@221k")
	once("F5", func() {
		fmt.Println("F5\tweak scaling (cores, block, PFlop/s, efficiency):")
		for i, r := range rows {
			fmt.Printf("F5\t%d\t%d\t%.3f\t%.3f\n",
				r.CoresUsed, steps[i].block, r.SustainedFlops/1e15, r.Efficiency)
		}
	})
}

// --- T3: phase breakdown -----------------------------------------------------

func BenchmarkT3_PhaseBreakdown(b *testing.B) {
	m := cluster.Jaguar()
	w := flagshipWorkload()
	var rows []cluster.Report
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, c := range []int{5376, 43008, 221400} {
			r, err := m.PredictAuto(w, c)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r)
		}
	}
	once("T3", func() {
		fmt.Println("T3\tphase breakdown (cores: selfE, solve, reduced, comm, imbalance s):")
		for _, r := range rows {
			bd := r.Breakdown
			fmt.Printf("T3\t%d:\t%.1f\t%.1f\t%.2f\t%.2f\t%.2f\n",
				r.CoresUsed, bd.SelfEnergy, bd.Solve, bd.Reduced, bd.Communication, bd.Imbalance)
		}
	})
}

// --- F6: per-level parallel efficiency ---------------------------------------

func BenchmarkF6_LevelEfficiency(b *testing.B) {
	m := cluster.Jaguar()
	w := flagshipWorkload()
	type row struct {
		level string
		n     int
		eff   float64
	}
	var rows []row
	mk := []struct {
		name string
		d    func(n int) cluster.Decomposition
		max  int
	}{
		{"bias", func(n int) cluster.Decomposition {
			return cluster.Decomposition{Bias: n, Momentum: 1, Energy: 1, Domains: 1}
		}, w.NBias},
		{"momentum", func(n int) cluster.Decomposition {
			return cluster.Decomposition{Bias: 1, Momentum: n, Energy: 1, Domains: 1}
		}, w.NK},
		{"energy", func(n int) cluster.Decomposition {
			return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: n, Domains: 1}
		}, w.NE},
		{"domains", func(n int) cluster.Decomposition {
			return cluster.Decomposition{Bias: 1, Momentum: 1, Energy: 1, Domains: n}
		}, w.NLayers},
	}
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, l := range mk {
			for _, n := range []int{2, 8, 16, 64, 128} {
				if n > l.max {
					break
				}
				r, err := m.Predict(w, l.d(n))
				if err != nil {
					b.Fatal(err)
				}
				rows = append(rows, row{l.name, n, r.Efficiency})
			}
		}
	}
	once("F6", func() {
		fmt.Println("F6\tper-level efficiency (level, groups, efficiency):")
		for _, r := range rows {
			fmt.Printf("F6\t%-9s\t%d\t%.3f\n", r.level, r.n, r.eff)
		}
	})
}

// --- F7: GNR engineering figure ----------------------------------------------

func BenchmarkF7_GNR(b *testing.B) {
	var gaps []float64
	widths := []int{4, 5, 6, 7, 8, 9, 10, 11}
	for i := 0; i < b.N; i++ {
		gaps = gaps[:0]
		for _, n := range widths {
			sim, err := core.New(device.Description{
				Name: "AGNR", Kind: device.ArmchairGNR, CellsX: 4, CellsY: n,
			}, transport.Config{})
			if err != nil {
				b.Fatal(err)
			}
			g := 0.0
			if ev, ec, err := sim.ConductionBandEdge(-1.5, 1.5); err == nil {
				g = ec - ev
			}
			gaps = append(gaps, g)
		}
	}
	once("F7", func() {
		fmt.Println("F7\tAGNR gap families (N, Eg eV):")
		for i, n := range widths {
			fmt.Printf("F7\t%d\t%.3f\n", n, gaps[i])
		}
	})
	// Quasi-metallic family check as a metric: gap(5)/gap(7).
	b.ReportMetric(gaps[1]/gaps[3], "gap5/gap7")
}

// --- Extension experiments (beyond the paper's ballistic evaluation) --------

// BenchmarkX1_AlloyDisorder regenerates the random-alloy vs VCA comparison
// (extension experiment X1 in EXPERIMENTS.md).
func BenchmarkX1_AlloyDisorder(b *testing.B) {
	s, err := lattice.NewLinearChain(0.5, 40)
	if err != nil {
		b.Fatal(err)
	}
	d := alloy.Disorder{Fraction: 0.5, Shift: 0.6}
	tAt := func(pot []float64) float64 {
		h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{Potential: pot})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := transport.NewEngine(h, transport.Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts, err := eng.Transmissions(context.Background(), []float64{-0.3})
		if err != nil {
			b.Fatal(err)
		}
		return ts[0]
	}
	var vcaT, meanT float64
	for i := 0; i < b.N; i++ {
		vcaT = tAt(d.VCA(s))
		m, _, err := alloy.Average(16, 42, func(rng *rand.Rand) (float64, error) {
			pot, err := d.Sample(s, rng)
			if err != nil {
				return 0, err
			}
			return tAt(pot), nil
		})
		if err != nil {
			b.Fatal(err)
		}
		meanT = m
	}
	b.ReportMetric(vcaT/meanT, "VCA/random")
	once("X1", func() {
		fmt.Printf("X1\tVCA T = %.4f, random-alloy ⟨T⟩ = %.4f (ratio %.2f)\n",
			vcaT, meanT, vcaT/meanT)
	})
}

// BenchmarkX2_Dephasing regenerates the SCBA ohmic-scaling series (X2).
func BenchmarkX2_Dephasing(b *testing.B) {
	type row struct {
		n  int
		te float64
	}
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, n := range []int{8, 16, 24, 32} {
			s, err := lattice.NewLinearChain(0.5, n)
			if err != nil {
				b.Fatal(err)
			}
			h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sol, err := dephasing.NewSolver(h, 1e-6, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			te, err := sol.EffectiveTransmission(0.2)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{n, te})
		}
	}
	b.ReportMetric(1/rows[len(rows)-1].te-1, "R_excess@32")
	once("X2", func() {
		fmt.Println("X2\tSCBA dephasing, D = 0.05 eV² (sites, T_eff, 1/T−1):")
		for _, r := range rows {
			fmt.Printf("X2\t%d\t%.4f\t%.4f\n", r.n, r.te, 1/r.te-1)
		}
	})
}

// BenchmarkX3_PhononThermal regenerates the phonon transmission steps and
// the thermal conductance curve (X3).
func BenchmarkX3_PhononThermal(b *testing.B) {
	s, err := lattice.NewLinearChain(0.25, 8)
	if err != nil {
		b.Fatal(err)
	}
	m := phonon.Model{Alpha: 40, Beta: 10, Mass: []float64{28}}
	d, err := phonon.DynamicalMatrix(s, m)
	if err != nil {
		b.Fatal(err)
	}
	omegas := make([]float64, 200)
	for i := range omegas {
		omegas[i] = 3.0 * float64(i) / float64(len(omegas)-1)
	}
	// The 2 K quantum needs a grid resolving the thermally active window
	// ħω ~ k_B·T (ω ≈ 0.02 natural units).
	omegasLowT := make([]float64, 400)
	for i := range omegasLowT {
		omegasLowT[i] = 0.25 * float64(i) / float64(len(omegasLowT)-1)
	}
	var k300 float64
	var kappa2 float64
	for i := 0; i < b.N; i++ {
		k300, err = phonon.ThermalConductance(d, omegas, 300)
		if err != nil {
			b.Fatal(err)
		}
		kappa2, err = phonon.ThermalConductance(d, omegasLowT, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	quantumRatio := kappa2 / (3 * phonon.ConductanceQuantumThermal(2))
	b.ReportMetric(quantumRatio, "kappa/3k0@2K")
	once("X3", func() {
		fmt.Printf("X3\tphonon chain: κ(2K)/3κ₀ = %.4f (quantized), κ(300K) = %.3g W/K\n",
			quantumRatio, k300)
	})
}

// BenchmarkA1_GemmBlocking is the kernel ablation: the blocked GEMM versus
// a naive triple loop at a transport-typical block size.
func BenchmarkA1_GemmBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 160
	a := linalg.New(n, n)
	c := linalg.New(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		c.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Mul(c)
	}
}

func BenchmarkA1_GemmNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 160
	a := linalg.New(n, n)
	c := linalg.New(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		c.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		out := linalg.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s complex128
				for k := 0; k < n; k++ {
					s += a.At(i, k) * c.At(k, j)
				}
				out.Set(i, j, s)
			}
		}
	}
}

// BenchmarkA2_SelfEnergyCache is the design-choice ablation for the
// contact self-energy cache used by the self-consistent loop.
func BenchmarkA2_SelfEnergyCache(b *testing.B) {
	h := benchWire(b)
	grid := transport.UniformGrid(6.4, 7.4, 20)
	for _, cached := range []bool{false, true} {
		name := "off"
		if cached {
			name = "on"
		}
		b.Run("cache="+name, func(b *testing.B) {
			cfg := transport.Config{}
			if cached {
				cfg.Cache = negf.NewSelfEnergyCache()
			}
			for i := 0; i < b.N; i++ {
				// Two engines sharing (or not) the cache — the shape of a
				// two-iteration self-consistent step.
				for rep := 0; rep < 2; rep++ {
					eng, err := transport.NewEngine(h, cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := eng.Transmissions(context.Background(), grid); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkA3_InjectionRank ablates the low-rank Γ injection of the WF
// solver against the RGF solver that cannot exploit it.
func BenchmarkA3_InjectionRank(b *testing.B) {
	h := benchWire(b)
	wf, err := wavefunction.NewSolver(h, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	perf.ResetFlops()
	for i := 0; i < b.N; i++ {
		if _, err := wf.Solve(6.8, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(perf.ResetFlops())/float64(b.N), "flops/solve")
}

// BenchmarkA5 ablates the fused in-place kernels against their
// materializing equivalents on the Caroli contraction
// T = Tr[Γ_L·G·Γ_R·G†] at a transport-typical block size: the fused path
// runs the triple product through one workspace-backed GemmInto chain and
// folds the adjoint into an O(n²) trace; the materialized path builds
// G†, the full four-matrix product, and every intermediate.
func a5Operands(b *testing.B) (gamL, g, gamR *linalg.Matrix) {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	n := 160
	gamL, g, gamR = linalg.New(n, n), linalg.New(n, n), linalg.New(n, n)
	for i := range g.Data {
		gamL.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		g.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		gamR.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return gamL, g, gamR
}

func BenchmarkA5_CaroliFused(b *testing.B) {
	gamL, g, gamR := a5Operands(b)
	n := g.Rows
	perf.ResetFlops()
	b.ReportAllocs()
	b.ResetTimer()
	var t float64
	for i := 0; i < b.N; i++ {
		ws := linalg.GetWorkspace()
		tns := ws.Get(n, n)
		linalg.Mul3Into(tns, gamL, linalg.NoTrans, g, linalg.NoTrans, gamR, linalg.NoTrans, ws)
		t = real(linalg.TraceMulConj(tns, g))
		ws.Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(perf.ResetFlops())/float64(b.N), "flops/op")
	once("A5fused", func() { fmt.Printf("A5\tfused Caroli trace = %.6g\n", t) })
}

func BenchmarkA5_CaroliMaterialized(b *testing.B) {
	gamL, g, gamR := a5Operands(b)
	perf.ResetFlops()
	b.ReportAllocs()
	b.ResetTimer()
	var t float64
	for i := 0; i < b.N; i++ {
		t = real(linalg.Mul3(gamL, g, gamR).Mul(g.ConjTranspose()).Trace())
	}
	b.StopTimer()
	b.ReportMetric(float64(perf.ResetFlops())/float64(b.N), "flops/op")
	once("A5mat", func() { fmt.Printf("A5\tmaterialized Caroli trace = %.6g\n", t) })
}

// BenchmarkA4 ablates the two interior-eigenstate strategies of the
// sparse eigensolver on the same quantum dot: the folded spectrum (H−σ)²
// versus shift-invert through the block-tridiagonal factorization.
func BenchmarkA4_InteriorFolded(b *testing.B) {
	h := benchWire(b)
	csr := h.CSR()
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < b.N; i++ {
		if _, err := lanczos.Interior(lanczos.CSROperator{M: csr}, 5.0, 1, 1e-6, 2000, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkA4_InteriorShiftInvert(b *testing.B) {
	h := benchWire(b)
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < b.N; i++ {
		if _, err := lanczos.NearTarget(h, 5.0, 1, 1e-9, 150, rng); err != nil {
			b.Fatal(err)
		}
	}
}
