GO ?= go

.PHONY: build vet test race bench ci clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 0.5s -run '^$$' ./internal/...

ci: vet build race

clean:
	$(GO) clean ./...
