GO ?= go
GOFMT ?= gofmt

.PHONY: build fmt-check vet check test race faults bench ci clean

build:
	$(GO) build ./...

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

check: fmt-check vet

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The fault-injection suite: panic isolation, retry/backoff, journal
# resume, and quarantine drills, under the race detector.
faults:
	$(GO) test -race -run 'Fault|Drill|Resum|Quarantine|Panic|Journal|Injector|Retr|Backoff|Classify|Timeout' \
		./internal/resilience/ ./internal/sched/ ./internal/cluster/ ./internal/transport/ ./internal/core/

bench:
	$(GO) test -bench . -benchtime 0.5s -run '^$$' ./internal/...

ci: check build race

clean:
	$(GO) clean ./...
