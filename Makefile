GO ?= go
GOFMT ?= gofmt

.PHONY: build fmt-check vet deprecated-check check spec-check spec-golden test race race-batched faults drill-dist drill-failover drill-serve bench bench-baseline bench-check ci clean

# The kernel-cost benchmarks gated by the allocation baseline: their
# allocs/op is deterministic, so a regression means a real change in the
# solve's memory discipline, not machine noise.
BENCH_GUARDED = BenchmarkT2_KernelCost|BenchmarkF1_GateSweep_CacheReuse|BenchmarkF1_BatchedSweep|BenchmarkW1_Wire
BENCH_BASELINE = BENCH_kernels.json

build:
	$(GO) build ./...

fmt-check:
	@out="$$($(GOFMT) -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The allocating linalg conveniences (Mul3, MulAdd, LU.Solve,
# LU.Inverse) are deprecated in favor of the *Into forms the batched
# backend shares; a new call site outside internal/linalg fails here.
deprecated-check:
	@out="$$(grep -rnE 'linalg\.(Mul3|MulAdd)\(|\.Inverse\(\)|\.Solve\([a-zA-Z0-9_.]+\)' \
		--include='*.go' cmd internal *.go \
		| grep -v '^internal/linalg/' | grep -v '_test.go' || true)"; \
	if [ -n "$$out" ]; then \
		echo "deprecated allocating linalg calls (use the *Into forms):"; \
		echo "$$out"; exit 1; fi

check: fmt-check vet deprecated-check spec-check

# The -dump-spec output of both CLIs is pinned to the spec package's
# golden files: canonical JSON plus all four content hashes. A diff here
# means the encoding (and with it every content-addressed hash) drifted.
# Regenerate deliberately with `make spec-golden`.
spec-check:
	$(GO) build -o bin/omen ./cmd/omen
	$(GO) build -o bin/scaling ./cmd/scaling
	bin/omen -dump-spec | diff internal/spec/testdata/agnr7.golden - \
		|| { echo "omen -dump-spec drifted from internal/spec/testdata/agnr7.golden"; exit 1; }
	bin/scaling -dump-spec | diff internal/spec/testdata/study-strong.golden - \
		|| { echo "scaling -dump-spec drifted from internal/spec/testdata/study-strong.golden"; exit 1; }

# Refresh the golden spec files after a deliberate encoding change.
spec-golden:
	$(GO) test ./internal/spec/ -run Golden -update

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The batched F1 gate sweep under the race detector, one small pass:
# the benchmark itself asserts the batched currents are bitwise equal
# to the looped ones, so this doubles as a concurrency check on the
# panel workspaces and the batch scheduler.
race-batched:
	$(GO) test -race -run '^$$' -bench BenchmarkF1_BatchedSweep -benchtime 1x .

# The fault-injection suite: panic isolation, retry/backoff, journal
# resume, and quarantine drills, under the race detector.
faults:
	$(GO) test -race -run 'Fault|Drill|Resum|Quarantine|Panic|Journal|Injector|Retr|Backoff|Classify|Timeout' \
		./internal/resilience/ ./internal/sched/ ./internal/cluster/ ./internal/transport/ ./internal/core/

# The distributed kill drill: coordinator + 4 workers under 10% fault
# injection, one worker SIGKILLed mid-run. Passes only if observables
# and the merged flop count are byte-identical to a serial run.
drill-dist:
	$(GO) build -o bin/omen ./cmd/omen
	sh scripts/drill_dist.sh bin/omen

# The coordinator-failover drill: the coordinator is SIGKILLed mid-sweep
# and restarted with -resume on the same port; rejoin-capable workers
# must survive it. Passes only if observables and the merged flop count
# stay byte-identical to a serial run and the journal holds exactly one
# record per task at epoch >= 2.
drill-failover:
	$(GO) build -o bin/omen ./cmd/omen
	$(GO) build -o bin/journalcheck ./cmd/journalcheck
	sh scripts/drill_failover.sh bin/omen bin/journalcheck

# The simulation-service drill: the omend daemon driven over HTTP — a
# worker SIGKILLed mid-job, a completed spec replayed from its journal
# with zero new solves, and a SIGTERM drain resumed across a daemon
# restart. Every result must be byte-identical to the serial engine
# with the exact same flop count.
drill-serve:
	$(GO) build -o bin/omend ./cmd/omend
	$(GO) build -o bin/omen ./cmd/omen
	$(GO) build -o bin/journalcheck ./cmd/journalcheck
	sh scripts/drill_serve.sh bin/omend bin/omen bin/journalcheck

bench:
	$(GO) test -bench . -benchtime 0.5s -run '^$$' ./internal/...

# Refresh the committed allocation baseline for the guarded benchmarks.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_GUARDED)' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchguard -write $(BENCH_BASELINE)

# Fail if allocs/op of any guarded benchmark regressed >10% vs baseline.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCH_GUARDED)' -benchmem -benchtime 3x . \
		| $(GO) run ./cmd/benchguard -check $(BENCH_BASELINE) -tolerance 0.10

ci: check build race

clean:
	$(GO) clean ./...
