package perf

import (
	"strings"
	"testing"
	"time"
)

// TestWritePrometheus pins the exposition format: one flops counter,
// per-phase series behind a phase label, engine counters behind a name
// label, everything sorted so the page is byte-deterministic.
func TestWritePrometheus(t *testing.T) {
	s := Snapshot{
		Flops: 12345,
		Phases: map[string]PhaseStats{
			"rgf":      {Calls: 2, Wall: 1500 * time.Millisecond, Flops: 100},
			"assemble": {Calls: 1, Wall: time.Second, Flops: 7},
		},
		Counters: map[string]int64{
			"sigma-hits":    9,
			"batch-width-8": 3,
		},
	}
	var b strings.Builder
	s.WritePrometheus(&b, "omend")
	got := b.String()

	for _, want := range []string{
		"# TYPE omend_flops_total counter\n",
		"omend_flops_total 12345\n",
		`omend_phase_calls_total{phase="assemble"} 1` + "\n",
		`omend_phase_wall_seconds_total{phase="rgf"} 1.5` + "\n",
		`omend_phase_flops_total{phase="rgf"} 100` + "\n",
		`omend_counter_total{name="batch-width-8"} 3` + "\n",
		`omend_counter_total{name="sigma-hits"} 9` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	// Sorted: "assemble" before "rgf", "batch-width-8" before "sigma-hits".
	if strings.Index(got, `phase="assemble"`) > strings.Index(got, `phase="rgf"`) {
		t.Error("phases not sorted — the page is not deterministic")
	}
	if strings.Index(got, "batch-width-8") > strings.Index(got, "sigma-hits") {
		t.Error("counters not sorted — the page is not deterministic")
	}

	// A second render is byte-identical.
	var b2 strings.Builder
	s.WritePrometheus(&b2, "omend")
	if b2.String() != got {
		t.Error("two renders of one snapshot differ")
	}
}
