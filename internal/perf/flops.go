// Package perf provides performance accounting shared by the numerical
// kernels: a sharded global floating-point operation counter, per-phase
// wall-time/flop attribution, and formatting helpers used by the benchmark
// harness.
//
// The flop counter is the foundation of the repository's performance model:
// every dense/sparse kernel in internal/linalg and internal/sparse reports
// the exact number of real floating-point operations it executed. The
// simulated cluster (internal/cluster) maps these counts onto a machine
// model to reproduce the paper's sustained-Flop/s figures.
package perf

import (
	"sync"
	"sync/atomic"
)

// shardCount is the number of independent counter cells the global flop
// counter is split over. A power of two so the shard pick is a mask. 32
// cells keep the collision probability low for the worker counts the
// transport integrators run (GOMAXPROCS-sized pools) while the whole
// array stays a few cache lines.
const shardCount = 32

// paddedCounter is one counter cell, padded to its own pair of cache
// lines so concurrent workers hitting different shards never false-share
// (128 bytes covers adjacent-line prefetching on common x86 parts).
type paddedCounter struct {
	n atomic.Int64
	_ [120]byte
}

// flopShards is the sharded global operation counter. Each AddFlops call
// lands on exactly one shard, so the total over shards is exact; sharding
// only removes the single contended cache line that a lone atomic.Int64
// becomes under 8+ concurrent kernel goroutines (see
// BenchmarkFlopCounter*).
var flopShards [shardCount]paddedCounter

// shardCursor round-robins freshly requested shards over the fixed array.
var shardCursor atomic.Uint32

// shardPool hands each processor a sticky shard: sync.Pool's fast path is
// per-P, so a worker repeatedly hitting AddFlops keeps writing the same
// already-local cache line instead of bouncing a shared one between cores.
// The pool only ever holds pointers into flopShards — Flops/ResetFlops sum
// the fixed array, so no count can be stranded when the pool is drained by
// the garbage collector.
var shardPool = sync.Pool{New: func() any {
	return &flopShards[shardCursor.Add(1)&(shardCount-1)]
}}

// AddFlops adds n real floating-point operations to the global counter.
// Kernels count a complex multiply-add as 8 real flops (4 mul + 4 add),
// a complex add as 2, a complex multiply as 6, and a complex divide as 11
// (following the LINPACK/LAPACK convention). Callers report at kernel
// granularity (one call per GEMM/LU/solve), so the few nanoseconds of
// pool round-trip per call are noise next to the kernels themselves.
func AddFlops(n int64) {
	c := shardPool.Get().(*paddedCounter)
	c.n.Add(n)
	shardPool.Put(c)
}

// Flops returns the current value of the global flop counter. The shard
// sum is not a single atomic snapshot: counts added concurrently with the
// read may or may not be included, exactly as with the previous single
// atomic counter read under concurrent writers; no count is ever lost.
func Flops() int64 {
	var sum int64
	for i := range flopShards {
		sum += flopShards[i].n.Load()
	}
	return sum
}

// ResetFlops zeroes the global flop counter and returns the previous
// value. Counts added concurrently with the reset land either in the
// returned value or in the fresh counter, never both and never neither.
func ResetFlops() int64 {
	var sum int64
	for i := range flopShards {
		sum += flopShards[i].n.Swap(0)
	}
	return sum
}

// Complex-arithmetic flop-cost constants used by the kernels.
const (
	// FlopsCMulAdd is the cost of one fused complex multiply-accumulate.
	FlopsCMulAdd = 8
	// FlopsCMul is the cost of one complex multiplication.
	FlopsCMul = 6
	// FlopsCAdd is the cost of one complex addition or subtraction.
	FlopsCAdd = 2
	// FlopsCDiv is the cost of one complex division (Smith's algorithm).
	FlopsCDiv = 11
)

// LUFlops returns the flop count of an n×n complex LU factorization,
// (8/3)n³ to leading order.
func LUFlops(n int) int64 {
	nn := int64(n)
	return 8 * nn * nn * nn / 3
}

// GemmFlops returns the flop count of an (m×k)·(k×n) complex matrix product.
func GemmFlops(m, k, n int) int64 {
	return int64(FlopsCMulAdd) * int64(m) * int64(k) * int64(n)
}

// SolveFlops returns the flop count of triangular solves with an already
// factorized n×n system and nrhs right-hand sides: 8n²·nrhs.
func SolveFlops(n, nrhs int) int64 {
	return 8 * int64(n) * int64(n) * int64(nrhs)
}
