// Package perf provides performance accounting shared by the numerical
// kernels: a global floating-point operation counter, phase timers, and
// formatting helpers used by the benchmark harness.
//
// The flop counter is the foundation of the repository's performance model:
// every dense/sparse kernel in internal/linalg and internal/sparse reports
// the exact number of real floating-point operations it executed. The
// simulated cluster (internal/cluster) maps these counts onto a machine
// model to reproduce the paper's sustained-Flop/s figures.
package perf

import "sync/atomic"

// flopCount is the global operation counter. It is updated atomically so
// that concurrent kernels (worker pools in the transport integrators) can
// report without synchronization bugs.
var flopCount atomic.Int64

// AddFlops adds n real floating-point operations to the global counter.
// Kernels count a complex multiply-add as 8 real flops (4 mul + 4 add),
// a complex add as 2, a complex multiply as 6, and a complex divide as 11
// (following the LINPACK/LAPACK convention).
func AddFlops(n int64) { flopCount.Add(n) }

// Flops returns the current value of the global flop counter.
func Flops() int64 { return flopCount.Load() }

// ResetFlops zeroes the global flop counter and returns the previous value.
func ResetFlops() int64 { return flopCount.Swap(0) }

// Complex-arithmetic flop-cost constants used by the kernels.
const (
	// FlopsCMulAdd is the cost of one fused complex multiply-accumulate.
	FlopsCMulAdd = 8
	// FlopsCMul is the cost of one complex multiplication.
	FlopsCMul = 6
	// FlopsCAdd is the cost of one complex addition or subtraction.
	FlopsCAdd = 2
	// FlopsCDiv is the cost of one complex division (Smith's algorithm).
	FlopsCDiv = 11
)

// LUFlops returns the flop count of an n×n complex LU factorization,
// (8/3)n³ to leading order.
func LUFlops(n int) int64 {
	nn := int64(n)
	return 8 * nn * nn * nn / 3
}

// GemmFlops returns the flop count of an (m×k)·(k×n) complex matrix product.
func GemmFlops(m, k, n int) int64 {
	return int64(FlopsCMulAdd) * int64(m) * int64(k) * int64(n)
}

// SolveFlops returns the flop count of triangular solves with an already
// factorized n×n system and nrhs right-hand sides: 8n²·nrhs.
func SolveFlops(n, nrhs int) int64 {
	return 8 * int64(n) * int64(n) * int64(nrhs)
}
