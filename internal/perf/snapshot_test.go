package perf

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSnapshotDiffPartitions(t *testing.T) {
	base := TakeSnapshot()

	AddFlops(100)
	RecordPhase("snaptest-a", 5*time.Millisecond, 40)
	s1 := TakeSnapshot()
	d1 := s1.Diff(base)

	AddFlops(50)
	RecordPhase("snaptest-a", 2*time.Millisecond, 10)
	RecordPhase("snaptest-b", time.Millisecond, 0)
	s2 := TakeSnapshot()
	d2 := s2.Diff(s1)

	if d1.Flops != 100 || d2.Flops != 50 {
		t.Fatalf("flop deltas = %d, %d; want 100, 50", d1.Flops, d2.Flops)
	}
	if st := d1.Phases["snaptest-a"]; st.Calls != 1 || st.Flops != 40 || st.Wall != 5*time.Millisecond {
		t.Fatalf("d1 snaptest-a = %+v", st)
	}
	if _, ok := d1.Phases["snaptest-b"]; ok {
		t.Fatal("d1 contains a phase recorded only later")
	}
	if st := d2.Phases["snaptest-b"]; st.Calls != 1 || st.Wall != time.Millisecond {
		t.Fatalf("d2 snaptest-b = %+v", st)
	}

	// Summing the deltas must reproduce the total accrued since base.
	var sum Snapshot
	sum.Add(d1)
	sum.Add(d2)
	total := s2.Diff(base)
	if sum.Flops != total.Flops {
		t.Fatalf("delta sum flops = %d, total = %d", sum.Flops, total.Flops)
	}
	for name, st := range total.Phases {
		if sum.Phases[name] != st {
			t.Fatalf("phase %s: delta sum %+v, total %+v", name, sum.Phases[name], st)
		}
	}
}

func TestSnapshotMergeFoldsIntoGlobals(t *testing.T) {
	before := TakeSnapshot()
	Merge(Snapshot{
		Flops: 77,
		Phases: map[string]PhaseStats{
			"snaptest-merge": {Calls: 3, Wall: 9 * time.Millisecond, Flops: 77},
		},
	})
	d := TakeSnapshot().Diff(before)
	if d.Flops != 77 {
		t.Fatalf("merged flop delta = %d, want 77", d.Flops)
	}
	if st := d.Phases["snaptest-merge"]; st.Calls != 3 || st.Wall != 9*time.Millisecond || st.Flops != 77 {
		t.Fatalf("merged phase = %+v", st)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	in := Snapshot{
		Flops: 12,
		Phases: map[string]PhaseStats{
			"p": {Calls: 2, Wall: 3 * time.Second, Flops: 12},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Flops != in.Flops || out.Phases["p"] != in.Phases["p"] {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}
