package perf

import (
	"encoding/json"
	"testing"
	"time"
)

func TestSnapshotDiffPartitions(t *testing.T) {
	base := TakeSnapshot()

	AddFlops(100)
	RecordPhase("snaptest-a", 5*time.Millisecond, 40)
	s1 := TakeSnapshot()
	d1 := s1.Diff(base)

	AddFlops(50)
	RecordPhase("snaptest-a", 2*time.Millisecond, 10)
	RecordPhase("snaptest-b", time.Millisecond, 0)
	s2 := TakeSnapshot()
	d2 := s2.Diff(s1)

	if d1.Flops != 100 || d2.Flops != 50 {
		t.Fatalf("flop deltas = %d, %d; want 100, 50", d1.Flops, d2.Flops)
	}
	if st := d1.Phases["snaptest-a"]; st.Calls != 1 || st.Flops != 40 || st.Wall != 5*time.Millisecond {
		t.Fatalf("d1 snaptest-a = %+v", st)
	}
	if _, ok := d1.Phases["snaptest-b"]; ok {
		t.Fatal("d1 contains a phase recorded only later")
	}
	if st := d2.Phases["snaptest-b"]; st.Calls != 1 || st.Wall != time.Millisecond {
		t.Fatalf("d2 snaptest-b = %+v", st)
	}

	// Summing the deltas must reproduce the total accrued since base.
	var sum Snapshot
	sum.Add(d1)
	sum.Add(d2)
	total := s2.Diff(base)
	if sum.Flops != total.Flops {
		t.Fatalf("delta sum flops = %d, total = %d", sum.Flops, total.Flops)
	}
	for name, st := range total.Phases {
		if sum.Phases[name] != st {
			t.Fatalf("phase %s: delta sum %+v, total %+v", name, sum.Phases[name], st)
		}
	}
}

func TestSnapshotMergeFoldsIntoGlobals(t *testing.T) {
	before := TakeSnapshot()
	Merge(Snapshot{
		Flops: 77,
		Phases: map[string]PhaseStats{
			"snaptest-merge": {Calls: 3, Wall: 9 * time.Millisecond, Flops: 77},
		},
	})
	d := TakeSnapshot().Diff(before)
	if d.Flops != 77 {
		t.Fatalf("merged flop delta = %d, want 77", d.Flops)
	}
	if st := d.Phases["snaptest-merge"]; st.Calls != 3 || st.Wall != 9*time.Millisecond || st.Flops != 77 {
		t.Fatalf("merged phase = %+v", st)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	in := Snapshot{
		Flops: 12,
		Phases: map[string]PhaseStats{
			"p": {Calls: 2, Wall: 3 * time.Second, Flops: 12},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Flops != in.Flops || out.Phases["p"] != in.Phases["p"] {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestCounterSnapshotDiffMerge(t *testing.T) {
	base := TakeSnapshot()

	GetCounter("ctrtest-a").Add(5)
	s1 := TakeSnapshot()
	d1 := s1.Diff(base)
	if d1.Counters["ctrtest-a"] != 5 {
		t.Fatalf("d1 counter = %v, want 5", d1.Counters)
	}

	GetCounter("ctrtest-a").Add(2)
	GetCounter("ctrtest-b").Add(1)
	s2 := TakeSnapshot()
	d2 := s2.Diff(s1)
	if d2.Counters["ctrtest-a"] != 2 || d2.Counters["ctrtest-b"] != 1 {
		t.Fatalf("d2 counters = %v", d2.Counters)
	}
	if _, ok := d1.Counters["ctrtest-b"]; ok {
		t.Fatal("d1 contains a counter incremented only later")
	}

	// Unchanged counters must be omitted from deltas so wire payloads
	// stay small.
	d3 := TakeSnapshot().Diff(s2)
	if _, ok := d3.Counters["ctrtest-a"]; ok {
		t.Fatalf("unchanged counter present in delta: %v", d3.Counters)
	}

	// Delta sum reproduces the total — the distributed merge invariant.
	var sum Snapshot
	sum.Add(d1)
	sum.Add(d2)
	total := s2.Diff(base)
	for name, v := range total.Counters {
		if sum.Counters[name] != v {
			t.Fatalf("counter %s: delta sum %d, total %d", name, sum.Counters[name], v)
		}
	}

	// Merge folds counters back into the process globals.
	before := TakeSnapshot()
	Merge(Snapshot{Counters: map[string]int64{"ctrtest-merge": 9}})
	dm := TakeSnapshot().Diff(before)
	if dm.Counters["ctrtest-merge"] != 9 {
		t.Fatalf("merged counter delta = %v, want 9", dm.Counters)
	}
}

func TestCounterJSONRoundTrip(t *testing.T) {
	in := Snapshot{Flops: 1, Counters: map[string]int64{"c": 4}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Snapshot
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Counters["c"] != 4 {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}
