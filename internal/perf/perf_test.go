package perf

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestAddAndReset(t *testing.T) {
	ResetFlops()
	AddFlops(100)
	AddFlops(23)
	if got := Flops(); got != 123 {
		t.Fatalf("Flops = %d, want 123", got)
	}
	if prev := ResetFlops(); prev != 123 {
		t.Fatalf("ResetFlops returned %d", prev)
	}
	if got := Flops(); got != 0 {
		t.Fatalf("counter not zeroed: %d", got)
	}
}

func TestConcurrentAccumulation(t *testing.T) {
	ResetFlops()
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				AddFlops(3)
			}
		}()
	}
	wg.Wait()
	if got := ResetFlops(); got != workers*perWorker*3 {
		t.Fatalf("concurrent count %d, want %d", got, workers*perWorker*3)
	}
}

func TestFlopFormulas(t *testing.T) {
	if LUFlops(3) != 8*27/3 {
		t.Fatalf("LUFlops(3) = %d", LUFlops(3))
	}
	if GemmFlops(2, 3, 4) != 8*2*3*4 {
		t.Fatalf("GemmFlops = %d", GemmFlops(2, 3, 4))
	}
	if SolveFlops(5, 2) != 8*25*2 {
		t.Fatalf("SolveFlops = %d", SolveFlops(5, 2))
	}
}

func TestQuickFormulasScale(t *testing.T) {
	// LU cost is cubic: doubling n multiplies by ~8 (up to the integer
	// floor in the formula).
	f := func(raw uint8) bool {
		n := int(raw%20) + 2
		d := LUFlops(2*n) - 8*LUFlops(n)
		return d >= -8 && d <= 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
