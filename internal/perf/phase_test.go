package perf

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPhaseRecording(t *testing.T) {
	ResetPhases()
	RecordPhase("rgf", 3*time.Millisecond, 100)
	RecordPhase("rgf", 2*time.Millisecond, 50)
	RecordPhase("poisson", time.Millisecond, 0)
	AddPhaseFlops("rgf", 7)
	snap := PhaseSnapshot()
	rgf, ok := snap["rgf"]
	if !ok {
		t.Fatal("rgf phase missing from snapshot")
	}
	if rgf.Calls != 2 || rgf.Wall != 5*time.Millisecond || rgf.Flops != 157 {
		t.Fatalf("rgf stats = %+v", rgf)
	}
	if p := snap["poisson"]; p.Calls != 1 || p.Wall != time.Millisecond {
		t.Fatalf("poisson stats = %+v", p)
	}
	ResetPhases()
	if snap := PhaseSnapshot(); len(snap) != 0 {
		t.Fatalf("snapshot not empty after reset: %v", snap)
	}
}

func TestStartPhaseMeasuresWall(t *testing.T) {
	ResetPhases()
	func() {
		defer StartPhase("timed")()
		time.Sleep(5 * time.Millisecond)
	}()
	p := PhaseSnapshot()["timed"]
	if p.Calls != 1 {
		t.Fatalf("calls = %d", p.Calls)
	}
	if p.Wall < 4*time.Millisecond {
		t.Fatalf("wall %v shorter than the timed region", p.Wall)
	}
}

func TestPhaseConcurrent(t *testing.T) {
	ResetPhases()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				RecordPhase("p", time.Microsecond, 2)
			}
		}()
	}
	wg.Wait()
	p := PhaseSnapshot()["p"]
	if p.Calls != workers*per || p.Flops != workers*per*2 {
		t.Fatalf("concurrent phase stats = %+v", p)
	}
}

// singleAtomic is the pre-sharding implementation, kept here as the
// benchmark baseline the sharded counter is measured against. On a
// multi-core machine the single cell becomes one bouncing cache line under
// 8+ goroutines while the sharded counter's per-P stickiness keeps writes
// core-local; on a single-CPU runner (GOMAXPROCS=1) there is no contention
// to remove and both benchmarks measure only per-op overhead — compare
// them with `go test -bench FlopCounter -cpu 8` on real cores.
var singleAtomic atomic.Int64

func BenchmarkFlopCounterSingleAtomic(b *testing.B) {
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			singleAtomic.Add(8)
		}
	})
}

func BenchmarkFlopCounterSharded(b *testing.B) {
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			AddFlops(8)
		}
	})
	b.StopTimer()
	ResetFlops()
}
