package perf

import (
	"sync"
	"sync/atomic"
)

// Counter is a named monotonically-increasing event counter (cache hits,
// evictions, seeded refinements, …). Unlike the flop counter it is not
// sharded: counter increments sit on slow paths (a cache miss costs a
// Sancho-Rubio decimation, an eviction a map delete), so a single atomic
// is plenty. Counters travel with Snapshot the same way phases do, which
// is what lets distributed runs merge them exactly.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// counters maps counter name → *Counter.
var counters sync.Map

// GetCounter returns the process-global counter registered under name,
// creating it on first use. The pointer is stable for the life of the
// process (modulo ResetCounters), so hot call sites should resolve it
// once and keep it.
func GetCounter(name string) *Counter {
	if c, ok := counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// CounterSnapshot returns a copy of every counter's current value,
// omitting counters still at zero (a registered-but-unused counter is
// indistinguishable from an unregistered one, and the omission keeps
// wire deltas small).
func CounterSnapshot() map[string]int64 {
	out := make(map[string]int64)
	counters.Range(func(k, v any) bool {
		if n := v.(*Counter).Value(); n != 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// ResetCounters zeroes all named counters. Counters are zeroed in place
// rather than deleted, so pointers handed out by GetCounter stay valid
// across a reset (long-lived caches resolve their counters once).
func ResetCounters() {
	counters.Range(func(_, v any) bool {
		v.(*Counter).v.Store(0)
		return true
	})
}
