package perf

import (
	"sync"
	"sync/atomic"
	"time"
)

// PhaseStats aggregates the instrumentation of one named simulation phase
// (self-energy, rgf, wf-solve, splitsolve, poisson, and the sched pool
// levels bias/momentum/energy).
type PhaseStats struct {
	// Calls is the number of recorded executions.
	Calls int64
	// Wall is the summed execution wall time. Concurrent executions all
	// contribute their full duration, so Wall over a parallel region can
	// exceed elapsed time — it is CPU-occupancy-weighted, which is what
	// the per-level efficiency accounting needs.
	Wall time.Duration
	// Flops is the operation count explicitly attributed to the phase by
	// the call sites that know it (RecordPhase/AddPhaseFlops). Wall time
	// is measured automatically by the sched layer and the instrumented
	// solvers; flop attribution is explicit because the kernel-level
	// counter (AddFlops) is global and cannot know which phase its caller
	// belongs to.
	Flops int64
}

// phaseCell is the lock-free accumulator behind one phase name.
type phaseCell struct {
	calls atomic.Int64
	nanos atomic.Int64
	flops atomic.Int64
}

// phases maps phase name → *phaseCell.
var phases sync.Map

func phase(name string) *phaseCell {
	if c, ok := phases.Load(name); ok {
		return c.(*phaseCell)
	}
	c, _ := phases.LoadOrStore(name, &phaseCell{})
	return c.(*phaseCell)
}

// RecordPhase adds one execution of the named phase: its wall time and an
// optional explicitly-known flop count (0 when only timing is available).
func RecordPhase(name string, wall time.Duration, flops int64) {
	c := phase(name)
	c.calls.Add(1)
	c.nanos.Add(int64(wall))
	if flops != 0 {
		c.flops.Add(flops)
	}
}

// StartPhase starts timing one execution of the named phase and returns
// the function that stops the timer and records it:
//
//	defer perf.StartPhase("rgf")()
func StartPhase(name string) func() {
	start := time.Now()
	return func() { RecordPhase(name, time.Since(start), 0) }
}

// AddPhaseFlops attributes n flops to the named phase without recording a
// call (used when the flop count of an already-timed phase is computed
// separately, e.g. the SplitSolve reduced interface system).
func AddPhaseFlops(name string, n int64) {
	phase(name).flops.Add(n)
}

// PhaseSnapshot returns a copy of every phase's accumulated statistics.
func PhaseSnapshot() map[string]PhaseStats {
	out := make(map[string]PhaseStats)
	phases.Range(func(k, v any) bool {
		c := v.(*phaseCell)
		out[k.(string)] = PhaseStats{
			Calls: c.calls.Load(),
			Wall:  time.Duration(c.nanos.Load()),
			Flops: c.flops.Load(),
		}
		return true
	})
	return out
}

// ResetPhases clears all phase statistics.
func ResetPhases() {
	phases.Range(func(k, _ any) bool {
		phases.Delete(k)
		return true
	})
}
