package perf

// Snapshot is a mergeable copy of the performance counters: the global
// flop total plus every phase's accumulated statistics. Snapshots are what
// the distributed sweep engine ships over the wire — each worker reports
// per-task deltas (TakeSnapshot + Diff) and the coordinator folds them
// into one cluster-wide view (Add, or Merge back into the process-global
// counters). The type is JSON-serializable: Wall durations travel as
// integer nanoseconds.
type Snapshot struct {
	// Flops is the global flop counter value (or, for a Diff result, the
	// flops accumulated between the two snapshots).
	Flops int64 `json:"flops"`
	// Phases maps phase name to its accumulated (or delta) statistics.
	// Nil when no phase has been recorded.
	Phases map[string]PhaseStats `json:"phases,omitempty"`
	// Counters maps named event counters (cache hits, evictions, …) to
	// their accumulated (or delta) values. Nil when every counter is zero.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// TakeSnapshot captures the current global counters. The capture is not a
// single atomic cut across all counters: flops and phases recorded
// concurrently with the call land on either side, exactly as with the
// individual Flops/PhaseSnapshot reads; no count is ever lost between two
// successive snapshots of the same process.
func TakeSnapshot() Snapshot {
	s := Snapshot{Flops: Flops(), Phases: PhaseSnapshot()}
	if c := CounterSnapshot(); len(c) > 0 {
		s.Counters = c
	}
	return s
}

// Diff returns the counters accumulated between prev and s (s − prev).
// Phases whose statistics did not change are omitted, so a per-task delta
// stays small on the wire. Successive deltas of one process partition its
// counters exactly: summing every delta reproduces the final snapshot.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	d := Snapshot{Flops: s.Flops - prev.Flops}
	for name, st := range s.Phases {
		p := prev.Phases[name]
		st.Calls -= p.Calls
		st.Wall -= p.Wall
		st.Flops -= p.Flops
		if st == (PhaseStats{}) {
			continue
		}
		if d.Phases == nil {
			d.Phases = make(map[string]PhaseStats)
		}
		d.Phases[name] = st
	}
	for name, v := range s.Counters {
		dv := v - prev.Counters[name]
		if dv == 0 {
			continue
		}
		if d.Counters == nil {
			d.Counters = make(map[string]int64)
		}
		d.Counters[name] = dv
	}
	return d
}

// Add folds o into s: flop totals add, and per-phase statistics add
// field-wise. It is the pure (off-counter) merge the coordinator uses to
// accumulate worker deltas into one cluster-wide snapshot.
func (s *Snapshot) Add(o Snapshot) {
	s.Flops += o.Flops
	if len(o.Phases) > 0 {
		if s.Phases == nil {
			s.Phases = make(map[string]PhaseStats, len(o.Phases))
		}
		for name, st := range o.Phases {
			cur := s.Phases[name]
			cur.Calls += st.Calls
			cur.Wall += st.Wall
			cur.Flops += st.Flops
			s.Phases[name] = cur
		}
	}
	if len(o.Counters) > 0 {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(o.Counters))
		}
		for name, v := range o.Counters {
			s.Counters[name] += v
		}
	}
}

// Merge folds a snapshot into this process's global counters — the
// coordinator-side counterpart of Add for callers that want the merged
// cluster totals visible through the ordinary Flops()/PhaseSnapshot()
// reads (e.g. so a driver's final report includes work done remotely).
func Merge(s Snapshot) {
	if s.Flops != 0 {
		AddFlops(s.Flops)
	}
	for name, st := range s.Phases {
		c := phase(name)
		c.calls.Add(st.Calls)
		c.nanos.Add(int64(st.Wall))
		c.flops.Add(st.Flops)
	}
	for name, v := range s.Counters {
		GetCounter(name).Add(v)
	}
}
