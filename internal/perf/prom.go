package perf

import (
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format under the given metric prefix — the /metrics face of the job
// service. Output is deterministic (phases and counters sorted by name)
// so scrapes and tests see a stable page. Counter names pass through a
// label rather than the metric name: engine counters ("sigma-hits",
// "batch-width-8") are an open set, and label values need no sanitizing.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) {
	fmt.Fprintf(w, "# TYPE %s_flops_total counter\n", prefix)
	fmt.Fprintf(w, "%s_flops_total %d\n", prefix, s.Flops)

	if len(s.Phases) > 0 {
		names := make([]string, 0, len(s.Phases))
		for name := range s.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# TYPE %s_phase_calls_total counter\n", prefix)
		for _, name := range names {
			fmt.Fprintf(w, "%s_phase_calls_total{phase=%q} %d\n", prefix, name, s.Phases[name].Calls)
		}
		fmt.Fprintf(w, "# TYPE %s_phase_wall_seconds_total counter\n", prefix)
		for _, name := range names {
			fmt.Fprintf(w, "%s_phase_wall_seconds_total{phase=%q} %g\n", prefix, name, s.Phases[name].Wall.Seconds())
		}
		fmt.Fprintf(w, "# TYPE %s_phase_flops_total counter\n", prefix)
		for _, name := range names {
			fmt.Fprintf(w, "%s_phase_flops_total{phase=%q} %d\n", prefix, name, s.Phases[name].Flops)
		}
	}

	if len(s.Counters) > 0 {
		names := make([]string, 0, len(s.Counters))
		for name := range s.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# TYPE %s_counter_total counter\n", prefix)
		for _, name := range names {
			fmt.Fprintf(w, "%s_counter_total{name=%q} %d\n", prefix, name, s.Counters[name])
		}
	}
}
