package lanczos

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/sparse"
	"repro/internal/tb"
)

// randSparseHermitian builds a random Hermitian CSR matrix with ~bandwidth
// nonzeros per row.
func randSparseHermitian(rng *rand.Rand, n, band int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, complex(rng.NormFloat64(), 0))
		for k := 0; k < band; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := complex(rng.NormFloat64(), rng.NormFloat64()) * 0.3
			b.Add(i, j, v)
			b.Add(j, i, complex(real(v), -imag(v)))
		}
	}
	return b.Build()
}

func denseLowest(t *testing.T, m *sparse.CSR, k int) []float64 {
	t.Helper()
	eig, err := linalg.EigH(m.Dense())
	if err != nil {
		t.Fatal(err)
	}
	return eig.Values[:k]
}

func TestLowestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, n := range []int{30, 80, 150} {
		m := randSparseHermitian(rng, n, 3)
		want := denseLowest(t, m, 4)
		res, err := Lowest(CSROperator{m}, 4, 1e-10, 0, rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range want {
			if math.Abs(res.Values[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: eigenvalue %d = %v, want %v", n, i, res.Values[i], want[i])
			}
		}
	}
}

func TestLowestEigenvectorResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m := randSparseHermitian(rng, 60, 3)
	op := CSROperator{m}
	res, err := Lowest(op, 3, 1e-11, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]complex128, 60)
	for i, vec := range res.Vectors {
		op.Apply(vec, y)
		var r float64
		for j := range y {
			d := y[j] - complex(res.Values[i], 0)*vec[j]
			r += real(d)*real(d) + imag(d)*imag(d)
		}
		if math.Sqrt(r) > 1e-6 {
			t.Fatalf("eigenpair %d residual %g", i, math.Sqrt(r))
		}
	}
}

func TestLowestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	m := randSparseHermitian(rng, 10, 2)
	if _, err := Lowest(CSROperator{m}, 0, 1e-8, 0, rng); err == nil {
		t.Fatal("accepted k = 0")
	}
	if _, err := Lowest(CSROperator{m}, 11, 1e-8, 0, rng); err == nil {
		t.Fatal("accepted k > n")
	}
}

// TestParticleInBoxChain: the canonical check against the analytic
// spectrum of a hard-wall chain.
func TestParticleInBoxChain(t *testing.T) {
	const n, hop = 120, -1.0
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			b.Add(i, i+1, complex(hop, 0))
			b.Add(i+1, i, complex(hop, 0))
		}
		b.Add(i, i, 0)
	}
	m := b.Build()
	rng := rand.New(rand.NewSource(73))
	res, err := Lowest(CSROperator{m}, 5, 1e-11, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		// Lowest levels: E_k = 2·t·cos(kπ/(n+1)) with t < 0 and k = 1, 2, …
		want := 2 * hop * math.Cos(float64(i+1)*math.Pi/float64(n+1))
		if math.Abs(res.Values[i]-want) > 1e-8 {
			t.Fatalf("box level %d = %v, want %v", i, res.Values[i], want)
		}
	}
}

// TestInteriorFoldedSpectrum: the folded transform must return the states
// closest to the target, not the extremal ones.
func TestInteriorFoldedSpectrum(t *testing.T) {
	// Diagonal matrix with known spectrum −5..5.
	n := 11
	b := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		b.Add(i, i, complex(float64(i)-5, 0))
	}
	m := b.Build()
	rng := rand.New(rand.NewSource(74))
	res, err := Interior(CSROperator{m}, 0.2, 3, 1e-12, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Closest to 0.2 are {0, 1, −1}.
	want := []float64{-1, 0, 1}
	for i := range want {
		if math.Abs(res.Values[i]-want[i]) > 1e-7 {
			t.Fatalf("interior eigenvalues %v, want %v", res.Values, want)
		}
	}
}

// TestQuantumDotBandEdgeStates: the NEMO-3D use case — band-edge states of
// a finite (fully confined) Si nanocrystal via folded-spectrum Lanczos on
// the sparse tight-binding Hamiltonian, validated against the dense
// solver.
func TestQuantumDotBandEdgeStates(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		t.Fatal(err)
	}
	csr := h.CSR()
	dense, err := linalg.EigH(csr.Dense())
	if err != nil {
		t.Fatal(err)
	}
	// Find the dot's gap around the expected window and target the
	// conduction edge.
	var ev, ec float64
	found := false
	for i := 0; i+1 < len(dense.Values); i++ {
		g := dense.Values[i+1] - dense.Values[i]
		mid := (dense.Values[i+1] + dense.Values[i]) / 2
		if g > 1.0 && mid > 0 && mid < 8 {
			ev, ec = dense.Values[i], dense.Values[i+1]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no gap in the nanocrystal spectrum")
	}
	rng := rand.New(rand.NewSource(75))
	res, err := Interior(CSROperator{csr}, ec+0.05, 3, 1e-9, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The folded solve must land on true eigenvalues near the conduction
	// edge, all above the valence edge.
	for _, v := range res.Values {
		if v <= ev {
			t.Fatalf("folded state %g fell below the valence edge %g", v, ev)
		}
		// Must match *some* dense eigenvalue.
		best := math.Inf(1)
		for _, d := range dense.Values {
			if x := math.Abs(d - v); x < best {
				best = x
			}
		}
		if best > 1e-6 {
			t.Fatalf("folded eigenvalue %g matches no dense eigenvalue (nearest off by %g)", v, best)
		}
	}
	// And the lowest returned state is the conduction edge itself.
	if math.Abs(res.Values[0]-ec) > 1e-6 {
		t.Fatalf("conduction edge %g, folded found %g", ec, res.Values[0])
	}
}

func TestLanczosLargeSparsePerformanceSanity(t *testing.T) {
	// A 5000-site chain with a deep impurity well: the bound state is
	// spectrally isolated, so Lanczos converges it in a few dozen
	// iterations — the whole point of the iterative solver at NEMO-3D
	// problem sizes. The dense solver would need an 5000³ diagonalization.
	n := 5000
	const well = -3.0
	b := sparse.NewBuilder(n, n)
	for i := 0; i+1 < n; i++ {
		b.Add(i, i+1, -1)
		b.Add(i+1, i, -1)
	}
	b.Add(n/2, n/2, complex(well, 0))
	m := b.Build()
	rng := rand.New(rand.NewSource(76))
	res, err := Lowest(CSROperator{m}, 1, 1e-9, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 150 {
		t.Fatalf("Lanczos used %d iterations for an isolated bound state", res.Iterations)
	}
	// Analytic bound-state energy of a single-site well in an infinite
	// chain: E = −sign·√(well² + 4t²) = −√(9 + 4) for t = −1.
	want := -math.Sqrt(well*well + 4)
	if math.Abs(res.Values[0]-want) > 1e-4 {
		t.Fatalf("impurity bound state %v, want %v", res.Values[0], want)
	}
}

// TestNearTargetShiftInvert: the shift-invert path must find the states
// bracketing a mid-gap target on a real tight-binding dot — fast.
func TestNearTargetShiftInvert(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := linalg.EigH(h.CSR().Dense())
	if err != nil {
		t.Fatal(err)
	}
	// Locate a substantial spectral gap and target its middle.
	var lo, hi float64
	found := false
	for i := 0; i+1 < len(dense.Values); i++ {
		if dense.Values[i+1]-dense.Values[i] > 1 {
			mid := (dense.Values[i+1] + dense.Values[i]) / 2
			if mid > 0 && mid < 8 {
				lo, hi = dense.Values[i], dense.Values[i+1]
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no gap found")
	}
	sigma := (lo + hi) / 2
	rng := rand.New(rand.NewSource(80))
	res, err := NearTarget(h, sigma, 2, 1e-9, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-lo) > 1e-7 || math.Abs(res.Values[1]-hi) > 1e-7 {
		t.Fatalf("shift-invert found (%g, %g), want (%g, %g)",
			res.Values[0], res.Values[1], lo, hi)
	}
	// Shift-invert must converge far faster than the folded-spectrum
	// transform at the same tolerance.
	if res.Iterations > 100 {
		t.Fatalf("shift-invert used %d iterations", res.Iterations)
	}
}

// TestBTDFactorReuse: repeated solves against one factorization agree with
// fresh SolveBlocks calls.
func TestBTDFactorReuse(t *testing.T) {
	s, err := lattice.NewLinearChain(0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SingleBandChain(0.3, -1), tb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := h.Clone()
	for i := range a.Diag {
		a.Diag[i].Set(0, 0, a.Diag[i].At(0, 0)+complex(5, 0.3))
	}
	fac, err := a.FactorBTD()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 3; trial++ {
		b := make([]complex128, a.N())
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := fac.SolveVec(b)
		if err != nil {
			t.Fatal(err)
		}
		ax := a.MulVec(x)
		for i := range ax {
			d := ax[i] - b[i]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("trial %d: residual at %d", trial, i)
			}
		}
	}
}
