// Package lanczos implements the iterative sparse eigensolver of the
// paper's electronic-structure lineage: NEMO-3D-style Lanczos iteration
// with full reorthogonalization over matrix-free operators, plus the
// folded-spectrum transform (H−σ)² that extracts interior states — band-
// edge states of multimillion-atom quantum dots — using nothing but
// sparse matrix-vector products.
package lanczos

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// Operator is a Hermitian linear operator given by its action.
type Operator interface {
	// Apply computes y = A·x. len(x) == len(y) == Dim().
	Apply(x, y []complex128)
	// Dim returns the operator dimension.
	Dim() int
}

// CSROperator adapts a Hermitian CSR matrix.
type CSROperator struct{ M *sparse.CSR }

// Apply implements Operator.
func (o CSROperator) Apply(x, y []complex128) {
	m := o.M
	for i := 0; i < m.Rows; i++ {
		var s complex128
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	perf.AddFlops(int64(m.NNZ()) * perf.FlopsCMulAdd)
}

// Dim implements Operator.
func (o CSROperator) Dim() int { return o.M.Rows }

// Folded wraps an operator with the folded-spectrum transform
// (A − σ)²: its lowest eigenstates are the states of A closest to σ.
type Folded struct {
	Op    Operator
	Sigma float64
	tmp   []complex128
}

// NewFolded builds the folded operator around target σ.
func NewFolded(op Operator, sigma float64) *Folded {
	return &Folded{Op: op, Sigma: sigma, tmp: make([]complex128, op.Dim())}
}

// Apply implements Operator: y = (A−σ)(A−σ)·x.
func (f *Folded) Apply(x, y []complex128) {
	f.Op.Apply(x, f.tmp)
	s := complex(f.Sigma, 0)
	for i := range f.tmp {
		f.tmp[i] -= s * x[i]
	}
	f.Op.Apply(f.tmp, y)
	for i := range y {
		y[i] -= s * f.tmp[i]
	}
	perf.AddFlops(int64(4 * len(x)))
}

// Dim implements Operator.
func (f *Folded) Dim() int { return f.Op.Dim() }

// Result holds converged eigenpairs sorted ascending by eigenvalue.
type Result struct {
	Values  []float64
	Vectors [][]complex128
	// Iterations is the Krylov dimension reached.
	Iterations int
}

// Lowest computes the k smallest eigenvalues (and eigenvectors) of the
// Hermitian operator op by Lanczos iteration with full
// reorthogonalization, the robust (if memory-hungry) variant production
// electronic-structure codes use at these problem sizes. rng seeds the
// start vector; tol is the Ritz-residual target relative to the spectral
// scale; maxIter bounds the Krylov dimension (0: min(4k+40, n)).
func Lowest(op Operator, k int, tol float64, maxIter int, rng *rand.Rand) (*Result, error) {
	return run(op, k, tol, maxIter, rng, func(vals []float64) []int {
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		return idx
	})
}

// LargestMagnitude computes the k eigenvalues of largest modulus — the
// selection rule of shift-invert spectral transforms, where the states
// nearest the shift dominate the inverse operator's spectrum.
func LargestMagnitude(op Operator, k int, tol float64, maxIter int, rng *rand.Rand) (*Result, error) {
	return run(op, k, tol, maxIter, rng, func(vals []float64) []int {
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(vals[idx[a]]) > math.Abs(vals[idx[b]])
		})
		return idx[:k]
	})
}

// run is the shared Lanczos driver; pick selects which k Ritz pairs (by
// index into the ascending Ritz values) must converge and be returned.
func run(op Operator, k int, tol float64, maxIter int, rng *rand.Rand, pick func([]float64) []int) (*Result, error) {
	n := op.Dim()
	if k < 1 || k > n {
		return nil, fmt.Errorf("lanczos: k = %d outside [1, %d]", k, n)
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 12*k + 150
	}
	if maxIter > n {
		maxIter = n
	}
	if maxIter < k {
		maxIter = k
	}
	// Krylov basis (full reorthogonalization keeps it numerically
	// orthonormal).
	basis := make([][]complex128, 0, maxIter)
	alpha := make([]float64, 0, maxIter)
	beta := make([]float64, 0, maxIter)

	v := randomUnit(n, rng)
	w := make([]complex128, n)
	var spectralScale float64

	for iter := 0; iter < maxIter; iter++ {
		basis = append(basis, v)
		op.Apply(v, w)
		// α_j = ⟨v|A|v⟩ (real for Hermitian A).
		a := realDot(v, w)
		alpha = append(alpha, a)
		// w ← A·v − α·v − β·v_{j-1}, then full reorthogonalization.
		for i := range w {
			w[i] -= complex(a, 0) * v[i]
		}
		if iter > 0 {
			b := beta[iter-1]
			prev := basis[iter-1]
			for i := range w {
				w[i] -= complex(b, 0) * prev[i]
			}
		}
		for _, u := range basis {
			c := dot(u, w)
			for i := range w {
				w[i] -= c * u[i]
			}
		}
		perf.AddFlops(int64(len(basis)) * int64(n) * 8)
		b := norm(w)
		if math.Abs(a) > spectralScale {
			spectralScale = math.Abs(a)
		}
		if b > spectralScale {
			spectralScale = b
		}

		// Convergence: diagonalize the tridiagonal T_j and check the
		// residual bound |β_j · s_{j,i}| for the selected Ritz pairs.
		if iter+1 >= k {
			vals, vecs, err := tridiagEig(alpha, beta[:iter])
			if err != nil {
				return nil, err
			}
			selected := pick(vals)
			converged := true
			for _, i := range selected {
				res := b * math.Abs(vecs[iter][i])
				if res > tol*(1+spectralScale) {
					converged = false
					break
				}
			}
			if converged || b < 1e-14*(1+spectralScale) || iter == maxIter-1 {
				if !converged && iter == maxIter-1 && b >= 1e-14*(1+spectralScale) {
					return nil, fmt.Errorf("lanczos: %d requested eigenpairs not converged in %d iterations", k, maxIter)
				}
				return assemble(basis, vals, vecs, selected, iter+1), nil
			}
		}
		beta = append(beta, b)
		next := make([]complex128, n)
		inv := complex(1/b, 0)
		for i := range w {
			next[i] = w[i] * inv
		}
		v = next
	}
	return nil, fmt.Errorf("lanczos: iteration did not terminate")
}

// Interior computes the k eigenstates of op closest to the target energy
// σ via the folded spectrum, returning true eigenvalues of op (Rayleigh
// quotients of the folded eigenvectors).
func Interior(op Operator, sigma float64, k int, tol float64, maxIter int, rng *rand.Rand) (*Result, error) {
	folded := NewFolded(op, sigma)
	res, err := Lowest(folded, k, tol, maxIter, rng)
	if err != nil {
		return nil, err
	}
	n := op.Dim()
	tmp := make([]complex128, n)
	for i, vec := range res.Vectors {
		op.Apply(vec, tmp)
		res.Values[i] = realDot(vec, tmp)
	}
	// Re-sort by true eigenvalue.
	for i := 1; i < len(res.Values); i++ {
		for j := i; j > 0 && res.Values[j] < res.Values[j-1]; j-- {
			res.Values[j], res.Values[j-1] = res.Values[j-1], res.Values[j]
			res.Vectors[j], res.Vectors[j-1] = res.Vectors[j-1], res.Vectors[j]
		}
	}
	return res, nil
}

// assemble builds Ritz vectors for the selected Ritz indices.
func assemble(basis [][]complex128, vals []float64, vecs [][]float64, selected []int, m int) *Result {
	n := len(basis[0])
	k := len(selected)
	out := &Result{
		Values:     make([]float64, k),
		Vectors:    make([][]complex128, k),
		Iterations: m,
	}
	for i, sel := range selected {
		out.Values[i] = vals[sel]
		v := make([]complex128, n)
		for j := 0; j < m; j++ {
			c := complex(vecs[j][sel], 0)
			if c == 0 {
				continue
			}
			bj := basis[j]
			for t := 0; t < n; t++ {
				v[t] += c * bj[t]
			}
		}
		// Normalize (roundoff guard).
		nv := norm(v)
		if nv > 0 {
			inv := complex(1/nv, 0)
			for t := range v {
				v[t] *= inv
			}
		}
		out.Vectors[i] = v
	}
	return out
}

// tridiagEig diagonalizes the symmetric tridiagonal (alpha, beta) matrix,
// returning eigenvalues ascending and eigenvectors as columns
// (vecs[row][col]).
func tridiagEig(alpha, beta []float64) ([]float64, [][]float64, error) {
	m := len(alpha)
	t := linalg.New(m, m)
	for i := 0; i < m; i++ {
		t.Set(i, i, complex(alpha[i], 0))
		if i < len(beta) && i+1 < m {
			t.Set(i, i+1, complex(beta[i], 0))
			t.Set(i+1, i, complex(beta[i], 0))
		}
	}
	eig, err := linalg.EigH(t)
	if err != nil {
		return nil, nil, fmt.Errorf("lanczos: tridiagonal solve: %w", err)
	}
	vecs := make([][]float64, m)
	for i := 0; i < m; i++ {
		vecs[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			vecs[i][j] = real(eig.Vectors.At(i, j))
		}
	}
	return eig.Values, vecs, nil
}

func randomUnit(n int, rng *rand.Rand) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	inv := complex(1/norm(v), 0)
	for i := range v {
		v[i] *= inv
	}
	return v
}

func dot(a, b []complex128) complex128 {
	var s complex128
	for i := range a {
		s += cmplx.Conj(a[i]) * b[i]
	}
	return s
}

func realDot(a, b []complex128) float64 { return real(dot(a, b)) }

func norm(v []complex128) float64 {
	var s float64
	for _, x := range v {
		s += real(x)*real(x) + imag(x)*imag(x)
	}
	return math.Sqrt(s)
}

// NearTarget computes the k eigenstates of the Hermitian block-tridiagonal
// matrix h closest to the target energy σ by shift-invert Lanczos: the
// block-Thomas factorization of (σ·I − H) is computed once, each Lanczos
// step costs one banded solve, and the eigenvalues nearest σ dominate the
// transformed spectrum — converging in a few dozen iterations where the
// folded-spectrum transform needs thousands. This is the production path
// for band-edge states of large confined structures (NEMO-3D-style
// quantum dots).
func NearTarget(h *sparse.BlockTridiag, sigma float64, k int, tol float64, maxIter int, rng *rand.Rand) (*Result, error) {
	shifted := sparse.ShiftedFromHermitian(h, complex(sigma, 0)) // σ·I − H
	fac, err := shifted.FactorBTD()
	if err != nil {
		// σ sits (numerically) on an eigenvalue; nudge and retry once.
		shifted = sparse.ShiftedFromHermitian(h, complex(sigma*(1+1e-9)+1e-12, 0))
		fac, err = shifted.FactorBTD()
		if err != nil {
			return nil, fmt.Errorf("lanczos: shift-invert factorization: %w", err)
		}
	}
	op := &shiftInvertOp{fac: fac, n: h.N()}
	res, err := LargestMagnitude(op, k, tol, maxIter, rng)
	if err != nil {
		return nil, err
	}
	// Convert μ (eigenvalue of (σ−H)⁻¹) back to E = σ − 1/μ, then replace
	// by the Rayleigh quotient of H for full accuracy.
	tmp := h.MulVec
	for i, vec := range res.Vectors {
		hv := tmp(vec)
		res.Values[i] = realDot(vec, hv)
	}
	sortByValue(res)
	return res, nil
}

// shiftInvertOp applies (σ·I − H)⁻¹ through the cached factorization.
type shiftInvertOp struct {
	fac *sparse.BTDFactor
	n   int
}

// Apply implements Operator.
func (o *shiftInvertOp) Apply(x, y []complex128) {
	sol, err := o.fac.SolveVec(x)
	if err != nil {
		// The factorization was validated at construction; a failure here
		// means a caller-size mismatch, which Dim() prevents.
		panic(err)
	}
	copy(y, sol)
}

// Dim implements Operator.
func (o *shiftInvertOp) Dim() int { return o.n }

// sortByValue orders eigenpairs ascending.
func sortByValue(r *Result) {
	idx := make([]int, len(r.Values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.Values[idx[a]] < r.Values[idx[b]] })
	vals := make([]float64, len(idx))
	vecs := make([][]complex128, len(idx))
	for i, p := range idx {
		vals[i] = r.Values[p]
		vecs[i] = r.Vectors[p]
	}
	r.Values = vals
	r.Vectors = vecs
}
