package transport

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/negf"
	"repro/internal/sched"
)

// stubSolver is a pointSolver with scriptable behavior, for exercising the
// engine's scheduling without paying for real quantum solves.
type stubSolver struct {
	calls atomic.Int64
	// fail returns a non-nil error for energies it wants to fail.
	fail func(e float64) error
	// block, when set, delays each solve until ctx is canceled or the
	// duration elapses.
	block time.Duration
}

func (s *stubSolver) SolveCtx(ctx context.Context, e float64, density bool) (*negf.Result, error) {
	s.calls.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.block > 0 {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.block):
		}
	}
	if s.fail != nil {
		if err := s.fail(e); err != nil {
			return nil, err
		}
	}
	return &negf.Result{E: e, T: 2 * e}, nil
}

func stubEngine(workers int, s *stubSolver) *Engine {
	return &Engine{cfg: Config{Workers: workers}, solver: s, pool: sched.New(workers)}
}

func TestSpectrumGoroutineCountStaysBounded(t *testing.T) {
	// Regression test for the unbounded-spawn bug: the seed implementation
	// launched one goroutine per grid point (10k here) and only gated their
	// execution; the pool must instead keep live goroutines O(Workers).
	const workers = 8
	grid := UniformGrid(-1, 1, 10000)
	baseline := runtime.NumGoroutine()
	var peak atomic.Int64
	stub := &stubSolver{}
	stub.fail = func(e float64) error { // sampling hook, never fails
		n := int64(runtime.NumGoroutine())
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				return nil
			}
		}
	}
	eng := stubEngine(workers, stub)
	res, err := eng.Spectrum(context.Background(), grid, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(grid) {
		t.Fatalf("got %d results for %d energies", len(res), len(grid))
	}
	// Allow slack for test-runner goroutines, but stay far below the 10k a
	// goroutine-per-point implementation would show.
	if limit := int64(baseline + 2*workers + 8); peak.Load() > limit {
		t.Fatalf("peak goroutines %d exceeds O(Workers) bound %d for a 10k grid", peak.Load(), limit)
	}
}

func TestSpectrumDeterministicOrder(t *testing.T) {
	grid := UniformGrid(-2, 2, 503)
	eng := stubEngine(7, &stubSolver{})
	res, err := eng.Spectrum(context.Background(), grid, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.E != grid[i] || r.T != 2*grid[i] {
			t.Fatalf("slot %d holds E=%g, want %g: results not in grid order", i, r.E, grid[i])
		}
	}
}

func TestSpectrumReturnsFirstErrorByGridOrder(t *testing.T) {
	grid := UniformGrid(0, 10, 101) // grid[40] = 4.0
	boom := errors.New("solver blew up")
	stub := &stubSolver{fail: func(e float64) error {
		if e >= 4.0 {
			return fmt.Errorf("E=%g: %w", e, boom)
		}
		return nil
	}}
	eng := stubEngine(6, stub)
	for trial := 0; trial < 10; trial++ {
		_, err := eng.Spectrum(context.Background(), grid, false)
		if err == nil {
			t.Fatal("expected error")
		}
		if !errors.Is(err, boom) {
			t.Fatalf("cause lost: %v", err)
		}
		// Lowest failing grid index is 40 (E = 4.0), regardless of which
		// sibling failed first in wall-clock time.
		if want := fmt.Sprintf("transport: E=%g:", grid[40]); !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not report the first failing grid point %q", err, want)
		}
	}
}

func TestSpectrumFailureCancelsSiblings(t *testing.T) {
	// A failure at the first grid point must stop the sweep early: the
	// blocked in-flight siblings unblock via ctx and the undispatched tail
	// is skipped entirely.
	grid := UniformGrid(0, 1, 5000)
	stub := &stubSolver{
		block: 50 * time.Millisecond,
		fail: func(e float64) error {
			if e == 0 {
				return errors.New("first point fails")
			}
			return nil
		},
	}
	eng := stubEngine(4, stub)
	start := time.Now()
	_, err := eng.Spectrum(context.Background(), grid, false)
	if err == nil {
		t.Fatal("expected error")
	}
	if calls := stub.calls.Load(); calls == int64(len(grid)) {
		t.Fatal("failure did not short-circuit the sweep")
	}
	// 5000 points × 50ms at 4 workers would be over a minute; cancellation
	// must finish the call in a small multiple of one block interval.
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("sweep took %v after early failure", el)
	}
}

func TestSpectrumHonorsParentContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := stubEngine(4, &stubSolver{})
	_, err := eng.Spectrum(ctx, UniformGrid(0, 1, 64), false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestUniformGridDegenerate(t *testing.T) {
	if g := UniformGrid(-1, 1, 0); len(g) != 0 {
		t.Fatalf("UniformGrid(n=0) = %v, want empty", g)
	}
	if g := UniformGrid(-1, 1, -7); len(g) != 0 {
		t.Fatalf("UniformGrid(n=-7) = %v, want empty", g)
	}
	if g := UniformGrid(-1, 1, 1); len(g) != 1 || g[0] != -1 {
		t.Fatalf("UniformGrid(n=1) = %v, want [-1]", g)
	}
}
