package transport

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/negf"
	"repro/internal/resilience"
)

func TestCheckFiniteNamesQuantityAndEnergy(t *testing.T) {
	cases := []struct {
		name string
		res  negf.Result
		want string // "" means finite
	}{
		{"clean", negf.Result{T: 1, DOS: []float64{0.1}, SpectralL: []float64{0.2}, SpectralR: []float64{0.3}}, ""},
		{"nan T", negf.Result{T: math.NaN()}, "T"},
		{"inf T", negf.Result{T: math.Inf(1)}, "T"},
		{"nan DOS", negf.Result{T: 1, DOS: []float64{0, math.NaN()}}, "DOS"},
		{"inf spectralL", negf.Result{T: 1, SpectralL: []float64{math.Inf(-1)}}, "spectral"},
		{"nan spectralR", negf.Result{T: 1, SpectralR: []float64{math.NaN()}}, "spectral"},
	}
	for _, c := range cases {
		err := checkFinite(0.37, &c.res)
		if c.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		var nfe *NonFiniteError
		if !errors.As(err, &nfe) {
			t.Fatalf("%s: error %v is not a *NonFiniteError", c.name, err)
		}
		if nfe.Quantity != c.want || nfe.E != 0.37 {
			t.Fatalf("%s: got (%q, E=%g), want (%q, E=0.37)", c.name, nfe.Quantity, nfe.E, c.want)
		}
	}
}

func TestNonFiniteErrorIsPermanent(t *testing.T) {
	err := error(&NonFiniteError{E: 1.2, Quantity: "T"})
	if resilience.Classify(err) != resilience.Permanent {
		t.Fatal("numerical blow-ups must classify permanent (quarantine, not retry)")
	}
	// Classification survives wrapping, as the sweep layers wrap errors
	// with task coordinates.
	wrapped := errors.Join(errors.New("cluster: task 7"), err)
	if resilience.Classify(wrapped) != resilience.Permanent {
		t.Fatal("classification lost through wrapping")
	}
}

func TestTransmissionAtMatchesSpectrum(t *testing.T) {
	h := chainH(t, 6, 0, -1, nil)
	eng, err := NewEngine(h, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	grid := UniformGrid(-1.5, 1.5, 9)
	ts, err := eng.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range grid {
		v, err := eng.TransmissionAt(context.Background(), e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if v != ts[i] {
			t.Fatalf("E=%g: point solve %g != grid solve %g", e, v, ts[i])
		}
	}
}

func TestDropQuarantined(t *testing.T) {
	es := []float64{0, 1, 2, 3, 4}
	vs := []float64{10, 11, 12, 13, 14}
	ge, gv := DropQuarantined(es, vs, func(i int) bool { return i == 1 || i == 3 })
	if len(ge) != 3 || ge[0] != 0 || ge[1] != 2 || ge[2] != 4 {
		t.Fatalf("energies: %v", ge)
	}
	if gv[0] != 10 || gv[1] != 12 || gv[2] != 14 {
		t.Fatalf("values: %v", gv)
	}
	ae, av := DropQuarantined(es, vs, nil)
	if len(ae) != 5 || len(av) != 5 {
		t.Fatal("nil predicate must keep everything")
	}
}

func TestRenormalizedCurrentBounds(t *testing.T) {
	// A smooth transmission step across a biased window.
	n := 201
	es := UniformGrid(-0.5, 0.5, n)
	ts := make([]float64, n)
	for i, e := range es {
		ts[i] = 1 / (1 + math.Exp(-20*e)) // smooth turn-on at E=0
	}
	bias := Bias{MuL: 0.15, MuR: -0.15, Temperature: 300}

	full, err := Current(es, ts, bias, 2)
	if err != nil {
		t.Fatal(err)
	}
	if full <= 0 {
		t.Fatalf("full current %g not positive", full)
	}

	// No quarantine: bitwise-identical to the plain integrator.
	same, err := RenormalizedCurrent(es, ts, nil, bias, 2)
	if err != nil {
		t.Fatal(err)
	}
	if same != full {
		t.Fatalf("empty quarantine changed the integral: %v vs %v", same, full)
	}

	// A few isolated interior losses: the renormalized integral stays
	// within a small relative band of the truth — each gap contributes
	// O(de²·T″) trapezoid error, far below 1% here.
	bad := map[int]bool{31: true, 97: true, 98: true, 150: true}
	renorm, err := RenormalizedCurrent(es, ts, func(i int) bool { return bad[i] }, bias, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(renorm-full) / full; rel > 0.01 {
		t.Fatalf("4 quarantined points moved the current by %.2f%%", 100*rel)
	}

	// Quarantined window edges: the window-ratio rescale keeps the
	// integral in band because the edges are cold (f_L−f_R ≈ 0 there).
	edge := map[int]bool{0: true, 1: true, n - 1: true}
	clipped, err := RenormalizedCurrent(es, ts, func(i int) bool { return edge[i] }, bias, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(clipped-full) / full; rel > 0.02 {
		t.Fatalf("edge quarantine moved the current by %.2f%%", 100*rel)
	}

	// Losing nearly everything must fail, not silently extrapolate.
	if _, err := RenormalizedCurrent(es, ts, func(i int) bool { return i > 0 }, bias, 2); err == nil {
		t.Fatal("integration over a single survivor accepted")
	}
	if _, err := RenormalizedCurrent(es[:3], ts[:4], nil, bias, 2); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
}
