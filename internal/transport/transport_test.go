package transport

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sparse"
	"repro/internal/tb"
	"repro/internal/units"
)

func chainH(t *testing.T, n int, eps0, hop float64, pot []float64) *sparse.BlockTridiag {
	t.Helper()
	s, err := lattice.NewLinearChain(0.5, n)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SingleBandChain(eps0, hop), tb.Options{Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestEngineFormalismsAgree(t *testing.T) {
	pot := []float64{0, 0, 0.4, 0.4, 0, 0}
	h := chainH(t, 6, 0, -1, pot)
	grid := UniformGrid(-1.5, 1.5, 21)
	wf, err := NewEngine(h, Config{Formalism: WaveFunction})
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewEngine(h, Config{Formalism: NEGFRGF})
	if err != nil {
		t.Fatal(err)
	}
	tw, err := wf.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gf.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tw {
		if math.Abs(tw[i]-tg[i]) > 1e-8*(1+tg[i]) {
			t.Fatalf("formalisms disagree at E=%g: %g vs %g", grid[i], tw[i], tg[i])
		}
	}
}

func TestSpectrumDeterministicUnderParallelism(t *testing.T) {
	h := chainH(t, 8, 0, -1, []float64{0, 0.1, 0.2, 0.3, 0.3, 0.2, 0.1, 0})
	grid := UniformGrid(-1.8, 1.8, 33)
	e1, err := NewEngine(h, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e8, err := NewEngine(h, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := e1.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := e8.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if t1[i] != t8[i] {
			t.Fatalf("parallel evaluation changed result at %d: %g vs %g", i, t1[i], t8[i])
		}
	}
}

// TestLandauerCurrentQuantized: at low temperature and small bias inside a
// region of T = 1, the conductance must be the conductance quantum.
func TestLandauerCurrentQuantized(t *testing.T) {
	h := chainH(t, 6, 0, -1, nil)
	eng, err := NewEngine(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const vb = 0.01 // 10 mV window centered at E=0, deep inside the band
	grid := UniformGrid(-0.1, 0.1, 401)
	ts, err := eng.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	bias := Bias{MuL: vb / 2, MuR: -vb / 2, Temperature: 1} // ~0.1 meV kT
	i, err := Current(grid, ts, bias, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := i / vb
	if math.Abs(g-units.ConductanceQuantum)/units.ConductanceQuantum > 0.01 {
		t.Fatalf("conductance %g S, want G0 = %g S", g, units.ConductanceQuantum)
	}
}

func TestCurrentSignAndZeroBias(t *testing.T) {
	h := chainH(t, 5, 0, -1, nil)
	eng, err := NewEngine(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	grid := UniformGrid(-1, 1, 101)
	ts, err := eng.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	i0, err := Current(grid, ts, Bias{MuL: 0.1, MuR: 0.1, Temperature: 300}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i0) > 1e-18 {
		t.Fatalf("zero-bias current %g != 0", i0)
	}
	ip, err := Current(grid, ts, Bias{MuL: 0.2, MuR: 0.0, Temperature: 300}, 2)
	if err != nil {
		t.Fatal(err)
	}
	im, err := Current(grid, ts, Bias{MuL: 0.0, MuR: 0.2, Temperature: 300}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ip <= 0 {
		t.Fatalf("forward current %g not positive", ip)
	}
	if math.Abs(ip+im) > 1e-12*math.Abs(ip) {
		t.Fatalf("current not antisymmetric in bias: %g vs %g", ip, im)
	}
}

func TestCurrentValidation(t *testing.T) {
	if _, err := Current([]float64{0, 1}, []float64{1}, Bias{Temperature: 300}, 2); err == nil {
		t.Fatal("accepted mismatched grids")
	}
	if _, err := Current([]float64{0}, []float64{1}, Bias{Temperature: 300}, 2); err == nil {
		t.Fatal("accepted single-point grid")
	}
}

// TestChargeDensityEquilibrium: in equilibrium (equal chemical
// potentials), the occupation of a uniform chain site must match the
// analytic band filling n = ∫ dE·ρ(E)·f(E) with the 1-D DOS.
func TestChargeDensityEquilibrium(t *testing.T) {
	const hop = -1.0
	h := chainH(t, 7, 0, hop, nil)
	eng, err := NewEngine(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Half filling: mu at band center, low temperature → n = 0.5/site.
	// The grid bounds are chosen so no point lands exactly on the van
	// Hove singularities at E = ±2|t|, where the 1/√ divergence would
	// poison the trapezoidal rule.
	grid := UniformGrid(-2.499, 2.499, 1187)
	bias := Bias{MuL: 0, MuR: 0, Temperature: 100}
	n, err := eng.ChargeDensity(context.Background(), grid, bias)
	if err != nil {
		t.Fatal(err)
	}
	// Interior sites of a long chain approach the bulk value 0.5.
	mid := n[len(n)/2]
	if math.Abs(mid-0.5) > 0.05 {
		t.Fatalf("half-filled chain occupation %g, want 0.5", mid)
	}
}

func TestChargeDensityBiasDependence(t *testing.T) {
	h := chainH(t, 6, 0, -1, nil)
	eng, err := NewEngine(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	grid := UniformGrid(-2.5, 2.5, 601)
	nEq, err := eng.ChargeDensity(context.Background(), grid, Bias{MuL: 0, MuR: 0, Temperature: 300})
	if err != nil {
		t.Fatal(err)
	}
	nHi, err := eng.ChargeDensity(context.Background(), grid, Bias{MuL: 0.5, MuR: 0.5, Temperature: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := range nEq {
		if nHi[i] <= nEq[i] {
			t.Fatalf("raising both chemical potentials did not raise occupation at site %d", i)
		}
	}
}

func TestUniformGrid(t *testing.T) {
	g := UniformGrid(-1, 1, 5)
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-15 {
			t.Fatalf("UniformGrid = %v", g)
		}
	}
}

func TestAdaptiveGridRefinesStep(t *testing.T) {
	// A potential step creates a sharp transmission onset; the adaptive
	// grid must concentrate points near it.
	pot := []float64{0, 0, 0.8, 0.8, 0.8, 0, 0}
	h := chainH(t, 7, 0, -1, pot)
	eng, err := NewEngine(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	energies, ts, err := eng.AdaptiveGrid(context.Background(), -1.5, 1.5, 9, 60, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(energies) != len(ts) {
		t.Fatal("grid/value length mismatch")
	}
	if len(energies) <= 9 {
		t.Fatal("adaptive grid did not refine a sharp feature")
	}
	if !sort.Float64sAreSorted(energies) {
		t.Fatal("adaptive grid not sorted")
	}
	// The barrier shifts the local band bottom to −2|t| + V = −1.2 eV, so
	// the sharp tunneling onset sits near there; refinement density in
	// that window must exceed the flat region deep in the band.
	count := func(lo, hi float64) int {
		c := 0
		for _, e := range energies {
			if e >= lo && e <= hi {
				c++
			}
		}
		return c
	}
	if count(-1.45, -0.6) <= count(0.7, 1.5) {
		t.Fatalf("adaptive grid did not concentrate near the transmission onset: %v", energies)
	}
}

func TestEngineConfigValidation(t *testing.T) {
	h := chainH(t, 4, 0, -1, nil)
	if _, err := NewEngine(h, Config{Formalism: Formalism(99)}); err == nil {
		t.Fatal("accepted unknown formalism")
	}
}

func TestSplitSolveFormalismInEngine(t *testing.T) {
	h := chainH(t, 12, 0, -1, []float64{0, 0, 0, 0.3, 0.3, 0.3, 0.3, 0.3, 0, 0, 0, 0})
	ref, err := NewEngine(h, Config{Formalism: NEGFRGF})
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewEngine(h, Config{Formalism: WaveFunction, Domains: 4})
	if err != nil {
		t.Fatal(err)
	}
	grid := UniformGrid(-1.5, 1.5, 11)
	tr, err := ref.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	tsp, err := split.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if math.Abs(tr[i]-tsp[i]) > 1e-8*(1+tr[i]) {
			t.Fatalf("SplitSolve engine disagrees at E=%g: %g vs %g", grid[i], tsp[i], tr[i])
		}
	}
}

// TestStrainedWireTransportConsistency: the full pipeline on a strained
// structure with Harrison scaling — both formalisms must still agree, and
// strain must actually move the transmission onset.
func TestStrainedWireTransportConsistency(t *testing.T) {
	build := func(strain float64) *sparse.BlockTridiag {
		s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if strain != 0 {
			if err := s.ApplyStrain(strain, strain, strain); err != nil {
				t.Fatal(err)
			}
		}
		h, err := tb.Assemble(s, tb.SiliconSP3S(),
			tb.Options{PassivationShift: 12, HarrisonExponent: 2})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := build(0.03)
	wf, err := NewEngine(h, Config{Formalism: WaveFunction})
	if err != nil {
		t.Fatal(err)
	}
	gf, err := NewEngine(h, Config{Formalism: NEGFRGF})
	if err != nil {
		t.Fatal(err)
	}
	grid := UniformGrid(6.0, 7.5, 7)
	tw, err := wf.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gf.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tw {
		if math.Abs(tw[i]-tg[i]) > 1e-7*(1+tg[i]) {
			t.Fatalf("strained formalism mismatch at E=%g: %g vs %g", grid[i], tw[i], tg[i])
		}
	}
	// Strain moves the spectrum: the strained and unstrained transmission
	// spectra must differ somewhere on the grid.
	h0 := build(0)
	ref, err := NewEngine(h0, Config{Formalism: WaveFunction})
	if err != nil {
		t.Fatal(err)
	}
	t0, err := ref.Transmissions(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t0 {
		if math.Abs(t0[i]-tw[i]) > 1e-6 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("3% hydrostatic strain left the transmission spectrum unchanged")
	}
}
