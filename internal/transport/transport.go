// Package transport turns single-energy quantum solvers into device
// observables: transmission spectra evaluated in parallel over energy
// grids (the "energy" level of the paper's four-level parallelism),
// Landauer currents, and energy-integrated electron densities for the
// self-consistent Poisson coupling.
package transport

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/negf"
	"repro/internal/sparse"
	"repro/internal/splitsolve"
	"repro/internal/units"
	"repro/internal/wavefunction"
)

// Formalism selects the single-energy solver.
type Formalism int

const (
	// WaveFunction is the scattering-state solver (block-Thomas or
	// SplitSolve) — the production path.
	WaveFunction Formalism = iota
	// NEGFRGF is the recursive Green's function solver — the baseline.
	NEGFRGF
)

// String implements fmt.Stringer.
func (f Formalism) String() string {
	switch f {
	case WaveFunction:
		return "WF"
	case NEGFRGF:
		return "NEGF-RGF"
	default:
		return fmt.Sprintf("Formalism(%d)", int(f))
	}
}

// Config selects the solver and its numerical parameters.
type Config struct {
	// Formalism picks WF or NEGF.
	Formalism Formalism
	// Eta is the energy broadening in eV (default 1e-6).
	Eta float64
	// Domains selects SplitSolve spatial decomposition for the WF
	// formalism (≤ 1 means the serial block-Thomas solve).
	Domains int
	// Workers bounds concurrent energy points (0: GOMAXPROCS).
	Workers int
	// Cache optionally shares memoized contact self-energies across
	// engines whose lead blocks are identical (pinned contacts in a
	// self-consistent loop).
	Cache *negf.SelfEnergyCache
}

func (c Config) withDefaults() Config {
	if c.Eta == 0 {
		c.Eta = 1e-6
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// pointSolver is the common surface of the two formalisms.
type pointSolver interface {
	Solve(e float64, density bool) (*negf.Result, error)
}

// Engine evaluates energy-resolved transport quantities for one device
// Hamiltonian (one bias/momentum point).
type Engine struct {
	cfg    Config
	solver pointSolver
}

// NewEngine builds an engine for the given device Hamiltonian.
func NewEngine(h *sparse.BlockTridiag, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	var solver pointSolver
	switch cfg.Formalism {
	case WaveFunction:
		wf, err := wavefunction.NewSolver(h, cfg.Eta)
		if err != nil {
			return nil, err
		}
		if cfg.Domains > 1 {
			wf.SolveStrategy = splitsolve.Strategy(cfg.Domains, cfg.Workers)
		}
		wf.Cache = cfg.Cache
		solver = wf
	case NEGFRGF:
		gf, err := negf.NewSolver(h, cfg.Eta)
		if err != nil {
			return nil, err
		}
		gf.Cache = cfg.Cache
		solver = gf
	default:
		return nil, fmt.Errorf("transport: unknown formalism %d", cfg.Formalism)
	}
	return &Engine{cfg: cfg, solver: solver}, nil
}

// SolveAt exposes the single-energy solve of the configured formalism.
func (e *Engine) SolveAt(energy float64, density bool) (*negf.Result, error) {
	return e.solver.Solve(energy, density)
}

// Spectrum evaluates the solver at every grid energy concurrently and
// returns the results in grid order (deterministic regardless of
// scheduling). density controls whether spectral functions are assembled.
func (e *Engine) Spectrum(energies []float64, density bool) ([]*negf.Result, error) {
	results := make([]*negf.Result, len(energies))
	errs := make([]error, len(energies))
	sem := make(chan struct{}, e.cfg.Workers)
	var wg sync.WaitGroup
	for i, en := range energies {
		wg.Add(1)
		go func(i int, en float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = e.solver.Solve(en, density)
		}(i, en)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("transport: E=%g: %w", energies[i], err)
		}
	}
	return results, nil
}

// Transmissions is a convenience wrapper returning only T(E) over a grid.
func (e *Engine) Transmissions(energies []float64) ([]float64, error) {
	res, err := e.Spectrum(energies, false)
	if err != nil {
		return nil, err
	}
	t := make([]float64, len(res))
	for i, r := range res {
		t[i] = r.T
	}
	return t, nil
}

// Bias describes the two contact reservoirs.
type Bias struct {
	// MuL and MuR are the contact electrochemical potentials in eV.
	MuL, MuR float64
	// Temperature in kelvin.
	Temperature float64
}

// KT returns k_B·T in eV.
func (b Bias) KT() float64 { return units.KT(b.Temperature) }

// Current integrates the Landauer formula over a transmission spectrum
// given on an energy grid (trapezoidal rule), returning amperes per spin
// degeneracy factor g (2 for spin-degenerate Hamiltonians, 1 for
// spin-resolved ones):
//
//	I = g·(e/h)·∫ T(E)·[f_L(E) − f_R(E)] dE.
func Current(energies, transmissions []float64, bias Bias, spinDegeneracy float64) (float64, error) {
	if len(energies) != len(transmissions) {
		return 0, fmt.Errorf("transport: %d energies vs %d transmissions", len(energies), len(transmissions))
	}
	if len(energies) < 2 {
		return 0, fmt.Errorf("transport: need at least 2 grid points")
	}
	kT := bias.KT()
	integrand := func(i int) float64 {
		f := units.Fermi(energies[i], bias.MuL, kT) - units.Fermi(energies[i], bias.MuR, kT)
		return transmissions[i] * f
	}
	var integral float64
	for i := 0; i+1 < len(energies); i++ {
		de := energies[i+1] - energies[i]
		integral += 0.5 * de * (integrand(i) + integrand(i+1))
	}
	return spinDegeneracy * units.CurrentQuantum * integral, nil
}

// ChargeDensity integrates the contact-resolved spectral functions into
// the orbital-resolved electron density (dimensionless occupation per
// orbital):
//
//	n_i = ∫ dE/(2π) [A_L,ii·f_L + A_R,ii·f_R].
//
// The energy grid must span the occupied conduction window of interest.
func (e *Engine) ChargeDensity(energies []float64, bias Bias) ([]float64, error) {
	if len(energies) < 2 {
		return nil, fmt.Errorf("transport: need at least 2 grid points")
	}
	res, err := e.Spectrum(energies, true)
	if err != nil {
		return nil, err
	}
	kT := bias.KT()
	n := make([]float64, len(res[0].SpectralL))
	for i := 0; i+1 < len(energies); i++ {
		de := energies[i+1] - energies[i]
		fL0 := units.Fermi(energies[i], bias.MuL, kT)
		fR0 := units.Fermi(energies[i], bias.MuR, kT)
		fL1 := units.Fermi(energies[i+1], bias.MuL, kT)
		fR1 := units.Fermi(energies[i+1], bias.MuR, kT)
		for k := range n {
			v0 := res[i].SpectralL[k]*fL0 + res[i].SpectralR[k]*fR0
			v1 := res[i+1].SpectralL[k]*fL1 + res[i+1].SpectralR[k]*fR1
			n[k] += 0.5 * de * (v0 + v1)
		}
	}
	inv2pi := 1 / (2 * 3.141592653589793)
	for k := range n {
		n[k] *= inv2pi
	}
	return n, nil
}

// UniformGrid returns n energies spanning [lo, hi] inclusive.
func UniformGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	g := make([]float64, n)
	for i := range g {
		g[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return g
}

// AdaptiveGrid refines a transmission grid: starting from a coarse uniform
// grid, intervals where T changes by more than tol are bisected until the
// budget of maxPoints is exhausted. It returns the refined energies (the
// engine is consulted for T at each new point). This mirrors the adaptive
// energy meshes production quantum-transport codes use near resonances and
// band edges.
func (e *Engine) AdaptiveGrid(lo, hi float64, nInit, maxPoints int, tol float64) ([]float64, []float64, error) {
	if nInit < 2 {
		nInit = 2
	}
	energies := UniformGrid(lo, hi, nInit)
	ts, err := e.Transmissions(energies)
	if err != nil {
		return nil, nil, err
	}
	for len(energies) < maxPoints {
		// Find the interval with the largest |ΔT| above tol.
		worst, worstIdx := tol, -1
		for i := 0; i+1 < len(energies); i++ {
			d := ts[i+1] - ts[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst, worstIdx = d, i
			}
		}
		if worstIdx < 0 {
			break
		}
		mid := 0.5 * (energies[worstIdx] + energies[worstIdx+1])
		tm, err := e.Transmissions([]float64{mid})
		if err != nil {
			return nil, nil, err
		}
		energies = append(energies[:worstIdx+1],
			append([]float64{mid}, energies[worstIdx+1:]...)...)
		ts = append(ts[:worstIdx+1], append([]float64{tm[0]}, ts[worstIdx+1:]...)...)
	}
	return energies, ts, nil
}
