// Package transport turns single-energy quantum solvers into device
// observables: transmission spectra evaluated in parallel over energy
// grids (the "energy" level of the paper's four-level parallelism),
// Landauer currents, and energy-integrated electron densities for the
// self-consistent Poisson coupling.
//
// All grid-level entry points take a context.Context and run on a
// sched.Pool, so energy parallelism composes with the spatial-domain
// (SplitSolve) level below it and the bias/momentum levels above it
// under one shared worker budget.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/negf"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/splitsolve"
	"repro/internal/units"
	"repro/internal/wavefunction"
)

// NonFiniteError reports a numerical blow-up — a NaN or Inf observable —
// at one energy point. It names the offending energy and quantity so the
// fault-tolerance machinery upstream (internal/resilience,
// cluster.RunTasksResumable) can classify it: the error is Permanent
// (rerunning the same deterministic solve reproduces it), which makes the
// point a quarantine candidate rather than a retry candidate.
type NonFiniteError struct {
	// E is the energy (eV) whose solve blew up.
	E float64
	// Quantity names the non-finite observable (e.g. "T", "DOS",
	// "spectral", "charge").
	Quantity string
}

// Error implements error.
func (e *NonFiniteError) Error() string {
	return fmt.Sprintf("transport: non-finite %s at E=%g eV", e.Quantity, e.E)
}

// TransientError marks the error Permanent for resilience.Classify.
func (e *NonFiniteError) TransientError() bool { return false }

// checkFinite validates the observables of one solve, returning a typed
// *NonFiniteError naming the first non-finite quantity.
func checkFinite(e float64, r *negf.Result) error {
	if math.IsNaN(r.T) || math.IsInf(r.T, 0) {
		return &NonFiniteError{E: e, Quantity: "T"}
	}
	for _, v := range r.DOS {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &NonFiniteError{E: e, Quantity: "DOS"}
		}
	}
	for _, s := range [][]float64{r.SpectralL, r.SpectralR} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &NonFiniteError{E: e, Quantity: "spectral"}
			}
		}
	}
	return nil
}

// Formalism selects the single-energy solver.
type Formalism int

const (
	// WaveFunction is the scattering-state solver (block-Thomas or
	// SplitSolve) — the production path.
	WaveFunction Formalism = iota
	// NEGFRGF is the recursive Green's function solver — the baseline.
	NEGFRGF
)

// String implements fmt.Stringer.
func (f Formalism) String() string {
	switch f {
	case WaveFunction:
		return "WF"
	case NEGFRGF:
		return "NEGF-RGF"
	default:
		return fmt.Sprintf("Formalism(%d)", int(f))
	}
}

// Config selects the solver and its numerical parameters.
type Config struct {
	// Formalism picks WF or NEGF.
	Formalism Formalism
	// Eta is the energy broadening in eV (default 1e-6).
	Eta float64
	// Domains selects SplitSolve spatial decomposition for the WF
	// formalism (≤ 1 means the serial block-Thomas solve).
	Domains int
	// Workers bounds the engine's total concurrency across the energy and
	// spatial-domain levels combined (0: GOMAXPROCS). Ignored when Pool is
	// set.
	Workers int
	// SolveBatch groups energy points into batches of up to this width for
	// the batched per-energy solvers (panel-packed RGF and block-Thomas
	// passes that advance a whole batch one block-column at a time). Each
	// batch element is bitwise-identical to its width-1 solve, so this is a
	// pure executor knob — observables and flop totals do not depend on it.
	// ≤ 1 solves each energy independently, exactly the historical path.
	SolveBatch int
	// Pool optionally shares a worker budget with other engines (e.g. all
	// bias points of an I-V sweep drawing from one machine-wide pool). Nil
	// creates a private pool of Workers size.
	Pool *sched.Pool
	// Cache optionally shares memoized contact self-energies across
	// engines — within a self-consistent loop, and (with LeadMeta
	// declaring the bias shifts) across every bias point of a sweep.
	Cache *negf.SelfEnergyCache
	// LeadMeta optionally declares the contacts' cache identity (family
	// keys and rigid bias shifts) so Cache can key self-energies
	// shift-invariantly. Nil leaves the fingerprint fallback, which only
	// coalesces bitwise-identical leads.
	LeadMeta *negf.LeadMeta
}

func (c Config) withDefaults() Config {
	if c.Eta == 0 {
		c.Eta = 1e-6
	}
	return c
}

// pointSolver is the common surface of the two formalisms.
type pointSolver interface {
	SolveCtx(ctx context.Context, e float64, density bool) (*negf.Result, error)
}

// batchPointSolver is the batched surface both formalisms also implement:
// one call solves a whole batch of energies with positional results and
// errors, each element bitwise-identical to its width-1 solve.
type batchPointSolver interface {
	SolveBatchCtx(ctx context.Context, es []float64, density bool) ([]*negf.Result, []error)
}

// Engine evaluates energy-resolved transport quantities for one device
// Hamiltonian (one bias/momentum point).
type Engine struct {
	cfg    Config
	solver pointSolver
	pool   *sched.Pool
}

// NewEngine builds an engine for the given device Hamiltonian.
func NewEngine(h *sparse.BlockTridiag, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	pool := cfg.Pool
	if pool == nil {
		pool = sched.New(cfg.Workers)
	}
	var solver pointSolver
	switch cfg.Formalism {
	case WaveFunction:
		wf, err := wavefunction.NewSolver(h, cfg.Eta)
		if err != nil {
			return nil, err
		}
		if cfg.Domains > 1 {
			// SplitSolve borrows helpers from the same pool that runs the
			// energy level, so nested parallelism stays within one budget.
			wf.SolveStrategy = splitsolve.Strategy(cfg.Domains, pool)
		}
		wf.Cache = cfg.Cache
		wf.Leads.ApplyMeta(cfg.LeadMeta)
		solver = wf
	case NEGFRGF:
		gf, err := negf.NewSolver(h, cfg.Eta)
		if err != nil {
			return nil, err
		}
		gf.Cache = cfg.Cache
		gf.Leads.ApplyMeta(cfg.LeadMeta)
		solver = gf
	default:
		return nil, fmt.Errorf("transport: unknown formalism %d", cfg.Formalism)
	}
	return &Engine{cfg: cfg, solver: solver, pool: pool}, nil
}

// Pool returns the worker pool the engine schedules on, for callers that
// want to run surrounding parallelism (bias or momentum sweeps) within
// the same budget.
func (e *Engine) Pool() *sched.Pool { return e.pool }

// SolveAt exposes the single-energy solve of the configured formalism,
// quarantine-checked: a solve whose observables come back NaN/Inf fails
// with a *NonFiniteError naming the energy point.
func (e *Engine) SolveAt(ctx context.Context, energy float64, density bool) (*negf.Result, error) {
	r, err := e.solver.SolveCtx(ctx, energy, density)
	if err != nil {
		return nil, err
	}
	if err := checkFinite(energy, r); err != nil {
		return nil, err
	}
	return r, nil
}

// SolveBatch solves a batch of energies in one interleaved pass of the
// configured formalism, with the same per-point NaN/Inf quarantine check
// as SolveAt. Results and errors are positional: results[j] is nil exactly
// where errs[j] is set, and every element matches its width-1 SolveAt
// bitwise. A solver without a batched path degrades to looping SolveAt.
func (e *Engine) SolveBatch(ctx context.Context, energies []float64, density bool) ([]*negf.Result, []error) {
	bs, ok := e.solver.(batchPointSolver)
	if !ok {
		results := make([]*negf.Result, len(energies))
		errs := make([]error, len(energies))
		for j, en := range energies {
			results[j], errs[j] = e.SolveAt(ctx, en, density)
		}
		return results, errs
	}
	results, errs := bs.SolveBatchCtx(ctx, energies, density)
	for j := range results {
		if errs[j] == nil && results[j] != nil {
			if err := checkFinite(energies[j], results[j]); err != nil {
				results[j], errs[j] = nil, err
			}
		}
	}
	return results, errs
}

// TransmissionAt evaluates T at a single energy — the per-(bias,k,E) task
// granule of a resumable sweep — with the same NaN/Inf quarantine check
// as Spectrum.
func (e *Engine) TransmissionAt(ctx context.Context, energy float64) (float64, error) {
	r, err := e.SolveAt(ctx, energy, false)
	if err != nil {
		return 0, err
	}
	return r.T, nil
}

// Spectrum evaluates the solver at every grid energy on the engine's pool
// and returns the results in grid order (deterministic regardless of
// scheduling). density controls whether spectral functions are assembled.
// On failure the in-flight sibling energies are canceled and the error of
// the lowest-index failing grid point is returned.
func (e *Engine) Spectrum(ctx context.Context, energies []float64, density bool) ([]*negf.Result, error) {
	if e.cfg.SolveBatch > 1 && len(energies) > 1 {
		return e.spectrumBatched(ctx, energies, density)
	}
	results, err := sched.Map(ctx, e.pool, "energy", len(energies),
		func(ctx context.Context, i int) (*negf.Result, error) {
			r, err := e.solver.SolveCtx(ctx, energies[i], density)
			if err != nil {
				return nil, err
			}
			if err := checkFinite(energies[i], r); err != nil {
				return nil, err
			}
			return r, nil
		})
	if err != nil {
		if te, ok := sched.AsTaskError(err); ok {
			return nil, fmt.Errorf("transport: E=%g: %w", energies[te.Index], te.Err)
		}
		return nil, err
	}
	return results, nil
}

// energyError carries the energy of the batch element that failed, so the
// batched Spectrum reports the same "transport: E=…" error as the looped
// one even though the scheduler's task index names a batch, not a point.
type energyError struct {
	e   float64
	err error
}

func (e *energyError) Error() string { return fmt.Sprintf("E=%g: %v", e.e, e.err) }

func (e *energyError) Unwrap() error { return e.err }

// spectrumBatched is the batched executor behind Spectrum: the energy grid
// is cut into ⌈n/W⌉ contiguous batches of width ≤ W, and the batches run
// on the engine's pool with one interleaved solver pass each. Failure
// semantics match the looped path: in-flight sibling batches are canceled
// and the error of the lowest failing grid point is returned.
func (e *Engine) spectrumBatched(ctx context.Context, energies []float64, density bool) ([]*negf.Result, error) {
	w := e.cfg.SolveBatch
	ng := (len(energies) + w - 1) / w
	groups, err := sched.Map(ctx, e.pool, "energy-batch", ng,
		func(ctx context.Context, g int) ([]*negf.Result, error) {
			lo := g * w
			hi := min(lo+w, len(energies))
			es := energies[lo:hi]
			rs, errs := e.SolveBatch(ctx, es, density)
			for j, err := range errs {
				if err != nil {
					return nil, &energyError{e: es[j], err: err}
				}
			}
			return rs, nil
		})
	if err != nil {
		if te, ok := sched.AsTaskError(err); ok {
			var ee *energyError
			if errors.As(te.Err, &ee) {
				return nil, fmt.Errorf("transport: E=%g: %w", ee.e, ee.err)
			}
			return nil, fmt.Errorf("transport: E=%g: %w", energies[te.Index*w], te.Err)
		}
		return nil, err
	}
	results := make([]*negf.Result, 0, len(energies))
	for _, g := range groups {
		results = append(results, g...)
	}
	return results, nil
}

// Transmissions is a convenience wrapper returning only T(E) over a grid.
func (e *Engine) Transmissions(ctx context.Context, energies []float64) ([]float64, error) {
	res, err := e.Spectrum(ctx, energies, false)
	if err != nil {
		return nil, err
	}
	t := make([]float64, len(res))
	for i, r := range res {
		t[i] = r.T
	}
	return t, nil
}

// Bias describes the two contact reservoirs.
type Bias struct {
	// MuL and MuR are the contact electrochemical potentials in eV.
	MuL, MuR float64
	// Temperature in kelvin.
	Temperature float64
}

// KT returns k_B·T in eV.
func (b Bias) KT() float64 { return units.KT(b.Temperature) }

// Current integrates the Landauer formula over a transmission spectrum
// given on an energy grid (trapezoidal rule), returning amperes per spin
// degeneracy factor g (2 for spin-degenerate Hamiltonians, 1 for
// spin-resolved ones):
//
//	I = g·(e/h)·∫ T(E)·[f_L(E) − f_R(E)] dE.
func Current(energies, transmissions []float64, bias Bias, spinDegeneracy float64) (float64, error) {
	if len(energies) != len(transmissions) {
		return 0, fmt.Errorf("transport: %d energies vs %d transmissions", len(energies), len(transmissions))
	}
	if len(energies) < 2 {
		return 0, fmt.Errorf("transport: need at least 2 grid points")
	}
	kT := bias.KT()
	integrand := func(i int) float64 {
		f := units.Fermi(energies[i], bias.MuL, kT) - units.Fermi(energies[i], bias.MuR, kT)
		return transmissions[i] * f
	}
	var integral float64
	for i := 0; i+1 < len(energies); i++ {
		de := energies[i+1] - energies[i]
		integral += 0.5 * de * (integrand(i) + integrand(i+1))
	}
	return spinDegeneracy * units.CurrentQuantum * integral, nil
}

// ChargeDensity integrates the contact-resolved spectral functions into
// the orbital-resolved electron density (dimensionless occupation per
// orbital):
//
//	n_i = ∫ dE/(2π) [A_L,ii·f_L + A_R,ii·f_R].
//
// The energy grid must span the occupied conduction window of interest.
func (e *Engine) ChargeDensity(ctx context.Context, energies []float64, bias Bias) ([]float64, error) {
	if len(energies) < 2 {
		return nil, fmt.Errorf("transport: need at least 2 grid points")
	}
	res, err := e.Spectrum(ctx, energies, true)
	if err != nil {
		return nil, err
	}
	kT := bias.KT()
	n := make([]float64, len(res[0].SpectralL))
	for i := 0; i+1 < len(energies); i++ {
		de := energies[i+1] - energies[i]
		fL0 := units.Fermi(energies[i], bias.MuL, kT)
		fR0 := units.Fermi(energies[i], bias.MuR, kT)
		fL1 := units.Fermi(energies[i+1], bias.MuL, kT)
		fR1 := units.Fermi(energies[i+1], bias.MuR, kT)
		for k := range n {
			v0 := res[i].SpectralL[k]*fL0 + res[i].SpectralR[k]*fR0
			v1 := res[i+1].SpectralL[k]*fL1 + res[i+1].SpectralR[k]*fR1
			n[k] += 0.5 * de * (v0 + v1)
		}
	}
	inv2pi := 1 / (2 * 3.141592653589793)
	for k := range n {
		n[k] *= inv2pi
		if math.IsNaN(n[k]) || math.IsInf(n[k], 0) {
			// The per-point spectral functions were finite (Spectrum checks
			// them), so a blow-up here came from the integration weights.
			return nil, &NonFiniteError{E: energies[0], Quantity: "charge"}
		}
	}
	return n, nil
}

// DropQuarantined filters an energy grid and its per-point values down to
// the surviving points, removing every index for which bad returns true.
// It is the renormalization primitive for gracefully degraded sweeps: the
// trapezoidal integrators (Current, RenormalizedCurrent) then span each
// gap with a single wider panel, i.e. they linearly interpolate the
// integrand across the quarantined points.
func DropQuarantined(energies, values []float64, bad func(i int) bool) (es, vs []float64) {
	es = make([]float64, 0, len(energies))
	vs = make([]float64, 0, len(values))
	for i := range energies {
		if bad != nil && bad(i) {
			continue
		}
		es = append(es, energies[i])
		vs = append(vs, values[i])
	}
	return es, vs
}

// RenormalizedCurrent integrates the Landauer current over a grid from
// which some points were quarantined (lost to numerical blow-ups or
// exhausted retries). The bad points are dropped; interior gaps are
// bridged by the trapezoidal rule (linear interpolation of T·[f_L−f_R]
// across the gap, with error O(gap²·|∂²integrand|)); if quarantine clipped
// the window edges, the integral is rescaled by the full-to-surviving
// window ratio — production sweeps put cold window edges well outside the
// conducting region, so both corrections stay small for isolated losses.
// At least two points must survive.
func RenormalizedCurrent(energies, transmissions []float64, bad func(i int) bool, bias Bias, spinDegeneracy float64) (float64, error) {
	if len(energies) != len(transmissions) {
		return 0, fmt.Errorf("transport: %d energies vs %d transmissions", len(energies), len(transmissions))
	}
	es, ts := DropQuarantined(energies, transmissions, bad)
	if len(es) < 2 {
		return 0, fmt.Errorf("transport: only %d of %d grid points survive quarantine", len(es), len(energies))
	}
	cur, err := Current(es, ts, bias, spinDegeneracy)
	if err != nil {
		return 0, err
	}
	if full, kept := energies[len(energies)-1]-energies[0], es[len(es)-1]-es[0]; kept > 0 && kept < full {
		cur *= full / kept
	}
	return cur, nil
}

// UniformGrid returns n energies spanning [lo, hi] inclusive. n <= 0
// yields an empty grid; n == 1 yields the single point lo (the degenerate
// one-point "span" pins to the lower edge).
func UniformGrid(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []float64{lo}
	}
	g := make([]float64, n)
	for i := range g {
		g[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return g
}

// AdaptiveGrid refines a transmission grid: starting from a coarse uniform
// grid, intervals where T changes by more than tol are bisected until no
// interval exceeds tol or the budget of maxPoints is exhausted. Refinement
// proceeds in rounds: every interval currently above tol is bisected
// (worst first, capped to the remaining budget) and the batch of midpoints
// is evaluated in one parallel sweep over the engine's pool — so the
// refinement stays load-balanced instead of solving one energy at a time.
// It returns the refined energies and transmissions in ascending order.
// This mirrors the adaptive energy meshes production quantum-transport
// codes use near resonances and band edges.
func (e *Engine) AdaptiveGrid(ctx context.Context, lo, hi float64, nInit, maxPoints int, tol float64) ([]float64, []float64, error) {
	if nInit < 2 {
		nInit = 2
	}
	energies := UniformGrid(lo, hi, nInit)
	ts, err := e.Transmissions(ctx, energies)
	if err != nil {
		return nil, nil, err
	}
	for len(energies) < maxPoints {
		// Collect every interval whose |ΔT| exceeds tol, worst first.
		type interval struct {
			left int // index of the interval's left endpoint
			jump float64
		}
		var frontier []interval
		for i := 0; i+1 < len(energies); i++ {
			d := ts[i+1] - ts[i]
			if d < 0 {
				d = -d
			}
			if d > tol {
				frontier = append(frontier, interval{left: i, jump: d})
			}
		}
		if len(frontier) == 0 {
			break
		}
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].jump > frontier[b].jump })
		if budget := maxPoints - len(energies); len(frontier) > budget {
			frontier = frontier[:budget]
		}
		mids := make([]float64, len(frontier))
		for j, iv := range frontier {
			mids[j] = 0.5 * (energies[iv.left] + energies[iv.left+1])
		}
		tm, err := e.Transmissions(ctx, mids)
		if err != nil {
			return nil, nil, err
		}
		// Merge the evaluated midpoints back in ascending energy order.
		midAfter := make(map[int]int, len(frontier)) // left index → frontier slot
		for j, iv := range frontier {
			midAfter[iv.left] = j
		}
		merged := make([]float64, 0, len(energies)+len(mids))
		mergedT := make([]float64, 0, len(energies)+len(mids))
		for i := range energies {
			merged = append(merged, energies[i])
			mergedT = append(mergedT, ts[i])
			if j, ok := midAfter[i]; ok {
				merged = append(merged, mids[j])
				mergedT = append(mergedT, tm[j])
			}
		}
		energies, ts = merged, mergedT
	}
	return energies, ts, nil
}
