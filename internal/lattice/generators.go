package lattice

import (
	"fmt"
	"math"
)

// neighborTol is the relative tolerance on bond length used when detecting
// nearest neighbors in ideal (unstrained) structures.
const neighborTol = 0.05

// zincblendeBasis lists the 8-atom conventional-cell basis of the
// zinc-blende (and, with equal species, diamond) lattice in units of the
// lattice constant. Species 0 sits on the anion sublattice, species 1 on
// the cation sublattice.
var zincblendeBasis = []struct {
	Species int
	Frac    Vec3
}{
	{0, Vec3{0, 0, 0}},
	{0, Vec3{0, 0.5, 0.5}},
	{0, Vec3{0.5, 0, 0.5}},
	{0, Vec3{0.5, 0.5, 0}},
	{1, Vec3{0.25, 0.25, 0.25}},
	{1, Vec3{0.25, 0.75, 0.75}},
	{1, Vec3{0.75, 0.25, 0.75}},
	{1, Vec3{0.75, 0.75, 0.25}},
}

// NewZincblendeNanowire builds a free-standing rectangular [100] nanowire:
// cellsX conventional cells along the transport direction (one principal
// layer per cell), and a cross-section of cellsY×cellsZ cells with hard
// walls. a is the lattice constant in nm. Surface atoms keep their
// dangling-bond count for the tight-binding passivation model.
func NewZincblendeNanowire(a float64, cellsX, cellsY, cellsZ int) (*Structure, error) {
	if cellsX < 1 || cellsY < 1 || cellsZ < 1 {
		return nil, fmt.Errorf("lattice: nanowire needs at least 1 cell per direction, got %d×%d×%d",
			cellsX, cellsY, cellsZ)
	}
	if a <= 0 {
		return nil, fmt.Errorf("lattice: non-positive lattice constant %g", a)
	}
	s := &Structure{
		LayerPeriod: a,
		BondLength:  a * math.Sqrt(3) / 4,
		CoordMax:    4,
	}
	for cx := 0; cx < cellsX; cx++ {
		for cy := 0; cy < cellsY; cy++ {
			for cz := 0; cz < cellsZ; cz++ {
				for _, b := range zincblendeBasis {
					p := Vec3{
						(float64(cx) + b.Frac.X) * a,
						(float64(cy) + b.Frac.Y) * a,
						(float64(cz) + b.Frac.Z) * a,
					}
					s.Atoms = append(s.Atoms, Atom{Species: b.Species, Pos: p, Layer: cx})
				}
			}
		}
	}
	s.sortIntoLayers(cellsX)
	s.buildNeighbors(neighborTol)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewZincblendeUTB builds an ultra-thin body: hard-wall confinement in z
// (cellsZ conventional cells thick), Bloch-periodic in y with period
// cellsY·a, and cellsX principal layers along transport. Transverse
// momentum enters the Hamiltonian through the bonds that wrap in y.
func NewZincblendeUTB(a float64, cellsX, cellsY, cellsZ int) (*Structure, error) {
	s, err := NewZincblendeNanowire(a, cellsX, cellsY, cellsZ)
	if err != nil {
		return nil, err
	}
	s.PeriodicY = true
	s.PeriodY = float64(cellsY) * a
	// Rebuild neighbors so the periodic images in y are bonded.
	s.buildNeighbors(neighborTol)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// GrapheneBond is the carbon-carbon distance in nm.
const GrapheneBond = 0.142

// NewArmchairGNR builds an armchair-edge graphene nanoribbon with nRows
// atomic rows across the width and nCells principal layers (period 3·d)
// along transport. The standard "N-AGNR" naming has N = nRows.
func NewArmchairGNR(nRows, nCells int) (*Structure, error) {
	if nRows < 2 || nCells < 1 {
		return nil, fmt.Errorf("lattice: armchair GNR needs nRows ≥ 2, nCells ≥ 1; got %d, %d", nRows, nCells)
	}
	d := GrapheneBond
	rowPitch := math.Sqrt(3) * d / 2
	period := 3 * d
	s := &Structure{
		LayerPeriod: period,
		BondLength:  d,
		CoordMax:    3,
	}
	// Honeycomb with armchair direction along x: lattice vectors
	// a1 = (3d/2, +√3d/2), a2 = (3d/2, −√3d/2), B sublattice at +(d, 0).
	// Enumerate generously and cut to the ribbon box.
	wMax := float64(nRows-1)*rowPitch + 1e-9
	lMax := float64(nCells)*period - 1e-9
	for n1 := -2 * nCells; n1 <= 2*nCells+2; n1++ {
		for n2 := -2*nCells - nRows; n2 <= 2*nCells+nRows+2; n2++ {
			ax := 1.5 * d * float64(n1+n2)
			ay := rowPitch * float64(n1-n2)
			for _, off := range []Vec3{{0, 0, 0}, {d, 0, 0}} {
				p := Vec3{ax + off.X, ay + off.Y, 0}
				if p.X < -1e-9 || p.X > lMax || p.Y < -1e-9 || p.Y > wMax {
					continue
				}
				layer := int(math.Floor(p.X/period + 1e-9))
				if layer >= nCells {
					continue
				}
				s.Atoms = append(s.Atoms, Atom{Pos: p, Layer: layer})
			}
		}
	}
	s.sortIntoLayers(nCells)
	s.buildNeighbors(neighborTol)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewZigzagGNR builds a zigzag-edge graphene nanoribbon with nChains zigzag
// chains across the width and nCells principal layers (period √3·d) along
// transport.
func NewZigzagGNR(nChains, nCells int) (*Structure, error) {
	if nChains < 1 || nCells < 1 {
		return nil, fmt.Errorf("lattice: zigzag GNR needs nChains ≥ 1, nCells ≥ 1; got %d, %d", nChains, nCells)
	}
	d := GrapheneBond
	period := math.Sqrt(3) * d
	s := &Structure{
		LayerPeriod: period,
		BondLength:  d,
		CoordMax:    3,
	}
	lMax := float64(nCells)*period - 1e-9
	// Rows m = 0..nChains-1, each contributing an A atom at y = 1.5·d·m and
	// a B atom at y = 1.5·d·m + d; odd rows shift x by half a period.
	for m := 0; m < nChains; m++ {
		xOff := 0.0
		if m%2 == 1 {
			xOff = period / 2
		}
		for n := -1; n <= nCells+1; n++ {
			x := float64(n)*period + xOff
			for _, y := range []float64{1.5 * d * float64(m), 1.5*d*float64(m) + d} {
				if x < -1e-9 || x > lMax {
					continue
				}
				layer := int(math.Floor(x/period + 1e-9))
				if layer >= nCells {
					continue
				}
				s.Atoms = append(s.Atoms, Atom{Pos: Vec3{x, y, 0}, Layer: layer})
			}
		}
	}
	s.sortIntoLayers(nCells)
	s.buildNeighbors(neighborTol)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// NewLinearChain builds a 1-D atomic chain with nAtoms sites at spacing
// a nm — the analytic workhorse of the validation suite.
func NewLinearChain(a float64, nAtoms int) (*Structure, error) {
	if nAtoms < 1 {
		return nil, fmt.Errorf("lattice: chain needs at least one atom")
	}
	s := &Structure{
		LayerPeriod: a,
		BondLength:  a,
		CoordMax:    2,
	}
	for i := 0; i < nAtoms; i++ {
		s.Atoms = append(s.Atoms, Atom{Pos: Vec3{float64(i) * a, 0, 0}, Layer: i})
	}
	s.sortIntoLayers(nAtoms)
	s.buildNeighbors(neighborTol)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
