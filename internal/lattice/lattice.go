// Package lattice generates the atomistic structures the simulator
// transports electrons through: diamond/zinc-blende nanowires and
// ultra-thin bodies along [100], honeycomb graphene nanoribbons, and
// single-orbital chains for analytic validation.
//
// A structure is a finite stack of identical "principal layers"
// perpendicular to the transport direction x. Nearest-neighbor bonds only
// ever connect a layer to itself or to the adjacent layers — the property
// that makes the device Hamiltonian block-tridiagonal and that every
// open-boundary solver in this repository relies on. Structures may be
// periodic in y (ultra-thin bodies), in which case bonds crossing the
// boundary carry a wrap index and the Hamiltonian acquires a transverse
// Bloch phase exp(±i·k·W).
package lattice

import (
	"fmt"
	"math"
	"sort"
)

// Vec3 is a point or displacement in 3-D space, in nanometers.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the scalar product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Atom is one lattice site.
type Atom struct {
	// Species indexes the material's species table: 0 for the anion (or
	// the single species of an elemental crystal), 1 for the cation.
	Species int
	// Pos is the position in nm.
	Pos Vec3
	// Layer is the principal-layer index along the transport direction.
	Layer int
	// Dangling counts missing nearest neighbors (surface bonds), which the
	// tight-binding assembly passivates with an on-site energy shift.
	Dangling int
}

// Neighbor is one directed nearest-neighbor bond from a given atom.
type Neighbor struct {
	// Index is the target atom.
	Index int
	// Delta is the bond vector from source to target in nm, including any
	// periodic image displacement.
	Delta Vec3
	// WrapY is −1, 0 or +1: how many transverse periods the bond crosses.
	WrapY int
}

// Structure is a finite layered atomistic device region.
type Structure struct {
	// Atoms in global index order, sorted by layer.
	Atoms []Atom
	// Neighbors lists the nearest-neighbor bonds of each atom.
	Neighbors [][]Neighbor
	// LayerAtoms[i] lists the atom indices of principal layer i, in a
	// consistent intra-layer order across layers.
	LayerAtoms [][]int
	// LayerPeriod is the extent of one principal layer along x, in nm.
	LayerPeriod float64
	// PeriodY is the transverse period in nm when PeriodicY is true.
	PeriodY float64
	// PeriodicY marks ultra-thin-body-like structures that are Bloch
	// periodic in y.
	PeriodicY bool
	// BondLength is the ideal nearest-neighbor distance in nm.
	BondLength float64
	// CoordMax is the bulk coordination number (4 for tetrahedral, 3 for
	// honeycomb, 2 for a chain).
	CoordMax int
}

// NLayers returns the number of principal layers.
func (s *Structure) NLayers() int { return len(s.LayerAtoms) }

// NAtoms returns the total number of atoms.
func (s *Structure) NAtoms() int { return len(s.Atoms) }

// LayerSize returns the number of atoms in layer i.
func (s *Structure) LayerSize(i int) int { return len(s.LayerAtoms[i]) }

// Validate checks the layered-structure invariants: every bond connects
// layers at distance ≤ 1, every layer is non-empty, and all layers have
// the same atom count (required for the leads to be periodic continuations
// of the end layers).
func (s *Structure) Validate() error {
	if len(s.LayerAtoms) == 0 {
		return fmt.Errorf("lattice: structure has no layers")
	}
	n0 := len(s.LayerAtoms[0])
	for i, la := range s.LayerAtoms {
		if len(la) == 0 {
			return fmt.Errorf("lattice: layer %d is empty", i)
		}
		if len(la) != n0 {
			return fmt.Errorf("lattice: layer %d has %d atoms, layer 0 has %d", i, len(la), n0)
		}
	}
	for i, nbrs := range s.Neighbors {
		for _, nb := range nbrs {
			dl := s.Atoms[nb.Index].Layer - s.Atoms[i].Layer
			if dl < -1 || dl > 1 {
				return fmt.Errorf("lattice: bond %d→%d spans %d layers; structure is not block-tridiagonal",
					i, nb.Index, dl)
			}
		}
	}
	return nil
}

// ApplyStrain deforms the structure homogeneously: positions, periods and
// bond vectors are scaled by (1+exx, 1+eyy, 1+ezz) while the bond topology
// (who is bonded to whom) is preserved — the standard treatment of
// moderate homogeneous strain in atomistic device simulation. BondLength
// keeps its unstrained reference value so the tight-binding assembly can
// scale hoppings by the actual bond-length change (Harrison's rule).
func (s *Structure) ApplyStrain(exx, eyy, ezz float64) error {
	if exx <= -1 || eyy <= -1 || ezz <= -1 {
		return fmt.Errorf("lattice: strain collapses the crystal: (%g, %g, %g)", exx, eyy, ezz)
	}
	sx, sy, sz := 1+exx, 1+eyy, 1+ezz
	for i := range s.Atoms {
		p := &s.Atoms[i].Pos
		p.X *= sx
		p.Y *= sy
		p.Z *= sz
	}
	s.LayerPeriod *= sx
	s.PeriodY *= sy
	for i := range s.Neighbors {
		for k := range s.Neighbors[i] {
			d := &s.Neighbors[i][k].Delta
			d.X *= sx
			d.Y *= sy
			d.Z *= sz
		}
	}
	return nil
}

// buildNeighbors fills s.Neighbors with all atom pairs at the ideal bond
// length (within tol, relative), honoring y-periodicity, using uniform
// spatial binning so construction stays O(N).
func (s *Structure) buildNeighbors(tol float64) {
	n := len(s.Atoms)
	s.Neighbors = make([][]Neighbor, n)
	cut := s.BondLength * (1 + tol)
	cell := cut * 1.001
	type key struct{ x, y, z int }
	bins := make(map[key][]int, n)
	binOf := func(p Vec3) key {
		return key{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell)), int(math.Floor(p.Z / cell))}
	}
	for i, a := range s.Atoms {
		k := binOf(a.Pos)
		bins[k] = append(bins[k], i)
	}
	images := []float64{0}
	if s.PeriodicY {
		images = []float64{0, s.PeriodY, -s.PeriodY}
	}
	for i, a := range s.Atoms {
		for wi, shift := range images {
			p := a.Pos
			p.Y += shift
			kb := binOf(p)
			for dx := -1; dx <= 1; dx++ {
				for dy := -1; dy <= 1; dy++ {
					for dz := -1; dz <= 1; dz++ {
						for _, j := range bins[key{kb.x + dx, kb.y + dy, kb.z + dz}] {
							if j == i && wi == 0 {
								continue
							}
							d := s.Atoms[j].Pos.Sub(p)
							if r := d.Norm(); math.Abs(r-s.BondLength) <= tol*s.BondLength {
								wrap := 0
								if wi == 1 {
									wrap = 1 // bond leaves through +y, lands on the -y image
								} else if wi == 2 {
									wrap = -1
								}
								s.Neighbors[i] = append(s.Neighbors[i],
									Neighbor{Index: j, Delta: d, WrapY: wrap})
							}
						}
					}
				}
			}
		}
	}
	// Dangling-bond counting treats the transport direction as periodic:
	// the end layers continue into semi-infinite contacts, so their
	// missing ±x neighbors are not surface bonds and must not be
	// passivated. Only genuinely missing transverse neighbors count.
	for i := range s.Atoms {
		s.Atoms[i].Dangling = s.CoordMax - len(s.Neighbors[i]) - s.virtualXBonds(i, tol)
		if s.Atoms[i].Dangling < 0 {
			s.Atoms[i].Dangling = 0
		}
	}
}

// virtualXBonds counts the bonds atom i would gain if the structure were
// continued periodically along the transport direction (combined with the
// transverse period when present) — the neighbors it will have once the
// contacts are attached.
func (s *Structure) virtualXBonds(i int, tol float64) int {
	last := 0
	for _, a := range s.Atoms {
		if a.Layer > last {
			last = a.Layer
		}
	}
	lx := float64(last+1) * s.LayerPeriod
	cut := s.BondLength * (1 + 2*tol)
	// Only atoms near the x boundaries can gain wrapped bonds.
	if x := s.Atoms[i].Pos.X; x > cut && x < lx-cut {
		return 0
	}
	yShifts := []float64{0}
	if s.PeriodicY {
		yShifts = []float64{0, s.PeriodY, -s.PeriodY}
	}
	count := 0
	for _, xShift := range []float64{lx, -lx} {
		for _, yShift := range yShifts {
			p := s.Atoms[i].Pos
			p.X += xShift
			p.Y += yShift
			for j := range s.Atoms {
				d := s.Atoms[j].Pos.Sub(p)
				if r := d.Norm(); math.Abs(r-s.BondLength) <= tol*s.BondLength {
					count++
				}
			}
		}
	}
	return count
}

// sortIntoLayers orders s.Atoms by (layer, y, z, x) and rebuilds LayerAtoms.
// A deterministic intra-layer order makes every layer's Hamiltonian block
// identical for uniform structures, which the lead construction requires.
func (s *Structure) sortIntoLayers(nLayers int) {
	perm := make([]int, len(s.Atoms))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		aa, bb := s.Atoms[perm[a]], s.Atoms[perm[b]]
		if aa.Layer != bb.Layer {
			return aa.Layer < bb.Layer
		}
		const eps = 1e-9
		// Compare x within the layer first (sub-layer atomic planes), then
		// y, z for a lexicographic intra-plane order.
		axr := aa.Pos.X - float64(aa.Layer)*s.LayerPeriod
		bxr := bb.Pos.X - float64(bb.Layer)*s.LayerPeriod
		if math.Abs(axr-bxr) > eps {
			return axr < bxr
		}
		if math.Abs(aa.Pos.Y-bb.Pos.Y) > eps {
			return aa.Pos.Y < bb.Pos.Y
		}
		return aa.Pos.Z < bb.Pos.Z
	})
	inv := make([]int, len(perm))
	newAtoms := make([]Atom, len(s.Atoms))
	for newIdx, oldIdx := range perm {
		newAtoms[newIdx] = s.Atoms[oldIdx]
		inv[oldIdx] = newIdx
	}
	s.Atoms = newAtoms
	// Remap neighbor lists if already built (callers normally build after).
	if s.Neighbors != nil {
		newN := make([][]Neighbor, len(s.Neighbors))
		for oldIdx, lst := range s.Neighbors {
			cp := make([]Neighbor, len(lst))
			for k, nb := range lst {
				cp[k] = Neighbor{Index: inv[nb.Index], Delta: nb.Delta, WrapY: nb.WrapY}
			}
			newN[inv[oldIdx]] = cp
		}
		s.Neighbors = newN
	}
	s.LayerAtoms = make([][]int, nLayers)
	for i, a := range s.Atoms {
		s.LayerAtoms[a.Layer] = append(s.LayerAtoms[a.Layer], i)
	}
}
