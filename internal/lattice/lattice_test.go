package lattice

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVec3Arithmetic(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, -5, 6}
	if v.Add(w) != (Vec3{5, -3, 9}) {
		t.Fatal("Add")
	}
	if v.Sub(w) != (Vec3{-3, 7, -3}) {
		t.Fatal("Sub")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if v.Dot(w) != 4-10+18 {
		t.Fatal("Dot")
	}
	if math.Abs(Vec3{3, 4, 0}.Norm()-5) > 1e-15 {
		t.Fatal("Norm")
	}
}

func TestLinearChain(t *testing.T) {
	s, err := NewLinearChain(0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NAtoms() != 5 || s.NLayers() != 5 {
		t.Fatalf("chain has %d atoms, %d layers", s.NAtoms(), s.NLayers())
	}
	// Interior atoms have 2 neighbors, ends have 1.
	if len(s.Neighbors[0]) != 1 || len(s.Neighbors[2]) != 2 || len(s.Neighbors[4]) != 1 {
		t.Fatalf("chain coordination wrong: %d %d %d",
			len(s.Neighbors[0]), len(s.Neighbors[2]), len(s.Neighbors[4]))
	}
	// The transport ends continue into contacts, so no site of a clean
	// chain carries dangling (passivatable) bonds.
	for i, a := range s.Atoms {
		if a.Dangling != 0 {
			t.Fatalf("site %d reports %d dangling bonds; transport ends must not count", i, a.Dangling)
		}
	}
}

func TestZincblendeNanowireCounts(t *testing.T) {
	const a = 0.5431 // Si
	s, err := NewZincblendeNanowire(a, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 8 atoms per conventional cell.
	if want := 8 * 3 * 2 * 2; s.NAtoms() != want {
		t.Fatalf("atom count %d, want %d", s.NAtoms(), want)
	}
	if s.NLayers() != 3 {
		t.Fatalf("layer count %d, want 3", s.NLayers())
	}
	for i := 0; i < s.NLayers(); i++ {
		if s.LayerSize(i) != 8*2*2 {
			t.Fatalf("layer %d size %d, want 32", i, s.LayerSize(i))
		}
	}
}

func TestZincblendeNanowireBonds(t *testing.T) {
	const a = 0.5431
	s, err := NewZincblendeNanowire(a, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := a * math.Sqrt(3) / 4
	maxCoord := 0
	for i, nbrs := range s.Neighbors {
		if len(nbrs) > 4 {
			t.Fatalf("atom %d has %d neighbors (> 4)", i, len(nbrs))
		}
		if len(nbrs) > maxCoord {
			maxCoord = len(nbrs)
		}
		for _, nb := range nbrs {
			if math.Abs(nb.Delta.Norm()-want) > 1e-9 {
				t.Fatalf("bond length %g, want %g", nb.Delta.Norm(), want)
			}
			// Zinc-blende bonds always connect the two sublattices.
			if s.Atoms[i].Species == s.Atoms[nb.Index].Species {
				t.Fatal("bond connects same species in zinc-blende lattice")
			}
		}
	}
	if maxCoord != 4 {
		t.Fatalf("no fully-coordinated atoms found in 2x2x2 wire (max %d)", maxCoord)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	s, err := NewZincblendeNanowire(0.5431, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, nbrs := range s.Neighbors {
		for _, nb := range nbrs {
			found := false
			for _, back := range s.Neighbors[nb.Index] {
				if back.Index == i && back.WrapY == -nb.WrapY {
					d := back.Delta.Add(nb.Delta)
					if d.Norm() < 1e-9 {
						found = true
						break
					}
				}
			}
			if !found {
				t.Fatalf("bond %d→%d has no reverse partner", i, nb.Index)
			}
		}
	}
}

func TestZincblendeLayersIdentical(t *testing.T) {
	s, err := NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every layer must be the same atomic motif shifted by LayerPeriod:
	// compare intra-layer fractional coordinates of layer 0 and layer 2.
	for l := 1; l < s.NLayers(); l++ {
		for k, idx := range s.LayerAtoms[l] {
			ref := s.Atoms[s.LayerAtoms[0][k]]
			got := s.Atoms[idx]
			dx := got.Pos.X - ref.Pos.X - float64(l)*s.LayerPeriod
			if math.Abs(dx) > 1e-9 ||
				math.Abs(got.Pos.Y-ref.Pos.Y) > 1e-9 ||
				math.Abs(got.Pos.Z-ref.Pos.Z) > 1e-9 ||
				got.Species != ref.Species {
				t.Fatalf("layer %d atom %d does not match layer 0 motif", l, k)
			}
		}
	}
}

func TestUTBHasWrappedBonds(t *testing.T) {
	s, err := NewZincblendeUTB(0.5431, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.PeriodicY {
		t.Fatal("UTB not marked periodic")
	}
	wrapped := 0
	for _, nbrs := range s.Neighbors {
		for _, nb := range nbrs {
			if nb.WrapY != 0 {
				wrapped++
			}
		}
	}
	if wrapped == 0 {
		t.Fatal("UTB has no bonds wrapping the transverse period")
	}
	// Periodicity in y removes the y-surface dangling bonds: the UTB must
	// have strictly fewer dangling bonds than the equivalent wire.
	wire, _ := NewZincblendeNanowire(0.5431, 2, 1, 1)
	dUTB, dWire := 0, 0
	for i := range s.Atoms {
		dUTB += s.Atoms[i].Dangling
		dWire += wire.Atoms[i].Dangling
	}
	if dUTB >= dWire {
		t.Fatalf("UTB dangling %d not below wire dangling %d", dUTB, dWire)
	}
}

func TestArmchairGNR(t *testing.T) {
	for _, nRows := range []int{3, 5, 7} {
		s, err := NewArmchairGNR(nRows, 4)
		if err != nil {
			t.Fatal(err)
		}
		if s.NLayers() != 4 {
			t.Fatalf("AGNR layers = %d", s.NLayers())
		}
		// Standard N-AGNR unit cell holds 2N atoms.
		if s.LayerSize(0) != 2*nRows {
			t.Fatalf("N=%d AGNR layer has %d atoms, want %d", nRows, s.LayerSize(0), 2*nRows)
		}
		for i, nbrs := range s.Neighbors {
			if len(nbrs) > 3 {
				t.Fatalf("AGNR atom %d has %d neighbors", i, len(nbrs))
			}
		}
	}
}

func TestZigzagGNR(t *testing.T) {
	s, err := NewZigzagGNR(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.NLayers() != 5 {
		t.Fatalf("ZGNR layers = %d", s.NLayers())
	}
	// Each zigzag chain contributes 2 atoms per period.
	if s.LayerSize(0) != 2*4 {
		t.Fatalf("ZGNR layer size = %d, want 8", s.LayerSize(0))
	}
	interior := 0
	for _, nbrs := range s.Neighbors {
		if len(nbrs) == 3 {
			interior++
		}
	}
	if interior == 0 {
		t.Fatal("no 3-coordinated atoms in zigzag GNR")
	}
}

func TestGeneratorInputValidation(t *testing.T) {
	if _, err := NewZincblendeNanowire(0.5, 0, 1, 1); err == nil {
		t.Fatal("accepted zero-length wire")
	}
	if _, err := NewZincblendeNanowire(-1, 1, 1, 1); err == nil {
		t.Fatal("accepted negative lattice constant")
	}
	if _, err := NewArmchairGNR(1, 1); err == nil {
		t.Fatal("accepted too-narrow AGNR")
	}
	if _, err := NewZigzagGNR(0, 1); err == nil {
		t.Fatal("accepted zero-chain ZGNR")
	}
	if _, err := NewLinearChain(0.5, 0); err == nil {
		t.Fatal("accepted empty chain")
	}
}

// TestDanglingUniformAcrossLayers pins the contact-consistency property:
// every layer of a uniform wire must carry the same dangling-bond pattern,
// or the passivation shift would make the end layers differ from the lead
// continuation and silently break the open boundary conditions.
func TestDanglingUniformAcrossLayers(t *testing.T) {
	for _, gen := range []func() (*Structure, error){
		func() (*Structure, error) { return NewZincblendeNanowire(0.5431, 4, 1, 1) },
		func() (*Structure, error) { return NewZincblendeUTB(0.5431, 3, 1, 1) },
		func() (*Structure, error) { return NewArmchairGNR(5, 4) },
	} {
		s, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for l := 1; l < s.NLayers(); l++ {
			for k := range s.LayerAtoms[l] {
				ref := s.Atoms[s.LayerAtoms[0][k]].Dangling
				got := s.Atoms[s.LayerAtoms[l][k]].Dangling
				if got != ref {
					t.Fatalf("layer %d atom %d has %d dangling bonds, layer 0 has %d",
						l, k, got, ref)
				}
			}
		}
	}
}

func TestValidateCatchesLongBonds(t *testing.T) {
	s, err := NewLinearChain(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: connect layer 0 directly to layer 3.
	s.Neighbors[0] = append(s.Neighbors[0], Neighbor{Index: 3, Delta: Vec3{1.5, 0, 0}})
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed a bond spanning 3 layers")
	}
}

func TestQuickWireLayerUniformity(t *testing.T) {
	f := func(cx, cy, cz uint8) bool {
		nx := int(cx%3) + 2
		ny := int(cy%2) + 1
		nz := int(cz%2) + 1
		s, err := NewZincblendeNanowire(0.5431, nx, ny, nz)
		if err != nil {
			return false
		}
		if s.NAtoms() != 8*nx*ny*nz {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
