package splitsolve

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/tb"
	"repro/internal/wavefunction"
)

// randomSystem builds a random, well-conditioned block-tridiagonal system
// with the given layer sizes plus a matching random RHS.
func randomSystem(rng *rand.Rand, sizes []int, k int) (*sparse.BlockTridiag, []*linalg.Matrix) {
	l := len(sizes)
	randM := func(r, c int) *linalg.Matrix {
		m := linalg.New(r, c)
		for i := range m.Data {
			m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return m
	}
	diag := make([]*linalg.Matrix, l)
	upper := make([]*linalg.Matrix, l-1)
	lower := make([]*linalg.Matrix, l-1)
	for i, n := range sizes {
		diag[i] = randM(n, n)
		for q := 0; q < n; q++ {
			diag[i].Set(q, q, diag[i].At(q, q)+complex(8, 2))
		}
	}
	for i := 0; i < l-1; i++ {
		upper[i] = randM(sizes[i], sizes[i+1])
		lower[i] = randM(sizes[i+1], sizes[i])
	}
	a, err := sparse.NewBlockTridiag(diag, upper, lower)
	if err != nil {
		panic(err)
	}
	rhs := make([]*linalg.Matrix, l)
	for i, n := range sizes {
		rhs[i] = randM(n, k)
	}
	return a, rhs
}

func TestSplitSolveMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	sizes := []int{3, 2, 4, 3, 2, 5, 3, 2, 3, 4}
	a, rhs := randomSystem(rng, sizes, 3)
	want, err := a.SolveBlocks(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 7, 10} {
		got, err := Solve(context.Background(), a, rhs, Options{Domains: p})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for i := range want {
			if !got[i].Equal(want[i], 1e-9) {
				t.Fatalf("P=%d: layer %d disagrees with serial solve (dev %g)",
					p, i, got[i].Sub(want[i]).MaxAbs())
			}
		}
	}
}

func TestSplitSolveResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	sizes := []int{4, 4, 4, 4, 4, 4}
	a, rhs := randomSystem(rng, sizes, 2)
	x, err := Solve(context.Background(), a, rhs, Options{Domains: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·X = B directly, column by column.
	off := a.Offsets()
	n := a.N()
	for col := 0; col < 2; col++ {
		xv := make([]complex128, n)
		bv := make([]complex128, n)
		for i := range sizes {
			for q := 0; q < sizes[i]; q++ {
				xv[off[i]+q] = x[i].At(q, col)
				bv[off[i]+q] = rhs[i].At(q, col)
			}
		}
		ax := a.MulVec(xv)
		for i := range ax {
			d := ax[i] - bv[i]
			if math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Fatalf("residual %g at row %d", math.Hypot(real(d), imag(d)), i)
			}
		}
	}
}

func TestSplitSolveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a, rhs := randomSystem(rng, []int{2, 2, 2}, 1)
	if _, err := Solve(context.Background(), a, rhs, Options{Domains: 0}); err == nil {
		t.Fatal("accepted zero domains")
	}
	if _, err := Solve(context.Background(), a, rhs, Options{Domains: 4}); err == nil {
		t.Fatal("accepted more domains than layers")
	}
	if _, err := Solve(context.Background(), a, rhs[:2], Options{Domains: 2}); err == nil {
		t.Fatal("accepted short RHS")
	}
}

func TestSplitSolveSingleLayerDomains(t *testing.T) {
	// P == L: every domain is a single layer; the reduced system carries
	// the whole coupling structure.
	rng := rand.New(rand.NewSource(63))
	sizes := []int{2, 3, 2, 3, 2}
	a, rhs := randomSystem(rng, sizes, 2)
	want, err := a.SolveBlocks(rhs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(context.Background(), a, rhs, Options{Domains: len(sizes)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !got[i].Equal(want[i], 1e-9) {
			t.Fatalf("layer %d disagrees for single-layer domains", i)
		}
	}
}

// TestSplitSolveInsideWFSolver runs the full physics pipeline with the
// domain-decomposed strategy and cross-checks transmission against NEGF.
func TestSplitSolveInsideWFSolver(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pot := make([]float64, s.NAtoms())
	for i, at := range s.Atoms {
		if at.Layer >= 3 && at.Layer <= 5 {
			pot[i] = 0.3
		}
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 10, Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := negf.NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	wf, err := wavefunction.NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	wf.SolveStrategy = Strategy(4, sched.New(2))
	for _, e := range []float64{1.2, 1.9, 2.6} {
		tWF, err := wf.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		tRef, err := ref.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(tWF-tRef) > 1e-7*(1+tRef) {
			t.Fatalf("E=%g: SplitSolve T=%g vs NEGF T=%g", e, tWF, tRef)
		}
	}
}

func TestQuickSplitSolveEquivalence(t *testing.T) {
	f := func(seed int64, layersRaw, pRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := int(layersRaw%8) + 2
		sizes := make([]int, l)
		for i := range sizes {
			sizes[i] = rng.Intn(3) + 1
		}
		p := int(pRaw)%l + 1
		k := int(kRaw%3) + 1
		a, rhs := randomSystem(rng, sizes, k)
		want, err := a.SolveBlocks(rhs)
		if err != nil {
			return true // singular random system: nothing to compare
		}
		got, err := Solve(context.Background(), a, rhs, Options{Domains: p})
		if err != nil {
			return false
		}
		for i := range want {
			if !got[i].Equal(want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {7, 7}, {12, 4}, {5, 2}} {
		b := partition(tc.n, tc.p)
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Fatalf("partition(%d,%d) = %v", tc.n, tc.p, b)
		}
		for d := 0; d < tc.p; d++ {
			sz := b[d+1] - b[d]
			if sz < tc.n/tc.p || sz > tc.n/tc.p+1 {
				t.Fatalf("partition(%d,%d) uneven: %v", tc.n, tc.p, b)
			}
		}
	}
}

func TestInterfaceRank(t *testing.T) {
	// The zinc-blende [100] layer coupling touches only the boundary
	// atomic planes: rank is a quarter of the block size.
	s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 12})
	if err != nil {
		t.Fatal(err)
	}
	a := sparse.ShiftedFromHermitian(h, complex(6.8, 1e-6))
	rank := InterfaceRank(a)
	block := a.LayerSize(0)
	if rank <= 0 || rank >= block {
		t.Fatalf("interface rank %d not inside (0, %d)", rank, block)
	}
	if rank != block/4 {
		t.Fatalf("zinc-blende [100] interface rank %d, want %d", rank, block/4)
	}
	// A chain couples through a single orbital.
	cs, err := lattice.NewLinearChain(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tb.Assemble(cs, tb.SingleBandChain(0, -1), tb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := InterfaceRank(sparse.ShiftedFromHermitian(ch, complex(0, 1e-6))); r != 1 {
		t.Fatalf("chain interface rank %d, want 1", r)
	}
}
