// Package splitsolve implements the paper's parallel sparse direct solver
// for nearest-neighbor tight-binding problems (Luisier et al. 2008; the
// "SplitSolve" spatial parallelism level of the SC11 simulator).
//
// The block-tridiagonal open-boundary system A·X = B over L principal
// layers is split into P contiguous sub-domains. Each domain concurrently
// factorizes its local block-tridiagonal matrix and solves it against its
// local right-hand side and against the two coupling "spikes" that connect
// it to its neighbors. The interface unknowns — the first and last layer
// of every domain — then satisfy a small reduced Schur-complement system,
// which is solved serially; a final embarrassingly parallel correction
// reconstructs the interior unknowns. The result is algebraically
// identical to a global direct solve, at 1/P of the critical-path
// factorization work plus the reduced-system overhead — exactly the
// trade-off the paper's strong-scaling curves exercise.
//
// A structural property of nearest-neighbor tight-binding keeps the
// overhead small: the inter-layer coupling blocks are low-rank (only the
// boundary atomic planes of adjacent layers touch), so the spike solves
// run against just the nonzero coupling columns rather than full layer
// blocks.
package splitsolve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sched"
	"repro/internal/sparse"
)

// Options configures a split solve.
type Options struct {
	// Domains is the number of spatial sub-domains P (≥ 1). Values larger
	// than the layer count are rejected.
	Domains int
	// Workers bounds the number of concurrent domain solves; 0 means
	// runtime.GOMAXPROCS(0). Ignored when Pool is set.
	Workers int
	// Pool optionally provides the worker pool the domain stages run on,
	// sharing its budget with the enclosing parallelism levels (energy
	// points). Nil creates a private pool of Workers.
	Pool *sched.Pool
}

// Solve solves A·X = B by spatial domain decomposition. rhs is given per
// layer (layer i block is LayerSize(i)×k); the solution is returned in the
// same layout. With Domains == 1 it reduces to the serial block-Thomas
// solve. Cancelling ctx aborts the parallel stages between domain solves.
func Solve(ctx context.Context, a *sparse.BlockTridiag, rhs []*linalg.Matrix, opt Options) ([]*linalg.Matrix, error) {
	nl := a.Layers()
	p := opt.Domains
	if p < 1 {
		return nil, fmt.Errorf("splitsolve: need at least one domain, got %d", p)
	}
	if p > nl {
		return nil, fmt.Errorf("splitsolve: %d domains exceed %d layers", p, nl)
	}
	if len(rhs) != nl {
		return nil, fmt.Errorf("splitsolve: got %d RHS blocks for %d layers", len(rhs), nl)
	}
	if p == 1 {
		return a.SolveBlocks(rhs)
	}
	pool := opt.Pool
	if pool == nil {
		pool = sched.New(opt.Workers)
	}

	// Partition layers into contiguous domains as evenly as possible.
	bounds := partition(nl, p)

	type domainResult struct {
		g []*linalg.Matrix // A_p⁻¹·B_p
		// v and w are the right/left spikes restricted to the nonzero
		// coupling columns listed in supV/supW: v[i] is
		// (A_p⁻¹·Ê_p)[layer i][:, supV].
		v, w       []*linalg.Matrix
		supV, supW []int
	}
	results := make([]domainResult, p)

	// Stage 1 (parallel): local factorizations and spike solves, fanned
	// out on the shared pool so the spatial level borrows workers from —
	// rather than multiplies with — the enclosing energy level.
	err := pool.ForEach(ctx, "splitsolve", p, func(_ context.Context, d int) error {
		lo, hi := bounds[d], bounds[d+1] // layers [lo, hi)
		local := subMatrix(a, lo, hi)
		nLoc := hi - lo
		k := rhs[0].Cols
		var supV, supW []int
		if d < p-1 {
			supV = columnSupport(a.Upper[hi-1])
		}
		if d > 0 {
			supW = columnSupport(a.Lower[lo-1])
		}
		width := k + len(supV) + len(supW)
		stacked := make([]*linalg.Matrix, nLoc)
		for i := 0; i < nLoc; i++ {
			stacked[i] = linalg.New(a.LayerSize(lo+i), width)
			stacked[i].SetSubmatrix(0, 0, rhs[lo+i])
		}
		if d < p-1 {
			// Ê: the supported columns of U_{hi-1} in the last local
			// layer-row.
			u := a.Upper[hi-1]
			for j, col := range supV {
				for i := 0; i < u.Rows; i++ {
					stacked[nLoc-1].Set(i, k+j, u.At(i, col))
				}
			}
		}
		if d > 0 {
			// F̂: the supported columns of L_{lo-1} in the first local
			// layer-row.
			l := a.Lower[lo-1]
			for j, col := range supW {
				for i := 0; i < l.Rows; i++ {
					stacked[0].Set(i, k+len(supV)+j, l.At(i, col))
				}
			}
		}
		x, err := local.SolveBlocks(stacked)
		if err != nil {
			return fmt.Errorf("splitsolve: domain %d: %w", d, err)
		}
		res := domainResult{
			g:    make([]*linalg.Matrix, nLoc),
			v:    make([]*linalg.Matrix, nLoc),
			w:    make([]*linalg.Matrix, nLoc),
			supV: supV,
			supW: supW,
		}
		for i := 0; i < nLoc; i++ {
			ni := a.LayerSize(lo + i)
			res.g[i] = x[i].Submatrix(0, 0, ni, k)
			if d < p-1 {
				res.v[i] = x[i].Submatrix(0, k, ni, len(supV))
			}
			if d > 0 {
				res.w[i] = x[i].Submatrix(0, k+len(supV), ni, len(supW))
			}
		}
		results[d] = res
		return nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}

	// Stage 2 (serial critical path): reduced interface system. Unknowns:
	// for each domain, its first-layer block ξ_d^f and last-layer block
	// ξ_d^l. From X_d = G_d − V_d·ξ_{d+1}^f − W_d·ξ_{d-1}^l, taking the
	// first and last layer-rows closes the system. Grouping u_d = [ξ_d^f;
	// ξ_d^l] makes the reduced matrix block-tridiagonal over domains —
	// O(P·n³) like the paper's banded interface solver, not O((P·n)³) —
	// so it is solved with the same block-Thomas kernel. Single-layer
	// domains keep both slots with an explicit ξ_d^l = ξ_d^f constraint
	// row so every group has uniform size.
	redStart := time.Now()
	k := rhs[0].Cols
	redDiag := make([]*linalg.Matrix, p)
	redUpper := make([]*linalg.Matrix, p-1)
	redLower := make([]*linalg.Matrix, p-1)
	redRHS := make([]*linalg.Matrix, p)
	sizeF := make([]int, p) // first-layer block size per domain
	sizeL := make([]int, p) // last-layer block size per domain
	for d := 0; d < p; d++ {
		lo, hi := bounds[d], bounds[d+1]
		sizeF[d] = a.LayerSize(lo)
		sizeL[d] = a.LayerSize(hi - 1)
	}
	// scatter writes a support-restricted spike block into the reduced
	// coupling matrix at the given row/column offsets.
	scatter := func(dst *linalg.Matrix, rowOff, colOff int, blk *linalg.Matrix, support []int) {
		for j, col := range support {
			for i := 0; i < blk.Rows; i++ {
				dst.Set(rowOff+i, colOff+col, blk.At(i, j))
			}
		}
	}
	for d := 0; d < p; d++ {
		nLoc := bounds[d+1] - bounds[d]
		r := results[d]
		nf, nlst := sizeF[d], sizeL[d]
		tot := nf + nlst
		diag := linalg.New(tot, tot)
		for i := 0; i < nf; i++ {
			diag.Set(i, i, 1)
		}
		b := linalg.New(tot, k)
		b.SetSubmatrix(0, 0, r.g[0])
		if nLoc == 1 {
			// Constraint rows: ξ_d^l − ξ_d^f = 0.
			for i := 0; i < nlst; i++ {
				diag.Set(nf+i, nf+i, 1)
				diag.Set(nf+i, i, -1)
			}
		} else {
			for i := 0; i < nlst; i++ {
				diag.Set(nf+i, nf+i, 1)
			}
			b.SetSubmatrix(nf, 0, r.g[nLoc-1])
		}
		redDiag[d] = diag
		redRHS[d] = b
		if d < p-1 {
			// Coupling of u_d's equations to ξ_{d+1}^f (first half of u_{d+1}).
			up := linalg.New(tot, sizeF[d+1]+sizeL[d+1])
			scatter(up, 0, 0, r.v[0], r.supV)
			if nLoc > 1 {
				scatter(up, nf, 0, r.v[nLoc-1], r.supV)
			}
			redUpper[d] = up
		}
		if d > 0 {
			// Coupling of u_d's equations to ξ_{d-1}^l (second half of u_{d-1}).
			lowBlk := linalg.New(tot, sizeF[d-1]+sizeL[d-1])
			scatter(lowBlk, 0, sizeF[d-1], r.w[0], r.supW)
			if nLoc > 1 {
				scatter(lowBlk, nf, sizeF[d-1], r.w[nLoc-1], r.supW)
			}
			redLower[d-1] = lowBlk
		}
	}
	reduced, err := sparse.NewBlockTridiag(redDiag, redUpper, redLower)
	if err != nil {
		return nil, fmt.Errorf("splitsolve: reduced interface assembly: %w", err)
	}
	xiBlocks, err := reduced.SolveBlocks(redRHS)
	if err != nil {
		return nil, fmt.Errorf("splitsolve: reduced interface system: %w", err)
	}
	// Attribute the serial critical path to its own phase, with the flop
	// count of the reduced block-Thomas solve from the repo's standard
	// cost formulas (one LU, coupled triangular solves, and the two
	// coupling products per domain group).
	var redFlops int64
	for d := 0; d < p; d++ {
		tot := sizeF[d] + sizeL[d]
		redFlops += perf.LUFlops(tot) + perf.SolveFlops(tot, tot+k) +
			2*perf.GemmFlops(tot, tot, tot)
	}
	perf.RecordPhase("splitsolve-reduced", time.Since(redStart), redFlops)

	// Stage 3 (parallel): interior reconstruction,
	// X_d = G_d − V_d·ξ_{d+1}^f[supV] − W_d·ξ_{d-1}^l[supW].
	out := make([]*linalg.Matrix, nl)
	err = pool.ForEach(ctx, "splitsolve", p, func(_ context.Context, d int) error {
		lo, hi := bounds[d], bounds[d+1]
		r := results[d]
		var xiNext, xiPrev *linalg.Matrix
		if d < p-1 {
			xiNext = gatherRows(xiBlocks[d+1], r.supV, 0, k)
		}
		if d > 0 {
			xiPrev = gatherRows(xiBlocks[d-1], r.supW, sizeF[d-1], k)
		}
		for i := lo; i < hi; i++ {
			// x = g − V·ξ_next − W·ξ_prev, accumulated in place through the
			// fused GEMM so no product is materialized.
			x := r.g[i-lo].Clone()
			if xiNext != nil {
				linalg.GemmInto(x, -1, r.v[i-lo], linalg.NoTrans, xiNext, linalg.NoTrans, 1)
			}
			if xiPrev != nil {
				linalg.GemmInto(x, -1, r.w[i-lo], linalg.NoTrans, xiPrev, linalg.NoTrans, 1)
			}
			out[i] = x
		}
		return nil
	})
	if err != nil {
		return nil, unwrapTask(err)
	}
	return out, nil
}

// unwrapTask strips the sched.TaskError wrapper: the domain errors built
// inside the stages already carry their domain number.
func unwrapTask(err error) error {
	if te, ok := sched.AsTaskError(err); ok {
		return te.Err
	}
	return err
}

// Strategy returns a solve function with the given decomposition baked in,
// suitable for plugging into the wave-function solver. The pool (nil: a
// private GOMAXPROCS-sized one) bounds the domain fan-out; passing the
// enclosing energy-level pool makes the two levels share one worker
// budget.
func Strategy(domains int, pool *sched.Pool) func(context.Context, *sparse.BlockTridiag, []*linalg.Matrix) ([]*linalg.Matrix, error) {
	return func(ctx context.Context, a *sparse.BlockTridiag, rhs []*linalg.Matrix) ([]*linalg.Matrix, error) {
		return Solve(ctx, a, rhs, Options{Domains: domains, Pool: pool})
	}
}

// InterfaceRank returns the largest coupling-column count between
// adjacent layers of a — the effective spike width of a split solve, used
// to parameterize the performance model (cluster.Workload.CouplingRank).
func InterfaceRank(a *sparse.BlockTridiag) int {
	r := 0
	for _, u := range a.Upper {
		if n := len(columnSupport(u)); n > r {
			r = n
		}
	}
	for _, l := range a.Lower {
		if n := len(columnSupport(l)); n > r {
			r = n
		}
	}
	return r
}

// columnSupport returns the indices of columns of m with any nonzero
// entry — the effective rank structure of a tight-binding coupling block.
func columnSupport(m *linalg.Matrix) []int {
	sup := make([]int, 0, m.Cols)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			if m.At(i, j) != 0 {
				sup = append(sup, j)
				break
			}
		}
	}
	return sup
}

// gatherRows extracts rows rowOff+support[j] of src into a dense
// len(support)×k matrix.
func gatherRows(src *linalg.Matrix, support []int, rowOff, k int) *linalg.Matrix {
	out := linalg.New(len(support), k)
	for j, row := range support {
		for c := 0; c < k; c++ {
			out.Set(j, c, src.At(rowOff+row, c))
		}
	}
	return out
}

// partition splits n layers into p contiguous chunks whose sizes differ by
// at most one, returning p+1 boundary indices.
func partition(n, p int) []int {
	bounds := make([]int, p+1)
	base, rem := n/p, n%p
	for d := 0; d < p; d++ {
		sz := base
		if d < rem {
			sz++
		}
		bounds[d+1] = bounds[d] + sz
	}
	return bounds
}

// subMatrix extracts the local block-tridiagonal matrix of layers [lo, hi).
func subMatrix(a *sparse.BlockTridiag, lo, hi int) *sparse.BlockTridiag {
	n := hi - lo
	diag := make([]*linalg.Matrix, n)
	upper := make([]*linalg.Matrix, n-1)
	lower := make([]*linalg.Matrix, n-1)
	for i := 0; i < n; i++ {
		diag[i] = a.Diag[lo+i]
	}
	for i := 0; i < n-1; i++ {
		upper[i] = a.Upper[lo+i]
		lower[i] = a.Lower[lo+i]
	}
	m, err := sparse.NewBlockTridiag(diag, upper, lower)
	if err != nil {
		// The blocks come from a validated matrix; failure is impossible.
		panic(err)
	}
	return m
}
