package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/transport"
)

func gnrSim(t *testing.T, cells int) *Simulator {
	t.Helper()
	sim, err := New(device.Description{
		Name: "AGNR7", Kind: device.ArmchairGNR, CellsX: cells, CellsY: 7,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestSimulatorStats(t *testing.T) {
	sim := gnrSim(t, 8)
	st := sim.Stats()
	if st.Atoms != 8*14 || st.Layers != 8 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MatrixOrder != st.Atoms*st.OrbitalsAtom {
		t.Fatal("matrix order inconsistent")
	}
	if st.BlockSize != 14 {
		t.Fatalf("block size %d, want 14", st.BlockSize)
	}
}

func TestSimulatorBandsAndGap(t *testing.T) {
	sim := gnrSim(t, 6)
	ev, ec, err := sim.ConductionBandEdge(-2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ec <= ev {
		t.Fatalf("inverted gap: ev=%g ec=%g", ev, ec)
	}
	// 7-AGNR pz gap ≈ 1.4-1.6 eV, symmetric about 0.
	if g := ec - ev; g < 0.8 || g > 2.2 {
		t.Fatalf("7-AGNR gap %g eV outside expectation", g)
	}
	if math.Abs(ec+ev) > 0.05 {
		t.Fatalf("gap not centered: ev=%g ec=%g", ev, ec)
	}
}

func TestSimulatorTransmissionFlat(t *testing.T) {
	sim := gnrSim(t, 6)
	_, ec, err := sim.ConductionBandEdge(-2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Inside the first conduction plateau, T = 1 for a clean ribbon; in
	// the gap, T ≈ 0.
	ts, err := sim.Transmission(context.Background(), []float64{0, ec + 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ts[0] > 1e-4 {
		t.Fatalf("in-gap transmission %g", ts[0])
	}
	if math.Abs(ts[1]-1) > 1e-3 {
		t.Fatalf("first-plateau transmission %g, want 1", ts[1])
	}
}

func TestSimulatorPotentialBarrier(t *testing.T) {
	sim := gnrSim(t, 8)
	_, ec, err := sim.ConductionBandEdge(-2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.Built.Structure
	pot := make([]float64, s.NAtoms())
	for i, a := range s.Atoms {
		if a.Layer >= 3 && a.Layer <= 4 {
			pot[i] = 0.4
		}
	}
	e := ec + 0.15
	tFlat, err := sim.Transmission(context.Background(), []float64{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tBarrier, err := sim.Transmission(context.Background(), []float64{e}, pot)
	if err != nil {
		t.Fatal(err)
	}
	if tBarrier[0] >= tFlat[0] {
		t.Fatalf("barrier did not suppress transmission: %g vs %g", tBarrier[0], tFlat[0])
	}
}

func TestUTBMomentumAverage(t *testing.T) {
	sim, err := New(device.Description{
		Name: "UTB", Kind: device.SiUTB, CellsX: 3, CellsY: 1, CellsZ: 1,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, ec, err := sim.ConductionBandEdge(-2, 6)
	if err != nil {
		t.Fatal(err)
	}
	e := []float64{ec + 0.3}
	sim.NK = 1
	t1, err := sim.Transmission(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim.NK = 4
	t4, err := sim.Transmission(context.Background(), e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Averaging over transverse momentum must change the answer for a
	// dispersive UTB (the Γ-only sample is not exact).
	if math.Abs(t1[0]-t4[0]) < 1e-9 {
		t.Fatal("k-averaging had no effect on UTB transmission")
	}
	if t4[0] < 0 {
		t.Fatal("negative averaged transmission")
	}
}

// fetForTest returns a fast GNR FET configuration.
func fetForTest(t *testing.T) *FET {
	sim := gnrSim(t, 20)
	fet, err := NewFET(sim)
	if err != nil {
		t.Fatal(err)
	}
	fet.Lambda = 1.2
	fet.SourceDoping = 0.1
	fet.GateStart, fet.GateEnd = 0.3, 0.7
	fet.NE = 120
	return fet
}

func TestFETGateControl(t *testing.T) {
	if testing.Short() {
		t.Skip("self-consistent FET loop in -short mode")
	}
	fet := fetForTest(t)
	points, err := fet.GateSweep(context.Background(), []float64{-0.4, 0.0, 0.4}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if !p.Converged {
			t.Fatalf("Vg=%g did not converge in %d iterations", p.VGate, p.Iterations)
		}
		if p.Current <= 0 {
			t.Fatalf("Vg=%g: non-positive current %g", p.VGate, p.Current)
		}
	}
	// n-FET turn-on: monotonically increasing current.
	if !(points[0].Current < points[1].Current && points[1].Current < points[2].Current) {
		t.Fatalf("I-V not monotonic: %g, %g, %g",
			points[0].Current, points[1].Current, points[2].Current)
	}
	// Meaningful on/off ratio across the sweep.
	if points[2].Current/points[0].Current < 10 {
		t.Fatalf("on/off ratio %g too small", points[2].Current/points[0].Current)
	}
	// Channel barrier must fall with gate voltage.
	mid := len(points[0].Potential) / 2
	if !(points[0].Potential[mid] > points[2].Potential[mid]) {
		t.Fatal("gate did not lower the channel barrier")
	}
	// Subthreshold slope: physical bound is 60 mV/dec at 300 K.
	ss, err := SubthresholdSlope(points[0], points[1])
	if err != nil {
		t.Fatal(err)
	}
	if ss < 59 {
		t.Fatalf("subthreshold slope %g mV/dec beats the thermionic limit", ss)
	}
}

func TestFETRequiresSemiconductor(t *testing.T) {
	sim, err := New(device.Description{
		Name: "chain", Kind: device.Chain, CellsX: 10,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFET(sim); err == nil {
		t.Fatal("FET accepted a gapless device")
	}
}

func TestPredictScalingShape(t *testing.T) {
	sim := gnrSim(t, 10)
	reports, err := sim.PredictScaling(4, 8, 256, []int{64, 1024, 8192})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	for i := 1; i < len(reports); i++ {
		if reports[i].WallTime >= reports[i-1].WallTime {
			t.Fatal("modeled wall time not decreasing with cores")
		}
	}
}

func TestSubthresholdSlopeValidation(t *testing.T) {
	if _, err := SubthresholdSlope(IVPoint{Current: 0}, IVPoint{Current: 1}); err == nil {
		t.Fatal("accepted zero current")
	}
	if _, err := SubthresholdSlope(IVPoint{Current: 1, VGate: 0}, IVPoint{Current: 1, VGate: 0.1}); err == nil {
		t.Fatal("accepted equal currents")
	}
	ss, err := SubthresholdSlope(
		IVPoint{Current: 1e-9, VGate: 0},
		IVPoint{Current: 1e-8, VGate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss-100) > 1e-9 {
		t.Fatalf("slope %g, want 100 mV/dec", ss)
	}
}

func TestSpinDegeneracyAndCurrent(t *testing.T) {
	spinless := gnrSim(t, 6)
	if spinless.SpinDegeneracy() != 2 {
		t.Fatal("spinless device should carry degeneracy 2")
	}
	spinful, err := New(device.Description{
		Name: "w", Kind: device.SiNanowire, CellsX: 2, CellsY: 1, CellsZ: 1, Spin: true,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if spinful.SpinDegeneracy() != 1 {
		t.Fatal("spin-resolved device should carry degeneracy 1")
	}
	// The Landauer integral must scale with the degeneracy factor.
	grid := []float64{0, 0.1, 0.2}
	ts := []float64{1, 1, 1}
	bias := transport.Bias{MuL: 0.15, MuR: 0.05, Temperature: 300}
	i2, err := spinless.CurrentFromSpectrum(grid, ts, bias)
	if err != nil {
		t.Fatal(err)
	}
	i1, err := spinful.CurrentFromSpectrum(grid, ts, bias)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(i2-2*i1) > 1e-15*math.Abs(i2) {
		t.Fatalf("spin factor broken: %g vs 2×%g", i2, i1)
	}
}

func TestLayerVolume(t *testing.T) {
	wire, err := New(device.Description{
		Name: "w", Kind: device.SiNanowire, CellsX: 2, CellsY: 2, CellsZ: 3,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a := wire.Built.Material.LatticeConstant
	want := 2 * a * 3 * a * wire.Built.Structure.LayerPeriod
	if math.Abs(wire.LayerVolume()-want) > 1e-12 {
		t.Fatalf("wire layer volume %g, want %g", wire.LayerVolume(), want)
	}
	gnr := gnrSim(t, 4)
	if math.Abs(gnr.LayerVolume()-gnr.Built.Structure.LayerPeriod) > 1e-12 {
		t.Fatal("GNR layer volume should use the 1 nm² nominal area")
	}
}

func TestHamiltonianRejectsKyOnWire(t *testing.T) {
	sim, err := New(device.Description{
		Name: "w", Kind: device.SiNanowire, CellsX: 2, CellsY: 1, CellsZ: 1,
	}, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Hamiltonian(nil, 0.5); err == nil {
		t.Fatal("accepted transverse momentum on a non-periodic wire")
	}
}
