package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/transport"
)

// TransmissionSweep is the outcome of a fault-tolerant transmission sweep:
// the momentum-averaged T(E) over the surviving grid, plus the sweep
// report (restored/completed/retried/quarantined accounting).
type TransmissionSweep struct {
	// Energies is the surviving energy grid — the input grid minus any
	// point whose every momentum sample was quarantined.
	Energies []float64
	// T is the transmission averaged over the surviving momentum points at
	// each surviving energy (renormalized by the surviving k count, so a
	// lost (k,E) sample degrades the average instead of biasing it).
	T []float64
	// Report is the underlying sweep accounting.
	Report *cluster.SweepReport
}

// TransmissionPlan is a transmission sweep decomposed into the three
// roles the distributed engine separates: executing one (k, E) task
// (Run), reinstating a task's payload into the accumulators (Restore),
// and folding the accumulators into observables once every task is
// accounted for (Assemble). The local path wires all three into
// cluster.RunTasksResumable; in a distributed run the workers use only
// Run while the coordinator uses only Restore and Assemble — which is
// what makes the two paths bitwise-identical, since the payload is the
// single point of truth either way.
type TransmissionPlan struct {
	sim      *Simulator
	cfg      transport.Config
	energies []float64
	ks       []float64
	perK     [][]float64

	engines   []*transport.Engine
	engErrs   []error
	onces     []sync.Once
	potential []float64
}

// PlanTransmission prepares a transmission sweep over the energy grid at
// the given potential without running anything.
func (s *Simulator) PlanTransmission(energies, potential []float64) (*TransmissionPlan, error) {
	if len(energies) == 0 {
		return nil, fmt.Errorf("core: empty energy grid")
	}
	ks := s.kPoints()
	nk := len(ks)
	cfg := s.Transport
	if cfg.Pool == nil {
		cfg.Pool = sched.New(cfg.Workers)
	}
	p := &TransmissionPlan{
		sim:       s,
		cfg:       cfg,
		energies:  energies,
		ks:        ks,
		perK:      make([][]float64, nk),
		engines:   make([]*transport.Engine, nk),
		engErrs:   make([]error, nk),
		onces:     make([]sync.Once, nk),
		potential: potential,
	}
	for k := range p.perK {
		p.perK[k] = make([]float64, len(energies))
	}
	return p, nil
}

// Dims returns the task-grid shape (nBias, nK, nE) — the numbers every
// process of a distributed run must agree on.
func (p *TransmissionPlan) Dims() (nBias, nK, nE int) { return 1, len(p.ks), len(p.energies) }

// Pool returns the transport-level scheduler pool the plan solves on.
func (p *TransmissionPlan) Pool() *sched.Pool { return p.cfg.Pool }

// engineFor builds the momentum point's engine on first use, so a run
// that never touches a k (a resume, or a worker leased a subset) never
// pays for its Hamiltonian assembly.
func (p *TransmissionPlan) engineFor(k int) (*transport.Engine, error) {
	p.onces[k].Do(func() {
		h, err := p.sim.Hamiltonian(p.potential, p.ks[k])
		if err != nil {
			p.engErrs[k] = err
			return
		}
		p.engines[k], p.engErrs[k] = transport.NewEngine(h, p.cfg)
	})
	if p.engErrs[k] != nil {
		// Assembly failures are deterministic; retrying cannot help.
		return nil, resilience.MarkPermanent(p.engErrs[k])
	}
	return p.engines[k], nil
}

// Run executes one task and returns its payload — the 8-byte
// little-endian transmission value, a deterministic function of (k, E).
// It also deposits the value locally so a purely local run needs no
// Restore round-trip. Safe for concurrent use across distinct tasks.
func (p *TransmissionPlan) Run(ctx context.Context, t cluster.Task) ([]byte, error) {
	eng, err := p.engineFor(t.K)
	if err != nil {
		return nil, err
	}
	tv, err := eng.TransmissionAt(ctx, p.energies[t.E])
	if err != nil {
		return nil, err
	}
	p.perK[t.K][t.E] = tv
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(tv))
	return b[:], nil
}

// RunBatch executes a group of same-k tasks through the engine's batched
// solver and returns payloads and errors positionally — the
// cluster.BatchFunc face of the plan. Each element is the deterministic
// 8-byte payload Run would have produced alone (the batched solve is
// bitwise-identical per energy), deposited locally like Run's. Groups that
// span momentum points are split per k defensively; the scheduler never
// builds them.
func (p *TransmissionPlan) RunBatch(ctx context.Context, ts []cluster.Task) ([][]byte, []error) {
	payloads := make([][]byte, len(ts))
	errs := make([]error, len(ts))
	for lo := 0; lo < len(ts); {
		hi := lo + 1
		for hi < len(ts) && ts[hi].K == ts[lo].K {
			hi++
		}
		group := ts[lo:hi]
		eng, err := p.engineFor(group[0].K)
		if err != nil {
			for i := lo; i < hi; i++ {
				errs[i] = err
			}
			lo = hi
			continue
		}
		es := make([]float64, len(group))
		for i, t := range group {
			es[i] = p.energies[t.E]
		}
		rs, rerrs := eng.SolveBatch(ctx, es, false)
		for i, t := range group {
			if rerrs[i] != nil {
				errs[lo+i] = rerrs[i]
				continue
			}
			tv := rs[i].T
			p.perK[t.K][t.E] = tv
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(tv))
			payloads[lo+i] = b[:]
		}
		lo = hi
	}
	return payloads, errs
}

// Restore reinstates one task's journaled (or wire-delivered) payload.
func (p *TransmissionPlan) Restore(t cluster.Task, payload []byte) error {
	if len(payload) != 8 {
		return fmt.Errorf("core: task (k %d, E %d): payload is %d bytes, want 8", t.K, t.E, len(payload))
	}
	p.perK[t.K][t.E] = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	return nil
}

// Assemble folds the accumulated per-(k,E) values into the
// momentum-averaged observables, renormalizing each energy over its
// surviving momentum samples per the report's quarantined set.
func (p *TransmissionPlan) Assemble(rep *cluster.SweepReport) *TransmissionSweep {
	_, nk, ne := p.Dims()
	sweep := &TransmissionSweep{Report: rep}
	bad := rep.QuarantinedSet(nk, ne)
	for e := 0; e < ne; e++ {
		var sum float64
		cnt := 0
		for k := 0; k < nk; k++ {
			if bad[k*ne+e] {
				continue
			}
			sum += p.perK[k][e]
			cnt++
		}
		if cnt == 0 {
			continue // every momentum sample of this energy was lost
		}
		sweep.Energies = append(sweep.Energies, p.energies[e])
		sweep.T = append(sweep.T, sum/float64(cnt))
	}
	return sweep
}

// TransmissionResumable computes the momentum-averaged transmission like
// Transmission, but through the fault-tolerant sweep engine
// (cluster.RunTasksResumable): each (k, E) point is one journaled,
// retryable task whose payload is the 8-byte transmission value. With a
// journal in opts, a killed run resumes from its checkpoint and — because
// each task is a deterministic function of (k, E) — reproduces the
// observables of an uninterrupted run bit for bit. With quarantine
// enabled, unsalvageable points are dropped and the momentum average is
// renormalized over the surviving samples.
//
// Even on error the returned sweep carries the report, so drivers can
// print partial-progress summaries after an interrupt.
func (s *Simulator) TransmissionResumable(ctx context.Context, energies, potential []float64, opts cluster.SweepOptions) (*TransmissionSweep, error) {
	plan, err := s.PlanTransmission(energies, potential)
	if err != nil {
		return nil, err
	}
	if opts.Pool == nil {
		opts.Pool = plan.Pool()
	}
	opts.Restore = plan.Restore
	if opts.Batch == nil && plan.cfg.SolveBatch > 1 {
		opts.BatchWidth = plan.cfg.SolveBatch
		opts.Batch = plan.RunBatch
	}
	nBias, nk, ne := plan.Dims()
	rep, err := cluster.RunTasksResumable(ctx, nBias, nk, ne, opts, plan.Run)
	if err != nil {
		return &TransmissionSweep{Report: rep}, err
	}
	return plan.Assemble(rep), nil
}
