package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/transport"
)

// TransmissionSweep is the outcome of a fault-tolerant transmission sweep:
// the momentum-averaged T(E) over the surviving grid, plus the sweep
// report (restored/completed/retried/quarantined accounting).
type TransmissionSweep struct {
	// Energies is the surviving energy grid — the input grid minus any
	// point whose every momentum sample was quarantined.
	Energies []float64
	// T is the transmission averaged over the surviving momentum points at
	// each surviving energy (renormalized by the surviving k count, so a
	// lost (k,E) sample degrades the average instead of biasing it).
	T []float64
	// Report is the underlying sweep accounting.
	Report *cluster.SweepReport
}

// TransmissionResumable computes the momentum-averaged transmission like
// Transmission, but through the fault-tolerant sweep engine
// (cluster.RunTasksResumable): each (k, E) point is one journaled,
// retryable task whose payload is the 8-byte transmission value. With a
// journal in opts, a killed run resumes from its checkpoint and — because
// each task is a deterministic function of (k, E) — reproduces the
// observables of an uninterrupted run bit for bit. With quarantine
// enabled, unsalvageable points are dropped and the momentum average is
// renormalized over the surviving samples.
//
// Even on error the returned sweep carries the report, so drivers can
// print partial-progress summaries after an interrupt.
func (s *Simulator) TransmissionResumable(ctx context.Context, energies, potential []float64, opts cluster.SweepOptions) (*TransmissionSweep, error) {
	ks := s.kPoints()
	nk, ne := len(ks), len(energies)
	if ne == 0 {
		return nil, fmt.Errorf("core: empty energy grid")
	}
	cfg := s.Transport
	if cfg.Pool == nil {
		cfg.Pool = sched.New(cfg.Workers)
	}
	if opts.Pool == nil {
		opts.Pool = cfg.Pool
	}

	perK := make([][]float64, nk)
	for k := range perK {
		perK[k] = make([]float64, ne)
	}

	// One engine per momentum point, built lazily on first use so a resume
	// that skips a whole k never pays for its Hamiltonian assembly.
	engines := make([]*transport.Engine, nk)
	engErrs := make([]error, nk)
	onces := make([]sync.Once, nk)
	engineFor := func(k int) (*transport.Engine, error) {
		onces[k].Do(func() {
			h, err := s.Hamiltonian(potential, ks[k])
			if err != nil {
				engErrs[k] = err
				return
			}
			engines[k], engErrs[k] = transport.NewEngine(h, cfg)
		})
		if engErrs[k] != nil {
			// Assembly failures are deterministic; retrying cannot help.
			return nil, resilience.MarkPermanent(engErrs[k])
		}
		return engines[k], nil
	}

	opts.Restore = func(t cluster.Task, payload []byte) error {
		if len(payload) != 8 {
			return fmt.Errorf("core: task (k %d, E %d): payload is %d bytes, want 8", t.K, t.E, len(payload))
		}
		perK[t.K][t.E] = math.Float64frombits(binary.LittleEndian.Uint64(payload))
		return nil
	}

	rep, err := cluster.RunTasksResumable(ctx, 1, nk, ne, opts, func(ctx context.Context, t cluster.Task) ([]byte, error) {
		eng, err := engineFor(t.K)
		if err != nil {
			return nil, err
		}
		tv, err := eng.TransmissionAt(ctx, energies[t.E])
		if err != nil {
			return nil, err
		}
		perK[t.K][t.E] = tv
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(tv))
		return b[:], nil
	})
	sweep := &TransmissionSweep{Report: rep}
	if err != nil {
		return sweep, err
	}

	bad := rep.QuarantinedSet(nk, ne)
	for e := 0; e < ne; e++ {
		var sum float64
		cnt := 0
		for k := 0; k < nk; k++ {
			if bad[k*ne+e] {
				continue
			}
			sum += perK[k][e]
			cnt++
		}
		if cnt == 0 {
			continue // every momentum sample of this energy was lost
		}
		sweep.Energies = append(sweep.Energies, energies[e])
		sweep.T = append(sweep.T, sum/float64(cnt))
	}
	return sweep, nil
}
