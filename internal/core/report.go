package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/perf"
)

// This file is the one renderer of the transmission-sweep text format.
// Serial `omen`, the distributed coordinator, and the job service's
// result endpoint all print through it, which is what lets the drills
// demand byte-identical output across entry points: comment lines with
// the resilience accounting and perf counters, then the `E T(E)` table.

// WriteSweepComments emits the fault-tolerance accounting as comment
// lines ahead of the data when anything noteworthy happened.
func WriteSweepComments(w io.Writer, rep *cluster.SweepReport) {
	if rep == nil {
		return
	}
	if rep.Restored > 0 {
		fmt.Fprintf(w, "# resumed: %d/%d tasks restored from checkpoint\n", rep.Restored, rep.Total)
	}
	if rep.Retries > 0 {
		fmt.Fprintf(w, "# retries: %d extra attempts\n", rep.Retries)
	}
	if len(rep.Quarantined) > 0 {
		fmt.Fprintf(w, "# quarantined: %d/%d tasks dropped and renormalized:", len(rep.Quarantined), rep.Total)
		for _, t := range rep.Quarantined {
			fmt.Fprintf(w, " (k %d, E %d)", t.K, t.E)
		}
		fmt.Fprintln(w)
	}
}

// WriteCounters emits the flop total and the sigma-cache/batch counter
// comment lines for one run's perf delta. A run whose cache or batch
// scheduler never engaged prints no line for it, keeping its output
// byte-identical to runs from before those subsystems existed.
func WriteCounters(w io.Writer, d perf.Snapshot) {
	fmt.Fprintf(w, "# flops\t%d\n", d.Flops)
	writeSigmaCache(w, d.Counters)
	writeBatch(w, d.Counters)
}

// writeSigmaCache emits the self-energy cache counters as a comment
// line alongside the flop count, in both serial and distributed output
// (a coordinator prints the exact merge of its workers' deltas).
func writeSigmaCache(w io.Writer, counters map[string]int64) {
	if counters["sigma-hits"] == 0 && counters["sigma-misses"] == 0 {
		return
	}
	fmt.Fprintf(w, "# sigma-cache\thits=%d misses=%d coalesced=%d evictions=%d decimations=%d seeded=%d seed-fallbacks=%d\n",
		counters["sigma-hits"], counters["sigma-misses"], counters["sigma-coalesced"],
		counters["sigma-evictions"], counters["sigma-decimations"],
		counters["sigma-seeded"], counters["sigma-seed-fallbacks"])
}

// writeBatch emits the batched-solve counters as a comment line next to
// the sigma-cache one: a histogram of batch widths actually executed
// plus the panel load/reuse totals.
func writeBatch(w io.Writer, counters map[string]int64) {
	var widths []int
	for name := range counters {
		if s, ok := strings.CutPrefix(name, "batch-width-"); ok {
			if n, err := strconv.Atoi(s); err == nil && counters[name] > 0 {
				widths = append(widths, n)
			}
		}
	}
	if len(widths) == 0 {
		return
	}
	sort.Ints(widths)
	fmt.Fprintf(w, "# batch\twidths=")
	for i, n := range widths {
		if i > 0 {
			fmt.Fprintf(w, ",")
		}
		fmt.Fprintf(w, "%d:%d", n, counters[fmt.Sprintf("batch-width-%d", n)])
	}
	fmt.Fprintf(w, " panel-loads=%d panel-reuses=%d\n",
		counters["panel-loads"], counters["panel-reuses"])
}

// WriteSweep renders the complete text report of a finished transmission
// sweep: accounting comments, any extra comment lines (the coordinator's
// `# cluster` line rides here), the perf counters, and the T(E) table.
func WriteSweep(w io.Writer, sweep *TransmissionSweep, d perf.Snapshot, extra ...string) {
	WriteSweepComments(w, sweep.Report)
	for _, line := range extra {
		fmt.Fprintln(w, line)
	}
	WriteCounters(w, d)
	fmt.Fprintln(w, "# E(eV)\tT(E)")
	for i, e := range sweep.Energies {
		fmt.Fprintf(w, "%.6f\t%.8g\n", e, sweep.T[i])
	}
}
