package core

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/resilience"
	"repro/internal/transport"
)

func chainSim(t *testing.T, cells int) *Simulator {
	t.Helper()
	sim, err := New(device.Description{
		Name: "chain", Kind: device.Chain, CellsX: cells,
	}, transport.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func fastPolicy(attempts int) resilience.Policy {
	return resilience.Policy{MaxAttempts: attempts, BaseDelay: 1, MaxDelay: 1}
}

// TestTransmissionResumableMatchesPlain: without faults or journal, the
// resumable path reproduces a plain per-point evaluation exactly.
func TestTransmissionResumableMatchesPlain(t *testing.T) {
	sim := chainSim(t, 10)
	grid := transport.UniformGrid(-1.8, 1.8, 25)
	sweep, err := sim.TransmissionResumable(context.Background(), grid, nil, cluster.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Energies) != len(grid) || len(sweep.T) != len(grid) {
		t.Fatalf("sweep dropped points without quarantine: %d of %d", len(sweep.T), len(grid))
	}
	plain, err := sim.Transmission(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grid {
		// Single-k device: the averages are the same sum in both paths.
		if sweep.T[i] != plain[i] {
			t.Fatalf("E=%g: resumable %g != plain %g", grid[i], sweep.T[i], plain[i])
		}
	}
	if sweep.Report.Completed != len(grid) {
		t.Fatalf("report: %+v", sweep.Report)
	}
}

// TestTransmissionResumableFullDrill is the end-to-end acceptance drill on
// a real device: 10% injected mixed faults, a mid-sweep kill, then resume
// from the journal — final observables bitwise-identical to an
// uninterrupted fault-free run, with only the unfinished tasks rerun.
func TestTransmissionResumableFullDrill(t *testing.T) {
	sim := chainSim(t, 10)
	grid := transport.UniformGrid(-1.8, 1.8, 40)

	reference, err := sim.TransmissionResumable(context.Background(), grid, nil, cluster.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "drill.journal")
	inj := &resilience.Injector{Seed: 11, Rate: 0.1}

	j1, err := cluster.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	killed, err := sim.TransmissionResumable(ctx, grid, nil, cluster.SweepOptions{
		Journal:  j1,
		Retry:    fastPolicy(4),
		Injector: inj,
		OnProgress: func(done, total int) {
			if done >= total/2 {
				cancel()
			}
		},
	})
	cancel()
	j1.Close()
	if err == nil {
		t.Fatal("killed run reported success")
	}
	if killed.Report == nil {
		t.Fatal("killed run carried no report for the progress summary")
	}

	j2, err := cluster.OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed, err := sim.TransmissionResumable(context.Background(), grid, nil, cluster.SweepOptions{
		Journal:  j2,
		Retry:    fastPolicy(4),
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("resumed drill: %v", err)
	}
	rep := resumed.Report
	if rep.Restored == 0 || rep.Completed == 0 {
		t.Fatalf("resume did not split work: %+v", rep)
	}
	if rep.Restored+rep.Completed != len(grid) {
		t.Fatalf("accounting: restored %d + completed %d != %d", rep.Restored, rep.Completed, len(grid))
	}
	if len(resumed.T) != len(reference.T) {
		t.Fatalf("grids differ: %d vs %d points", len(resumed.T), len(reference.T))
	}
	for i := range reference.T {
		if resumed.T[i] != reference.T[i] {
			t.Fatalf("E=%g: resumed %v != fault-free %v (not bitwise-identical)",
				reference.Energies[i], resumed.T[i], reference.T[i])
		}
	}
}

// TestTransmissionResumableQuarantine: hard faults at some (k,E) points
// drop out and the momentum average renormalizes over the survivors.
func TestTransmissionResumableQuarantine(t *testing.T) {
	sim := chainSim(t, 8)
	grid := transport.UniformGrid(-1.5, 1.5, 30)
	inj := &resilience.Injector{Seed: 9, Rate: 0.1, FailuresPerTask: 1 << 20,
		Modes: []resilience.Fault{resilience.FaultError}}
	sweep, err := sim.TransmissionResumable(context.Background(), grid, nil, cluster.SweepOptions{
		Retry:      fastPolicy(2),
		Injector:   inj,
		Quarantine: true,
	})
	if err != nil {
		t.Fatalf("quarantined sweep failed: %v", err)
	}
	q := len(sweep.Report.Quarantined)
	if q == 0 {
		t.Fatal("drill quarantined nothing; pick a different seed")
	}
	// Single-k device: each quarantined (k,E) removes that energy point.
	if len(sweep.Energies) != len(grid)-q {
		t.Fatalf("expected %d surviving points, got %d", len(grid)-q, len(sweep.Energies))
	}
	reference, err := sim.Transmission(context.Background(), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[float64]float64, len(grid))
	for i, e := range grid {
		ref[e] = reference[i]
	}
	for i, e := range sweep.Energies {
		if sweep.T[i] != ref[e] {
			t.Fatalf("surviving point E=%g corrupted: %v != %v", e, sweep.T[i], ref[e])
		}
	}
}
