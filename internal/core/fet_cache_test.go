package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/negf"
)

// cacheFET is a small FET for cache-accounting tests: big enough that the
// SCF loop and final pass do real work, small enough to run in seconds.
func cacheFET(t *testing.T) *FET {
	t.Helper()
	sim := gnrSim(t, 8)
	fet, err := NewFET(sim)
	if err != nil {
		t.Fatal(err)
	}
	fet.Lambda = 1.2
	fet.SourceDoping = 0.1
	fet.GateStart, fet.GateEnd = 0.3, 0.7
	fet.NE = 48
	return fet
}

// TestGateSweepOneDecimationPerKey is the acceptance criterion of the
// sweep-scale cache: a 5-point gate sweep at fixed Vd runs the full
// Sancho-Rubio decimation at most once per (lead, shifted-energy) key —
// across all gate points, SCF iterations, AND the dense final current
// grids — because every grid snaps to one shared lattice and the drain
// lead's keys are bias-shifted onto the source's canonical axis.
func TestGateSweepOneDecimationPerKey(t *testing.T) {
	if testing.Short() {
		t.Skip("self-consistent FET sweep in -short mode")
	}
	fet := cacheFET(t)
	vgs := []float64{-0.4, -0.2, 0.0, 0.2, 0.4}
	const vd = 0.2
	points, err := fet.GateSweep(context.Background(), vgs, vd)
	if err != nil {
		t.Fatal(err)
	}

	st := fet.Cache.Stats()
	t.Logf("cache stats after sweep: %+v, entries %d", st, fet.Cache.Len())
	// Every miss ran exactly one decimation and created exactly one
	// distinct retained entry: at most one decimation per key, ever.
	if st.Decimations != st.Misses {
		t.Fatalf("%d decimations for %d misses — recomputation slipped through", st.Decimations, st.Misses)
	}
	if n := int64(fet.Cache.Len()); st.Decimations != n {
		t.Fatalf("%d decimations for %d distinct keys — some key was decimated twice", st.Decimations, n)
	}
	if st.Hits <= st.Misses {
		t.Fatalf("hits %d ≤ misses %d: the sweep barely reused anything", st.Hits, st.Misses)
	}

	// Pin the key population exactly: the union of every grid the sweep
	// evaluated, × 2 leads (the right lead's keys are shifted by +vd onto
	// the canonical axis — a pure relabeling that cannot create or merge
	// energies at fixed vd).
	lattice := make(map[float64]bool)
	scfOnly := make(map[float64]bool)
	var finalPts, finalShared int
	for _, vg := range vgs {
		for _, e := range fet.chargeGrid(vg, vd) {
			lattice[e] = true
			scfOnly[e] = true
		}
	}
	for _, p := range points {
		for _, e := range fet.currentGrid(vd, p.Potential) {
			finalPts++
			if scfOnly[e] {
				finalShared++
			}
			lattice[e] = true
		}
	}
	if want := 2 * len(lattice); fet.Cache.Len() != want {
		t.Fatalf("cache holds %d keys, want 2×%d lattice energies", fet.Cache.Len(), len(lattice))
	}
	// The final dense pass must land a large share of its points on
	// energies the SCF iterations already paid for — the half-lattice
	// coincidence this PR's grid snapping exists to produce (odd half-
	// lattice points and points outside every SCF window are new).
	if finalShared*3 < finalPts {
		t.Fatalf("final pass shares only %d of %d points with the SCF lattice", finalShared, finalPts)
	}
	t.Logf("lattice energies %d; final pass shares %d/%d points with SCF grids",
		len(lattice), finalShared, finalPts)
}

// TestGateSweepCachedMatchesPerBias compares the sweep-wide shared cache
// against the pre-change behavior — an independent cache per bias point —
// and requires observables unchanged to 1e-10 (they are in fact expected
// bitwise equal: misses compute from the family's canonical blocks, which
// the pinned contacts reproduce identically at every gate point).
func TestGateSweepCachedMatchesPerBias(t *testing.T) {
	if testing.Short() {
		t.Skip("self-consistent FET sweeps in -short mode")
	}
	vgs := []float64{-0.3, 0.0, 0.3}
	const vd = 0.15

	shared := cacheFET(t)
	points, err := shared.GateSweep(context.Background(), vgs, vd)
	if err != nil {
		t.Fatal(err)
	}

	for i, vg := range vgs {
		ref := cacheFET(t) // fresh FET = fresh cache: per-bias-point reuse only
		// Pin the reference to the sweep's lattice so both runs solve the
		// exact same grids and only the cache scope differs.
		ref.EStep = shared.EStep
		rp, err := ref.SolveBias(context.Background(), vg, vd)
		if err != nil {
			t.Fatalf("reference Vg=%g: %v", vg, err)
		}
		denom := math.Max(math.Abs(rp.Current), 1e-300)
		if rel := math.Abs(points[i].Current-rp.Current) / denom; rel > 1e-10 {
			t.Fatalf("Vg=%g: shared-cache current %g vs per-bias %g (rel %g)",
				vg, points[i].Current, rp.Current, rel)
		}
		if points[i].Iterations != rp.Iterations {
			t.Fatalf("Vg=%g: iteration counts diverged (%d vs %d)", vg, points[i].Iterations, rp.Iterations)
		}
	}
}

// TestGateSweepSeededRefinement runs the sweep with neighbor seeding
// enabled: refinement must be attempted, and the currents must stay
// within 1e-8 of the exact (unseeded) sweep — the relaxed tolerance the
// drill documents for seeded runs.
func TestGateSweepSeededRefinement(t *testing.T) {
	if testing.Short() {
		t.Skip("self-consistent FET sweeps in -short mode")
	}
	vgs := []float64{-0.3, 0.0, 0.3}
	const vd = 0.15

	exact := cacheFET(t)
	want, err := exact.GateSweep(context.Background(), vgs, vd)
	if err != nil {
		t.Fatal(err)
	}

	seeded := cacheFET(t)
	seeded.sweepLattice(vgs, vd)
	seeded.Cache = negf.NewSelfEnergyCacheWith(negf.CacheConfig{SeedDist: 1.1 * seeded.EStep})
	got, err := seeded.GateSweep(context.Background(), vgs, vd)
	if err != nil {
		t.Fatal(err)
	}

	st := seeded.Cache.Stats()
	if st.SeededRefinements+st.SeedFallbacks == 0 {
		t.Fatal("seeding enabled but never attempted")
	}
	t.Logf("seeded sweep: %d refinements converged, %d fell back to decimation",
		st.SeededRefinements, st.SeedFallbacks)
	for i := range vgs {
		denom := math.Max(math.Abs(want[i].Current), 1e-300)
		if rel := math.Abs(got[i].Current-want[i].Current) / denom; rel > 1e-8 {
			t.Fatalf("Vg=%g: seeded current %g vs exact %g (rel %g)",
				vgs[i], got[i].Current, want[i].Current, rel)
		}
	}
}
