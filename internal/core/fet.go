package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/negf"
	"repro/internal/poisson"
	"repro/internal/sched"
	"repro/internal/transport"
)

// FET couples a Simulator to the gate-all-around electrostatic model for
// self-consistent ballistic I-V simulation — the paper's flagship
// "atomistic device engineering" application. All potentials inside the
// loop are electron potential energies U(x) in eV (U = −e·V_electrostatic),
// so a positive gate voltage lowers the channel barrier of the n-FET.
type FET struct {
	Sim *Simulator
	// GateStart and GateEnd bound the gated window as fractions of the
	// transport length.
	GateStart, GateEnd float64
	// Lambda is the gate screening length (nm); EpsOx and EpsCh the oxide
	// and channel relative permittivities.
	Lambda, EpsOx, EpsCh float64
	// SourceDoping is the donor density of the contact extensions (1/nm³).
	SourceDoping float64
	// MuOffset places the source Fermi level relative to the lead
	// conduction-band minimum (eV; positive = degenerate source).
	MuOffset float64
	// Temperature in kelvin.
	Temperature float64
	// NE is the charge-integration grid size per iteration.
	NE int
	// Mixing is the potential under-relaxation factor (0 < Mixing ≤ 1).
	Mixing float64
	// Tol is the self-consistency tolerance on max|ΔU| (eV).
	Tol float64
	// MaxIter bounds the self-consistent loop.
	MaxIter int
	// Cache memoizes contact self-energies across the whole I-V surface:
	// every gate/drain point, every SCF iteration, and the final dense
	// current grid share it. The FET's contacts are flat-band and pinned
	// (source at 0, drain at −Vd), so each lead's surface physics is a
	// pure function of the shifted energy z − qV_lead — one decimation per
	// (lead, shifted energy) serves the entire sweep. NewFET installs an
	// unbounded, unseeded cache; replace it via NewSelfEnergyCacheWith to
	// bound memory or enable neighbor seeding, or set nil to disable.
	Cache *negf.SelfEnergyCache
	// EStep is the spacing (eV) of the shared energy lattice every grid of
	// this FET snaps to, so the SCF grids and the final dense current grid
	// (which runs on the half lattice EStep/2) reuse each other's cached
	// self-energies. 0 derives it on first solve: a GateSweep uses its
	// union charge window divided into NE−1 steps, a standalone SolveBias
	// the zero-bias window.
	EStep float64
	// gapWindow is fixed at construction: the energy window the transport
	// gap was located in.
	ev, ec float64

	stepOnce   sync.Once
	keyL, keyR string
}

// fetSeq distinguishes the lead families of distinct FET instances: two
// different devices must never share cache entries even if they collide
// on a shared cache.
var fetSeq atomic.Int64

// NewFET builds a self-consistent FET driver around a simulator with
// production-style defaults. The device must be semiconducting.
func NewFET(sim *Simulator) (*FET, error) {
	f := &FET{
		Sim:          sim,
		GateStart:    0.35,
		GateEnd:      0.65,
		Lambda:       2.5,
		EpsOx:        3.9,
		EpsCh:        11.7,
		SourceDoping: 5e-1, // degenerate extensions (≈ 5e20 cm⁻³)
		MuOffset:     0.025,
		Temperature:  300,
		NE:           180,
		Mixing:       0.7,
		Tol:          2e-3,
		MaxIter:      60,
	}
	ev, ec, err := sim.ConductionBandEdge(-5, 10)
	if err != nil {
		return nil, err
	}
	f.ev, f.ec = ev, ec
	f.Cache = negf.NewSelfEnergyCache()
	id := fetSeq.Add(1)
	f.keyL = fmt.Sprintf("fet%d/L", id)
	f.keyR = fmt.Sprintf("fet%d/R", id)
	return f, nil
}

// IVPoint is one bias point of a sweep.
type IVPoint struct {
	VGate, VDrain float64
	// Current in amperes.
	Current float64
	// Iterations used by the self-consistent loop.
	Iterations int
	// Converged reports whether Tol was reached within MaxIter.
	Converged bool
	// Potential is the converged layer potential-energy profile (eV).
	Potential []float64
}

// dopingProfile returns the donor density per layer (1/nm³): doped
// extensions outside the gate window, intrinsic channel inside.
func (f *FET) dopingProfile(nl int) []float64 {
	nd := make([]float64, nl)
	for i := range nd {
		frac := (float64(i) + 0.5) / float64(nl)
		if frac < f.GateStart || frac > f.GateEnd {
			nd[i] = f.SourceDoping
		}
	}
	return nd
}

// gateMask marks the gated layers.
func (f *FET) gateMask(nl int) []bool {
	mask := make([]bool, nl)
	for i := range mask {
		frac := (float64(i) + 0.5) / float64(nl)
		mask[i] = frac >= f.GateStart && frac <= f.GateEnd
	}
	return mask
}

// ensureLattice fixes the shared energy-lattice spacing on first use:
// the zero-bias charge window divided into NE−1 steps, matching the grid
// resolution solveBias used before the lattice existed. All grids of the
// FET are then integer multiples of EStep (half multiples for the final
// current grid), which is what lets different bias windows overlap on
// identical — bitwise identical — cache keys. GateSweep pre-empts this
// with sweepLattice so the spacing reflects the sweep's widest window.
func (f *FET) ensureLattice() {
	f.latticeFrom(func() (float64, float64) { return f.chargeWindow(0, 0) })
}

// sweepLattice fixes the lattice spacing from the union charge window of
// a whole gate sweep: the widest window divided into NE−1 steps. Each
// bias point's grid then holds at most NE points — the same per-window
// budget the pre-lattice code spent — while every grid of the sweep still
// lands on one shared lattice.
func (f *FET) sweepLattice(vgs []float64, vd float64) {
	f.latticeFrom(func() (float64, float64) {
		lo, hi := f.chargeWindow(0, 0)
		for _, vg := range vgs {
			l, h := f.chargeWindow(vg, vd)
			lo = math.Min(lo, l)
			hi = math.Max(hi, h)
		}
		return lo, hi
	})
}

// latticeFrom derives EStep from a reference window exactly once; an
// explicitly pre-set EStep always wins.
func (f *FET) latticeFrom(window func() (float64, float64)) {
	f.stepOnce.Do(func() {
		if f.EStep > 0 {
			return
		}
		lo, hi := window()
		ne := f.NE
		if ne < 2 {
			ne = 2
		}
		f.EStep = (hi - lo) / float64(ne-1)
	})
}

// chargeWindow is the conduction-electron integration window at one bias
// point: from just below the lowest plausible local band minimum to well
// above the hotter contact, clamped above the (shifted) valence bands.
func (f *FET) chargeWindow(vg, vd float64) (lo, hi float64) {
	kT := KT(f.Temperature)
	muS := f.ec + f.MuOffset
	muD := muS - vd
	uLo := math.Min(0, math.Min(-vd, -vg)) - 0.05
	uHi := math.Max(0, -vd) + 0.05
	lo = f.ec + uLo - 4*kT
	if vb := f.ev + uHi + 6*kT; lo < vb {
		lo = vb
	}
	hi = math.Max(muS, muD) + 10*kT
	if hi <= lo {
		hi = lo + 20*kT
	}
	return lo, hi
}

// chargeGrid is the SCF charge-integration grid: the bias point's window
// snapped inward onto the shared lattice.
func (f *FET) chargeGrid(vg, vd float64) []float64 {
	f.ensureLattice()
	lo, hi := f.chargeWindow(vg, vd)
	return latticeGrid(lo, hi, f.EStep)
}

// currentGrid is the final dense transmission grid over the bias window
// at the converged potential u: twice the SCF resolution, on the half
// lattice — whose even points coincide bitwise with the SCF lattice, so
// half of the dense pass is served straight from the SCF iterations'
// cache entries.
func (f *FET) currentGrid(vd float64, u []float64) []float64 {
	f.ensureLattice()
	kT := KT(f.Temperature)
	muS := f.ec + f.MuOffset
	muD := muS - vd
	eLo := math.Min(muS, muD) - 12*kT
	if vb := f.ev + maxOf(u) + 4*kT; eLo < vb {
		eLo = vb
	}
	eHi := math.Max(muS, muD) + 12*kT
	return latticeGrid(eLo, eHi, f.EStep/2)
}

// latticeGrid returns the energies k·step, k integer, covering [lo, hi]
// snapped inward (so clamps — e.g. staying above the valence band — are
// respected). Every grid built from one step lands on bitwise-identical
// energies wherever their windows overlap, because each point rounds the
// same exact product k·step.
func latticeGrid(lo, hi, step float64) []float64 {
	k0 := int(math.Ceil(lo / step))
	k1 := int(math.Floor(hi / step))
	for k1 < k0+1 {
		// Degenerate window: widen symmetrically to keep ≥ 2 points.
		k0--
		k1++
	}
	g := make([]float64, 0, k1-k0+1)
	for k := k0; k <= k1; k++ {
		g = append(g, float64(k)*step)
	}
	return g
}

// pool returns the worker pool bias points schedule on: the simulator's
// shared pool when configured, else a private GOMAXPROCS-sized one.
func (f *FET) pool() *sched.Pool {
	if p := f.Sim.Transport.Pool; p != nil {
		return p
	}
	return sched.New(f.Sim.Transport.Workers)
}

// SolveBias runs the self-consistent loop at one (VGate, VDrain) point.
func (f *FET) SolveBias(ctx context.Context, vg, vd float64) (*IVPoint, error) {
	return f.solveBias(ctx, vg, vd, f.pool())
}

func (f *FET) solveBias(ctx context.Context, vg, vd float64, pool *sched.Pool) (*IVPoint, error) {
	s := f.Sim.Built.Structure
	nl := s.NLayers()
	atoms := s.NAtoms()
	layerVol := f.Sim.LayerVolume()
	kT := KT(f.Temperature)
	muS := f.ec + f.MuOffset
	muD := muS - vd
	bias := transport.Bias{MuL: muS, MuR: muD, Temperature: f.Temperature}
	nd := f.dopingProfile(nl)
	gaa := &poisson.GateAllAround1D{
		Dx:         s.LayerPeriod,
		EpsChannel: f.EpsCh,
		EpsOxide:   f.EpsOx,
		Lambda:     f.Lambda,
		GateMask:   f.gateMask(nl),
		VSource:    0,
		VDrain:     -vd,
	}

	u := make([]float64, nl) // layer potential energy (eV)
	// Pin the contact layers from the start so the lead blocks — and with
	// them the cached contact self-energies — stay fixed through the loop.
	u[nl-1] = -vd
	pot := make([]float64, atoms)
	point := &IVPoint{VGate: vg, VDrain: vd}

	// The contacts are flat-band and pinned (source at 0, drain at −vd),
	// so the expensive Sancho-Rubio surface functions depend only on the
	// shifted energy: share the FET's sweep-wide cache across all
	// iterations and bias points, declaring each lead's family and rigid
	// shift so the cache can key shift-invariantly (the production
	// optimization of the paper's code, extended to the whole I-V surface).
	cfg := f.Sim.Transport
	cfg.Cache = f.Cache
	cfg.LeadMeta = &negf.LeadMeta{KeyL: f.keyL, KeyR: f.keyR, ShiftR: -vd}
	// All iterations (and, in a GateSweep, all bias points) draw their
	// energy- and domain-level helpers from the same pool.
	cfg.Pool = pool

	// Charge-integration grid, fixed per bias point and snapped to the
	// FET's shared energy lattice so every iteration — and every other
	// bias point whose window overlaps — reuses the same cached energies.
	grid := f.chargeGrid(vg, vd)

	for iter := 1; iter <= f.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		point.Iterations = iter
		// Spread the layer potential onto atoms.
		for i, a := range s.Atoms {
			pot[i] = u[a.Layer]
		}
		h, err := f.Sim.Hamiltonian(pot, 0)
		if err != nil {
			return nil, err
		}
		eng, err := transport.NewEngine(h, cfg)
		if err != nil {
			return nil, err
		}
		occ, err := eng.ChargeDensity(ctx, grid, bias)
		if err != nil {
			return nil, err
		}
		// Layer electron density (spin degeneracy included), 1/nm³.
		nLayer := make([]float64, nl)
		off := h.Offsets()
		for li := 0; li < nl; li++ {
			var sum float64
			for k := off[li]; k < off[li+1]; k++ {
				sum += occ[k]
			}
			nLayer[li] = f.Sim.SpinDegeneracy() * sum / layerVol
		}
		// Poisson in potential-energy convention: charge term n − N_D and
		// gate energy −Vg (see type comment), with the Gummel-linearized
		// charge response ∂n/∂U = −n/kT on the diagonal for stability.
		rho := make([]float64, nl)
		dRho := make([]float64, nl)
		for i := range rho {
			rho[i] = nLayer[i] - nd[i]
			dRho[i] = -nLayer[i] / kT
		}
		uNew, err := gaa.SolveLinearized(-vg, rho, dRho, u)
		if err != nil {
			return nil, err
		}
		var maxDelta float64
		for i := range u {
			d := uNew[i] - u[i]
			if math.Abs(d) > maxDelta {
				maxDelta = math.Abs(d)
			}
			u[i] += f.Mixing * d
		}
		if maxDelta < f.Tol {
			point.Converged = true
			break
		}
	}
	// Final current from a denser transmission grid over the bias window —
	// the half lattice, so its even points are served straight from the
	// SCF iterations' cache entries.
	for i, a := range s.Atoms {
		pot[i] = u[a.Layer]
	}
	iGrid := f.currentGrid(vd, u)
	h, err := f.Sim.Hamiltonian(pot, 0)
	if err != nil {
		return nil, err
	}
	eng, err := transport.NewEngine(h, cfg)
	if err != nil {
		return nil, err
	}
	ts, err := eng.Transmissions(ctx, iGrid)
	if err != nil {
		return nil, err
	}
	i, err := f.Sim.CurrentFromSpectrum(iGrid, ts, bias)
	if err != nil {
		return nil, err
	}
	point.Current = i
	point.Potential = u
	return point, nil
}

// GateSweep runs SolveBias over a gate-voltage ladder at fixed drain bias.
// The points are independent — this is the outermost (bias) level of the
// paper's parallel scheme — so they run concurrently, sharing one worker
// pool with the momentum/energy/domain levels nested inside each point.
// Results come back in ladder order; the first failing gate voltage (by
// ladder order) cancels the in-flight siblings and is reported.
func (f *FET) GateSweep(ctx context.Context, vgs []float64, vd float64) ([]IVPoint, error) {
	f.sweepLattice(vgs, vd)
	out := make([]IVPoint, len(vgs))
	pool := f.pool()
	err := pool.ForEach(ctx, "bias", len(vgs), func(ctx context.Context, i int) error {
		p, err := f.solveBias(ctx, vgs[i], vd, pool)
		if err != nil {
			return err
		}
		out[i] = *p
		return nil
	})
	if te, ok := sched.AsTaskError(err); ok {
		return nil, fmt.Errorf("core: Vg=%g: %w", vgs[te.Index], te.Err)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SubthresholdSlope extracts the subthreshold slope (mV/decade) from two
// I-V points in the exponential regime.
func SubthresholdSlope(p1, p2 IVPoint) (float64, error) {
	if p1.Current <= 0 || p2.Current <= 0 {
		return 0, fmt.Errorf("core: non-positive currents in slope extraction")
	}
	dec := math.Log10(p2.Current) - math.Log10(p1.Current)
	if dec == 0 {
		return 0, fmt.Errorf("core: identical currents in slope extraction")
	}
	return (p2.VGate - p1.VGate) * 1000 / dec, nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func maxOf(v []float64) float64 {
	_, hi := minMax(v)
	return hi
}
