package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/negf"
	"repro/internal/poisson"
	"repro/internal/sched"
	"repro/internal/transport"
)

// FET couples a Simulator to the gate-all-around electrostatic model for
// self-consistent ballistic I-V simulation — the paper's flagship
// "atomistic device engineering" application. All potentials inside the
// loop are electron potential energies U(x) in eV (U = −e·V_electrostatic),
// so a positive gate voltage lowers the channel barrier of the n-FET.
type FET struct {
	Sim *Simulator
	// GateStart and GateEnd bound the gated window as fractions of the
	// transport length.
	GateStart, GateEnd float64
	// Lambda is the gate screening length (nm); EpsOx and EpsCh the oxide
	// and channel relative permittivities.
	Lambda, EpsOx, EpsCh float64
	// SourceDoping is the donor density of the contact extensions (1/nm³).
	SourceDoping float64
	// MuOffset places the source Fermi level relative to the lead
	// conduction-band minimum (eV; positive = degenerate source).
	MuOffset float64
	// Temperature in kelvin.
	Temperature float64
	// NE is the charge-integration grid size per iteration.
	NE int
	// Mixing is the potential under-relaxation factor (0 < Mixing ≤ 1).
	Mixing float64
	// Tol is the self-consistency tolerance on max|ΔU| (eV).
	Tol float64
	// MaxIter bounds the self-consistent loop.
	MaxIter int
	// gapWindow is fixed at construction: the energy window the transport
	// gap was located in.
	ev, ec float64
}

// NewFET builds a self-consistent FET driver around a simulator with
// production-style defaults. The device must be semiconducting.
func NewFET(sim *Simulator) (*FET, error) {
	f := &FET{
		Sim:          sim,
		GateStart:    0.35,
		GateEnd:      0.65,
		Lambda:       2.5,
		EpsOx:        3.9,
		EpsCh:        11.7,
		SourceDoping: 5e-1, // degenerate extensions (≈ 5e20 cm⁻³)
		MuOffset:     0.025,
		Temperature:  300,
		NE:           180,
		Mixing:       0.7,
		Tol:          2e-3,
		MaxIter:      60,
	}
	ev, ec, err := sim.ConductionBandEdge(-5, 10)
	if err != nil {
		return nil, err
	}
	f.ev, f.ec = ev, ec
	return f, nil
}

// IVPoint is one bias point of a sweep.
type IVPoint struct {
	VGate, VDrain float64
	// Current in amperes.
	Current float64
	// Iterations used by the self-consistent loop.
	Iterations int
	// Converged reports whether Tol was reached within MaxIter.
	Converged bool
	// Potential is the converged layer potential-energy profile (eV).
	Potential []float64
}

// dopingProfile returns the donor density per layer (1/nm³): doped
// extensions outside the gate window, intrinsic channel inside.
func (f *FET) dopingProfile(nl int) []float64 {
	nd := make([]float64, nl)
	for i := range nd {
		frac := (float64(i) + 0.5) / float64(nl)
		if frac < f.GateStart || frac > f.GateEnd {
			nd[i] = f.SourceDoping
		}
	}
	return nd
}

// gateMask marks the gated layers.
func (f *FET) gateMask(nl int) []bool {
	mask := make([]bool, nl)
	for i := range mask {
		frac := (float64(i) + 0.5) / float64(nl)
		mask[i] = frac >= f.GateStart && frac <= f.GateEnd
	}
	return mask
}

// pool returns the worker pool bias points schedule on: the simulator's
// shared pool when configured, else a private GOMAXPROCS-sized one.
func (f *FET) pool() *sched.Pool {
	if p := f.Sim.Transport.Pool; p != nil {
		return p
	}
	return sched.New(f.Sim.Transport.Workers)
}

// SolveBias runs the self-consistent loop at one (VGate, VDrain) point.
func (f *FET) SolveBias(ctx context.Context, vg, vd float64) (*IVPoint, error) {
	return f.solveBias(ctx, vg, vd, f.pool())
}

func (f *FET) solveBias(ctx context.Context, vg, vd float64, pool *sched.Pool) (*IVPoint, error) {
	s := f.Sim.Built.Structure
	nl := s.NLayers()
	atoms := s.NAtoms()
	layerVol := f.Sim.LayerVolume()
	kT := KT(f.Temperature)
	muS := f.ec + f.MuOffset
	muD := muS - vd
	bias := transport.Bias{MuL: muS, MuR: muD, Temperature: f.Temperature}
	nd := f.dopingProfile(nl)
	gaa := &poisson.GateAllAround1D{
		Dx:         s.LayerPeriod,
		EpsChannel: f.EpsCh,
		EpsOxide:   f.EpsOx,
		Lambda:     f.Lambda,
		GateMask:   f.gateMask(nl),
		VSource:    0,
		VDrain:     -vd,
	}

	u := make([]float64, nl) // layer potential energy (eV)
	// Pin the contact layers from the start so the lead blocks — and with
	// them the cached contact self-energies — stay fixed through the loop.
	u[nl-1] = -vd
	pot := make([]float64, atoms)
	point := &IVPoint{VGate: vg, VDrain: vd}

	// The contacts are flat-band and pinned, so the expensive Sancho-Rubio
	// surface functions depend only on energy: share one cache across all
	// iterations (the production optimization of the paper's code).
	cfg := f.Sim.Transport
	cfg.Cache = negf.NewSelfEnergyCache()
	// All iterations (and, in a GateSweep, all bias points) draw their
	// energy- and domain-level helpers from the same pool.
	cfg.Pool = pool

	// Conduction-electron window, fixed per bias point so every iteration
	// reuses the same cached energies: from just below the lowest
	// plausible local band minimum to well above the hotter contact,
	// clamped above the (shifted) valence bands.
	uLo := math.Min(0, math.Min(-vd, -vg)) - 0.05
	uHi := math.Max(0, -vd) + 0.05
	lo := f.ec + uLo - 4*kT
	if vb := f.ev + uHi + 6*kT; lo < vb {
		lo = vb
	}
	hi := math.Max(muS, muD) + 10*kT
	if hi <= lo {
		hi = lo + 20*kT
	}
	grid := transport.UniformGrid(lo, hi, f.NE)

	for iter := 1; iter <= f.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		point.Iterations = iter
		// Spread the layer potential onto atoms.
		for i, a := range s.Atoms {
			pot[i] = u[a.Layer]
		}
		h, err := f.Sim.Hamiltonian(pot, 0)
		if err != nil {
			return nil, err
		}
		eng, err := transport.NewEngine(h, cfg)
		if err != nil {
			return nil, err
		}
		occ, err := eng.ChargeDensity(ctx, grid, bias)
		if err != nil {
			return nil, err
		}
		// Layer electron density (spin degeneracy included), 1/nm³.
		nLayer := make([]float64, nl)
		off := h.Offsets()
		for li := 0; li < nl; li++ {
			var sum float64
			for k := off[li]; k < off[li+1]; k++ {
				sum += occ[k]
			}
			nLayer[li] = f.Sim.SpinDegeneracy() * sum / layerVol
		}
		// Poisson in potential-energy convention: charge term n − N_D and
		// gate energy −Vg (see type comment), with the Gummel-linearized
		// charge response ∂n/∂U = −n/kT on the diagonal for stability.
		rho := make([]float64, nl)
		dRho := make([]float64, nl)
		for i := range rho {
			rho[i] = nLayer[i] - nd[i]
			dRho[i] = -nLayer[i] / kT
		}
		uNew, err := gaa.SolveLinearized(-vg, rho, dRho, u)
		if err != nil {
			return nil, err
		}
		var maxDelta float64
		for i := range u {
			d := uNew[i] - u[i]
			if math.Abs(d) > maxDelta {
				maxDelta = math.Abs(d)
			}
			u[i] += f.Mixing * d
		}
		if maxDelta < f.Tol {
			point.Converged = true
			break
		}
	}
	// Final current from a denser transmission grid over the bias window,
	// still sharing the self-energy cache.
	for i, a := range s.Atoms {
		pot[i] = u[a.Layer]
	}
	eLo := math.Min(muS, muD) - 12*kT
	if vb := f.ev + maxOf(u) + 4*kT; eLo < vb {
		eLo = vb
	}
	eHi := math.Max(muS, muD) + 12*kT
	iGrid := transport.UniformGrid(eLo, eHi, 2*f.NE)
	h, err := f.Sim.Hamiltonian(pot, 0)
	if err != nil {
		return nil, err
	}
	eng, err := transport.NewEngine(h, cfg)
	if err != nil {
		return nil, err
	}
	ts, err := eng.Transmissions(ctx, iGrid)
	if err != nil {
		return nil, err
	}
	i, err := f.Sim.CurrentFromSpectrum(iGrid, ts, bias)
	if err != nil {
		return nil, err
	}
	point.Current = i
	point.Potential = u
	return point, nil
}

// GateSweep runs SolveBias over a gate-voltage ladder at fixed drain bias.
// The points are independent — this is the outermost (bias) level of the
// paper's parallel scheme — so they run concurrently, sharing one worker
// pool with the momentum/energy/domain levels nested inside each point.
// Results come back in ladder order; the first failing gate voltage (by
// ladder order) cancels the in-flight siblings and is reported.
func (f *FET) GateSweep(ctx context.Context, vgs []float64, vd float64) ([]IVPoint, error) {
	out := make([]IVPoint, len(vgs))
	pool := f.pool()
	err := pool.ForEach(ctx, "bias", len(vgs), func(ctx context.Context, i int) error {
		p, err := f.solveBias(ctx, vgs[i], vd, pool)
		if err != nil {
			return err
		}
		out[i] = *p
		return nil
	})
	if te, ok := sched.AsTaskError(err); ok {
		return nil, fmt.Errorf("core: Vg=%g: %w", vgs[te.Index], te.Err)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SubthresholdSlope extracts the subthreshold slope (mV/decade) from two
// I-V points in the exponential regime.
func SubthresholdSlope(p1, p2 IVPoint) (float64, error) {
	if p1.Current <= 0 || p2.Current <= 0 {
		return 0, fmt.Errorf("core: non-positive currents in slope extraction")
	}
	dec := math.Log10(p2.Current) - math.Log10(p1.Current)
	if dec == 0 {
		return 0, fmt.Errorf("core: identical currents in slope extraction")
	}
	return (p2.VGate - p1.VGate) * 1000 / dec, nil
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func maxOf(v []float64) float64 {
	_, hi := minMax(v)
	return hi
}
