// Package core is the public façade of the simulator: it wires the
// atomistic structure generators, tight-binding Hamiltonians, contact
// self-energies, quantum solvers (wave-function / NEGF / SplitSolve),
// electrostatics, and the multi-level parallel runner into device-level
// operations — band structures, transmission spectra (momentum-averaged
// where applicable), charge, and self-consistent I-V characteristics of
// gate-all-around nanowire FETs, the paper's flagship application.
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/sched"
	"repro/internal/sparse"
	"repro/internal/tb"
	"repro/internal/transport"
	"repro/internal/units"
)

// Simulator evaluates transport observables for one built device.
type Simulator struct {
	// Desc is the device description the simulator was built from.
	Desc device.Description
	// Built holds the structure and material.
	Built *device.Built
	// Transport selects the formalism and its numerics.
	Transport transport.Config
	// NK is the number of transverse momentum points for y-periodic
	// structures (ignored otherwise; 1 means Γ only).
	NK int
}

// New builds a simulator for the device description.
func New(desc device.Description, cfg transport.Config) (*Simulator, error) {
	b, err := desc.Build()
	if err != nil {
		return nil, err
	}
	return &Simulator{Desc: desc, Built: b, Transport: cfg, NK: 1}, nil
}

// kPoints returns the transverse momenta to sample (uniform BZ grid,
// symmetric around Γ).
func (s *Simulator) kPoints() []float64 {
	if !s.Built.Structure.PeriodicY || s.NK <= 1 {
		return []float64{0}
	}
	ks := make([]float64, s.NK)
	w := 2 * math.Pi / s.Built.Structure.PeriodY
	for j := 0; j < s.NK; j++ {
		ks[j] = -w/2 + w*(float64(j)+0.5)/float64(s.NK)
	}
	return ks
}

// Hamiltonian assembles the device Hamiltonian at transverse momentum ky
// with the given per-atom potential energy (eV, nil for flat bands).
func (s *Simulator) Hamiltonian(potential []float64, ky float64) (*sparse.BlockTridiag, error) {
	opt := s.Built.Options
	opt.Ky = ky
	opt.Potential = potential
	return tb.Assemble(s.Built.Structure, s.Built.Material, opt)
}

// Bands computes the lead band structure at ky = 0 with nk longitudinal
// k-points.
func (s *Simulator) Bands(nk int) (*tb.BandStructure, error) {
	h, err := s.Hamiltonian(nil, 0)
	if err != nil {
		return nil, err
	}
	h00, h01 := tb.LeadBlocks(h, false)
	return tb.LeadBands(h00, h01, s.Built.Structure.LayerPeriod, nk)
}

// Transmission returns the momentum-averaged transmission T(E) over the
// energy grid, with the per-k solves distributed over the worker pool (the
// momentum × energy levels of the paper's parallel scheme). Both levels —
// and SplitSolve domains below them — draw helpers from one shared pool,
// so total concurrency stays bounded by its worker budget.
func (s *Simulator) Transmission(ctx context.Context, energies []float64, potential []float64) ([]float64, error) {
	ks := s.kPoints()
	cfg := s.Transport
	if cfg.Pool == nil {
		cfg.Pool = sched.New(cfg.Workers)
	}
	perK := make([][]float64, len(ks))
	err := cluster.RunTasks(ctx, 1, len(ks), 1, cfg.Pool, func(ctx context.Context, task cluster.Task) error {
		h, err := s.Hamiltonian(potential, ks[task.K])
		if err != nil {
			return err
		}
		eng, err := transport.NewEngine(h, cfg)
		if err != nil {
			return err
		}
		t, err := eng.Transmissions(ctx, energies)
		if err != nil {
			return err
		}
		perK[task.K] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	avg := make([]float64, len(energies))
	for _, tk := range perK {
		for i, v := range tk {
			avg[i] += v / float64(len(ks))
		}
	}
	return avg, nil
}

// Stats reports the device bookkeeping numbers.
func (s *Simulator) Stats() device.Stats {
	return s.Built.Stats(s.Desc.Name, s.Desc.Kind.String())
}

// ConductionBandEdge locates the lead valence-band maximum and
// conduction-band minimum from the flat-band lead spectrum, searching for
// the transport gap within the window [lo, hi].
func (s *Simulator) ConductionBandEdge(lo, hi float64) (ev, ec float64, err error) {
	bands, err := s.Bands(65)
	if err != nil {
		return 0, 0, err
	}
	ev, ec, ok := bands.GapAround(lo, hi)
	if !ok {
		return 0, 0, fmt.Errorf("core: no transport gap found in [%g, %g] — device is metallic", lo, hi)
	}
	return ev, ec, nil
}

// SpinDegeneracy returns 2 for spinless Hamiltonians, 1 for spin-resolved.
func (s *Simulator) SpinDegeneracy() float64 {
	if s.Built.Options.Spin {
		return 1
	}
	return 2
}

// CurrentFromSpectrum integrates a Landauer current with the device's spin
// convention.
func (s *Simulator) CurrentFromSpectrum(energies, transmissions []float64, bias transport.Bias) (float64, error) {
	return transport.Current(energies, transmissions, bias, s.SpinDegeneracy())
}

// LayerVolume returns the volume of one principal layer in nm³, using the
// device cross-section for wire-like devices and a 1 nm² nominal area for
// low-dimensional ones (chains, ribbons).
func (s *Simulator) LayerVolume() float64 {
	area := 1.0
	switch s.Desc.Kind {
	case device.SiNanowire, device.GaAsNanowire, device.SiUTB, device.GeNanowire, device.InAsNanowire:
		a := s.Built.Material.LatticeConstant
		area = float64(s.Desc.CellsY) * a * float64(s.Desc.CellsZ) * a
	}
	return area * s.Built.Structure.LayerPeriod
}

// PredictScaling exposes the calibrated Jaguar machine model for this
// device's workload shape: nBias × nK × nE solves over the device's layer
// structure (see internal/cluster and DESIGN.md for the substitution).
func (s *Simulator) PredictScaling(nBias, nK, nE int, coreCounts []int) ([]cluster.Report, error) {
	st := s.Stats()
	w := cluster.Workload{
		NBias: nBias, NK: nK, NE: nE,
		NLayers:              st.Layers,
		BlockSize:            st.BlockSize,
		RHSWidth:             st.BlockSize,
		SelfEnergyIterations: 30,
	}
	return cluster.Jaguar().StrongScaling(w, coreCounts)
}

// KT re-exports the thermal energy helper for drivers.
func KT(temperature float64) float64 { return units.KT(temperature) }
