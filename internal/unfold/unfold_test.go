package unfold

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnfoldValidation(t *testing.T) {
	h00, h01 := SupercellChain([]float64{0, 0, 0, 0}, -1)
	if _, err := Unfold(h00, h01, 3, 1, 0.5, 0); err == nil {
		t.Fatal("accepted mismatched cell tiling")
	}
	if _, err := Unfold(h00, h01, 4, 1, 0.5, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCleanChainUnfoldsExactly: for a perfect crystal the supercell bands
// are pure refoldings — every eigenstate carries weight 1 at exactly one
// primitive wavevector, and its energy matches the primitive dispersion
// there.
func TestCleanChainUnfoldsExactly(t *testing.T) {
	const n, a, eps0, hop = 6, 0.5, 0.2, -1.0
	eps := make([]float64, n)
	for i := range eps {
		eps[i] = eps0
	}
	h00, h01 := SupercellChain(eps, hop)
	for _, bigK := range []float64{0, 0.3, -0.9} {
		states, err := Unfold(h00, h01, n, 1, a, bigK)
		if err != nil {
			t.Fatal(err)
		}
		if len(states) != n {
			t.Fatalf("got %d states", len(states))
		}
		// Degenerate ±k pairs may mix arbitrarily inside the eigensolver,
		// so the sharp statements are: (1) every bit of weight a state
		// carries at k_m sits exactly on the primitive dispersion there;
		// (2) the spectral weight accumulated at each k_m across all
		// states is exactly 1.
		perK := make([]float64, n)
		for _, st := range states {
			for m, w := range st.W {
				if w < 1e-9 {
					continue
				}
				want := eps0 + 2*hop*math.Cos(st.K[m]*a)
				if math.Abs(st.Energy-want) > 1e-9 {
					t.Fatalf("state E=%g carries weight %g at k=%g where the band is %g",
						st.Energy, w, st.K[m], want)
				}
				perK[m] += w
			}
		}
		for m, total := range perK {
			if math.Abs(total-1) > 1e-9 {
				t.Fatalf("unfolded wavevector %d accumulated weight %g, want 1", m, total)
			}
		}
	}
}

// TestWeightSumRule: Σ_m W_m = 1 for every eigenstate, disordered or not.
func TestWeightSumRule(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	eps := make([]float64, 8)
	for i := range eps {
		eps[i] = 0.5 * rng.NormFloat64()
	}
	h00, h01 := SupercellChain(eps, -1)
	states, err := Unfold(h00, h01, 8, 1, 0.5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		if math.Abs(st.TotalWeight()-1) > 1e-9 {
			t.Fatalf("state at E=%g has total weight %g", st.Energy, st.TotalWeight())
		}
	}
}

// TestDisorderSpreadsWeight: alloy disorder must reduce the dominant
// weight below 1 for at least some states — the spectral broadening the
// effective-bandstructure method quantifies.
func TestDisorderSpreadsWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 10
	eps := make([]float64, n)
	for i := range eps {
		if rng.Float64() < 0.5 {
			eps[i] = 0.8
		}
	}
	h00, h01 := SupercellChain(eps, -1)
	states, err := Unfold(h00, h01, n, 1, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	spread := 0
	for _, st := range states {
		if _, w := st.DominantK(); w < 0.95 {
			spread++
		}
	}
	if spread < n/3 {
		t.Fatalf("only %d of %d alloy states show weight spreading", spread, n)
	}
}

// TestWeakDisorderKeepsEffectiveBands: for weak disorder, the dominant-k
// assignment must still trace the VCA-shifted primitive band closely.
func TestWeakDisorderKeepsEffectiveBands(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, a, hop, shift, x = 12, 0.5, -1.0, 0.1, 0.5
	eps := make([]float64, n)
	for i := range eps {
		if rng.Float64() < x {
			eps[i] = shift
		}
	}
	h00, h01 := SupercellChain(eps, hop)
	states, err := Unfold(h00, h01, n, 1, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		k, w := st.DominantK()
		if w < 0.6 {
			continue // strongly mixed state: no band assignment
		}
		vca := x*shift + 2*hop*math.Cos(k*a)
		if math.Abs(st.Energy-vca) > 0.15 {
			t.Fatalf("effective band at k=%g: E=%g vs VCA %g", k, st.Energy, vca)
		}
	}
}

func TestQuickUnfoldSumRule(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 2
		rng := rand.New(rand.NewSource(seed))
		eps := make([]float64, n)
		for i := range eps {
			eps[i] = rng.NormFloat64()
		}
		h00, h01 := SupercellChain(eps, -1)
		states, err := Unfold(h00, h01, n, 1, 0.5, rng.NormFloat64())
		if err != nil {
			return false
		}
		for _, st := range states {
			if math.Abs(st.TotalWeight()-1) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
