// Package unfold implements Brillouin-zone unfolding of supercell band
// structures onto the primitive-cell zone — the signature method of the
// paper's co-author line (Boykin & Klimeck) for extracting effective
// (approximate) bands of random alloys and perturbed superlattices from
// supercell eigenstates.
//
// For a supercell of N primitive cells along the transport axis, every
// supercell wavevector K hosts the folded images of the primitive
// wavevectors k_m = K + 2πm/(N·a), m = 0..N−1. Each supercell eigenstate
// |ψ⟩ distributes spectral weight
//
//	W_m(ψ) = Σ_o |(1/√N)·Σ_j e^{−i·k_m·X_j}·ψ_{j,o}|²
//
// over those k_m (j runs over the primitive cells at positions X_j = j·a,
// o over the orbitals within one cell). The weights sum to 1; for a
// perfect crystal each eigenstate carries weight 1 at exactly one k_m,
// while disorder spreads the weight — the "effective bandstructure" of
// alloy nanostructures.
package unfold

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// State is one unfolded supercell eigenstate: its energy and the spectral
// weight it carries at each unfolded primitive wavevector.
type State struct {
	// Energy in eV.
	Energy float64
	// K lists the primitive wavevectors k_m (rad/nm).
	K []float64
	// W lists the spectral weights at each k_m (sums to 1).
	W []float64
}

// Unfold diagonalizes the supercell Bloch Hamiltonian
// H(K) = h00 + h01·e^{iKA} + h01†·e^{−iKA} (A = nCells·a the supercell
// period) and unfolds every eigenstate onto the primitive zone. The
// supercell orbitals must be ordered cell-major: orbital o of cell j at
// index j·orbPerCell + o, cells at X_j = j·a.
func Unfold(h00, h01 *linalg.Matrix, nCells, orbPerCell int, a float64, bigK float64) ([]State, error) {
	n := h00.Rows
	if nCells < 1 || orbPerCell < 1 || nCells*orbPerCell != n {
		return nil, fmt.Errorf("unfold: %d cells × %d orbitals does not tile a %d-orbital supercell",
			nCells, orbPerCell, n)
	}
	if h00.Cols != n || h01.Rows != n || h01.Cols != n {
		return nil, fmt.Errorf("unfold: lead blocks must be square and same-sized")
	}
	bigA := float64(nCells) * a
	hk := tbBloch(h00, h01, bigK*bigA)
	eig, err := linalg.EigH(hk)
	if err != nil {
		return nil, fmt.Errorf("unfold: supercell diagonalization: %w", err)
	}
	// Unfolded wavevectors, reduced into the primitive zone (−π/a, π/a].
	ks := make([]float64, nCells)
	for m := 0; m < nCells; m++ {
		k := bigK + 2*math.Pi*float64(m)/bigA
		for k > math.Pi/a {
			k -= 2 * math.Pi / a
		}
		for k <= -math.Pi/a {
			k += 2 * math.Pi / a
		}
		ks[m] = k
	}
	out := make([]State, n)
	for band := 0; band < n; band++ {
		st := State{Energy: eig.Values[band], K: ks, W: make([]float64, nCells)}
		for m := 0; m < nCells; m++ {
			km := bigK + 2*math.Pi*float64(m)/bigA
			var total float64
			for o := 0; o < orbPerCell; o++ {
				var amp complex128
				for j := 0; j < nCells; j++ {
					phase := cmplx.Exp(complex(0, -km*float64(j)*a))
					amp += phase * eig.Vectors.At(j*orbPerCell+o, band)
				}
				total += real(amp)*real(amp) + imag(amp)*imag(amp)
			}
			st.W[m] = total / float64(nCells)
		}
		out[band] = st
	}
	return out, nil
}

// tbBloch forms h00 + h01·e^{iφ} + h01†·e^{−iφ}.
func tbBloch(h00, h01 *linalg.Matrix, phi float64) *linalg.Matrix {
	hk := h00.Clone()
	hk.AddInPlace(h01.Scale(cmplx.Exp(complex(0, phi))))
	hk.AddInPlace(h01.ConjTranspose().Scale(cmplx.Exp(complex(0, -phi))))
	return hk
}

// DominantK returns the unfolded wavevector carrying the largest weight of
// the state along with that weight — the "effective band" assignment.
func (s State) DominantK() (k float64, w float64) {
	best := 0
	for m := range s.W {
		if s.W[m] > s.W[best] {
			best = m
		}
	}
	return s.K[best], s.W[best]
}

// TotalWeight returns Σ_m W_m (1 for a complete unfolding).
func (s State) TotalWeight() float64 {
	var t float64
	for _, w := range s.W {
		t += w
	}
	return t
}

// SupercellChain builds the lead blocks of a chain supercell of nCells
// sites with per-site energies eps (length nCells) and uniform hopping t:
// h00 is the intra-supercell tridiagonal block, h01 the corner hopping
// into the next supercell. It is the workhorse for alloy unfolding
// studies and tests.
func SupercellChain(eps []float64, t float64) (h00, h01 *linalg.Matrix) {
	n := len(eps)
	h00 = linalg.New(n, n)
	h01 = linalg.New(n, n)
	for i := 0; i < n; i++ {
		h00.Set(i, i, complex(eps[i], 0))
		if i+1 < n {
			h00.Set(i, i+1, complex(t, 0))
			h00.Set(i+1, i, complex(t, 0))
		}
	}
	h01.Set(n-1, 0, complex(t, 0))
	return h00, h01
}
