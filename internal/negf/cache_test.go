package negf

import (
	"math"
	"sync"
	"testing"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/tb"
)

// chainLeads builds the leads of a uniform single-band chain whose every
// site sits at potential energy shift (a rigid contact shift, as a pinned
// bias produces), declaring the given cache identity.
func chainLeads(t *testing.T, hop, shift float64, keyL, keyR string) *Leads {
	t.Helper()
	s, err := lattice.NewLinearChain(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	var pot []float64
	if shift != 0 {
		pot = make([]float64, 4)
		for i := range pot {
			pot[i] = shift
		}
	}
	h, err := tb.Assemble(s, tb.SingleBandChain(0, hop), tb.Options{Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	leads, err := LeadsFromDevice(h)
	if err != nil {
		t.Fatal(err)
	}
	leads.KeyL, leads.KeyR = keyL, keyR
	leads.ShiftL, leads.ShiftR = shift, shift
	return leads
}

func maxAbsDiffT(t *testing.T, a, b *linalg.Matrix) float64 {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return maxAbsDiff(a, b)
}

// TestShiftInvariantSigma pins the physics the whole cache design rests
// on: a flat-band contact rigidly shifted by qV satisfies
// Σ(z; V) = Σ(z − qV; 0) — first directly through the decimation, then
// through the cache, where the two requests must resolve to one entry.
func TestShiftInvariantSigma(t *testing.T) {
	const hop, v = -1.0, 0.35
	base := chainLeads(t, hop, 0, "chain/L", "chain/R")
	shifted := chainLeads(t, hop, v, "chain/L", "chain/R")

	for _, e := range []float64{-1.2, 0.0, 0.7, 2.6} {
		z := complex(e, 1e-6)
		sLs, sRs, err := shifted.SelfEnergies(z)
		if err != nil {
			t.Fatalf("shifted E=%g: %v", e, err)
		}
		sL0, sR0, err := base.SelfEnergies(z - complex(v, 0))
		if err != nil {
			t.Fatalf("base E=%g: %v", e, err)
		}
		if d := maxAbsDiffT(t, sLs, sL0); d > 1e-12 {
			t.Fatalf("E=%g: |Σ_L(z;V) − Σ_L(z−qV;0)| = %g > 1e-12", e, d)
		}
		if d := maxAbsDiffT(t, sRs, sR0); d > 1e-12 {
			t.Fatalf("E=%g: |Σ_R(z;V) − Σ_R(z−qV;0)| = %g > 1e-12", e, d)
		}
	}

	// Through the cache the shifted and unshifted requests share one
	// entry per lead: the second call must be all hits, returning the
	// very same matrices.
	c := NewSelfEnergyCache()
	z := complex(0.4, 1e-6)
	s1L, s1R, err := c.SelfEnergies(shifted, z)
	if err != nil {
		t.Fatal(err)
	}
	s2L, s2R, err := c.SelfEnergies(base, z-complex(v, 0))
	if err != nil {
		t.Fatal(err)
	}
	if s1L != s2L || s1R != s2R {
		t.Fatal("shifted and canonical requests did not share cache entries")
	}
	st := c.Stats()
	if st.Misses != 2 || st.Hits != 2 || st.Decimations != 2 {
		t.Fatalf("stats = %+v; want 2 misses, 2 hits, 2 decimations", st)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
}

// TestCacheCoalescing hammers one key from many goroutines (run it under
// -race): exactly one decimation per lead may run, everyone shares its
// result.
func TestCacheCoalescing(t *testing.T) {
	leads := chainLeads(t, -1, 0, "", "")
	c := NewSelfEnergyCache()
	z := complex(0.3, 1e-6)
	const workers = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	sigLs := make([]*linalg.Matrix, workers)
	sigRs := make([]*linalg.Matrix, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sigLs[i], sigRs[i], errs[i] = c.SelfEnergies(leads, z)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if sigLs[i] != sigLs[0] || sigRs[i] != sigRs[0] {
			t.Fatalf("worker %d got a different matrix than worker 0", i)
		}
	}
	st := c.Stats()
	if st.Decimations != 2 {
		t.Fatalf("%d decimations ran, want exactly 2 (one per lead)", st.Decimations)
	}
	if st.Misses != 2 {
		t.Fatalf("%d misses, want 2", st.Misses)
	}
	if got := st.Hits + st.CoalescedWaits; got != 2*workers-2 {
		t.Fatalf("hits+coalesced = %d, want %d", got, 2*workers-2)
	}
}

// TestCacheLRUEvictionRecomputeBitwise bounds the cache, floods it past
// capacity, and checks that recomputing an evicted entry reproduces the
// evicted Σ bit for bit (seeding disabled, so results cannot depend on
// cache history).
func TestCacheLRUEvictionRecomputeBitwise(t *testing.T) {
	leads := chainLeads(t, -1, 0, "", "")
	c := NewSelfEnergyCacheWith(CacheConfig{Capacity: 16}) // 1 per shard
	z0 := complex(0.17, 1e-6)

	firstL, firstR, err := c.SelfEnergies(leads, z0)
	if err != nil {
		t.Fatal(err)
	}
	keepL := firstL.Clone()
	keepR := firstR.Clone()

	for i := 0; i < 100; i++ {
		e := 0.3 + 0.013*float64(i)
		if _, _, err := c.SelfEnergies(leads, complex(e, 1e-6)); err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("flooding a capacity-16 cache with 202 entries evicted nothing")
	}
	if n := c.Len(); n > 16+cacheShards {
		t.Fatalf("cache holds %d entries, capacity 16 (+shard slack)", n)
	}

	preMisses := st.Misses
	againL, againR, err := c.SelfEnergies(leads, z0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Stats().Misses == preMisses {
		t.Skip("z0 survived the flood (not evicted); nothing to verify")
	}
	for i, v := range againL.Data {
		if v != keepL.Data[i] {
			t.Fatalf("recomputed Σ_L differs bitwise at %d: %v vs %v", i, v, keepL.Data[i])
		}
	}
	for i, v := range againR.Data {
		if v != keepR.Data[i] {
			t.Fatalf("recomputed Σ_R differs bitwise at %d: %v vs %v", i, v, keepR.Data[i])
		}
	}
}

// TestCacheSeededRefinement enables neighbor seeding and checks both
// paths: a nearby evanescent neighbor converges the Dyson fixed point
// (a decimation is saved), and whichever path serves the request, the
// result stays within 1e-10 of the direct computation.
func TestCacheSeededRefinement(t *testing.T) {
	leads := chainLeads(t, -1, 0, "", "")
	c := NewSelfEnergyCacheWith(CacheConfig{SeedDist: 0.01})

	// Outside the band (|E| > 2|t|) the fixed point is strongly
	// contracting, so the neighbor seed must converge.
	for _, e := range []float64{2.5, 2.502} {
		z := complex(e, 1e-6)
		gotL, gotR, err := c.SelfEnergies(leads, z)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		wantL, wantR, err := leads.SelfEnergies(z)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiffT(t, gotL, wantL); d > 1e-10 {
			t.Fatalf("E=%g: seeded Σ_L off by %g", e, d)
		}
		if d := maxAbsDiffT(t, gotR, wantR); d > 1e-10 {
			t.Fatalf("E=%g: seeded Σ_R off by %g", e, d)
		}
	}
	st := c.Stats()
	if st.SeededRefinements != 2 {
		t.Fatalf("evanescent neighbor: %d seeded refinements, want 2 (one per lead)", st.SeededRefinements)
	}
	if st.Decimations != 2 {
		t.Fatalf("%d decimations, want 2 (only the first energy)", st.Decimations)
	}

	// In-band at tiny η the iteration is marginal: whether it converges
	// or falls back, the served result must match the direct computation
	// to 1e-10 and every miss must be accounted as seeded or fallback.
	for _, e := range []float64{0.5, 0.5004} {
		z := complex(e, 1e-6)
		gotL, _, err := c.SelfEnergies(leads, z)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		wantL, _, err := leads.SelfEnergies(z)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiffT(t, gotL, wantL); d > 1e-10 {
			t.Fatalf("E=%g: in-band Σ_L off by %g", e, d)
		}
	}
	st = c.Stats()
	if st.Misses != st.SeededRefinements+st.Decimations {
		t.Fatalf("stats don't balance: %+v (misses ≠ seeded + decimations)", st)
	}
}

// TestCacheFamilyVerification: two leads claiming one family key with
// genuinely different blocks (beyond a rigid shift) must be rejected —
// silently sharing their self-energies would corrupt the physics.
func TestCacheFamilyVerification(t *testing.T) {
	a := chainLeads(t, -1.0, 0, "fam/L", "fam/R")
	b := chainLeads(t, -1.3, 0, "fam/L", "fam/R") // different hopping
	c := NewSelfEnergyCache()
	z := complex(0.2, 1e-6)
	if _, _, err := c.SelfEnergies(a, z); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.SelfEnergies(b, z); err == nil {
		t.Fatal("mismatched lead accepted into family")
	}

	// A rigid shift with the matching declaration is not a mismatch.
	shifted := chainLeads(t, -1.0, 0.25, "fam/L", "fam/R")
	if _, _, err := c.SelfEnergies(shifted, z); err != nil {
		t.Fatalf("rigidly shifted lead rejected: %v", err)
	}

	// Reusing one family key across sides is rejected too.
	cross := chainLeads(t, -1.0, 0, "fam/R", "fam/L")
	if _, _, err := c.SelfEnergies(cross, z); err == nil {
		t.Fatal("left lead accepted into a right-side family")
	}
}

// TestFingerprintFallback: identical leads with no declared keys coalesce
// by raw-bits fingerprint; the two sides never collide.
func TestFingerprintFallback(t *testing.T) {
	a := chainLeads(t, -1, 0, "", "")
	b := chainLeads(t, -1, 0, "", "")
	c := NewSelfEnergyCache()
	z := complex(0.6, 1e-6)
	aL, aR, err := c.SelfEnergies(a, z)
	if err != nil {
		t.Fatal(err)
	}
	bL, bR, err := c.SelfEnergies(b, z)
	if err != nil {
		t.Fatal(err)
	}
	if aL != bL || aR != bR {
		t.Fatal("bitwise-identical leads did not share fingerprint families")
	}
	// For this symmetric chain Σ_L = Σ_R numerically, but the sides must
	// still be distinct entries (projection formulas differ in general).
	if aL == aR {
		t.Fatal("left and right leads collided into one family")
	}
	if d := math.Abs(real(aL.At(0, 0)) - real(aR.At(0, 0))); d > 1e-12 {
		t.Fatalf("symmetric chain: Σ_L and Σ_R differ by %g", d)
	}
}

// TestCacheReset pins the rejoin contract: Reset empties every shard (the
// next lookup recomputes, bitwise identically) while families and event
// counters survive, so post-reset traffic still verifies against the same
// canonical contact blocks.
func TestCacheReset(t *testing.T) {
	leads := chainLeads(t, -1.0, 0, "chain/L", "chain/R")
	c := NewSelfEnergyCache()
	z := complex(0.4, 1e-6)
	s1L, s1R, err := c.SelfEnergies(leads, z)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries before reset, want 2", c.Len())
	}

	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after reset, want 0", c.Len())
	}

	s2L, s2R, err := c.SelfEnergies(leads, z)
	if err != nil {
		t.Fatal(err)
	}
	if s2L == s1L || s2R == s1R {
		t.Fatal("post-reset lookup returned the discarded entries")
	}
	if d := maxAbsDiffT(t, s1L, s2L); d != 0 {
		t.Fatalf("recomputed Σ_L differs by %g, want bitwise identity", d)
	}
	if d := maxAbsDiffT(t, s1R, s2R); d != 0 {
		t.Fatalf("recomputed Σ_R differs by %g, want bitwise identity", d)
	}
	st := c.Stats()
	if st.Misses != 4 || st.Decimations != 4 {
		t.Fatalf("stats = %+v; want 4 misses and 4 decimations across the reset", st)
	}
}
