package negf

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/tb"
)

// chainSolver builds an NEGF solver for a uniform single-band chain with
// optional per-site potential.
func chainSolver(t *testing.T, nSites int, eps0, hop float64, pot []float64, eta float64) *Solver {
	t.Helper()
	s, err := lattice.NewLinearChain(0.5, nSites)
	if err != nil {
		t.Fatal(err)
	}
	mat := tb.SingleBandChain(eps0, hop)
	h, err := tb.Assemble(s, mat, tb.Options{Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(h, eta)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestSurfaceGFAnalyticChain compares the decimated self-energy of a
// semi-infinite single-band chain with the textbook closed form
// Σ(E) = (E/2) − i·√(t² − E²/4) inside the band (for ε₀ = 0).
func TestSurfaceGFAnalyticChain(t *testing.T) {
	const hop = -1.0
	sol := chainSolver(t, 4, 0, hop, nil, 1e-6)
	for _, e := range []float64{-1.5, -0.7, 0.0, 0.4, 1.2, 1.9} {
		sigL, sigR, err := sol.Leads.SelfEnergies(complex(e, 1e-6))
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		wantRe := e / 2
		wantIm := -math.Sqrt(hop*hop - e*e/4)
		for name, sig := range map[string]*linalg.Matrix{"L": sigL, "R": sigR} {
			got := sig.At(0, 0)
			if math.Abs(real(got)-wantRe) > 5e-4 || math.Abs(imag(got)-wantIm) > 5e-4 {
				t.Fatalf("Σ_%s(%g) = %v, want (%g, %g)", name, e, got, wantRe, wantIm)
			}
		}
	}
}

func TestSurfaceGFOutsideBand(t *testing.T) {
	// Outside the band the self-energy must be (almost) purely real:
	// no states to decay into.
	sol := chainSolver(t, 4, 0, -1, nil, 1e-6)
	sigL, _, err := sol.Leads.SelfEnergies(complex(3.0, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imag(sigL.At(0, 0))) > 1e-5 {
		t.Fatalf("Σ_L outside band has Im = %g", imag(sigL.At(0, 0)))
	}
}

func TestSurfaceGFValidation(t *testing.T) {
	id := linalg.Identity(2)
	if _, err := SurfaceGF(id, linalg.New(3, 3), complex(0, 1e-6)); err == nil {
		t.Fatal("accepted mismatched lead blocks")
	}
	if _, err := SurfaceGF(id, id, complex(0, -1e-6)); err == nil {
		t.Fatal("accepted non-positive broadening")
	}
}

// TestChainTransmissionPerfect checks the hallmark ballistic result: a
// uniform chain transmits exactly one mode inside the band and nothing
// outside.
func TestChainTransmissionPerfect(t *testing.T) {
	const eps0, hop = 0.2, -1.0
	sol := chainSolver(t, 8, eps0, hop, nil, 1e-6)
	for _, e := range []float64{eps0 - 1.9, eps0 - 1.0, eps0, eps0 + 0.5, eps0 + 1.9} {
		T, err := sol.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(T-1) > 1e-4 {
			t.Fatalf("in-band T(%g) = %g, want 1", e, T)
		}
	}
	for _, e := range []float64{eps0 - 2.5, eps0 + 2.5, eps0 + 4} {
		T, err := sol.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if T > 1e-5 {
			t.Fatalf("out-of-band T(%g) = %g, want ~0", e, T)
		}
	}
}

// TestChainBarrierAgainstAnalytic compares the transmission through a
// single-site barrier with the exact discrete-lattice formula
// T = 1 / (1 + (V/(2·t·sin ka))²) for a delta barrier of height V.
func TestChainBarrierAgainstAnalytic(t *testing.T) {
	const hop, v0 = -1.0, 0.6
	n := 9
	pot := make([]float64, n)
	pot[n/2] = v0
	sol := chainSolver(t, n, 0, hop, pot, 1e-6)
	for _, e := range []float64{-1.2, -0.5, 0.3, 1.0} {
		// Dispersion E = 2t·cos(ka) → sin(ka) = √(1 − (E/2t)²).
		sinka := math.Sqrt(1 - e*e/(4*hop*hop))
		want := 1 / (1 + math.Pow(v0/(2*math.Abs(hop)*sinka), 2))
		T, err := sol.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(T-want) > 1e-4 {
			t.Fatalf("delta-barrier T(%g) = %g, want %g", e, T, want)
		}
	}
}

// TestRGFMatchesDenseReference cross-validates the recursive algorithm
// against brute-force inversion on a disordered multi-orbital device.
func TestRGFMatchesDenseReference(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A non-trivial potential profile to break uniformity in the interior.
	pot := make([]float64, s.NAtoms())
	for i, a := range s.Atoms {
		switch a.Layer {
		case 1:
			pot[i] = 0.15
		case 2:
			pot[i] = 0.25
		}
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 10, Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{1.0, 1.6, 2.2} {
		rgf, err := sol.Solve(e, false)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		dense, err := sol.DenseReference(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(rgf.T-dense.T) > 1e-8*(1+dense.T) {
			t.Fatalf("E=%g: RGF T=%g, dense T=%g", e, rgf.T, dense.T)
		}
		for i := range rgf.DOS {
			if math.Abs(rgf.DOS[i]-dense.DOS[i]) > 1e-7*(1+math.Abs(dense.DOS[i])) {
				t.Fatalf("E=%g: DOS[%d] RGF %g vs dense %g", e, i, rgf.DOS[i], dense.DOS[i])
			}
		}
	}
}

// TestBallisticSpectralIdentity checks A = A_L + A_R: the total spectral
// function must equal the sum of the two contact-injected parts in a
// ballistic device (here expressed on the diagonal).
func TestBallisticSpectralIdentity(t *testing.T) {
	sol := chainSolver(t, 7, 0, -1, nil, 1e-6)
	for _, e := range []float64{-1.0, 0.0, 0.8} {
		r, err := sol.Solve(e, true)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		for i := range r.DOS {
			total := 2 * math.Pi * r.DOS[i] // A_ii = 2π·DOS
			if math.Abs(total-(r.SpectralL[i]+r.SpectralR[i])) > 1e-4*(1+total) {
				t.Fatalf("E=%g site %d: A=%g but A_L+A_R=%g",
					e, i, total, r.SpectralL[i]+r.SpectralR[i])
			}
		}
	}
}

func TestDOSNonNegative(t *testing.T) {
	sol := chainSolver(t, 6, 0, -1, nil, 1e-6)
	for e := -2.5; e <= 2.5; e += 0.25 {
		r, err := sol.Solve(e, false)
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range r.DOS {
			if d < -1e-9 {
				t.Fatalf("negative DOS %g at site %d, E=%g", d, i, e)
			}
		}
	}
}

// TestTransmissionMatchesModeCount verifies the quantized ballistic
// conductance of a clean multi-mode device: T(E) must equal the number of
// lead bands crossing E.
func TestTransmissionMatchesModeCount(t *testing.T) {
	s, err := lattice.NewArmchairGNR(5, 6)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.Graphene(), tb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h00, h01 := tb.LeadBlocks(h, false)
	bands, err := tb.LeadBands(h00, h01, s.LayerPeriod, 128)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{0.5, 1.3, 2.4} {
		modes := 0
		// Count band crossings: for each band, count k-intervals where the
		// band passes through e; sum over bands of crossing parity gives
		// the number of right-movers, i.e. the mode count.
		for n := 0; n < bands.NumBands(); n++ {
			crossings := 0
			for ik := 0; ik+1 < len(bands.K); ik++ {
				e1, e2 := bands.Energies[ik][n], bands.Energies[ik+1][n]
				if (e1-e)*(e2-e) < 0 {
					crossings++
				}
			}
			modes += crossings / 2 // each mode crosses E going up and down over the BZ
		}
		T, err := sol.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if math.Abs(T-float64(modes)) > 1e-3 {
			t.Fatalf("E=%g: T=%g but lead has %d modes", e, T, modes)
		}
	}
}

func TestNewSolverValidation(t *testing.T) {
	s, _ := lattice.NewLinearChain(0.5, 3)
	h, _ := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{})
	if _, err := NewSolver(h, 0); err == nil {
		t.Fatal("accepted zero broadening")
	}
	if _, err := NewSolver(h, -1); err == nil {
		t.Fatal("accepted negative broadening")
	}
}

// TestTransmissionReciprocity: in a two-terminal device T_LR = T_RL, which
// with our Caroli evaluation corresponds to evaluating the trace with the
// roles of the contacts exchanged. We verify via the dense reference using
// the transposed arrangement: transmission of the spatially mirrored device.
func TestTransmissionReciprocity(t *testing.T) {
	const hop = -1.0
	n := 8
	pot := []float64{0, 0, 0.3, 0.7, 0.1, 0, 0, 0}
	sol := chainSolver(t, n, 0, hop, pot, 1e-6)
	// Mirrored potential.
	rpot := make([]float64, n)
	for i := range pot {
		rpot[n-1-i] = pot[i]
	}
	solR := chainSolver(t, n, 0, hop, rpot, 1e-6)
	for _, e := range []float64{-1.1, 0.2, 0.9} {
		t1, err := sol.Transmission(e)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := solR.Transmission(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(t1-t2) > 1e-8 {
			t.Fatalf("E=%g: T=%g but mirrored T=%g", e, t1, t2)
		}
	}
}
