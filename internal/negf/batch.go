package negf

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// Batched RGF: the interleaved form of solveWithSigma. A batch of energy
// points advances through the device one block-column at a time — all
// width forward blocks of layer i, then all width backward blocks — with
// the homologous per-energy blocks packed into contiguous panels and the
// layer's Hamiltonian blocks resident for the whole batch. Element j runs
// the exact kernel sequence of the width-1 solve on the same operands
// (see DESIGN.md §14), so a batched sweep is bitwise-identical to the
// looped one, flop counters included; only allocation and memory traffic
// change.

var (
	panelLoads  = perf.GetCounter("panel-loads")
	panelReuses = perf.GetCounter("panel-reuses")
)

// countPanel records one panel checkout of the given batch width.
func countPanel(w int) {
	panelLoads.Add(1)
	if w > 1 {
		panelReuses.Add(int64(w - 1))
	}
}

// SolveBatch runs the batched RGF at a batch of energies. See SolveBatchCtx.
func (s *Solver) SolveBatch(es []float64, density bool) ([]*Result, []error) {
	return s.SolveBatchCtx(context.Background(), es, density)
}

// SolveBatchCtx solves every energy of es in one interleaved RGF pass and
// returns per-energy results and errors positionally: results[j] is nil
// exactly where errs[j] is set, and each failed element carries the error
// the width-1 SolveCtx would have returned. A width-1 batch delegates to
// SolveCtx, so batching degrades gracefully to exactly the looped path.
//
// The contact self-energies are still resolved per energy (through the
// attached cache, when present); batching begins at the device sweep.
func (s *Solver) SolveBatchCtx(ctx context.Context, es []float64, density bool) ([]*Result, []error) {
	results := make([]*Result, len(es))
	errs := make([]error, len(es))
	if len(es) == 0 {
		return results, errs
	}
	if len(es) == 1 {
		results[0], errs[0] = s.SolveCtx(ctx, es[0], density)
		return results, errs
	}
	batchWidthCounter(len(es)).Add(1)
	if err := ctx.Err(); err != nil {
		for j := range errs {
			errs[j] = err
		}
		return results, errs
	}
	// Per-energy self-energies, compacting the batch to the elements that
	// survived the contact stage.
	zs := make([]complex128, 0, len(es))
	idxs := make([]int, 0, len(es))
	sigLs := make([]*linalg.Matrix, 0, len(es))
	sigRs := make([]*linalg.Matrix, 0, len(es))
	for j, e := range es {
		z := complex(e, s.Eta)
		sigL, sigR, err := s.selfEnergies(z)
		if err != nil {
			errs[j] = err
			continue
		}
		zs = append(zs, z)
		idxs = append(idxs, j)
		sigLs = append(sigLs, sigL)
		sigRs = append(sigRs, sigR)
	}
	if len(idxs) == 0 {
		return results, errs
	}
	if err := ctx.Err(); err != nil {
		for _, j := range idxs {
			errs[j] = err
		}
		return results, errs
	}
	defer perf.StartPhase("rgf")()
	s.solveBatchWithSigma(es, zs, idxs, sigLs, sigRs, density, results, errs)
	return results, errs
}

// batchWidthCounter returns the occupancy counter for width-w batch calls.
func batchWidthCounter(w int) *perf.Counter {
	return perf.GetCounter(fmt.Sprintf("batch-width-%d", w))
}

// solveBatchWithSigma is the interleaved device sweep over the compacted
// batch: zs/sigLs/sigRs hold the surviving elements and idxs maps them
// back to positions in es/results/errs.
func (s *Solver) solveBatchWithSigma(es []float64, zs []complex128, idxs []int, sigLs, sigRs []*linalg.Matrix, density bool, results []*Result, errs []error) {
	w := len(zs)
	ws := linalg.GetWorkspace()
	defer ws.Release()

	as := sparse.ShiftedBatchFromHermitianWS(s.H, zs, ws)
	nl := s.H.Layers()
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	for b := 0; b < w; b++ {
		as[b].AddScaledToDiagBlock(0, sigLs[b], -1)
		as[b].AddScaledToDiagBlock(nl-1, sigRs[b], -1)
	}
	gamLP := ws.GetPanel(w, n0, n0) // BroadeningInto fully overwrites
	countPanel(w)
	gamRP := ws.GetPanel(w, nN, nN)
	countPanel(w)
	for b := 0; b < w; b++ {
		BroadeningInto(gamLP.Block(b), sigLs[b])
		BroadeningInto(gamRP.Block(b), sigRs[b])
	}

	alive := make([]bool, w)
	for b := range alive {
		alive[b] = true
	}
	fail := func(b int, err error) {
		errs[idxs[b]] = err
		alive[b] = false
	}

	// Forward (left-connected) pass, layer-major: one panel of g^L blocks
	// per layer, the layer's coupling blocks hot across the batch.
	gLft := make([]*linalg.Panel, nl)
	gLft[0] = ws.GetPanel(w, n0, n0)
	countPanel(w)
	for b := 0; b < w; b++ {
		if err := linalg.VecInverseInto(gLft[0].Block(b), as[b].Diag[0], ws); err != nil {
			fail(b, fmt.Errorf("negf: RGF forward block 0: %w", err))
		}
	}
	for i := 1; i < nl; i++ {
		ni := s.H.LayerSize(i)
		gLft[i] = ws.GetPanel(w, ni, ni)
		countPanel(w)
		m := ws.Get(ni, ni)
		for b := 0; b < w; b++ {
			if !alive[b] {
				continue
			}
			linalg.VecMul3Into(m, as[b].Lower[i-1], linalg.NoTrans, gLft[i-1].Block(b), linalg.NoTrans, as[b].Upper[i-1], linalg.NoTrans, ws)
			linalg.VecSubInto(m, as[b].Diag[i], m)
			if err := linalg.VecInverseInto(gLft[i].Block(b), m, ws); err != nil {
				fail(b, fmt.Errorf("negf: RGF forward block %d: %w", i, err))
			}
		}
		ws.Put(m)
	}

	// Backward pass for the diagonal G_ii and the column G_{i,N-1}. Layer
	// nl-1 aliases the forward panel, exactly like the width-1 solve.
	gDiagB := make([][]*linalg.Matrix, nl)
	gColRB := make([][]*linalg.Matrix, nl)
	gDiagB[nl-1] = gLft[nl-1].Blocks()
	gColRB[nl-1] = gLft[nl-1].Blocks()
	for i := nl - 2; i >= 0; i-- {
		ni := s.H.LayerSize(i)
		gu := ws.Get(ni, s.H.LayerSize(i+1))
		t := ws.Get(ni, ni)
		gDiagP := ws.GetPanel(w, ni, ni)
		countPanel(w)
		gColRP := ws.GetPanel(w, ni, nN)
		countPanel(w)
		for b := 0; b < w; b++ {
			if !alive[b] {
				continue
			}
			linalg.VecMulInto(gu, gLft[i].Block(b), linalg.NoTrans, as[b].Upper[i], linalg.NoTrans)
			// G_ii = g_i + (g_i·U_i·G_{i+1,i+1}·L_i)·g_i
			linalg.VecMul3Into(t, gu, linalg.NoTrans, gDiagB[i+1][b], linalg.NoTrans, as[b].Lower[i], linalg.NoTrans, ws)
			d := gDiagP.Block(b)
			d.CopyFrom(gLft[i].Block(b))
			linalg.VecGemmInto(d, 1, t, linalg.NoTrans, gLft[i].Block(b), linalg.NoTrans, 1)
			linalg.VecGemmInto(gColRP.Block(b), -1, gu, linalg.NoTrans, gColRB[i+1][b], linalg.NoTrans, 0)
		}
		ws.Put(t)
		ws.Put(gu)
		gDiagB[i] = gDiagP.Blocks()
		gColRB[i] = gColRP.Blocks()
	}

	// Caroli transmission and layer DOS per element.
	off := s.H.Offsets()
	res := make([]*Result, w)
	tns := ws.Get(n0, nN)
	for b := 0; b < w; b++ {
		if !alive[b] {
			continue
		}
		r := &Result{E: es[idxs[b]]}
		linalg.VecMul3Into(tns, gamLP.Block(b), linalg.NoTrans, gColRB[0][b], linalg.NoTrans, gamRP.Block(b), linalg.NoTrans, ws)
		r.T = real(linalg.TraceMulConj(tns, gColRB[0][b]))
		r.DOS = make([]float64, s.H.N())
		for i := 0; i < nl; i++ {
			d := gDiagB[i][b]
			for k := 0; k < d.Rows; k++ {
				r.DOS[off[i]+k] = -imag(d.At(k, k)) / math.Pi
			}
		}
		res[b] = r
	}
	ws.Put(tns)

	if density {
		// Right-connected pass for the column G_{i,0}, layer-major.
		gRgtB := make([][]*linalg.Matrix, nl)
		gRgtP := ws.GetPanel(w, nN, nN)
		countPanel(w)
		for b := 0; b < w; b++ {
			if !alive[b] {
				continue
			}
			if err := linalg.VecInverseInto(gRgtP.Block(b), as[b].Diag[nl-1], ws); err != nil {
				fail(b, fmt.Errorf("negf: RGF backward block %d: %w", nl-1, err))
			}
		}
		gRgtB[nl-1] = gRgtP.Blocks()
		for i := nl - 2; i >= 0; i-- {
			ni := s.H.LayerSize(i)
			m := ws.Get(ni, ni)
			p := ws.GetPanel(w, ni, ni)
			countPanel(w)
			for b := 0; b < w; b++ {
				if !alive[b] {
					continue
				}
				linalg.VecMul3Into(m, as[b].Upper[i], linalg.NoTrans, gRgtB[i+1][b], linalg.NoTrans, as[b].Lower[i], linalg.NoTrans, ws)
				linalg.VecSubInto(m, as[b].Diag[i], m)
				if err := linalg.VecInverseInto(p.Block(b), m, ws); err != nil {
					fail(b, fmt.Errorf("negf: RGF backward block %d: %w", i, err))
				}
			}
			ws.Put(m)
			gRgtB[i] = p.Blocks()
		}
		gColLB := make([][]*linalg.Matrix, nl) // G_{i,0}
		gColLB[0] = gDiagB[0]
		for i := 1; i < nl; i++ {
			ni := s.H.LayerSize(i)
			t := ws.Get(ni, n0)
			p := ws.GetPanel(w, ni, n0)
			countPanel(w)
			for b := 0; b < w; b++ {
				if !alive[b] {
					continue
				}
				linalg.VecMulInto(t, as[b].Lower[i-1], linalg.NoTrans, gColLB[i-1][b], linalg.NoTrans)
				linalg.VecGemmInto(p.Block(b), -1, gRgtB[i][b], linalg.NoTrans, t, linalg.NoTrans, 0)
			}
			ws.Put(t)
			gColLB[i] = p.Blocks()
		}
		// Spectral diagonals [G·Γ·G†]_ii, layer-major across the batch.
		for b := 0; b < w; b++ {
			if !alive[b] {
				continue
			}
			res[b].SpectralL = make([]float64, s.H.N())
			res[b].SpectralR = make([]float64, s.H.N())
		}
		for i := 0; i < nl; i++ {
			ni := s.H.LayerSize(i)
			d := ws.Get(ni, 1)
			for b := 0; b < w; b++ {
				if !alive[b] {
					continue
				}
				linalg.DiagMulConjInto(d.Data, gColLB[i][b], gamLP.Block(b), ws)
				for k := 0; k < ni; k++ {
					res[b].SpectralL[off[i]+k] = real(d.Data[k])
				}
				linalg.DiagMulConjInto(d.Data, gColRB[i][b], gamRP.Block(b), ws)
				for k := 0; k < ni; k++ {
					res[b].SpectralR[off[i]+k] = real(d.Data[k])
				}
			}
			ws.Put(d)
		}
	}

	for b := 0; b < w; b++ {
		if alive[b] {
			results[idxs[b]] = res[b]
		}
	}
}
