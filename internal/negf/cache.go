package negf

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/perf"
)

// cacheShards is the number of independently-locked shards. Entries are
// distributed by a hash of (family, shifted energy), so the hot path of a
// parallel energy sweep — many workers hitting distinct energies — takes
// disjoint locks.
const cacheShards = 16

// refineMaxIter bounds the neighbor-seeded Dyson fixed-point iteration.
// The fixed point g ← (z − h00 − α·g·α†)⁻¹ contracts fast for evanescent
// energies but is only marginally stable inside a band at small η, so the
// budget is deliberately small: when the seed is good it converges in a
// handful of iterations, and when it is not, full decimation is cheaper
// than a long doomed iteration.
const refineMaxIter = 24

// familyTol bounds how far a lead's blocks may drift from its family's
// canonical blocks (after removing the declared shift) before the cache
// refuses to treat them as the same contact. Rounding from applying and
// removing a bias shift is ~1e-16·|H|; anything near this tolerance means
// the caller's pinned-contact assumption is broken.
const familyTol = 1e-8

// CacheConfig tunes a SelfEnergyCache.
type CacheConfig struct {
	// Capacity bounds the number of cached self-energies (counting each
	// lead separately). 0 means unbounded. The bound is approximate: it is
	// enforced per shard, rounded up, so the cache may hold up to
	// cacheShards−1 entries more than requested.
	Capacity int
	// SeedDist enables neighbor-seeded refinement: a miss whose family has
	// a cached surface function within this energy distance (eV, along the
	// real axis at equal broadening) seeds the Dyson fixed point from it
	// instead of running the full Sancho-Rubio decimation, falling back to
	// decimation when the iteration fails to reach surfaceTol. 0 disables
	// seeding — and with it the extra storage of surface functions — which
	// keeps results bitwise independent of cache history.
	SeedDist float64
}

// CacheStats is a consistent-enough view of the cache's event counters
// (each counter is individually atomic; the struct is not a single cut).
type CacheStats struct {
	// Hits and Misses count lookups per lead (one SelfEnergies call is two
	// lookups). CoalescedWaits counts lookups that found the key already
	// being computed and waited instead of recomputing.
	Hits, Misses, CoalescedWaits int64
	// Evictions counts LRU evictions under a capacity bound.
	Evictions int64
	// Decimations counts full Sancho-Rubio runs; SeededRefinements counts
	// misses served by neighbor-seeded iteration instead, and
	// SeedFallbacks counts refinement attempts that gave up and decimated
	// (those count under Decimations too).
	Decimations, SeededRefinements, SeedFallbacks int64
}

// sigmaKey identifies one cached self-energy: a lead family at a shifted
// complex energy. Keying on z − shift is the shift-invariance optimization:
// a pinned flat-band contact at bias V satisfies Σ(z; V) = Σ(z − qV; 0),
// so every bias point of a sweep addresses the same canonical entry.
type sigmaKey struct {
	fam string
	z   complex128
}

// sigmaEntry is one cached result, linked into its shard's LRU list.
type sigmaEntry struct {
	key   sigmaKey
	sigma *linalg.Matrix
	// g is the surface Green's function the sigma was projected from, kept
	// only when seeding is enabled (it is dead weight otherwise).
	g          *linalg.Matrix
	prev, next *sigmaEntry
}

// inflightSigma coalesces concurrent misses on one key: the first caller
// computes, later callers wait on done and share the result.
type inflightSigma struct {
	done  chan struct{}
	sigma *linalg.Matrix
	err   error
}

type sigmaShard struct {
	mu       sync.Mutex
	entries  map[sigmaKey]*sigmaEntry
	inflight map[sigmaKey]*inflightSigma
	// LRU list: head is most recent, tail least.
	head, tail *sigmaEntry
}

// leadFamily holds the canonical (zero-shift) blocks every miss of the
// family is computed from. Computing from the registered canon — never
// from the requesting caller's own blocks — makes a cached value a pure
// function of (family, shifted energy), independent of which bias point
// or which distributed worker happened to compute it first.
type leadFamily struct {
	key string
	// h00 is the principal-layer block with the registering lead's shift
	// removed from the diagonal; hInto is the coupling one layer deeper
	// into the lead (L01† on the left, R01 on the right), with which both
	// sides share one formula: g = SurfaceGF(h00, hInto, z) and
	// Σ = hInto·g·hInto†.
	h00, hInto *linalg.Matrix
	// raw01 keeps the as-registered off-diagonal block for verifying later
	// leads against the family.
	raw01 *linalg.Matrix
	left  bool
	shift float64 // the registering lead's shift (for verification math)

	// verMu guards the verified-pointer fast path: the blocks last checked
	// against the canon, so steady-state lookups skip the O(n²) compare.
	verMu          sync.Mutex
	verH00, verH01 *linalg.Matrix
}

// SelfEnergyCache memoizes contact self-energies across an entire sweep:
// every lead separately, keyed by (lead family, z − qV_lead). Because a
// pinned flat-band contact's surface physics is invariant under a rigid
// potential shift, one cache instance spans all gate/drain points, all SCF
// iterations, and every energy grid of an I-V surface. Concurrent misses
// on one key are coalesced (exactly one decimation runs; the rest wait),
// lookups on distinct keys take sharded locks, and an optional LRU bound
// caps memory. Safe for concurrent use.
type SelfEnergyCache struct {
	cfg         CacheConfig
	perShardCap int
	shards      [cacheShards]sigmaShard

	famMu sync.Mutex
	fams  map[string]*leadFamily

	hits, misses, coalesced     atomic.Int64
	evictions, decimations      atomic.Int64
	seeded, seedFallbacks       atomic.Int64
	ctrHits, ctrMisses, ctrCoal *perf.Counter
	ctrEvict, ctrDecim          *perf.Counter
	ctrSeeded, ctrSeedFall      *perf.Counter
}

// NewSelfEnergyCache returns an unbounded cache with seeding disabled —
// the configuration whose results are bitwise independent of lookup
// order, which the distributed drill's exactness story relies on.
func NewSelfEnergyCache() *SelfEnergyCache {
	return NewSelfEnergyCacheWith(CacheConfig{})
}

// NewSelfEnergyCacheWith returns a cache tuned by cfg.
func NewSelfEnergyCacheWith(cfg CacheConfig) *SelfEnergyCache {
	c := &SelfEnergyCache{
		cfg:         cfg,
		fams:        make(map[string]*leadFamily),
		ctrHits:     perf.GetCounter("sigma-hits"),
		ctrMisses:   perf.GetCounter("sigma-misses"),
		ctrCoal:     perf.GetCounter("sigma-coalesced"),
		ctrEvict:    perf.GetCounter("sigma-evictions"),
		ctrDecim:    perf.GetCounter("sigma-decimations"),
		ctrSeeded:   perf.GetCounter("sigma-seeded"),
		ctrSeedFall: perf.GetCounter("sigma-seed-fallbacks"),
	}
	if cfg.Capacity > 0 {
		c.perShardCap = (cfg.Capacity + cacheShards - 1) / cacheShards
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[sigmaKey]*sigmaEntry)
		c.shards[i].inflight = make(map[sigmaKey]*inflightSigma)
	}
	return c
}

// CachedSelfEnergies routes through c when non-nil and computes directly
// from the leads otherwise — the one-liner every solver shares.
func CachedSelfEnergies(c *SelfEnergyCache, l *Leads, z complex128) (sigL, sigR *linalg.Matrix, err error) {
	if c != nil {
		return c.SelfEnergies(l, z)
	}
	return l.SelfEnergies(z)
}

// SelfEnergies returns Σ_L, Σ_R at complex energy z, each served from the
// per-lead shift-invariant cache. The returned matrices are shared —
// callers must not modify them.
func (c *SelfEnergyCache) SelfEnergies(leads *Leads, z complex128) (sigL, sigR *linalg.Matrix, err error) {
	sigL, err = c.leadSigma(leads.leftSpec(), z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: left lead: %w", err)
	}
	sigR, err = c.leadSigma(leads.rightSpec(), z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: right lead: %w", err)
	}
	return sigL, sigR, nil
}

// Stats returns the cache's event counters.
func (c *SelfEnergyCache) Stats() CacheStats {
	return CacheStats{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		CoalescedWaits:    c.coalesced.Load(),
		Evictions:         c.evictions.Load(),
		Decimations:       c.decimations.Load(),
		SeededRefinements: c.seeded.Load(),
		SeedFallbacks:     c.seedFallbacks.Load(),
	}
}

// Reset discards every cached self-energy while keeping the registered
// lead families and the event counters. Distributed workers call it when
// rejoining after a coordinator crash: work executed under the dead epoch
// is discarded by everyone else (the epoch fence coordinator-side, the
// journal-seeded re-dispatch), so a cache warmed by that work would let
// its re-dispatched twin skip the decimation flops a single-process run
// counts — breaking the exact merged-flop accounting. In-flight
// computations are untouched: they complete, their waiters are served,
// and whatever they insert afterwards was computed post-reset anyway.
func (c *SelfEnergyCache) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[sigmaKey]*sigmaEntry)
		sh.head, sh.tail = nil, nil
		sh.mu.Unlock()
	}
}

// Len reports the number of cached self-energies (one per lead per
// shifted energy).
func (c *SelfEnergyCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// leadSigma serves one contact's self-energy through the cache.
func (c *SelfEnergyCache) leadSigma(spec leadSpec, z complex128) (*linalg.Matrix, error) {
	fam, err := c.family(spec)
	if err != nil {
		return nil, err
	}
	key := sigmaKey{fam: fam.key, z: z - complex(spec.shift, 0)}
	sh := &c.shards[shardOf(key)]

	sh.mu.Lock()
	if e := sh.entries[key]; e != nil {
		sh.lruTouch(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		c.ctrHits.Add(1)
		return e.sigma, nil
	}
	if call := sh.inflight[key]; call != nil {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		c.ctrCoal.Add(1)
		<-call.done
		return call.sigma, call.err
	}
	call := &inflightSigma{done: make(chan struct{})}
	sh.inflight[key] = call
	sh.mu.Unlock()
	c.misses.Add(1)
	c.ctrMisses.Add(1)

	var seed *linalg.Matrix
	if c.cfg.SeedDist > 0 {
		seed = c.nearestSurface(fam.key, key.z)
	}
	sigma, g, err := c.compute(fam, key.z, seed)

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil {
		c.insert(sh, key, sigma, g)
	}
	sh.mu.Unlock()
	call.sigma, call.err = sigma, err
	close(call.done)
	return sigma, err
}

// compute produces Σ (and the surface function it came from) at the
// family's canonical, shift-removed energy zc. All block inputs come from
// the family canon, so the result does not depend on which caller missed.
func (c *SelfEnergyCache) compute(fam *leadFamily, zc complex128, seed *linalg.Matrix) (sigma, g *linalg.Matrix, err error) {
	defer perf.StartPhase("self-energy")()
	if seed != nil {
		g = refineSurface(fam.h00, fam.hInto, zc, seed)
		if g != nil {
			c.seeded.Add(1)
			c.ctrSeeded.Add(1)
		} else {
			c.seedFallbacks.Add(1)
			c.ctrSeedFall.Add(1)
		}
	}
	if g == nil {
		g, err = SurfaceGF(fam.h00, fam.hInto, zc)
		if err != nil {
			return nil, nil, err
		}
		c.decimations.Add(1)
		c.ctrDecim.Add(1)
	}
	ws := linalg.GetWorkspace()
	defer ws.Release()
	n := fam.h00.Rows
	sigma = linalg.New(n, n)
	linalg.Mul3Into(sigma, fam.hInto, linalg.NoTrans, g, linalg.NoTrans, fam.hInto, linalg.ConjTrans, ws)
	if c.cfg.SeedDist <= 0 {
		g = nil // not stored; let it go
	}
	return sigma, g, nil
}

// insert links a fresh entry at the LRU head, evicting the shard's tail
// beyond capacity. Caller holds sh.mu.
func (c *SelfEnergyCache) insert(sh *sigmaShard, key sigmaKey, sigma, g *linalg.Matrix) {
	e := &sigmaEntry{key: key, sigma: sigma, g: g}
	sh.entries[key] = e
	sh.lruPush(e)
	if c.perShardCap > 0 && len(sh.entries) > c.perShardCap {
		victim := sh.tail
		sh.lruUnlink(victim)
		delete(sh.entries, victim.key)
		c.evictions.Add(1)
		c.ctrEvict.Add(1)
	}
}

// nearestSurface scans for the family's cached surface function closest
// to zc along the real energy axis, within SeedDist and at the same
// broadening. The scan walks every shard (entries of one family spread
// across shards by energy) but runs only on the miss path, where its cost
// vanishes against the decimation it is trying to avoid.
func (c *SelfEnergyCache) nearestSurface(fam string, zc complex128) *linalg.Matrix {
	var best *linalg.Matrix
	bestDist := c.cfg.SeedDist
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if e.g == nil || k.fam != fam || imag(k.z) != imag(zc) {
				continue
			}
			if d := math.Abs(real(k.z) - real(zc)); d <= bestDist {
				best, bestDist = e.g, d
			}
		}
		sh.mu.Unlock()
	}
	return best
}

// refineSurface iterates the Dyson fixed point g ← (z − h00 − α·g·α†)⁻¹
// from the seed, returning the converged surface function or nil when the
// iteration stalls, diverges, or hits a singular system — the caller then
// falls back to full decimation. Convergence requires two consecutive
// steps below surfaceTol, since a single small step can be a plateau of
// the marginally-stable in-band iteration rather than the fixed point.
func refineSurface(h00, hInto *linalg.Matrix, z complex128, seed *linalg.Matrix) *linalg.Matrix {
	n := h00.Rows
	ws := linalg.GetWorkspace()
	defer ws.Release()
	g := linalg.New(n, n) // escapes into the cache on success
	g.CopyFrom(seed)
	prev := ws.Get(n, n)
	m := ws.Get(n, n)
	prevDelta := math.Inf(1)
	worse := 0
	confirmed := false
	for iter := 0; iter < refineMaxIter; iter++ {
		prev.CopyFrom(g)
		linalg.Mul3Into(m, hInto, linalg.NoTrans, prev, linalg.NoTrans, hInto, linalg.ConjTrans, ws)
		m.AddInPlace(h00)
		linalg.ShiftedNegInto(m, m, z)
		if err := linalg.InverseInto(g, m, ws); err != nil {
			return nil
		}
		delta := maxAbsDiff(g, prev)
		if delta <= surfaceTol {
			if confirmed {
				return g
			}
			confirmed = true
		} else {
			confirmed = false
		}
		// Bail early when the error stops shrinking: in-band at small η the
		// iteration rotates the error instead of contracting it.
		if delta >= prevDelta {
			if worse++; worse >= 2 {
				return nil
			}
		} else {
			worse = 0
		}
		prevDelta = delta
	}
	return nil
}

// maxAbsDiff returns max over elements of max(|Δre|, |Δim|).
func maxAbsDiff(a, b *linalg.Matrix) float64 {
	var mx float64
	for i, v := range a.Data {
		d := v - b.Data[i]
		if r := math.Abs(real(d)); r > mx {
			mx = r
		}
		if im := math.Abs(imag(d)); im > mx {
			mx = im
		}
	}
	return mx
}

// family resolves (registering on first sight) the canonical blocks for a
// lead and verifies repeat visitors against them.
func (c *SelfEnergyCache) family(spec leadSpec) (*leadFamily, error) {
	n := spec.h00.Rows
	if spec.h00.Cols != n || spec.h01.Rows != n || spec.h01.Cols != n {
		return nil, fmt.Errorf("negf: cache: lead blocks must be square and same-sized")
	}
	c.famMu.Lock()
	fam := c.fams[spec.key]
	if fam == nil {
		fam = newLeadFamily(spec)
		c.fams[spec.key] = fam
		c.famMu.Unlock()
		return fam, nil
	}
	c.famMu.Unlock()
	return fam, fam.verify(spec)
}

func newLeadFamily(spec leadSpec) *leadFamily {
	fam := &leadFamily{
		key:   spec.key,
		h00:   spec.h00.Clone(),
		raw01: spec.h01.Clone(),
		left:  spec.left,
		shift: spec.shift,
	}
	// Remove the registering lead's shift from the diagonal: the canon is
	// the zero-bias contact the whole family shares.
	if s := complex(spec.shift, 0); s != 0 {
		n := fam.h00.Rows
		for i := 0; i < n; i++ {
			fam.h00.Data[i*n+i] -= s
		}
	}
	// Coupling one layer deeper into the lead: the left lead grows toward
	// −x so its inward coupling is L01†; the right grows toward +x so it
	// is R01 as stored. With that orientation both sides use one formula.
	if spec.left {
		fam.hInto = linalg.New(spec.h01.Cols, spec.h01.Rows)
		linalg.ConjTransposeInto(fam.hInto, spec.h01)
	} else {
		fam.hInto = spec.h01.Clone()
	}
	fam.verH00, fam.verH01 = spec.h00, spec.h01
	return fam
}

// verify checks that a lead claiming membership matches the family canon:
// same side, same off-diagonal block, and an on-site block equal to the
// canon plus the lead's declared rigid shift — all to familyTol. The
// last-verified block pointers short-circuit the steady-state case where
// a solver presents the same Leads value every energy.
func (f *leadFamily) verify(spec leadSpec) error {
	f.verMu.Lock()
	if spec.h00 == f.verH00 && spec.h01 == f.verH01 {
		f.verMu.Unlock()
		return nil
	}
	f.verMu.Unlock()
	if spec.left != f.left {
		return fmt.Errorf("negf: cache: lead family %q used for both sides", f.key)
	}
	n := f.h00.Rows
	if spec.h00.Rows != n || spec.h00.Cols != n || spec.h01.Rows != f.raw01.Rows || spec.h01.Cols != f.raw01.Cols {
		return fmt.Errorf("negf: cache: lead family %q block shapes changed", f.key)
	}
	if d := maxAbsDiff(spec.h01, f.raw01); d > familyTol {
		return fmt.Errorf("negf: cache: lead family %q coupling block drifted by %g (pinned-contact assumption broken)", f.key, d)
	}
	var mx float64
	s := complex(spec.shift, 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := f.h00.Data[i*n+j]
			if i == j {
				want += s
			}
			d := spec.h00.Data[i*n+j] - want
			if r := math.Abs(real(d)); r > mx {
				mx = r
			}
			if im := math.Abs(imag(d)); im > mx {
				mx = im
			}
		}
	}
	if mx > familyTol {
		return fmt.Errorf("negf: cache: lead family %q on-site block differs from canon+shift by %g (pinned-contact assumption broken)", f.key, mx)
	}
	f.verMu.Lock()
	f.verH00, f.verH01 = spec.h00, spec.h01
	f.verMu.Unlock()
	return nil
}

// shardOf hashes a key onto its shard.
func shardOf(k sigmaKey) int {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(real(k.z)))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(imag(k.z)))
	h.Write(b[:])
	h.Write([]byte(k.fam))
	return int(h.Sum64() % cacheShards)
}

// LRU list plumbing; callers hold sh.mu.

func (sh *sigmaShard) lruPush(e *sigmaEntry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *sigmaShard) lruUnlink(e *sigmaEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *sigmaShard) lruTouch(e *sigmaEntry) {
	if sh.head == e {
		return
	}
	sh.lruUnlink(e)
	sh.lruPush(e)
}
