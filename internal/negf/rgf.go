package negf

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// Solver runs ballistic NEGF calculations on a fixed device Hamiltonian.
type Solver struct {
	// H is the Hermitian device Hamiltonian in block-tridiagonal layer form.
	H *sparse.BlockTridiag
	// Leads are the semi-infinite contacts.
	Leads *Leads
	// Eta is the imaginary broadening (eV) added to the energy; it must be
	// positive for the retarded functions to exist. Typical: 1e-6.
	Eta float64
	// Cache optionally memoizes the contact self-energies across solves
	// (valid while the lead blocks stay fixed, e.g. within a
	// self-consistent loop with pinned contacts).
	Cache *SelfEnergyCache
}

// NewSolver builds a Solver with flat-band leads continued from the device
// end layers.
func NewSolver(h *sparse.BlockTridiag, eta float64) (*Solver, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("negf: broadening must be positive, got %g", eta)
	}
	leads, err := LeadsFromDevice(h)
	if err != nil {
		return nil, err
	}
	return &Solver{H: h, Leads: leads, Eta: eta}, nil
}

// Result holds the single-energy output of an NEGF solve.
type Result struct {
	// E is the real part of the energy (eV).
	E float64
	// T is the transmission function from left to right contact.
	T float64
	// DOS is the orbital-resolved density of states −Im(diag G)/π (1/eV).
	DOS []float64
	// SpectralL and SpectralR are the contact-resolved spectral function
	// diagonals [G·Γ_L·G†]_ii and [G·Γ_R·G†]_ii (populated when the solve
	// is run with density output). Electron density follows as
	// n_i = ∫ dE/(2π) [SpectralL·f_L + SpectralR·f_R].
	SpectralL, SpectralR []float64
}

// Solve runs the RGF algorithm at energy e. With density=false only the
// transmission and DOS are produced (one forward pass plus the boundary
// column); with density=true the contact-resolved spectral diagonals are
// also assembled.
func (s *Solver) Solve(e float64, density bool) (*Result, error) {
	return s.SolveCtx(context.Background(), e, density)
}

// SolveCtx is Solve with cooperative cancellation: the solve aborts
// between its phases (self-energies, RGF sweep) when ctx is canceled, so
// a failing sibling energy point in a parallel spectrum stops this one
// early.
func (s *Solver) SolveCtx(ctx context.Context, e float64, density bool) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	z := complex(e, s.Eta)
	sigL, sigR, err := s.selfEnergies(z)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer perf.StartPhase("rgf")()
	return s.solveWithSigma(e, z, sigL, sigR, density)
}

// selfEnergies routes through the cache when one is attached.
func (s *Solver) selfEnergies(z complex128) (*linalg.Matrix, *linalg.Matrix, error) {
	return CachedSelfEnergies(s.Cache, s.Leads, z)
}

func (s *Solver) solveWithSigma(e float64, z complex128, sigL, sigR *linalg.Matrix, density bool) (*Result, error) {
	// Every temporary of the solve — the shifted system matrix, the
	// broadenings, and all recursion blocks — lives in one per-solve
	// workspace, so the sweeps run allocation-free and parallel energy
	// points never share buffers.
	ws := linalg.GetWorkspace()
	defer ws.Release()
	a := sparse.ShiftedFromHermitianWS(s.H, z, ws)
	nl := a.Layers()
	a.AddScaledToDiagBlock(0, sigL, -1)
	a.AddScaledToDiagBlock(nl-1, sigR, -1)
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	gamL := ws.Get(n0, n0)
	BroadeningInto(gamL, sigL)
	gamR := ws.Get(nN, nN)
	BroadeningInto(gamR, sigR)

	// Forward (left-connected) pass.
	gLft := make([]*linalg.Matrix, nl)
	gLft[0] = ws.Get(n0, n0)
	if err := linalg.InverseInto(gLft[0], a.Diag[0], ws); err != nil {
		return nil, fmt.Errorf("negf: RGF forward block 0: %w", err)
	}
	for i := 1; i < nl; i++ {
		ni := s.H.LayerSize(i)
		m := ws.Get(ni, ni)
		linalg.Mul3Into(m, a.Lower[i-1], linalg.NoTrans, gLft[i-1], linalg.NoTrans, a.Upper[i-1], linalg.NoTrans, ws)
		linalg.SubInto(m, a.Diag[i], m)
		gLft[i] = ws.Get(ni, ni)
		err := linalg.InverseInto(gLft[i], m, ws)
		ws.Put(m)
		if err != nil {
			return nil, fmt.Errorf("negf: RGF forward block %d: %w", i, err)
		}
	}

	// Backward pass for the full diagonal G_ii and the column G_{i,N-1}.
	gDiag := make([]*linalg.Matrix, nl)
	gColR := make([]*linalg.Matrix, nl) // G_{i,N-1}
	gDiag[nl-1] = gLft[nl-1]
	gColR[nl-1] = gLft[nl-1]
	for i := nl - 2; i >= 0; i-- {
		ni := s.H.LayerSize(i)
		gu := ws.Get(ni, s.H.LayerSize(i+1))
		linalg.MulInto(gu, gLft[i], linalg.NoTrans, a.Upper[i], linalg.NoTrans)
		// G_ii = g_i + (g_i·U_i·G_{i+1,i+1}·L_i)·g_i
		t := ws.Get(ni, ni)
		linalg.Mul3Into(t, gu, linalg.NoTrans, gDiag[i+1], linalg.NoTrans, a.Lower[i], linalg.NoTrans, ws)
		gDiag[i] = ws.Get(ni, ni)
		gDiag[i].CopyFrom(gLft[i])
		linalg.GemmInto(gDiag[i], 1, t, linalg.NoTrans, gLft[i], linalg.NoTrans, 1)
		ws.Put(t)
		gColR[i] = ws.Get(ni, nN)
		linalg.GemmInto(gColR[i], -1, gu, linalg.NoTrans, gColR[i+1], linalg.NoTrans, 0)
		ws.Put(gu)
	}

	res := &Result{E: e}

	// Caroli transmission T = Tr[Γ_L·G_{0,N-1}·Γ_R·G_{0,N-1}†], with the
	// adjoint folded into the O(n²) trace kernel instead of a fourth
	// product.
	tns := ws.Get(n0, nN)
	linalg.Mul3Into(tns, gamL, linalg.NoTrans, gColR[0], linalg.NoTrans, gamR, linalg.NoTrans, ws)
	res.T = real(linalg.TraceMulConj(tns, gColR[0]))
	ws.Put(tns)

	// Layer DOS from the retarded diagonal.
	res.DOS = make([]float64, s.H.N())
	off := s.H.Offsets()
	for i := 0; i < nl; i++ {
		d := gDiag[i]
		for k := 0; k < d.Rows; k++ {
			res.DOS[off[i]+k] = -imag(d.At(k, k)) / math.Pi
		}
	}

	if density {
		// Right-connected pass for the column G_{i,0}.
		gRgt := make([]*linalg.Matrix, nl)
		gRgt[nl-1] = ws.Get(nN, nN)
		if err := linalg.InverseInto(gRgt[nl-1], a.Diag[nl-1], ws); err != nil {
			return nil, fmt.Errorf("negf: RGF backward block %d: %w", nl-1, err)
		}
		for i := nl - 2; i >= 0; i-- {
			ni := s.H.LayerSize(i)
			m := ws.Get(ni, ni)
			linalg.Mul3Into(m, a.Upper[i], linalg.NoTrans, gRgt[i+1], linalg.NoTrans, a.Lower[i], linalg.NoTrans, ws)
			linalg.SubInto(m, a.Diag[i], m)
			gRgt[i] = ws.Get(ni, ni)
			err := linalg.InverseInto(gRgt[i], m, ws)
			ws.Put(m)
			if err != nil {
				return nil, fmt.Errorf("negf: RGF backward block %d: %w", i, err)
			}
		}
		gColL := make([]*linalg.Matrix, nl) // G_{i,0}
		gColL[0] = gDiag[0]
		for i := 1; i < nl; i++ {
			ni := s.H.LayerSize(i)
			t := ws.Get(ni, n0)
			linalg.MulInto(t, a.Lower[i-1], linalg.NoTrans, gColL[i-1], linalg.NoTrans)
			gColL[i] = ws.Get(ni, n0)
			linalg.GemmInto(gColL[i], -1, gRgt[i], linalg.NoTrans, t, linalg.NoTrans, 0)
			ws.Put(t)
		}
		// Spectral diagonals [G·Γ·G†]_ii via row dots — O(n·m²) per layer
		// instead of materializing the full G·Γ·G† products.
		res.SpectralL = make([]float64, s.H.N())
		res.SpectralR = make([]float64, s.H.N())
		for i := 0; i < nl; i++ {
			ni := s.H.LayerSize(i)
			d := ws.Get(ni, 1)
			linalg.DiagMulConjInto(d.Data, gColL[i], gamL, ws)
			for k := 0; k < ni; k++ {
				res.SpectralL[off[i]+k] = real(d.Data[k])
			}
			linalg.DiagMulConjInto(d.Data, gColR[i], gamR, ws)
			for k := 0; k < ni; k++ {
				res.SpectralR[off[i]+k] = real(d.Data[k])
			}
			ws.Put(d)
		}
	}
	return res, nil
}

// Transmission is a convenience wrapper returning only T(e).
func (s *Solver) Transmission(e float64) (float64, error) {
	r, err := s.Solve(e, false)
	if err != nil {
		return 0, err
	}
	return r.T, nil
}

// DenseReference solves the same open system by brute force: it embeds the
// self-energies in a dense matrix, inverts it, and applies the Caroli
// formula. It is O(N³) in the total device size and exists to validate the
// RGF and SplitSolve paths in tests and ablation benchmarks.
func (s *Solver) DenseReference(e float64) (*Result, error) {
	z := complex(e, s.Eta)
	sigL, sigR, err := s.selfEnergies(z)
	if err != nil {
		return nil, err
	}
	a := sparse.ShiftedFromHermitian(s.H, z)
	nl := a.Layers()
	a.AddScaledToDiagBlock(0, sigL, -1)
	a.AddScaledToDiagBlock(nl-1, sigR, -1)
	g, err := linalg.Inverse(a.Dense())
	if err != nil {
		return nil, err
	}
	off := s.H.Offsets()
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	g0N := g.Submatrix(0, off[nl-1], n0, nN)
	gamL := Broadening(sigL)
	gamR := Broadening(sigR)
	ws := linalg.GetWorkspace()
	tns := ws.Get(n0, nN)
	linalg.Mul3Into(tns, gamL, linalg.NoTrans, g0N, linalg.NoTrans, gamR, linalg.NoTrans, ws)
	t := linalg.TraceMulConj(tns, g0N)
	ws.Release()
	res := &Result{E: e, T: real(t), DOS: make([]float64, s.H.N())}
	for i := 0; i < g.Rows; i++ {
		res.DOS[i] = -imag(g.At(i, i)) / math.Pi
	}
	return res, nil
}
