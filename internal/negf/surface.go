// Package negf implements the non-equilibrium Green's function machinery
// for ballistic quantum transport through a two-terminal layered device:
// Sancho-Rubio surface Green's functions of the semi-infinite contacts,
// contact self-energies and broadening matrices, and the recursive Green's
// function (RGF) algorithm over the block-tridiagonal device Hamiltonian,
// yielding transmission (Caroli formula), layer-resolved density of states,
// and the contact-resolved spectral functions that feed the charge
// integration.
package negf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/cmplx"
	"sync"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// surfaceTol is the convergence threshold on the decimated coupling norm.
const surfaceTol = 1e-12

// surfaceMaxIter bounds the decimation; each iteration doubles the
// effectively included lead depth, so 60 iterations cover 2^60 layers.
const surfaceMaxIter = 60

// ErrNoConvergence is returned when the surface Green's function decimation
// fails to converge, which happens when the energy lies exactly on a band
// edge with no imaginary part.
var ErrNoConvergence = errors.New("negf: surface Green's function did not converge (add imaginary broadening)")

// SurfaceGF computes the retarded surface Green's function of a
// semi-infinite periodic lead by Sancho-Rubio decimation. h00 is the
// principal-layer block, hInto the coupling from a lead layer to the next
// layer deeper into the lead, and z the complex energy (Im z > 0 for the
// retarded function).
func SurfaceGF(h00, hInto *linalg.Matrix, z complex128) (*linalg.Matrix, error) {
	n := h00.Rows
	if h00.Cols != n || hInto.Rows != n || hInto.Cols != n {
		return nil, fmt.Errorf("negf: lead blocks must be square and same-sized")
	}
	if imag(z) <= 0 {
		return nil, fmt.Errorf("negf: surface GF needs Im(z) > 0, got %g", imag(z))
	}
	// The decimation loop runs entirely on workspace scratch: every
	// iteration reuses the same eight n×n buffers, so the ~tens of
	// iterations per lead cost zero allocations.
	ws := linalg.GetWorkspace()
	defer ws.Release()
	epsS := ws.Get(n, n)
	epsS.CopyFrom(h00)
	eps := ws.Get(n, n)
	eps.CopyFrom(h00)
	alpha := ws.Get(n, n)
	alpha.CopyFrom(hInto)
	beta := ws.Get(n, n)
	linalg.ConjTransposeInto(beta, hInto)
	tmp := ws.Get(n, n)
	g := ws.Get(n, n)
	agb := ws.Get(n, n)
	bga := ws.Get(n, n)
	alphaNew := ws.Get(n, n)
	betaNew := ws.Get(n, n)

	for iter := 0; iter < surfaceMaxIter; iter++ {
		linalg.ShiftedNegInto(tmp, eps, z)
		if err := linalg.InverseInto(g, tmp, ws); err != nil {
			return nil, fmt.Errorf("negf: decimation inversion failed: %w", err)
		}
		linalg.Mul3Into(agb, alpha, linalg.NoTrans, g, linalg.NoTrans, beta, linalg.NoTrans, ws)
		linalg.Mul3Into(bga, beta, linalg.NoTrans, g, linalg.NoTrans, alpha, linalg.NoTrans, ws)
		epsS.AddInPlace(agb)
		eps.AddInPlace(agb)
		eps.AddInPlace(bga)
		linalg.Mul3Into(alphaNew, alpha, linalg.NoTrans, g, linalg.NoTrans, alpha, linalg.NoTrans, ws)
		linalg.Mul3Into(betaNew, beta, linalg.NoTrans, g, linalg.NoTrans, beta, linalg.NoTrans, ws)
		alpha, alphaNew = alphaNew, alpha
		beta, betaNew = betaNew, beta
		if alpha.MaxAbs() < surfaceTol && beta.MaxAbs() < surfaceTol {
			// The result escapes the workspace, so it gets fresh storage.
			out := linalg.New(n, n)
			linalg.ShiftedNegInto(tmp, epsS, z)
			if err := linalg.InverseInto(out, tmp, ws); err != nil {
				return nil, fmt.Errorf("negf: surface inversion failed: %w", err)
			}
			return out, nil
		}
	}
	return nil, ErrNoConvergence
}

// Leads bundles the two semi-infinite contacts of a device. L01 and R01
// are oriented along +x: L01 couples a left-lead layer to the next layer
// toward the device; R01 couples a right-lead layer to the next layer away
// from the device.
type Leads struct {
	L00, L01 *linalg.Matrix
	R00, R01 *linalg.Matrix

	// KeyL and KeyR name each lead's family for the sweep-scale
	// SelfEnergyCache: two Leads values declaring the same key and
	// side-specific shift below are asserting their blocks describe the
	// same physical contact, so their self-energies may be shared. Empty
	// keys fall back to a fingerprint of the raw block bits, which still
	// coalesces bitwise-identical leads (e.g. all SCF iterations of one
	// bias point) but cannot see across a bias shift.
	KeyL, KeyR string
	// ShiftL and ShiftR declare the rigid diagonal potential-energy shift
	// (eV) of each contact relative to its family's canonical band
	// structure — qV of the pinned flat-band contact. A shifted lead
	// satisfies Σ(z; V) = Σ(z − qV; 0), which is what lets one cache span
	// every bias point of an I-V surface.
	ShiftL, ShiftR float64

	fpOnce   sync.Once
	fpL, fpR string
}

// LeadMeta carries the cache-identity declarations of a device's two
// contacts — family keys and bias shifts — from the driver that knows the
// electrostatics (core.FET) down to the solvers that build Leads from the
// assembled Hamiltonian.
type LeadMeta struct {
	KeyL, KeyR     string
	ShiftL, ShiftR float64
}

// ApplyMeta installs the declarations onto the leads. Call before the
// first solve (the fingerprint fallback is memoized on first use).
func (l *Leads) ApplyMeta(m *LeadMeta) {
	if m == nil {
		return
	}
	l.KeyL, l.KeyR = m.KeyL, m.KeyR
	l.ShiftL, l.ShiftR = m.ShiftL, m.ShiftR
}

// LeadsFromDevice derives flat-band contacts from the end layers of a
// uniform device Hamiltonian: each lead is the semi-infinite continuation
// of the corresponding end layer.
func LeadsFromDevice(h *sparse.BlockTridiag) (*Leads, error) {
	if h.Layers() < 2 {
		return nil, fmt.Errorf("negf: device needs at least 2 layers to define leads")
	}
	nl := h.Layers()
	return &Leads{
		L00: h.Diag[0].Clone(),
		L01: h.Upper[0].Clone(),
		R00: h.Diag[nl-1].Clone(),
		R01: h.Upper[nl-2].Clone(),
	}, nil
}

// SelfEnergies computes the retarded contact self-energies at complex
// energy z, projected onto the first and last device layers:
// Σ_L = L01†·g_L·L01 with g_L the left surface GF, and
// Σ_R = R01·g_R·R01† with g_R the right surface GF.
func (l *Leads) SelfEnergies(z complex128) (sigL, sigR *linalg.Matrix, err error) {
	// Instrumented as the "self-energy" phase: the Sancho-Rubio decimation
	// below dominates per-energy cost when the cache misses, and the phase
	// breakdown of the paper's Table is reconstructed from this timer.
	defer perf.StartPhase("self-energy")()
	ws := linalg.GetWorkspace()
	defer ws.Release()
	// Left lead grows toward −x: coupling into the bulk is L01†.
	l10 := ws.Get(l.L01.Cols, l.L01.Rows)
	linalg.ConjTransposeInto(l10, l.L01)
	gL, err := SurfaceGF(l.L00, l10, z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: left lead: %w", err)
	}
	// Right lead grows toward +x: coupling into the bulk is R01.
	gR, err := SurfaceGF(l.R00, l.R01, z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: right lead: %w", err)
	}
	// The self-energies escape (and may be cached), so they get fresh
	// storage; the conjugate couplings are read in place by the fused GEMM.
	sigL = linalg.New(l.L01.Cols, l.L01.Cols)
	linalg.Mul3Into(sigL, l.L01, linalg.ConjTrans, gL, linalg.NoTrans, l.L01, linalg.NoTrans, ws)
	sigR = linalg.New(l.R01.Rows, l.R01.Rows)
	linalg.Mul3Into(sigR, l.R01, linalg.NoTrans, gR, linalg.NoTrans, l.R01, linalg.ConjTrans, ws)
	return sigL, sigR, nil
}

// Broadening returns Γ = i(Σ − Σ†), the contact broadening matrix.
func Broadening(sigma *linalg.Matrix) *linalg.Matrix {
	g := linalg.New(sigma.Rows, sigma.Cols)
	BroadeningInto(g, sigma)
	return g
}

// BroadeningInto writes Γ = i(Σ − Σ†) into dst elementwise, without
// materializing the adjoint: Γ_ij = i·(Σ_ij − conj(Σ_ji)). dst must be
// the same shape as the square sigma and must not alias it.
func BroadeningInto(dst, sigma *linalg.Matrix) {
	n := sigma.Rows
	if sigma.Cols != n {
		panic("negf: BroadeningInto requires a square matrix")
	}
	if dst == sigma {
		panic("negf: BroadeningInto output aliases its input")
	}
	if dst.Rows != n || dst.Cols != n {
		panic("negf: dimension mismatch in BroadeningInto")
	}
	for i := 0; i < n; i++ {
		dstRow := dst.Data[i*n : (i+1)*n]
		sigRow := sigma.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			d := sigRow[j] - cmplx.Conj(sigma.Data[j*n+i])
			dstRow[j] = complex(-imag(d), real(d)) // i·d
		}
	}
	perf.AddFlops(int64(n) * int64(n) * (perf.FlopsCAdd + perf.FlopsCMul))
}

// leadSpec is one contact viewed through the cache's eyes: the raw blocks
// as built, which side they sit on (the two sides project Σ differently),
// and the resolved family identity.
type leadSpec struct {
	key   string
	shift float64
	h00   *linalg.Matrix // principal-layer block, as built (shift included)
	h01   *linalg.Matrix // raw off-diagonal block (L01 or R01 orientation)
	left  bool
}

// leftSpec and rightSpec resolve each contact's family key, falling back
// to the memoized raw-bits fingerprint when the caller declared none.
func (l *Leads) leftSpec() leadSpec {
	key := l.KeyL
	if key == "" {
		l.fingerprints()
		key = l.fpL
	}
	return leadSpec{key: key, shift: l.ShiftL, h00: l.L00, h01: l.L01, left: true}
}

func (l *Leads) rightSpec() leadSpec {
	key := l.KeyR
	if key == "" {
		l.fingerprints()
		key = l.fpR
	}
	return leadSpec{key: key, shift: l.ShiftR, h00: l.R00, h01: l.R01, left: false}
}

// fingerprints memoizes the fallback family keys: an FNV-1a hash over the
// side tag, block dimensions, declared shift, and the raw bits of both
// blocks. Bitwise-identical leads (the common pinned-contact case) land in
// the same family without any declaration.
func (l *Leads) fingerprints() {
	l.fpOnce.Do(func() {
		l.fpL = fingerprintLead('L', l.ShiftL, l.L00, l.L01)
		l.fpR = fingerprintLead('R', l.ShiftR, l.R00, l.R01)
	})
}

func fingerprintLead(side byte, shift float64, h00, h01 *linalg.Matrix) string {
	h := fnv.New64a()
	var b [8]byte
	b[0] = side
	h.Write(b[:1])
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(shift))
	h.Write(b[:])
	for _, m := range []*linalg.Matrix{h00, h01} {
		binary.LittleEndian.PutUint64(b[:], uint64(m.Rows)<<32|uint64(m.Cols))
		h.Write(b[:])
		for _, v := range m.Data {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(real(v)))
			h.Write(b[:])
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(imag(v)))
			h.Write(b[:])
		}
	}
	return fmt.Sprintf("fp:%016x", h.Sum64())
}
