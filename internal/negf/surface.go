// Package negf implements the non-equilibrium Green's function machinery
// for ballistic quantum transport through a two-terminal layered device:
// Sancho-Rubio surface Green's functions of the semi-infinite contacts,
// contact self-energies and broadening matrices, and the recursive Green's
// function (RGF) algorithm over the block-tridiagonal device Hamiltonian,
// yielding transmission (Caroli formula), layer-resolved density of states,
// and the contact-resolved spectral functions that feed the charge
// integration.
package negf

import (
	"errors"
	"fmt"
	"math/cmplx"
	"sync"

	"repro/internal/linalg"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// surfaceTol is the convergence threshold on the decimated coupling norm.
const surfaceTol = 1e-12

// surfaceMaxIter bounds the decimation; each iteration doubles the
// effectively included lead depth, so 60 iterations cover 2^60 layers.
const surfaceMaxIter = 60

// ErrNoConvergence is returned when the surface Green's function decimation
// fails to converge, which happens when the energy lies exactly on a band
// edge with no imaginary part.
var ErrNoConvergence = errors.New("negf: surface Green's function did not converge (add imaginary broadening)")

// SurfaceGF computes the retarded surface Green's function of a
// semi-infinite periodic lead by Sancho-Rubio decimation. h00 is the
// principal-layer block, hInto the coupling from a lead layer to the next
// layer deeper into the lead, and z the complex energy (Im z > 0 for the
// retarded function).
func SurfaceGF(h00, hInto *linalg.Matrix, z complex128) (*linalg.Matrix, error) {
	n := h00.Rows
	if h00.Cols != n || hInto.Rows != n || hInto.Cols != n {
		return nil, fmt.Errorf("negf: lead blocks must be square and same-sized")
	}
	if imag(z) <= 0 {
		return nil, fmt.Errorf("negf: surface GF needs Im(z) > 0, got %g", imag(z))
	}
	// The decimation loop runs entirely on workspace scratch: every
	// iteration reuses the same eight n×n buffers, so the ~tens of
	// iterations per lead cost zero allocations.
	ws := linalg.GetWorkspace()
	defer ws.Release()
	epsS := ws.Get(n, n)
	epsS.CopyFrom(h00)
	eps := ws.Get(n, n)
	eps.CopyFrom(h00)
	alpha := ws.Get(n, n)
	alpha.CopyFrom(hInto)
	beta := ws.Get(n, n)
	linalg.ConjTransposeInto(beta, hInto)
	tmp := ws.Get(n, n)
	g := ws.Get(n, n)
	agb := ws.Get(n, n)
	bga := ws.Get(n, n)
	alphaNew := ws.Get(n, n)
	betaNew := ws.Get(n, n)

	for iter := 0; iter < surfaceMaxIter; iter++ {
		linalg.ShiftedNegInto(tmp, eps, z)
		if err := linalg.InverseInto(g, tmp, ws); err != nil {
			return nil, fmt.Errorf("negf: decimation inversion failed: %w", err)
		}
		linalg.Mul3Into(agb, alpha, linalg.NoTrans, g, linalg.NoTrans, beta, linalg.NoTrans, ws)
		linalg.Mul3Into(bga, beta, linalg.NoTrans, g, linalg.NoTrans, alpha, linalg.NoTrans, ws)
		epsS.AddInPlace(agb)
		eps.AddInPlace(agb)
		eps.AddInPlace(bga)
		linalg.Mul3Into(alphaNew, alpha, linalg.NoTrans, g, linalg.NoTrans, alpha, linalg.NoTrans, ws)
		linalg.Mul3Into(betaNew, beta, linalg.NoTrans, g, linalg.NoTrans, beta, linalg.NoTrans, ws)
		alpha, alphaNew = alphaNew, alpha
		beta, betaNew = betaNew, beta
		if alpha.MaxAbs() < surfaceTol && beta.MaxAbs() < surfaceTol {
			// The result escapes the workspace, so it gets fresh storage.
			out := linalg.New(n, n)
			linalg.ShiftedNegInto(tmp, epsS, z)
			if err := linalg.InverseInto(out, tmp, ws); err != nil {
				return nil, fmt.Errorf("negf: surface inversion failed: %w", err)
			}
			return out, nil
		}
	}
	return nil, ErrNoConvergence
}

// Leads bundles the two semi-infinite contacts of a device. L01 and R01
// are oriented along +x: L01 couples a left-lead layer to the next layer
// toward the device; R01 couples a right-lead layer to the next layer away
// from the device.
type Leads struct {
	L00, L01 *linalg.Matrix
	R00, R01 *linalg.Matrix
}

// LeadsFromDevice derives flat-band contacts from the end layers of a
// uniform device Hamiltonian: each lead is the semi-infinite continuation
// of the corresponding end layer.
func LeadsFromDevice(h *sparse.BlockTridiag) (*Leads, error) {
	if h.Layers() < 2 {
		return nil, fmt.Errorf("negf: device needs at least 2 layers to define leads")
	}
	nl := h.Layers()
	return &Leads{
		L00: h.Diag[0].Clone(),
		L01: h.Upper[0].Clone(),
		R00: h.Diag[nl-1].Clone(),
		R01: h.Upper[nl-2].Clone(),
	}, nil
}

// SelfEnergies computes the retarded contact self-energies at complex
// energy z, projected onto the first and last device layers:
// Σ_L = L01†·g_L·L01 with g_L the left surface GF, and
// Σ_R = R01·g_R·R01† with g_R the right surface GF.
func (l *Leads) SelfEnergies(z complex128) (sigL, sigR *linalg.Matrix, err error) {
	// Instrumented as the "self-energy" phase: the Sancho-Rubio decimation
	// below dominates per-energy cost when the cache misses, and the phase
	// breakdown of the paper's Table is reconstructed from this timer.
	defer perf.StartPhase("self-energy")()
	ws := linalg.GetWorkspace()
	defer ws.Release()
	// Left lead grows toward −x: coupling into the bulk is L01†.
	l10 := ws.Get(l.L01.Cols, l.L01.Rows)
	linalg.ConjTransposeInto(l10, l.L01)
	gL, err := SurfaceGF(l.L00, l10, z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: left lead: %w", err)
	}
	// Right lead grows toward +x: coupling into the bulk is R01.
	gR, err := SurfaceGF(l.R00, l.R01, z)
	if err != nil {
		return nil, nil, fmt.Errorf("negf: right lead: %w", err)
	}
	// The self-energies escape (and may be cached), so they get fresh
	// storage; the conjugate couplings are read in place by the fused GEMM.
	sigL = linalg.New(l.L01.Cols, l.L01.Cols)
	linalg.Mul3Into(sigL, l.L01, linalg.ConjTrans, gL, linalg.NoTrans, l.L01, linalg.NoTrans, ws)
	sigR = linalg.New(l.R01.Rows, l.R01.Rows)
	linalg.Mul3Into(sigR, l.R01, linalg.NoTrans, gR, linalg.NoTrans, l.R01, linalg.ConjTrans, ws)
	return sigL, sigR, nil
}

// Broadening returns Γ = i(Σ − Σ†), the contact broadening matrix.
func Broadening(sigma *linalg.Matrix) *linalg.Matrix {
	g := linalg.New(sigma.Rows, sigma.Cols)
	BroadeningInto(g, sigma)
	return g
}

// BroadeningInto writes Γ = i(Σ − Σ†) into dst elementwise, without
// materializing the adjoint: Γ_ij = i·(Σ_ij − conj(Σ_ji)). dst must be
// the same shape as the square sigma and must not alias it.
func BroadeningInto(dst, sigma *linalg.Matrix) {
	n := sigma.Rows
	if sigma.Cols != n {
		panic("negf: BroadeningInto requires a square matrix")
	}
	if dst == sigma {
		panic("negf: BroadeningInto output aliases its input")
	}
	if dst.Rows != n || dst.Cols != n {
		panic("negf: dimension mismatch in BroadeningInto")
	}
	for i := 0; i < n; i++ {
		dstRow := dst.Data[i*n : (i+1)*n]
		sigRow := sigma.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			d := sigRow[j] - cmplx.Conj(sigma.Data[j*n+i])
			dstRow[j] = complex(-imag(d), real(d)) // i·d
		}
	}
	perf.AddFlops(int64(n) * int64(n) * (perf.FlopsCAdd + perf.FlopsCMul))
}

// SelfEnergyCache memoizes contact self-energies by complex energy. The
// expensive Sancho-Rubio decimation depends only on the lead blocks, which
// stay fixed through a self-consistent loop (the contacts are flat-band
// and pinned), so production drivers share one cache across all
// iterations of a bias point. Safe for concurrent use.
type SelfEnergyCache struct {
	mu sync.Mutex
	m  map[complex128][2]*linalg.Matrix
}

// NewSelfEnergyCache returns an empty cache.
func NewSelfEnergyCache() *SelfEnergyCache {
	return &SelfEnergyCache{m: make(map[complex128][2]*linalg.Matrix)}
}

// SelfEnergies returns cached Σ_L, Σ_R for energy z, computing and storing
// them through leads on a miss. The returned matrices are shared — callers
// must not modify them.
func (c *SelfEnergyCache) SelfEnergies(leads *Leads, z complex128) (sigL, sigR *linalg.Matrix, err error) {
	c.mu.Lock()
	if pair, ok := c.m[z]; ok {
		c.mu.Unlock()
		return pair[0], pair[1], nil
	}
	c.mu.Unlock()
	sigL, sigR, err = leads.SelfEnergies(z)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.m[z] = [2]*linalg.Matrix{sigL, sigR}
	c.mu.Unlock()
	return sigL, sigR, nil
}

// Len reports the number of cached energies.
func (c *SelfEnergyCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
