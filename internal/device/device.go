// Package device describes the benchmark devices of the reproduced
// evaluation — gate-all-around silicon nanowire FETs, ultra-thin bodies,
// graphene nanoribbons, and single-band chains — and builds their
// atomistic structures and tight-binding materials. It also derives the
// bookkeeping numbers (atoms, orbitals, layers, matrix sizes) reported in
// the paper-style device table (experiment T1).
package device

import (
	"fmt"

	"repro/internal/lattice"
	"repro/internal/tb"
)

// Kind enumerates the supported device families.
type Kind int

const (
	// SiNanowire is a [100] gate-all-around silicon nanowire.
	SiNanowire Kind = iota
	// SiUTB is an ultra-thin-body silicon film, periodic in y.
	SiUTB
	// GaAsNanowire is a [100] GaAs nanowire.
	GaAsNanowire
	// GeNanowire is a [100] germanium nanowire (sp3d5s*).
	GeNanowire
	// InAsNanowire is a [100] InAs nanowire (sp3s*).
	InAsNanowire
	// ArmchairGNR is an armchair graphene nanoribbon.
	ArmchairGNR
	// ZigzagGNR is a zigzag graphene nanoribbon.
	ZigzagGNR
	// Chain is the single-band analytic reference device.
	Chain
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SiNanowire:
		return "Si nanowire [100]"
	case SiUTB:
		return "Si ultra-thin body"
	case GaAsNanowire:
		return "GaAs nanowire [100]"
	case GeNanowire:
		return "Ge nanowire [100]"
	case InAsNanowire:
		return "InAs nanowire [100]"
	case ArmchairGNR:
		return "armchair GNR"
	case ZigzagGNR:
		return "zigzag GNR"
	case Chain:
		return "single-band chain"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Description parameterizes a device build.
type Description struct {
	Name string
	Kind Kind
	// CellsX/CellsY/CellsZ size zinc-blende devices in conventional cells
	// (CellsX = transport length). For GNRs, CellsY is the row/chain count
	// and CellsX the cell count; for chains CellsX is the site count.
	CellsX, CellsY, CellsZ int
	// FullBand selects sp3d5s* for silicon devices (else sp3s*).
	FullBand bool
	// Spin enables spin doubling with spin-orbit coupling.
	Spin bool
	// PassivationShift (eV per dangling bond); 0 picks the default 12 eV
	// for semiconductor surfaces and none for GNR/chain.
	PassivationShift float64
}

// Built bundles the outcome of a device build.
type Built struct {
	Structure *lattice.Structure
	Material  *tb.Material
	Options   tb.Options
}

// Build constructs the structure and material of the description.
func (d Description) Build() (*Built, error) {
	if d.CellsX < 2 {
		return nil, fmt.Errorf("device: %q needs at least 2 transport cells", d.Name)
	}
	pass := d.PassivationShift
	var (
		s   *lattice.Structure
		m   *tb.Material
		err error
	)
	switch d.Kind {
	case SiNanowire, SiUTB, GaAsNanowire, GeNanowire, InAsNanowire:
		if d.CellsY < 1 || d.CellsZ < 1 {
			return nil, fmt.Errorf("device: %q needs a positive cross-section", d.Name)
		}
		if pass == 0 {
			pass = 12
		}
		switch d.Kind {
		case SiNanowire:
			s, err = lattice.NewZincblendeNanowire(0.5431, d.CellsX, d.CellsY, d.CellsZ)
			if d.FullBand {
				m = tb.Silicon()
			} else {
				m = tb.SiliconSP3S()
			}
		case SiUTB:
			s, err = lattice.NewZincblendeUTB(0.5431, d.CellsX, d.CellsY, d.CellsZ)
			if d.FullBand {
				m = tb.Silicon()
			} else {
				m = tb.SiliconSP3S()
			}
		case GaAsNanowire:
			s, err = lattice.NewZincblendeNanowire(0.56533, d.CellsX, d.CellsY, d.CellsZ)
			m = tb.GaAs()
		case GeNanowire:
			s, err = lattice.NewZincblendeNanowire(0.5658, d.CellsX, d.CellsY, d.CellsZ)
			m = tb.Germanium()
		case InAsNanowire:
			s, err = lattice.NewZincblendeNanowire(0.60583, d.CellsX, d.CellsY, d.CellsZ)
			m = tb.InAs()
		}
	case ArmchairGNR:
		s, err = lattice.NewArmchairGNR(d.CellsY, d.CellsX)
		m = tb.Graphene()
	case ZigzagGNR:
		s, err = lattice.NewZigzagGNR(d.CellsY, d.CellsX)
		m = tb.Graphene()
	case Chain:
		s, err = lattice.NewLinearChain(0.5, d.CellsX)
		m = tb.SingleBandChain(0, -1)
	default:
		return nil, fmt.Errorf("device: unknown kind %d", d.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("device: %q: %w", d.Name, err)
	}
	return &Built{
		Structure: s,
		Material:  m,
		Options:   tb.Options{Spin: d.Spin, PassivationShift: pass},
	}, nil
}

// Stats are the bookkeeping numbers of a built device.
type Stats struct {
	Name         string
	Kind         string
	Atoms        int
	Layers       int
	OrbitalsAtom int
	MatrixOrder  int
	BlockSize    int
	CrossSection float64 // nm² (0 when not applicable)
	TransportLen float64 // nm
}

// Stats derives the bookkeeping numbers for the device table.
func (b *Built) Stats(name, kind string) Stats {
	orb := tb.OrbitalsPerAtom(b.Material, b.Options)
	s := b.Structure
	return Stats{
		Name:         name,
		Kind:         kind,
		Atoms:        s.NAtoms(),
		Layers:       s.NLayers(),
		OrbitalsAtom: orb,
		MatrixOrder:  s.NAtoms() * orb,
		BlockSize:    s.LayerSize(0) * orb,
		TransportLen: float64(s.NLayers()) * s.LayerPeriod,
	}
}

// BenchmarkSuite returns the devices of the reconstructed T1 table at
// laptop scale, in the order they appear in EXPERIMENTS.md.
func BenchmarkSuite() []Description {
	return []Description{
		{Name: "SiNW-sp3d5s*", Kind: SiNanowire, CellsX: 8, CellsY: 1, CellsZ: 1, FullBand: true},
		{Name: "SiNW-sp3s*", Kind: SiNanowire, CellsX: 8, CellsY: 1, CellsZ: 1},
		{Name: "SiNW-2x2", Kind: SiNanowire, CellsX: 6, CellsY: 2, CellsZ: 2},
		{Name: "SiUTB", Kind: SiUTB, CellsX: 6, CellsY: 1, CellsZ: 1},
		{Name: "GaAsNW", Kind: GaAsNanowire, CellsX: 6, CellsY: 1, CellsZ: 1},
		{Name: "AGNR-7", Kind: ArmchairGNR, CellsX: 12, CellsY: 7},
		{Name: "ZGNR-6", Kind: ZigzagGNR, CellsX: 12, CellsY: 6},
	}
}

// PaperScale returns the full-size flagship device of the paper-scale
// experiments (constructible, but sized for the performance model rather
// than for a laptop solve).
func PaperScale() Description {
	return Description{
		Name: "SiNW-22nm-class", Kind: SiNanowire,
		CellsX: 40, CellsY: 6, CellsZ: 6, FullBand: true, Spin: true,
	}
}
