package device

import (
	"sort"
	"testing"
)

func TestLookupKnownAndUnknown(t *testing.T) {
	d, ok := Lookup("agnr7")
	if !ok {
		t.Fatal("agnr7 missing from registry")
	}
	if d.Kind != ArmchairGNR || d.CellsY != 7 {
		t.Fatalf("agnr7 preset = %+v", d)
	}
	if _, ok := Lookup("no-such-device"); ok {
		t.Fatal("Lookup invented a device")
	}
}

// TestLookupReturnsCopy: overriding a looked-up preset must not leak
// into later lookups (the CLI -cellsx override path).
func TestLookupReturnsCopy(t *testing.T) {
	d, _ := Lookup("agnr7")
	d.CellsX = 999
	again, _ := Lookup("agnr7")
	if again.CellsX == 999 {
		t.Fatal("Lookup returned a shared Description")
	}
	reg := Registry()
	reg["agnr7"] = Description{Name: "clobbered"}
	if fresh, _ := Lookup("agnr7"); fresh.Name == "clobbered" {
		t.Fatal("Registry returned the live map")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	if len(names) != len(Registry()) {
		t.Fatalf("Names has %d entries, registry %d", len(names), len(Registry()))
	}
	for _, want := range []string{"chain", "agnr7", "sinw", "sinw-full", "utb"} {
		if _, ok := Lookup(want); !ok {
			t.Fatalf("registry lost %q", want)
		}
	}
}

// TestRegistryPresetsAreBuildable: every named preset must satisfy the
// structural minimums Build enforces, without actually building the
// larger devices (that is the CLIs' job and the T1 experiment's).
func TestRegistryPresetsAreBuildable(t *testing.T) {
	for name, d := range Registry() {
		if d.CellsX < 2 {
			t.Errorf("%s: CellsX = %d < 2", name, d.CellsX)
		}
		switch d.Kind {
		case SiNanowire, SiUTB, GaAsNanowire, GeNanowire, InAsNanowire:
			if d.CellsY < 1 || d.CellsZ < 1 {
				t.Errorf("%s: flat cross-section %dx%d", name, d.CellsY, d.CellsZ)
			}
		}
		if d.Name == "" {
			t.Errorf("%s: empty display name", name)
		}
	}
}
