package device

import "sort"

// registry is the single source of the named benchmark devices the CLIs
// (and the run-spec builder) expose. It used to be duplicated between
// cmd/omen and cmd/bands, where the two copies drifted independently;
// any driver that accepts a device name must resolve it here.
var registry = map[string]Description{
	"chain":     {Name: "chain", Kind: Chain, CellsX: 20},
	"agnr7":     {Name: "AGNR-7", Kind: ArmchairGNR, CellsX: 20, CellsY: 7},
	"agnr13":    {Name: "AGNR-13", Kind: ArmchairGNR, CellsX: 20, CellsY: 13},
	"zgnr6":     {Name: "ZGNR-6", Kind: ZigzagGNR, CellsX: 20, CellsY: 6},
	"sinw":      {Name: "SiNW sp3s*", Kind: SiNanowire, CellsX: 10, CellsY: 1, CellsZ: 1},
	"sinw-full": {Name: "SiNW sp3d5s*", Kind: SiNanowire, CellsX: 8, CellsY: 1, CellsZ: 1, FullBand: true},
	"gaasnw":    {Name: "GaAs NW", Kind: GaAsNanowire, CellsX: 8, CellsY: 1, CellsZ: 1},
	"utb":       {Name: "Si UTB", Kind: SiUTB, CellsX: 6, CellsY: 1, CellsZ: 1},
}

// Lookup resolves a registry name to its device preset. The returned
// Description is a copy: callers may override fields (cell counts, spin)
// without affecting the registry.
func Lookup(name string) (Description, bool) {
	d, ok := registry[name]
	return d, ok
}

// Names returns the registry names in sorted order, for help text and
// error messages.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry returns a copy of the full name → preset table.
func Registry() map[string]Description {
	out := make(map[string]Description, len(registry))
	for n, d := range registry {
		out[n] = d
	}
	return out
}
