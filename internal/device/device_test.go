package device

import (
	"strings"
	"testing"
)

func TestBuildBenchmarkSuite(t *testing.T) {
	for _, d := range BenchmarkSuite() {
		b, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if err := b.Structure.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		st := b.Stats(d.Name, d.Kind.String())
		if st.Atoms <= 0 || st.Layers <= 0 || st.MatrixOrder <= 0 {
			t.Fatalf("%s: degenerate stats %+v", d.Name, st)
		}
		if st.MatrixOrder != st.Atoms*st.OrbitalsAtom {
			t.Fatalf("%s: inconsistent matrix order", d.Name)
		}
		if st.BlockSize*st.Layers != st.MatrixOrder {
			t.Fatalf("%s: blocks do not tile the matrix", d.Name)
		}
	}
}

func TestBuildModels(t *testing.T) {
	full := Description{Name: "x", Kind: SiNanowire, CellsX: 2, CellsY: 1, CellsZ: 1, FullBand: true}
	b, err := full.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Stats("x", "y").OrbitalsAtom; got != 10 {
		t.Fatalf("sp3d5s* orbitals/atom = %d", got)
	}
	full.Spin = true
	b2, err := full.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Stats("x", "y").OrbitalsAtom; got != 20 {
		t.Fatalf("spinful sp3d5s* orbitals/atom = %d", got)
	}
	reduced := Description{Name: "x", Kind: SiNanowire, CellsX: 2, CellsY: 1, CellsZ: 1}
	b3, err := reduced.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := b3.Stats("x", "y").OrbitalsAtom; got != 5 {
		t.Fatalf("sp3s* orbitals/atom = %d", got)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := (Description{Name: "short", Kind: SiNanowire, CellsX: 1, CellsY: 1, CellsZ: 1}).Build(); err == nil {
		t.Fatal("accepted single-cell transport length")
	}
	if _, err := (Description{Name: "flat", Kind: SiNanowire, CellsX: 3}).Build(); err == nil {
		t.Fatal("accepted zero cross-section")
	}
	if _, err := (Description{Name: "bad", Kind: Kind(42), CellsX: 3}).Build(); err == nil {
		t.Fatal("accepted unknown kind")
	}
}

func TestPassivationDefaults(t *testing.T) {
	semic := Description{Name: "w", Kind: SiNanowire, CellsX: 2, CellsY: 1, CellsZ: 1}
	b, err := semic.Build()
	if err != nil {
		t.Fatal(err)
	}
	if b.Options.PassivationShift != 12 {
		t.Fatalf("semiconductor default passivation %g, want 12", b.Options.PassivationShift)
	}
	gnr := Description{Name: "g", Kind: ArmchairGNR, CellsX: 3, CellsY: 5}
	bg, err := gnr.Build()
	if err != nil {
		t.Fatal(err)
	}
	if bg.Options.PassivationShift != 0 {
		t.Fatalf("GNR passivation %g, want 0", bg.Options.PassivationShift)
	}
	custom := semic
	custom.PassivationShift = 7
	bc, err := custom.Build()
	if err != nil {
		t.Fatal(err)
	}
	if bc.Options.PassivationShift != 7 {
		t.Fatal("custom passivation not honored")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{SiNanowire, SiUTB, GaAsNanowire, ArmchairGNR, ZigzagGNR, Chain} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
}

func TestPaperScaleConstructible(t *testing.T) {
	if testing.Short() {
		t.Skip("large structure build")
	}
	d := PaperScale()
	b, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats(d.Name, d.Kind.String())
	// The flagship device must be meaningfully large: > 10⁴ atoms and a
	// matrix order in the 10⁵–10⁶ range the paper's solvers target.
	if st.Atoms < 10000 {
		t.Fatalf("paper-scale device has only %d atoms", st.Atoms)
	}
	if st.MatrixOrder < 200000 {
		t.Fatalf("paper-scale matrix order %d too small", st.MatrixOrder)
	}
}

func TestGeAndInAsKinds(t *testing.T) {
	for _, k := range []Kind{GeNanowire, InAsNanowire} {
		d := Description{Name: k.String(), Kind: k, CellsX: 2, CellsY: 1, CellsZ: 1}
		b, err := d.Build()
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if err := b.Structure.Validate(); err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		st := b.Stats(d.Name, k.String())
		if st.Atoms != 16 {
			t.Fatalf("%s: %d atoms", k, st.Atoms)
		}
	}
}
