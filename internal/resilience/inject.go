package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// ErrInjected is the sentinel wrapped by every error the Injector
// produces, so drills can assert that a failure was synthetic.
var ErrInjected = errors.New("resilience: injected fault")

// Fault is the kind of perturbation the Injector applies to a task.
type Fault int

const (
	// FaultNone leaves the task alone.
	FaultNone Fault = iota
	// FaultError makes the task return a transient error.
	FaultError
	// FaultPanic makes the task panic.
	FaultPanic
	// FaultDelay stalls the task by Injector.Delay without failing it.
	FaultDelay
)

// String implements fmt.Stringer.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultPanic:
		return "panic"
	case FaultDelay:
		return "delay"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Injector deterministically perturbs a configurable fraction of tasks in
// a sweep: whether task i is faulty, which fault it suffers, and for how
// many attempts, are all pure functions of (Seed, i) — so a failure drill
// is exactly reproducible run over run, and a resumed run injects the same
// faults into the same task indices as the run it resumes.
//
// The zero value injects nothing. Injector is stateless after
// construction and safe for concurrent use from many workers.
type Injector struct {
	// Seed drives the per-task hash.
	Seed uint64
	// Rate is the fraction of task indices perturbed, in [0, 1].
	Rate float64
	// Modes is the fault mix to draw from per faulty task (hash-selected).
	// Empty means {FaultError, FaultPanic} — the mixed drill of the
	// acceptance criteria.
	Modes []Fault
	// FailuresPerTask is how many leading attempts of a faulty task fail
	// before it succeeds (default 1: fail the first attempt, succeed on
	// retry). Set it at or above the retry budget to model a hard fault
	// that must be quarantined.
	FailuresPerTask int
	// Delay is the stall applied by FaultDelay (default 1ms).
	Delay time.Duration
}

func (inj *Injector) modes() []Fault {
	if len(inj.Modes) == 0 {
		return []Fault{FaultError, FaultPanic}
	}
	return inj.Modes
}

// FaultFor returns the fault assigned to task index i (FaultNone for the
// unperturbed majority). Deterministic in (Seed, i).
func (inj *Injector) FaultFor(i int) Fault {
	if inj == nil || inj.Rate <= 0 {
		return FaultNone
	}
	h := hash2(inj.Seed, uint64(i))
	if unit(h) >= inj.Rate {
		return FaultNone
	}
	m := inj.modes()
	return m[hash2(h, 0x9e3779b97f4a7c15)%uint64(len(m))]
}

// Trip applies task i's fault to the given attempt (0-based): it returns a
// transient error, panics, or sleeps, according to FaultFor. Attempts past
// FailuresPerTask pass clean, which is what lets a retry policy drive a
// faulty sweep to completion. A nil Injector never trips.
func (inj *Injector) Trip(ctx context.Context, i, attempt int) error {
	if inj == nil {
		return nil
	}
	f := inj.FaultFor(i)
	if f == FaultNone {
		return nil
	}
	if f == FaultDelay {
		d := inj.Delay
		if d <= 0 {
			d = time.Millisecond
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
		return nil
	}
	failures := inj.FailuresPerTask
	if failures < 1 {
		failures = 1
	}
	if attempt >= failures {
		return nil
	}
	switch f {
	case FaultError:
		return fmt.Errorf("%w: task %d attempt %d", ErrInjected, i, attempt)
	case FaultPanic:
		panic(fmt.Sprintf("injected fault: task %d attempt %d", i, attempt))
	}
	return nil
}

// Wrap decorates fn so every invocation first runs the task's injected
// fault for the given attempt, then the real work.
func (inj *Injector) Wrap(i, attempt int, fn func(context.Context) error) func(context.Context) error {
	return func(ctx context.Context) error {
		if err := inj.Trip(ctx, i, attempt); err != nil {
			return err
		}
		return fn(ctx)
	}
}

// hash2 mixes two words with the splitmix64 finalizer — the deterministic
// core behind fault assignment and backoff jitter.
func hash2(a, b uint64) uint64 {
	x := a ^ (b+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// captureStack formats the current goroutine's stack for PanicError.
func captureStack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
