// Package resilience is the fault-tolerance layer of the simulator: retry
// policies with exponential backoff and deterministic jitter, transient vs
// permanent error classification, per-attempt panic containment, and a
// seeded fault injector for reproducible failure drills.
//
// The package exists because the regime the paper operates in — hours of
// sustained execution over hundreds of thousands of cores — makes task
// failure the norm, not the exception: a sweep of millions of (bias, k, E)
// points must survive numerical blow-ups at isolated energies, transient
// allocation or timeout failures, and outright panics in worker code
// without restarting from zero. resilience is a leaf package (stdlib only)
// so every layer of the stack — sched workers, the cluster sweep runner,
// transport observables — can share one error vocabulary without import
// cycles.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Class partitions errors by whether retrying can help.
type Class int

const (
	// Transient errors may succeed on retry (timeouts, injected faults,
	// resource pressure). This is the default class.
	Transient Class = iota
	// Permanent errors are deterministic — retrying reproduces them
	// (numerical blow-up at an energy point, invalid input, cancellation).
	Permanent
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// classifier is the duck-typed self-classification interface: any error in
// a chain may declare its own class by implementing TransientError. Typed
// errors in other packages (e.g. transport's non-finite observable error)
// implement it without importing this package.
type classifier interface{ TransientError() bool }

// Classify returns the retry class of err. Errors self-classify through a
// `TransientError() bool` method anywhere in their Unwrap chain; context
// cancellation and deadline expiry are permanent (the caller's intent to
// stop is not retryable); everything else defaults to Transient, which is
// the safe default for long sweeps — a deterministic failure exhausts its
// retry budget quickly and is then quarantined or surfaced.
func Classify(err error) Class {
	if err == nil {
		return Transient
	}
	var c classifier
	if errors.As(err, &c) {
		if c.TransientError() {
			return Transient
		}
		return Permanent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Permanent
	}
	return Transient
}

// permanentError marks an error Permanent without changing its message.
type permanentError struct{ err error }

func (e *permanentError) Error() string        { return e.err.Error() }
func (e *permanentError) Unwrap() error        { return e.err }
func (e *permanentError) TransientError() bool { return false }

// MarkPermanent wraps err so Classify reports it Permanent. A nil err
// returns nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// transientError marks an error Transient without changing its message.
type transientError struct{ err error }

func (e *transientError) Error() string        { return e.err.Error() }
func (e *transientError) Unwrap() error        { return e.err }
func (e *transientError) TransientError() bool { return true }

// MarkTransient wraps err so Classify reports it Transient — used to
// override the permanent default of context errors when a deadline is
// attempt-local rather than caller-imposed. A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// PanicError is a panic recovered at a task boundary, converted into an
// ordinary error carrying the panic value and the goroutine stack at the
// point of recovery. It classifies as Transient: in long parallel sweeps
// panics are most often environmental (corrupted transient state, races
// with cancellation), and a deterministic panic simply exhausts its retry
// budget and is then quarantined or surfaced like any other failure.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured by the recovery site.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// TransientError implements the self-classification interface.
func (e *PanicError) TransientError() bool { return true }

// AsPanicError unwraps err to a *PanicError if one is in its chain.
func AsPanicError(err error) (*PanicError, bool) {
	var pe *PanicError
	ok := errors.As(err, &pe)
	return pe, ok
}

// ExhaustedError reports that a retry policy ran out of attempts. It
// unwraps to the last attempt's error and classifies as Permanent — the
// policy has already spent its transient budget.
type ExhaustedError struct {
	// Attempts is the number of attempts made.
	Attempts int
	// Err is the error of the final attempt.
	Err error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("resilience: %d attempts exhausted: %v", e.Attempts, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *ExhaustedError) Unwrap() error { return e.Err }

// TransientError implements the self-classification interface.
func (e *ExhaustedError) TransientError() bool { return false }

// Policy describes how one task is retried. The zero value runs a single
// attempt with no timeout — a no-op policy safe to embed anywhere.
type Policy struct {
	// MaxAttempts is the total attempt budget (first try included).
	// Values < 1 mean one attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 10ms
	// when MaxAttempts > 1).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 2s).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (default 2).
	Multiplier float64
	// JitterFrac spreads each delay by ±JitterFrac deterministically from
	// Seed and the attempt number, decorrelating retry storms without
	// sacrificing reproducibility (default 0: no jitter).
	JitterFrac float64
	// Seed feeds the deterministic jitter hash.
	Seed uint64
	// AttemptTimeout bounds each attempt's wall time (0: none). An attempt
	// that exceeds it fails with a Transient error and is retried; the
	// caller's own context deadline remains Permanent.
	AttemptTimeout time.Duration
}

func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the deterministic delay inserted after failed attempt a
// (0-based). The sequence is pure in (Policy, a): exponential growth from
// BaseDelay capped at MaxDelay, spread by ±JitterFrac via a hash of Seed
// and a — so a rerun of the same drill sleeps the same schedule.
func (p Policy) Backoff(a int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := float64(base)
	for i := 0; i < a; i++ {
		d *= mult
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if p.JitterFrac > 0 {
		u := unit(hash2(p.Seed, uint64(a)^0xa5a5a5a5a5a5a5a5)) // in [0,1)
		d *= 1 + p.JitterFrac*(2*u-1)
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// Do runs fn under the policy: up to MaxAttempts attempts, each bounded by
// AttemptTimeout, with Backoff sleeps between attempts. Panics inside fn
// are recovered into *PanicError and treated like any other attempt error.
// Permanent errors (see Classify) short-circuit immediately; cancellation
// of ctx aborts between and during attempts and returns ctx.Err(). When
// the attempt budget is exhausted the last error is wrapped in
// *ExhaustedError.
func (p Policy) Do(ctx context.Context, fn func(context.Context) error) error {
	n := p.attempts()
	var last error
	for a := 0; a < n; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := p.attempt(ctx, fn)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The caller canceled mid-attempt: report the cancellation, not
			// whatever partial failure it induced.
			return ctx.Err()
		}
		last = err
		if Classify(err) == Permanent {
			return err
		}
		if a < n-1 {
			t := time.NewTimer(p.Backoff(a))
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
		}
	}
	if n == 1 {
		// A single-attempt policy is a plain guarded call; don't wrap.
		return last
	}
	return &ExhaustedError{Attempts: n, Err: last}
}

// Attempt runs one bounded, panic-contained invocation of fn under the
// policy's per-attempt semantics — AttemptTimeout, panic containment into
// *PanicError, attempt-local deadline expiry marked Transient — without
// the retry loop around it. It is the building block for callers that
// schedule the first attempts of several tasks jointly (the batched sweep
// runner) and feed each outcome back through Do as a recorded attempt.
func (p Policy) Attempt(ctx context.Context, fn func(context.Context) error) error {
	return p.attempt(ctx, fn)
}

// attempt runs one bounded, panic-contained invocation of fn.
func (p Policy) attempt(ctx context.Context, fn func(context.Context) error) (err error) {
	actx := ctx
	cancel := func() {}
	if p.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
	}
	defer cancel()
	err = Call(actx, fn)
	if err != nil && ctx.Err() == nil && errors.Is(err, context.DeadlineExceeded) {
		// The deadline that fired was the attempt-local one; it is
		// retryable even though context errors default to Permanent.
		err = MarkTransient(fmt.Errorf("resilience: attempt timed out after %v: %w", p.AttemptTimeout, err))
	}
	return err
}

// Call invokes fn(ctx), converting a panic into a *PanicError instead of
// unwinding the caller. It is the shared panic boundary used by Policy.Do
// and by sched workers.
func Call(ctx context.Context, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: captureStack()}
		}
	}()
	return fn(ctx)
}
