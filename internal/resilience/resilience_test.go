package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func fastPolicy(attempts int) Policy {
	return Policy{MaxAttempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

func TestClassifyDefaults(t *testing.T) {
	if c := Classify(errors.New("disk hiccup")); c != Transient {
		t.Fatalf("plain error classified %v, want transient", c)
	}
	if c := Classify(context.Canceled); c != Permanent {
		t.Fatalf("context.Canceled classified %v, want permanent", c)
	}
	if c := Classify(context.DeadlineExceeded); c != Permanent {
		t.Fatalf("DeadlineExceeded classified %v, want permanent", c)
	}
	if c := Classify(MarkPermanent(errors.New("bad input"))); c != Permanent {
		t.Fatalf("MarkPermanent classified %v, want permanent", c)
	}
	if c := Classify(MarkTransient(context.Canceled)); c != Transient {
		t.Fatalf("MarkTransient classified %v, want transient", c)
	}
	// Wrapping preserves classification through the chain.
	wrapped := fmt.Errorf("layer: %w", MarkPermanent(errors.New("x")))
	if c := Classify(wrapped); c != Permanent {
		t.Fatalf("wrapped permanent classified %v", c)
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	inj := &Injector{Seed: 7, Rate: 1, Modes: []Fault{FaultError}, FailuresPerTask: 2}
	calls := 0
	err := fastPolicy(4).Do(context.Background(), func(ctx context.Context) error {
		a := calls
		calls++
		return inj.Trip(ctx, 0, a)
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("expected 2 failures + 1 success = 3 calls, got %d", calls)
	}
}

func TestDoPermanentShortCircuits(t *testing.T) {
	boom := MarkPermanent(errors.New("NaN at E=0.3"))
	calls := 0
	err := fastPolicy(5).Do(context.Background(), func(context.Context) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected the permanent error back, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	calls := 0
	err := fastPolicy(3).Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("still down")
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("expected *ExhaustedError, got %v", err)
	}
	if ex.Attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3/3", ex.Attempts, calls)
	}
	if Classify(err) != Permanent {
		t.Fatalf("exhausted error must classify permanent")
	}
}

func TestDoRecoversPanics(t *testing.T) {
	calls := 0
	err := fastPolicy(2).Do(context.Background(), func(context.Context) error {
		calls++
		if calls == 1 {
			panic("injected")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("panic not retried to success: %v", err)
	}
	// A policy whose budget runs out on panics surfaces the PanicError.
	err = fastPolicy(1).Do(context.Background(), func(context.Context) error {
		panic("hard")
	})
	pe, ok := AsPanicError(err)
	if !ok {
		t.Fatalf("expected PanicError, got %v", err)
	}
	if pe.Value != "hard" || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack not captured: %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "resilience") {
		t.Fatalf("stack does not mention recovery site:\n%s", pe.Stack)
	}
}

func TestDoAttemptTimeoutIsTransient(t *testing.T) {
	p := fastPolicy(2)
	p.AttemptTimeout = 5 * time.Millisecond
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls == 1 {
			<-ctx.Done() // overrun the attempt deadline
			return ctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("attempt timeout not retried: %v", err)
	}
	if calls != 2 {
		t.Fatalf("calls = %d, want 2", calls)
	}
}

func TestDoParentCancellationWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := fastPolicy(5).Do(ctx, func(context.Context) error { return errors.New("x") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want ctx.Err(), got %v", err)
	}
	// Cancellation mid-attempt reports the cancellation, not the task error.
	ctx2, cancel2 := context.WithCancel(context.Background())
	err = fastPolicy(5).Do(ctx2, func(c context.Context) error {
		cancel2()
		return errors.New("collateral")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-attempt cancel: got %v", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond,
		Multiplier: 2, JitterFrac: 0.5, Seed: 42}
	for a := 0; a < 8; a++ {
		d1, d2 := p.Backoff(a), p.Backoff(a)
		if d1 != d2 {
			t.Fatalf("attempt %d: backoff not deterministic (%v vs %v)", a, d1, d2)
		}
		if d1 <= 0 || d1 > p.MaxDelay {
			t.Fatalf("attempt %d: backoff %v outside (0, %v]", a, d1, p.MaxDelay)
		}
	}
	// Different seeds decorrelate the jitter.
	q := p
	q.Seed = 43
	same := 0
	for a := 0; a < 8; a++ {
		if p.Backoff(a) == q.Backoff(a) {
			same++
		}
	}
	if same == 8 {
		t.Fatalf("jitter ignored the seed")
	}
	// No-jitter policies grow geometrically until the cap.
	g := Policy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{1, 2, 4, 8, 8}
	for a, w := range want {
		if got := g.Backoff(a); got != w*time.Millisecond {
			t.Fatalf("Backoff(%d) = %v, want %v", a, got, w*time.Millisecond)
		}
	}
}

func TestInjectorDeterministicAssignment(t *testing.T) {
	inj := &Injector{Seed: 1234, Rate: 0.1}
	const n = 10000
	faulty := 0
	for i := 0; i < n; i++ {
		f := inj.FaultFor(i)
		if f != inj.FaultFor(i) {
			t.Fatalf("task %d: fault assignment not deterministic", i)
		}
		if f != FaultNone {
			faulty++
			if f != FaultError && f != FaultPanic {
				t.Fatalf("task %d: unexpected default-mix fault %v", i, f)
			}
		}
	}
	if faulty < n/20 || faulty > n/5 {
		t.Fatalf("10%% rate produced %d/%d faulty tasks", faulty, n)
	}
	// A different seed reshuffles which tasks are faulty.
	other := &Injector{Seed: 99, Rate: 0.1}
	diff := 0
	for i := 0; i < n; i++ {
		if (inj.FaultFor(i) == FaultNone) != (other.FaultFor(i) == FaultNone) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("seed change did not move any faults")
	}
}

func TestInjectorTripModes(t *testing.T) {
	ctx := context.Background()
	errInj := &Injector{Seed: 5, Rate: 1, Modes: []Fault{FaultError}}
	if err := errInj.Trip(ctx, 3, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("error mode: %v", err)
	}
	if err := errInj.Trip(ctx, 3, 1); err != nil {
		t.Fatalf("attempt past FailuresPerTask must pass: %v", err)
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		pi := &Injector{Seed: 5, Rate: 1, Modes: []Fault{FaultPanic}}
		_ = pi.Trip(ctx, 0, 0)
		return false
	}()
	if !panicked {
		t.Fatalf("panic mode did not panic")
	}
	di := &Injector{Seed: 5, Rate: 1, Modes: []Fault{FaultDelay}, Delay: time.Microsecond}
	if err := di.Trip(ctx, 0, 0); err != nil {
		t.Fatalf("delay mode must not fail: %v", err)
	}
	var nilInj *Injector
	if err := nilInj.Trip(ctx, 0, 0); err != nil {
		t.Fatalf("nil injector tripped: %v", err)
	}
}
