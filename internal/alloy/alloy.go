// Package alloy adds substitutional disorder to the simulator — the
// random-alloy nanowire physics of the paper's research lineage (SiGe
// wires, alloyed quantum dots): random on-site (Anderson/alloy-type)
// energy landscapes, the virtual-crystal approximation (VCA) they are
// benchmarked against, configuration-averaged transmission, and
// localization-length extraction from the exponential decay of ⟨ln T⟩
// with device length.
//
// Disorder enters through the per-atom potential channel of the
// tight-binding assembly, i.e. as species-dependent on-site shifts. This
// captures the dominant alloy-scattering physics (band-edge fluctuation
// and mode mixing) while leaving the hopping topology intact; DESIGN.md
// records the simplification.
package alloy

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/lattice"
)

// Disorder describes a binary A₁₋ₓBₓ substitutional alloy.
type Disorder struct {
	// Fraction x of sites occupied by species B (0 ≤ x ≤ 1).
	Fraction float64
	// Shift is the on-site energy offset of a B site relative to A (eV).
	Shift float64
}

// Validate reports parameter errors.
func (d Disorder) Validate() error {
	if d.Fraction < 0 || d.Fraction > 1 {
		return fmt.Errorf("alloy: fraction %g outside [0, 1]", d.Fraction)
	}
	return nil
}

// Sample draws one random alloy configuration for structure s, returning
// the per-atom potential to feed tb.Options.Potential. The rng controls
// reproducibility; every atom is independently B with probability x.
func (d Disorder) Sample(s *lattice.Structure, rng *rand.Rand) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	pot := make([]float64, s.NAtoms())
	for i := range pot {
		if rng.Float64() < d.Fraction {
			pot[i] = d.Shift
		}
	}
	return pot, nil
}

// SampleOrdered returns a configuration with the exact composition (the
// nearest integer count of B sites), shuffled uniformly — useful when the
// composition fluctuation of Sample would dominate small structures.
func (d Disorder) SampleOrdered(s *lattice.Structure, rng *rand.Rand) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := s.NAtoms()
	nB := int(math.Round(d.Fraction * float64(n)))
	pot := make([]float64, n)
	for i := 0; i < nB; i++ {
		pot[i] = d.Shift
	}
	rng.Shuffle(n, func(i, j int) { pot[i], pot[j] = pot[j], pot[i] })
	return pot, nil
}

// VCA returns the virtual-crystal approximation of the alloy: every atom
// carries the compositional average x·Shift — the mean-field baseline the
// random configurations are compared against.
func (d Disorder) VCA(s *lattice.Structure) []float64 {
	pot := make([]float64, s.NAtoms())
	v := d.Fraction * d.Shift
	for i := range pot {
		pot[i] = v
	}
	return pot
}

// Average runs fn once per configuration and returns the mean and
// standard error of the mean of its scalar result — the
// configuration-averaging harness for disordered transmission.
func Average(nConfig int, seed int64, fn func(rng *rand.Rand) (float64, error)) (mean, sem float64, err error) {
	if nConfig < 1 {
		return 0, 0, fmt.Errorf("alloy: need at least one configuration")
	}
	var sum, sum2 float64
	for c := 0; c < nConfig; c++ {
		rng := rand.New(rand.NewSource(seed + int64(c)))
		v, err := fn(rng)
		if err != nil {
			return 0, 0, fmt.Errorf("alloy: configuration %d: %w", c, err)
		}
		sum += v
		sum2 += v * v
	}
	mean = sum / float64(nConfig)
	if nConfig > 1 {
		variance := (sum2 - sum*sum/float64(nConfig)) / float64(nConfig-1)
		if variance > 0 {
			sem = math.Sqrt(variance / float64(nConfig))
		}
	}
	return mean, sem, nil
}

// LocalizationFit extracts the localization length ξ from samples of
// ⟨ln T⟩ at increasing device lengths L via the single-parameter scaling
// law ⟨ln T(L)⟩ = ln T₀ − 2L/ξ (least squares). Lengths are in nm; the
// returned ξ is in nm. A non-decaying (ballistic) data set yields a huge
// or negative slope guarded by ok=false.
func LocalizationFit(lengths, lnT []float64) (xi float64, ok bool) {
	if len(lengths) != len(lnT) || len(lengths) < 2 {
		return 0, false
	}
	n := float64(len(lengths))
	var sx, sy, sxx, sxy float64
	for i := range lengths {
		sx += lengths[i]
		sy += lnT[i]
		sxx += lengths[i] * lengths[i]
		sxy += lengths[i] * lnT[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	slope := (n*sxy - sx*sy) / den
	if slope >= 0 {
		return 0, false // no decay: ballistic or noise-dominated
	}
	return -2 / slope, true
}
