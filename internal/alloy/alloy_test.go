package alloy

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/tb"
	"repro/internal/transport"
)

func chain(t *testing.T, n int) *lattice.Structure {
	t.Helper()
	s, err := lattice.NewLinearChain(0.5, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDisorderValidate(t *testing.T) {
	if err := (Disorder{Fraction: -0.1}).Validate(); err == nil {
		t.Fatal("accepted negative fraction")
	}
	if err := (Disorder{Fraction: 1.5}).Validate(); err == nil {
		t.Fatal("accepted fraction > 1")
	}
	if err := (Disorder{Fraction: 0.3, Shift: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSampleComposition(t *testing.T) {
	s := chain(t, 4000)
	d := Disorder{Fraction: 0.3, Shift: 1}
	pot, err := d.Sample(s, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	nB := 0
	for _, v := range pot {
		switch v {
		case 0:
		case 1:
			nB++
		default:
			t.Fatalf("unexpected site energy %g", v)
		}
	}
	x := float64(nB) / float64(len(pot))
	if math.Abs(x-0.3) > 0.03 {
		t.Fatalf("sampled composition %g, want ≈ 0.3", x)
	}
}

func TestSampleOrderedExactComposition(t *testing.T) {
	s := chain(t, 100)
	d := Disorder{Fraction: 0.25, Shift: 0.7}
	pot, err := d.SampleOrdered(s, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	nB := 0
	for _, v := range pot {
		if v != 0 {
			nB++
		}
	}
	if nB != 25 {
		t.Fatalf("ordered sample has %d B sites, want exactly 25", nB)
	}
}

func TestVCAUniform(t *testing.T) {
	s := chain(t, 10)
	d := Disorder{Fraction: 0.4, Shift: 0.5}
	pot := d.VCA(s)
	for _, v := range pot {
		if math.Abs(v-0.2) > 1e-15 {
			t.Fatalf("VCA site energy %g, want 0.2", v)
		}
	}
}

func TestAverageStatistics(t *testing.T) {
	// Averaging a deterministic function returns it exactly with zero SEM.
	mean, sem, err := Average(8, 1, func(*rand.Rand) (float64, error) { return 3.5, nil })
	if err != nil {
		t.Fatal(err)
	}
	if mean != 3.5 || sem != 0 {
		t.Fatalf("mean=%g sem=%g", mean, sem)
	}
	// Uniform random values have mean ≈ 0.5 and positive SEM.
	mean, sem, err = Average(400, 7, func(rng *rand.Rand) (float64, error) {
		return rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-0.5) > 0.05 || sem <= 0 || sem > 0.05 {
		t.Fatalf("mean=%g sem=%g", mean, sem)
	}
	if _, _, err := Average(0, 1, nil); err == nil {
		t.Fatal("accepted zero configurations")
	}
}

// transmissionAt computes T at energy e for a disordered chain potential.
func transmissionAt(t *testing.T, s *lattice.Structure, pot []float64, e float64) float64 {
	t.Helper()
	h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := transport.NewEngine(h, transport.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := eng.Transmissions(context.Background(), []float64{e})
	if err != nil {
		t.Fatal(err)
	}
	return ts[0]
}

// TestDisorderSuppressesTransmission: any realization of on-site disorder
// can only scatter — ⟨T⟩ must fall below the clean value, and stronger
// disorder must suppress it further.
func TestDisorderSuppressesTransmission(t *testing.T) {
	s := chain(t, 30)
	const e = -0.3
	clean := transmissionAt(t, s, nil, e)
	if math.Abs(clean-1) > 1e-4 {
		t.Fatalf("clean chain T = %g", clean)
	}
	avg := func(shift float64) float64 {
		d := Disorder{Fraction: 0.5, Shift: shift}
		mean, _, err := Average(12, 3, func(rng *rand.Rand) (float64, error) {
			pot, err := d.Sample(s, rng)
			if err != nil {
				return 0, err
			}
			return transmissionAt(t, s, pot, e), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return mean
	}
	weak := avg(0.2)
	strong := avg(0.8)
	if weak >= clean {
		t.Fatalf("weak disorder did not scatter: ⟨T⟩ = %g vs clean %g", weak, clean)
	}
	if strong >= weak {
		t.Fatalf("stronger disorder transmits more: %g vs %g", strong, weak)
	}
}

// TestVCABeatsNaiveAverageNearEdge: the VCA shifts the band rigidly, so at
// a fixed energy inside the shifted band it predicts ballistic T = 1,
// while the true disordered ensemble scatters — the classic VCA
// overestimate the unfolding literature corrects for.
func TestVCAOverestimatesTransmission(t *testing.T) {
	s := chain(t, 30)
	d := Disorder{Fraction: 0.5, Shift: 0.6}
	const e = 0.3 // inside the band for both clean and VCA-shifted chains
	vcaT := transmissionAt(t, s, d.VCA(s), e)
	mean, _, err := Average(12, 5, func(rng *rand.Rand) (float64, error) {
		pot, err := d.Sample(s, rng)
		if err != nil {
			return 0, err
		}
		return transmissionAt(t, s, pot, e), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if vcaT <= mean {
		t.Fatalf("VCA T = %g does not exceed disordered ⟨T⟩ = %g", vcaT, mean)
	}
	if math.Abs(vcaT-1) > 1e-3 {
		t.Fatalf("VCA chain not ballistic: T = %g", vcaT)
	}
}

// TestLocalizationLength: ⟨ln T⟩ decays linearly with chain length in the
// localized regime, and the fitted ξ shrinks with disorder strength.
func TestLocalizationLength(t *testing.T) {
	const e = 0.0
	xi := func(shift float64) float64 {
		lengths := []int{16, 24, 32, 40}
		xs := make([]float64, len(lengths))
		ys := make([]float64, len(lengths))
		for i, n := range lengths {
			s := chain(t, n)
			d := Disorder{Fraction: 0.5, Shift: shift}
			mean, _, err := Average(16, 11, func(rng *rand.Rand) (float64, error) {
				pot, err := d.Sample(s, rng)
				if err != nil {
					return 0, err
				}
				T := transmissionAt(t, s, pot, e)
				if T < 1e-300 {
					T = 1e-300
				}
				return math.Log(T), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			xs[i] = float64(n) * 0.5 // nm
			ys[i] = mean
		}
		v, ok := LocalizationFit(xs, ys)
		if !ok {
			t.Fatalf("no localization decay found for shift %g: %v", shift, ys)
		}
		return v
	}
	xiWeak := xi(0.5)
	xiStrong := xi(1.2)
	if xiWeak <= 0 || xiStrong <= 0 {
		t.Fatalf("non-positive localization lengths: %g, %g", xiWeak, xiStrong)
	}
	if xiStrong >= xiWeak {
		t.Fatalf("localization length grew with disorder: ξ(0.5)=%g ≤ ξ(1.2)=%g", xiWeak, xiStrong)
	}
}

func TestLocalizationFitEdgeCases(t *testing.T) {
	if _, ok := LocalizationFit([]float64{1}, []float64{0}); ok {
		t.Fatal("accepted single point")
	}
	if _, ok := LocalizationFit([]float64{1, 2}, []float64{0}); ok {
		t.Fatal("accepted mismatched lengths")
	}
	// Flat data: no decay.
	if _, ok := LocalizationFit([]float64{1, 2, 3}, []float64{-1, -1, -1}); ok {
		t.Fatal("fitted a localization length to flat data")
	}
	// Known slope: lnT = −2L/ξ with ξ = 4.
	xs := []float64{1, 2, 3, 4}
	ys := make([]float64, 4)
	for i, x := range xs {
		ys[i] = -2 * x / 4
	}
	v, ok := LocalizationFit(xs, ys)
	if !ok || math.Abs(v-4) > 1e-12 {
		t.Fatalf("ξ = %g, want 4", v)
	}
}

func TestQuickSampleBinary(t *testing.T) {
	s := chain(t, 50)
	f := func(seed int64, xRaw uint8) bool {
		x := float64(xRaw%11) / 10
		d := Disorder{Fraction: x, Shift: 0.3}
		pot, err := d.Sample(s, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		for _, v := range pot {
			if v != 0 && v != 0.3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
