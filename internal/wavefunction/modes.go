// Package wavefunction implements the scattering-state (wave-function /
// quantum transmitting boundary) formalism for ballistic transport — the
// production solver of the paper, mathematically equivalent to NEGF but
// cheaper in the ballistic limit because it solves the open-boundary
// linear system for the contact column blocks instead of recursively
// inverting every layer.
//
// The package also provides the complex band-structure machinery of the
// contacts: the quadratic Bloch eigenproblem of a periodic lead,
// U†φ + λ(D−E)φ + λ²Uφ = 0, solved through a shifted companion
// linearization, yielding the propagating modes and their group
// velocities.
package wavefunction

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// propagatingTol classifies a Bloch factor as propagating when its modulus
// is within this distance of 1.
const propagatingTol = 1e-6

// LeadModes holds the propagating Bloch modes of a periodic lead at one
// energy, split by direction of travel.
type LeadModes struct {
	// Lambdas are the Bloch factors λ = e^{ik·a} of the propagating modes.
	Lambdas []complex128
	// Phis is the layer-sized mode-vector matrix; column j is the
	// (normalized) cell wave function of mode j.
	Phis *linalg.Matrix
	// Velocities are the group velocities in eV·nm/ħ; positive values
	// travel toward +x.
	Velocities []float64
}

// NumRight returns the number of right-moving (v > 0) modes.
func (m *LeadModes) NumRight() int {
	n := 0
	for _, v := range m.Velocities {
		if v > 0 {
			n++
		}
	}
	return n
}

// NumLeft returns the number of left-moving (v < 0) modes.
func (m *LeadModes) NumLeft() int { return len(m.Velocities) - m.NumRight() }

// Modes solves the lead Bloch problem at energy e for a lead with
// principal-layer block h00, forward coupling h01 (toward +x) and layer
// period a (nm). The quadratic eigenproblem is linearized into the pencil
//
//	A·x = λ·B·x,  A = ⎡ 0    I   ⎤  B = ⎡ I  0 ⎤   x = ⎡ φ  ⎤
//	              ⎣ −U†  −(D−E)⎦      ⎣ 0  U ⎦       ⎣ λφ ⎦
//
// and solved via a spectral transform with a generic complex shift σ:
// eig((A−σB)⁻¹B) = μ, λ = σ + 1/μ, which tolerates singular U (evanescent
// modes at λ → ∞ map to μ → 0).
func Modes(h00, h01 *linalg.Matrix, e float64, a float64) (*LeadModes, error) {
	eig, sigma, err := pencilEig(h00, h01, e)
	if err != nil {
		return nil, err
	}
	return modesFromEig(eig, sigma, h01, h00.Rows, a)
}

// pencilEig builds the companion pencil of the lead Bloch problem at
// energy e, applies the σ-shifted spectral transform, and returns its
// eigendecomposition together with the shift used. Pencil eigenvalues
// recover as λ = σ + 1/μ.
func pencilEig(h00, h01 *linalg.Matrix, e float64) (*linalg.Eigen, complex128, error) {
	n := h00.Rows
	if h00.Cols != n || h01.Rows != n || h01.Cols != n {
		return nil, 0, fmt.Errorf("wavefunction: lead blocks must be square and same-sized")
	}
	bigA := linalg.New(2*n, 2*n)
	bigB := linalg.New(2*n, 2*n)
	for i := 0; i < n; i++ {
		bigA.Set(i, n+i, 1)
		bigB.Set(i, i, 1)
	}
	u := h01
	ud := h01.ConjTranspose()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			bigA.Set(n+i, j, -ud.At(i, j))
			d := -h00.At(i, j)
			if i == j {
				d += complex(e, 0)
			}
			bigA.Set(n+i, n+j, d) // −(D−E) = E−D
			bigB.Set(n+i, n+j, u.At(i, j))
		}
	}
	// Generic complex shifts: any σ off the pencil spectrum works; they
	// are fixed for reproducibility, with one retry on collision.
	for _, sigma := range []complex128{0.5718 + 0.8391i, 1.3141 - 0.2718i} {
		shifted := bigA.Sub(bigB.Scale(sigma))
		f, err := linalg.Factor(shifted)
		if err != nil {
			continue
		}
		sb := linalg.New(bigB.Rows, bigB.Cols)
		f.SolveInto(sb, bigB)
		eig, err := linalg.Eig(sb)
		if err != nil {
			return nil, 0, fmt.Errorf("wavefunction: mode eigenproblem failed: %w", err)
		}
		return eig, sigma, nil
	}
	return nil, 0, fmt.Errorf("wavefunction: spectral transform singular for all shifts")
}

// allLambdas returns every finite Bloch factor of the lead at energy e
// (propagating and evanescent in both directions).
func allLambdas(h00, h01 *linalg.Matrix, e float64) ([]complex128, error) {
	eig, sigma, err := pencilEig(h00, h01, e)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, 0, len(eig.Values))
	for _, mu := range eig.Values {
		if cmplx.Abs(mu) < 1e-12 {
			continue // λ → ∞
		}
		out = append(out, sigma+1/mu)
	}
	return out, nil
}

func modesFromEig(eig *linalg.Eigen, sigma complex128, u *linalg.Matrix, n int, a float64) (*LeadModes, error) {
	modes := &LeadModes{}
	var phiCols [][]complex128
	for j, mu := range eig.Values {
		if cmplx.Abs(mu) < 1e-12 {
			continue // λ → ∞: strongly evanescent
		}
		lambda := sigma + 1/mu
		if math.Abs(cmplx.Abs(lambda)-1) > propagatingTol {
			continue // evanescent
		}
		// Extract and normalize φ = x[:n].
		phi := make([]complex128, n)
		var norm float64
		for i := 0; i < n; i++ {
			phi[i] = eig.Vectors.At(i, j)
			norm += real(phi[i])*real(phi[i]) + imag(phi[i])*imag(phi[i])
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for i := range phi {
			phi[i] /= complex(norm, 0)
		}
		// Group velocity: v = −(2a/ħ)·Im(λ·φ†Uφ).
		var phiU complex128
		for i := 0; i < n; i++ {
			var s complex128
			for k := 0; k < n; k++ {
				s += u.At(i, k) * phi[k]
			}
			phiU += cmplx.Conj(phi[i]) * s
		}
		v := -2 * a * imag(lambda*phiU)
		modes.Lambdas = append(modes.Lambdas, lambda)
		modes.Velocities = append(modes.Velocities, v)
		phiCols = append(phiCols, phi)
	}
	modes.Phis = linalg.New(n, len(phiCols))
	for j, col := range phiCols {
		for i := 0; i < n; i++ {
			modes.Phis.Set(i, j, col[i])
		}
	}
	return modes, nil
}
