package wavefunction

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/perf"
	"repro/internal/sparse"
	"repro/internal/tb"
)

func TestModesSingleBandChain(t *testing.T) {
	const eps0, hop, a = 0.1, -1.0, 0.5
	h00 := linalg.FromRows([][]complex128{{complex(eps0, 0)}})
	h01 := linalg.FromRows([][]complex128{{complex(hop, 0)}})
	for _, e := range []float64{eps0 - 1.2, eps0, eps0 + 0.8, eps0 + 1.7} {
		m, err := Modes(h00, h01, e, a)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if len(m.Lambdas) != 2 {
			t.Fatalf("E=%g: found %d propagating modes, want 2", e, len(m.Lambdas))
		}
		if m.NumRight() != 1 || m.NumLeft() != 1 {
			t.Fatalf("E=%g: %d right / %d left movers, want 1/1", e, m.NumRight(), m.NumLeft())
		}
		// λ must be e^{±ika} with cos(ka) = (E−ε)/2t.
		coska := (e - eps0) / (2 * hop)
		ka := math.Acos(coska)
		vWant := math.Abs(-2 * hop * a * math.Sin(ka))
		for i, l := range m.Lambdas {
			if math.Abs(real(l)-coska) > 1e-8 || math.Abs(math.Abs(imag(l))-math.Abs(math.Sin(ka))) > 1e-8 {
				t.Fatalf("E=%g: λ=%v inconsistent with cos(ka)=%g", e, l, coska)
			}
			if math.Abs(math.Abs(m.Velocities[i])-vWant) > 1e-8 {
				t.Fatalf("E=%g: |v|=%g, want %g", e, math.Abs(m.Velocities[i]), vWant)
			}
		}
	}
}

func TestModesOutsideBand(t *testing.T) {
	h00 := linalg.FromRows([][]complex128{{0}})
	h01 := linalg.FromRows([][]complex128{{-1}})
	m, err := Modes(h00, h01, 3.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Lambdas) != 0 {
		t.Fatalf("found %d propagating modes outside the band", len(m.Lambdas))
	}
}

func TestModesCountMatchesBands(t *testing.T) {
	// For a multi-band AGNR lead, the number of right-movers must equal
	// the number of bands crossing the energy (counting each crossing).
	s, err := lattice.NewArmchairGNR(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.Graphene(), tb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h00, h01 := tb.LeadBlocks(h, false)
	bands, err := tb.LeadBands(h00, h01, s.LayerPeriod, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{0.5, 1.3, 2.4} {
		crossings := 0
		for n := 0; n < bands.NumBands(); n++ {
			for ik := 0; ik+1 < len(bands.K); ik++ {
				if (bands.Energies[ik][n]-e)*(bands.Energies[ik+1][n]-e) < 0 {
					crossings++
				}
			}
		}
		wantRight := crossings / 2
		m, err := Modes(h00, h01, e, s.LayerPeriod)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		if m.NumRight() != wantRight || m.NumLeft() != wantRight {
			t.Fatalf("E=%g: %d right / %d left movers, want %d each",
				e, m.NumRight(), m.NumLeft(), wantRight)
		}
	}
}

func TestModesLambdaUnitary(t *testing.T) {
	// Propagating Bloch factors must sit on the unit circle and come in
	// conjugate pairs for a real-symmetric lead.
	h00 := linalg.FromRows([][]complex128{{0.2, -0.4}, {-0.4, 0.1}})
	h01 := linalg.FromRows([][]complex128{{-0.9, 0.1}, {0.05, -0.8}})
	m, err := Modes(h00, h01, 0.3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range m.Lambdas {
		if math.Abs(cmplx.Abs(l)-1) > 1e-6 {
			t.Fatalf("propagating λ=%v not on unit circle", l)
		}
	}
	if m.NumRight() != m.NumLeft() {
		t.Fatalf("asymmetric mode counts: %d right, %d left", m.NumRight(), m.NumLeft())
	}
}

func buildDisorderedWire(t *testing.T) *sparse.BlockTridiag {
	t.Helper()
	s, err := lattice.NewZincblendeNanowire(0.5431, 5, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pot := make([]float64, s.NAtoms())
	rng := rand.New(rand.NewSource(77))
	for i, a := range s.Atoms {
		if a.Layer >= 1 && a.Layer <= 3 {
			pot[i] = 0.2 + 0.1*rng.Float64()
		}
	}
	h, err := tb.Assemble(s, tb.SiliconSP3S(), tb.Options{PassivationShift: 10, Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestWFMatchesNEGF is the central cross-formalism validation: the
// wave-function solver and the RGF NEGF solver must produce identical
// transmission, DOS, and spectral functions on a disordered device.
func TestWFMatchesNEGF(t *testing.T) {
	h := buildDisorderedWire(t)
	wf, err := NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := negf.NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{1.1, 1.7, 2.3, 2.9} {
		rw, err := wf.Solve(e, true)
		if err != nil {
			t.Fatalf("WF E=%g: %v", e, err)
		}
		rg, err := gf.Solve(e, true)
		if err != nil {
			t.Fatalf("NEGF E=%g: %v", e, err)
		}
		if math.Abs(rw.T-rg.T) > 1e-8*(1+rg.T) {
			t.Fatalf("E=%g: WF T=%g vs NEGF T=%g", e, rw.T, rg.T)
		}
		for i := range rw.SpectralL {
			if math.Abs(rw.SpectralL[i]-rg.SpectralL[i]) > 1e-6*(1+rg.SpectralL[i]) {
				t.Fatalf("E=%g: SpectralL[%d] %g vs %g", e, i, rw.SpectralL[i], rg.SpectralL[i])
			}
			if math.Abs(rw.SpectralR[i]-rg.SpectralR[i]) > 1e-6*(1+rg.SpectralR[i]) {
				t.Fatalf("E=%g: SpectralR[%d] %g vs %g", e, i, rw.SpectralR[i], rg.SpectralR[i])
			}
		}
	}
}

// TestWFCheaperThanRGF pins the cost claim of the formalism: for the same
// device and energy, the wave-function transmission solve must execute
// fewer flops than the RGF solve.
func TestWFCheaperThanRGF(t *testing.T) {
	h := buildDisorderedWire(t)
	wf, err := NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := negf.NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	const e = 1.8
	perf.ResetFlops()
	if _, err := wf.Solve(e, false); err != nil {
		t.Fatal(err)
	}
	wfFlops := perf.ResetFlops()
	if _, err := gf.Solve(e, false); err != nil {
		t.Fatal(err)
	}
	rgfFlops := perf.ResetFlops()
	if wfFlops >= rgfFlops {
		t.Fatalf("WF solve cost %d flops, RGF %d — WF should be cheaper", wfFlops, rgfFlops)
	}
}

func TestSolveBlocksMatchesDense(t *testing.T) {
	// Block-Thomas on a random non-Hermitian shifted system vs dense LU.
	rng := rand.New(rand.NewSource(55))
	sizes := []int{3, 2, 4, 3}
	l := len(sizes)
	diag := make([]*linalg.Matrix, l)
	upper := make([]*linalg.Matrix, l-1)
	lower := make([]*linalg.Matrix, l-1)
	randM := func(r, c int) *linalg.Matrix {
		m := linalg.New(r, c)
		for i := range m.Data {
			m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		return m
	}
	for i, n := range sizes {
		diag[i] = randM(n, n)
		for k := 0; k < n; k++ {
			diag[i].Set(k, k, diag[i].At(k, k)+complex(6, 1))
		}
	}
	for i := 0; i < l-1; i++ {
		upper[i] = randM(sizes[i], sizes[i+1])
		lower[i] = randM(sizes[i+1], sizes[i])
	}
	btd, err := sparse.NewBlockTridiag(diag, upper, lower)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]*linalg.Matrix, l)
	for i, n := range sizes {
		rhs[i] = randM(n, 2)
	}
	x, err := btd.SolveBlocks(rhs)
	if err != nil {
		t.Fatal(err)
	}
	// Dense reference.
	dense := btd.Dense()
	off := btd.Offsets()
	bAll := linalg.New(btd.N(), 2)
	for i := range rhs {
		bAll.SetSubmatrix(off[i], 0, rhs[i])
	}
	want, err := linalg.Solve(dense, bAll)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !x[i].Equal(want.Submatrix(off[i], 0, sizes[i], 2), 1e-9) {
			t.Fatalf("block-Thomas block %d disagrees with dense solve", i)
		}
	}
}

func TestSolveBlocksValidation(t *testing.T) {
	d := []*linalg.Matrix{linalg.Identity(2), linalg.Identity(2)}
	u := []*linalg.Matrix{linalg.New(2, 2)}
	lo := []*linalg.Matrix{linalg.New(2, 2)}
	btd, err := sparse.NewBlockTridiag(d, u, lo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := btd.SolveBlocks([]*linalg.Matrix{linalg.New(2, 1)}); err == nil {
		t.Fatal("accepted wrong RHS block count")
	}
	if _, err := btd.SolveBlocks([]*linalg.Matrix{linalg.New(2, 1), linalg.New(3, 1)}); err == nil {
		t.Fatal("accepted wrong RHS block shape")
	}
}

func TestWFTransmissionCleanChain(t *testing.T) {
	s, err := lattice.NewLinearChain(0.5, 6)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{-1.5, 0, 1.2} {
		T, err := wf.Transmission(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(T-1) > 1e-4 {
			t.Fatalf("clean chain WF T(%g) = %g", e, T)
		}
	}
}

// TestComplexBandsChainAnalytic pins the complex band structure of the
// single-band chain against the closed form: in the gap |E−ε₀| > 2|t| the
// decay constant satisfies cosh(κ·a) = |E−ε₀| / (2|t|).
func TestComplexBandsChainAnalytic(t *testing.T) {
	const eps0, hop, a = 0.0, -1.0, 0.5
	h00 := linalg.FromRows([][]complex128{{complex(eps0, 0)}})
	h01 := linalg.FromRows([][]complex128{{complex(hop, 0)}})
	for _, e := range []float64{2.2, 2.8, 3.5, -2.4} {
		kappa, ok := MinDecay(h00, h01, e, a)
		if !ok {
			t.Fatalf("E=%g: no evanescent branch found in the gap", e)
		}
		want := math.Acosh(math.Abs(e-eps0)/(2*math.Abs(hop))) / a
		if math.Abs(kappa-want) > 1e-6*(1+want) {
			t.Fatalf("E=%g: κ = %g, want %g", e, kappa, want)
		}
	}
}

// TestComplexBandsDecayGrowsIntoGap: deeper into the gap, the tunneling
// decay constant must increase monotonically.
func TestComplexBandsDecayGrowsIntoGap(t *testing.T) {
	h00 := linalg.FromRows([][]complex128{{0}})
	h01 := linalg.FromRows([][]complex128{{-1}})
	prev := 0.0
	for _, e := range []float64{2.05, 2.2, 2.5, 3.0, 4.0} {
		kappa, ok := MinDecay(h00, h01, e, 0.5)
		if !ok {
			t.Fatalf("E=%g: no evanescent branch", e)
		}
		if kappa <= prev {
			t.Fatalf("decay constant not increasing into the gap at E=%g", e)
		}
		prev = kappa
	}
}

// TestComplexBandsInsideBand: inside the band the slowest "evanescent"
// branch of the pure chain does not exist (the only finite solutions are
// propagating), so ComplexBands returns none.
func TestComplexBandsInsideBand(t *testing.T) {
	h00 := linalg.FromRows([][]complex128{{0}})
	h01 := linalg.FromRows([][]complex128{{-1}})
	modes, err := ComplexBands(h00, h01, 0.7, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 0 {
		t.Fatalf("found %d evanescent modes inside the band", len(modes))
	}
}

// TestComplexBandsGNRGapMatchesTunneling: in the 7-AGNR gap, transmission
// through length L must scale as exp(−2·κ_min·L) — complex band structure
// and transport must agree quantitatively.
func TestComplexBandsGNRGapMatchesTunneling(t *testing.T) {
	build := func(cells int) (*sparse.BlockTridiag, float64) {
		s, err := lattice.NewArmchairGNR(7, cells)
		if err != nil {
			t.Fatal(err)
		}
		h, err := tb.Assemble(s, tb.Graphene(), tb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return h, s.LayerPeriod
	}
	h8, period := build(8)
	h00, h01 := tb.LeadBlocks(h8, false)
	const e = 0.1 // inside the ~1.3 eV gap
	kappa, ok := MinDecay(h00, h01, e, period)
	if !ok {
		t.Fatal("no evanescent branch in the AGNR gap")
	}
	tAt := func(h *sparse.BlockTridiag) float64 {
		sol, err := NewSolver(h, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		T, err := sol.Transmission(e)
		if err != nil {
			t.Fatal(err)
		}
		return T
	}
	h12, _ := build(12)
	t8, t12 := tAt(h8), tAt(h12)
	if t8 <= 0 || t12 <= 0 || t12 >= t8 {
		t.Fatalf("gap tunneling not decaying: T(8)=%g, T(12)=%g", t8, t12)
	}
	// ln(T8/T12) ≈ 2·κ·ΔL with ΔL = 4 periods.
	got := math.Log(t8/t12) / (2 * 4 * period)
	if math.Abs(got-kappa) > 0.15*kappa {
		t.Fatalf("tunneling decay %g 1/nm vs complex-band κ %g 1/nm", got, kappa)
	}
}
