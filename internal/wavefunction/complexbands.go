package wavefunction

import (
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/linalg"
)

// EvanescentMode is one decaying Bloch solution at a fixed energy: the
// complex band structure of the contact material. Evanescent modes govern
// tunneling through gaps and barriers — their decay constants set
// subthreshold leakage in the FET application.
type EvanescentMode struct {
	// Lambda is the Bloch factor, |λ| < 1 (decaying toward +x).
	Lambda complex128
	// Kappa is the decay constant −ln|λ|/a in 1/nm.
	Kappa float64
}

// ComplexBands solves the lead Bloch problem at energy e and returns the
// decaying (toward +x) solutions sorted by decay constant, slowest first.
// The slowest mode dominates tunneling: transmission through a barrier of
// width W scales as exp(−2·κ_min·W).
func ComplexBands(h00, h01 *linalg.Matrix, e, a float64) ([]EvanescentMode, error) {
	lambdas, err := allLambdas(h00, h01, e)
	if err != nil {
		return nil, err
	}
	var out []EvanescentMode
	for _, l := range lambdas {
		al := cmplx.Abs(l)
		if al < 1-propagatingTol && al > 1e-12 {
			out = append(out, EvanescentMode{Lambda: l, Kappa: -math.Log(al) / a})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kappa < out[j].Kappa })
	return out, nil
}

// MinDecay returns the smallest decay constant at energy e — the branch
// that controls tunneling; ok is false when no evanescent branch exists.
func MinDecay(h00, h01 *linalg.Matrix, e, a float64) (kappa float64, ok bool) {
	modes, err := ComplexBands(h00, h01, e, a)
	if err != nil || len(modes) == 0 {
		return 0, false
	}
	return modes[0].Kappa, true
}
