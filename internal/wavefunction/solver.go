package wavefunction

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// Solver runs ballistic wave-function (QTBM) calculations on a fixed
// device Hamiltonian. It shares the contact self-energy machinery with the
// NEGF package — the two formalisms differ only in how the open-boundary
// linear system is solved: here a single block-Thomas direct solve for the
// two contact column blocks, instead of the layer-recursive inversion of
// the RGF algorithm. Results agree to solver precision; cost does not,
// which is the point.
type Solver struct {
	// H is the Hermitian device Hamiltonian in block-tridiagonal layer form.
	H *sparse.BlockTridiag
	// Leads are the semi-infinite contacts.
	Leads *negf.Leads
	// Eta is the imaginary energy broadening in eV (typical: 1e-6).
	Eta float64
	// SolveStrategy performs the open-boundary block-tridiagonal solve.
	// Nil selects the serial block-Thomas algorithm; the splitsolve
	// package provides domain-decomposed strategies. The context carries
	// cancellation from the enclosing parallel energy sweep.
	SolveStrategy func(context.Context, *sparse.BlockTridiag, []*linalg.Matrix) ([]*linalg.Matrix, error)
	// Cache optionally memoizes the contact self-energies across solves
	// (valid while the lead blocks stay fixed).
	Cache *negf.SelfEnergyCache
}

// NewSolver builds a wave-function solver with flat-band leads continued
// from the device end layers.
func NewSolver(h *sparse.BlockTridiag, eta float64) (*Solver, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("wavefunction: broadening must be positive, got %g", eta)
	}
	leads, err := negf.LeadsFromDevice(h)
	if err != nil {
		return nil, err
	}
	return &Solver{H: h, Leads: leads, Eta: eta}, nil
}

// Solve computes transmission and (optionally) the contact-resolved
// spectral functions at energy e. The returned Result uses the same type
// as the NEGF package so downstream integration code is solver-agnostic.
// In this formalism the density of states is assembled from the ballistic
// identity A = A_L + A_R rather than from diag(G).
func (s *Solver) Solve(e float64, density bool) (*negf.Result, error) {
	return s.SolveCtx(context.Background(), e, density)
}

// SolveCtx is Solve with cooperative cancellation: the solve aborts
// between its phases (self-energies, injection, linear solve) when ctx is
// canceled, and passes ctx on to the SolveStrategy so a domain-decomposed
// solve can abort between its stages too.
func (s *Solver) SolveCtx(ctx context.Context, e float64, density bool) (*negf.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	z := complex(e, s.Eta)
	sigL, sigR, err := negf.CachedSelfEnergies(s.Cache, s.Leads, z)
	if err != nil {
		return nil, err
	}
	// Per-solve workspace for the broadenings and the transmission
	// contraction; the shifted system matrix also lives here since the
	// solve strategies only read it.
	ws := linalg.GetWorkspace()
	defer ws.Release()
	a := sparse.ShiftedFromHermitianWS(s.H, z, ws)
	nl := a.Layers()
	a.AddScaledToDiagBlock(0, sigL, -1)
	a.AddScaledToDiagBlock(nl-1, sigR, -1)
	gamL := ws.Get(sigL.Rows, sigL.Cols)
	negf.BroadeningInto(gamL, sigL)
	gamR := ws.Get(sigR.Rows, sigR.Cols)
	negf.BroadeningInto(gamR, sigR)

	// Injection vectors: the broadening matrices are positive
	// semidefinite with rank equal to the number of (effectively)
	// propagating contact modes, so Γ = Σᵢ wᵢwᵢ† with only a handful of
	// significant wᵢ. Solving the open system against those few columns —
	// instead of full contact blocks — is the cost advantage of the
	// wave-function formalism that the paper exploits.
	wL, err := injectionVectors(gamL)
	if err != nil {
		return nil, fmt.Errorf("wavefunction: left injection: %w", err)
	}
	var wR *linalg.Matrix
	width := wL.Cols
	if density {
		wR, err = injectionVectors(gamR)
		if err != nil {
			return nil, fmt.Errorf("wavefunction: right injection: %w", err)
		}
		width += wR.Cols
	}
	res := &negf.Result{E: e}
	if width == 0 {
		// No open or evanescent channels at this energy: everything is 0.
		res.DOS = make([]float64, s.H.N())
		res.SpectralL = make([]float64, s.H.N())
		res.SpectralR = make([]float64, s.H.N())
		return res, nil
	}
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	rhs := make([]*linalg.Matrix, nl)
	for i := 0; i < nl; i++ {
		rhs[i] = linalg.New(s.H.LayerSize(i), width)
	}
	for k := 0; k < n0; k++ {
		for j := 0; j < wL.Cols; j++ {
			rhs[0].Set(k, j, wL.At(k, j))
		}
	}
	if density {
		for k := 0; k < nN; k++ {
			for j := 0; j < wR.Cols; j++ {
				rhs[nl-1].Set(k, wL.Cols+j, wR.At(k, j))
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	solve := s.SolveStrategy
	if solve == nil {
		solve = func(_ context.Context, a *sparse.BlockTridiag, rhs []*linalg.Matrix) ([]*linalg.Matrix, error) {
			return a.SolveBlocks(rhs)
		}
	}
	stop := perf.StartPhase("wf-solve")
	x, err := solve(ctx, a, rhs)
	stop()
	if err != nil {
		return nil, fmt.Errorf("wavefunction: open-boundary solve: %w", err)
	}

	// T = Tr[Γ_R·G·Γ_L·G†] = Σᵢ (G·wᵢ)†_N-1 · Γ_R · (G·wᵢ)_N-1, contracted
	// as Tr[(Γ_R·gw)·gw†] so the adjoint is never materialized and the
	// trace costs O(n·rank).
	gwL := ws.Get(nN, wL.Cols)
	for k := 0; k < nN; k++ {
		copy(gwL.Data[k*wL.Cols:(k+1)*wL.Cols], x[nl-1].Data[k*width:k*width+wL.Cols])
	}
	ggw := ws.Get(nN, wL.Cols)
	linalg.MulInto(ggw, gamR, linalg.NoTrans, gwL, linalg.NoTrans)
	res.T = real(linalg.TraceMulConj(ggw, gwL))
	ws.Put(ggw)
	ws.Put(gwL)

	if density {
		off := s.H.Offsets()
		res.SpectralL = make([]float64, s.H.N())
		res.SpectralR = make([]float64, s.H.N())
		res.DOS = make([]float64, s.H.N())
		for i := 0; i < nl; i++ {
			ni := s.H.LayerSize(i)
			for k := 0; k < ni; k++ {
				var sl, sr float64
				for j := 0; j < wL.Cols; j++ {
					v := x[i].At(k, j)
					sl += real(v)*real(v) + imag(v)*imag(v)
				}
				for j := 0; j < wR.Cols; j++ {
					v := x[i].At(k, wL.Cols+j)
					sr += real(v)*real(v) + imag(v)*imag(v)
				}
				res.SpectralL[off[i]+k] = sl
				res.SpectralR[off[i]+k] = sr
				res.DOS[off[i]+k] = (sl + sr) / (2 * math.Pi)
			}
		}
	}
	return res, nil
}

// injectionRankCutoff discards Γ eigenmodes whose broadening is below this
// fraction of the largest one; the kept set spans the propagating modes
// plus the slowly decaying evanescent tails that still matter numerically.
const injectionRankCutoff = 1e-12

// injectionVectors spectrally factorizes a broadening matrix,
// Γ = Σᵢ λᵢvᵢvᵢ†, and returns the weighted columns wᵢ = √λᵢ·vᵢ above the
// rank cutoff, so that Γ ≈ W·W†.
func injectionVectors(gamma *linalg.Matrix) (*linalg.Matrix, error) {
	eig, err := linalg.EigH(gamma)
	if err != nil {
		return nil, err
	}
	n := gamma.Rows
	var maxLam float64
	for _, l := range eig.Values {
		if l > maxLam {
			maxLam = l
		}
	}
	cols := make([]int, 0, n)
	for j, l := range eig.Values {
		if l > injectionRankCutoff*maxLam && l > 0 {
			cols = append(cols, j)
		}
	}
	w := linalg.New(n, len(cols))
	for jj, j := range cols {
		s := complex(math.Sqrt(eig.Values[j]), 0)
		for i := 0; i < n; i++ {
			w.Set(i, jj, s*eig.Vectors.At(i, j))
		}
	}
	return w, nil
}

// Transmission is a convenience wrapper returning only T(e).
func (s *Solver) Transmission(e float64) (float64, error) {
	r, err := s.Solve(e, false)
	if err != nil {
		return 0, err
	}
	return r.T, nil
}
