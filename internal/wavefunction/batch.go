package wavefunction

import (
	"context"
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/perf"
	"repro/internal/sparse"
)

// SolveBatch runs the batched wave-function solve at a batch of energies.
// See SolveBatchCtx.
func (s *Solver) SolveBatch(es []float64, density bool) ([]*negf.Result, []error) {
	return s.SolveBatchCtx(context.Background(), es, density)
}

// SolveBatchCtx solves every energy of es through one batched
// block-Thomas pass and returns per-energy results and errors
// positionally, each failed element carrying the error the width-1
// SolveCtx would have returned. The contact stage — broadenings and
// injection eigenproblems — stays per energy (the injection rank is
// ragged across the batch); the shifted-system assembly and the
// open-boundary linear solve, the dominant direct-solver costs, advance
// the whole batch one block-column at a time through panel storage.
// Element j is bitwise-identical to SolveCtx(es[j]), reported flops
// included, even on per-element failure paths (DESIGN.md §14).
//
// A width-1 batch delegates to SolveCtx, and a Solver with a custom
// SolveStrategy (domain-decomposed solves) falls back to looping SolveCtx:
// batching composes with the serial block-Thomas strategy only.
func (s *Solver) SolveBatchCtx(ctx context.Context, es []float64, density bool) ([]*negf.Result, []error) {
	results := make([]*negf.Result, len(es))
	errs := make([]error, len(es))
	if len(es) == 0 {
		return results, errs
	}
	if len(es) == 1 || s.SolveStrategy != nil {
		for j, e := range es {
			results[j], errs[j] = s.SolveCtx(ctx, e, density)
		}
		return results, errs
	}
	perf.GetCounter(fmt.Sprintf("batch-width-%d", len(es))).Add(1)

	ws := linalg.GetWorkspace()
	defer ws.Release()

	nl := s.H.Layers()
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)

	// Self-energies per energy through the shared cache, compacting the
	// batch to the elements that survived the contact stage.
	zs := make([]complex128, 0, len(es))
	idxs := make([]int, 0, len(es))
	sigLs := make([]*linalg.Matrix, 0, len(es))
	sigRs := make([]*linalg.Matrix, 0, len(es))
	for j, e := range es {
		if err := ctx.Err(); err != nil {
			errs[j] = err
			continue
		}
		z := complex(e, s.Eta)
		sigL, sigR, err := negf.CachedSelfEnergies(s.Cache, s.Leads, z)
		if err != nil {
			errs[j] = err
			continue
		}
		zs = append(zs, z)
		idxs = append(idxs, j)
		sigLs = append(sigLs, sigL)
		sigRs = append(sigRs, sigR)
	}
	if len(idxs) == 0 {
		return results, errs
	}

	// Batched shifted-system assembly. Like the width-1 solve, assembly
	// precedes the injection stage, so an element that later fails its
	// injection eigenproblem has paid the same assembly flops either way.
	w := len(idxs)
	as := sparse.ShiftedBatchFromHermitianWS(s.H, zs, ws)
	for b := range as {
		as[b].AddScaledToDiagBlock(0, sigLs[b], -1)
		as[b].AddScaledToDiagBlock(nl-1, sigRs[b], -1)
	}

	// Broadenings, injection vectors, and the (ragged-width) RHS columns,
	// per element. Zero-channel elements complete immediately like the
	// width-1 path; failures drop out of the solve batch.
	gamRP := ws.GetPanel(w, nN, nN) // BroadeningInto fully overwrites
	countPanel(w)
	gamL := ws.Get(n0, n0)
	solveAs := make([]*sparse.BlockTridiag, 0, w)
	solveIdxs := make([]int, 0, w)
	gamRs := make([]*linalg.Matrix, 0, w)
	wLs := make([]*linalg.Matrix, 0, w)
	wRs := make([]*linalg.Matrix, 0, w)
	rhss := make([][]*linalg.Matrix, 0, w)
	for b := 0; b < w; b++ {
		j := idxs[b]
		negf.BroadeningInto(gamL, sigLs[b])
		gamR := gamRP.Block(b)
		negf.BroadeningInto(gamR, sigRs[b])
		wL, err := injectionVectors(gamL)
		if err != nil {
			errs[j] = fmt.Errorf("wavefunction: left injection: %w", err)
			continue
		}
		var wR *linalg.Matrix
		width := wL.Cols
		if density {
			wR, err = injectionVectors(gamR)
			if err != nil {
				errs[j] = fmt.Errorf("wavefunction: right injection: %w", err)
				continue
			}
			width += wR.Cols
		}
		if width == 0 {
			// No open or evanescent channels at this energy: everything is 0.
			res := &negf.Result{E: es[j]}
			res.DOS = make([]float64, s.H.N())
			res.SpectralL = make([]float64, s.H.N())
			res.SpectralR = make([]float64, s.H.N())
			results[j] = res
			continue
		}
		rhs := make([]*linalg.Matrix, nl)
		for i := 0; i < nl; i++ {
			rhs[i] = ws.Get(s.H.LayerSize(i), width)
		}
		for k := 0; k < n0; k++ {
			for jj := 0; jj < wL.Cols; jj++ {
				rhs[0].Set(k, jj, wL.At(k, jj))
			}
		}
		if density {
			for k := 0; k < nN; k++ {
				for jj := 0; jj < wR.Cols; jj++ {
					rhs[nl-1].Set(k, wL.Cols+jj, wR.At(k, jj))
				}
			}
		}
		solveAs = append(solveAs, as[b])
		solveIdxs = append(solveIdxs, j)
		gamRs = append(gamRs, gamR)
		wLs = append(wLs, wL)
		wRs = append(wRs, wR)
		rhss = append(rhss, rhs)
	}
	ws.Put(gamL)
	if len(solveIdxs) == 0 {
		return results, errs
	}
	if err := ctx.Err(); err != nil {
		for _, j := range solveIdxs {
			errs[j] = err
		}
		return results, errs
	}

	// Batched open-boundary solve over the survivors.
	stop := perf.StartPhase("wf-solve")
	xs, serrs := sparse.SolveBlocksBatchWS(solveAs, rhss, ws)
	stop()

	// Per-element contraction and density assembly, identical to SolveCtx.
	off := s.H.Offsets()
	for b, j := range solveIdxs {
		if serrs[b] != nil {
			errs[j] = fmt.Errorf("wavefunction: open-boundary solve: %w", serrs[b])
			continue
		}
		x := xs[b]
		wL, wR, gamR := wLs[b], wRs[b], gamRs[b]
		width := wL.Cols
		if density {
			width += wR.Cols
		}
		res := &negf.Result{E: es[j]}
		gwL := ws.Get(nN, wL.Cols)
		for k := 0; k < nN; k++ {
			copy(gwL.Data[k*wL.Cols:(k+1)*wL.Cols], x[nl-1].Data[k*width:k*width+wL.Cols])
		}
		ggw := ws.Get(nN, wL.Cols)
		linalg.VecMulInto(ggw, gamR, linalg.NoTrans, gwL, linalg.NoTrans)
		res.T = real(linalg.TraceMulConj(ggw, gwL))
		ws.Put(ggw)
		ws.Put(gwL)
		if density {
			res.SpectralL = make([]float64, s.H.N())
			res.SpectralR = make([]float64, s.H.N())
			res.DOS = make([]float64, s.H.N())
			for i := 0; i < nl; i++ {
				ni := s.H.LayerSize(i)
				for k := 0; k < ni; k++ {
					var sl, sr float64
					for jj := 0; jj < wL.Cols; jj++ {
						v := x[i].At(k, jj)
						sl += real(v)*real(v) + imag(v)*imag(v)
					}
					for jj := 0; jj < wR.Cols; jj++ {
						v := x[i].At(k, wL.Cols+jj)
						sr += real(v)*real(v) + imag(v)*imag(v)
					}
					res.SpectralL[off[i]+k] = sl
					res.SpectralR[off[i]+k] = sr
					res.DOS[off[i]+k] = (sl + sr) / (2 * math.Pi)
				}
			}
		}
		results[j] = res
	}
	return results, errs
}

var (
	panelLoads  = perf.GetCounter("panel-loads")
	panelReuses = perf.GetCounter("panel-reuses")
)

// countPanel records one panel checkout of the given batch width.
func countPanel(w int) {
	panelLoads.Add(1)
	if w > 1 {
		panelReuses.Add(int64(w - 1))
	}
}
