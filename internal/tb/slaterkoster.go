package tb

import "math"

// BondParams holds the Slater-Koster two-center integrals (in eV) for a
// *directed* bond: the "first" orbital sits on the source atom, the
// "second" on the target. For heteropolar materials the anion→cation and
// cation→anion tables differ (e.g. SpSigma = V(s_source p_target σ) versus
// PsSigma = V(p_source s_target σ)); Reverse derives one from the other.
type BondParams struct {
	SsSigma float64 // s–s σ

	SpSigma float64 // s(source)–p(target) σ
	PsSigma float64 // p(source)–s(target) σ

	PpSigma float64 // p–p σ
	PpPi    float64 // p–p π

	SstarSstarSigma float64 // s*–s* σ
	SSstarSigma     float64 // s(source)–s*(target) σ
	SstarSSigma     float64 // s*(source)–s(target) σ
	SstarPSigma     float64 // s*(source)–p(target) σ
	PSstarSigma     float64 // p(source)–s*(target) σ

	SdSigma     float64 // s(source)–d(target) σ
	DsSigma     float64 // d(source)–s(target) σ
	SstarDSigma float64 // s*(source)–d(target) σ
	DSstarSigma float64 // d(source)–s*(target) σ

	PdSigma float64 // p(source)–d(target) σ
	DpSigma float64 // d(source)–p(target) σ
	PdPi    float64 // p(source)–d(target) π
	DpPi    float64 // d(source)–p(target) π

	DdSigma float64 // d–d σ
	DdPi    float64 // d–d π
	DdDelta float64 // d–d δ
}

// Reverse returns the parameters for the opposite bond direction.
func (b BondParams) Reverse() BondParams {
	r := b
	r.SpSigma, r.PsSigma = b.PsSigma, b.SpSigma
	r.SSstarSigma, r.SstarSSigma = b.SstarSSigma, b.SSstarSigma
	r.SstarPSigma, r.PSstarSigma = b.PSstarSigma, b.SstarPSigma
	r.SdSigma, r.DsSigma = b.DsSigma, b.SdSigma
	r.SstarDSigma, r.DSstarSigma = b.DSstarSigma, b.SstarDSigma
	r.PdSigma, r.DpSigma = b.DpSigma, b.PdSigma
	r.PdPi, r.DpPi = b.DpPi, b.PdPi
	return r
}

// skBlock fills hop, a norb×norb slice-of-rows, with the Slater-Koster
// hopping matrix ⟨α, source | H | β, target⟩ for a bond whose unit
// direction cosines from source to target are (l, m, n).
//
// The table follows Slater & Koster (1954); elements where the source
// orbital has higher angular momentum than the target are obtained from
// the transposed formula with the parity factor (−1)^(l_α+l_β) and the
// direction-appropriate two-center integral.
func skBlock(model Model, bp BondParams, l, m, n float64, hop [][]float64) {
	norb := model.NumOrbitals()
	for i := 0; i < norb; i++ {
		for j := 0; j < norb; j++ {
			hop[i][j] = 0
		}
	}
	sstar := model.sstarIndex()

	// s–s family.
	hop[orbS][orbS] = bp.SsSigma
	if sstar >= 0 {
		hop[sstar][sstar] = bp.SstarSstarSigma
		hop[orbS][sstar] = bp.SSstarSigma
		hop[sstar][orbS] = bp.SstarSSigma
	}

	if !model.hasP() {
		return
	}
	cos := [3]float64{l, m, n}

	// s–p and p–s (odd parity).
	for c := 0; c < 3; c++ {
		hop[orbS][orbPx+c] = cos[c] * bp.SpSigma
		hop[orbPx+c][orbS] = -cos[c] * bp.PsSigma
		if sstar >= 0 {
			hop[sstar][orbPx+c] = cos[c] * bp.SstarPSigma
			hop[orbPx+c][sstar] = -cos[c] * bp.PSstarSigma
		}
	}

	// p–p (even parity, symmetric form).
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if a == b {
				hop[orbPx+a][orbPx+a] = cos[a]*cos[a]*bp.PpSigma + (1-cos[a]*cos[a])*bp.PpPi
			} else {
				hop[orbPx+a][orbPx+b] = cos[a] * cos[b] * (bp.PpSigma - bp.PpPi)
			}
		}
	}

	if !model.hasD() {
		return
	}
	sq3 := math.Sqrt(3)
	ll, mm, nn := l*l, m*m, n*n

	// s–d and s*–d (even parity: same formula both directions, but with
	// the direction-specific integral).
	sd := [5]float64{
		sq3 * l * m,
		sq3 * m * n,
		sq3 * n * l,
		sq3 / 2 * (ll - mm),
		nn - (ll+mm)/2,
	}
	for dOrb := 0; dOrb < 5; dOrb++ {
		hop[orbS][orbDxy+dOrb] = sd[dOrb] * bp.SdSigma
		hop[orbDxy+dOrb][orbS] = sd[dOrb] * bp.DsSigma
		hop[sstar][orbDxy+dOrb] = sd[dOrb] * bp.SstarDSigma
		hop[orbDxy+dOrb][sstar] = sd[dOrb] * bp.DSstarSigma
	}

	// p–d (odd parity). pd[p][d] gives the σ and π angular factors for
	// ⟨p_source|H|d_target⟩.
	pdS := [3][5]float64{}
	pdP := [3][5]float64{}
	// p = x.
	pdS[0][0], pdP[0][0] = sq3*ll*m, m*(1-2*ll) // dxy
	pdS[0][1], pdP[0][1] = sq3*l*m*n, -2*l*m*n  // dyz
	pdS[0][2], pdP[0][2] = sq3*ll*n, n*(1-2*ll) // dzx
	pdS[0][3], pdP[0][3] = sq3/2*l*(ll-mm), l*(1-ll+mm)
	pdS[0][4], pdP[0][4] = l*(nn-(ll+mm)/2), -sq3*l*nn
	// p = y.
	pdS[1][0], pdP[1][0] = sq3*mm*l, l*(1-2*mm) // dxy
	pdS[1][1], pdP[1][1] = sq3*mm*n, n*(1-2*mm) // dyz
	pdS[1][2], pdP[1][2] = sq3*l*m*n, -2*l*m*n  // dzx
	pdS[1][3], pdP[1][3] = sq3/2*m*(ll-mm), -m*(1+ll-mm)
	pdS[1][4], pdP[1][4] = m*(nn-(ll+mm)/2), -sq3*m*nn
	// p = z.
	pdS[2][0], pdP[2][0] = sq3*l*m*n, -2*l*m*n  // dxy
	pdS[2][1], pdP[2][1] = sq3*nn*m, m*(1-2*nn) // dyz
	pdS[2][2], pdP[2][2] = sq3*nn*l, l*(1-2*nn) // dzx
	pdS[2][3], pdP[2][3] = sq3/2*n*(ll-mm), -n*(ll-mm)
	pdS[2][4], pdP[2][4] = n*(nn-(ll+mm)/2), sq3*n*(ll+mm)
	for p := 0; p < 3; p++ {
		for dOrb := 0; dOrb < 5; dOrb++ {
			hop[orbPx+p][orbDxy+dOrb] = pdS[p][dOrb]*bp.PdSigma + pdP[p][dOrb]*bp.PdPi
			hop[orbDxy+dOrb][orbPx+p] = -(pdS[p][dOrb]*bp.DpSigma + pdP[p][dOrb]*bp.DpPi)
		}
	}

	// d–d (even parity, symmetric form). dd[a][b] with a ≤ b suffices.
	var ddS, ddP, ddD [5][5]float64
	// dxy–dxy and permutations.
	ddS[0][0], ddP[0][0], ddD[0][0] = 3*ll*mm, ll+mm-4*ll*mm, nn+ll*mm
	ddS[1][1], ddP[1][1], ddD[1][1] = 3*mm*nn, mm+nn-4*mm*nn, ll+mm*nn
	ddS[2][2], ddP[2][2], ddD[2][2] = 3*nn*ll, nn+ll-4*nn*ll, mm+nn*ll
	// dxy–dyz etc.
	ddS[0][1], ddP[0][1], ddD[0][1] = 3*l*mm*n, l*n*(1-4*mm), l*n*(mm-1)
	ddS[0][2], ddP[0][2], ddD[0][2] = 3*ll*m*n, m*n*(1-4*ll), m*n*(ll-1)
	ddS[1][2], ddP[1][2], ddD[1][2] = 3*l*m*nn, l*m*(1-4*nn), l*m*(nn-1)
	// dxy–dx²−y² family.
	ddS[0][3], ddP[0][3], ddD[0][3] = 1.5*l*m*(ll-mm), 2*l*m*(mm-ll), 0.5*l*m*(ll-mm)
	ddS[1][3], ddP[1][3], ddD[1][3] = 1.5*m*n*(ll-mm), -m*n*(1+2*(ll-mm)), m*n*(1+(ll-mm)/2)
	ddS[2][3], ddP[2][3], ddD[2][3] = 1.5*n*l*(ll-mm), n*l*(1-2*(ll-mm)), -n*l*(1-(ll-mm)/2)
	// dxy–dz² family.
	ddS[0][4], ddP[0][4], ddD[0][4] = sq3*l*m*(nn-(ll+mm)/2), -2*sq3*l*m*nn, sq3/2*l*m*(1+nn)
	ddS[1][4], ddP[1][4], ddD[1][4] = sq3*m*n*(nn-(ll+mm)/2), sq3*m*n*(ll+mm-nn), -sq3/2*m*n*(ll+mm)
	ddS[2][4], ddP[2][4], ddD[2][4] = sq3*l*n*(nn-(ll+mm)/2), sq3*l*n*(ll+mm-nn), -sq3/2*l*n*(ll+mm)
	// dx²−y²–dx²−y², dx²−y²–dz², dz²–dz².
	ddS[3][3] = 0.75 * (ll - mm) * (ll - mm)
	ddP[3][3] = ll + mm - (ll-mm)*(ll-mm)
	ddD[3][3] = nn + (ll-mm)*(ll-mm)/4
	ddS[3][4] = sq3 / 2 * (ll - mm) * (nn - (ll+mm)/2)
	ddP[3][4] = sq3 * nn * (mm - ll)
	ddD[3][4] = sq3 / 4 * (1 + nn) * (ll - mm)
	ddS[4][4] = (nn - (ll+mm)/2) * (nn - (ll+mm)/2)
	ddP[4][4] = 3 * nn * (ll + mm)
	ddD[4][4] = 0.75 * (ll + mm) * (ll + mm)
	for a := 0; a < 5; a++ {
		for b := a; b < 5; b++ {
			v := ddS[a][b]*bp.DdSigma + ddP[a][b]*bp.DdPi + ddD[a][b]*bp.DdDelta
			hop[orbDxy+a][orbDxy+b] = v
			hop[orbDxy+b][orbDxy+a] = v
		}
	}
}
