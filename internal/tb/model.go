// Package tb implements the empirical nearest-neighbor tight-binding model
// at the heart of the simulator: orbital bases from single-band s through
// the 10-orbital sp3d5s* set (optionally spin-doubled with intra-atomic
// spin-orbit coupling), Slater-Koster two-center matrix elements, embedded
// material parameter tables, and the assembly of device Hamiltonians into
// the block-tridiagonal layer form consumed by the transport solvers.
package tb

import "fmt"

// Model selects the orbital basis per atom.
type Model int

const (
	// ModelS is a single s-like orbital per atom (effective-mass chains,
	// graphene pz).
	ModelS Model = iota
	// ModelSP3 is the four-orbital s,px,py,pz basis.
	ModelSP3
	// ModelSP3S is the five-orbital sp3s* basis (Vogl).
	ModelSP3S
	// ModelSP3D5S is the ten-orbital sp3d5s* basis (Boykin/Klimeck), the
	// production model of the paper.
	ModelSP3D5S
)

// Orbital indices within a model's basis. The d orbitals follow the
// conventional ordering dxy, dyz, dzx, dx²−y², dz².
const (
	orbS   = 0
	orbPx  = 1
	orbPy  = 2
	orbPz  = 3
	orbDxy = 4
	orbDyz = 5
	orbDzx = 6
	orbDx2 = 7
	orbDz2 = 8
	// orbSstar position depends on the model; see sstarIndex.
)

// NumOrbitals returns the per-atom basis size without spin.
func (m Model) NumOrbitals() int {
	switch m {
	case ModelS:
		return 1
	case ModelSP3:
		return 4
	case ModelSP3S:
		return 5
	case ModelSP3D5S:
		return 10
	default:
		panic(fmt.Sprintf("tb: unknown model %d", m))
	}
}

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelS:
		return "s"
	case ModelSP3:
		return "sp3"
	case ModelSP3S:
		return "sp3s*"
	case ModelSP3D5S:
		return "sp3d5s*"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// sstarIndex returns the basis index of the excited s* orbital, or -1 if
// the model has none.
func (m Model) sstarIndex() int {
	switch m {
	case ModelSP3S:
		return 4
	case ModelSP3D5S:
		return 9
	default:
		return -1
	}
}

// hasP reports whether the model carries p orbitals.
func (m Model) hasP() bool { return m != ModelS }

// hasD reports whether the model carries d orbitals.
func (m Model) hasD() bool { return m == ModelSP3D5S }

// orbitalClass classifies a basis index into angular-momentum channels.
type orbitalClass int

const (
	classS orbitalClass = iota
	classP
	classD
	classSstar
)

// classOf returns the angular class of basis index i under model m.
func (m Model) classOf(i int) orbitalClass {
	if i == 0 {
		return classS
	}
	if i == m.sstarIndex() {
		return classSstar
	}
	if i >= orbPx && i <= orbPz && m.hasP() {
		return classP
	}
	if i >= orbDxy && i <= orbDz2 && m.hasD() {
		return classD
	}
	panic(fmt.Sprintf("tb: orbital %d out of range for model %s", i, m))
}
