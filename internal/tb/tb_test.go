package tb

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lattice"
	"repro/internal/linalg"
)

func TestModelOrbitalCounts(t *testing.T) {
	cases := map[Model]int{ModelS: 1, ModelSP3: 4, ModelSP3S: 5, ModelSP3D5S: 10}
	for m, want := range cases {
		if got := m.NumOrbitals(); got != want {
			t.Fatalf("%s: NumOrbitals = %d, want %d", m, got, want)
		}
	}
}

// TestSlaterKosterReversal checks the fundamental two-center consistency
// E_{αβ}(d) = E_{βα}(−d) with the direction-reversed parameter table —
// the property that makes assembled Hamiltonians Hermitian.
func TestSlaterKosterReversal(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	bp := BondParams{
		SsSigma: rng.NormFloat64(), SpSigma: rng.NormFloat64(), PsSigma: rng.NormFloat64(),
		PpSigma: rng.NormFloat64(), PpPi: rng.NormFloat64(),
		SstarSstarSigma: rng.NormFloat64(), SSstarSigma: rng.NormFloat64(), SstarSSigma: rng.NormFloat64(),
		SstarPSigma: rng.NormFloat64(), PSstarSigma: rng.NormFloat64(),
		SdSigma: rng.NormFloat64(), DsSigma: rng.NormFloat64(),
		SstarDSigma: rng.NormFloat64(), DSstarSigma: rng.NormFloat64(),
		PdSigma: rng.NormFloat64(), DpSigma: rng.NormFloat64(),
		PdPi: rng.NormFloat64(), DpPi: rng.NormFloat64(),
		DdSigma: rng.NormFloat64(), DdPi: rng.NormFloat64(), DdDelta: rng.NormFloat64(),
	}
	for _, model := range []Model{ModelS, ModelSP3, ModelSP3S, ModelSP3D5S} {
		norb := model.NumOrbitals()
		fwd := make([][]float64, norb)
		rev := make([][]float64, norb)
		for i := range fwd {
			fwd[i] = make([]float64, norb)
			rev[i] = make([]float64, norb)
		}
		for trial := 0; trial < 10; trial++ {
			v := [3]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			r := math.Sqrt(v[0]*v[0] + v[1]*v[1] + v[2]*v[2])
			l, m, n := v[0]/r, v[1]/r, v[2]/r
			skBlock(model, bp, l, m, n, fwd)
			skBlock(model, bp.Reverse(), -l, -m, -n, rev)
			for i := 0; i < norb; i++ {
				for j := 0; j < norb; j++ {
					if math.Abs(fwd[i][j]-rev[j][i]) > 1e-12 {
						t.Fatalf("%s: SK reversal broken at (%d,%d): %g vs %g",
							model, i, j, fwd[i][j], rev[j][i])
					}
				}
			}
		}
	}
}

func TestSingleAtomOnsiteSpectrum(t *testing.T) {
	s, err := lattice.NewLinearChain(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mat := Silicon()
	h, err := Assemble(s, mat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := linalg.EigHValues(h.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	sp := mat.Species[0]
	want := []float64{sp.Es, sp.Ep, sp.Ep, sp.Ep, sp.Ed, sp.Ed, sp.Ed, sp.Ed, sp.Ed, sp.Es2}
	sort.Float64s(want)
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("onsite eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
}

// TestSpinOrbitSplitting validates the atomic limit of the spin-orbit
// model: the six p⊗spin states split into a j=3/2 quadruplet at Ep+λ and
// a j=1/2 doublet at Ep−2λ, i.e. a splitting of Δ_so = 3λ.
func TestSpinOrbitSplitting(t *testing.T) {
	s, err := lattice.NewLinearChain(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	mat := Silicon()
	lambda := mat.Species[0].SOLambda
	h, err := Assemble(s, mat, Options{Spin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !h.Diag[0].IsHermitian(1e-14) {
		t.Fatal("spin-orbit on-site block not Hermitian")
	}
	vals, err := linalg.EigHValues(h.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	ep := mat.Species[0].Ep
	nHigh, nLow := 0, 0
	for _, v := range vals {
		switch {
		case math.Abs(v-(ep+lambda)) < 1e-10:
			nHigh++
		case math.Abs(v-(ep-2*lambda)) < 1e-10:
			nLow++
		}
	}
	if nHigh != 4 || nLow != 2 {
		t.Fatalf("spin-orbit split: %d states at Ep+λ (want 4), %d at Ep−2λ (want 2); spectrum %v",
			nHigh, nLow, vals)
	}
}

func TestChainBandAnalytic(t *testing.T) {
	const eps0, hop, a = 0.3, -1.1, 0.5
	s, err := lattice.NewLinearChain(a, 6)
	if err != nil {
		t.Fatal(err)
	}
	mat := SingleBandChain(eps0, hop)
	h, err := Assemble(s, mat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h00, h01 := LeadBlocks(h, false)
	bands, err := LeadBands(h00, h01, a, 32)
	if err != nil {
		t.Fatal(err)
	}
	for ik, k := range bands.K {
		want := eps0 + 2*hop*math.Cos(k*a)
		if math.Abs(bands.Energies[ik][0]-want) > 1e-12 {
			t.Fatalf("chain band at k=%g: %v, want %v", k, bands.Energies[ik][0], want)
		}
	}
}

func TestAssembleHermitian(t *testing.T) {
	cases := []struct {
		name string
		gen  func() (*lattice.Structure, *Material, Options)
	}{
		{"Si wire sp3d5s*", func() (*lattice.Structure, *Material, Options) {
			s, _ := lattice.NewZincblendeNanowire(0.5431, 3, 1, 1)
			return s, Silicon(), Options{PassivationShift: 10}
		}},
		{"Si wire sp3d5s* spin", func() (*lattice.Structure, *Material, Options) {
			s, _ := lattice.NewZincblendeNanowire(0.5431, 2, 1, 1)
			return s, Silicon(), Options{Spin: true, PassivationShift: 10}
		}},
		{"GaAs wire sp3s*", func() (*lattice.Structure, *Material, Options) {
			s, _ := lattice.NewZincblendeNanowire(0.56533, 3, 1, 1)
			return s, GaAs(), Options{PassivationShift: 10}
		}},
		{"armchair GNR", func() (*lattice.Structure, *Material, Options) {
			s, _ := lattice.NewArmchairGNR(5, 4)
			return s, Graphene(), Options{}
		}},
		{"UTB at ky=0.7/nm", func() (*lattice.Structure, *Material, Options) {
			s, _ := lattice.NewZincblendeUTB(0.5431, 2, 1, 1)
			return s, Silicon(), Options{Ky: 0.7, PassivationShift: 10}
		}},
	}
	for _, tc := range cases {
		s, mat, opt := tc.gen()
		h, err := Assemble(s, mat, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !h.IsHermitian(1e-11) {
			t.Fatalf("%s: assembled Hamiltonian not Hermitian", tc.name)
		}
	}
}

func TestPotentialShiftsSpectrum(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mat := Silicon()
	const v0 = 0.37
	pot := make([]float64, s.NAtoms())
	for i := range pot {
		pot[i] = v0
	}
	h0, err := Assemble(s, mat, Options{PassivationShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	hv, err := Assemble(s, mat, Options{PassivationShift: 10, Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	e0, err := linalg.EigHValues(h0.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	ev, err := linalg.EigHValues(hv.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range e0 {
		if math.Abs(ev[i]-e0[i]-v0) > 1e-10 {
			t.Fatalf("constant potential did not rigidly shift eigenvalue %d", i)
		}
	}
}

func TestAssembleValidation(t *testing.T) {
	s, _ := lattice.NewLinearChain(0.5, 3)
	mat := SingleBandChain(0, -1)
	if _, err := Assemble(s, mat, Options{Potential: []float64{1}}); err == nil {
		t.Fatal("accepted wrong-length potential")
	}
	if _, err := Assemble(s, mat, Options{Ky: 1}); err == nil {
		t.Fatal("accepted transverse momentum on non-periodic structure")
	}
	sGaAs, _ := lattice.NewZincblendeNanowire(0.56533, 2, 1, 1)
	if _, err := Assemble(sGaAs, Graphene(), Options{}); err == nil {
		t.Fatal("accepted two-species structure with single-species material")
	}
}

func TestGNRParticleHoleSymmetry(t *testing.T) {
	// The pz honeycomb model on a bipartite lattice has a spectrum
	// symmetric about the on-site energy.
	s, err := lattice.NewArmchairGNR(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Assemble(s, Graphene(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	h00, h01 := LeadBlocks(h, false)
	bands, err := LeadBands(h00, h01, s.LayerPeriod, 24)
	if err != nil {
		t.Fatal(err)
	}
	for ik := range bands.K {
		e := bands.Energies[ik]
		nb := len(e)
		for n := 0; n < nb; n++ {
			if math.Abs(e[n]+e[nb-1-n]) > 1e-9 {
				t.Fatalf("AGNR spectrum not particle-hole symmetric at k-index %d", ik)
			}
		}
	}
}

func TestAGNRGapFamilies(t *testing.T) {
	// In the nearest-neighbor pz model, N-AGNRs with N = 3p+2 are
	// (nearly) metallic while other widths open a clear gap.
	gap := func(nRows int) float64 {
		s, err := lattice.NewArmchairGNR(nRows, 3)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Assemble(s, Graphene(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		h00, h01 := LeadBlocks(h, false)
		bands, err := LeadBands(h00, h01, s.LayerPeriod, 64)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := bands.GapAround(-1, 1)
		if !ok {
			return 0
		}
		return hi - lo
	}
	g5, g7 := gap(5), gap(7)
	if g5 > 0.2 {
		t.Fatalf("5-AGNR should be (nearly) metallic, gap = %g eV", g5)
	}
	if g7 < 0.5 {
		t.Fatalf("7-AGNR should be semiconducting, gap = %g eV", g7)
	}
}

func TestSiNanowireGap(t *testing.T) {
	// A 1×1-cell [100] Si wire in sp3d5s* with surface passivation must be
	// semiconducting with a confinement-widened gap: larger than bulk
	// (1.1 eV) but physically bounded.
	gap := func(cellsY, cellsZ int) float64 {
		s, err := lattice.NewZincblendeNanowire(0.5431, 3, cellsY, cellsZ)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Assemble(s, Silicon(), Options{PassivationShift: 12})
		if err != nil {
			t.Fatal(err)
		}
		h00, h01 := LeadBlocks(h, false)
		bands, err := LeadBands(h00, h01, s.LayerPeriod, 5)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := bands.GapAround(-2, 6)
		if !ok {
			t.Fatalf("no gap found in passivated %dx%d Si nanowire spectrum", cellsY, cellsZ)
		}
		return hi - lo
	}
	g11 := gap(1, 1)
	if g11 < 1.0 || g11 > 8.0 {
		t.Fatalf("Si nanowire gap %g eV outside the physically plausible window", g11)
	}
	// Quantum confinement: widening the wire must narrow the gap.
	if g21 := gap(2, 1); g21 >= g11 {
		t.Fatalf("gap did not shrink with cross-section: 1x1 %g eV vs 2x1 %g eV", g11, g21)
	}
}

func TestUTBKyDependence(t *testing.T) {
	s, err := lattice.NewZincblendeUTB(0.5431, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mat := Silicon()
	h0, err := Assemble(s, mat, Options{PassivationShift: 10, Ky: 0})
	if err != nil {
		t.Fatal(err)
	}
	kyBZ := math.Pi / s.PeriodY
	h1, err := Assemble(s, mat, Options{PassivationShift: 10, Ky: 0.5 * kyBZ})
	if err != nil {
		t.Fatal(err)
	}
	if h0.Diag[0].Equal(h1.Diag[0], 1e-9) {
		t.Fatal("transverse momentum has no effect on the UTB Hamiltonian")
	}
	if !h1.IsHermitian(1e-11) {
		t.Fatal("H(ky) not Hermitian")
	}
	// Spectra at ±ky must coincide (time-reversal without spin).
	hm, err := Assemble(s, mat, Options{PassivationShift: 10, Ky: -0.5 * kyBZ})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := linalg.EigHValues(h1.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	em, err := linalg.EigHValues(hm.Diag[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range e1 {
		if math.Abs(e1[i]-em[i]) > 1e-10 {
			t.Fatal("spectrum not symmetric under ky → −ky")
		}
	}
}

func TestLeadBlocksUniform(t *testing.T) {
	// Left and right lead blocks of a uniform wire must be identical.
	s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Assemble(s, Silicon(), Options{PassivationShift: 10})
	if err != nil {
		t.Fatal(err)
	}
	l00, l01 := LeadBlocks(h, false)
	r00, r01 := LeadBlocks(h, true)
	// End layers feel missing neighbors only through dangling-bond
	// passivation, which exists on transverse surfaces uniformly; the
	// *interior* blocks must match exactly.
	if !h.Diag[1].Equal(h.Diag[2], 1e-12) {
		t.Fatal("interior layer blocks differ in a uniform wire")
	}
	if !l01.Equal(h.Upper[1], 1e-12) || !r01.Equal(h.Upper[1], 1e-12) {
		t.Fatal("lead coupling blocks differ from interior coupling")
	}
	_ = l00
	_ = r00
}

func TestGermaniumAndInAsHermitian(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    float64
		mat  *Material
	}{
		{"Ge", 0.5658, Germanium()},
		{"InAs", 0.60583, InAs()},
	} {
		s, err := lattice.NewZincblendeNanowire(tc.a, 3, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Assemble(s, tc.mat, Options{Spin: true, PassivationShift: 10})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !h.IsHermitian(1e-11) {
			t.Fatalf("%s Hamiltonian not Hermitian", tc.name)
		}
	}
}

func TestGermaniumAndSiliconGaps(t *testing.T) {
	gap := func(mat *Material, a float64) float64 {
		s, err := lattice.NewZincblendeNanowire(a, 3, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Assemble(s, mat, Options{PassivationShift: 12})
		if err != nil {
			t.Fatal(err)
		}
		h00, h01 := LeadBlocks(h, false)
		bands, err := LeadBands(h00, h01, s.LayerPeriod, 9)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := bands.GapAround(-2, 6)
		if !ok {
			t.Fatal("no gap found")
		}
		return hi - lo
	}
	// At this extreme confinement (0.55 nm wires) quantum confinement
	// dominates the bulk-gap ordering, so assert only that both materials
	// are semiconducting with distinct, physically bounded gaps.
	gSi := gap(Silicon(), 0.5431)
	gGe := gap(Germanium(), 0.5658)
	if gSi < 0.5 || gSi > 8 || gGe < 0.5 || gGe > 8 {
		t.Fatalf("implausible wire gaps: Si %g eV, Ge %g eV", gSi, gGe)
	}
	if math.Abs(gSi-gGe) < 1e-6 {
		t.Fatalf("Si and Ge parameter sets give identical gaps (%g)", gSi)
	}
}

func TestApplyStrainGeometry(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	period0 := s.LayerPeriod
	x0 := s.Atoms[10].Pos.X
	if err := s.ApplyStrain(0.02, -0.01, 0.01); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.LayerPeriod-1.02*period0) > 1e-12 {
		t.Fatalf("layer period not scaled: %g", s.LayerPeriod)
	}
	if math.Abs(s.Atoms[10].Pos.X-1.02*x0) > 1e-12 {
		t.Fatal("positions not scaled")
	}
	// Bond vectors must match the strained positions for intra-device
	// bonds (no wrap).
	for i, nbrs := range s.Neighbors {
		for _, nb := range nbrs {
			if nb.WrapY != 0 {
				continue
			}
			d := s.Atoms[nb.Index].Pos.Sub(s.Atoms[i].Pos)
			if d.Sub(nb.Delta).Norm() > 1e-10 {
				t.Fatal("bond vector inconsistent with strained positions")
			}
		}
	}
	if err := s.ApplyStrain(-1.5, 0, 0); err == nil {
		t.Fatal("accepted crystal-collapsing strain")
	}
}

func TestHarrisonScalingStrainResponse(t *testing.T) {
	build := func(strain float64) float64 {
		s, err := lattice.NewZincblendeNanowire(0.5431, 3, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		if strain != 0 {
			if err := s.ApplyStrain(strain, strain, strain); err != nil {
				t.Fatal(err)
			}
		}
		h, err := Assemble(s, Silicon(), Options{PassivationShift: 12, HarrisonExponent: 2})
		if err != nil {
			t.Fatal(err)
		}
		h00, h01 := LeadBlocks(h, false)
		bands, err := LeadBands(h00, h01, s.LayerPeriod, 9)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, ok := bands.GapAround(-2, 8)
		if !ok {
			t.Fatal("no gap under strain")
		}
		return hi - lo
	}
	g0 := build(0)
	gTens := build(0.02)  // hydrostatic tension: weaker bonds
	gComp := build(-0.02) // compression: stronger bonds
	if gTens == g0 || gComp == g0 {
		t.Fatal("Harrison scaling has no effect on strained bands")
	}
	// Hydrostatic strain must move the gap monotonically between
	// compression and tension.
	if !(gComp > g0 && g0 > gTens) && !(gComp < g0 && g0 < gTens) {
		t.Fatalf("gap not monotone in strain: comp %g, none %g, tens %g", gComp, g0, gTens)
	}
	// Zero strain with scaling enabled must be a strict no-op.
	s, _ := lattice.NewZincblendeNanowire(0.5431, 3, 1, 1)
	hOn, err := Assemble(s, Silicon(), Options{PassivationShift: 12, HarrisonExponent: 2})
	if err != nil {
		t.Fatal(err)
	}
	hOff, err := Assemble(s, Silicon(), Options{PassivationShift: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range hOn.Diag {
		if !hOn.Diag[i].Equal(hOff.Diag[i], 0) {
			t.Fatal("Harrison scaling altered the unstrained Hamiltonian")
		}
	}
}
