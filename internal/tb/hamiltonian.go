package tb

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/sparse"
)

// pow is math.Pow specialized for readability at the call site.
func pow(x, y float64) float64 { return math.Pow(x, y) }

// Options configures Hamiltonian assembly.
type Options struct {
	// Spin doubles the basis and adds the intra-atomic spin-orbit
	// interaction on the p block.
	Spin bool
	// Ky is the transverse Bloch momentum in rad/nm for structures that
	// are periodic in y; bonds wrapping the period acquire the phase
	// exp(i·Ky·PeriodY·wrap).
	Ky float64
	// Potential is the electrostatic potential energy per atom in eV,
	// added to every orbital's on-site energy. Nil means zero everywhere.
	Potential []float64
	// PassivationShift is the on-site energy (eV) added per dangling bond
	// to push surface states out of the transport window — the standard
	// lightweight substitute for explicit hydrogen passivation. Zero
	// leaves surfaces unpassivated.
	PassivationShift float64
	// HarrisonExponent applies Harrison's bond-length scaling to every
	// two-center integral in strained structures:
	// V(d) = V(d₀)·(d₀/d)^η with d₀ the unstrained bond length. Zero
	// disables scaling; the universal value is η = 2.
	HarrisonExponent float64
}

// OrbitalsPerAtom returns the per-atom block size of material mat under
// the given options (orbital count, doubled when spin is on).
func OrbitalsPerAtom(mat *Material, opt Options) int {
	n := mat.Model.NumOrbitals()
	if opt.Spin {
		n *= 2
	}
	return n
}

// Assemble builds the device Hamiltonian of structure s with material mat
// as a block-tridiagonal matrix over principal layers. The result is
// Hermitian for real Ky and carries units of eV.
func Assemble(s *lattice.Structure, mat *Material, opt Options) (*sparse.BlockTridiag, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for i, a := range s.Atoms {
		if a.Species < 0 || a.Species >= len(mat.Species) {
			return nil, fmt.Errorf("tb: atom %d has species %d but material %q defines %d species",
				i, a.Species, mat.Name, len(mat.Species))
		}
	}
	if opt.Potential != nil && len(opt.Potential) != s.NAtoms() {
		return nil, fmt.Errorf("tb: potential has %d entries for %d atoms", len(opt.Potential), s.NAtoms())
	}
	if opt.Ky != 0 && !s.PeriodicY {
		return nil, fmt.Errorf("tb: transverse momentum given for a non-periodic structure")
	}

	norb := mat.Model.NumOrbitals()
	spinFactor := 1
	if opt.Spin {
		spinFactor = 2
	}
	bs := norb * spinFactor // per-atom block size

	// Atom → (layer, position within layer).
	local := make([]int, s.NAtoms())
	for _, la := range s.LayerAtoms {
		for pos, idx := range la {
			local[idx] = pos
		}
	}

	nl := s.NLayers()
	diag := make([]*linalg.Matrix, nl)
	upper := make([]*linalg.Matrix, nl-1)
	lower := make([]*linalg.Matrix, nl-1)
	for i := 0; i < nl; i++ {
		diag[i] = linalg.New(s.LayerSize(i)*bs, s.LayerSize(i)*bs)
	}
	for i := 0; i < nl-1; i++ {
		upper[i] = linalg.New(s.LayerSize(i)*bs, s.LayerSize(i+1)*bs)
		lower[i] = linalg.New(s.LayerSize(i+1)*bs, s.LayerSize(i)*bs)
	}

	// On-site terms.
	for ai, atom := range s.Atoms {
		sp := mat.Species[atom.Species]
		shift := float64(atom.Dangling) * opt.PassivationShift
		if opt.Potential != nil {
			shift += opt.Potential[ai]
		}
		blk := diag[atom.Layer]
		base := local[ai] * bs
		for sigma := 0; sigma < spinFactor; sigma++ {
			for o := 0; o < norb; o++ {
				var e float64
				switch mat.Model.classOf(o) {
				case classS:
					e = sp.Es
				case classP:
					e = sp.Ep
				case classD:
					e = sp.Ed
				case classSstar:
					e = sp.Es2
				}
				idx := base + sigma*norb + o
				blk.Set(idx, idx, complex(e+shift, 0))
			}
		}
		if opt.Spin && mat.Model.hasP() && sp.SOLambda != 0 {
			addSpinOrbit(blk, base, norb, sp.SOLambda)
		}
	}

	// Hopping terms: every directed bond contributes its Slater-Koster
	// block; Hermiticity follows from the mutually reversed bond tables.
	hop := make([][]float64, norb)
	for i := range hop {
		hop[i] = make([]float64, norb)
	}
	for ai, nbrs := range s.Neighbors {
		la := s.Atoms[ai].Layer
		for _, nb := range nbrs {
			lj := s.Atoms[nb.Index].Layer
			var dst *linalg.Matrix
			switch lj - la {
			case 0:
				dst = diag[la]
			case 1:
				dst = upper[la]
			case -1:
				dst = lower[lj]
			}
			r := nb.Delta.Norm()
			l, m, n := nb.Delta.X/r, nb.Delta.Y/r, nb.Delta.Z/r
			bp := mat.Bonds[s.Atoms[ai].Species][s.Atoms[nb.Index].Species]
			skBlock(mat.Model, bp, l, m, n, hop)
			if opt.HarrisonExponent != 0 && math.Abs(r-s.BondLength) > 1e-9*s.BondLength {
				scale := pow(s.BondLength/r, opt.HarrisonExponent)
				for o1 := 0; o1 < norb; o1++ {
					for o2 := 0; o2 < norb; o2++ {
						hop[o1][o2] *= scale
					}
				}
			}
			phase := complex(1, 0)
			if nb.WrapY != 0 {
				phase = cmplx.Exp(complex(0, opt.Ky*s.PeriodY*float64(nb.WrapY)))
			}
			rb, cb := local[ai]*bs, local[nb.Index]*bs
			for sigma := 0; sigma < spinFactor; sigma++ {
				so := sigma * norb
				for o1 := 0; o1 < norb; o1++ {
					for o2 := 0; o2 < norb; o2++ {
						if hop[o1][o2] == 0 {
							continue
						}
						i0, j0 := rb+so+o1, cb+so+o2
						dst.Set(i0, j0, dst.At(i0, j0)+phase*complex(hop[o1][o2], 0))
					}
				}
			}
		}
	}

	return sparse.NewBlockTridiag(diag, upper, lower)
}

// addSpinOrbit adds the intra-atomic p-block spin-orbit Hamiltonian
// λ·L·S (Chadi's convention) to the on-site block of one atom.
// Basis per atom: [orbitals↑..., orbitals↓...], p orbitals at
// offsets orbPx..orbPz within each spin sector.
func addSpinOrbit(blk *linalg.Matrix, base, norb int, lambda float64) {
	up := func(o int) int { return base + o }
	dn := func(o int) int { return base + norb + o }
	l := complex(lambda, 0)
	il := complex(0, lambda)
	add := func(i, j int, v complex128) {
		blk.Set(i, j, blk.At(i, j)+v)
		blk.Set(j, i, blk.At(j, i)+cmplx.Conj(v))
	}
	// ⟨x↑|H|y↑⟩ = −iλ, ⟨x↓|H|y↓⟩ = +iλ
	add(up(orbPx), up(orbPy), -il)
	add(dn(orbPx), dn(orbPy), il)
	// ⟨x↑|H|z↓⟩ = λ, ⟨y↑|H|z↓⟩ = −iλ
	add(up(orbPx), dn(orbPz), l)
	add(up(orbPy), dn(orbPz), -il)
	// ⟨z↑|H|x↓⟩ = −λ, ⟨z↑|H|y↓⟩ = ... from Hermitian pairs below:
	// ⟨x↓|H|z↑⟩ = −λ  → add as ⟨z↑|H|x↓⟩ = −λ (conjugate real)
	add(up(orbPz), dn(orbPx), -l)
	// ⟨y↓|H|z↑⟩ = −iλ → add its adjoint ⟨z↑|H|y↓⟩ = +iλ
	add(up(orbPz), dn(orbPy), il)
}

// LeadBlocks extracts the periodic-lead Hamiltonian blocks from a device:
// h00 is the principal-layer block and h01 the coupling to the next layer,
// taken from the device end specified by right. The device interior must
// be a uniform repetition of the lead cell for these to be meaningful
// (guaranteed by the lattice generators).
func LeadBlocks(h *sparse.BlockTridiag, right bool) (h00, h01 *linalg.Matrix) {
	if right {
		nl := h.Layers()
		return h.Diag[nl-1].Clone(), h.Upper[nl-2].Clone()
	}
	return h.Diag[0].Clone(), h.Upper[0].Clone()
}
