package tb

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/linalg"
)

// BandStructure holds the dispersion of a periodic lead: Energies[ik][band]
// in eV, sorted ascending per k-point, for wave numbers K[ik] in rad/nm.
type BandStructure struct {
	K        []float64
	Energies [][]float64
}

// LeadBands diagonalizes the Bloch Hamiltonian of a periodic lead,
// H(k) = H00 + H01·e^{ik·a} + H01†·e^{−ik·a}, at each of the nk wave
// numbers spanning the first Brillouin zone [−π/a, π/a).
func LeadBands(h00, h01 *linalg.Matrix, period float64, nk int) (*BandStructure, error) {
	if h00.Rows != h00.Cols || h01.Rows != h00.Rows || h01.Cols != h00.Rows {
		return nil, fmt.Errorf("tb: lead blocks must be square and equally sized")
	}
	if nk < 1 {
		return nil, fmt.Errorf("tb: need at least one k-point")
	}
	bs := &BandStructure{
		K:        make([]float64, nk),
		Energies: make([][]float64, nk),
	}
	h10 := h01.ConjTranspose()
	for ik := 0; ik < nk; ik++ {
		k := -math.Pi/period + 2*math.Pi/period*float64(ik)/float64(nk)
		bs.K[ik] = k
		hk := BlochHamiltonian(h00, h01, h10, k*period)
		vals, err := linalg.EigHValues(hk)
		if err != nil {
			return nil, fmt.Errorf("tb: diagonalization failed at k=%g: %w", k, err)
		}
		bs.Energies[ik] = vals
	}
	return bs, nil
}

// BlochHamiltonian returns H00 + H01·e^{iφ} + H10·e^{−iφ} for the phase
// φ = k·a.
func BlochHamiltonian(h00, h01, h10 *linalg.Matrix, phi float64) *linalg.Matrix {
	hk := h00.Clone()
	hk.AddInPlace(h01.Scale(cmplx.Exp(complex(0, phi))))
	hk.AddInPlace(h10.Scale(cmplx.Exp(complex(0, -phi))))
	return hk
}

// NumBands returns the number of bands per k-point.
func (b *BandStructure) NumBands() int {
	if len(b.Energies) == 0 {
		return 0
	}
	return len(b.Energies[0])
}

// BandRange returns the global minimum and maximum energy of band index n
// over all k-points.
func (b *BandStructure) BandRange(n int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, e := range b.Energies {
		if e[n] < lo {
			lo = e[n]
		}
		if e[n] > hi {
			hi = e[n]
		}
	}
	return lo, hi
}

// Gap scans for the largest energy gap that separates two consecutive
// bands at every k-point and returns its edges (top of the lower band,
// bottom of the upper band). ok is false for gapless (metallic) spectra.
func (b *BandStructure) Gap() (evTop, ecBottom float64, ok bool) {
	nb := b.NumBands()
	best := 0.0
	for n := 0; n+1 < nb; n++ {
		_, hiN := b.BandRange(n)
		loN1, _ := b.BandRange(n + 1)
		if g := loN1 - hiN; g > best {
			best = g
			evTop, ecBottom = hiN, loN1
			ok = true
		}
	}
	return evTop, ecBottom, ok
}

// GapAround behaves like Gap but only considers gaps whose midpoint lies
// within [eLo, eHi] — useful for multi-gap spectra where the transport gap
// around the Fermi level is wanted, not the widest spectral gap.
func (b *BandStructure) GapAround(eLo, eHi float64) (evTop, ecBottom float64, ok bool) {
	nb := b.NumBands()
	best := 0.0
	for n := 0; n+1 < nb; n++ {
		_, hiN := b.BandRange(n)
		loN1, _ := b.BandRange(n + 1)
		mid := (hiN + loN1) / 2
		if g := loN1 - hiN; g > best && mid >= eLo && mid <= eHi {
			best = g
			evTop, ecBottom = hiN, loN1
			ok = true
		}
	}
	return evTop, ecBottom, ok
}

// MinMax returns the global spectral extent over all bands and k-points.
func (b *BandStructure) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, e := range b.Energies {
		for _, v := range e {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}
