package tb

// Species holds the on-site orbital energies (eV) and spin-orbit strength
// of one atomic species.
type Species struct {
	Name string
	Es   float64 // s on-site energy
	Ep   float64 // p on-site energy
	Ed   float64 // d on-site energy
	Es2  float64 // s* on-site energy
	// SOLambda is the intra-atomic spin-orbit parameter λ = Δ_so/3 acting
	// on the p block when spin is enabled.
	SOLambda float64
}

// Material is a complete nearest-neighbor tight-binding parameterization.
type Material struct {
	Name string
	// LatticeConstant in nm (conventional cubic cell for zinc-blende,
	// unused for honeycomb/chain materials).
	LatticeConstant float64
	// Model is the orbital basis the parameter set was fitted for.
	Model Model
	// Species lists the basis atoms: one entry for elemental crystals,
	// (anion, cation) for zinc-blende compounds.
	Species []Species
	// Bonds[si][sj] holds the directed two-center integrals for a bond
	// from species si to species sj.
	Bonds [][]BondParams
}

// homopolar wraps a single-species parameter set.
func homopolar(name string, a float64, model Model, sp Species, bp BondParams) *Material {
	return &Material{
		Name:            name,
		LatticeConstant: a,
		Model:           model,
		Species:         []Species{sp},
		Bonds:           [][]BondParams{{bp}},
	}
}

// diamond wraps an elemental diamond-lattice parameter set: the two
// zinc-blende sublattices carry the same species and bond table.
func diamond(name string, a float64, model Model, sp Species, bp BondParams) *Material {
	return &Material{
		Name:            name,
		LatticeConstant: a,
		Model:           model,
		Species:         []Species{sp, sp},
		Bonds: [][]BondParams{
			{bp, bp},
			{bp, bp},
		},
	}
}

// heteropolar wraps an (anion, cation) parameter set; ac is the
// anion→cation directed bond table.
func heteropolar(name string, a float64, model Model, anion, cation Species, ac BondParams) *Material {
	return &Material{
		Name:            name,
		LatticeConstant: a,
		Model:           model,
		Species:         []Species{anion, cation},
		Bonds: [][]BondParams{
			{{}, ac},
			{ac.Reverse(), {}},
		},
	}
}

// Silicon returns the sp3d5s* nearest-neighbor parameterization of bulk
// silicon in the style of Boykin, Klimeck & Oyafuso, Phys. Rev. B 69,
// 115201 (2004). The values below are literature-style: they reproduce the
// qualitative Si band structure (indirect ~1.1 eV gap with the conduction
// minimum near 0.8·X along Δ) that the transport shapes depend on; exact
// transcription fidelity is not required for the reproduced experiments.
func Silicon() *Material {
	sp := Species{
		Name: "Si",
		Es:   -2.15216, Ep: 4.22925, Ed: 13.78950, Es2: 19.11650,
		SOLambda: 0.01989,
	}
	bp := BondParams{
		SsSigma:         -1.95933,
		SstarSstarSigma: -4.24135,
		SSstarSigma:     -1.52230,
		SstarSSigma:     -1.52230,
		SpSigma:         3.02562,
		PsSigma:         3.02562,
		SstarPSigma:     3.15565,
		PSstarSigma:     3.15565,
		SdSigma:         -2.28485,
		DsSigma:         -2.28485,
		SstarDSigma:     -0.80993,
		DSstarSigma:     -0.80993,
		PpSigma:         4.10364,
		PpPi:            -1.51801,
		PdSigma:         -1.35554,
		DpSigma:         -1.35554,
		PdPi:            2.38479,
		DpPi:            2.38479,
		DdSigma:         -1.68136,
		DdPi:            2.58880,
		DdDelta:         -1.81400,
	}
	return diamond("Si (sp3d5s*)", 0.5431, ModelSP3D5S, sp, bp)
}

// SiliconSP3S returns the classic 5-orbital sp3s* silicon parameterization
// of Vogl, Hjalmarson & Dow, J. Phys. Chem. Solids 44, 365 (1983). The
// published table lists V(α,β) = 4·V_{αβσ}-style sums over the four
// tetrahedral neighbors; the constructor stores the per-bond Slater-Koster
// integrals obtained by dividing out the geometry factors
// (V_ssσ = V(s,s)/4, V_spσ = √3·V(sa,pc)/4, V_ppσ = (V(x,x)+2V(x,y))/4,
// V_ppπ = (V(x,x)−V(x,y))/4).
func SiliconSP3S() *Material {
	sp := Species{
		Name: "Si",
		Es:   -4.2000, Ep: 1.7150, Es2: 6.6850,
		SOLambda: 0.01989,
	}
	const (
		vss  = -8.3000
		vxx  = 1.7150
		vxy  = 4.5750
		vsp  = 5.7292
		vs2p = 5.3749
	)
	sqrt3 := 1.7320508075688772
	bp := BondParams{
		SsSigma:     vss / 4,
		SpSigma:     sqrt3 * vsp / 4,
		PsSigma:     sqrt3 * vsp / 4,
		SstarPSigma: sqrt3 * vs2p / 4,
		PSstarSigma: sqrt3 * vs2p / 4,
		PpSigma:     (vxx + 2*vxy) / 4,
		PpPi:        (vxx - vxy) / 4,
	}
	return diamond("Si (sp3s*)", 0.5431, ModelSP3S, sp, bp)
}

// GaAs returns the 5-orbital sp3s* GaAs parameterization of Vogl,
// Hjalmarson & Dow (1983), converted to per-bond Slater-Koster integrals
// as in SiliconSP3S. Species order is (As anion, Ga cation).
func GaAs() *Material {
	anion := Species{
		Name: "As",
		Es:   -8.3431, Ep: 1.0414, Es2: 8.5914,
		SOLambda: 0.140,
	}
	cation := Species{
		Name: "Ga",
		Es:   -2.6569, Ep: 3.6686, Es2: 6.7386,
		SOLambda: 0.058,
	}
	const (
		vss   = -6.4513
		vxx   = 1.9546
		vxy   = 5.0779
		vsapc = 4.4800 // V(s_anion, p_cation)
		vpasc = 5.7839 // V(p_anion, s_cation)  (= V(s_cation, p_anion))
		vs2pc = 4.8422 // V(s*_anion, p_cation)
		vpas2 = 4.8077 // V(p_anion, s*_cation)
	)
	sqrt3 := 1.7320508075688772
	ac := BondParams{
		SsSigma:     vss / 4,
		SpSigma:     sqrt3 * vsapc / 4, // s on anion, p on cation
		PsSigma:     sqrt3 * vpasc / 4, // p on anion, s on cation
		SstarPSigma: sqrt3 * vs2pc / 4,
		PSstarSigma: sqrt3 * vpas2 / 4,
		PpSigma:     (vxx + 2*vxy) / 4,
		PpPi:        (vxx - vxy) / 4,
	}
	return heteropolar("GaAs (sp3s*)", 0.56533, ModelSP3S, anion, cation, ac)
}

// Graphene returns the single-orbital pz model of graphene: one basis
// state per carbon atom with first-neighbor hopping t = −2.7 eV, the
// standard model for graphene nanoribbon device studies.
func Graphene() *Material {
	return homopolar("graphene (pz)", 0, ModelS,
		Species{Name: "C", Es: 0},
		BondParams{SsSigma: -2.7})
}

// SingleBandChain returns a one-orbital chain material with on-site energy
// eps and hopping t — the analytic reference model of the test suite.
func SingleBandChain(eps, t float64) *Material {
	return homopolar("chain", 0, ModelS,
		Species{Name: "X", Es: eps},
		BondParams{SsSigma: t})
}

// Germanium returns an sp3d5s* nearest-neighbor parameterization of bulk
// germanium in the style of Boykin, Klimeck & Oyafuso (2004) —
// literature-style values reproducing the qualitative Ge band structure
// (smaller gap than Si, strong spin-orbit coupling).
func Germanium() *Material {
	sp := Species{
		Name: "Ge",
		Es:   -1.95617, Ep: 5.30970, Ed: 13.58060, Es2: 19.29600,
		SOLambda: 0.09635,
	}
	bp := BondParams{
		SsSigma:         -1.39456,
		SstarSstarSigma: -3.56680,
		SSstarSigma:     -2.01830,
		SstarSSigma:     -2.01830,
		SpSigma:         2.73135,
		PsSigma:         2.73135,
		SstarPSigma:     2.68638,
		PSstarSigma:     2.68638,
		SdSigma:         -2.64779,
		DsSigma:         -2.64779,
		SstarDSigma:     -1.12312,
		DSstarSigma:     -1.12312,
		PpSigma:         4.28921,
		PpPi:            -1.73707,
		PdSigma:         -2.00115,
		DpSigma:         -2.00115,
		PdPi:            2.10953,
		DpPi:            2.10953,
		DdSigma:         -1.32941,
		DdPi:            2.56261,
		DdDelta:         -1.95120,
	}
	return diamond("Ge (sp3d5s*)", 0.5658, ModelSP3D5S, sp, bp)
}

// InAs returns the 5-orbital sp3s* InAs parameterization of Vogl,
// Hjalmarson & Dow (1983), converted to per-bond Slater-Koster integrals
// as in SiliconSP3S. Species order is (As anion, In cation).
func InAs() *Material {
	anion := Species{
		Name: "As",
		Es:   -9.5381, Ep: 0.9099, Es2: 7.4099,
		SOLambda: 0.140,
	}
	cation := Species{
		Name: "In",
		Es:   -2.7219, Ep: 3.7201, Es2: 6.7401,
		SOLambda: 0.130,
	}
	const (
		vss   = -5.6052
		vxx   = 1.8398
		vxy   = 4.4693
		vsapc = 3.0354
		vpasc = 5.4389
		vs2pc = 3.3744
		vpas2 = 3.9097
	)
	sqrt3 := 1.7320508075688772
	ac := BondParams{
		SsSigma:     vss / 4,
		SpSigma:     sqrt3 * vsapc / 4,
		PsSigma:     sqrt3 * vpasc / 4,
		SstarPSigma: sqrt3 * vs2pc / 4,
		PSstarSigma: sqrt3 * vpas2 / 4,
		PpSigma:     (vxx + 2*vxy) / 4,
		PpPi:        (vxx - vxy) / 4,
	}
	return heteropolar("InAs (sp3s*)", 0.60583, ModelSP3S, anion, cation, ac)
}
