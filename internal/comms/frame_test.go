package comms

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// frameBytes hand-assembles a frame with arbitrary header fields. The
// checksum is computed honestly over (type, payload), so malformed
// headers exercise their own checks rather than tripping the CRC first.
func frameBytes(magic uint16, version byte, t MsgType, length uint32, payload []byte) []byte {
	var h [headerLen]byte
	binary.BigEndian.PutUint16(h[0:2], magic)
	h[2] = version
	h[3] = byte(t)
	binary.BigEndian.PutUint32(h[4:8], length)
	binary.BigEndian.PutUint32(h[8:12], frameCRC(t, payload))
	return append(h[:], payload...)
}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, 7, payload); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		mt, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if mt != 7 {
			t.Fatalf("type = %d, want 7", mt)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload mismatch: got %d bytes, want %d", len(got), len(payload))
		}
		// A clean stream end after a whole frame is io.EOF, not truncation.
		if _, _, err := ReadFrame(&buf); err != io.EOF {
			t.Fatalf("after frame: err = %v, want io.EOF", err)
		}
	}
}

func TestReadFrameErrors(t *testing.T) {
	good := frameBytes(Magic, Version, 3, 5, []byte("hello"))
	cases := []struct {
		name  string
		input []byte
		check func(error) bool
	}{
		{"empty stream", nil, func(e error) bool { return e == io.EOF }},
		{"truncated header", good[:4], func(e error) bool { return errors.Is(e, ErrTruncated) }},
		{"truncated payload", good[:headerLen+2], func(e error) bool { return errors.Is(e, ErrTruncated) }},
		{"header only, missing payload", good[:headerLen], func(e error) bool { return errors.Is(e, ErrTruncated) }},
		{"bad magic", frameBytes(0xDEAD, Version, 3, 0, nil), func(e error) bool {
			var be *BadMagicError
			return errors.As(e, &be) && be.Got == 0xDEAD
		}},
		{"bad version", frameBytes(Magic, 99, 3, 0, nil), func(e error) bool {
			var be *BadVersionError
			return errors.As(e, &be) && be.Got == 99
		}},
		{"oversized length", frameBytes(Magic, Version, 3, MaxPayload+1, nil), func(e error) bool {
			var oe *OversizedError
			return errors.As(e, &oe) && oe.Size == MaxPayload+1
		}},
		{"flipped payload bit", flipBit(good, headerLen+1, 3), func(e error) bool {
			var ce *BadChecksumError
			return errors.As(e, &ce) && ce.Want != ce.Got
		}},
		{"flipped type byte", flipBit(good, 3, 0), func(e error) bool {
			var ce *BadChecksumError
			return errors.As(e, &ce)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadFrame(bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !tc.check(err) {
				t.Fatalf("wrong error: %v", err)
			}
		})
	}
}

// flipBit returns a copy of b with bit `bit` of byte `i` inverted.
func flipBit(b []byte, i int, bit uint) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 1 << bit
	return c
}

// TestFrameChecksumCatchesEveryBit flips every bit of an encoded frame
// in turn and asserts the decoder rejects all of them: magic and version
// flips hit their own checks, and every flip in type, length, checksum,
// or payload lands on the CRC (a length flip misaligns the payload the
// CRC was computed over).
func TestFrameChecksumCatchesEveryBit(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 5, []byte("checksummed payload")); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	orig := buf.Bytes()
	for i := range orig {
		for bit := uint(0); bit < 8; bit++ {
			if _, _, err := ReadFrame(bytes.NewReader(flipBit(orig, i, bit))); err == nil {
				t.Fatalf("byte %d bit %d: damaged frame decoded without error", i, bit)
			}
		}
	}
}

func TestWriteFrameOversized(t *testing.T) {
	// Oversized writes are rejected before any byte hits the wire, so the
	// stream cannot be poisoned. (Checked against a nil writer: a write
	// attempt would panic.)
	err := WriteFrame(nil, 1, make([]byte, MaxPayload+1))
	var oe *OversizedError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OversizedError", err)
	}
}

// FuzzReadFrame asserts the decoder's contract on arbitrary input: it
// never panics, and any error is one of the typed/sentinel kinds. A
// successfully decoded frame must re-encode to a prefix of the input.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(frameBytes(Magic, Version, 1, 0, nil))
	f.Add(frameBytes(Magic, Version, 2, 3, []byte("abc")))
	f.Add(frameBytes(Magic, 0, 0, 0xFFFFFFFF, nil))
	f.Add(frameBytes(0xDEAD, Version, 9, 1, []byte("z")))
	f.Add(frameBytes(Magic, Version, 9, 10, []byte("short")))
	f.Fuzz(func(t *testing.T, data []byte) {
		mt, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			var bm *BadMagicError
			var bv *BadVersionError
			var ov *OversizedError
			var cs *BadChecksumError
			switch {
			case err == io.EOF,
				errors.Is(err, ErrTruncated),
				errors.As(err, &bm),
				errors.As(err, &bv),
				errors.As(err, &ov),
				errors.As(err, &cs):
			default:
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, mt, payload); werr != nil {
			t.Fatalf("re-encode: %v", werr)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatalf("decoded frame does not round-trip to an input prefix")
		}
	})
}
