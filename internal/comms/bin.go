package comms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// This file is the binary payload codec: varint-based primitives the
// protocol layer (internal/distrib) composes into compact encodings for
// its hot message types — lease grants, batched result uploads,
// heartbeats. The frame layer is content-agnostic, so a binary payload
// rides exactly the same magic/version/CRC envelope a JSON one does;
// what changes is the bytes-per-task, which is what caps fleet scaling
// (NEMO5's internode-communication study: past a few hundred ranks it
// is message count and volume, not kernel flops, that bound the
// sustained rate).
//
// The decoder contract mirrors ReadFrame's: every malformed input —
// truncated varint, length prefix past the end of the payload, trailing
// garbage — is a typed error, never a panic and never an oversized
// allocation (FuzzBinReader pins this).

// ErrBadPayload is wrapped by every BinReader decoding error: the
// payload does not parse as the primitives the caller asked for. Like a
// checksum failure, it means the peer is confused or hostile and the
// connection should be dropped.
var ErrBadPayload = errors.New("comms: malformed binary payload")

// BinWriter builds a binary payload by appending primitives to a byte
// slice. The zero value is ready to use; Reset lets a long-lived writer
// (one per connection, under the codec's write lock) reuse its buffer
// across frames. Appends cannot fail — length limits are enforced by
// WriteFrame when the payload is framed.
type BinWriter struct {
	buf []byte
}

// Reset truncates the writer for a new payload, keeping the allocated
// capacity.
func (w *BinWriter) Reset() { w.buf = w.buf[:0] }

// Bytes returns the payload built so far. The slice aliases the
// writer's buffer and is invalidated by the next Reset or append.
func (w *BinWriter) Bytes() []byte { return w.buf }

// Byte appends one raw byte.
func (w *BinWriter) Byte(b byte) { w.buf = append(w.buf, b) }

// Uvarint appends v in unsigned LEB128.
func (w *BinWriter) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Varint appends v in zigzag LEB128.
func (w *BinWriter) Varint(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Blob appends a length-prefixed byte string.
func (w *BinWriter) Blob(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *BinWriter) String(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// BinReader decodes a binary payload built by BinWriter. Errors are
// sticky: the first malformed read poisons the reader, every later read
// returns a zero value, and Err reports the failure — so decoders can
// read a whole message unconditionally and check once at the end.
// The reader never panics and never allocates more than the payload it
// was given (Blob returns subslices).
type BinReader struct {
	buf []byte
	off int
	err error
}

// NewBinReader reads from p, which the caller must not mutate while
// reading (Blob and String return views into it).
func NewBinReader(p []byte) *BinReader { return &BinReader{buf: p} }

// Err returns the first decoding error, or nil.
func (r *BinReader) Err() error { return r.err }

// Remaining returns the number of unread bytes (0 after an error).
func (r *BinReader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.buf) - r.off
}

// Finish returns an error unless the payload was fully consumed without
// a decoding failure — trailing garbage is as malformed as a truncation.
func (r *BinReader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		r.fail("%d trailing bytes", len(r.buf)-r.off)
	}
	return r.err
}

// fail records the first error.
func (r *BinReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: at offset %d: %s", ErrBadPayload, r.off, fmt.Sprintf(format, args...))
	}
}

// Byte reads one raw byte.
func (r *BinReader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte")
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Uvarint reads an unsigned LEB128 value.
func (r *BinReader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a zigzag LEB128 value.
func (r *BinReader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated or overlong varint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint that must fit a non-negative int — counts and
// indices. A value that does not fit is malformed, not truncated.
func (r *BinReader) Int() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > math.MaxInt64 || int64(v) > int64(math.MaxInt) {
		r.fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

// Blob reads a length-prefixed byte string as a subslice of the payload
// (no copy: the caller owns the framing buffer). A length prefix
// pointing past the end of the payload is rejected before any
// allocation, so a hostile length cannot balloon memory.
func (r *BinReader) Blob() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("blob length %d exceeds %d remaining bytes", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String reads a length-prefixed string.
func (r *BinReader) String() string { return string(r.Blob()) }
