package comms

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Codec frames messages over a reliable byte stream — JSON payloads via
// Send, binary payloads via SendBin. Reads are buffered and must come
// from a single goroutine; writes are serialized by an internal mutex
// and flushed per message, so any number of goroutines (a worker's task
// loop plus its heartbeat ticker) can send concurrently without
// interleaving frames. The encode buffers live on the codec and are
// reused across frames under the write lock, so steady-state sends do
// not allocate per frame.
type Codec struct {
	rwc    io.ReadWriteCloser
	r      *bufio.Reader
	onRecv func(frameBytes int)

	wmu    sync.Mutex
	w      *bufio.Writer
	jbuf   bytes.Buffer
	jenc   *json.Encoder
	bw     BinWriter
	onSend func(frameBytes int)
}

// NewCodec wraps a connection (anything reliable and byte-ordered; TCP
// and net.Pipe both qualify).
func NewCodec(rwc io.ReadWriteCloser) *Codec {
	c := &Codec{
		rwc: rwc,
		r:   bufio.NewReaderSize(rwc, 64<<10),
		w:   bufio.NewWriterSize(rwc, 64<<10),
	}
	c.jenc = json.NewEncoder(&c.jbuf)
	return c
}

// Meter installs frame observers: onSend and onRecv are called with the
// full frame size (header plus payload) of every frame written and read.
// Either may be nil. Install before the codec is shared between
// goroutines; the observers themselves must be thread-safe (sends can
// come from many goroutines).
func (c *Codec) Meter(onSend, onRecv func(frameBytes int)) {
	c.onSend = onSend
	c.onRecv = onRecv
}

// Send marshals v as JSON and writes it as one frame of type t, flushing
// before returning. Safe for concurrent use.
func (c *Codec) Send(t MsgType, v any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.jbuf.Reset()
	if err := c.jenc.Encode(v); err != nil {
		return fmt.Errorf("comms: marshal message type %d: %w", t, err)
	}
	// Encoder appends a newline after each value; strip it so the payload
	// bytes are exactly json.Marshal's.
	payload := c.jbuf.Bytes()
	if n := len(payload); n > 0 && payload[n-1] == '\n' {
		payload = payload[:n-1]
	}
	return c.sendLocked(t, payload)
}

// SendBin writes one binary-payload frame of type t: encode appends the
// payload to a BinWriter the codec reuses across frames (valid only for
// the duration of the call). Safe for concurrent use.
func (c *Codec) SendBin(t MsgType, encode func(w *BinWriter)) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.bw.Reset()
	encode(&c.bw)
	return c.sendLocked(t, c.bw.Bytes())
}

// sendLocked frames, flushes, and meters one payload. Callers hold wmu.
func (c *Codec) sendLocked(t MsgType, payload []byte) error {
	if err := WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	if c.onSend != nil {
		c.onSend(headerLen + len(payload))
	}
	return nil
}

// Recv reads the next frame and returns its type and raw payload. The
// error taxonomy is ReadFrame's: io.EOF on a clean close at a frame
// boundary, ErrTruncated-wrapping errors on a mid-frame death, typed
// errors on malformed headers.
func (c *Codec) Recv() (MsgType, []byte, error) {
	t, payload, err := ReadFrame(c.r)
	if err == nil && c.onRecv != nil {
		c.onRecv(headerLen + len(payload))
	}
	return t, payload, err
}

// SetReadDeadline sets the deadline for future Recv calls when the
// underlying connection supports deadlines (net.Conn does; a plain pipe
// may not, in which case this is a no-op). A zero time clears it.
func (c *Codec) SetReadDeadline(t time.Time) error {
	if d, ok := c.rwc.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Close closes the underlying connection, unblocking any pending Recv.
func (c *Codec) Close() error { return c.rwc.Close() }
