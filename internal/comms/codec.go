package comms

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Codec frames JSON messages over a reliable byte stream. Reads are
// buffered and must come from a single goroutine; writes are serialized
// by an internal mutex and flushed per message, so any number of
// goroutines (a worker's task loop plus its heartbeat ticker) can Send
// concurrently without interleaving frames.
type Codec struct {
	rwc io.ReadWriteCloser
	r   *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer
}

// NewCodec wraps a connection (anything reliable and byte-ordered; TCP
// and net.Pipe both qualify).
func NewCodec(rwc io.ReadWriteCloser) *Codec {
	return &Codec{
		rwc: rwc,
		r:   bufio.NewReaderSize(rwc, 64<<10),
		w:   bufio.NewWriterSize(rwc, 64<<10),
	}
}

// Send marshals v as JSON and writes it as one frame of type t, flushing
// before returning. Safe for concurrent use.
func (c *Codec) Send(t MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("comms: marshal message type %d: %w", t, err)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteFrame(c.w, t, payload); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv reads the next frame and returns its type and raw payload. The
// error taxonomy is ReadFrame's: io.EOF on a clean close at a frame
// boundary, ErrTruncated-wrapping errors on a mid-frame death, typed
// errors on malformed headers.
func (c *Codec) Recv() (MsgType, []byte, error) {
	return ReadFrame(c.r)
}

// SetReadDeadline sets the deadline for future Recv calls when the
// underlying connection supports deadlines (net.Conn does; a plain pipe
// may not, in which case this is a no-op). A zero time clears it.
func (c *Codec) SetReadDeadline(t time.Time) error {
	if d, ok := c.rwc.(interface{ SetReadDeadline(time.Time) error }); ok {
		return d.SetReadDeadline(t)
	}
	return nil
}

// Close closes the underlying connection, unblocking any pending Recv.
func (c *Codec) Close() error { return c.rwc.Close() }
