package comms

import (
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"sync"
	"time"

	"repro/internal/resilience"
)

// Transport abstracts how coordinator and workers reach each other: real
// TCP for production, an in-memory loopback network for deterministic
// tests that exercise the full protocol — leases, heartbeats, crashes,
// re-dispatch — without sockets, ports, or timing flakiness.
type Transport interface {
	// Listen binds addr and accepts connections.
	Listen(addr string) (net.Listener, error)
	// Dial connects to addr, honoring ctx cancellation.
	Dial(ctx context.Context, addr string) (net.Conn, error)
}

// TCP is the production transport: plain TCP sockets.
type TCP struct{}

// Listen implements Transport.
func (TCP) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial implements Transport.
func (TCP) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return d.DialContext(ctx, "tcp", addr)
}

// DialRetry dials addr through t, retrying on failure until ctx expires
// or the per-call patience window closes — workers routinely start before
// their coordinator is listening (or outlive one that is restarting), and
// patience makes launch ordering irrelevant. Retries back off
// exponentially with deterministic jitter seeded from addr, so a fleet of
// rejoining workers spreads out instead of thundering-herding a
// coordinator that is coming back up, and a rerun of the same drill
// sleeps the same schedule. The returned error always carries the last
// dial failure, even when ctx expired first.
func DialRetry(ctx context.Context, t Transport, addr string, patience time.Duration) (net.Conn, error) {
	if patience <= 0 {
		patience = 10 * time.Second
	}
	backoff := dialBackoffPolicy(fnvAddrSeed(addr))
	deadline := time.Now().Add(patience)
	var lastErr error
	for attempt := 0; ; attempt++ {
		conn, err := t.Dial(ctx, addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("comms: dial %s: %w (gave up: %v)", addr, lastErr, cerr)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("comms: dial %s: %w (gave up after %v)", addr, lastErr, patience)
		}
		wait := backoff.Backoff(attempt)
		if remain := time.Until(deadline); wait > remain {
			wait = remain
		}
		tm := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			tm.Stop()
			return nil, fmt.Errorf("comms: dial %s: %w (gave up: %v)", addr, lastErr, ctx.Err())
		case <-tm.C:
		}
	}
}

// fnvAddrSeed hashes an address into a jitter seed, so every worker
// dialing the same coordinator gets the same (reproducible) schedule
// shape while distinct targets decorrelate.
func fnvAddrSeed(addr string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(addr))
	return h.Sum64()
}

// dialBackoffPolicy is DialRetry's retry schedule: exponential from 25ms
// to 1s with ±25% deterministic jitter.
func dialBackoffPolicy(seed uint64) resilience.Policy {
	return resilience.Policy{
		BaseDelay:  25 * time.Millisecond,
		MaxDelay:   time.Second,
		Multiplier: 2,
		JitterFrac: 0.25,
		Seed:       seed,
	}
}

// DialableAddr rewrites a listener's address into one a local process
// can dial: a wildcard host (":0", "[::]:…", "0.0.0.0:…") becomes
// loopback. Coordinators use it to tell self-spawned workers where to
// connect.
func DialableAddr(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String()
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// Loopback is an in-memory transport: a private network namespace where
// Listen registers names and Dial joins them with synchronous pipe pairs
// (net.Pipe). Connections support deadlines, so the full coordinator
// liveness machinery works unchanged over it.
type Loopback struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
	next      int
}

// NewLoopback returns an empty in-memory network.
func NewLoopback() *Loopback {
	return &Loopback{listeners: make(map[string]*loopListener)}
}

// Listen implements Transport. An empty addr (or ":0") auto-assigns a
// fresh name, mirroring the TCP idiom; the assigned name is available
// from the listener's Addr.
func (l *Loopback) Listen(addr string) (net.Listener, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if addr == "" || addr == ":0" {
		l.next++
		addr = fmt.Sprintf("loop-%d", l.next)
	}
	if _, dup := l.listeners[addr]; dup {
		return nil, fmt.Errorf("comms: loopback address %q already in use", addr)
	}
	ll := &loopListener{owner: l, addr: addr, accept: make(chan net.Conn), done: make(chan struct{})}
	l.listeners[addr] = ll
	return ll, nil
}

// Dial implements Transport.
func (l *Loopback) Dial(ctx context.Context, addr string) (net.Conn, error) {
	l.mu.Lock()
	ll := l.listeners[addr]
	l.mu.Unlock()
	if ll == nil {
		return nil, fmt.Errorf("comms: loopback dial %q: connection refused", addr)
	}
	client, server := net.Pipe()
	select {
	case ll.accept <- server:
		return client, nil
	case <-ll.done:
		client.Close()
		return nil, fmt.Errorf("comms: loopback dial %q: listener closed", addr)
	case <-ctx.Done():
		client.Close()
		return nil, ctx.Err()
	}
}

// loopListener is the accept side of a Loopback name.
type loopListener struct {
	owner  *Loopback
	addr   string
	accept chan net.Conn
	done   chan struct{}
	once   sync.Once
}

// Accept implements net.Listener.
func (ll *loopListener) Accept() (net.Conn, error) {
	select {
	case c := <-ll.accept:
		return c, nil
	case <-ll.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: it unregisters the name and fails
// pending and future Accept/Dial calls.
func (ll *loopListener) Close() error {
	ll.once.Do(func() {
		close(ll.done)
		ll.owner.mu.Lock()
		delete(ll.owner.listeners, ll.addr)
		ll.owner.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (ll *loopListener) Addr() net.Addr { return loopAddr(ll.addr) }

// loopAddr is the net.Addr of a loopback endpoint.
type loopAddr string

// Network implements net.Addr.
func (loopAddr) Network() string { return "loop" }

// String implements net.Addr.
func (a loopAddr) String() string { return string(a) }
