package comms

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// chaosPipe builds a pipe whose server→client direction runs through a
// ChaosConn, and pumps nFrames frames of payload through it, returning
// per-frame outcomes ("ok", "checksum", "hangup", "other").
func chaosPipe(t *testing.T, cfg ChaosConfig, nFrames int, payload []byte) []string {
	t.Helper()
	client, server := net.Pipe()
	chaotic := Chaos(server, cfg)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer chaotic.Close()
		for i := 0; i < nFrames; i++ {
			if err := WriteFrame(chaotic, 3, payload); err != nil {
				return
			}
		}
	}()
	outcomes := make([]string, 0, nFrames)
	for i := 0; i < nFrames; i++ {
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		_, got, err := ReadFrame(client)
		switch {
		case err == nil && bytes.Equal(got, payload):
			outcomes = append(outcomes, "ok")
			continue
		case err == nil:
			outcomes = append(outcomes, "silent-corruption")
		default:
			var cs *BadChecksumError
			switch {
			case errors.As(err, &cs):
				outcomes = append(outcomes, "checksum")
			case err == io.EOF || errors.Is(err, ErrTruncated) || errors.Is(err, io.ErrClosedPipe):
				outcomes = append(outcomes, "hangup")
			default:
				outcomes = append(outcomes, "other:"+err.Error())
			}
		}
		break // stream is untrustworthy after the first failure
	}
	client.Close()
	wg.Wait()
	return outcomes
}

func TestChaosConnPassThrough(t *testing.T) {
	// A zeroed config must be fully transparent.
	got := chaosPipe(t, ChaosConfig{}, 50, []byte("payload bytes"))
	if len(got) != 50 {
		t.Fatalf("got %d outcomes, want 50", len(got))
	}
	for i, o := range got {
		if o != "ok" {
			t.Fatalf("frame %d: outcome %q, want ok", i, o)
		}
	}
}

func TestChaosConnCorruptionIsDetected(t *testing.T) {
	// With corruption on, damaged frames must surface as checksum errors —
	// never as silently wrong payloads.
	cfg := ChaosConfig{Seed: 7, CorruptRate: 0.05}
	sawChecksum := false
	for seed := uint64(1); seed <= 8 && !sawChecksum; seed++ {
		cfg.Seed = seed
		for _, o := range chaosPipe(t, cfg, 200, bytes.Repeat([]byte("x"), 256)) {
			if o == "silent-corruption" {
				t.Fatal("corrupted frame decoded as valid with wrong payload")
			}
			if o == "checksum" {
				sawChecksum = true
			}
		}
	}
	if !sawChecksum {
		t.Fatal("no corruption observed across 8 seeds at 5% rate")
	}
}

func TestChaosConnCutLooksLikeHangup(t *testing.T) {
	cfg := ChaosConfig{Seed: 3, CutRate: 0.05}
	sawHangup := false
	for seed := uint64(1); seed <= 8 && !sawHangup; seed++ {
		cfg.Seed = seed
		for _, o := range chaosPipe(t, cfg, 200, []byte("abc")) {
			if o == "hangup" {
				sawHangup = true
			}
			if len(o) > 6 && o[:6] == "other:" {
				t.Fatalf("cut produced a non-hangup error: %s", o)
			}
		}
	}
	if !sawHangup {
		t.Fatal("no connection cut observed across 8 seeds at 5% rate")
	}
	// After a cut, the wrapped conn stays dead.
	client, server := net.Pipe()
	defer client.Close()
	cc := Chaos(server, ChaosConfig{Seed: 1, CutRate: 1})
	if _, err := cc.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write on cut conn: err = %v, want ErrClosedPipe", err)
	}
	if _, err := cc.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("second write on cut conn: err = %v, want ErrClosedPipe", err)
	}
}

func TestChaosScheduleDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, CorruptRate: 0.03, CutRate: 0.01}
	a := chaosPipe(t, cfg, 300, bytes.Repeat([]byte("frame"), 40))
	b := chaosPipe(t, cfg, 300, bytes.Repeat([]byte("frame"), 40))
	if len(a) != len(b) {
		t.Fatalf("outcome counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestChaosTransportWrapsBothSides(t *testing.T) {
	lb := NewLoopback()
	ct := &ChaosTransport{Inner: lb} // zero rates: transparent but wrapped
	lis, err := ct.Listen("chaos")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	var accepted net.Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		accepted, _ = lis.Accept()
	}()
	dialed, err := ct.Dial(context.Background(), "chaos")
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	<-done
	if _, ok := dialed.(*ChaosConn); !ok {
		t.Fatalf("dialed conn is %T, want *ChaosConn", dialed)
	}
	if _, ok := accepted.(*ChaosConn); !ok {
		t.Fatalf("accepted conn is %T, want *ChaosConn", accepted)
	}
	// Distinct conns must derive distinct seeds from one transport seed.
	if dialed.(*ChaosConn).cfg.Seed == accepted.(*ChaosConn).cfg.Seed {
		t.Fatal("per-conn chaos seeds did not decorrelate")
	}
	dialed.Close()
	accepted.Close()
}
