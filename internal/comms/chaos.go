package comms

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// ChaosConfig parameterizes deterministic network-fault injection. All
// fault draws are pure functions of (Seed, operation index), so a chaos
// drill replays the same kill/delay/corruption schedule on every run —
// the same property the resilience fault injector gives task execution,
// applied to the wire.
type ChaosConfig struct {
	// Seed feeds the deterministic fault schedule. Two conns with the
	// same seed misbehave identically against identical traffic.
	Seed uint64
	// CutRate is the per-operation probability that the connection is
	// killed: the underlying conn is closed and the op fails with an
	// error that classifies as a hangup (io.ErrClosedPipe).
	CutRate float64
	// DelayRate is the per-operation probability of an injected stall of
	// up to MaxDelay (drawn deterministically).
	DelayRate float64
	// MaxDelay bounds injected stalls (default 5ms when DelayRate > 0).
	MaxDelay time.Duration
	// CorruptRate is the per-operation probability that exactly one bit
	// of the transferred bytes is flipped. Frame CRC-32C turns this into
	// a detected *BadChecksumError on the reader, never silent damage.
	CorruptRate float64
}

// enabled reports whether any fault class is active.
func (c ChaosConfig) enabled() bool {
	return c.CutRate > 0 || c.DelayRate > 0 || c.CorruptRate > 0
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used
// to derive independent per-operation fault draws from (seed, counter).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chaosUnit maps a draw to [0,1).
func chaosUnit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// ChaosConn wraps a net.Conn with deterministic fault injection per
// ChaosConfig. It is used by distrib tests and failover drills to prove
// the protocol survives a hostile network: cut connections exercise the
// worker rejoin loop and coordinator re-dispatch, corruption exercises
// the frame checksum, delays exercise deadlines and lease expiry.
type ChaosConn struct {
	net.Conn
	cfg ChaosConfig
	ops atomic.Uint64
	cut atomic.Bool
}

// Chaos wraps conn with the given fault schedule. A zeroed config is a
// transparent pass-through.
func Chaos(conn net.Conn, cfg ChaosConfig) *ChaosConn {
	return &ChaosConn{Conn: conn, cfg: cfg}
}

// fault draws this operation's fault decisions. kind salts the draw so
// reads and writes at the same index decorrelate.
func (c *ChaosConn) fault(kind uint64) (cut bool, delay time.Duration, corrupt uint64, doCorrupt bool) {
	n := c.ops.Add(1)
	base := splitmix64(c.cfg.Seed ^ splitmix64(n^kind))
	if c.cfg.CutRate > 0 && chaosUnit(splitmix64(base^0x1)) < c.cfg.CutRate {
		cut = true
		return
	}
	if c.cfg.DelayRate > 0 && chaosUnit(splitmix64(base^0x2)) < c.cfg.DelayRate {
		max := c.cfg.MaxDelay
		if max <= 0 {
			max = 5 * time.Millisecond
		}
		delay = time.Duration(chaosUnit(splitmix64(base^0x3)) * float64(max))
	}
	if c.cfg.CorruptRate > 0 && chaosUnit(splitmix64(base^0x4)) < c.cfg.CorruptRate {
		doCorrupt, corrupt = true, splitmix64(base^0x5)
	}
	return
}

// kill closes the underlying conn and returns a hangup-classified error.
func (c *ChaosConn) kill(op string) error {
	c.cut.Store(true)
	c.Conn.Close()
	return fmt.Errorf("comms: chaos cut during %s: %w", op, io.ErrClosedPipe)
}

// Read implements net.Conn with fault injection. Corruption flips one
// bit of the bytes actually read.
func (c *ChaosConn) Read(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, io.ErrClosedPipe
	}
	if !c.cfg.enabled() {
		return c.Conn.Read(p)
	}
	cut, delay, draw, doCorrupt := c.fault(0x52)
	if cut {
		return 0, c.kill("read")
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	n, err := c.Conn.Read(p)
	if doCorrupt && n > 0 {
		i := draw % uint64(n)
		p[i] ^= 1 << (splitmix64(draw) % 8)
	}
	return n, err
}

// Write implements net.Conn with fault injection. Corruption flips one
// bit in a private copy, never in the caller's buffer.
func (c *ChaosConn) Write(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, io.ErrClosedPipe
	}
	if !c.cfg.enabled() {
		return c.Conn.Write(p)
	}
	cut, delay, draw, doCorrupt := c.fault(0x57)
	if cut {
		return 0, c.kill("write")
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if doCorrupt && len(p) > 0 {
		q := make([]byte, len(p))
		copy(q, p)
		i := draw % uint64(len(q))
		q[i] ^= 1 << (splitmix64(draw) % 8)
		p = q
	}
	return c.Conn.Write(p)
}

// ChaosTransport wraps a Transport so every connection it produces —
// dialed or accepted — runs through a ChaosConn. Each connection derives
// its own seed from (Seed, connection index), so faults decorrelate
// across conns while the whole schedule stays reproducible.
type ChaosTransport struct {
	Inner Transport
	Cfg   ChaosConfig
	conns atomic.Uint64
}

// wrap derives a per-conn config and wraps c.
func (t *ChaosTransport) wrap(c net.Conn) net.Conn {
	cfg := t.Cfg
	cfg.Seed = splitmix64(cfg.Seed ^ splitmix64(t.conns.Add(1)))
	return Chaos(c, cfg)
}

// Dial implements Transport.
func (t *ChaosTransport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	c, err := t.Inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c), nil
}

// Listen implements Transport.
func (t *ChaosTransport) Listen(addr string) (net.Listener, error) {
	lis, err := t.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &chaosListener{Listener: lis, t: t}, nil
}

// chaosListener wraps accepted conns.
type chaosListener struct {
	net.Listener
	t *ChaosTransport
}

// Accept implements net.Listener.
func (l *chaosListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(c), nil
}
