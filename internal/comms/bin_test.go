package comms

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"math"
	"testing"
)

func TestBinRoundTrip(t *testing.T) {
	var w BinWriter
	w.Byte(7)
	w.Uvarint(0)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1 << 40)
	w.Varint(42)
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)
	w.String("σ-cache")

	r := NewBinReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -1<<40 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Varint(); got != 42 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Blob = %v", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Fatalf("empty Blob = %v", got)
	}
	if got := r.String(); got != "σ-cache" {
		t.Fatalf("String = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestBinWriterReset(t *testing.T) {
	var w BinWriter
	w.String("first payload")
	w.Reset()
	w.Uvarint(9)
	r := NewBinReader(w.Bytes())
	if got := r.Uvarint(); got != 9 {
		t.Fatalf("after Reset: Uvarint = %d", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("after Reset: Finish: %v", err)
	}
}

func TestBinReaderErrors(t *testing.T) {
	cases := []struct {
		name string
		p    []byte
		read func(r *BinReader)
	}{
		{"byte from empty", nil, func(r *BinReader) { r.Byte() }},
		{"truncated uvarint", []byte{0x80}, func(r *BinReader) { r.Uvarint() }},
		{"truncated varint", []byte{0xff}, func(r *BinReader) { r.Varint() }},
		// Length prefix claims far more bytes than the payload holds: must
		// be rejected without allocating the claimed length.
		{"blob overruns payload", []byte{0xff, 0xff, 0xff, 0xff, 0x7f, 1, 2}, func(r *BinReader) { r.Blob() }},
		{"trailing garbage", []byte{1, 2, 3}, func(r *BinReader) { r.Byte() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewBinReader(tc.p)
			tc.read(r)
			if err := r.Finish(); !errors.Is(err, ErrBadPayload) {
				t.Fatalf("Finish = %v, want ErrBadPayload", err)
			}
			// Sticky: every later read is a zero value, no panic.
			if r.Byte() != 0 || r.Uvarint() != 0 || r.Varint() != 0 || r.Blob() != nil || r.String() != "" {
				t.Fatal("reads after an error must return zero values")
			}
		})
	}
}

func TestBinReaderIntOverflow(t *testing.T) {
	var w BinWriter
	w.Uvarint(math.MaxUint64)
	r := NewBinReader(w.Bytes())
	if got := r.Int(); got != 0 {
		t.Fatalf("Int on overflow = %d, want 0", got)
	}
	if !errors.Is(r.Err(), ErrBadPayload) {
		t.Fatalf("Err = %v, want ErrBadPayload", r.Err())
	}
}

// FuzzBinReader pins the decoder's never-panic contract on hostile
// payloads, mirroring FuzzReadFrame one layer up: whatever the bytes,
// every read returns and the only failure mode is ErrBadPayload.
func FuzzBinReader(f *testing.F) {
	var seed BinWriter
	seed.Byte(1)
	seed.Uvarint(300)
	seed.Varint(-5)
	seed.Blob([]byte("payload"))
	seed.String("name")
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, p []byte) {
		r := NewBinReader(p)
		// Drain the payload with a mixed read pattern; must never panic
		// and never read past the end.
		for r.Err() == nil && r.Remaining() > 0 {
			switch r.Remaining() % 5 {
			case 0:
				r.Byte()
			case 1:
				r.Uvarint()
			case 2:
				r.Varint()
			case 3:
				r.Blob()
			default:
				_ = r.String()
			}
		}
		if err := r.Finish(); err != nil && !errors.Is(err, ErrBadPayload) {
			t.Fatalf("Finish = %v, want nil or ErrBadPayload", err)
		}
	})
}

// nopRWC is a sink connection for send benchmarks.
type nopRWC struct{ io.Writer }

func (nopRWC) Read([]byte) (int, error) { return 0, io.EOF }
func (nopRWC) Close() error             { return nil }

// TestCodecSendMatchesMarshal pins the buffer-reuse refactor: the JSON
// payload bytes on the wire must be exactly json.Marshal's (the reused
// json.Encoder appends a newline that Send must strip — a drifted
// payload would break byte-identical drill output downstream).
func TestCodecSendMatchesMarshal(t *testing.T) {
	var buf bytes.Buffer
	c := NewCodec(nopRWC{&buf})
	msg := map[string]any{"tasks": []int{1, 2, 3}, "ttl": 30}
	for i := 0; i < 2; i++ { // twice: the second send reuses the buffer
		buf.Reset()
		if err := c.Send(5, msg); err != nil {
			t.Fatal(err)
		}
		tp, payload, err := ReadFrame(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if tp != 5 {
			t.Fatalf("type = %d", tp)
		}
		want, _ := json.Marshal(msg)
		if !bytes.Equal(payload, want) {
			t.Fatalf("payload %q, want %q", payload, want)
		}
	}
}

// BenchmarkCodecSendJSON measures per-frame allocations of the JSON
// send path; the codec-owned encode buffer keeps the steady state flat
// regardless of message size.
func BenchmarkCodecSendJSON(b *testing.B) {
	c := NewCodec(nopRWC{io.Discard})
	msg := struct {
		Tasks []int `json:"tasks"`
		TTL   int64 `json:"ttl"`
	}{Tasks: []int{100, 101, 102, 103, 104, 105, 106, 107}, TTL: 30_000_000_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(5, &msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecSendBin measures the binary send path: the reused
// BinWriter makes it allocation-free per frame.
func BenchmarkCodecSendBin(b *testing.B) {
	c := NewCodec(nopRWC{io.Discard})
	tasks := []int{100, 101, 102, 103, 104, 105, 106, 107}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := c.SendBin(5, func(w *BinWriter) {
			w.Uvarint(uint64(len(tasks)))
			for _, t := range tasks {
				w.Uvarint(uint64(t))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
