// Package comms is the wire layer of the distributed sweep engine: a
// length-prefixed, version-tagged frame format carrying JSON payloads, a
// message codec safe for one reader plus many writers per connection, and
// a Transport abstraction with two implementations — real TCP sockets for
// production and an in-memory loopback network for deterministic tests.
//
// The frame format is deliberately minimal (it plays the role MPI's
// envelope played for the SC11 runs): a 12-byte header of magic, version,
// message type, big-endian payload length, and a CRC-32C checksum of the
// type byte plus payload, followed by the payload bytes. Every decoding
// failure is a typed error — bad magic, unsupported version, oversized
// length, corrupted checksum, truncated header or payload — and the
// decoder never panics on hostile input (fuzz-tested), so a confused or
// malicious peer (or a chaos-injected flipped bit) can at worst get its
// connection dropped.
package comms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic is the two-byte frame preamble ("OM"): a cheap guard against
	// a peer that is not speaking this protocol at all.
	Magic uint16 = 0x4F4D
	// Version is the wire-format version this build speaks. A frame
	// tagged with any other version is rejected with *BadVersionError,
	// so protocol evolution fails loudly instead of misparsing.
	// Version 2 added the CRC-32C trailer to the header; a version-1
	// peer is rejected here rather than misread.
	Version byte = 2
	// MaxPayload bounds a frame's payload so a corrupt or hostile length
	// prefix cannot make the reader allocate unbounded memory.
	MaxPayload = 64 << 20

	// headerLen is magic(2) + version(1) + type(1) + length(4) + crc(4).
	headerLen = 12
)

// crcTable is the Castagnoli polynomial table; CRC-32C has hardware
// support on amd64/arm64, so the checksum is nearly free next to the JSON
// encode it guards.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameCRC is the integrity checksum carried in the header: CRC-32C over
// the type byte followed by the payload. Covering the type byte means a
// flipped bit anywhere in (type, payload) is detected; magic, version,
// and length corruption are caught by their own checks (a corrupted
// length misaligns the payload, which then fails this checksum).
func frameCRC(t MsgType, payload []byte) uint32 {
	crc := crc32.Update(0, crcTable, []byte{byte(t)})
	return crc32.Update(crc, crcTable, payload)
}

// MsgType tags a frame's payload with its message kind. The values are
// defined by the protocol built on top (internal/distrib); comms only
// transports them.
type MsgType byte

// BadMagicError reports a frame that does not start with Magic — the peer
// is not speaking this protocol.
type BadMagicError struct {
	// Got is the first two bytes received, big-endian.
	Got uint16
}

// Error implements error.
func (e *BadMagicError) Error() string {
	return fmt.Sprintf("comms: bad frame magic %#04x (want %#04x)", e.Got, Magic)
}

// BadVersionError reports a frame tagged with an unsupported wire-format
// version.
type BadVersionError struct {
	// Got is the version byte received.
	Got byte
}

// Error implements error.
func (e *BadVersionError) Error() string {
	return fmt.Sprintf("comms: unsupported frame version %d (want %d)", e.Got, Version)
}

// OversizedError reports a frame whose declared payload length exceeds
// MaxPayload.
type OversizedError struct {
	// Size is the declared payload length.
	Size uint64
}

// Error implements error.
func (e *OversizedError) Error() string {
	return fmt.Sprintf("comms: frame payload %d bytes exceeds limit %d", e.Size, MaxPayload)
}

// BadChecksumError reports a frame whose payload failed its CRC-32C
// check — a bit was flipped somewhere between the peers. The connection
// should be dropped (and, for workers, rejoined): the stream offset can
// no longer be trusted.
type BadChecksumError struct {
	// Want is the checksum the header declared; Got what the received
	// bytes hash to.
	Want, Got uint32
}

// Error implements error.
func (e *BadChecksumError) Error() string {
	return fmt.Sprintf("comms: frame checksum mismatch (header %#08x, payload %#08x)", e.Want, e.Got)
}

// ErrTruncated is wrapped by read errors reporting a frame cut off
// mid-header or mid-payload (the connection died inside a frame).
var ErrTruncated = errors.New("comms: truncated frame")

// WriteFrame writes one frame. It performs exactly two writes (header,
// payload); callers that need atomic frames on a shared writer must
// serialize calls (Codec does).
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxPayload {
		return &OversizedError{Size: uint64(len(payload))}
	}
	var h [headerLen]byte
	binary.BigEndian.PutUint16(h[0:2], Magic)
	h[2] = Version
	h[3] = byte(t)
	binary.BigEndian.PutUint32(h[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(h[8:12], frameCRC(t, payload))
	if _, err := w.Write(h[:]); err != nil {
		return fmt.Errorf("comms: write frame header: %w", err)
	}
	if len(payload) == 0 {
		return nil
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("comms: write frame payload: %w", err)
	}
	return nil
}

// ReadFrame reads one frame. A clean end of stream at a frame boundary
// returns io.EOF; a stream that dies inside a frame returns an error
// wrapping ErrTruncated; malformed headers return the typed errors above.
// The payload slice is freshly allocated and owned by the caller.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var h [headerLen]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("%w: stream ended inside the header", ErrTruncated)
		}
		return 0, nil, fmt.Errorf("comms: read frame header: %w", err)
	}
	if m := binary.BigEndian.Uint16(h[0:2]); m != Magic {
		return 0, nil, &BadMagicError{Got: m}
	}
	if h[2] != Version {
		return 0, nil, &BadVersionError{Got: h[2]}
	}
	n := binary.BigEndian.Uint32(h[4:8])
	if n > MaxPayload {
		return 0, nil, &OversizedError{Size: uint64(n)}
	}
	want := binary.BigEndian.Uint32(h[8:12])
	t := MsgType(h[3])
	var payload []byte
	if n > 0 {
		payload = make([]byte, n)
		if k, err := io.ReadFull(r, payload); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || err == io.EOF {
				return 0, nil, fmt.Errorf("%w: stream ended %d bytes into a %d-byte payload", ErrTruncated, k, n)
			}
			return 0, nil, fmt.Errorf("comms: read frame payload: %w", err)
		}
	}
	if got := frameCRC(t, payload); got != want {
		return 0, nil, &BadChecksumError{Want: want, Got: got}
	}
	return t, payload, nil
}
