package comms

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type ping struct {
	N int `json:"n"`
}

func decodeJSON(payload []byte, v any) error { return json.Unmarshal(payload, v) }

func TestCodecRoundTripOverLoopback(t *testing.T) {
	lb := NewLoopback()
	lis, err := lb.Listen("")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	addr := lis.Addr().String()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := lis.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		cd := NewCodec(conn)
		defer cd.Close()
		for {
			mt, payload, err := cd.Recv()
			if err != nil {
				return // client hung up
			}
			var p ping
			if err := decodeJSON(payload, &p); err != nil {
				t.Errorf("decode: %v", err)
				return
			}
			if err := cd.Send(mt+1, ping{N: p.N * 2}); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()

	conn, err := lb.Dial(context.Background(), addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	cd := NewCodec(conn)
	for i := 1; i <= 5; i++ {
		if err := cd.Send(MsgType(i), ping{N: i}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		mt, payload, err := cd.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if mt != MsgType(i+1) {
			t.Fatalf("reply type = %d, want %d", mt, i+1)
		}
		var p ping
		if err := decodeJSON(payload, &p); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if p.N != 2*i {
			t.Fatalf("reply N = %d, want %d", p.N, 2*i)
		}
	}
	cd.Close()
	wg.Wait()
	lis.Close()
}

func TestLoopbackDialUnknownAddr(t *testing.T) {
	lb := NewLoopback()
	if _, err := lb.Dial(context.Background(), "nowhere"); err == nil {
		t.Fatal("dial of unregistered address succeeded")
	}
}

func TestLoopbackListenerClose(t *testing.T) {
	lb := NewLoopback()
	lis, err := lb.Listen("a")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := lb.Listen("a"); err == nil {
		t.Fatal("duplicate Listen on one name succeeded")
	}
	lis.Close()
	lis.Close() // idempotent
	if _, err := lis.Accept(); err != net.ErrClosed {
		t.Fatalf("Accept after close: err = %v, want net.ErrClosed", err)
	}
	if _, err := lb.Dial(context.Background(), "a"); err == nil {
		t.Fatal("dial of closed listener succeeded")
	}
	// The name is free again after close.
	if _, err := lb.Listen("a"); err != nil {
		t.Fatalf("re-Listen after close: %v", err)
	}
}

func TestLoopbackDialHonorsContext(t *testing.T) {
	lb := NewLoopback()
	lis, err := lb.Listen("busy")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer lis.Close()
	// Nobody accepts, so Dial blocks until the context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := lb.Dial(ctx, "busy"); err != context.DeadlineExceeded {
		t.Fatalf("Dial: err = %v, want context.DeadlineExceeded", err)
	}
}

func TestDialRetryWaitsForListener(t *testing.T) {
	lb := NewLoopback()
	go func() {
		time.Sleep(150 * time.Millisecond)
		lis, err := lb.Listen("late")
		if err != nil {
			t.Errorf("Listen: %v", err)
			return
		}
		conn, err := lis.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := DialRetry(context.Background(), lb, "late", 2*time.Second)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	conn.Close()
}

func TestDialRetryGivesUp(t *testing.T) {
	lb := NewLoopback()
	start := time.Now()
	_, err := DialRetry(context.Background(), lb, "never", 50*time.Millisecond)
	if err == nil {
		t.Fatal("DialRetry to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("DialRetry took %v, patience was 50ms", elapsed)
	}
	// The give-up error names the address and the underlying failure, not
	// just the patience window.
	if !strings.Contains(err.Error(), "never") || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("give-up error hides the dial failure: %v", err)
	}
}

func TestDialRetrySurfacesLastErrorOnContextExpiry(t *testing.T) {
	lb := NewLoopback()
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	_, err := DialRetry(ctx, lb, "never", 10*time.Second)
	if err == nil {
		t.Fatal("DialRetry with expired context succeeded")
	}
	// Before, an expired ctx returned a bare ctx.Err() and the operator
	// never learned why the dials were failing.
	if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("ctx-expiry error hides the last dial failure: %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("ctx-expiry error hides the context cause: %v", err)
	}
}

func TestDialRetryBackoffGrows(t *testing.T) {
	// The retry schedule is deterministic in the address and must grow:
	// a fixed interval would thundering-herd a restarting coordinator.
	h := fnvAddrSeed("coord:1234")
	p := dialBackoffPolicy(h)
	prev := time.Duration(-1)
	grew := false
	for a := 0; a < 6; a++ {
		d := p.Backoff(a)
		if d <= 0 {
			t.Fatalf("backoff(%d) = %v, want > 0", a, d)
		}
		if d != p.Backoff(a) {
			t.Fatalf("backoff(%d) not deterministic", a)
		}
		if d > prev {
			grew = d > 2*time.Duration(25*time.Millisecond) || grew
		}
		prev = d
	}
	if p.Backoff(5) <= p.Backoff(0) {
		t.Fatalf("backoff does not grow: first %v, sixth %v", p.Backoff(0), p.Backoff(5))
	}
}
