package dephasing

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/negf"
	"repro/internal/sparse"
	"repro/internal/tb"
)

func chainH(t *testing.T, n int, pot []float64) *sparse.BlockTridiag {
	t.Helper()
	s, err := lattice.NewLinearChain(0.5, n)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tb.Assemble(s, tb.SingleBandChain(0, -1), tb.Options{Potential: pot})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestValidation(t *testing.T) {
	h := chainH(t, 4, nil)
	if _, err := NewSolver(h, 0, 0.1); err == nil {
		t.Fatal("accepted zero broadening")
	}
	if _, err := NewSolver(h, 1e-6, -0.1); err == nil {
		t.Fatal("accepted negative dephasing strength")
	}
}

// TestBallisticLimit: at D = 0 the SCBA solver must reproduce the Caroli
// transmission of the coherent NEGF solver exactly.
func TestBallisticLimit(t *testing.T) {
	pot := []float64{0, 0, 0.4, 0.4, 0, 0}
	h := chainH(t, 6, pot)
	deph, err := NewSolver(h, 1e-6, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := negf.NewSolver(h, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{-1.2, -0.3, 0.5, 1.1} {
		te, err := deph.EffectiveTransmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		tb0, err := ref.Transmission(e)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		// Agreement is limited by the finite contact broadening η, which
		// acts as a weak absorbing probe in the Meir-Wingreen evaluation.
		if math.Abs(te-tb0) > 1e-4*(1+tb0) {
			t.Fatalf("E=%g: SCBA D=0 T=%g vs ballistic %g", e, te, tb0)
		}
	}
}

// TestCurrentConservation: the converged SCBA currents at the two contacts
// must balance exactly — dephasing redistributes but never absorbs
// carriers (elastic scattering).
func TestCurrentConservation(t *testing.T) {
	h := chainH(t, 8, nil)
	deph, err := NewSolver(h, 1e-6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []float64{-1.0, 0.0, 0.7} {
		r, err := deph.Solve(e, 1, 0)
		if err != nil {
			t.Fatalf("E=%g: %v", e, err)
		}
		// Conservation is exact in the model; the residual is the O(η)
		// absorption of the finite numerical broadening.
		if math.Abs(r.CurrentL+r.CurrentR) > 1e-4*(1+math.Abs(r.CurrentL)) {
			t.Fatalf("E=%g: I_L=%g, I_R=%g — not conserved", e, r.CurrentL, r.CurrentR)
		}
		if r.CurrentL <= 0 {
			t.Fatalf("E=%g: forward current %g not positive", e, r.CurrentL)
		}
	}
}

// TestDephasingSuppressesBallisticFlow: on a clean single-mode wire,
// adding dephasing must reduce the effective transmission below 1.
func TestDephasingSuppressesBallisticFlow(t *testing.T) {
	h := chainH(t, 10, nil)
	const e = 0.3
	tOf := func(d float64) float64 {
		deph, err := NewSolver(h, 1e-6, d)
		if err != nil {
			t.Fatal(err)
		}
		te, err := deph.EffectiveTransmission(e)
		if err != nil {
			t.Fatal(err)
		}
		return te
	}
	t0 := tOf(0)
	t1 := tOf(0.02)
	t2 := tOf(0.08)
	if math.Abs(t0-1) > 1e-4 {
		t.Fatalf("clean ballistic T = %g", t0)
	}
	if !(t2 < t1 && t1 < t0) {
		t.Fatalf("dephasing did not suppress monotonically: %g, %g, %g", t0, t1, t2)
	}
}

// TestOhmicScaling: with fixed dephasing, the resistance excess
// 1/T_eff − 1 must grow with device length (the Büttiker-chain ohmic
// limit), in contrast to the length-independent ballistic result.
func TestOhmicScaling(t *testing.T) {
	const e, d = 0.2, 0.05
	excess := func(n int) float64 {
		h := chainH(t, n, nil)
		deph, err := NewSolver(h, 1e-6, d)
		if err != nil {
			t.Fatal(err)
		}
		te, err := deph.EffectiveTransmission(e)
		if err != nil {
			t.Fatal(err)
		}
		return 1/te - 1
	}
	r8 := excess(8)
	r16 := excess(16)
	r24 := excess(24)
	if !(r8 < r16 && r16 < r24) {
		t.Fatalf("resistance not increasing with length: %g, %g, %g", r8, r16, r24)
	}
	// Roughly linear growth: the incremental resistance per added segment
	// should be comparable between the two intervals (within 50%).
	d1 := (r16 - r8) / 8
	d2 := (r24 - r16) / 8
	if d2 < 0.5*d1 || d2 > 2*d1 {
		t.Fatalf("resistance growth not ohmic-like: %g vs %g per site", d1, d2)
	}
}

// TestDOSStaysNormalizedUnderDephasing: dephasing broadens but must not
// create or destroy spectral weight dramatically at a fixed energy window
// (sanity rather than a strict sum rule, since we probe one energy).
func TestDOSPositiveUnderDephasing(t *testing.T) {
	h := chainH(t, 6, nil)
	deph, err := NewSolver(h, 1e-6, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := deph.Solve(0.4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range r.DOS {
		if d < -1e-10 {
			t.Fatalf("negative DOS %g at site %d under dephasing", d, i)
		}
	}
}

// TestCachedSelfEnergies: an SCBA solver routed through the shared
// sweep-scale cache reproduces the uncached solver to 1e-12 and actually
// exercises the cache (repeat energies hit; the decimation runs once per
// lead per energy).
func TestCachedSelfEnergies(t *testing.T) {
	h := chainH(t, 6, []float64{0, 0, 0.3, 0.3, 0, 0})
	plain, err := NewSolver(h, 1e-6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewSolver(h, 1e-6, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cached.Cache = negf.NewSelfEnergyCache()

	energies := []float64{-0.5, 0.2, 0.9}
	for pass := 0; pass < 2; pass++ { // second pass re-solves every energy
		for _, e := range energies {
			want, err := plain.Solve(e, 1, 0)
			if err != nil {
				t.Fatalf("plain E=%g: %v", e, err)
			}
			got, err := cached.Solve(e, 1, 0)
			if err != nil {
				t.Fatalf("cached E=%g: %v", e, err)
			}
			if d := math.Abs(got.TEff - want.TEff); d > 1e-12 {
				t.Fatalf("E=%g: cached TEff differs by %g", e, d)
			}
			if d := math.Abs(got.CurrentL - want.CurrentL); d > 1e-12 {
				t.Fatalf("E=%g: cached CurrentL differs by %g", e, d)
			}
		}
	}
	st := cached.Cache.Stats()
	if want := int64(2 * len(energies)); st.Misses != want || st.Decimations != want {
		t.Fatalf("stats = %+v; want %d misses and decimations", st, want)
	}
	if st.Hits != int64(2*len(energies)) {
		t.Fatalf("second pass should hit every energy: %+v", st)
	}
}
