// Package dephasing extends the ballistic solvers with elastic dephasing
// in the self-consistent Born approximation (SCBA) — the first step beyond
// the coherent limit of the paper (incoherent scattering was the stated
// next milestone of petascale quantum-transport simulation). The model is
// a local (orbital-diagonal) elastic scatterer of strength D (eV²):
//
//	Σ_s^r(E)  = D · diag(G^r(E))
//	Σ_s^in(E) = D · diag(G^n(E))
//
// iterated to self-consistency together with the electron correlation
// function G^n = G^r·Σ^in·G^a, Σ^in = Γ_L·f_L + Γ_R·f_R + Σ_s^in. Current
// conservation between the contacts is exact at convergence — the litmus
// test of the implementation. The solver uses dense Green's functions (the
// SCBA diagonal couples all layers), so it targets the small devices of
// the validation studies rather than the petascale workloads.
package dephasing

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/sparse"
)

// Solver runs SCBA dephasing calculations on a fixed device Hamiltonian.
type Solver struct {
	// H is the device Hamiltonian in block-tridiagonal layer form.
	H *sparse.BlockTridiag
	// Leads are the semi-infinite contacts.
	Leads *negf.Leads
	// Eta is the contact broadening (eV).
	Eta float64
	// D is the elastic dephasing strength in eV² (0 recovers the
	// ballistic limit exactly).
	D float64
	// Tol is the SCBA convergence tolerance on the scattering self-energy
	// diagonal (eV); MaxIter bounds the iteration.
	Tol     float64
	MaxIter int
	// Cache optionally memoizes the contact self-energies across solves,
	// through the same sweep-scale cache the ballistic solvers use (the
	// SCBA iteration changes only the scattering self-energy, never the
	// contacts, so every energy pays the Sancho-Rubio cost at most once
	// even across D-strength or occupation scans).
	Cache *negf.SelfEnergyCache
}

// NewSolver builds an SCBA solver with flat-band leads continued from the
// device end layers and production defaults for the iteration controls.
func NewSolver(h *sparse.BlockTridiag, eta, d float64) (*Solver, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("dephasing: broadening must be positive, got %g", eta)
	}
	if d < 0 {
		return nil, fmt.Errorf("dephasing: negative dephasing strength %g", d)
	}
	leads, err := negf.LeadsFromDevice(h)
	if err != nil {
		return nil, err
	}
	return &Solver{H: h, Leads: leads, Eta: eta, D: d, Tol: 1e-9, MaxIter: 200}, nil
}

// Result is the converged single-energy output.
type Result struct {
	// E is the energy (eV).
	E float64
	// TEff is the effective transmission: the left-contact current kernel
	// divided by (f_L − f_R), equal to the Caroli transmission at D = 0.
	TEff float64
	// CurrentL and CurrentR are the contact current kernels (units of
	// transmission); conservation requires CurrentL = −CurrentR.
	CurrentL, CurrentR float64
	// DOS is the orbital-resolved density of states (1/eV).
	DOS []float64
	// Iterations used by the SCBA loop.
	Iterations int
}

// Solve computes the SCBA-converged observables at energy e with contact
// occupations fL and fR (dimensionless, typically Fermi factors).
func (s *Solver) Solve(e, fL, fR float64) (*Result, error) {
	z := complex(e, s.Eta)
	sigL, sigR, err := negf.CachedSelfEnergies(s.Cache, s.Leads, z)
	if err != nil {
		return nil, err
	}
	ws := linalg.GetWorkspace()
	defer ws.Release()
	gamL := ws.Get(sigL.Rows, sigL.Cols)
	negf.BroadeningInto(gamL, sigL)
	gamR := ws.Get(sigR.Rows, sigR.Cols)
	negf.BroadeningInto(gamR, sigR)
	n := s.H.N()
	nl := s.H.Layers()

	// Base open-system matrix without the scattering self-energy.
	base := sparse.ShiftedFromHermitianWS(s.H, z, ws)
	base.AddScaledToDiagBlock(0, sigL, -1)
	base.AddScaledToDiagBlock(nl-1, sigR, -1)
	baseDense := ws.Get(n, n)
	denseBTDInto(baseDense, base)

	// Contact inflow kernel Γ_L·f_L + Γ_R·f_R embedded at the contacts.
	off := s.H.Offsets()
	inflow0 := ws.Get(n, n)
	addScaledSubmatrix(inflow0, 0, 0, gamL, complex(fL, 0))
	addScaledSubmatrix(inflow0, off[nl-1], off[nl-1], gamR, complex(fR, 0))

	sigSr := make([]complex128, n) // retarded scattering self-energy diagonal
	sigSin := make([]float64, n)   // inscattering diagonal
	res := &Result{E: e}
	// Iteration buffers, reused across every self-consistency step: the
	// SCBA loop previously re-materialized A, Σ^in, G† and two products per
	// iteration — hundreds of full n×n temporaries per energy point.
	a := ws.Get(n, n)
	g := ws.Get(n, n)
	gn := ws.Get(n, n)
	sin := ws.Get(n, n)
	gs := ws.Get(n, n)
	for iter := 1; iter <= s.MaxIter; iter++ {
		res.Iterations = iter
		// G^r with the current scattering self-energy.
		a.CopyFrom(baseDense)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)-sigSr[i])
		}
		if err := linalg.InverseInto(g, a, ws); err != nil {
			return nil, fmt.Errorf("dephasing: G inversion: %w", err)
		}
		// G^n = G·Σ^in·G† with Σ^in = inflow + diag(σ_s^in); the adjoint is
		// read in place by the fused conjugate GEMM.
		sin.CopyFrom(inflow0)
		for i := 0; i < n; i++ {
			sin.Set(i, i, sin.At(i, i)+complex(sigSin[i], 0))
		}
		linalg.MulInto(gs, g, linalg.NoTrans, sin, linalg.NoTrans)
		linalg.GemmInto(gn, 1, gs, linalg.NoTrans, g, linalg.ConjTrans, 0)
		// SCBA updates.
		var delta float64
		for i := 0; i < n; i++ {
			newR := complex(s.D, 0) * g.At(i, i)
			newIn := s.D * real(gn.At(i, i))
			delta = math.Max(delta, cAbs(newR-sigSr[i]))
			delta = math.Max(delta, math.Abs(newIn-sigSin[i]))
			sigSr[i] = newR
			sigSin[i] = newIn
		}
		if s.D == 0 || delta < s.Tol {
			break
		}
		if iter == s.MaxIter {
			return nil, fmt.Errorf("dephasing: SCBA did not converge in %d iterations (Δ = %g)", s.MaxIter, delta)
		}
	}

	// Spectral function A = i(G − G†) shares the broadening kernel (it is
	// Γ applied to G); contact currents from i_α = Tr[Γ_α·(f_α·A − G^n)]
	// (Meir-Wingreen, elastic local SCBA) via the O(n²) trace identity.
	aSpec := ws.Get(n, n)
	negf.BroadeningInto(aSpec, g)
	res.DOS = make([]float64, n)
	for i := 0; i < n; i++ {
		res.DOS[i] = real(aSpec.At(i, i)) / (2 * math.Pi)
	}
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	res.CurrentL = contactCurrent(gamL, aSpec, gn, 0, n0, fL, ws)
	res.CurrentR = contactCurrent(gamR, aSpec, gn, off[nl-1], nN, fR, ws)
	if df := fL - fR; df != 0 {
		res.TEff = res.CurrentL / df
	}
	return res, nil
}

// contactCurrent evaluates Tr[Γ·(f·A − G^n)] over the contact block of
// size nc anchored at global offset o, without materializing any product:
// Tr[Γ·M] = Σ_ij Γ_ij·M_ji costs O(nc²).
func contactCurrent(gam, aSpec, gn *linalg.Matrix, o, nc int, f float64, ws *linalg.Workspace) float64 {
	m := ws.Get(nc, nc)
	defer ws.Put(m)
	fc := complex(f, 0)
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			m.Set(i, j, fc*aSpec.At(o+i, o+j)-gn.At(o+i, o+j))
		}
	}
	return real(linalg.TraceMul(gam, m))
}

// denseBTDInto expands a block-tridiagonal matrix into the zeroed dense dst.
func denseBTDInto(dst *linalg.Matrix, m *sparse.BlockTridiag) {
	off := m.Offsets()
	for i, blk := range m.Diag {
		dst.SetSubmatrix(off[i], off[i], blk)
	}
	for i := range m.Upper {
		dst.SetSubmatrix(off[i], off[i+1], m.Upper[i])
		dst.SetSubmatrix(off[i+1], off[i], m.Lower[i])
	}
}

// addScaledSubmatrix accumulates s·src into dst at block offset (r0, c0).
func addScaledSubmatrix(dst *linalg.Matrix, r0, c0 int, src *linalg.Matrix, s complex128) {
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			dst.Set(r0+i, c0+j, dst.At(r0+i, c0+j)+s*src.At(i, j))
		}
	}
}

// EffectiveTransmission returns T_eff(e) for unit occupation difference
// (f_L = 1, f_R = 0).
func (s *Solver) EffectiveTransmission(e float64) (float64, error) {
	r, err := s.Solve(e, 1, 0)
	if err != nil {
		return 0, err
	}
	return r.TEff, nil
}

func cAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }
