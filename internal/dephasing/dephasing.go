// Package dephasing extends the ballistic solvers with elastic dephasing
// in the self-consistent Born approximation (SCBA) — the first step beyond
// the coherent limit of the paper (incoherent scattering was the stated
// next milestone of petascale quantum-transport simulation). The model is
// a local (orbital-diagonal) elastic scatterer of strength D (eV²):
//
//	Σ_s^r(E)  = D · diag(G^r(E))
//	Σ_s^in(E) = D · diag(G^n(E))
//
// iterated to self-consistency together with the electron correlation
// function G^n = G^r·Σ^in·G^a, Σ^in = Γ_L·f_L + Γ_R·f_R + Σ_s^in. Current
// conservation between the contacts is exact at convergence — the litmus
// test of the implementation. The solver uses dense Green's functions (the
// SCBA diagonal couples all layers), so it targets the small devices of
// the validation studies rather than the petascale workloads.
package dephasing

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/sparse"
)

// Solver runs SCBA dephasing calculations on a fixed device Hamiltonian.
type Solver struct {
	// H is the device Hamiltonian in block-tridiagonal layer form.
	H *sparse.BlockTridiag
	// Leads are the semi-infinite contacts.
	Leads *negf.Leads
	// Eta is the contact broadening (eV).
	Eta float64
	// D is the elastic dephasing strength in eV² (0 recovers the
	// ballistic limit exactly).
	D float64
	// Tol is the SCBA convergence tolerance on the scattering self-energy
	// diagonal (eV); MaxIter bounds the iteration.
	Tol     float64
	MaxIter int
}

// NewSolver builds an SCBA solver with flat-band leads continued from the
// device end layers and production defaults for the iteration controls.
func NewSolver(h *sparse.BlockTridiag, eta, d float64) (*Solver, error) {
	if eta <= 0 {
		return nil, fmt.Errorf("dephasing: broadening must be positive, got %g", eta)
	}
	if d < 0 {
		return nil, fmt.Errorf("dephasing: negative dephasing strength %g", d)
	}
	leads, err := negf.LeadsFromDevice(h)
	if err != nil {
		return nil, err
	}
	return &Solver{H: h, Leads: leads, Eta: eta, D: d, Tol: 1e-9, MaxIter: 200}, nil
}

// Result is the converged single-energy output.
type Result struct {
	// E is the energy (eV).
	E float64
	// TEff is the effective transmission: the left-contact current kernel
	// divided by (f_L − f_R), equal to the Caroli transmission at D = 0.
	TEff float64
	// CurrentL and CurrentR are the contact current kernels (units of
	// transmission); conservation requires CurrentL = −CurrentR.
	CurrentL, CurrentR float64
	// DOS is the orbital-resolved density of states (1/eV).
	DOS []float64
	// Iterations used by the SCBA loop.
	Iterations int
}

// Solve computes the SCBA-converged observables at energy e with contact
// occupations fL and fR (dimensionless, typically Fermi factors).
func (s *Solver) Solve(e, fL, fR float64) (*Result, error) {
	z := complex(e, s.Eta)
	sigL, sigR, err := s.Leads.SelfEnergies(z)
	if err != nil {
		return nil, err
	}
	gamL := negf.Broadening(sigL)
	gamR := negf.Broadening(sigR)
	n := s.H.N()
	nl := s.H.Layers()

	// Base open-system matrix without the scattering self-energy.
	base := sparse.ShiftedFromHermitian(s.H, z)
	base.AddToDiagBlock(0, sigL.Scale(-1))
	base.AddToDiagBlock(nl-1, sigR.Scale(-1))
	baseDense := base.Dense()

	// Contact inflow kernel Γ_L·f_L + Γ_R·f_R embedded at the contacts.
	off := s.H.Offsets()
	inflow0 := linalg.New(n, n)
	inflow0.SetSubmatrix(0, 0, gamL.Scale(complex(fL, 0)))
	inflow0.SetSubmatrix(off[nl-1], off[nl-1], gamR.Scale(complex(fR, 0)))

	sigSr := make([]complex128, n) // retarded scattering self-energy diagonal
	sigSin := make([]float64, n)   // inscattering diagonal
	res := &Result{E: e}
	var g, gn *linalg.Matrix
	for iter := 1; iter <= s.MaxIter; iter++ {
		res.Iterations = iter
		// G^r with the current scattering self-energy.
		a := baseDense.Clone()
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)-sigSr[i])
		}
		g, err = linalg.Inverse(a)
		if err != nil {
			return nil, fmt.Errorf("dephasing: G inversion: %w", err)
		}
		// G^n = G·Σ^in·G† with Σ^in = inflow + diag(σ_s^in).
		sin := inflow0.Clone()
		for i := 0; i < n; i++ {
			sin.Set(i, i, sin.At(i, i)+complex(sigSin[i], 0))
		}
		gn = linalg.Mul3(g, sin, g.ConjTranspose())
		// SCBA updates.
		var delta float64
		for i := 0; i < n; i++ {
			newR := complex(s.D, 0) * g.At(i, i)
			newIn := s.D * real(gn.At(i, i))
			delta = math.Max(delta, cAbs(newR-sigSr[i]))
			delta = math.Max(delta, math.Abs(newIn-sigSin[i]))
			sigSr[i] = newR
			sigSin[i] = newIn
		}
		if s.D == 0 || delta < s.Tol {
			break
		}
		if iter == s.MaxIter {
			return nil, fmt.Errorf("dephasing: SCBA did not converge in %d iterations (Δ = %g)", s.MaxIter, delta)
		}
	}

	// Spectral function A = i(G − G†); contact currents from
	// i_α = Tr[Γ_α·(f_α·A − G^n)] (Meir-Wingreen, elastic local SCBA).
	aSpec := g.Sub(g.ConjTranspose()).Scale(complex(0, 1))
	res.DOS = make([]float64, n)
	for i := 0; i < n; i++ {
		res.DOS[i] = real(aSpec.At(i, i)) / (2 * math.Pi)
	}
	n0 := s.H.LayerSize(0)
	nN := s.H.LayerSize(nl - 1)
	aL := aSpec.Submatrix(0, 0, n0, n0)
	gnL := gn.Submatrix(0, 0, n0, n0)
	aR := aSpec.Submatrix(off[nl-1], off[nl-1], nN, nN)
	gnR := gn.Submatrix(off[nl-1], off[nl-1], nN, nN)
	res.CurrentL = real(gamL.Mul(aL.Scale(complex(fL, 0)).Sub(gnL)).Trace())
	res.CurrentR = real(gamR.Mul(aR.Scale(complex(fR, 0)).Sub(gnR)).Trace())
	if df := fL - fR; df != 0 {
		res.TEff = res.CurrentL / df
	}
	return res, nil
}

// EffectiveTransmission returns T_eff(e) for unit occupation difference
// (f_L = 1, f_R = 0).
func (s *Solver) EffectiveTransmission(e float64) (float64, error) {
	r, err := s.Solve(e, 1, 0)
	if err != nil {
		return 0, err
	}
	return r.TEff, nil
}

func cAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }
