package phonon

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/sparse"
)

func chainMatrix(t *testing.T, n int, alpha, beta, mass float64) (*sparse.BlockTridiag, float64) {
	t.Helper()
	s, err := lattice.NewLinearChain(0.25, n)
	if err != nil {
		t.Fatal(err)
	}
	m := Model{Alpha: alpha, Beta: beta, Mass: []float64{mass}}
	d, err := DynamicalMatrix(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return d, s.LayerPeriod
}

func TestModelValidation(t *testing.T) {
	s, _ := lattice.NewLinearChain(0.25, 4)
	if _, err := DynamicalMatrix(s, Model{Alpha: -1, Beta: 1, Mass: []float64{1}}); err == nil {
		t.Fatal("accepted negative alpha")
	}
	if _, err := DynamicalMatrix(s, Model{Alpha: 1, Beta: 0, Mass: nil}); err == nil {
		t.Fatal("accepted missing masses")
	}
	if _, err := DynamicalMatrix(s, Model{Alpha: 1, Beta: 0, Mass: []float64{0}}); err == nil {
		t.Fatal("accepted zero mass")
	}
}

// TestChainDispersionAnalytic: the monoatomic chain's longitudinal branch
// is ω(q) = 2·√(α/m)·|sin(qa/2)| and the transverse pair replaces α by β.
func TestChainDispersionAnalytic(t *testing.T) {
	const alpha, beta, mass = 40.0, 10.0, 28.0
	d, period := chainMatrix(t, 6, alpha, beta, mass)
	disp, err := Bands(d, period, 32)
	if err != nil {
		t.Fatal(err)
	}
	for iq, q := range disp.Q {
		s := math.Abs(math.Sin(q * period / 2))
		wantT := 2 * math.Sqrt(beta/mass) * s
		wantL := 2 * math.Sqrt(alpha/mass) * s
		got := disp.Omega[iq]
		// Branches ascend: two degenerate transverse, then longitudinal.
		// ω = √(ω²) amplifies eigenvalue roundoff near Γ, hence 1e-7.
		if math.Abs(got[0]-wantT) > 1e-7 || math.Abs(got[1]-wantT) > 1e-7 {
			t.Fatalf("q=%g: transverse ω = %v, want %g", q, got[:2], wantT)
		}
		if math.Abs(got[2]-wantL) > 1e-7 {
			t.Fatalf("q=%g: longitudinal ω = %g, want %g", q, got[2], wantL)
		}
	}
}

// TestAcousticSumRule: at q = 0 all branches must be gapless — rigid
// translations cost no energy.
func TestAcousticSumRule(t *testing.T) {
	d, period := chainMatrix(t, 5, 40, 10, 28)
	// An even grid starting at −π/a contains q = 0: with nq = 2 the grid
	// is exactly {−π/a, 0}.
	disp, err := Bands(d, period, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := disp.Omega[1]
	for b, w := range g {
		if w > 1e-7 {
			t.Fatalf("acoustic branch %d has ω(0) = %g, want 0", b, w)
		}
	}
}

// TestChainTransmissionSteps: a clean chain transmits all three acoustic
// branches — T = 3 below the transverse band top, T = 1 between the
// transverse and longitudinal tops, T = 0 above.
func TestChainTransmissionSteps(t *testing.T) {
	const alpha, beta, mass = 40.0, 10.0, 28.0
	d, _ := chainMatrix(t, 8, alpha, beta, mass)
	wT := 2 * math.Sqrt(beta/mass)
	wL := 2 * math.Sqrt(alpha/mass)
	cases := []struct {
		omega float64
		want  float64
	}{
		{0.5 * wT, 3},
		{0.9 * wT, 3},
		{0.5 * (wT + wL), 1},
		{0.95 * wL, 1},
		{1.1 * wL, 0},
	}
	for _, tc := range cases {
		got, err := Transmission(d, tc.omega)
		if err != nil {
			t.Fatalf("ω=%g: %v", tc.omega, err)
		}
		if math.Abs(got-tc.want) > 1e-3 {
			t.Fatalf("ω=%g: T=%g, want %g", tc.omega, got, tc.want)
		}
	}
}

// TestThermalConductanceQuantum: at low temperature every acoustic branch
// contributes exactly one universal quantum κ₀ = π²k_B²T/3h — the
// canonical validation of ballistic phonon transport.
func TestThermalConductanceQuantum(t *testing.T) {
	d, _ := chainMatrix(t, 6, 40, 10, 28)
	const temp = 2.0 // K: kT ≪ all band widths
	// Frequency grid covering the thermally active window generously.
	omegas := make([]float64, 600)
	for i := range omegas {
		omegas[i] = 0.25 * float64(i) / float64(len(omegas)-1)
	}
	kappa, err := ThermalConductance(d, omegas, temp)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * ConductanceQuantumThermal(temp)
	if math.Abs(kappa-want)/want > 0.02 {
		t.Fatalf("κ(2K) = %g W/K, want 3·κ₀ = %g W/K", kappa, want)
	}
}

func TestThermalConductanceMonotoneInT(t *testing.T) {
	d, _ := chainMatrix(t, 6, 40, 10, 28)
	omegas := make([]float64, 400)
	for i := range omegas {
		omegas[i] = 3.0 * float64(i) / float64(len(omegas)-1)
	}
	prev := 0.0
	for _, temp := range []float64{2, 10, 50, 150, 300} {
		k, err := ThermalConductance(d, omegas, temp)
		if err != nil {
			t.Fatal(err)
		}
		if k <= prev {
			t.Fatalf("κ(%gK) = %g not increasing", temp, k)
		}
		prev = k
	}
}

// TestSiWirePhonons: the 3-D silicon nanowire dynamical matrix is stable
// (no imaginary frequencies), gapless at Γ, and transmits at least the
// four acoustic branches at low frequency.
func TestSiWirePhonons(t *testing.T) {
	s, err := lattice.NewZincblendeNanowire(0.5431, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := SiliconVFF()
	d, err := DynamicalMatrix(s, m)
	if err != nil {
		t.Fatal(err)
	}
	disp, err := Bands(d, s.LayerPeriod, 8)
	if err != nil {
		t.Fatal(err) // Bands errors on unstable modes
	}
	if mx := disp.MaxFrequency(); mx < 1 || mx > 8 {
		t.Fatalf("Si wire top phonon frequency %g natural units implausible", mx)
	}
	// Γ point (grid index 4 of 8 starting at −π/a): three rigid
	// translations are exactly gapless.
	gamma := disp.Omega[4]
	for b := 0; b < 3; b++ {
		if gamma[b] > 1e-6 {
			t.Fatalf("Γ acoustic branch %d has ω = %g", b, gamma[b])
		}
	}
	tLow, err := Transmission(d, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if tLow < 1 {
		t.Fatalf("low-frequency phonon transmission %g < 1", tLow)
	}
}

func TestThermalConductanceValidation(t *testing.T) {
	d, _ := chainMatrix(t, 4, 40, 10, 28)
	if _, err := ThermalConductance(d, []float64{0.1}, 300); err == nil {
		t.Fatal("accepted single-point grid")
	}
	if _, err := ThermalConductance(d, []float64{0, 0.1}, -5); err == nil {
		t.Fatal("accepted negative temperature")
	}
	if _, err := Transmission(d, -1); err == nil {
		t.Fatal("accepted negative frequency")
	}
}
