// Package phonon adds lattice dynamics to the simulator — the
// valence-force-field line of the paper's research group (phonon spectra
// and thermal properties of III-V nanowires). A nearest-neighbor
// bond-directional force model builds the mass-scaled dynamical matrix of
// any lattice.Structure in the same block-tridiagonal layer form as the
// electronic Hamiltonian, so the *entire* quantum-transport stack
// (surface Green's functions, RGF, transmission) applies verbatim with
// the substitution E → ω²: phonon dispersions, ballistic phonon
// transmission, and the Landauer thermal conductance with its universal
// low-temperature quantum follow.
//
// Units: force constants in N/m, masses in amu; the dynamical matrix then
// carries ω² in units of (2.4543×10¹³ rad/s)², i.e. ħω in units of
// 16.152 meV (EnergyQuantum), which keeps matrix entries O(1)-O(100).
package phonon

import (
	"fmt"
	"math"

	"repro/internal/lattice"
	"repro/internal/linalg"
	"repro/internal/negf"
	"repro/internal/sparse"
	"repro/internal/units"
)

// EnergyQuantum is ħ·ω₀ in eV for the natural frequency unit
// ω₀ = √((1 N/m)/(1 amu)) = 2.4543×10¹³ rad/s.
const EnergyQuantum = 1.61519e-2

// Model is the nearest-neighbor bond-directional force field: each bond
// contributes a longitudinal spring Alpha along the bond and a transverse
// spring Beta perpendicular to it; on-site blocks follow from the
// acoustic sum rule (rigid translations cost no energy).
type Model struct {
	// Alpha is the bond-stretching force constant (N/m).
	Alpha float64
	// Beta is the bond-bending (transverse) force constant (N/m).
	Beta float64
	// Mass is the atomic mass per species (amu); one entry per species
	// index appearing in the structure.
	Mass []float64
}

// SiliconVFF returns force constants reproducing the qualitative silicon
// phonon spectrum (acoustic branches to ~20 meV at this bond topology).
func SiliconVFF() Model {
	return Model{Alpha: 48.5, Beta: 13.8, Mass: []float64{28.0855, 28.0855}}
}

// Validate reports parameter errors against a structure.
func (m Model) Validate(s *lattice.Structure) error {
	if m.Alpha <= 0 || m.Beta < 0 {
		return fmt.Errorf("phonon: force constants must be positive (α) and non-negative (β)")
	}
	for i, a := range s.Atoms {
		if a.Species >= len(m.Mass) {
			return fmt.Errorf("phonon: atom %d has species %d but model has %d masses",
				i, a.Species, len(m.Mass))
		}
		if m.Mass[a.Species] <= 0 {
			return fmt.Errorf("phonon: non-positive mass for species %d", a.Species)
		}
	}
	return nil
}

// DynamicalMatrix assembles the mass-scaled dynamical matrix
// D_ij = Φ_ij/√(m_i·m_j) of the structure in block-tridiagonal layer
// form with 3 degrees of freedom per atom. Diagonal blocks satisfy the
// acoustic sum rule over the *infinite* structure: like the electronic
// assembly, the transport ends are treated as continuing into the
// contacts (no artificial surface springs).
func DynamicalMatrix(s *lattice.Structure, m Model) (*sparse.BlockTridiag, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(s); err != nil {
		return nil, err
	}
	local := make([]int, s.NAtoms())
	for _, la := range s.LayerAtoms {
		for pos, idx := range la {
			local[idx] = pos
		}
	}
	nl := s.NLayers()
	diag := make([]*linalg.Matrix, nl)
	upper := make([]*linalg.Matrix, nl-1)
	lower := make([]*linalg.Matrix, nl-1)
	for i := 0; i < nl; i++ {
		diag[i] = linalg.New(3*s.LayerSize(i), 3*s.LayerSize(i))
	}
	for i := 0; i < nl-1; i++ {
		upper[i] = linalg.New(3*s.LayerSize(i), 3*s.LayerSize(i+1))
		lower[i] = linalg.New(3*s.LayerSize(i+1), 3*s.LayerSize(i))
	}

	// Bond force block: Φ = α·n̂n̂ᵀ + β·(I − n̂n̂ᵀ).
	bondBlock := func(delta lattice.Vec3) [3][3]float64 {
		r := delta.Norm()
		n := [3]float64{delta.X / r, delta.Y / r, delta.Z / r}
		var phi [3][3]float64
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				phi[a][b] = (m.Alpha - m.Beta) * n[a] * n[b]
				if a == b {
					phi[a][b] += m.Beta
				}
			}
		}
		return phi
	}

	for ai, nbrs := range s.Neighbors {
		la := s.Atoms[ai].Layer
		mi := m.Mass[s.Atoms[ai].Species]
		for _, nb := range nbrs {
			lj := s.Atoms[nb.Index].Layer
			mj := m.Mass[s.Atoms[nb.Index].Species]
			phi := bondBlock(nb.Delta)
			inv := 1 / math.Sqrt(mi*mj)
			var dst *linalg.Matrix
			switch lj - la {
			case 0:
				dst = diag[la]
			case 1:
				dst = upper[la]
			case -1:
				dst = lower[lj]
			default:
				return nil, fmt.Errorf("phonon: bond spans %d layers", lj-la)
			}
			r0, c0 := 3*local[ai], 3*local[nb.Index]
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					// Off-diagonal coupling: −Φ/√(m_i m_j).
					dst.Set(r0+a, c0+b, dst.At(r0+a, c0+b)-complex(phi[a][b]*inv, 0))
					// On-site: +Φ/m_i (acoustic sum rule).
					diag[la].Set(r0+a, r0+b, diag[la].At(r0+a, r0+b)+complex(phi[a][b]/mi, 0))
				}
			}
		}
		// Contacts continue the structure: the on-site blocks must also
		// include the springs to the virtual ±x neighbors, or the end
		// layers would be artificially soft. With uniform layers these
		// virtual bonds mirror the intra-device ones; we add them by
		// scanning the periodic x-images exactly like the electronic
		// passivation counting does.
		for _, nb := range virtualXNeighbors(s, ai) {
			phi := bondBlock(nb)
			r0 := 3 * local[ai]
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					diag[la].Set(r0+a, r0+b, diag[la].At(r0+a, r0+b)+complex(phi[a][b]/mi, 0))
				}
			}
		}
	}
	return sparse.NewBlockTridiag(diag, upper, lower)
}

// virtualXNeighbors returns the bond vectors atom i would gain if the
// structure continued periodically along x (the contact continuation).
func virtualXNeighbors(s *lattice.Structure, i int) []lattice.Vec3 {
	lx := float64(s.NLayers()) * s.LayerPeriod
	cut := s.BondLength * 1.1
	x := s.Atoms[i].Pos.X
	if x > cut && x < lx-cut {
		return nil
	}
	yShifts := []float64{0}
	if s.PeriodicY {
		yShifts = []float64{0, s.PeriodY, -s.PeriodY}
	}
	var out []lattice.Vec3
	for _, xs := range []float64{lx, -lx} {
		for _, ys := range yShifts {
			p := s.Atoms[i].Pos
			p.X += xs
			p.Y += ys
			for j := range s.Atoms {
				d := s.Atoms[j].Pos.Sub(p)
				if r := d.Norm(); math.Abs(r-s.BondLength) <= 0.05*s.BondLength {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// Bands computes the phonon dispersion ω(q) of the periodic lead cell:
// frequencies in natural units (multiply by EnergyQuantum for ħω in eV),
// sorted ascending per q-point.
func Bands(d *sparse.BlockTridiag, period float64, nq int) (*Dispersion, error) {
	d00 := d.Diag[0]
	d01 := d.Upper[0]
	d10 := d.Lower[0]
	out := &Dispersion{Q: make([]float64, nq), Omega: make([][]float64, nq)}
	for iq := 0; iq < nq; iq++ {
		q := -math.Pi/period + 2*math.Pi/period*float64(iq)/float64(nq)
		out.Q[iq] = q
		dq := d00.Clone()
		phase := complex(math.Cos(q*period), math.Sin(q*period))
		dq.AddInPlace(d01.Scale(phase))
		dq.AddInPlace(d10.Scale(complex(real(phase), -imag(phase))))
		w2, err := linalg.EigHValues(dq)
		if err != nil {
			return nil, fmt.Errorf("phonon: dispersion at q=%g: %w", q, err)
		}
		om := make([]float64, len(w2))
		for i, v := range w2 {
			if v < 0 {
				// Tiny negative eigenvalues from roundoff at Γ clamp to 0.
				if v < -1e-8 {
					return nil, fmt.Errorf("phonon: unstable mode ω² = %g at q = %g", v, q)
				}
				v = 0
			}
			om[i] = math.Sqrt(v)
		}
		out.Omega[iq] = om
	}
	return out, nil
}

// Dispersion holds phonon branches ω(q) in natural frequency units.
type Dispersion struct {
	Q     []float64
	Omega [][]float64
}

// MaxFrequency returns the top of the spectrum.
func (d *Dispersion) MaxFrequency() float64 {
	mx := 0.0
	for _, row := range d.Omega {
		for _, w := range row {
			if w > mx {
				mx = w
			}
		}
	}
	return mx
}

// Transmission computes the ballistic phonon transmission T(ω) by running
// the electronic NEGF solver on the dynamical matrix with the
// substitution E → ω².
func Transmission(d *sparse.BlockTridiag, omega float64) (float64, error) {
	if omega < 0 {
		return 0, fmt.Errorf("phonon: negative frequency %g", omega)
	}
	sol, err := negf.NewSolver(d, 1e-7)
	if err != nil {
		return 0, err
	}
	// Small positive offset keeps ω = 0 off the exact acoustic pole.
	return sol.Transmission(omega*omega + 1e-9)
}

// ThermalConductance integrates the phonon Landauer formula
//
//	κ(T) = (1/2π)·∫ ħω·T(ω)·∂n_B/∂T dω
//
// over the given frequency grid (natural units) and returns κ in W/K.
func ThermalConductance(d *sparse.BlockTridiag, omegas []float64, temperature float64) (float64, error) {
	if len(omegas) < 2 {
		return 0, fmt.Errorf("phonon: need at least 2 frequency points")
	}
	if temperature <= 0 {
		return 0, fmt.Errorf("phonon: non-positive temperature")
	}
	sol, err := negf.NewSolver(d, 1e-7)
	if err != nil {
		return 0, err
	}
	kT := units.KT(temperature) // eV
	integrand := make([]float64, len(omegas))
	for i, w := range omegas {
		if w <= 0 {
			continue
		}
		t, err := sol.Transmission(w*w + 1e-9)
		if err != nil {
			return 0, err
		}
		hw := w * EnergyQuantum // eV
		x := hw / kT
		if x > 80 {
			continue
		}
		// ħω·∂n_B/∂T = k_B·x²·eˣ/(eˣ−1)² (dimensionless × k_B).
		ex := math.Exp(x)
		dnb := x * x * ex / ((ex - 1) * (ex - 1))
		integrand[i] = t * dnb
	}
	var sum float64
	for i := 0; i+1 < len(omegas); i++ {
		dw := omegas[i+1] - omegas[i]
		sum += 0.5 * dw * (integrand[i] + integrand[i+1])
	}
	// κ = (k_B/2π)·∫ T·x²eˣ/(eˣ−1)² dω with ω in natural units:
	// convert dω to rad/s via ω₀ = EnergyQuantum/ħ.
	omega0 := EnergyQuantum / units.HBar // rad/s
	kB := units.KBoltzmann * units.QElectron
	return kB / (2 * math.Pi) * sum * omega0, nil
}

// ConductanceQuantumThermal returns the universal low-temperature thermal
// conductance quantum per mode, κ₀ = π²·k_B²·T/(3h), in W/K.
func ConductanceQuantumThermal(temperature float64) float64 {
	kB := units.KBoltzmann * units.QElectron // J/K
	h := 2 * math.Pi * units.HBar * units.QElectron
	return math.Pi * math.Pi * kB * kB * temperature / (3 * h)
}
