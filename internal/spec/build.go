package spec

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/negf"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/transport"
)

// Built is the runnable realization of a RunSpec: the constructed
// simulator (device modes only), the shared scheduler pool, the sampling
// grids, and accessors for the resilience machinery — everything the
// CLIs used to assemble by hand from flags.
type Built struct {
	// Spec is the validated spec this was built from.
	Spec RunSpec
	// Sim is the device simulator (nil for the scaling-study modes,
	// which drive the calibrated machine model instead).
	Sim *core.Simulator
	// Cache is the contact self-energy cache shared by every engine of
	// the run (nil for study modes).
	Cache *negf.SelfEnergyCache
	// Pool is the worker pool every parallel level draws from.
	Pool *sched.Pool
	// Grid is the transmission energy grid (transmission mode).
	Grid []float64
	// GateGrid is the gate-voltage grid (iv mode).
	GateGrid []float64
}

// Build validates the spec and constructs its runnable pieces. It does
// not open journals or sockets — those are per-invocation concerns the
// caller wires from the spec's Resilience/Exec sections (fsync policy
// and resume gating differ between serial and coordinator runs).
func Build(s RunSpec) (*Built, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	b := &Built{Spec: s, Pool: sched.New(s.Exec.Workers)}
	if !deviceModes[s.Mode] {
		return b, nil
	}

	desc, ok := device.Lookup(s.Device.Name)
	if !ok {
		// Validate already vouched for the name; a miss here is a bug.
		return nil, fmt.Errorf("spec: unknown device %q", s.Device.Name)
	}
	if s.Device.CellsX > 0 {
		desc.CellsX = s.Device.CellsX
	}
	if s.Device.CellsY > 0 {
		desc.CellsY = s.Device.CellsY
	}
	if s.Device.CellsZ > 0 {
		desc.CellsZ = s.Device.CellsZ
	}

	b.Cache = negf.NewSelfEnergyCacheWith(negf.CacheConfig{
		Capacity: s.Solver.SigmaCacheCap,
		SeedDist: s.Solver.SeedRefine,
	})
	cfg := transport.Config{
		Domains:    s.Solver.Domains,
		Pool:       b.Pool,
		Cache:      b.Cache,
		SolveBatch: s.Exec.SolveBatch,
	}
	switch s.Solver.Formalism {
	case "wf":
		cfg.Formalism = transport.WaveFunction
	case "negf":
		cfg.Formalism = transport.NEGFRGF
	}
	sim, err := core.New(desc, cfg)
	if err != nil {
		return nil, err
	}
	sim.NK = s.Grid.NK
	b.Sim = sim

	switch s.Mode {
	case ModeTransmission:
		b.Grid = transport.UniformGrid(s.Grid.EMin, s.Grid.EMax, s.Grid.NE)
	case ModeIV:
		b.GateGrid = transport.UniformGrid(s.Grid.VGMin, s.Grid.VGMax, s.Grid.NVG)
	}
	return b, nil
}

// RetryPolicy assembles the per-task retry policy of the spec.
func (b *Built) RetryPolicy() resilience.Policy {
	return resilience.Policy{
		MaxAttempts:    b.Spec.Resilience.MaxRetries + 1,
		AttemptTimeout: b.Spec.Resilience.TaskTimeout.Std(),
		JitterFrac:     0.2,
		Seed:           b.Spec.Resilience.FaultSeed,
	}
}

// Injector returns the deterministic fault injector of the spec's
// drill settings, or nil when no drill is configured.
func (b *Built) Injector() *resilience.Injector {
	if b.Spec.Resilience.FaultRate <= 0 {
		return nil
	}
	return &resilience.Injector{
		Seed: b.Spec.Resilience.FaultSeed,
		Rate: b.Spec.Resilience.FaultRate,
	}
}

// SweepOptions assembles the sweep-engine options of the spec: pool,
// retry policy, injector, and quarantine. The journal and progress
// observer stay with the caller (journals carry fsync and header
// decisions Build deliberately does not make).
func (b *Built) SweepOptions() cluster.SweepOptions {
	return cluster.SweepOptions{
		Pool:       b.Pool,
		Retry:      b.RetryPolicy(),
		Injector:   b.Injector(),
		Quarantine: b.Spec.Resilience.Quarantine,
	}
}
