package spec

import (
	"fmt"
	"os"

	"repro/internal/cluster"
)

// OpenJournal opens the spec's checkpoint journal under the header
// contract shared by every entry point: a fresh journal is stamped with
// the spec's content hash (plus the full canonical spec, for forensics);
// a resumed journal must carry a matching hash — one written by a
// different spec fails loudly, and one from before headers existed (the
// PR ≤ 5 format) resumes with a warning through warnf. A journal that
// already exists without Resume set is refused, so a mistyped path can't
// silently fork a sweep. Returns (nil, nil) when the spec has no
// checkpoint; the caller owns Close on a non-nil journal.
func OpenJournal(s RunSpec, warnf func(format string, args ...any), jopts ...cluster.JournalOption) (*cluster.FileJournal, error) {
	r := s.Resilience
	if r.Checkpoint == "" {
		return nil, nil
	}
	if !r.Resume {
		if _, err := os.Stat(r.Checkpoint); err == nil {
			return nil, fmt.Errorf("journal %s exists; pass -resume to continue it or remove the file", r.Checkpoint)
		}
	}
	j, err := cluster.OpenFileJournal(r.Checkpoint, jopts...)
	if err != nil {
		return nil, err
	}
	if r.Resume {
		if err := j.CheckHeader(s.SpecHash(), warnf); err != nil {
			j.Close()
			return nil, err
		}
		return j, nil
	}
	canon, err := s.Canonical()
	if err != nil {
		j.Close()
		return nil, err
	}
	// A fresh journal also gets a RunID: the run-instance name failover
	// fencing is built on (served in the distributed welcome, pinned by
	// rejoining workers). Resumed journals keep the one they were born
	// with — that is the point.
	if err := j.WriteHeader(cluster.Header{SpecHash: s.SpecHash(), RunID: NewRunID(s.SpecHash()), Spec: canon}); err != nil {
		j.Close()
		return nil, err
	}
	return j, nil
}
