package spec

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
)

var update = flag.Bool("update", false, "rewrite the golden spec files")

// dumpString renders a spec exactly the way the CLIs' -dump-spec does:
// canonical indented JSON followed by the four content hashes. The
// golden files pin this format — `omen -dump-spec` output is checked
// against one of them in `make check`.
func dumpString(t *testing.T, s RunSpec) string {
	t.Helper()
	b, err := s.CanonicalIndent()
	if err != nil {
		t.Fatalf("CanonicalIndent: %v", err)
	}
	return fmt.Sprintf("%s\n# device-hash\t%s\n# grid-hash\t%s\n# solver-hash\t%s\n# spec-hash\t%s\n",
		b, s.DeviceHash(), s.GridHash(), s.SolverHash(), s.SpecHash())
}

// TestGoldenSpecs pins the canonical encoding and all four content
// hashes of the default spec for every built-in device preset, plus the
// scaling CLI's strong-study base spec. Any drift in field order, JSON
// tags, defaults, or hash inputs shows up as a golden diff — which is
// the point: a silent encoding change would silently re-key every
// content-addressed artifact. Regenerate deliberately with
// `go test ./internal/spec -run Golden -update`.
func TestGoldenSpecs(t *testing.T) {
	cases := make(map[string]RunSpec)
	for _, name := range device.Names() {
		s := Default()
		s.Device.Name = name
		cases[name] = s
	}
	study := StudyDefault()
	study.Grid = GridSpec{NE: 10, NK: 1} // as cmd/scaling pins it for study-strong
	cases["study-strong"] = study

	for name, s := range cases {
		t.Run(name, func(t *testing.T) {
			if err := s.Validate(); err != nil {
				t.Fatalf("golden spec invalid: %v", err)
			}
			got := dumpString(t, s)
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatalf("update golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("spec for %s drifted from golden %s:\n got:\n%s\nwant:\n%s", name, path, got, want)
			}
		})
	}
}

// fullyNonDefault returns a spec with every leaf field away from its
// default, so a round-trip dropping any one of them cannot pass.
func fullyNonDefault() RunSpec {
	return RunSpec{
		Version: Version,
		Mode:    ModeIV,
		Device:  DeviceSpec{Name: "sinw-full", CellsX: 12, CellsY: 2, CellsZ: 3},
		Grid: GridSpec{
			EMin: -1.5, EMax: 2.5, NE: 77, NK: 5,
			VDrain: 0.3, VGMin: -0.2, VGMax: 0.8, NVG: 9,
		},
		Solver: SolverSpec{Formalism: "negf", Domains: 4, SigmaCacheCap: 128, SeedRefine: 0.01},
		Resilience: ResilienceSpec{
			Checkpoint: "x.journal", Resume: true, MaxRetries: 3,
			TaskTimeout: Duration(45 * time.Second), Quarantine: true,
			FaultRate: 0.25, FaultSeed: 99,
		},
		Exec: ExecSpec{
			Workers: 7, LeaseTimeout: Duration(90 * time.Second),
			RejoinWindow: Duration(2 * time.Minute), DrainTimeout: Duration(20 * time.Second),
			Priority: "high", Shards: 2, WireFormat: "binary",
		},
	}
}

// TestRoundTrip is the encode/decode property: Parse(Canonical(s)) == s,
// for the defaults, a fully non-default spec, and every device preset.
// RunSpec is a comparable value type, so == is exact field equality.
func TestRoundTrip(t *testing.T) {
	specs := []RunSpec{Default(), StudyDefault(), fullyNonDefault()}
	for _, name := range device.Names() {
		s := Default()
		s.Device.Name = name
		specs = append(specs, s)
	}
	for _, s := range specs {
		b, err := s.Canonical()
		if err != nil {
			t.Fatalf("Canonical: %v", err)
		}
		got, err := Parse(b)
		if err != nil {
			t.Fatalf("Parse(Canonical(%s)): %v", b, err)
		}
		if got != s {
			t.Errorf("round trip changed the spec:\n in: %+v\nout: %+v", s, got)
		}
		// The indented form must parse back identically too (-dump-spec
		// output is advertised as a valid -spec input).
		bi, err := s.CanonicalIndent()
		if err != nil {
			t.Fatalf("CanonicalIndent: %v", err)
		}
		got, err = Parse(bi)
		if err != nil {
			t.Fatalf("Parse(CanonicalIndent): %v", err)
		}
		if got != s {
			t.Errorf("indented round trip changed the spec:\n in: %+v\nout: %+v", s, got)
		}
	}
}

// TestParseLayersOverDefaults: a partial spec file inherits every
// unmentioned default, and unknown keys are rejected loudly.
func TestParseLayersOverDefaults(t *testing.T) {
	s, err := Parse([]byte(`{"device":{"name":"sinw"},"grid":{"nE":333}}`))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Device.Name != "sinw" || s.Grid.NE != 333 {
		t.Errorf("explicit fields lost: %+v", s)
	}
	want := Default()
	want.Device.Name = "sinw"
	want.Grid.NE = 333
	if s != want {
		t.Errorf("defaults not inherited:\n got %+v\nwant %+v", s, want)
	}

	if _, err := Parse([]byte(`{"devcie":{"name":"sinw"}}`)); err == nil {
		t.Error("Parse accepted a typoed key — silent flag drift is back")
	}
}

// TestHashSensitivity perturbs every leaf field of RunSpec and checks
// the hash contract: result-determining fields (version, mode, device,
// grid, solver) change SpecHash and exactly their own section hash;
// resilience and exec fields change no hash at all (the engine's
// determinism makes observables independent of them).
func TestHashSensitivity(t *testing.T) {
	base := fullyNonDefault()
	muts := []struct {
		field   string
		section string // "device", "grid", "solver", or "" (top-level / unhashed)
		hashed  bool
		mut     func(*RunSpec)
	}{
		{"Version", "", true, func(s *RunSpec) { s.Version++ }},
		{"Mode", "", true, func(s *RunSpec) { s.Mode = ModeStats }},

		{"Device.Name", "device", true, func(s *RunSpec) { s.Device.Name = "chain" }},
		{"Device.CellsX", "device", true, func(s *RunSpec) { s.Device.CellsX++ }},
		{"Device.CellsY", "device", true, func(s *RunSpec) { s.Device.CellsY++ }},
		{"Device.CellsZ", "device", true, func(s *RunSpec) { s.Device.CellsZ++ }},

		{"Grid.EMin", "grid", true, func(s *RunSpec) { s.Grid.EMin -= 0.1 }},
		{"Grid.EMax", "grid", true, func(s *RunSpec) { s.Grid.EMax += 0.1 }},
		{"Grid.NE", "grid", true, func(s *RunSpec) { s.Grid.NE++ }},
		{"Grid.NK", "grid", true, func(s *RunSpec) { s.Grid.NK++ }},
		{"Grid.VDrain", "grid", true, func(s *RunSpec) { s.Grid.VDrain += 0.1 }},
		{"Grid.VGMin", "grid", true, func(s *RunSpec) { s.Grid.VGMin -= 0.1 }},
		{"Grid.VGMax", "grid", true, func(s *RunSpec) { s.Grid.VGMax += 0.1 }},
		{"Grid.NVG", "grid", true, func(s *RunSpec) { s.Grid.NVG++ }},

		{"Solver.Formalism", "solver", true, func(s *RunSpec) { s.Solver.Formalism = "wf" }},
		{"Solver.Domains", "solver", true, func(s *RunSpec) { s.Solver.Domains++ }},
		{"Solver.SigmaCacheCap", "solver", true, func(s *RunSpec) { s.Solver.SigmaCacheCap++ }},
		{"Solver.SeedRefine", "solver", true, func(s *RunSpec) { s.Solver.SeedRefine += 0.01 }},

		{"Resilience.Checkpoint", "", false, func(s *RunSpec) { s.Resilience.Checkpoint = "y.journal" }},
		{"Resilience.Resume", "", false, func(s *RunSpec) { s.Resilience.Resume = !s.Resilience.Resume }},
		{"Resilience.MaxRetries", "", false, func(s *RunSpec) { s.Resilience.MaxRetries++ }},
		{"Resilience.TaskTimeout", "", false, func(s *RunSpec) { s.Resilience.TaskTimeout += Duration(time.Second) }},
		{"Resilience.Quarantine", "", false, func(s *RunSpec) { s.Resilience.Quarantine = !s.Resilience.Quarantine }},
		{"Resilience.FaultRate", "", false, func(s *RunSpec) { s.Resilience.FaultRate += 0.1 }},
		{"Resilience.FaultSeed", "", false, func(s *RunSpec) { s.Resilience.FaultSeed++ }},

		{"Exec.Workers", "", false, func(s *RunSpec) { s.Exec.Workers++ }},
		{"Exec.LeaseTimeout", "", false, func(s *RunSpec) { s.Exec.LeaseTimeout += Duration(time.Second) }},
		{"Exec.RejoinWindow", "", false, func(s *RunSpec) { s.Exec.RejoinWindow += Duration(time.Second) }},
		{"Exec.DrainTimeout", "", false, func(s *RunSpec) { s.Exec.DrainTimeout += Duration(time.Second) }},
		{"Exec.Priority", "", false, func(s *RunSpec) { s.Exec.Priority = "low" }},
		{"Exec.Shards", "", false, func(s *RunSpec) { s.Exec.Shards = 4 }},
		{"Exec.WireFormat", "", false, func(s *RunSpec) { s.Exec.WireFormat = "json" }},
	}

	for _, m := range muts {
		t.Run(m.field, func(t *testing.T) {
			s := base
			m.mut(&s)
			if s == base {
				t.Fatal("mutation did not change the spec — the table entry tests nothing")
			}
			if changed := s.SpecHash() != base.SpecHash(); changed != m.hashed {
				t.Errorf("SpecHash changed=%v, want %v", changed, m.hashed)
			}
			if changed := s.DeviceHash() != base.DeviceHash(); changed != (m.section == "device") {
				t.Errorf("DeviceHash changed=%v, want %v", changed, m.section == "device")
			}
			if changed := s.GridHash() != base.GridHash(); changed != (m.section == "grid") {
				t.Errorf("GridHash changed=%v, want %v", changed, m.section == "grid")
			}
			if changed := s.SolverHash() != base.SolverHash(); changed != (m.section == "solver") {
				t.Errorf("SolverHash changed=%v, want %v", changed, m.section == "solver")
			}
		})
	}
}

// TestWorkerVariant: the worker variant strips exactly the coordinator-
// only fields and — critically for the handshake — keeps the SpecHash.
func TestWorkerVariant(t *testing.T) {
	s := fullyNonDefault()
	s.Mode = ModeTransmission
	w := s.WorkerVariant()
	if w.Resilience.Checkpoint != "" || w.Resilience.Resume || w.Resilience.Quarantine {
		t.Errorf("worker variant kept coordinator-only resilience fields: %+v", w.Resilience)
	}
	if w.Exec.Workers != 1 {
		t.Errorf("worker variant pool width = %d, want 1 (exact flop merging)", w.Exec.Workers)
	}
	if w.Resilience.MaxRetries != s.Resilience.MaxRetries || w.Resilience.FaultRate != s.Resilience.FaultRate {
		t.Errorf("worker variant lost retry/drill policy: %+v", w.Resilience)
	}
	if w.SpecHash() != s.SpecHash() {
		t.Error("worker variant changed SpecHash — the handshake would reject the coordinator's own children")
	}
	if err := w.ValidateFor(RoleWorker); err != nil {
		t.Errorf("worker variant invalid for RoleWorker: %v", err)
	}
}

// TestValidateRejections: the cross-field combinations that used to be
// silently ignored must now fail, naming the flag and the mode.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RunSpec)
		role Role
		want []string // substrings of the error
	}{
		{"resume without checkpoint", func(s *RunSpec) { s.Resilience.Resume = true }, RoleLocal,
			[]string{"-resume", "-checkpoint"}},
		{"checkpoint in iv mode", func(s *RunSpec) { s.Mode = ModeIV; s.Resilience.Checkpoint = "x" }, RoleLocal,
			[]string{"-checkpoint", `"iv"`}},
		{"quarantine in stats mode", func(s *RunSpec) { s.Mode = ModeStats; s.Resilience.Quarantine = true }, RoleLocal,
			[]string{"-quarantine", `"stats"`}},
		{"fault drill in iv mode", func(s *RunSpec) { s.Mode = ModeIV; s.Resilience.FaultRate = 0.5 }, RoleLocal,
			[]string{"-fault-rate", `"iv"`}},
		{"retries in stats mode", func(s *RunSpec) { s.Mode = ModeStats; s.Resilience.MaxRetries = 2 }, RoleLocal,
			[]string{"-max-retries", `"stats"`}},
		{"task timeout in iv mode", func(s *RunSpec) { s.Mode = ModeIV; s.Resilience.TaskTimeout = Duration(time.Second) }, RoleLocal,
			[]string{"-task-timeout", `"iv"`}},
		{"worker with checkpoint", func(s *RunSpec) { s.Resilience.Checkpoint = "x" }, RoleWorker,
			[]string{"-checkpoint", "coordinator"}},
		{"worker with resume", func(s *RunSpec) { s.Resilience.Checkpoint = "x"; s.Resilience.Resume = true }, RoleWorker,
			[]string{"-resume", "coordinator"}},
		{"distributed iv", func(s *RunSpec) { s.Mode = ModeIV }, RoleCoordinator,
			[]string{`"iv"`, "distributed"}},
		{"unknown device", func(s *RunSpec) { s.Device.Name = "nanotube" }, RoleLocal,
			[]string{"nanotube", "agnr7"}},
		{"unknown mode", func(s *RunSpec) { s.Mode = "bands" }, RoleLocal,
			[]string{`"bands"`}},
		{"unknown formalism", func(s *RunSpec) { s.Solver.Formalism = "dft" }, RoleLocal,
			[]string{`"dft"`}},
		{"wrong version", func(s *RunSpec) { s.Version = 99 }, RoleLocal,
			[]string{"version 99"}},
		{"empty energy window", func(s *RunSpec) { s.Grid.EMin, s.Grid.EMax = 1, -1 }, RoleLocal,
			[]string{"energy window"}},
		{"device in study mode", func(s *RunSpec) { s.Mode = ModeStudyWeak }, RoleLocal,
			[]string{"-device", `"study-weak"`}},
		{"fault rate out of range", func(s *RunSpec) { s.Resilience.FaultRate = 1.5 }, RoleLocal,
			[]string{"-fault-rate"}},
		{"unknown priority", func(s *RunSpec) { s.Exec.Priority = "urgent" }, RoleLocal,
			[]string{`"urgent"`, "priority"}},
		{"negative shards", func(s *RunSpec) { s.Exec.Shards = -1 }, RoleLocal,
			[]string{"-shards"}},
		{"unknown wire format", func(s *RunSpec) { s.Exec.WireFormat = "xml" }, RoleLocal,
			[]string{`"xml"`, "wire"}},
		{"job in iv mode", func(s *RunSpec) { s.Mode = ModeIV }, RoleServer,
			[]string{`"iv"`, "job"}},
		{"job with checkpoint", func(s *RunSpec) { s.Resilience.Checkpoint = "x" }, RoleServer,
			[]string{"server", "spec hash"}},
		{"job with resume", func(s *RunSpec) { s.Resilience.Checkpoint = "x"; s.Resilience.Resume = true }, RoleServer,
			[]string{"resume", "re-submitting"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Default()
			tc.mut(&s)
			err := s.ValidateFor(tc.role)
			if err == nil {
				t.Fatalf("ValidateFor(%v) accepted %+v", tc.role, s)
			}
			for _, sub := range tc.want {
				if !strings.Contains(err.Error(), sub) {
					t.Errorf("error %q does not mention %q", err, sub)
				}
			}
		})
	}

	// And the specs every CLI starts from must of course be valid.
	if err := Default().Validate(); err != nil {
		t.Errorf("Default() invalid: %v", err)
	}
	if err := StudyDefault().Validate(); err != nil {
		t.Errorf("StudyDefault() invalid: %v", err)
	}
}

// TestDurationJSON: durations encode as human strings and decode from
// both strings and nanosecond counts.
func TestDurationJSON(t *testing.T) {
	s := Default()
	s.Resilience.TaskTimeout = Duration(90 * time.Second)
	b, err := s.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	if !strings.Contains(string(b), `"taskTimeout":"1m30s"`) {
		t.Errorf("duration not human-readable in %s", b)
	}
	got, err := Parse([]byte(`{"resilience":{"taskTimeout":1500000000}}`))
	if err != nil {
		t.Fatalf("Parse ns count: %v", err)
	}
	if got.Resilience.TaskTimeout.Std() != 1500*time.Millisecond {
		t.Errorf("ns decode = %v", got.Resilience.TaskTimeout.Std())
	}
	if _, err := Parse([]byte(`{"exec":{"leaseTimeout":"soon"}}`)); err == nil {
		t.Error("Parse accepted a malformed duration")
	}
}

// TestDurationJSONEdges walks the decode edge cases one by one: negative
// values (parse fine — Validate is where sign policy lives), bare
// numbers (nanoseconds, negative included), and the strings that must
// fail loudly (empty, garbage, unitless, and non-scalar JSON).
func TestDurationJSONEdges(t *testing.T) {
	good := []struct {
		name string
		js   string
		want time.Duration
	}{
		{"negative string", `"-5s"`, -5 * time.Second},
		{"bare nanoseconds", `2500000000`, 2500 * time.Millisecond},
		{"negative nanoseconds", `-1000000000`, -time.Second},
		{"zero number", `0`, 0},
		{"zero string", `"0s"`, 0},
		{"compound string", `"1h2m3s"`, time.Hour + 2*time.Minute + 3*time.Second},
	}
	for _, tc := range good {
		t.Run(tc.name, func(t *testing.T) {
			var d Duration
			if err := d.UnmarshalJSON([]byte(tc.js)); err != nil {
				t.Fatalf("UnmarshalJSON(%s): %v", tc.js, err)
			}
			if d.Std() != tc.want {
				t.Errorf("decoded %s = %v, want %v", tc.js, d.Std(), tc.want)
			}
		})
	}

	bad := []struct {
		name string
		js   string
		want string // substring of the error
	}{
		{"empty string", `""`, "bad duration"},
		{"garbage string", `"soon"`, "bad duration"},
		{"unitless string", `"30"`, "bad duration"},
		{"float number", `1.5`, "duration"},
		{"object", `{"s":30}`, "duration"},
		{"null", `null`, "duration"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			var d Duration
			err := d.UnmarshalJSON([]byte(tc.js))
			if err == nil {
				t.Fatalf("UnmarshalJSON(%s) accepted, decoded %v", tc.js, d.Std())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Negative durations decode but Validate rejects them — the decoder
	// is a format concern, sign policy a spec concern.
	s := Default()
	s.Exec.LeaseTimeout = Duration(-time.Second)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "-lease-timeout") {
		t.Errorf("Validate on negative lease timeout = %v, want -lease-timeout error", err)
	}
}

// TestSummary pins the one-line description's load-bearing parts: the
// mode, the device, the grid dims, and the 12-char spec-hash prefix the
// job service shows in listings.
func TestSummary(t *testing.T) {
	s := Default()
	s.Grid.NK = 4
	s.Grid.NE = 256
	sum := s.Summary()
	for _, part := range []string{"transmission", "agnr7", "wf", "1×4×256", s.SpecHash()[:12]} {
		if !strings.Contains(sum, part) {
			t.Errorf("Summary %q missing %q", sum, part)
		}
	}
	iv := fullyNonDefault()
	ivSum := iv.Summary()
	for _, part := range []string{"iv", "sinw-full", "negf", "9×5×77", iv.SpecHash()[:12]} {
		if !strings.Contains(ivSum, part) {
			t.Errorf("Summary %q missing %q", ivSum, part)
		}
	}
	study := StudyDefault()
	if sSum := study.Summary(); !strings.Contains(sSum, "study-strong") || !strings.Contains(sSum, study.SpecHash()[:12]) {
		t.Errorf("study Summary %q missing mode or hash", sSum)
	}
}

// TestNewRunID pins the RunID shape failover fencing relies on: a
// readable prefix of the spec hash (a RunID visibly belongs to its spec)
// plus a random suffix (two starts of one spec are distinct instances —
// rejoin fencing would otherwise conflate them).
func TestNewRunID(t *testing.T) {
	h := Default().SpecHash()
	id1, id2 := NewRunID(h), NewRunID(h)
	if !strings.HasPrefix(id1, h[:12]+"-") {
		t.Fatalf("RunID %q does not carry the spec-hash prefix %q", id1, h[:12])
	}
	if id1 == id2 {
		t.Fatalf("two RunIDs of one spec collided (%q): restarts would be indistinguishable from fresh runs", id1)
	}
	if short := NewRunID("abc"); !strings.HasPrefix(short, "abc-") {
		t.Fatalf("short-hash RunID = %q, want abc- prefix", short)
	}
}
