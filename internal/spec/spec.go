// Package spec defines RunSpec, the one serializable description of a
// simulation run that every entry point shares. A RunSpec names the
// device (registry preset plus overrides), the energy/momentum/bias
// grids, the formalism and solver knobs, the resilience policy, and the
// execution shape — everything `cmd/omen`'s flags used to carry as 29
// loose variables. It round-trips through a canonical deterministic JSON
// encoding and is content-addressed at four granularities (DeviceHash,
// GridHash, SolverHash, SpecHash), which is what lets
//
//   - the coordinator launch worker children with one serialized spec
//     instead of a hand-maintained argv mirror,
//   - the distributed handshake reject a worker whose configuration
//     disagrees with the coordinator's beyond mere grid dimensions,
//   - a checkpoint journal record which spec wrote it, so -resume
//     against a foreign journal fails loudly, and
//   - the planned content-addressed run store key results by what was
//     actually computed.
//
// The hashes deliberately cover only the result-determining sections
// (version, mode, device, grid, solver). Resilience and execution
// fields — checkpoint paths, retry budgets, fault drills, worker
// counts, lease timeouts — change how a run executes, not what it
// computes: the engine's determinism guarantees (see DESIGN.md §7, §10)
// make observables independent of them, so two runs with equal SpecHash
// produce bitwise-identical results.
package spec

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"time"

	"repro/internal/device"
)

// Version is the RunSpec schema version this package reads and writes.
const Version = 1

// Run modes. The transmission and strong-study modes drive the sweep
// engine (and may run distributed); the others are single-process.
const (
	ModeTransmission = "transmission" // momentum-averaged T(E) sweep
	ModeIV           = "iv"           // self-consistent gate sweep
	ModeStats        = "stats"        // device bookkeeping table
	ModeStudyStrong  = "study-strong" // scaling: strong-scaling study
	ModeStudyWeak    = "study-weak"   // scaling: weak-scaling study
	ModeStudyLevels  = "study-levels" // scaling: per-level efficiency
	ModeStudyPhases  = "study-phases" // scaling: phase breakdown
)

// Role distinguishes how a process participates in a run; some spec
// fields are only valid for some roles.
type Role int

const (
	// RoleLocal is a single-process run.
	RoleLocal Role = iota
	// RoleCoordinator owns the grid and the journal of a distributed run.
	RoleCoordinator
	// RoleWorker pulls leases from a coordinator; it never journals.
	RoleWorker
	// RoleServer is a spec submitted to the job service (`omend`). The
	// server owns journal placement — jobs are keyed and stored by
	// SpecHash — so a submitted spec may not carry -checkpoint/-resume,
	// and only the modes the job executor streams (transmission) are
	// accepted.
	RoleServer
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleLocal:
		return "local"
	case RoleCoordinator:
		return "coordinator"
	case RoleWorker:
		return "worker"
	case RoleServer:
		return "server"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Duration is a time.Duration that encodes as a human-editable string
// ("30s", "1m30s") in spec files, while still accepting a bare integer
// nanosecond count.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("spec: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("spec: duration must be a string like \"30s\" or a nanosecond count")
	}
	*d = Duration(n)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// DeviceSpec names a registry preset and the structural overrides
// applied on top of it (0 keeps the preset's value).
type DeviceSpec struct {
	// Name is a key of device.Registry (e.g. "agnr7", "sinw-full").
	Name string `json:"name"`
	// CellsX/CellsY/CellsZ override the preset's cell counts when > 0.
	CellsX int `json:"cellsX,omitempty"`
	CellsY int `json:"cellsY,omitempty"`
	CellsZ int `json:"cellsZ,omitempty"`
}

// GridSpec fixes the sampling grids: the energy window and count, the
// transverse momentum count, and (for iv mode) the bias grids.
type GridSpec struct {
	EMin float64 `json:"eMin"` // spectrum lower bound (eV)
	EMax float64 `json:"eMax"` // spectrum upper bound (eV)
	NE   int     `json:"nE"`   // energy points
	NK   int     `json:"nK"`   // transverse momentum points
	// VDrain and the gate grid apply to iv mode only.
	VDrain float64 `json:"vDrain"`
	VGMin  float64 `json:"vgMin"`
	VGMax  float64 `json:"vgMax"`
	NVG    int     `json:"nVG"`
}

// SolverSpec selects the single-energy formalism and its numerics.
type SolverSpec struct {
	// Formalism is "wf" (wave function) or "negf" (NEGF/RGF).
	Formalism string `json:"formalism"`
	// Domains is the SplitSolve spatial decomposition (wf only; ≤1 serial).
	Domains int `json:"domains"`
	// SigmaCacheCap bounds the self-energy cache (entries; 0 unbounded).
	SigmaCacheCap int `json:"sigmaCacheCap"`
	// SeedRefine enables neighbor-seeded surface-GF refinement within
	// this energy distance (eV); 0 keeps runs bitwise reproducible.
	SeedRefine float64 `json:"seedRefine"`
}

// ResilienceSpec is the fault-tolerance policy of the sweep engine.
// None of it affects converged observables (tasks are deterministic and
// retried/resumed results are bitwise-identical), so none of it is
// content-hashed.
type ResilienceSpec struct {
	// Checkpoint is the sweep journal path ("" disables journaling).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Resume continues an existing Checkpoint journal.
	Resume bool `json:"resume,omitempty"`
	// MaxRetries is the per-task retry budget beyond the first attempt.
	MaxRetries int `json:"maxRetries,omitempty"`
	// TaskTimeout is the per-attempt deadline (0: none).
	TaskTimeout Duration `json:"taskTimeout,omitempty"`
	// Quarantine drops unsalvageable points and renormalizes instead of
	// failing the sweep.
	Quarantine bool `json:"quarantine,omitempty"`
	// FaultRate/FaultSeed drive the deterministic fault-injection drill.
	FaultRate float64 `json:"faultRate,omitempty"`
	FaultSeed uint64  `json:"faultSeed"`
}

// ExecSpec shapes execution: how wide, and (distributed) how patient.
// Like everything here it is outside the content hashes — failover
// patience changes how a run survives, never what it computes.
type ExecSpec struct {
	// Workers is the worker budget: pool width locally, self-spawned
	// worker processes for a coordinator (0: GOMAXPROCS / external only).
	Workers int `json:"workers"`
	// SolveBatch groups same-(bias,k) energy points into batches of up to
	// this width for the panel-packed batched solvers (≤ 1: solve each
	// energy independently, the historical path). Each batch element is
	// bitwise-identical to its width-1 solve, so this is a pure executor
	// knob — deliberately unhashed like the rest of ExecSpec.
	SolveBatch int `json:"solveBatch"`
	// LeaseTimeout is how long a distributed worker may hold a task.
	LeaseTimeout Duration `json:"leaseTimeout"`
	// RejoinWindow is how long a worker keeps re-dialing a crashed
	// coordinator before giving up (0: rejoin disabled — a coordinator
	// crash ends the worker with an error). The window restarts at each
	// connection loss.
	RejoinWindow Duration `json:"rejoinWindow"`
	// DrainTimeout bounds a coordinator's graceful drain on SIGTERM: how
	// long it keeps accepting in-flight results after it stops granting
	// leases.
	DrainTimeout Duration `json:"drainTimeout"`
	// Priority is the job service's scheduling class for this spec:
	// "low", "normal", or "high" ("" means normal). omitempty keeps the
	// canonical encoding of every pre-service spec byte-stable; like the
	// rest of ExecSpec it is unhashed — priority changes when a job runs,
	// never what it computes.
	Priority string `json:"priority,omitempty"`
	// Shards is the number of coordinator scheduling shards the task grid
	// is partitioned across (0 or 1: the classic single queue). Workers
	// are homed round-robin and steal from loaded shards when their own
	// runs dry. Unhashed and omitempty like the rest of ExecSpec: pure
	// scheduling, byte-stable pre-shard specs.
	Shards int `json:"shards,omitempty"`
	// WireFormat picks the coordinator/worker wire for hot messages:
	// "" or "binary" negotiates the compact binary payloads, "json"
	// forces the v3 JSON wire. A pure transport knob — results are
	// bitwise identical either way — so unhashed, and omitempty keeps
	// older canonical specs byte-stable.
	WireFormat string `json:"wireFormat,omitempty"`
}

// RunSpec fully describes one run. The zero value is not usable; start
// from Default() (Parse and LoadFile do).
type RunSpec struct {
	Version    int            `json:"version"`
	Mode       string         `json:"mode"`
	Device     DeviceSpec     `json:"device"`
	Grid       GridSpec       `json:"grid"`
	Solver     SolverSpec     `json:"solver"`
	Resilience ResilienceSpec `json:"resilience"`
	Exec       ExecSpec       `json:"exec"`
}

// Default returns the spec the CLIs' flag defaults have always implied:
// a Γ-only wave-function transmission sweep of the AGNR-7 ribbon.
func Default() RunSpec {
	return RunSpec{
		Version: Version,
		Mode:    ModeTransmission,
		Device:  DeviceSpec{Name: "agnr7"},
		Grid: GridSpec{
			EMin: -3, EMax: 3, NE: 101, NK: 1,
			VDrain: 0.2, VGMin: -0.4, VGMax: 0.6, NVG: 6,
		},
		Solver:     SolverSpec{Formalism: "wf", Domains: 1, SigmaCacheCap: 4096},
		Resilience: ResilienceSpec{FaultSeed: 1},
		Exec: ExecSpec{
			LeaseTimeout: Duration(30 * time.Second),
			DrainTimeout: Duration(10 * time.Second),
		},
	}
}

// StudyDefault returns the base spec for the scaling-study CLI: the
// strong study on the calibrated machine model. Study modes build no
// device and run no single-energy solver, so those sections are empty
// (Validate rejects a device name in a study spec).
func StudyDefault() RunSpec {
	return RunSpec{
		Version:    Version,
		Mode:       ModeStudyStrong,
		Resilience: ResilienceSpec{FaultSeed: 1},
		Exec: ExecSpec{
			LeaseTimeout: Duration(30 * time.Second),
			DrainTimeout: Duration(10 * time.Second),
		},
	}
}

// Parse decodes a spec from JSON, layered over Default() so a partial
// file ({"device":{"name":"sinw"}}) inherits every other default.
// Unknown fields are rejected — a spec is a contract, and a typoed key
// silently ignored would be the flag-drift problem all over again.
func Parse(b []byte) (RunSpec, error) {
	return ParseInto(Default(), b)
}

// ParseInto decodes a spec from JSON layered over the given base —
// the CLIs pass their own defaults (Default for omen, StudyDefault for
// scaling) so partial files inherit the right ones.
func ParseInto(base RunSpec, b []byte) (RunSpec, error) {
	s := base
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("spec: parse: %w", err)
	}
	return s, nil
}

// LoadFile reads and parses a spec file.
func LoadFile(path string) (RunSpec, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Default(), fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(b)
	if err != nil {
		return s, fmt.Errorf("spec: %s: %w", path, err)
	}
	return s, nil
}

// Canonical returns the canonical deterministic encoding of the spec:
// compact JSON with fields in declaration order. Two specs are
// byte-identical under Canonical iff they are equal as values, which is
// what makes the encoding safe to hash and to pass to child processes.
func (s RunSpec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return b, nil
}

// CanonicalIndent is Canonical pretty-printed for humans (-dump-spec,
// example files). Parsing it yields the same spec.
func (s RunSpec) CanonicalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("spec: encode: %w", err)
	}
	return b, nil
}

// hashedSpec is the result-determining subset of RunSpec that the
// content hashes cover, in canonical field order.
type hashedSpec struct {
	Version int        `json:"version"`
	Mode    string     `json:"mode"`
	Device  DeviceSpec `json:"device"`
	Grid    GridSpec   `json:"grid"`
	Solver  SolverSpec `json:"solver"`
}

// fnvHex returns the FNV-1a 64-bit hash of b as 16 lowercase hex chars.
func fnvHex(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// mustJSON marshals a hash input; the spec structs contain no values
// encoding/json can fail on.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("spec: hash encode: %v", err))
	}
	return b
}

// DeviceHash content-addresses the device section (FNV-1a 64, hex).
// It is the "device hash" key of the planned content-addressed run store.
func (s RunSpec) DeviceHash() string { return fnvHex(mustJSON(s.Device)) }

// GridHash content-addresses the sampling grids (FNV-1a 64, hex).
func (s RunSpec) GridHash() string { return fnvHex(mustJSON(s.Grid)) }

// SolverHash content-addresses the formalism and solver knobs
// (FNV-1a 64, hex).
func (s RunSpec) SolverHash() string { return fnvHex(mustJSON(s.Solver)) }

// SpecHash content-addresses the whole result-determining spec — the
// schema version, mode, device, grids, and solver — as a SHA-256 over
// the canonical encoding of that subset. Two runs with equal SpecHash
// compute bitwise-identical observables; resilience and execution
// fields are deliberately outside it (see the package comment).
func (s RunSpec) SpecHash() string {
	sum := sha256.Sum256(mustJSON(hashedSpec{
		Version: s.Version,
		Mode:    s.Mode,
		Device:  s.Device,
		Grid:    s.Grid,
		Solver:  s.Solver,
	}))
	return hex.EncodeToString(sum[:])
}

// Summary returns a compact one-line human description of the spec —
// mode, device, formalism, grid dimensions, and a spec-hash prefix —
// for startup logs and job listings. It is descriptive, not canonical:
// the full identity of a run is its SpecHash.
func (s RunSpec) Summary() string {
	h := s.SpecHash()
	if len(h) > 12 {
		h = h[:12]
	}
	switch s.Mode {
	case ModeTransmission:
		return fmt.Sprintf("%s %s %s 1×%d×%d [%s]", s.Mode, s.Device.Name, s.Solver.Formalism, s.Grid.NK, s.Grid.NE, h)
	case ModeIV:
		return fmt.Sprintf("%s %s %s %d×%d×%d [%s]", s.Mode, s.Device.Name, s.Solver.Formalism, s.Grid.NVG, s.Grid.NK, s.Grid.NE, h)
	case ModeStats:
		return fmt.Sprintf("%s %s [%s]", s.Mode, s.Device.Name, h)
	default:
		// Study modes build no device and sample no physical grid.
		return fmt.Sprintf("%s [%s]", s.Mode, h)
	}
}

// NewRunID mints a run-instance identifier from a spec hash: a readable
// spec-hash prefix (so a RunID visibly belongs to its spec) plus a random
// suffix (so two starts of the same spec are distinct instances). It is
// stamped into fresh journal headers and served in the distributed
// welcome; rejoining workers pin it to tell "my coordinator restarted"
// from "a different run reused the address". Randomness is deliberate —
// unlike everything else here the RunID names an *instance*, not content.
func NewRunID(specHash string) string {
	prefix := specHash
	if len(prefix) > 12 {
		prefix = prefix[:12]
	}
	var suffix [6]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to a
		// time-free constant rather than aborting a physics run over an ID.
		return prefix + "-0"
	}
	return prefix + "-" + hex.EncodeToString(suffix[:])
}

// WorkerVariant returns the spec a coordinator hands to a self-spawned
// worker: journaling stripped (workers never journal; the coordinator's
// journal is the cluster's source of truth), quarantine stripped
// (quarantine decisions stay centralized), and a 1-wide pool so the
// merged flop accounting stays exact (DESIGN.md §10). None of these
// fields are content-hashed, so the variant's SpecHash equals the
// coordinator's — which is exactly what the handshake verifies.
func (s RunSpec) WorkerVariant() RunSpec {
	w := s
	w.Resilience.Checkpoint = ""
	w.Resilience.Resume = false
	w.Resilience.Quarantine = false
	w.Exec.Workers = 1
	return w
}

// sweepModes are the modes driven by the fault-tolerant sweep engine;
// only they may carry resilience options or run distributed.
var sweepModes = map[string]bool{
	ModeTransmission: true,
	ModeStudyStrong:  true,
}

// deviceModes are the modes that build an atomistic device.
var deviceModes = map[string]bool{
	ModeTransmission: true,
	ModeIV:           true,
	ModeStats:        true,
}

var knownModes = map[string]bool{
	ModeTransmission: true,
	ModeIV:           true,
	ModeStats:        true,
	ModeStudyStrong:  true,
	ModeStudyWeak:    true,
	ModeStudyLevels:  true,
	ModeStudyPhases:  true,
}

// Validate checks internal consistency: known names, sane grids, and —
// closing the silent-flag-swallowing hole — that no option inapplicable
// to the spec's mode is set. Each rejection names the offending flag
// and the mode so the fix is obvious from the error alone.
func (s RunSpec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: unsupported spec version %d (this build reads version %d)", s.Version, Version)
	}
	if !knownModes[s.Mode] {
		return fmt.Errorf("spec: unknown mode %q", s.Mode)
	}

	if deviceModes[s.Mode] {
		if _, ok := device.Lookup(s.Device.Name); !ok {
			return fmt.Errorf("spec: unknown device %q (known: %s)", s.Device.Name, strings.Join(device.Names(), ", "))
		}
		if s.Device.CellsX < 0 || s.Device.CellsY < 0 || s.Device.CellsZ < 0 {
			return fmt.Errorf("spec: negative cell-count override for device %q", s.Device.Name)
		}
	} else if s.Device.Name != "" {
		return fmt.Errorf("spec: -device is not applicable to mode %q (scaling studies use the calibrated machine model, not a built device)", s.Mode)
	}

	switch s.Mode {
	case ModeTransmission:
		if s.Grid.NE < 1 {
			return fmt.Errorf("spec: -ne must be ≥ 1, got %d", s.Grid.NE)
		}
		if s.Grid.NE > 1 && s.Grid.EMax <= s.Grid.EMin {
			return fmt.Errorf("spec: empty energy window [-emin %g, -emax %g]", s.Grid.EMin, s.Grid.EMax)
		}
		if s.Grid.NK < 1 {
			return fmt.Errorf("spec: -nk must be ≥ 1, got %d", s.Grid.NK)
		}
	case ModeIV:
		if s.Grid.NVG < 1 {
			return fmt.Errorf("spec: -nvg must be ≥ 1, got %d", s.Grid.NVG)
		}
		if s.Grid.NVG > 1 && s.Grid.VGMax <= s.Grid.VGMin {
			return fmt.Errorf("spec: empty gate window [-vgmin %g, -vgmax %g]", s.Grid.VGMin, s.Grid.VGMax)
		}
		if s.Grid.NE < 1 {
			return fmt.Errorf("spec: -ne must be ≥ 1, got %d", s.Grid.NE)
		}
		if s.Grid.NK < 1 {
			return fmt.Errorf("spec: -nk must be ≥ 1, got %d", s.Grid.NK)
		}
	}

	if deviceModes[s.Mode] {
		switch s.Solver.Formalism {
		case "wf", "negf":
		default:
			return fmt.Errorf("spec: unknown formalism %q (want wf or negf)", s.Solver.Formalism)
		}
		if s.Solver.Domains < 0 {
			return fmt.Errorf("spec: -domains must be ≥ 0, got %d", s.Solver.Domains)
		}
		if s.Solver.SigmaCacheCap < 0 {
			return fmt.Errorf("spec: -sigma-cache-cap must be ≥ 0, got %d", s.Solver.SigmaCacheCap)
		}
		if s.Solver.SeedRefine < 0 {
			return fmt.Errorf("spec: -seed-refine must be ≥ 0, got %g", s.Solver.SeedRefine)
		}
	}

	// Per-mode applicability of the sweep-engine options. Before specs,
	// `omen -mode iv -checkpoint x -resume` silently ignored all of it.
	if !sweepModes[s.Mode] {
		r := s.Resilience
		var offending string
		switch {
		case r.Checkpoint != "":
			offending = "-checkpoint"
		case r.Resume:
			offending = "-resume"
		case r.MaxRetries != 0:
			offending = "-max-retries"
		case r.TaskTimeout != 0:
			offending = "-task-timeout"
		case r.Quarantine:
			offending = "-quarantine"
		case r.FaultRate != 0:
			offending = "-fault-rate"
		}
		if offending != "" {
			return fmt.Errorf("spec: %s is not applicable to mode %q (the fault-tolerant sweep engine drives only %s); it would have been silently ignored",
				offending, s.Mode, strings.Join([]string{ModeTransmission, ModeStudyStrong}, " and "))
		}
	}

	if s.Resilience.Resume && s.Resilience.Checkpoint == "" {
		return fmt.Errorf("spec: -resume requires -checkpoint (nothing to resume from)")
	}
	if s.Resilience.MaxRetries < 0 {
		return fmt.Errorf("spec: -max-retries must be ≥ 0, got %d", s.Resilience.MaxRetries)
	}
	if s.Resilience.TaskTimeout < 0 {
		return fmt.Errorf("spec: -task-timeout must be ≥ 0, got %s", s.Resilience.TaskTimeout.Std())
	}
	if s.Resilience.FaultRate < 0 || s.Resilience.FaultRate > 1 {
		return fmt.Errorf("spec: -fault-rate must be in [0, 1], got %g", s.Resilience.FaultRate)
	}
	if s.Exec.Workers < 0 {
		return fmt.Errorf("spec: -workers must be ≥ 0, got %d", s.Exec.Workers)
	}
	if s.Exec.SolveBatch < 0 {
		return fmt.Errorf("spec: -solve-batch must be ≥ 0, got %d", s.Exec.SolveBatch)
	}
	if s.Exec.LeaseTimeout < 0 {
		return fmt.Errorf("spec: -lease-timeout must be ≥ 0, got %s", s.Exec.LeaseTimeout.Std())
	}
	if s.Exec.RejoinWindow < 0 {
		return fmt.Errorf("spec: -rejoin-window must be ≥ 0, got %s", s.Exec.RejoinWindow.Std())
	}
	if s.Exec.DrainTimeout < 0 {
		return fmt.Errorf("spec: -drain-timeout must be ≥ 0, got %s", s.Exec.DrainTimeout.Std())
	}
	switch s.Exec.Priority {
	case "", "low", "normal", "high":
	default:
		return fmt.Errorf("spec: unknown priority %q (want low, normal, or high)", s.Exec.Priority)
	}
	if s.Exec.Shards < 0 {
		return fmt.Errorf("spec: -shards must be ≥ 0, got %d", s.Exec.Shards)
	}
	switch s.Exec.WireFormat {
	case "", "binary", "json":
	default:
		return fmt.Errorf("spec: unknown wire format %q (want binary or json)", s.Exec.WireFormat)
	}
	return nil
}

// ValidateFor checks the spec for one process role. Beyond Validate:
// distributed roles exist only for sweep-engine modes, and a worker may
// not journal — -checkpoint/-resume belong to the coordinator, whose
// journal is the cluster's source of truth.
func (s RunSpec) ValidateFor(role Role) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if role == RoleCoordinator || role == RoleWorker {
		if !sweepModes[s.Mode] {
			return fmt.Errorf("spec: mode %q cannot run distributed (only %s and %s shard over workers)",
				s.Mode, ModeTransmission, ModeStudyStrong)
		}
	}
	if role == RoleWorker {
		if s.Resilience.Resume {
			return fmt.Errorf("spec: -resume belongs to the coordinator; workers do not journal")
		}
		if s.Resilience.Checkpoint != "" {
			return fmt.Errorf("spec: -checkpoint belongs to the coordinator; workers do not journal")
		}
	}
	if role == RoleServer {
		if s.Mode != ModeTransmission {
			return fmt.Errorf("spec: mode %q cannot be submitted as a job (the service streams only %s sweeps)",
				s.Mode, ModeTransmission)
		}
		if s.Resilience.Resume {
			return fmt.Errorf("spec: resume is implicit for the server — re-submitting a spec resumes (or replays) its journal")
		}
		if s.Resilience.Checkpoint != "" {
			return fmt.Errorf("spec: checkpoint belongs to the server — jobs are journaled by spec hash in the server's data directory")
		}
	}
	return nil
}
