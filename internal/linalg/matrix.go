// Package linalg implements the dense complex linear algebra used by the
// quantum-transport kernels: matrix arithmetic, blocked GEMM, LU
// factorization with partial pivoting, a Hermitian eigensolver
// (Householder tridiagonalization + implicit QL), and a general complex
// eigensolver (Hessenberg reduction + shifted QR) used for lead-mode
// calculations in the wave-function formalism.
//
// All kernels report exact real-flop counts to internal/perf so the
// simulated cluster can reproduce the paper's sustained-performance figures.
// Matrices are stored row-major in a single []complex128 backing slice.
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/perf"
)

// Matrix is a dense complex matrix stored in row-major order.
// The zero value is an empty (0×0) matrix.
type Matrix struct {
	Rows, Cols int
	// Data holds the entries; element (i,j) lives at Data[i*Cols+j].
	Data []complex128
}

// New returns a zero-initialized rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]complex128) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows in FromRows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with the contents of src; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: dimension mismatch in CopyFrom")
	}
	copy(m.Data, src.Data)
}

// Zero sets every entry of m to zero in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	checkSameShape(m, b, "Add")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCAdd)
	return out
}

// Sub returns m − b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	checkSameShape(m, b, "Sub")
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCAdd)
	return out
}

// AddInPlace sets m = m + b.
func (m *Matrix) AddInPlace(b *Matrix) {
	checkSameShape(m, b, "AddInPlace")
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCAdd)
}

// SubInPlace sets m = m − b.
func (m *Matrix) SubInPlace(b *Matrix) {
	checkSameShape(m, b, "SubInPlace")
	for i := range m.Data {
		m.Data[i] -= b.Data[i]
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCAdd)
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s complex128) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCMul)
	return out
}

// ScaleInPlace sets m = s·m.
func (m *Matrix) ScaleInPlace(s complex128) {
	for i := range m.Data {
		m.Data[i] *= s
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCMul)
}

// ConjTranspose returns the Hermitian adjoint m† as a new matrix.
func (m *Matrix) ConjTranspose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = cmplx.Conj(m.Data[i*m.Cols+j])
		}
	}
	return out
}

// Transpose returns mᵀ (no conjugation) as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Trace returns the sum of the diagonal entries of a square matrix.
func (m *Matrix) Trace() complex128 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// Diag returns the diagonal of a square matrix as a slice.
func (m *Matrix) Diag() []complex128 {
	if m.Rows != m.Cols {
		panic("linalg: Diag of non-square matrix")
	}
	d := make([]complex128, m.Rows)
	for i := range d {
		d[i] = m.Data[i*m.Cols+i]
	}
	return d
}

// Submatrix returns a copy of the block m[r0:r0+nr, c0:c0+nc].
func (m *Matrix) Submatrix(r0, c0, nr, nc int) *Matrix {
	if r0 < 0 || c0 < 0 || r0+nr > m.Rows || c0+nc > m.Cols {
		panic("linalg: Submatrix out of range")
	}
	out := New(nr, nc)
	for i := 0; i < nr; i++ {
		copy(out.Data[i*nc:(i+1)*nc], m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+nc])
	}
	return out
}

// SetSubmatrix writes block b into m starting at (r0, c0).
func (m *Matrix) SetSubmatrix(r0, c0 int, b *Matrix) {
	if r0 < 0 || c0 < 0 || r0+b.Rows > m.Rows || c0+b.Cols > m.Cols {
		panic("linalg: SetSubmatrix out of range")
	}
	for i := 0; i < b.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+b.Cols], b.Data[i*b.Cols:(i+1)*b.Cols])
	}
}

// IsHermitian reports whether m is Hermitian to within tol entrywise.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			d := m.Data[i*m.Cols+j] - cmplx.Conj(m.Data[j*m.Cols+i])
			if cmplx.Abs(d) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest entrywise modulus of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := cmplx.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// FrobeniusNorm returns ‖m‖_F.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MulVec returns m·x for a vector x of length m.Cols.
func (m *Matrix) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("linalg: dimension mismatch in MulVec")
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	perf.AddFlops(int64(m.Rows) * int64(m.Cols) * perf.FlopsCMulAdd)
	return y
}

// Equal reports whether m and b agree entrywise to within tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are abbreviated.
func (m *Matrix) String() string {
	if m.Rows > 8 || m.Cols > 8 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		s += "["
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			s += fmt.Sprintf(" %.4g%+.4gi", real(v), imag(v))
		}
		s += " ]\n"
	}
	return s
}

func checkSameShape(a, b *Matrix, op string) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: dimension mismatch in %s: %dx%d vs %dx%d",
			op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
