package linalg

import (
	"math/rand"
	"testing"
)

// batchWidths are the widths every batched kernel is exercised at: the
// degenerate width-1 batch, the tuned default, an odd width, and one
// larger than any scheduler bucket in the repo's configs.
var batchWidths = []int{1, 2, 7, 64}

// randMats returns w independent rows×cols matrices with sprinkled
// exact zeros (see randVecZ).
func randMats(r *rand.Rand, w, rows, cols int) []*Matrix {
	ms := make([]*Matrix, w)
	for j := range ms {
		ms[j] = &Matrix{Rows: rows, Cols: cols, Data: randVecZ(r, rows*cols)}
	}
	return ms
}

func cloneMats(ms []*Matrix) []*Matrix {
	out := make([]*Matrix, len(ms))
	for j, m := range ms {
		if m == nil {
			continue
		}
		out[j] = &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]complex128(nil), m.Data...)}
	}
	return out
}

func requireSameMats(t *testing.T, name string, got, want []*Matrix) {
	t.Helper()
	for j := range want {
		for i := range want[j].Data {
			if got[j].Data[i] != want[j].Data[i] {
				t.Fatalf("%s: element %d idx %d: got %v want %v",
					name, j, i, got[j].Data[i], want[j].Data[i])
			}
		}
	}
}

// TestBatchGemmMatchesLooped pins BatchGemmInto to element-wise
// GemmInto across widths and shapes including empty and 1×1 blocks.
func TestBatchGemmMatchesLooped(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for _, w := range batchWidths {
		for _, sz := range [][3]int{{0, 3, 3}, {1, 1, 1}, {7, 7, 7}, {14, 14, 14}} {
			n, k, p := sz[0], sz[1], sz[2]
			a := randMats(r, w, n, k)
			b := randMats(r, w, k, p)
			dst := randMats(r, w, n, p)
			ref := cloneMats(dst)
			alpha := complex(1.25, -0.5)
			BatchGemmInto(dst, alpha, a, NoTrans, b, NoTrans, 1)
			for j := range ref {
				GemmInto(ref[j], alpha, a[j], NoTrans, b[j], NoTrans, 1)
			}
			requireSameMats(t, "gemm", dst, ref)
		}
	}
}

// TestBatchMul3MatchesLooped pins BatchMul3Into to element-wise
// Mul3Into, sharing one workspace across the batch.
func TestBatchMul3MatchesLooped(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	ws := GetWorkspace()
	for _, w := range batchWidths {
		for _, n := range []int{1, 7, 14} {
			a := randMats(r, w, n, n)
			b := randMats(r, w, n, n)
			c := randMats(r, w, n, n)
			dst := randMats(r, w, n, n)
			ref := cloneMats(dst)
			BatchMul3Into(dst, a, NoTrans, b, NoTrans, c, ConjTrans, ws)
			for j := range ref {
				Mul3Into(ref[j], a[j], NoTrans, b[j], NoTrans, c[j], ConjTrans, ws)
			}
			requireSameMats(t, "mul3", dst, ref)
		}
	}
}

// TestBatchShiftedNegAndAddScaledMatchLooped pins the batched
// resolvent-assembly kernels to their looped forms: dst[j] = z_j·I − m
// then dst[j] += s·b against per-element ShiftedNegInto/AddScaled.
func TestBatchShiftedNegAndAddScaledMatchLooped(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for _, w := range batchWidths {
		for _, n := range []int{1, 7, 14} {
			m := &Matrix{Rows: n, Cols: n, Data: randVecZ(r, n*n)}
			b := &Matrix{Rows: n, Cols: n, Data: randVecZ(r, n*n)}
			zs := make([]complex128, w)
			for j := range zs {
				zs[j] = complex(r.NormFloat64(), r.NormFloat64())
			}
			dst := randMats(r, w, n, n)
			ref := cloneMats(dst)
			s := complex(-0.75, 0.25)
			BatchShiftedNegInto(dst, m, zs)
			BatchAddScaled(dst, b, s)
			for j := range ref {
				ShiftedNegInto(ref[j], m, zs[j])
				ref[j].AddScaled(b, s)
			}
			requireSameMats(t, "shiftedneg+addscaled", dst, ref)
		}
	}
}

// TestBatchReductionsMatchLooped pins BatchTraceMulConj and
// BatchDiagMulConjInto to their looped reductions.
func TestBatchReductionsMatchLooped(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	ws := GetWorkspace()
	for _, w := range batchWidths {
		for _, n := range []int{1, 7, 14} {
			a := randMats(r, w, n, n)
			b := randMats(r, w, n, n)
			tr := make([]complex128, w)
			BatchTraceMulConj(tr, a, b)
			for j := range a {
				if want := TraceMulConj(a[j], b[j]); tr[j] != want {
					t.Fatalf("trace: w=%d n=%d element %d: got %v want %v", w, n, j, tr[j], want)
				}
			}
			dg := make([][]complex128, w)
			for j := range dg {
				dg[j] = make([]complex128, n)
			}
			BatchDiagMulConjInto(dg, a, b, ws)
			for j := range a {
				want := make([]complex128, n)
				DiagMulConjInto(want, a[j], b[j], ws)
				for i := range want {
					if dg[j][i] != want[i] {
						t.Fatalf("diag: w=%d n=%d element %d idx %d: got %v want %v", w, n, j, i, dg[j][i], want[i])
					}
				}
			}
		}
	}
}

// TestBatchFactorSolveInverseMatchLooped pins the batched
// factor/solve/inverse pipeline — including nil (failed-upstream)
// elements — to the looped LU path.
func TestBatchFactorSolveInverseMatchLooped(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	ws := GetWorkspace()
	for _, w := range batchWidths {
		for _, n := range []int{1, 7, 14} {
			as := randMats(r, w, n, n)
			for _, m := range as {
				for i := 0; i < n; i++ {
					m.Data[i*n+i] += complex(float64(n), 0.5)
				}
			}
			if w > 2 {
				as[1] = nil // a failed-upstream slot the batch must skip
			}
			refAs := cloneMats(as)
			bs := randMats(r, w, n, n)

			lus, errs := BatchFactorInPlace(as, ws)
			for j, err := range errs {
				if err != nil {
					t.Fatalf("w=%d n=%d element %d: unexpected singular: %v", w, n, j, err)
				}
			}
			xs := randMats(r, w, n, n)
			BatchSolveInto(lus, xs, bs)
			invDst := randMats(r, w, n, n)
			invErrs := BatchInverseInto(invDst, refAs, ws)

			for j := range as {
				if as[j] == nil {
					continue
				}
				refF := &Matrix{Rows: n, Cols: n, Data: append([]complex128(nil), refAs[j].Data...)}
				piv := make([]int, n)
				if _, err := factorInPlace(refF, piv); err != nil {
					t.Fatal(err)
				}
				for i := range refF.Data {
					if as[j].Data[i] != refF.Data[i] {
						t.Fatalf("factor: w=%d n=%d element %d idx %d differs", w, n, j, i)
					}
				}
				refX := &Matrix{Rows: n, Cols: n, Data: append([]complex128(nil), bs[j].Data...)}
				luSolveInPlace(refF, piv, refX)
				for i := range refX.Data {
					if xs[j].Data[i] != refX.Data[i] {
						t.Fatalf("solve: w=%d n=%d element %d idx %d differs", w, n, j, i)
					}
				}
				if invErrs[j] != nil {
					t.Fatalf("inverse: w=%d n=%d element %d: %v", w, n, j, invErrs[j])
				}
				refInv := New(n, n)
				if err := InverseInto(refInv, refAs[j], ws); err != nil {
					t.Fatal(err)
				}
				for i := range refInv.Data {
					if invDst[j].Data[i] != refInv.Data[i] {
						t.Fatalf("inverse: w=%d n=%d element %d idx %d differs", w, n, j, i)
					}
				}
			}
			BatchReleaseLU(lus, ws)
		}
	}
}
