package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
)

func TestEigHDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 2)
	eig, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i, w := range want {
		if math.Abs(eig.Values[i]-w) > 1e-12 {
			t.Fatalf("eigenvalue %d = %v, want %v", i, eig.Values[i], w)
		}
	}
}

func TestEigHPauliY(t *testing.T) {
	// σ_y has eigenvalues ±1 and genuinely complex eigenvectors.
	a := FromRows([][]complex128{{0, -1i}, {1i, 0}})
	eig, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]+1) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Fatalf("σ_y eigenvalues = %v, want [-1, 1]", eig.Values)
	}
	checkEigHResiduals(t, a, eig, 1e-12)
}

func TestEigHRandomResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 3, 8, 25, 60} {
		a := randHermitian(rng, n)
		eig, err := EigH(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkEigHResiduals(t, a, eig, 1e-10)
		// Eigenvalues must come out ascending.
		if !sort.Float64sAreSorted(eig.Values) {
			t.Fatalf("n=%d: eigenvalues not sorted: %v", n, eig.Values)
		}
		// Eigenvectors must be orthonormal: V†V = I.
		vtv := eig.Vectors.ConjTranspose().Mul(eig.Vectors)
		if !vtv.Equal(Identity(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal (dev %g)",
				n, vtv.Sub(Identity(n)).MaxAbs())
		}
	}
}

func TestEigHTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randHermitian(rng, 18)
	eig, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range eig.Values {
		sum += v
	}
	if math.Abs(sum-real(a.Trace())) > 1e-9 {
		t.Fatalf("Σλ = %v but Tr A = %v", sum, real(a.Trace()))
	}
}

func TestEigHDegenerate(t *testing.T) {
	// A matrix with an exactly repeated eigenvalue: 2×2 identity block.
	a := FromRows([][]complex128{
		{2, 0, 0},
		{0, 2, 0},
		{0, 0, 5},
	})
	eig, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 2, 5}
	for i := range want {
		if math.Abs(eig.Values[i]-want[i]) > 1e-12 {
			t.Fatalf("degenerate eigenvalues = %v", eig.Values)
		}
	}
	checkEigHResiduals(t, a, eig, 1e-12)
}

// TestEigHParticleInBox checks the canonical tight-binding chain spectrum:
// a hard-wall 1-D chain with hopping t has eigenvalues
// ε + 2t·cos(kπ/(N+1)), the discrete particle-in-a-box.
func TestEigHParticleInBox(t *testing.T) {
	const n = 30
	const eps0, hop = 0.0, -1.0
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, complex(eps0, 0))
		if i+1 < n {
			a.Set(i, i+1, complex(hop, 0))
			a.Set(i+1, i, complex(hop, 0))
		}
	}
	eig, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for k := 1; k <= n; k++ {
		want[k-1] = eps0 + 2*hop*math.Cos(float64(k)*math.Pi/float64(n+1))
	}
	sort.Float64s(want)
	for i := range want {
		if math.Abs(eig.Values[i]-want[i]) > 1e-10 {
			t.Fatalf("box level %d = %v, want %v", i, eig.Values[i], want[i])
		}
	}
}

func checkEigHResiduals(t *testing.T, a *Matrix, eig *EigenH, tol float64) {
	t.Helper()
	n := a.Rows
	scale := 1 + a.MaxAbs()
	for j := 0; j < n; j++ {
		v := make([]complex128, n)
		for i := 0; i < n; i++ {
			v[i] = eig.Vectors.At(i, j)
		}
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			r := av[i] - complex(eig.Values[j], 0)*v[i]
			if cmplx.Abs(r) > tol*scale {
				t.Fatalf("residual ‖Av−λv‖ component %g exceeds %g for eigenpair %d",
					cmplx.Abs(r), tol*scale, j)
			}
		}
	}
}

func TestEigGeneralDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1+1i)
	a.Set(1, 1, -2)
	a.Set(2, 2, 3i)
	eig, err := Eig(a)
	if err != nil {
		t.Fatal(err)
	}
	found := map[complex128]bool{}
	for _, v := range eig.Values {
		for _, w := range []complex128{1 + 1i, -2, 3i} {
			if cmplx.Abs(v-w) < 1e-10 {
				found[w] = true
			}
		}
	}
	if len(found) != 3 {
		t.Fatalf("diagonal eigenvalues not recovered: %v", eig.Values)
	}
}

func TestEigGeneralKnown2x2(t *testing.T) {
	// [[0,1],[1,0]] has eigenvalues ±1.
	a := FromRows([][]complex128{{0, 1}, {1, 0}})
	vals, err := EigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	sorted := []float64{real(vals[0]), real(vals[1])}
	sort.Float64s(sorted)
	if math.Abs(sorted[0]+1) > 1e-10 || math.Abs(sorted[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v", vals)
	}
}

func TestEigGeneralNonDiagonalizableSafe(t *testing.T) {
	// A Jordan block: defective, but the solver must still return finite
	// output with both eigenvalues ≈ 2.
	a := FromRows([][]complex128{{2, 1}, {0, 2}})
	eig, err := Eig(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range eig.Values {
		if cmplx.Abs(v-2) > 1e-7 {
			t.Fatalf("Jordan block eigenvalue = %v", v)
		}
	}
	for _, v := range eig.Vectors.Data {
		if cmplx.IsNaN(v) || cmplx.IsInf(v) {
			t.Fatal("non-finite eigenvector entries for defective matrix")
		}
	}
}

func TestEigGeneralRandomResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{2, 3, 6, 15, 30} {
		a := randMatrix(rng, n, n)
		eig, err := Eig(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scale := 1 + a.MaxAbs()
		for j := 0; j < n; j++ {
			v := make([]complex128, n)
			var vn float64
			for i := 0; i < n; i++ {
				v[i] = eig.Vectors.At(i, j)
				vn += real(v[i])*real(v[i]) + imag(v[i])*imag(v[i])
			}
			if math.Sqrt(vn) < 0.5 {
				t.Fatalf("n=%d: eigenvector %d not normalized", n, j)
			}
			av := a.MulVec(v)
			var res float64
			for i := 0; i < n; i++ {
				res += cmplx.Abs(av[i] - eig.Values[j]*v[i])
			}
			if res > 1e-8*scale*float64(n) {
				t.Fatalf("n=%d: eigenpair %d residual %g", n, j, res)
			}
		}
	}
}

func TestEigGeneralMatchesHermitian(t *testing.T) {
	// On a Hermitian input the general solver must reproduce EigH values.
	rng := rand.New(rand.NewSource(23))
	n := 10
	a := randHermitian(rng, n)
	hv, err := EigH(a)
	if err != nil {
		t.Fatal(err)
	}
	gv, err := EigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	for i, v := range gv {
		if math.Abs(imag(v)) > 1e-8 {
			t.Fatalf("Hermitian matrix produced complex eigenvalue %v", v)
		}
		got[i] = real(v)
	}
	sort.Float64s(got)
	for i := range got {
		if math.Abs(got[i]-hv.Values[i]) > 1e-8 {
			t.Fatalf("general vs Hermitian eigenvalue %d: %v vs %v", i, got[i], hv.Values[i])
		}
	}
}

func TestEigGeneralUnitCircle(t *testing.T) {
	// A circulant shift matrix has eigenvalues that are the n-th roots of
	// unity — a stress test for complex shifts and deflation.
	n := 8
	a := New(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, (i+1)%n, 1)
	}
	vals, err := EigValues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(cmplx.Abs(v)-1) > 1e-8 {
			t.Fatalf("circulant eigenvalue %v not on unit circle", v)
		}
	}
	// They must also be distinct n-th roots of unity.
	for _, v := range vals {
		w := cmplx.Pow(v, complex(float64(n), 0))
		if cmplx.Abs(w-1) > 1e-6 {
			t.Fatalf("eigenvalue %v is not an %d-th root of unity", v, n)
		}
	}
}
