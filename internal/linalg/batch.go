package linalg

// This file is the batched kernel layer of the solve path: every Batch*
// routine applies the corresponding per-matrix kernel to each element of a
// batch — typically views into one contiguous Panel — in batch order.
//
// The batched forms route each element through the vectorized kernel
// backend (panelkernels.go) rather than fusing arithmetic across the
// batch: element j of a batched call computes the exact expression tree
// of the looped reference call on the same operands — the AVX
// microkernels are constructed operation-for-operation from the scalar
// loops (veckernels.go) — so results and reported flops are
// bitwise-identical to the width-1 path by construction (DESIGN.md §14).
// What the batch layer adds on top of the vector backend is memory
// behavior — panel-packed operands, workspace-pooled factors and pivots,
// zero per-element allocation — which is where the profile of the looped
// path spends its non-arithmetic time.

// BatchGemmInto applies dst[j] = alpha·opA(a[j])·opB(b[j]) + beta·dst[j]
// for every batch element. The three slices must have equal length; shape
// rules per element are those of GemmInto.
func BatchGemmInto(dst []*Matrix, alpha complex128, a []*Matrix, opA Op, b []*Matrix, opB Op, beta complex128) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("linalg: batch width mismatch in BatchGemmInto")
	}
	for j := range dst {
		VecGemmInto(dst[j], alpha, a[j], opA, b[j], opB, beta)
	}
}

// BatchMul3Into applies dst[j] = opA(a[j])·opB(b[j])·opC(c[j]) for every
// batch element, sharing one workspace temporary across the batch.
func BatchMul3Into(dst []*Matrix, a []*Matrix, opA Op, b []*Matrix, opB Op, c []*Matrix, opC Op, ws *Workspace) {
	if len(dst) != len(a) || len(dst) != len(b) || len(dst) != len(c) {
		panic("linalg: batch width mismatch in BatchMul3Into")
	}
	for j := range dst {
		VecMul3Into(dst[j], a[j], opA, b[j], opB, c[j], opC, ws)
	}
}

// BatchShiftedNegInto applies dst[j] = zs[j]·I − m for every batch
// element: the batched resolvent assembly, reading the shared Hamiltonian
// block m once per batch. dst[j] may alias m only at width 1.
func BatchShiftedNegInto(dst []*Matrix, m *Matrix, zs []complex128) {
	if len(dst) != len(zs) {
		panic("linalg: batch width mismatch in BatchShiftedNegInto")
	}
	for j := range dst {
		VecShiftedNegInto(dst[j], m, zs[j])
	}
}

// BatchAddScaled applies dst[j] += s·b for every batch element, reading
// the shared block b once per batch.
func BatchAddScaled(dst []*Matrix, b *Matrix, s complex128) {
	for j := range dst {
		VecAddScaled(dst[j], b, s)
	}
}

// BatchTraceMulConj writes Tr[a[j]·b[j]†] into dst[j] for every batch
// element — the batched Caroli trace reduction.
func BatchTraceMulConj(dst []complex128, a, b []*Matrix) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic("linalg: batch width mismatch in BatchTraceMulConj")
	}
	for j := range a {
		dst[j] = TraceMulConj(a[j], b[j])
	}
}

// BatchDiagMulConjInto writes diag(x[j]·g[j]·x[j]†) into dst[j] for every
// batch element — the batched spectral-diagonal reduction.
func BatchDiagMulConjInto(dst [][]complex128, x, g []*Matrix, ws *Workspace) {
	if len(dst) != len(x) || len(dst) != len(g) {
		panic("linalg: batch width mismatch in BatchDiagMulConjInto")
	}
	for j := range x {
		DiagMulConjInto(dst[j], x[j], g[j], ws)
	}
}

// BatchFactorInPlace factors every batch element in place (as[j] becomes
// its packed LU), drawing pivot storage from ws. The returned
// factorizations share one backing array and reference the callers'
// matrices; hand them back with BatchReleaseLU before releasing ws so the
// pivot slices return to the free list instead of leaking. A nil as[j] is
// skipped (its LU stays zero) — the batch-scheduler convention for
// elements already failed upstream. errs[j] is non-nil where the element
// was singular; the survivors are still factored.
func BatchFactorInPlace(as []*Matrix, ws *Workspace) (lus []LU, errs []error) {
	lus = make([]LU, len(as))
	errs = make([]error, len(as))
	for j, a := range as {
		if a == nil {
			continue
		}
		piv := ws.GetInts(a.Rows)
		sign, err := factorInPlaceVec(a, piv)
		if err != nil {
			ws.PutInts(piv)
			errs[j] = err
			continue
		}
		lus[j] = LU{lu: a, piv: piv, sign: sign}
	}
	return lus, errs
}

// BatchReleaseLU returns the pivot storage of a BatchFactorInPlace result
// to ws. Elements that never factored (nil input or singular) are skipped.
func BatchReleaseLU(lus []LU, ws *Workspace) {
	for j := range lus {
		if lus[j].lu == nil {
			continue
		}
		ws.PutInts(lus[j].piv)
		lus[j] = LU{}
	}
}

// BatchSolveInto applies fs[j]: dst[j] ← A_j⁻¹·b[j] for every batch
// element (dst[j] may alias b[j]). Elements whose factorization is absent
// (zero LU) are skipped.
func BatchSolveInto(fs []LU, dst, b []*Matrix) {
	if len(fs) != len(dst) || len(fs) != len(b) {
		panic("linalg: batch width mismatch in BatchSolveInto")
	}
	for j := range fs {
		if fs[j].lu == nil {
			continue
		}
		fs[j].VecSolveInto(dst[j], b[j])
	}
}

// BatchInverseInto applies dst[j] = a[j]⁻¹ for every batch element via
// workspace scratch. A nil a[j] is skipped; errs[j] reports the singular
// elements while the survivors are still inverted.
func BatchInverseInto(dst, a []*Matrix, ws *Workspace) (errs []error) {
	if len(dst) != len(a) {
		panic("linalg: batch width mismatch in BatchInverseInto")
	}
	errs = make([]error, len(a))
	for j := range a {
		if a[j] == nil {
			continue
		}
		errs[j] = VecInverseInto(dst[j], a[j], ws)
	}
	return errs
}
