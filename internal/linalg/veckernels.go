package linalg

// Vectorized complex axpy/scale microkernels for the batched (panel)
// solve backend. Each helper computes exactly the expression tree of the
// scalar reference loop next to it — one correctly-rounded multiply or
// add per scalar operation, no fused multiply-add — so the AVX path is
// bitwise-identical to the portable loop on every element, and the
// batched kernels built on top stay bitwise-identical to the looped
// PR 3 reference kernels. The batched kernels dispatch here; the
// per-matrix reference kernels (GemmInto, factorInPlace,
// luSolveInPlace) deliberately do not, so they remain the independent
// scalar baseline the property tests compare the panel backend against.
//
// hasAVX is set once at init by a CPUID probe (amd64 only); every
// helper falls back to the scalar loop below a small length threshold,
// where the call overhead of a non-inlinable assembly routine exceeds
// the vector win. The scalar fallbacks live in separate *Scalar
// functions so the dispatch wrappers stay under the inlining budget —
// the row lengths of the solvers are small enough that a non-inlined
// wrapper call per row update is measurable.

// vecMinLen is the slice length below which the scalar loop beats the
// assembly call overhead.
const vecMinLen = 6

// axpyAddTo computes y[j] += m*x[j]. Note there is deliberately no
// m==0 short-circuit here: the reference kernels skip on the *unscaled*
// multiplier, and 0·x is not a no-op for IEEE signed zeros, infinities
// and NaNs — so the skip is a semantic that must live at the call site,
// exactly where the scalar kernel has it.
func axpyAddTo(y, x []complex128, m complex128) {
	if hasAVX && len(y) >= vecMinLen {
		n := len(y) &^ 1
		avxAxpyAdd(&y[0], &x[0], n, m)
		if n < len(y) {
			y[n] += m * x[n]
		}
		return
	}
	axpyAddScalar(y, x, m)
}

func axpyAddScalar(y, x []complex128, m complex128) {
	x = x[:len(y)]
	for j := range y {
		y[j] += m * x[j]
	}
}

// axpySubTo computes y[j] -= m*x[j].
func axpySubTo(y, x []complex128, m complex128) {
	if hasAVX && len(y) >= vecMinLen {
		n := len(y) &^ 1
		avxAxpySub(&y[0], &x[0], n, m)
		if n < len(y) {
			y[n] -= m * x[n]
		}
		return
	}
	axpySubScalar(y, x, m)
}

func axpySubScalar(y, x []complex128, m complex128) {
	x = x[:len(y)]
	for j := range y {
		y[j] -= m * x[j]
	}
}

// axpy2AddTo computes y[j] += m0*x0[j] + m1*x1[j], the two-deep unrolled
// update of the reference GEMM inner loop.
func axpy2AddTo(y, x0, x1 []complex128, m0, m1 complex128) {
	if hasAVX && len(y) >= vecMinLen {
		n := len(y) &^ 1
		avxAxpy2Add(&y[0], &x0[0], &x1[0], n, m0, m1)
		if n < len(y) {
			y[n] += m0*x0[n] + m1*x1[n]
		}
		return
	}
	axpy2AddScalar(y, x0, x1, m0, m1)
}

func axpy2AddScalar(y, x0, x1 []complex128, m0, m1 complex128) {
	x0 = x0[:len(y)]
	x1 = x1[:len(y)]
	for j := range y {
		y[j] += m0*x0[j] + m1*x1[j]
	}
}

// axpy2SubTo computes y[j] -= m0*x0[j] + m1*x1[j], the two-deep unrolled
// update of the reference triangular-solve inner loop.
func axpy2SubTo(y, x0, x1 []complex128, m0, m1 complex128) {
	if hasAVX && len(y) >= vecMinLen {
		n := len(y) &^ 1
		avxAxpy2Sub(&y[0], &x0[0], &x1[0], n, m0, m1)
		if n < len(y) {
			y[n] -= m0*x0[n] + m1*x1[n]
		}
		return
	}
	axpy2SubScalar(y, x0, x1, m0, m1)
}

func axpy2SubScalar(y, x0, x1 []complex128, m0, m1 complex128) {
	x0 = x0[:len(y)]
	x1 = x1[:len(y)]
	for j := range y {
		y[j] -= m0*x0[j] + m1*x1[j]
	}
}

// scaleTo computes y[j] *= d.
func scaleTo(y []complex128, d complex128) {
	if hasAVX && len(y) >= vecMinLen {
		n := len(y) &^ 1
		avxScale(&y[0], n, d)
		if n < len(y) {
			y[n] *= d
		}
		return
	}
	scaleScalar(y, d)
}

func scaleScalar(y []complex128, d complex128) {
	for j := range y {
		y[j] *= d
	}
}

// negTo computes dst[j] = -src[j] (an exact IEEE sign flip, matching the
// scalar unary minus bit for bit).
func negTo(dst, src []complex128) {
	if hasAVX && len(dst) >= vecMinLen {
		n := len(dst) &^ 1
		avxNeg(&dst[0], &src[0], n)
		if n < len(dst) {
			dst[n] = -src[n]
		}
		return
	}
	negScalar(dst, src)
}

func negScalar(dst, src []complex128) {
	src = src[:len(dst)]
	for j := range dst {
		dst[j] = -src[j]
	}
}

// subTo computes dst[j] = a[j] - b[j].
func subTo(dst, a, b []complex128) {
	if hasAVX && len(dst) >= vecMinLen {
		n := len(dst) &^ 1
		avxSub(&dst[0], &a[0], &b[0], n)
		if n < len(dst) {
			dst[n] = a[n] - b[n]
		}
		return
	}
	subScalar(dst, a, b)
}

func subScalar(dst, a, b []complex128) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for j := range dst {
		dst[j] = a[j] - b[j]
	}
}
