package linalg

import (
	"math/cmplx"

	"repro/internal/perf"
)

// gemmBlock is the cache-blocking tile edge used by the matrix-product
// kernels. 64 complex128 values per row segment keep the working set of a
// tile pair within L1/L2 on commodity cores.
const gemmBlock = 64

// Op selects how a GEMM operand enters the product.
type Op int

const (
	// NoTrans uses the operand as stored.
	NoTrans Op = iota
	// ConjTrans uses the Hermitian adjoint of the operand without
	// materializing it — products like A·B† and Γ·G·Γ·G† read the
	// original storage directly.
	ConjTrans
)

// opDims returns the shape of op(m).
func opDims(m *Matrix, op Op) (rows, cols int) {
	if op == ConjTrans {
		return m.Cols, m.Rows
	}
	return m.Rows, m.Cols
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	out := New(m.Rows, b.Cols)
	GemmInto(out, 1, m, NoTrans, b, NoTrans, 0)
	return out
}

// MulAddInto sets dst = beta·dst + a·b. Kept as the historical entry
// point; it forwards to GemmInto, the single kernel every product routine
// delegates to. beta of 0 overwrites dst, 1 accumulates.
func (dst *Matrix) MulAddInto(a, b *Matrix, beta complex128) {
	GemmInto(dst, 1, a, NoTrans, b, NoTrans, beta)
}

// MulInto sets dst = opA(a)·opB(b), overwriting dst.
func MulInto(dst *Matrix, a *Matrix, opA Op, b *Matrix, opB Op) {
	GemmInto(dst, 1, a, opA, b, opB, 0)
}

// GemmInto is the general fused product kernel:
//
//	dst = alpha·opA(a)·opB(b) + beta·dst
//
// ConjTrans operands are read in place — no adjoint is ever materialized.
// dst must not alias a or b. Flop accounting and cache blocking live here
// so every product routine reports identically.
func GemmInto(dst *Matrix, alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128) {
	if dst == a || dst == b {
		panic("linalg: GemmInto output aliases an operand")
	}
	ra, ca := opDims(a, opA)
	rb, cb := opDims(b, opB)
	if ca != rb {
		panic("linalg: inner dimension mismatch in GemmInto")
	}
	if dst.Rows != ra || dst.Cols != cb {
		panic("linalg: output dimension mismatch in GemmInto")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 {
		for i := range dst.Data {
			dst.Data[i] *= beta
		}
		perf.AddFlops(int64(len(dst.Data)) * perf.FlopsCMul)
	}
	n, k, p := ra, ca, cb
	switch {
	case opA == NoTrans && opB == NoTrans:
		// i-k-j loop order with row-slice inner loops: the innermost loop
		// streams contiguously through b and dst, which is what matters for
		// a pure-Go kernel without SIMD intrinsics. Blocked over k and j
		// for cache reuse on large operands; unrolled two-deep over k so
		// each dst row segment is read and written half as often.
		for jj := 0; jj < p; jj += gemmBlock {
			jEnd := min(jj+gemmBlock, p)
			for kk := 0; kk < k; kk += gemmBlock {
				kEnd := min(kk+gemmBlock, k)
				for i := 0; i < n; i++ {
					dstRow := dst.Data[i*p+jj : i*p+jEnd]
					aRow := a.Data[i*k : (i+1)*k]
					l := kk
					for ; l+1 < kEnd; l += 2 {
						av0 := aRow[l]
						av1 := aRow[l+1]
						if av0 == 0 && av1 == 0 {
							continue
						}
						av0 *= alpha
						av1 *= alpha
						b0 := b.Data[l*p+jj : l*p+jEnd]
						b1 := b.Data[(l+1)*p+jj : (l+1)*p+jEnd]
						b1 = b1[:len(dstRow)]
						b0 = b0[:len(dstRow)]
						for j := range dstRow {
							dstRow[j] += av0*b0[j] + av1*b1[j]
						}
					}
					for ; l < kEnd; l++ {
						av := aRow[l]
						if av == 0 {
							continue
						}
						av *= alpha
						bRow := b.Data[l*p+jj : l*p+jEnd]
						bRow = bRow[:len(dstRow)]
						for j := range dstRow {
							dstRow[j] += av * bRow[j]
						}
					}
				}
			}
		}
	case opA == NoTrans && opB == ConjTrans:
		// dst[i,j] += alpha·Σ_l a[i,l]·conj(b[j,l]): dot products of
		// contiguous rows of a and b, blocked over l.
		for kk := 0; kk < k; kk += gemmBlock {
			kEnd := min(kk+gemmBlock, k)
			for i := 0; i < n; i++ {
				aRow := a.Data[i*k : (i+1)*k]
				dstRow := dst.Data[i*p : (i+1)*p]
				for j := 0; j < p; j++ {
					bRow := b.Data[j*k : (j+1)*k]
					var s complex128
					for l := kk; l < kEnd; l++ {
						s += aRow[l] * cmplx.Conj(bRow[l])
					}
					dstRow[j] += alpha * s
				}
			}
		}
	case opA == ConjTrans && opB == NoTrans:
		// dst[i,j] += alpha·Σ_l conj(a[l,i])·b[l,j]: stream rows of a and
		// b together (l outer), accumulating rank-1 updates into dst rows.
		for l := 0; l < k; l++ {
			aRow := a.Data[l*n : (l+1)*n]
			bRow := b.Data[l*p : (l+1)*p]
			for i := 0; i < n; i++ {
				av := aRow[i]
				if av == 0 {
					continue
				}
				av = alpha * cmplx.Conj(av)
				dstRow := dst.Data[i*p : (i+1)*p]
				for j := 0; j < p; j++ {
					dstRow[j] += av * bRow[j]
				}
			}
		}
	default: // ConjTrans, ConjTrans
		// dst[i,j] += alpha·conj(Σ_l b[j,l]·a[l,i]) — rare in the solvers
		// (it equals (b·a)† and the callers reassociate instead), kept for
		// completeness.
		for i := 0; i < n; i++ {
			dstRow := dst.Data[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				bRow := b.Data[j*k : (j+1)*k]
				var s complex128
				for l := 0; l < k; l++ {
					s += bRow[l] * a.Data[l*n+i]
				}
				dstRow[j] += alpha * cmplx.Conj(s)
			}
		}
	}
	perf.AddFlops(perf.GemmFlops(n, k, p))
}

// MulAdd returns a·b + c as a new matrix.
//
// Deprecated: MulAdd allocates a fresh result per call. Hot paths use
// GemmInto(dst, 1, a, NoTrans, b, NoTrans, 1) on workspace storage; new
// uses outside tests are flagged by `make check`.
func MulAdd(a, b, c *Matrix) *Matrix {
	out := c.Clone()
	GemmInto(out, 1, a, NoTrans, b, NoTrans, 1)
	return out
}

// Mul3 returns the triple product a·b·c, associating to minimize work.
//
// Deprecated: Mul3 allocates its result and a private workspace per call.
// Hot paths use Mul3Into with a per-solve workspace; new uses outside
// tests are flagged by `make check`.
func Mul3(a, b, c *Matrix) *Matrix {
	ws := GetWorkspace()
	defer ws.Release()
	out := New(a.Rows, c.Cols)
	Mul3Into(out, a, NoTrans, b, NoTrans, c, NoTrans, ws)
	return out
}

// Mul3Into sets dst = opA(a)·opB(b)·opC(c), associating to minimize work.
// Both associations run through GemmInto with a single workspace
// temporary, so the flops of the chosen order are reported through one
// code path. dst must not alias any operand.
func Mul3Into(dst *Matrix, a *Matrix, opA Op, b *Matrix, opB Op, c *Matrix, opC Op, ws *Workspace) {
	ra, ca := opDims(a, opA)
	rb, cb := opDims(b, opB)
	rc, cc := opDims(c, opC)
	if ca != rb || cb != rc {
		panic("linalg: inner dimension mismatch in Mul3Into")
	}
	if dst.Rows != ra || dst.Cols != cc {
		panic("linalg: output dimension mismatch in Mul3Into")
	}
	// Cost of (a·b)·c versus a·(b·c).
	left := int64(ra)*int64(ca)*int64(cb) + int64(ra)*int64(cb)*int64(cc)
	right := int64(rb)*int64(cb)*int64(cc) + int64(ra)*int64(ca)*int64(cc)
	if left <= right {
		tmp := ws.Get(ra, cb)
		GemmInto(tmp, 1, a, opA, b, opB, 0)
		GemmInto(dst, 1, tmp, NoTrans, c, opC, 0)
		ws.Put(tmp)
	} else {
		tmp := ws.Get(rb, cc)
		GemmInto(tmp, 1, b, opB, c, opC, 0)
		GemmInto(dst, 1, a, opA, tmp, NoTrans, 0)
		ws.Put(tmp)
	}
}
