package linalg

import "repro/internal/perf"

// gemmBlock is the cache-blocking tile edge used by the matrix-product
// kernels. 64 complex128 values per row segment keep the working set of a
// tile pair within L1/L2 on commodity cores.
const gemmBlock = 64

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	out := New(m.Rows, b.Cols)
	out.MulAddInto(m, b, 0)
	return out
}

// MulAddInto sets dst = beta·dst + a·b. It is the single GEMM kernel every
// other product routine delegates to, so that flop accounting and blocking
// live in one place. beta of 0 overwrites dst, 1 accumulates.
func (dst *Matrix) MulAddInto(a, b *Matrix, beta complex128) {
	if a.Cols != b.Rows {
		panic("linalg: inner dimension mismatch in MulAddInto")
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("linalg: output dimension mismatch in MulAddInto")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 {
		for i := range dst.Data {
			dst.Data[i] *= beta
		}
		perf.AddFlops(int64(len(dst.Data)) * perf.FlopsCMul)
	}
	n, k, p := a.Rows, a.Cols, b.Cols
	// i-k-j loop order with row-slice inner loops: the innermost loop
	// streams contiguously through b and dst, which is what matters for a
	// pure-Go kernel without SIMD intrinsics. Blocked over k and j for
	// cache reuse on large operands.
	for jj := 0; jj < p; jj += gemmBlock {
		jEnd := min(jj+gemmBlock, p)
		for kk := 0; kk < k; kk += gemmBlock {
			kEnd := min(kk+gemmBlock, k)
			for i := 0; i < n; i++ {
				dstRow := dst.Data[i*p : (i+1)*p]
				aRow := a.Data[i*k : (i+1)*k]
				for l := kk; l < kEnd; l++ {
					av := aRow[l]
					if av == 0 {
						continue
					}
					bRow := b.Data[l*p : (l+1)*p]
					for j := jj; j < jEnd; j++ {
						dstRow[j] += av * bRow[j]
					}
				}
			}
		}
	}
	perf.AddFlops(perf.GemmFlops(n, k, p))
}

// MulAdd returns a·b + c as a new matrix.
func MulAdd(a, b, c *Matrix) *Matrix {
	out := c.Clone()
	out.MulAddInto(a, b, 1)
	return out
}

// Mul3 returns the triple product a·b·c, associating to minimize work.
func Mul3(a, b, c *Matrix) *Matrix {
	// Cost of (a·b)·c versus a·(b·c).
	left := int64(a.Rows)*int64(a.Cols)*int64(b.Cols) + int64(a.Rows)*int64(b.Cols)*int64(c.Cols)
	right := int64(b.Rows)*int64(b.Cols)*int64(c.Cols) + int64(a.Rows)*int64(a.Cols)*int64(c.Cols)
	if left <= right {
		return a.Mul(b).Mul(c)
	}
	return a.Mul(b.Mul(c))
}
