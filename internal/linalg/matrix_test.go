package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// randMatrix returns an n×m matrix with entries uniform in the unit square,
// using the provided source for reproducibility.
func randMatrix(rng *rand.Rand, n, m int) *Matrix {
	a := New(n, m)
	for i := range a.Data {
		a.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return a
}

// randHermitian returns a random n×n Hermitian matrix.
func randHermitian(rng *rand.Rand, n int) *Matrix {
	a := randMatrix(rng, n, n)
	h := a.Add(a.ConjTranspose())
	h.ScaleInPlace(0.5)
	return h
}

func TestNewAndIdentity(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("New(3,4) has shape %dx%d", m.Rows, m.Cols)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New matrix is not zero-initialized")
		}
	}
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := complex128(0)
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity(3)[%d][%d] = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]complex128{{1, 2i}, {3, 4 + 1i}})
	if m.At(0, 1) != 2i || m.At(1, 1) != 4+1i {
		t.Fatalf("FromRows content mismatch: %v", m)
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set did not update element")
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 4, 5)
	b := randMatrix(rng, 4, 5)
	sum := a.Add(b)
	diff := sum.Sub(b)
	if !diff.Equal(a, 1e-14) {
		t.Fatal("(a+b)−b != a")
	}
	s := a.Scale(2 + 1i)
	for i := range a.Data {
		if cmplx.Abs(s.Data[i]-(2+1i)*a.Data[i]) > 1e-14 {
			t.Fatal("Scale mismatch")
		}
	}
	c := a.Clone()
	c.AddInPlace(b)
	if !c.Equal(sum, 0) {
		t.Fatal("AddInPlace != Add")
	}
	c.SubInPlace(b)
	if !c.Equal(a, 1e-14) {
		t.Fatal("SubInPlace did not invert AddInPlace")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 7, 13)
	b := randMatrix(rng, 13, 5)
	got := a.Mul(b)
	want := New(7, 5)
	for i := 0; i < 7; i++ {
		for j := 0; j < 5; j++ {
			var s complex128
			for k := 0; k < 13; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if !got.Equal(want, 1e-12) {
		t.Fatal("blocked GEMM disagrees with naive product")
	}
}

func TestMulLargeBlocked(t *testing.T) {
	// Exercise the blocking path with dimensions beyond one tile.
	rng := rand.New(rand.NewSource(3))
	n := gemmBlock + 17
	a := randMatrix(rng, n, n)
	id := Identity(n)
	if !a.Mul(id).Equal(a, 1e-12) {
		t.Fatal("A·I != A for blocked sizes")
	}
	if !id.Mul(a).Equal(a, 1e-12) {
		t.Fatal("I·A != A for blocked sizes")
	}
}

func TestMulAddIntoBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 3, 3)
	b := randMatrix(rng, 3, 3)
	c := randMatrix(rng, 3, 3)
	acc := c.Clone()
	acc.MulAddInto(a, b, 1)
	want := a.Mul(b).Add(c)
	if !acc.Equal(want, 1e-12) {
		t.Fatal("MulAddInto with beta=1 disagrees with Mul+Add")
	}
	half := c.Clone()
	half.MulAddInto(a, b, 0.5)
	want2 := a.Mul(b).Add(c.Scale(0.5))
	if !half.Equal(want2, 1e-12) {
		t.Fatal("MulAddInto with beta=0.5 disagrees")
	}
}

func TestConjTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMatrix(rng, 4, 6)
	at := a.ConjTranspose()
	if at.Rows != 6 || at.Cols != 4 {
		t.Fatalf("ConjTranspose shape %dx%d", at.Rows, at.Cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 6; j++ {
			if at.At(j, i) != cmplx.Conj(a.At(i, j)) {
				t.Fatal("ConjTranspose entry mismatch")
			}
		}
	}
	if !a.ConjTranspose().ConjTranspose().Equal(a, 0) {
		t.Fatal("double adjoint is not the identity")
	}
}

func TestTraceDiag(t *testing.T) {
	m := FromRows([][]complex128{{1, 2}, {3, 4i}})
	if m.Trace() != 1+4i {
		t.Fatalf("Trace = %v", m.Trace())
	}
	d := m.Diag()
	if d[0] != 1 || d[1] != 4i {
		t.Fatalf("Diag = %v", d)
	}
}

func TestSubmatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 6, 6)
	b := a.Submatrix(1, 2, 3, 4)
	if b.Rows != 3 || b.Cols != 4 {
		t.Fatalf("Submatrix shape %dx%d", b.Rows, b.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if b.At(i, j) != a.At(1+i, 2+j) {
				t.Fatal("Submatrix content mismatch")
			}
		}
	}
	c := New(6, 6)
	c.SetSubmatrix(1, 2, b)
	if !c.Submatrix(1, 2, 3, 4).Equal(b, 0) {
		t.Fatal("SetSubmatrix/Submatrix round trip failed")
	}
}

func TestIsHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randHermitian(rng, 5)
	if !h.IsHermitian(1e-14) {
		t.Fatal("randHermitian result not Hermitian")
	}
	h.Set(0, 1, h.At(0, 1)+1)
	if h.IsHermitian(1e-6) {
		t.Fatal("perturbed matrix still reported Hermitian")
	}
	if New(2, 3).IsHermitian(1) {
		t.Fatal("non-square matrix reported Hermitian")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	y := a.MulVec([]complex128{1, 1i})
	if y[0] != 1+2i || y[1] != 3+4i {
		t.Fatalf("MulVec = %v", y)
	}
}

func TestNorms(t *testing.T) {
	m := FromRows([][]complex128{{3, 0}, {0, 4i}})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if d := m.FrobeniusNorm() - 5; d > 1e-14 || d < -1e-14 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestMul3Associativity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 3, 7)
	b := randMatrix(rng, 7, 2)
	c := randMatrix(rng, 2, 5)
	got := Mul3(a, b, c)
	want := a.Mul(b).Mul(c)
	if !got.Equal(want, 1e-12) {
		t.Fatal("Mul3 disagrees with left association")
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	New(2, 2).Add(New(3, 3))
}
