package linalg

import (
	"math/rand"
	"testing"
)

// randVecZ returns n random complex values with a sprinkling of exact
// zeros, so the kernels' zero-skip branches are exercised.
func randVecZ(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		if r.Intn(5) == 0 {
			continue
		}
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

// TestVecMicrokernelsBitwise pins every axpy/scale dispatch helper to
// the scalar loop it vectorizes, element for element, across lengths
// spanning the vecMinLen threshold and odd tails.
func TestVecMicrokernelsBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, n := range []int{0, 1, 2, 3, 5, 6, 7, 8, 13, 14, 64, 65} {
		m0 := complex(r.NormFloat64(), r.NormFloat64())
		m1 := complex(r.NormFloat64(), r.NormFloat64())
		x0 := randVecZ(r, n)
		x1 := randVecZ(r, n)
		base := randVecZ(r, n)
		dup := func() (a, b []complex128) {
			return append([]complex128(nil), base...), append([]complex128(nil), base...)
		}
		check := func(name string, got, want []complex128) {
			t.Helper()
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s: n=%d j=%d got %v want %v", name, n, j, got[j], want[j])
				}
			}
		}

		g, w := dup()
		axpyAddTo(g, x0, m0)
		axpyAddScalar(w, x0, m0)
		check("axpyAdd", g, w)

		g, w = dup()
		axpySubTo(g, x0, m0)
		axpySubScalar(w, x0, m0)
		check("axpySub", g, w)

		g, w = dup()
		axpy2AddTo(g, x0, x1, m0, m1)
		axpy2AddScalar(w, x0, x1, m0, m1)
		check("axpy2Add", g, w)

		g, w = dup()
		axpy2SubTo(g, x0, x1, m0, m1)
		axpy2SubScalar(w, x0, x1, m0, m1)
		check("axpy2Sub", g, w)

		g, w = dup()
		scaleTo(g, m0)
		scaleScalar(w, m0)
		check("scale", g, w)

		g, w = dup()
		negTo(g, x0[:n])
		negScalar(w, x0[:n])
		check("neg", g, w)

		g, w = dup()
		subTo(g, x0, x1)
		subScalar(w, x0, x1)
		check("sub", g, w)
	}
}

// TestFusedGemmBitwise pins VecGemmInto (and with it the fused
// avxGemmTileNN tile kernel) to the scalar reference GemmInto across
// shapes with empty, 1×1, sub-threshold, odd and multi-tile extents.
func TestFusedGemmBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {1, 1, 1},
		{14, 14, 14}, {7, 13, 9}, {64, 65, 67}, {1, 6, 6},
		{6, 1, 6}, {3, 70, 70}, {5, 5, 5},
	}
	for _, opB := range []Op{NoTrans, ConjTrans} {
		for _, opA := range []Op{NoTrans, ConjTrans} {
			for _, sz := range shapes {
				n, k, p := sz[0], sz[1], sz[2]
				a := &Matrix{Rows: n, Cols: k, Data: randVecZ(r, n*k)}
				b := &Matrix{Rows: k, Cols: p, Data: randVecZ(r, k*p)}
				if opA == ConjTrans {
					a = &Matrix{Rows: k, Cols: n, Data: randVecZ(r, n*k)}
				}
				if opB == ConjTrans {
					b = &Matrix{Rows: p, Cols: k, Data: randVecZ(r, k*p)}
				}
				for _, beta := range []complex128{0, 1, complex(0.5, -2)} {
					alpha := complex(r.NormFloat64(), r.NormFloat64())
					want := New(n, p)
					got := New(n, p)
					seed := randVecZ(r, n*p)
					copy(want.Data, seed)
					copy(got.Data, seed)
					GemmInto(want, alpha, a, opA, b, opB, beta)
					VecGemmInto(got, alpha, a, opA, b, opB, beta)
					for i := range want.Data {
						if want.Data[i] != got.Data[i] {
							t.Fatalf("opA=%d opB=%d %v beta=%v: idx %d got %v want %v",
								opA, opB, sz, beta, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestFusedFactorBitwise pins factorInPlaceVec (and the fused
// avxFactorColUpdate kernel) to the scalar reference factorization.
func TestFusedFactorBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 2, 5, 6, 7, 14, 33, 64} {
		d := randVecZ(r, n*n)
		for i := 0; i < n; i++ {
			d[i*n+i] += complex(float64(n), 0.5)
		}
		m1 := &Matrix{Rows: n, Cols: n, Data: append([]complex128(nil), d...)}
		m2 := &Matrix{Rows: n, Cols: n, Data: append([]complex128(nil), d...)}
		p1 := make([]int, n)
		p2 := make([]int, n)
		s1, e1 := factorInPlace(m1, p1)
		s2, e2 := factorInPlaceVec(m2, p2)
		if s1 != s2 || (e1 == nil) != (e2 == nil) {
			t.Fatalf("n=%d: sign/err mismatch (%d,%v) vs (%d,%v)", n, s1, e1, s2, e2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("n=%d: pivot %d differs", n, i)
			}
		}
		for i := range m1.Data {
			if m1.Data[i] != m2.Data[i] {
				t.Fatalf("n=%d idx %d: got %v want %v", n, i, m2.Data[i], m1.Data[i])
			}
		}
	}
}

// TestFusedSolveBitwise pins luSolveInPlaceVec (and the fused
// avxLuRowUpdate kernel) to the scalar reference substitution across
// wide, narrow (sub-threshold) and odd right-hand-side counts.
func TestFusedSolveBitwise(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for _, sz := range [][2]int{{1, 6}, {5, 7}, {14, 14}, {14, 6}, {33, 9}, {64, 64}, {7, 1}, {7, 5}, {6, 0}} {
		n, nrhs := sz[0], sz[1]
		d := randVecZ(r, n*n)
		for i := 0; i < n; i++ {
			d[i*n+i] += complex(float64(n), 0.5)
		}
		f := &Matrix{Rows: n, Cols: n, Data: d}
		piv := make([]int, n)
		if _, err := factorInPlace(f, piv); err != nil {
			t.Fatal(err)
		}
		bd := randVecZ(r, n*nrhs)
		b1 := &Matrix{Rows: n, Cols: nrhs, Data: append([]complex128(nil), bd...)}
		b2 := &Matrix{Rows: n, Cols: nrhs, Data: append([]complex128(nil), bd...)}
		luSolveInPlace(f, piv, b1)
		luSolveInPlaceVec(f, piv, b2)
		for i := range b1.Data {
			if b1.Data[i] != b2.Data[i] {
				t.Fatalf("n=%d nrhs=%d idx %d: got %v want %v", n, nrhs, i, b2.Data[i], b1.Data[i])
			}
		}
	}
}
