package linalg

import (
	"errors"
	"math"
	"math/cmplx"

	"repro/internal/perf"
)

// Eigen holds the eigendecomposition of a general complex matrix:
// A·Vectors[:,j] = Values[j]·Vectors[:,j]. Vectors columns are normalized to
// unit Euclidean length but are not mutually orthogonal in general.
type Eigen struct {
	Values  []complex128
	Vectors *Matrix
}

// maxQRIterations bounds the shifted-QR sweeps per eigenvalue.
const maxQRIterations = 80

// Eig computes all eigenvalues and right eigenvectors of a general complex
// matrix. The algorithm is the dense non-Hermitian standard: unitary
// reduction to upper Hessenberg form, explicit single-shift (Wilkinson) QR
// iteration with Givens rotations to Schur form, and triangular
// back-substitution for the eigenvectors. It is the kernel behind the lead
// (contact) Bloch-mode solver in the wave-function formalism.
func Eig(a *Matrix) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Eig requires a square matrix")
	}
	n := a.Rows
	if n == 0 {
		return &Eigen{Values: nil, Vectors: New(0, 0)}, nil
	}
	h := a.Clone()
	z := Identity(n)
	hessenberg(h, z)
	if err := schurQR(h, z); err != nil {
		return nil, err
	}
	perf.AddFlops(25 * int64(n) * int64(n) * int64(n)) // typical cost of QR to Schur with vectors

	values := make([]complex128, n)
	for i := 0; i < n; i++ {
		values[i] = h.At(i, i)
	}
	vectors := triangularEigenvectors(h, z)
	return &Eigen{Values: values, Vectors: vectors}, nil
}

// EigValues computes only the eigenvalues of a general complex matrix.
func EigValues(a *Matrix) ([]complex128, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: EigValues requires a square matrix")
	}
	n := a.Rows
	h := a.Clone()
	hessenberg(h, nil)
	if err := schurQR(h, nil); err != nil {
		return nil, err
	}
	values := make([]complex128, n)
	for i := 0; i < n; i++ {
		values[i] = h.At(i, i)
	}
	return values, nil
}

// hessenberg reduces h to upper Hessenberg form in place by complex
// Householder reflections. If z is non-nil, the accumulated unitary
// similarity is multiplied into it (z ← z·Q).
func hessenberg(h, z *Matrix) {
	n := h.Rows
	v := make([]complex128, n)
	for k := 0; k < n-2; k++ {
		var norm float64
		for i := k + 1; i < n; i++ {
			norm += real(h.At(i, k))*real(h.At(i, k)) + imag(h.At(i, k))*imag(h.At(i, k))
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		x0 := h.At(k+1, k)
		var alpha complex128
		if x0 == 0 {
			alpha = complex(-norm, 0)
		} else {
			alpha = -x0 / complex(cmplx.Abs(x0), 0) * complex(norm, 0)
		}
		var vnorm float64
		for i := k + 1; i < n; i++ {
			vi := h.At(i, k)
			if i == k+1 {
				vi -= alpha
			}
			v[i] = vi
			vnorm += real(vi)*real(vi) + imag(vi)*imag(vi)
		}
		vnorm = math.Sqrt(vnorm)
		if vnorm == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			v[i] /= complex(vnorm, 0)
		}
		// Left update: h ← (I − 2vv†)·h on rows k+1..n-1.
		for j := k; j < n; j++ {
			var s complex128
			for i := k + 1; i < n; i++ {
				s += cmplx.Conj(v[i]) * h.At(i, j)
			}
			s *= 2
			for i := k + 1; i < n; i++ {
				h.Set(i, j, h.At(i, j)-s*v[i])
			}
		}
		// Right update: h ← h·(I − 2vv†) on cols k+1..n-1.
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += h.At(i, j) * v[j]
			}
			s *= 2
			for j := k + 1; j < n; j++ {
				h.Set(i, j, h.At(i, j)-s*cmplx.Conj(v[j]))
			}
		}
		if z != nil {
			for i := 0; i < n; i++ {
				var s complex128
				for j := k + 1; j < n; j++ {
					s += z.At(i, j) * v[j]
				}
				s *= 2
				for j := k + 1; j < n; j++ {
					z.Set(i, j, z.At(i, j)-s*cmplx.Conj(v[j]))
				}
			}
		}
	}
	perf.AddFlops(40 * int64(n) * int64(n) * int64(n) / 3)
}

// givens computes a complex plane rotation with real cosine c ≥ 0 and
// complex sine s such that
//
//	[  c   s ] [a]   [r]
//	[ −s̄   c ] [b] = [0].
func givens(a, b complex128) (c float64, s complex128) {
	if b == 0 {
		return 1, 0
	}
	if a == 0 {
		return 0, cmplx.Conj(b) / complex(cmplx.Abs(b), 0)
	}
	aa, ab := cmplx.Abs(a), cmplx.Abs(b)
	t := math.Hypot(aa, ab)
	c = aa / t
	s = a / complex(aa, 0) * cmplx.Conj(b) / complex(t, 0)
	return c, s
}

// schurQR drives h (upper Hessenberg) to upper triangular Schur form by
// explicit single-shift QR with deflation, accumulating rotations into z
// when z is non-nil.
func schurQR(h, z *Matrix) error {
	n := h.Rows
	cs := make([]float64, n)
	sn := make([]complex128, n)
	hnorm := h.FrobeniusNorm()
	if hnorm == 0 {
		return nil
	}
	m := n - 1 // active block is rows/cols l..m
	iter := 0
	for m > 0 {
		// Deflate: find the start l of the active unreduced block.
		l := m
		for l > 0 {
			sub := cmplx.Abs(h.At(l, l-1))
			if sub <= machEps*(cmplx.Abs(h.At(l-1, l-1))+cmplx.Abs(h.At(l, l))+machEps*hnorm) {
				h.Set(l, l-1, 0)
				break
			}
			l--
		}
		if l == m {
			m--
			iter = 0
			continue
		}
		iter++
		if iter > maxQRIterations {
			return errors.New("linalg: QR iteration failed to converge")
		}
		// Wilkinson shift from the trailing 2×2 of the active block; every
		// few stalled sweeps take an exceptional ad-hoc shift to break
		// symmetry-induced cycling.
		var mu complex128
		if iter%12 == 0 {
			mu = h.At(m, m) + complex(cmplx.Abs(h.At(m, m-1)), 0)*complex(1.0, 0.5)
		} else {
			a := h.At(m-1, m-1)
			b := h.At(m-1, m)
			c := h.At(m, m-1)
			d := h.At(m, m)
			tr2 := (a + d) / 2
			disc := cmplx.Sqrt(tr2*tr2 - (a*d - b*c))
			mu1 := tr2 + disc
			mu2 := tr2 - disc
			if cmplx.Abs(mu1-d) < cmplx.Abs(mu2-d) {
				mu = mu1
			} else {
				mu = mu2
			}
		}
		// Explicit QR step on the active block: factor (H − μI) = Q·R with
		// Givens rotations, then form R·Q† + μI block-wise.
		for i := l; i <= m; i++ {
			h.Set(i, i, h.At(i, i)-mu)
		}
		for i := l; i < m; i++ {
			c, s := givens(h.At(i, i), h.At(i+1, i))
			cs[i], sn[i] = c, s
			// Apply the rotation to rows i, i+1 over columns i..n-1.
			for j := i; j < h.Cols; j++ {
				t1 := h.At(i, j)
				t2 := h.At(i+1, j)
				h.Set(i, j, complex(c, 0)*t1+s*t2)
				h.Set(i+1, j, -cmplx.Conj(s)*t1+complex(c, 0)*t2)
			}
		}
		for i := l; i < m; i++ {
			c, s := cs[i], sn[i]
			// Apply the adjoint rotation to columns i, i+1 over rows 0..i+1.
			top := i + 2
			if top > h.Rows {
				top = h.Rows
			}
			for r := 0; r < top; r++ {
				t1 := h.At(r, i)
				t2 := h.At(r, i+1)
				h.Set(r, i, complex(c, 0)*t1+cmplx.Conj(s)*t2)
				h.Set(r, i+1, -s*t1+complex(c, 0)*t2)
			}
			if z != nil {
				for r := 0; r < z.Rows; r++ {
					t1 := z.At(r, i)
					t2 := z.At(r, i+1)
					z.Set(r, i, complex(c, 0)*t1+cmplx.Conj(s)*t2)
					z.Set(r, i+1, -s*t1+complex(c, 0)*t2)
				}
			}
		}
		for i := l; i <= m; i++ {
			h.Set(i, i, h.At(i, i)+mu)
		}
	}
	// Clean the strictly-lower part, which holds converged rotations' noise.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			h.Set(i, j, 0)
		}
	}
	return nil
}

// triangularEigenvectors back-substitutes on the upper triangular Schur
// factor t to obtain its eigenvectors, then rotates them back with z.
func triangularEigenvectors(t, z *Matrix) *Matrix {
	n := t.Rows
	small := machEps * (1 + t.FrobeniusNorm())
	vecs := New(n, n)
	x := make([]complex128, n)
	for j := 0; j < n; j++ {
		lambda := t.At(j, j)
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
		for i := j - 1; i >= 0; i-- {
			var s complex128
			for k := i + 1; k <= j; k++ {
				s += t.At(i, k) * x[k]
			}
			den := t.At(i, i) - lambda
			if cmplx.Abs(den) < small {
				// Perturb repeated eigenvalues just enough to keep the
				// back-substitution bounded (LAPACK ztrevc convention).
				den = complex(small, 0)
			}
			x[i] = -s / den
		}
		// v = Z·x, normalized.
		var norm float64
		for i := 0; i < n; i++ {
			var s complex128
			for k := 0; k <= j; k++ {
				s += z.At(i, k) * x[k]
			}
			vecs.Set(i, j, s)
			norm += real(s)*real(s) + imag(s)*imag(s)
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			inv := complex(1/norm, 0)
			for i := 0; i < n; i++ {
				vecs.Set(i, j, vecs.At(i, j)*inv)
			}
		}
	}
	perf.AddFlops(4 * int64(n) * int64(n) * int64(n))
	return vecs
}
