package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveConjT materializes the Hermitian adjoint the slow, obvious way.
func naiveConjT(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, cmplx.Conj(a.At(i, j)))
		}
	}
	return out
}

// naiveMul is the reference triple-loop product, free of blocking and
// unrolling, against which the fused kernels are checked.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s complex128
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// applyOp returns op(m) materialized.
func applyOp(m *Matrix, op Op) *Matrix {
	if op == ConjTrans {
		return naiveConjT(m)
	}
	return m.Clone()
}

func maxAbsDiff(a, b *Matrix) float64 {
	var m float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// propertySizes covers the degenerate shapes (empty, scalar) alongside
// sizes that straddle the unroll and blocking boundaries.
var propertySizes = []int{0, 1, 2, 3, 5, 8, 17, 65}

func TestMulIntoOpVariantsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, opA := range []Op{NoTrans, ConjTrans} {
		for _, opB := range []Op{NoTrans, ConjTrans} {
			for trial := 0; trial < 30; trial++ {
				n := propertySizes[rng.Intn(len(propertySizes))]
				k := propertySizes[rng.Intn(len(propertySizes))]
				p := propertySizes[rng.Intn(len(propertySizes))]
				var a, b *Matrix
				if opA == NoTrans {
					a = randMatrix(rng, n, k)
				} else {
					a = randMatrix(rng, k, n)
				}
				if opB == NoTrans {
					b = randMatrix(rng, k, p)
				} else {
					b = randMatrix(rng, p, k)
				}
				dst := New(n, p)
				MulInto(dst, a, opA, b, opB)
				want := naiveMul(applyOp(a, opA), applyOp(b, opB))
				if d := maxAbsDiff(dst, want); d > 1e-12 {
					t.Fatalf("MulInto(op %v,%v) %dx%dx%d deviates by %g", opA, opB, n, k, p, d)
				}
			}
		}
	}
}

func TestGemmIntoAlphaBetaAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMatrix(rng, 7, 5)
	b := randMatrix(rng, 5, 9)
	c := randMatrix(rng, 7, 9)
	alpha, beta := complex(0.3, -1.1), complex(-0.7, 0.2)
	dst := c.Clone()
	GemmInto(dst, alpha, a, NoTrans, b, NoTrans, beta)
	prod := naiveMul(a, b)
	want := New(7, 9)
	for i := range want.Data {
		want.Data[i] = alpha*prod.Data[i] + beta*c.Data[i]
	}
	if d := maxAbsDiff(dst, want); d > 1e-12 {
		t.Fatalf("GemmInto alpha/beta deviates by %g", d)
	}
}

func TestGemmIntoAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GemmInto accepted an aliased output")
		}
	}()
	a := New(3, 3)
	GemmInto(a, 1, a, NoTrans, a, NoTrans, 0)
}

func TestTraceMulConjMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := propertySizes[rng.Intn(len(propertySizes))]
		m := propertySizes[rng.Intn(len(propertySizes))]
		a := randMatrix(rng, n, m)
		b := randMatrix(rng, n, m)
		got := TraceMulConj(a, b)
		want := complex128(0)
		if n > 0 && m > 0 {
			want = naiveMul(a, naiveConjT(b)).Trace()
		}
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("TraceMulConj %dx%d: got %v want %v", n, m, got, want)
		}
	}
}

func TestTraceMulMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := propertySizes[rng.Intn(len(propertySizes))]
		m := propertySizes[rng.Intn(len(propertySizes))]
		a := randMatrix(rng, n, m)
		b := randMatrix(rng, m, n)
		got := TraceMul(a, b)
		want := complex128(0)
		if n > 0 && m > 0 {
			want = naiveMul(a, b).Trace()
		}
		if cmplx.Abs(got-want) > 1e-12 {
			t.Fatalf("TraceMul %dx%d: got %v want %v", n, m, got, want)
		}
	}
}

func TestDiagMulConjMatchesMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 20; trial++ {
		n := propertySizes[rng.Intn(len(propertySizes))]
		m := propertySizes[rng.Intn(len(propertySizes))]
		x := randMatrix(rng, n, m)
		g := randMatrix(rng, m, m)
		got := DiagMulConj(x, g)
		if len(got) != n {
			t.Fatalf("DiagMulConj returned %d entries for %d rows", len(got), n)
		}
		if n == 0 || m == 0 {
			continue
		}
		full := naiveMul(naiveMul(x, g), naiveConjT(x))
		for i := 0; i < n; i++ {
			if cmplx.Abs(got[i]-full.At(i, i)) > 1e-12 {
				t.Fatalf("DiagMulConj %dx%d entry %d: got %v want %v", n, m, i, got[i], full.At(i, i))
			}
		}
	}
}

// TestMul3IntoBothAssociations pins each association order against the
// naive product: the rectangular shapes force (a·b)·c in one case and
// a·(b·c) in the other, and both must agree with the reference through
// the same GemmInto code path.
func TestMul3IntoBothAssociations(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ws := GetWorkspace()
	defer ws.Release()
	cases := []struct {
		name           string
		ra, ca, cb, cc int
	}{
		// left = ra·ca·cb + ra·cb·cc = 60+24 < right = ca·cb·cc + ra·ca·cc = 120+80
		{"left", 2, 10, 3, 4},
		// left = 4·3·10 + 4·10·2 = 200 > right = 3·10·2 + 4·3·2 = 84
		{"right", 4, 3, 10, 2},
	}
	for _, tc := range cases {
		a := randMatrix(rng, tc.ra, tc.ca)
		b := randMatrix(rng, tc.ca, tc.cb)
		c := randMatrix(rng, tc.cb, tc.cc)
		dst := New(tc.ra, tc.cc)
		Mul3Into(dst, a, NoTrans, b, NoTrans, c, NoTrans, ws)
		want := naiveMul(naiveMul(a, b), c)
		if d := maxAbsDiff(dst, want); d > 1e-12 {
			t.Fatalf("Mul3Into %s association deviates by %g", tc.name, d)
		}
		// The conjugated variant must agree with the materialized adjoints.
		dstC := New(tc.ca, tc.cb)
		Mul3Into(dstC, a, ConjTrans, a, NoTrans, b, NoTrans, ws)
		wantC := naiveMul(naiveMul(naiveConjT(a), a), b)
		if d := maxAbsDiff(dstC, wantC); d > 1e-12 {
			t.Fatalf("Mul3Into %s conjugated deviates by %g", tc.name, d)
		}
	}
}

func TestMul3MatchesMul3Into(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randMatrix(rng, 6, 4)
	b := randMatrix(rng, 4, 9)
	c := randMatrix(rng, 9, 3)
	got := Mul3(a, b, c)
	want := naiveMul(naiveMul(a, b), c)
	if d := maxAbsDiff(got, want); d > 1e-12 {
		t.Fatalf("Mul3 deviates from naive product by %g", d)
	}
}

func TestInverseIntoMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	ws := GetWorkspace()
	defer ws.Release()
	for _, n := range []int{1, 2, 5, 16, 33} {
		a := randMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(n), 0)) // diagonally dominant
		}
		dst := ws.Get(n, n)
		if err := InverseInto(dst, a, ws); err != nil {
			t.Fatalf("InverseInto n=%d: %v", n, err)
		}
		want, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse n=%d: %v", n, err)
		}
		if d := maxAbsDiff(dst, want); d > 1e-12 {
			t.Fatalf("InverseInto n=%d deviates by %g", n, d)
		}
		ws.Put(dst)
	}
}

func TestInverseIntoRejectsBadShapes(t *testing.T) {
	ws := GetWorkspace()
	defer ws.Release()
	if err := InverseInto(New(2, 2), New(2, 3), ws); err == nil {
		t.Fatal("InverseInto accepted a non-square input")
	}
	if err := InverseInto(New(3, 3), New(2, 2), ws); err == nil {
		t.Fatal("InverseInto accepted mismatched output shape")
	}
	a := New(2, 2)
	if err := InverseInto(a, a, ws); err == nil {
		t.Fatal("InverseInto accepted aliased output")
	}
}

func TestWorkspaceReuseAndZeroing(t *testing.T) {
	ws := GetWorkspace()
	defer ws.Release()
	m := ws.Get(4, 4)
	m.Set(1, 2, 3)
	ws.Put(m)
	m2 := ws.Get(4, 4)
	for _, v := range m2.Data {
		if v != 0 {
			t.Fatal("workspace Get returned a dirty buffer")
		}
	}
	ws.Put(m2)
}

func TestWorkspaceDoubleReturnPanics(t *testing.T) {
	ws := GetWorkspace()
	defer ws.Release()
	m := ws.Get(3, 3)
	ws.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	ws.Put(m)
}

func TestWorkspaceForeignReturnPanics(t *testing.T) {
	ws := GetWorkspace()
	defer ws.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Put did not panic")
		}
	}()
	ws.Put(New(3, 3))
}

func TestWorkspaceReleaseReclaimsOutstanding(t *testing.T) {
	ws := GetWorkspace()
	ws.Get(5, 5) // deliberately not Put back
	ws.Release() // must not panic; reclaims the straggler
}
