package linalg

import (
	"errors"
	"math/cmplx"

	"repro/internal/perf"
)

// ErrSingular is returned when a factorization encounters an exactly zero
// pivot, i.e. the matrix is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial (row) pivoting: P·A = L·U.
// L is unit lower triangular and U upper triangular, packed together in lu.
type LU struct {
	lu   *Matrix
	piv  []int // piv[k] is the row swapped with row k at step k
	sign int   // parity of the permutation, for determinants
}

// Factor computes the LU factorization of the square matrix a.
// The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Factor requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	lu := f.lu.Data
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest-modulus entry in column k.
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		f.piv[k] = p
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rowK := lu[k*n : (k+1)*n]
			rowP := lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.sign = -f.sign
		}
		pivInv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] * pivInv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI := lu[i*n+k+1 : (i+1)*n]
			rowK := lu[k*n+k+1 : (k+1)*n]
			for j := range rowK {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	perf.AddFlops(perf.LUFlops(n))
	return f, nil
}

// N returns the order of the factorized matrix.
func (f *LU) N() int { return f.lu.Rows }

// Solve returns X solving A·X = B for a block right-hand side B.
// B is not modified.
func (f *LU) Solve(b *Matrix) *Matrix {
	x := b.Clone()
	f.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites b with the solution of A·X = B.
func (f *LU) SolveInPlace(b *Matrix) {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: RHS row count mismatch in Solve")
	}
	nrhs := b.Cols
	lu := f.lu.Data
	// Apply the row permutation to b.
	for k := 0; k < n; k++ {
		if p := f.piv[k]; p != k {
			rowK := b.Data[k*nrhs : (k+1)*nrhs]
			rowP := b.Data[p*nrhs : (p+1)*nrhs]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
		}
	}
	// Forward substitution with unit lower triangular L.
	for k := 0; k < n; k++ {
		rowK := b.Data[k*nrhs : (k+1)*nrhs]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k]
			if m == 0 {
				continue
			}
			rowI := b.Data[i*nrhs : (i+1)*nrhs]
			for j := range rowK {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	// Back substitution with U.
	for k := n - 1; k >= 0; k-- {
		rowK := b.Data[k*nrhs : (k+1)*nrhs]
		dInv := 1 / lu[k*n+k]
		for j := range rowK {
			rowK[j] *= dInv
		}
		for i := 0; i < k; i++ {
			m := lu[i*n+k]
			if m == 0 {
				continue
			}
			rowI := b.Data[i*nrhs : (i+1)*nrhs]
			for j := range rowK {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	perf.AddFlops(perf.SolveFlops(n, nrhs))
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹ computed from the factorization.
func (f *LU) Inverse() *Matrix {
	return f.Solve(Identity(f.lu.Rows))
}

// Solve is a convenience wrapper: factorize a and solve A·X = B.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse is a convenience wrapper returning a⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
