package linalg

import (
	"errors"
	"math/cmplx"

	"repro/internal/perf"
)

// ErrSingular is returned when a factorization encounters an exactly zero
// pivot, i.e. the matrix is singular to working precision.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial (row) pivoting: P·A = L·U.
// L is unit lower triangular and U upper triangular, packed together in lu.
type LU struct {
	lu   *Matrix
	piv  []int // piv[k] is the row swapped with row k at step k
	sign int   // parity of the permutation, for determinants
}

// Factor computes the LU factorization of the square matrix a.
// The input is not modified.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Factor requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	var err error
	f.sign, err = factorInPlace(f.lu, f.piv)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// FactorInPlace computes the LU factorization of the square matrix a,
// taking ownership of a's storage for the packed factors (a is destroyed).
// It saves the defensive clone of Factor when the caller has already
// materialized a matrix it no longer needs.
func FactorInPlace(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: FactorInPlace requires a square matrix")
	}
	f := &LU{lu: a, piv: make([]int, a.Rows), sign: 1}
	var err error
	f.sign, err = factorInPlace(f.lu, f.piv)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// factorInPlace runs the partial-pivoting LU loop on lu's storage,
// recording row swaps in piv (len n). It returns the permutation sign.
// This is the single factorization code path shared by Factor and the
// workspace variants, so flop accounting lives in one place.
func factorInPlace(m *Matrix, piv []int) (sign int, err error) {
	n := m.Rows
	lu := m.Data
	sign = 1
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest-modulus entry in column k.
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		piv[k] = p
		if maxAbs == 0 {
			return sign, ErrSingular
		}
		if p != k {
			rowK := lu[k*n : (k+1)*n]
			rowP := lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			sign = -sign
		}
		pivInv := 1 / lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] * pivInv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			rowI := lu[i*n+k+1 : (i+1)*n]
			rowK := lu[k*n+k+1 : (k+1)*n]
			for j := range rowK {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	perf.AddFlops(perf.LUFlops(n))
	return sign, nil
}

// N returns the order of the factorized matrix.
func (f *LU) N() int { return f.lu.Rows }

// Solve returns X solving A·X = B for a block right-hand side B.
// B is not modified.
//
// Deprecated: Solve clones B on every call. Hot paths use SolveInto (or
// SolveInPlace) on workspace storage; new uses outside tests are flagged
// by `make check`.
func (f *LU) Solve(b *Matrix) *Matrix {
	x := b.Clone()
	f.SolveInPlace(x)
	return x
}

// SolveInPlace overwrites b with the solution of A·X = B.
func (f *LU) SolveInPlace(b *Matrix) {
	luSolveInPlace(f.lu, f.piv, b)
}

// SolveInto writes the solution of A·X = B into dst without touching b.
// dst and b must have the same shape; dst may alias b.
func (f *LU) SolveInto(dst, b *Matrix) {
	if dst != b {
		dst.CopyFrom(b)
	}
	luSolveInPlace(f.lu, f.piv, dst)
}

// luSolveInPlace applies P, L⁻¹, then U⁻¹ of a packed factorization to a
// block right-hand side.
func luSolveInPlace(f *Matrix, piv []int, b *Matrix) {
	n := f.Rows
	if b.Rows != n {
		panic("linalg: RHS row count mismatch in Solve")
	}
	nrhs := b.Cols
	lu := f.Data
	// Apply the row permutation to b.
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			rowK := b.Data[k*nrhs : (k+1)*nrhs]
			rowP := b.Data[p*nrhs : (p+1)*nrhs]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
		}
	}
	// Forward substitution with unit lower triangular L, i-outer so the
	// multipliers of row i are read contiguously, unrolled two-deep over k
	// so each target row is updated half as often.
	for i := 1; i < n; i++ {
		luRow := lu[i*n : i*n+i]
		rowI := b.Data[i*nrhs : (i+1)*nrhs]
		k := 0
		for ; k+1 < i; k += 2 {
			m0 := luRow[k]
			m1 := luRow[k+1]
			if m0 == 0 && m1 == 0 {
				continue
			}
			r0 := b.Data[k*nrhs : (k+1)*nrhs]
			r1 := b.Data[(k+1)*nrhs : (k+2)*nrhs]
			r0 = r0[:len(rowI)]
			r1 = r1[:len(rowI)]
			for j := range rowI {
				rowI[j] -= m0*r0[j] + m1*r1[j]
			}
		}
		for ; k < i; k++ {
			m := luRow[k]
			if m == 0 {
				continue
			}
			rowK := b.Data[k*nrhs : (k+1)*nrhs]
			rowK = rowK[:len(rowI)]
			for j := range rowI {
				rowI[j] -= m * rowK[j]
			}
		}
	}
	// Back substitution with U, same access pattern from the bottom up.
	for i := n - 1; i >= 0; i-- {
		luRow := lu[i*n : (i+1)*n]
		rowI := b.Data[i*nrhs : (i+1)*nrhs]
		k := i + 1
		for ; k+1 < n; k += 2 {
			m0 := luRow[k]
			m1 := luRow[k+1]
			if m0 == 0 && m1 == 0 {
				continue
			}
			r0 := b.Data[k*nrhs : (k+1)*nrhs]
			r1 := b.Data[(k+1)*nrhs : (k+2)*nrhs]
			r0 = r0[:len(rowI)]
			r1 = r1[:len(rowI)]
			for j := range rowI {
				rowI[j] -= m0*r0[j] + m1*r1[j]
			}
		}
		for ; k < n; k++ {
			m := luRow[k]
			if m == 0 {
				continue
			}
			rowK := b.Data[k*nrhs : (k+1)*nrhs]
			rowK = rowK[:len(rowI)]
			for j := range rowI {
				rowI[j] -= m * rowK[j]
			}
		}
		dInv := 1 / luRow[i]
		for j := range rowI {
			rowI[j] *= dInv
		}
	}
	perf.AddFlops(perf.SolveFlops(n, nrhs))
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() complex128 {
	d := complex(float64(f.sign), 0)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Inverse returns A⁻¹ computed from the factorization.
//
// Deprecated: Inverse materializes an identity and a fresh result per
// call. Hot paths use InverseInto with a per-solve workspace; new uses
// outside tests are flagged by `make check`.
func (f *LU) Inverse() *Matrix {
	x := Identity(f.lu.Rows)
	f.SolveInPlace(x)
	return x
}

// InverseInto writes a⁻¹ into dst, factoring into workspace scratch so
// the whole inversion allocates nothing. a is not modified; dst must be
// square like a and must not alias it.
func InverseInto(dst, a *Matrix, ws *Workspace) error {
	if a.Rows != a.Cols {
		return errors.New("linalg: InverseInto requires a square matrix")
	}
	if dst == a {
		return errors.New("linalg: InverseInto output aliases its input")
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		return errors.New("linalg: output dimension mismatch in InverseInto")
	}
	n := a.Rows
	lu := ws.Get(n, n)
	defer ws.Put(lu)
	lu.CopyFrom(a)
	piv := ws.GetInts(n)
	defer ws.PutInts(piv)
	if _, err := factorInPlace(lu, piv); err != nil {
		return err
	}
	dst.Zero()
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 1
	}
	luSolveInPlace(lu, piv, dst)
	return nil
}

// Solve is a convenience wrapper: factorize a and solve A·X = B.
func Solve(a, b *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := New(b.Rows, b.Cols)
	f.SolveInto(x, b)
	return x, nil
}

// Inverse is a convenience wrapper returning a⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	x := Identity(f.lu.Rows)
	f.SolveInPlace(x)
	return x, nil
}
