package linalg

// Panel is a batch of same-shape matrices packed back to back in one
// contiguous backing slice — the storage unit of the batched solve path.
// Packing the N energy points' homologous blocks (the layer-i LU factors,
// the layer-i recursion blocks, …) into one allocation keeps the whole
// batch of a block-column resident while the batched kernels sweep over
// it, and lets a single free-list entry recycle W matrices at once.
//
// Blocks are exposed as ordinary *Matrix views through Block, so every
// per-element kernel (GemmInto, factorInPlace, luSolveInPlace, …) runs
// unchanged on panel storage — which is what makes the batched path
// bitwise-identical to the looped one by construction.
type Panel struct {
	width, rows, cols int
	data              []complex128
	// mats backs the Block views; views[i] = &mats[i] stays stable between
	// checkouts so repeated Block calls return the same pointer.
	mats  []Matrix
	views []*Matrix
}

// Width returns the number of blocks in the panel.
func (p *Panel) Width() int { return p.width }

// Rows returns the per-block row count.
func (p *Panel) Rows() int { return p.rows }

// Cols returns the per-block column count.
func (p *Panel) Cols() int { return p.cols }

// Block returns the i-th block as a matrix view into the panel's backing
// storage. The view is owned by the panel: it must not be returned to a
// Workspace with Put, and it dies with the panel's checkout.
func (p *Panel) Block(i int) *Matrix {
	if i < 0 || i >= p.width {
		panic("linalg: Panel.Block index out of range")
	}
	return p.views[i]
}

// Blocks returns all block views in order. The slice is owned by the
// panel; callers must not append to it or return its entries to a
// Workspace.
func (p *Panel) Blocks() []*Matrix { return p.views[:p.width] }

// Zero clears every block of the panel (one contiguous memclr).
func (p *Panel) Zero() {
	for i := range p.data {
		p.data[i] = 0
	}
}

// reshape points the panel and its block views at a width×rows×cols
// geometry over its current backing slice (which must have capacity).
func (p *Panel) reshape(width, rows, cols int) {
	n := rows * cols
	p.width, p.rows, p.cols = width, rows, cols
	p.data = p.data[:width*n]
	if cap(p.mats) < width {
		mats := make([]Matrix, width)
		views := make([]*Matrix, width)
		copy(mats, p.mats)
		p.mats, p.views = mats, views
		for i := range mats {
			views[i] = &mats[i]
		}
	}
	p.mats = p.mats[:width]
	p.views = p.views[:width]
	for i := 0; i < width; i++ {
		p.mats[i] = Matrix{Rows: rows, Cols: cols, Data: p.data[i*n : (i+1)*n : (i+1)*n]}
		p.views[i] = &p.mats[i]
	}
}

// GetPanel checks a width×(rows×cols) panel out of the workspace.
//
// Unlike Get, the returned blocks are NOT zeroed: panels hold blocks the
// solvers fully overwrite before reading (packed LU factors, d̃⁻¹·U
// couplings, RGF recursion blocks), so the memclr of Get would be pure
// overhead on the hot path. Callers that accumulate into panel blocks
// (AddScaled-style updates) must call Zero first. Like Get, the panel is
// scratch: it must not escape the solve, and PutPanel panics on a double
// or foreign return.
func (w *Workspace) GetPanel(width, rows, cols int) *Panel {
	if width < 0 || rows < 0 || cols < 0 {
		panic("linalg: negative panel dimension in Workspace.GetPanel")
	}
	n := width * rows * cols
	class := capClass(n)
	var p *Panel
	if list := w.panelFree[class]; len(list) > 0 {
		p = list[len(list)-1]
		w.panelFree[class] = list[:len(list)-1]
	} else {
		p = &Panel{data: make([]complex128, 0, class)}
	}
	p.reshape(width, rows, cols)
	w.panelOut[p] = class
	return p
}

// PutPanel returns a panel previously obtained from GetPanel. It panics
// on a double return and on a panel this workspace did not hand out.
func (w *Workspace) PutPanel(p *Panel) {
	class, ok := w.panelOut[p]
	if !ok {
		panic("linalg: Workspace.PutPanel of a panel it did not hand out (double or foreign return)")
	}
	delete(w.panelOut, p)
	w.panelFree[class] = append(w.panelFree[class], p)
}
