// AVX microkernels for the batched solve backend. Every lane computes
// the exact scalar expression tree of the portable loops in
// veckernels.go: a complex product m*x is one VMULPD against the
// broadcast real part, one VMULPD of the lane-swapped input against the
// broadcast imaginary part, and one VADDSUBPD — the same three
// correctly-rounded operations (mr*xr - mi*xi, mr*xi + mi*xr) the Go
// compiler emits for a scalar complex128 multiply. No FMA contraction
// anywhere, so results are bitwise-identical to the scalar kernels.
//
// All kernels require n even and >= 2 (two complex128 per ymm register);
// the Go wrappers peel the odd tail. The main loops are unrolled to two
// ymm registers (four complex128) per iteration — the solver row lengths
// sit around 14-64 elements, where loop overhead is a real fraction of
// the work — with a single two-element step for the remainder.

#include "textflag.h"

// func cpuHasAVX() bool
// CPUID leaf 1: OSXSAVE (ECX bit 27) and AVX (ECX bit 28), then XGETBV
// XCR0 bits 1-2 for OS-enabled xmm+ymm state.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, AX
	ANDL $(1<<27 | 1<<28), AX
	CMPL AX, $(1<<27 | 1<<28)
	JNE  novec
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  novec
	MOVB $1, ret+0(FP)
	RET

novec:
	MOVB $0, ret+0(FP)
	RET

// func avxAxpyAdd(y, x *complex128, n int, m complex128)
// y[0:n] += m*x[0:n]
TEXT ·avxAxpyAdd(SB), NOSPLIT, $0-40
	MOVQ         y+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD m_real+24(FP), Y0
	VBROADCASTSD m_imag+32(FP), Y1

add4:
	CMPQ      CX, $4
	JL        add2
	VMOVUPD   (SI), Y2
	VMOVUPD   32(SI), Y5
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y5, Y6
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y5, Y5
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y6, Y6
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y6, Y5, Y5
	VMOVUPD   (DI), Y4
	VMOVUPD   32(DI), Y7
	VADDPD    Y2, Y4, Y4
	VADDPD    Y5, Y7, Y7
	VMOVUPD   Y4, (DI)
	VMOVUPD   Y7, 32(DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $4, CX
	JMP       add4

add2:
	TESTQ     CX, CX
	JLE       adddone
	VMOVUPD   (SI), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (DI), Y4
	VADDPD    Y2, Y4, Y4
	VMOVUPD   Y4, (DI)

adddone:
	VZEROUPPER
	RET

// func avxAxpySub(y, x *complex128, n int, m complex128)
// y[0:n] -= m*x[0:n]
TEXT ·avxAxpySub(SB), NOSPLIT, $0-40
	MOVQ         y+0(FP), DI
	MOVQ         x+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD m_real+24(FP), Y0
	VBROADCASTSD m_imag+32(FP), Y1

sub4:
	CMPQ      CX, $4
	JL        sub2
	VMOVUPD   (SI), Y2
	VMOVUPD   32(SI), Y5
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y5, Y6
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y5, Y5
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y6, Y6
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y6, Y5, Y5
	VMOVUPD   (DI), Y4
	VMOVUPD   32(DI), Y7
	VSUBPD    Y2, Y4, Y4
	VSUBPD    Y5, Y7, Y7
	VMOVUPD   Y4, (DI)
	VMOVUPD   Y7, 32(DI)
	ADDQ      $64, SI
	ADDQ      $64, DI
	SUBQ      $4, CX
	JMP       sub4

sub2:
	TESTQ     CX, CX
	JLE       subdone
	VMOVUPD   (SI), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (DI), Y4
	VSUBPD    Y2, Y4, Y4
	VMOVUPD   Y4, (DI)

subdone:
	VZEROUPPER
	RET

// func avxAxpy2Add(y, x0, x1 *complex128, n int, m0, m1 complex128)
// y[0:n] += m0*x0[0:n] + m1*x1[0:n]
TEXT ·avxAxpy2Add(SB), NOSPLIT, $0-64
	MOVQ         y+0(FP), DI
	MOVQ         x0+8(FP), SI
	MOVQ         x1+16(FP), R8
	MOVQ         n+24(FP), CX
	VBROADCASTSD m0_real+32(FP), Y0
	VBROADCASTSD m0_imag+40(FP), Y1
	VBROADCASTSD m1_real+48(FP), Y2
	VBROADCASTSD m1_imag+56(FP), Y3

add24:
	CMPQ      CX, $4
	JL        add22
	VMOVUPD   (SI), Y4
	VMOVUPD   32(SI), Y9
	VPERMILPD $0x5, Y4, Y5
	VPERMILPD $0x5, Y9, Y10
	VMULPD    Y0, Y4, Y4
	VMULPD    Y0, Y9, Y9
	VMULPD    Y1, Y5, Y5
	VMULPD    Y1, Y10, Y10
	VADDSUBPD Y5, Y4, Y4
	VADDSUBPD Y10, Y9, Y9
	VMOVUPD   (R8), Y6
	VMOVUPD   32(R8), Y11
	VPERMILPD $0x5, Y6, Y7
	VPERMILPD $0x5, Y11, Y12
	VMULPD    Y2, Y6, Y6
	VMULPD    Y2, Y11, Y11
	VMULPD    Y3, Y7, Y7
	VMULPD    Y3, Y12, Y12
	VADDSUBPD Y7, Y6, Y6
	VADDSUBPD Y12, Y11, Y11
	VADDPD    Y6, Y4, Y4
	VADDPD    Y11, Y9, Y9
	VMOVUPD   (DI), Y8
	VMOVUPD   32(DI), Y13
	VADDPD    Y4, Y8, Y8
	VADDPD    Y9, Y13, Y13
	VMOVUPD   Y8, (DI)
	VMOVUPD   Y13, 32(DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, DI
	SUBQ      $4, CX
	JMP       add24

add22:
	TESTQ     CX, CX
	JLE       add2done
	VMOVUPD   (SI), Y4
	VPERMILPD $0x5, Y4, Y5
	VMULPD    Y0, Y4, Y4
	VMULPD    Y1, Y5, Y5
	VADDSUBPD Y5, Y4, Y4
	VMOVUPD   (R8), Y6
	VPERMILPD $0x5, Y6, Y7
	VMULPD    Y2, Y6, Y6
	VMULPD    Y3, Y7, Y7
	VADDSUBPD Y7, Y6, Y6
	VADDPD    Y6, Y4, Y4
	VMOVUPD   (DI), Y8
	VADDPD    Y4, Y8, Y8
	VMOVUPD   Y8, (DI)

add2done:
	VZEROUPPER
	RET

// func avxAxpy2Sub(y, x0, x1 *complex128, n int, m0, m1 complex128)
// y[0:n] -= m0*x0[0:n] + m1*x1[0:n]
TEXT ·avxAxpy2Sub(SB), NOSPLIT, $0-64
	MOVQ         y+0(FP), DI
	MOVQ         x0+8(FP), SI
	MOVQ         x1+16(FP), R8
	MOVQ         n+24(FP), CX
	VBROADCASTSD m0_real+32(FP), Y0
	VBROADCASTSD m0_imag+40(FP), Y1
	VBROADCASTSD m1_real+48(FP), Y2
	VBROADCASTSD m1_imag+56(FP), Y3

sub24:
	CMPQ      CX, $4
	JL        sub22
	VMOVUPD   (SI), Y4
	VMOVUPD   32(SI), Y9
	VPERMILPD $0x5, Y4, Y5
	VPERMILPD $0x5, Y9, Y10
	VMULPD    Y0, Y4, Y4
	VMULPD    Y0, Y9, Y9
	VMULPD    Y1, Y5, Y5
	VMULPD    Y1, Y10, Y10
	VADDSUBPD Y5, Y4, Y4
	VADDSUBPD Y10, Y9, Y9
	VMOVUPD   (R8), Y6
	VMOVUPD   32(R8), Y11
	VPERMILPD $0x5, Y6, Y7
	VPERMILPD $0x5, Y11, Y12
	VMULPD    Y2, Y6, Y6
	VMULPD    Y2, Y11, Y11
	VMULPD    Y3, Y7, Y7
	VMULPD    Y3, Y12, Y12
	VADDSUBPD Y7, Y6, Y6
	VADDSUBPD Y12, Y11, Y11
	VADDPD    Y6, Y4, Y4
	VADDPD    Y11, Y9, Y9
	VMOVUPD   (DI), Y8
	VMOVUPD   32(DI), Y13
	VSUBPD    Y4, Y8, Y8
	VSUBPD    Y9, Y13, Y13
	VMOVUPD   Y8, (DI)
	VMOVUPD   Y13, 32(DI)
	ADDQ      $64, SI
	ADDQ      $64, R8
	ADDQ      $64, DI
	SUBQ      $4, CX
	JMP       sub24

sub22:
	TESTQ     CX, CX
	JLE       sub2done
	VMOVUPD   (SI), Y4
	VPERMILPD $0x5, Y4, Y5
	VMULPD    Y0, Y4, Y4
	VMULPD    Y1, Y5, Y5
	VADDSUBPD Y5, Y4, Y4
	VMOVUPD   (R8), Y6
	VPERMILPD $0x5, Y6, Y7
	VMULPD    Y2, Y6, Y6
	VMULPD    Y3, Y7, Y7
	VADDSUBPD Y7, Y6, Y6
	VADDPD    Y6, Y4, Y4
	VMOVUPD   (DI), Y8
	VSUBPD    Y4, Y8, Y8
	VMOVUPD   Y8, (DI)

sub2done:
	VZEROUPPER
	RET

// func avxScale(y *complex128, n int, d complex128)
// y[0:n] *= d
TEXT ·avxScale(SB), NOSPLIT, $0-32
	MOVQ         y+0(FP), DI
	MOVQ         n+8(FP), CX
	VBROADCASTSD d_real+16(FP), Y0
	VBROADCASTSD d_imag+24(FP), Y1

scale4:
	CMPQ      CX, $4
	JL        scale2
	VMOVUPD   (DI), Y2
	VMOVUPD   32(DI), Y4
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y4, Y5
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y4, Y4
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y5, Y5
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y5, Y4, Y4
	VMOVUPD   Y2, (DI)
	VMOVUPD   Y4, 32(DI)
	ADDQ      $64, DI
	SUBQ      $4, CX
	JMP       scale4

scale2:
	TESTQ     CX, CX
	JLE       scaledone
	VMOVUPD   (DI), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   Y2, (DI)

scaledone:
	VZEROUPPER
	RET

// negZero is the sign-bit mask for IEEE negation by XOR.
DATA negZero<>+0(SB)/8, $0x8000000000000000
GLOBL negZero<>(SB), RODATA, $8

// func avxNeg(dst, src *complex128, n int)
// dst[0:n] = -src[0:n] (exact IEEE sign flip, like the scalar unary minus)
TEXT ·avxNeg(SB), NOSPLIT, $0-24
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n+16(FP), CX
	VBROADCASTSD negZero<>(SB), Y0

neg4:
	CMPQ    CX, $4
	JL      neg2
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y2
	VXORPD  Y0, Y1, Y1
	VXORPD  Y0, Y2, Y2
	VMOVUPD Y1, (DI)
	VMOVUPD Y2, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $4, CX
	JMP     neg4

neg2:
	TESTQ   CX, CX
	JLE     negdone
	VMOVUPD (SI), Y1
	VXORPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)

negdone:
	VZEROUPPER
	RET

// func avxSub(dst, a, b *complex128, n int)
// dst[0:n] = a[0:n] - b[0:n]
TEXT ·avxSub(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), R8
	MOVQ n+24(FP), CX

vsub4:
	CMPQ    CX, $4
	JL      vsub2
	VMOVUPD (SI), Y1
	VMOVUPD 32(SI), Y3
	VMOVUPD (R8), Y2
	VMOVUPD 32(R8), Y4
	VSUBPD  Y2, Y1, Y1
	VSUBPD  Y4, Y3, Y3
	VMOVUPD Y1, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, R8
	ADDQ    $64, DI
	SUBQ    $4, CX
	JMP     vsub4

vsub2:
	TESTQ   CX, CX
	JLE     vsubdone
	VMOVUPD (SI), Y1
	VMOVUPD (R8), Y2
	VSUBPD  Y2, Y1, Y1
	VMOVUPD Y1, (DI)

vsubdone:
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Fused solver-loop kernels. Each call runs a whole reference inner loop
// — zero checks on unscaled multipliers, exact complex scaling, row
// updates, odd tails — so the per-call overhead is amortized over
// O(rows·width) work. A scalar complex product a·b is computed with the
// exact Go operand order: s1 = [ar·br, ar·bi], s2 = [ai·bi, ai·br],
// ADDSUBPD — identical trees, identical bits.
// ---------------------------------------------------------------------

// func avxLuRowUpdate(y, rows, ms *complex128, cnt, nrhs int)
// y[0:nrhs] -= Σ_{k<cnt} ms[k]·rows[k·nrhs : k·nrhs+nrhs], k paired
// two-deep with the reference zero skips (pair skipped iff both ms are
// zero; a lone trailing k skipped iff its m is zero). Requires
// nrhs >= 2; handles odd nrhs via an xmm tail per update.
TEXT ·avxLuRowUpdate(SB), NOSPLIT, $0-40
	MOVQ y+0(FP), DI
	MOVQ rows+8(FP), SI
	MOVQ ms+16(FP), BX
	MOVQ cnt+24(FP), CX
	MOVQ nrhs+32(FP), R10
	MOVQ R10, R11
	ANDQ $-2, R11 // wEven
	MOVQ R10, R9
	SHLQ $4, R9   // row stride in bytes
	MOVQ R11, R8
	SHLQ $4, R8   // tail byte offset

lupair:
	CMPQ      CX, $2
	JL        lusingle
	VMOVUPD   (BX), Y5
	VXORPD    Y4, Y4, Y4
	VCMPPD    $0, Y4, Y5, Y4
	VMOVMSKPD Y4, AX
	CMPL      AX, $0xF
	JE        lupskip

	// broadcast m0, m1 straight from memory
	VBROADCASTSD (BX), Y0
	VBROADCASTSD 8(BX), Y1
	VBROADCASTSD 16(BX), Y2
	VBROADCASTSD 24(BX), Y3
	MOVQ         DI, R12
	MOVQ         SI, R13
	LEAQ         (SI)(R9*1), R14
	MOVQ         R11, DX

lup4:
	CMPQ      DX, $4
	JL        lup2
	VMOVUPD   (R13), Y4
	VMOVUPD   32(R13), Y9
	VPERMILPD $0x5, Y4, Y5
	VPERMILPD $0x5, Y9, Y10
	VMULPD    Y0, Y4, Y4
	VMULPD    Y0, Y9, Y9
	VMULPD    Y1, Y5, Y5
	VMULPD    Y1, Y10, Y10
	VADDSUBPD Y5, Y4, Y4
	VADDSUBPD Y10, Y9, Y9
	VMOVUPD   (R14), Y6
	VMOVUPD   32(R14), Y11
	VPERMILPD $0x5, Y6, Y7
	VPERMILPD $0x5, Y11, Y12
	VMULPD    Y2, Y6, Y6
	VMULPD    Y2, Y11, Y11
	VMULPD    Y3, Y7, Y7
	VMULPD    Y3, Y12, Y12
	VADDSUBPD Y7, Y6, Y6
	VADDSUBPD Y12, Y11, Y11
	VADDPD    Y6, Y4, Y4
	VADDPD    Y11, Y9, Y9
	VMOVUPD   (R12), Y8
	VMOVUPD   32(R12), Y13
	VSUBPD    Y4, Y8, Y8
	VSUBPD    Y9, Y13, Y13
	VMOVUPD   Y8, (R12)
	VMOVUPD   Y13, 32(R12)
	ADDQ      $64, R13
	ADDQ      $64, R14
	ADDQ      $64, R12
	SUBQ      $4, DX
	JMP       lup4

lup2:
	TESTQ     DX, DX
	JLE       luptail
	VMOVUPD   (R13), Y4
	VPERMILPD $0x5, Y4, Y5
	VMULPD    Y0, Y4, Y4
	VMULPD    Y1, Y5, Y5
	VADDSUBPD Y5, Y4, Y4
	VMOVUPD   (R14), Y6
	VPERMILPD $0x5, Y6, Y7
	VMULPD    Y2, Y6, Y6
	VMULPD    Y3, Y7, Y7
	VADDSUBPD Y7, Y6, Y6
	VADDPD    Y6, Y4, Y4
	VMOVUPD   (R12), Y8
	VSUBPD    Y4, Y8, Y8
	VMOVUPD   Y8, (R12)

luptail:
	CMPQ      R11, R10
	JE        lupskip
	// y[t] -= m0·r0[t] + m1·r1[t], exact scalar trees
	VMOVUPD   (SI)(R8*1), X4
	VSHUFPD   $1, X4, X4, X5
	VMOVDDUP  (BX), X6
	VMOVDDUP  8(BX), X7
	VMULPD    X6, X4, X4
	VMULPD    X7, X5, X5
	VADDSUBPD X5, X4, X4
	LEAQ      (SI)(R9*1), DX
	VMOVUPD   (DX)(R8*1), X9
	VSHUFPD   $1, X9, X9, X10
	VMOVDDUP  16(BX), X6
	VMOVDDUP  24(BX), X7
	VMULPD    X6, X9, X9
	VMULPD    X7, X10, X10
	VADDSUBPD X10, X9, X9
	VADDPD    X9, X4, X4
	VMOVUPD   (DI)(R8*1), X11
	VSUBPD    X4, X11, X11
	VMOVUPD   X11, (DI)(R8*1)

lupskip:
	LEAQ (SI)(R9*2), SI
	ADDQ $32, BX
	SUBQ $2, CX
	JMP  lupair

lusingle:
	TESTQ     CX, CX
	JLE       ludone
	VMOVUPD   (BX), X5
	VXORPD    X4, X4, X4
	VCMPPD    $0, X4, X5, X4
	VMOVMSKPD X4, AX
	CMPL      AX, $3
	JE        ludone
	VBROADCASTSD (BX), Y0
	VBROADCASTSD 8(BX), Y1
	MOVQ         DI, R12
	MOVQ         SI, R13
	MOVQ         R11, DX

lus4:
	CMPQ      DX, $4
	JL        lus2
	VMOVUPD   (R13), Y2
	VMOVUPD   32(R13), Y5
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y5, Y6
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y5, Y5
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y6, Y6
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y6, Y5, Y5
	VMOVUPD   (R12), Y4
	VMOVUPD   32(R12), Y7
	VSUBPD    Y2, Y4, Y4
	VSUBPD    Y5, Y7, Y7
	VMOVUPD   Y4, (R12)
	VMOVUPD   Y7, 32(R12)
	ADDQ      $64, R13
	ADDQ      $64, R12
	SUBQ      $4, DX
	JMP       lus4

lus2:
	TESTQ     DX, DX
	JLE       lustail
	VMOVUPD   (R13), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (R12), Y4
	VSUBPD    Y2, Y4, Y4
	VMOVUPD   Y4, (R12)

lustail:
	CMPQ      R11, R10
	JE        ludone
	VMOVUPD   (SI)(R8*1), X4
	VSHUFPD   $1, X4, X4, X5
	VMOVDDUP  (BX), X6
	VMOVDDUP  8(BX), X7
	VMULPD    X6, X4, X4
	VMULPD    X7, X5, X5
	VADDSUBPD X5, X4, X4
	VMOVUPD   (DI)(R8*1), X11
	VSUBPD    X4, X11, X11
	VMOVUPD   X11, (DI)(R8*1)

ludone:
	VZEROUPPER
	RET

// func avxFactorColUpdate(col, rowK *complex128, rows, stride int, pivInv complex128)
// For each of rows trailing rows: m = col[0]·pivInv (exact Go tree),
// stored back; if m != 0, the trailing row segment of length rows
// starting one element past the column slot gets -= m·rowK. col
// advances by stride elements per row. Requires rows >= 2.
TEXT ·avxFactorColUpdate(SB), NOSPLIT, $0-48
	MOVQ     col+0(FP), DI
	MOVQ     rowK+8(FP), SI
	MOVQ     rows+16(FP), CX
	MOVQ     stride+24(FP), R9
	SHLQ     $4, R9
	VMOVSD   pivInv_real+32(FP), X14
	VMOVHPD  pivInv_imag+40(FP), X14, X14
	VSHUFPD  $1, X14, X14, X15
	MOVQ     CX, R10 // row length rl == rows
	MOVQ     R10, R11
	ANDQ     $-2, R11 // rlEven
	MOVQ     R11, R8
	SHLQ     $4, R8   // tail byte offset

fcrow:
	TESTQ     CX, CX
	JLE       fcdone
	// m = lu_val·pivInv: s1 = [ar·br, ar·bi], s2 = [ai·bi, ai·br]
	VMOVUPD   (DI), X5
	VMOVDDUP  X5, X8
	VSHUFPD   $3, X5, X5, X9
	VMULPD    X14, X8, X8
	VMULPD    X15, X9, X9
	VADDSUBPD X9, X8, X8
	VMOVUPD   X8, (DI)
	VXORPD    X4, X4, X4
	VCMPPD    $0, X4, X8, X4
	VMOVMSKPD X4, AX
	CMPL      AX, $3
	JE        fcskip

	// broadcast m to ymm lanes
	VMOVDDUP    X8, X0
	VINSERTF128 $1, X0, Y0, Y0
	VSHUFPD     $3, X8, X8, X1
	VINSERTF128 $1, X1, Y1, Y1
	LEAQ        16(DI), R12
	MOVQ        SI, R13
	MOVQ        R11, DX

fc4:
	CMPQ      DX, $4
	JL        fc2
	VMOVUPD   (R13), Y2
	VMOVUPD   32(R13), Y5
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y5, Y6
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y5, Y5
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y6, Y6
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y6, Y5, Y5
	VMOVUPD   (R12), Y4
	VMOVUPD   32(R12), Y7
	VSUBPD    Y2, Y4, Y4
	VSUBPD    Y5, Y7, Y7
	VMOVUPD   Y4, (R12)
	VMOVUPD   Y7, 32(R12)
	ADDQ      $64, R13
	ADDQ      $64, R12
	SUBQ      $4, DX
	JMP       fc4

fc2:
	TESTQ     DX, DX
	JLE       fctail
	VMOVUPD   (R13), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (R12), Y4
	VSUBPD    Y2, Y4, Y4
	VMOVUPD   Y4, (R12)

fctail:
	CMPQ      R11, R10
	JE        fcskip
	// rowI[t] -= m·rowK[t]
	VMOVUPD   (SI)(R8*1), X4
	VSHUFPD   $1, X4, X4, X5
	VMOVDDUP  X8, X6
	VSHUFPD   $3, X8, X8, X7
	VMULPD    X6, X4, X4
	VMULPD    X7, X5, X5
	VADDSUBPD X5, X4, X4
	LEAQ      16(DI), DX
	VMOVUPD   (DX)(R8*1), X11
	VSUBPD    X4, X11, X11
	VMOVUPD   X11, (DX)(R8*1)

fcskip:
	ADDQ R9, DI
	DECQ CX
	JMP  fcrow

fcdone:
	VZEROUPPER
	RET

// func avxGemmTileNN(dst, aRow, b *complex128, kLen, p, w int, alpha complex128)
// dst[0:w] += Σ_{l<kLen} (alpha·aRow[l])·b[l·p : l·p+w], l paired
// two-deep with the reference kernel's skips on the UNSCALED pair.
// Requires w >= 2; handles odd w via an xmm tail per update.
TEXT ·avxGemmTileNN(SB), NOSPLIT, $0-64
	MOVQ    dst+0(FP), DI
	MOVQ    aRow+8(FP), SI
	MOVQ    b+16(FP), R8
	MOVQ    kLen+24(FP), CX
	MOVQ    p+32(FP), R9
	SHLQ    $4, R9
	MOVQ    w+40(FP), R10
	MOVQ    R10, R11
	ANDQ    $-2, R11 // wEven
	MOVQ    R11, BX
	SHLQ    $4, BX   // tail byte offset
	VMOVSD  alpha_real+48(FP), X14
	VMOVHPD alpha_imag+56(FP), X14, X14
	VSHUFPD $1, X14, X14, X15

gtpair:
	CMPQ      CX, $2
	JL        gtsingle
	VMOVUPD   (SI), Y5
	VXORPD    Y4, Y4, Y4
	VCMPPD    $0, Y4, Y5, Y4
	VMOVMSKPD Y4, AX
	CMPL      AX, $0xF
	JE        gtpskip

	// av0 *= alpha; av1 *= alpha (exact Go trees)
	VMOVUPD   (SI), X5
	VMOVUPD   16(SI), X6
	VMOVDDUP  X5, X8
	VSHUFPD      $3, X5, X5, X9
	VMULPD       X14, X8, X8
	VMULPD       X15, X9, X9
	VADDSUBPD    X9, X8, X8    // scaled av0
	VMOVDDUP     X6, X10
	VSHUFPD      $3, X6, X6, X11
	VMULPD       X14, X10, X10
	VMULPD       X15, X11, X11
	VADDSUBPD    X11, X10, X10 // scaled av1
	VMOVDDUP     X8, X0
	VINSERTF128  $1, X0, Y0, Y0
	VSHUFPD      $3, X8, X8, X1
	VINSERTF128  $1, X1, Y1, Y1
	VMOVDDUP     X10, X2
	VINSERTF128  $1, X2, Y2, Y2
	VSHUFPD      $3, X10, X10, X3
	VINSERTF128  $1, X3, Y3, Y3
	MOVQ         DI, R12
	MOVQ         R8, R13
	LEAQ         (R8)(R9*1), R14
	MOVQ         R11, DX

gt4:
	CMPQ      DX, $4
	JL        gt2
	VMOVUPD   (R13), Y4
	VMOVUPD   32(R13), Y9
	VPERMILPD $0x5, Y4, Y5
	VPERMILPD $0x5, Y9, Y10
	VMULPD    Y0, Y4, Y4
	VMULPD    Y0, Y9, Y9
	VMULPD    Y1, Y5, Y5
	VMULPD    Y1, Y10, Y10
	VADDSUBPD Y5, Y4, Y4
	VADDSUBPD Y10, Y9, Y9
	VMOVUPD   (R14), Y6
	VMOVUPD   32(R14), Y11
	VPERMILPD $0x5, Y6, Y7
	VPERMILPD $0x5, Y11, Y12
	VMULPD    Y2, Y6, Y6
	VMULPD    Y2, Y11, Y11
	VMULPD    Y3, Y7, Y7
	VMULPD    Y3, Y12, Y12
	VADDSUBPD Y7, Y6, Y6
	VADDSUBPD Y12, Y11, Y11
	VADDPD    Y6, Y4, Y4
	VADDPD    Y11, Y9, Y9
	VMOVUPD   (R12), Y8
	VMOVUPD   32(R12), Y13
	VADDPD    Y4, Y8, Y8
	VADDPD    Y9, Y13, Y13
	VMOVUPD   Y8, (R12)
	VMOVUPD   Y13, 32(R12)
	ADDQ      $64, R13
	ADDQ      $64, R14
	ADDQ      $64, R12
	SUBQ      $4, DX
	JMP       gt4

gt2:
	TESTQ     DX, DX
	JLE       gttail
	VMOVUPD   (R13), Y4
	VPERMILPD $0x5, Y4, Y5
	VMULPD    Y0, Y4, Y4
	VMULPD    Y1, Y5, Y5
	VADDSUBPD Y5, Y4, Y4
	VMOVUPD   (R14), Y6
	VPERMILPD $0x5, Y6, Y7
	VMULPD    Y2, Y6, Y6
	VMULPD    Y3, Y7, Y7
	VADDSUBPD Y7, Y6, Y6
	VADDPD    Y6, Y4, Y4
	VMOVUPD   (R12), Y8
	VADDPD    Y4, Y8, Y8
	VMOVUPD   Y8, (R12)

gttail:
	CMPQ      R11, R10
	JE        gtpskip
	// dst[t] += av0·b0[t] + av1·b1[t]. The main loop clobbered
	// X8/X10, so recompute the identical scaled pair from (SI).
	VMOVUPD   (SI), X5
	VMOVUPD   16(SI), X6
	VMOVDDUP  X5, X8
	VSHUFPD   $3, X5, X5, X9
	VMULPD    X14, X8, X8
	VMULPD    X15, X9, X9
	VADDSUBPD X9, X8, X8
	VMOVDDUP  X6, X10
	VSHUFPD   $3, X6, X6, X11
	VMULPD    X14, X10, X10
	VMULPD    X15, X11, X11
	VADDSUBPD X11, X10, X10
	VMOVUPD   (R8)(BX*1), X4
	VSHUFPD   $1, X4, X4, X5
	VMOVDDUP  X8, X6
	VSHUFPD   $3, X8, X8, X7
	VMULPD    X6, X4, X4
	VMULPD    X7, X5, X5
	VADDSUBPD X5, X4, X4
	LEAQ      (R8)(R9*1), DX
	VMOVUPD   (DX)(BX*1), X9
	VSHUFPD   $1, X9, X9, X12
	VMOVDDUP  X10, X6
	VSHUFPD   $3, X10, X10, X7
	VMULPD    X6, X9, X9
	VMULPD    X7, X12, X12
	VADDSUBPD X12, X9, X9
	VADDPD    X9, X4, X4
	VMOVUPD   (DI)(BX*1), X11
	VADDPD    X4, X11, X11
	VMOVUPD   X11, (DI)(BX*1)

gtpskip:
	ADDQ $32, SI
	LEAQ (R8)(R9*2), R8
	SUBQ $2, CX
	JMP  gtpair

gtsingle:
	TESTQ     CX, CX
	JLE       gtdone
	VMOVUPD   (SI), X5
	VXORPD    X4, X4, X4
	VCMPPD    $0, X4, X5, X4
	VMOVMSKPD X4, AX
	CMPL      AX, $3
	JE        gtdone
	// av *= alpha (exact Go tree), broadcast
	VMOVDDUP    X5, X8
	VSHUFPD     $3, X5, X5, X9
	VMULPD      X14, X8, X8
	VMULPD      X15, X9, X9
	VADDSUBPD   X9, X8, X8
	VMOVDDUP    X8, X0
	VINSERTF128 $1, X0, Y0, Y0
	VSHUFPD     $3, X8, X8, X1
	VINSERTF128 $1, X1, Y1, Y1
	MOVQ        DI, R12
	MOVQ        R8, R13
	MOVQ        R11, DX

gts4:
	CMPQ      DX, $4
	JL        gts2
	VMOVUPD   (R13), Y2
	VMOVUPD   32(R13), Y5
	VPERMILPD $0x5, Y2, Y3
	VPERMILPD $0x5, Y5, Y6
	VMULPD    Y0, Y2, Y2
	VMULPD    Y0, Y5, Y5
	VMULPD    Y1, Y3, Y3
	VMULPD    Y1, Y6, Y6
	VADDSUBPD Y3, Y2, Y2
	VADDSUBPD Y6, Y5, Y5
	VMOVUPD   (R12), Y4
	VMOVUPD   32(R12), Y7
	VADDPD    Y2, Y4, Y4
	VADDPD    Y5, Y7, Y7
	VMOVUPD   Y4, (R12)
	VMOVUPD   Y7, 32(R12)
	ADDQ      $64, R13
	ADDQ      $64, R12
	SUBQ      $4, DX
	JMP       gts4

gts2:
	TESTQ     DX, DX
	JLE       gtstail
	VMOVUPD   (R13), Y2
	VPERMILPD $0x5, Y2, Y3
	VMULPD    Y0, Y2, Y2
	VMULPD    Y1, Y3, Y3
	VADDSUBPD Y3, Y2, Y2
	VMOVUPD   (R12), Y4
	VADDPD    Y2, Y4, Y4
	VMOVUPD   Y4, (R12)

gtstail:
	CMPQ      R11, R10
	JE        gtdone
	VMOVUPD   (R8)(BX*1), X4
	VSHUFPD   $1, X4, X4, X5
	VMOVDDUP  X8, X6
	VSHUFPD   $3, X8, X8, X7
	VMULPD    X6, X4, X4
	VMULPD    X7, X5, X5
	VADDSUBPD X5, X4, X4
	VMOVUPD   (DI)(BX*1), X11
	VADDPD    X4, X11, X11
	VMOVUPD   X11, (DI)(BX*1)

gtdone:
	VZEROUPPER
	RET
