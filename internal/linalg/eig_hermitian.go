package linalg

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/perf"
)

// EigenH holds the spectral decomposition of a Hermitian matrix:
// A = V·diag(Values)·V†, with Values ascending and V unitary
// (eigenvectors in columns).
type EigenH struct {
	Values  []float64
	Vectors *Matrix
}

// maxQLIterations bounds the implicit-QL sweeps per eigenvalue.
const maxQLIterations = 64

// EigH computes all eigenvalues and eigenvectors of the Hermitian matrix a.
// Only the lower triangle is referenced; the input is not modified.
// The algorithm is Householder reduction to real symmetric tridiagonal form
// followed by the implicit-shift QL iteration, accumulating the complex
// unitary transformation throughout.
func EigH(a *Matrix) (*EigenH, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: EigH requires a square matrix")
	}
	n := a.Rows
	if n == 0 {
		return &EigenH{Values: nil, Vectors: New(0, 0)}, nil
	}
	w := a.Clone() // working copy, reduced in place
	q := Identity(n)

	// Householder reduction to Hermitian tridiagonal form.
	v := make([]complex128, n)
	hv := make([]complex128, n)
	for k := 0; k < n-2; k++ {
		// Vector to eliminate: w[k+1:n, k].
		var norm float64
		for i := k + 1; i < n; i++ {
			norm += real(w.At(i, k))*real(w.At(i, k)) + imag(w.At(i, k))*imag(w.At(i, k))
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		x0 := w.At(k+1, k)
		var alpha complex128
		if x0 == 0 {
			alpha = complex(-norm, 0)
		} else {
			alpha = -x0 / complex(cmplx.Abs(x0), 0) * complex(norm, 0)
		}
		// v = x − alpha·e1, normalized.
		var vnorm float64
		for i := k + 1; i < n; i++ {
			vi := w.At(i, k)
			if i == k+1 {
				vi -= alpha
			}
			v[i] = vi
			vnorm += real(vi)*real(vi) + imag(vi)*imag(vi)
		}
		vnorm = math.Sqrt(vnorm)
		if vnorm == 0 {
			continue
		}
		for i := k + 1; i < n; i++ {
			v[i] /= complex(vnorm, 0)
		}
		// Two-sided update on the trailing block, rows/cols k..n-1:
		// H = I − 2vv†;  w ← H·w·H = w − 2vw† − 2wv† + 4(v†w)vv†
		// where wv = w·v restricted to the active block.
		for i := k; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += w.At(i, j) * v[j]
			}
			hv[i] = s
		}
		var c complex128 // v†·(w·v)
		for i := k + 1; i < n; i++ {
			c += cmplx.Conj(v[i]) * hv[i]
		}
		for i := k; i < n; i++ {
			vi := complex128(0)
			if i > k {
				vi = v[i]
			}
			for j := k; j < n; j++ {
				vj := complex128(0)
				if j > k {
					vj = v[j]
				}
				d := -2*vi*cmplx.Conj(hv[j]) - 2*hv[i]*cmplx.Conj(vj) + 4*c*vi*cmplx.Conj(vj)
				w.Set(i, j, w.At(i, j)+d)
			}
		}
		// Accumulate Q ← Q·H = Q − 2(Q·v)v†.
		for i := 0; i < n; i++ {
			var s complex128
			for j := k + 1; j < n; j++ {
				s += q.At(i, j) * v[j]
			}
			for j := k + 1; j < n; j++ {
				q.Set(i, j, q.At(i, j)-2*s*cmplx.Conj(v[j]))
			}
		}
	}
	perf.AddFlops(16 * int64(n) * int64(n) * int64(n) / 3) // reduction + accumulation, leading order

	// Extract the tridiagonal and phase-rotate it real.
	d := make([]float64, n)
	e := make([]float64, n)
	phase := make([]complex128, n)
	phase[0] = 1
	for i := 0; i < n; i++ {
		d[i] = real(w.At(i, i))
	}
	for i := 0; i < n-1; i++ {
		t := w.At(i+1, i)
		at := cmplx.Abs(t)
		e[i] = at
		if at > 0 {
			phase[i+1] = phase[i] * t / complex(at, 0)
		} else {
			phase[i+1] = phase[i]
		}
	}
	for j := 0; j < n; j++ {
		if phase[j] == 1 {
			continue
		}
		for i := 0; i < n; i++ {
			q.Set(i, j, q.At(i, j)*phase[j])
		}
	}

	if err := tql2(d, e, q); err != nil {
		return nil, err
	}
	perf.AddFlops(6 * int64(n) * int64(n) * int64(n)) // QL vector accumulation, leading order

	// Sort ascending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	vals := make([]float64, n)
	vecs := New(n, n)
	for j, p := range idx {
		vals[j] = d[p]
		for i := 0; i < n; i++ {
			vecs.Set(i, j, q.At(i, p))
		}
	}
	return &EigenH{Values: vals, Vectors: vecs}, nil
}

// EigHValues computes only the eigenvalues of the Hermitian matrix a.
func EigHValues(a *Matrix) ([]float64, error) {
	eig, err := EigH(a)
	if err != nil {
		return nil, err
	}
	return eig.Values, nil
}

// tql2 runs the implicit-shift QL iteration on the real symmetric
// tridiagonal matrix (diagonal d, subdiagonal e with e[i] coupling i and
// i+1), applying every plane rotation to the columns of z.
func tql2(d, e []float64, z *Matrix) error {
	n := len(d)
	if n <= 1 {
		return nil
	}
	e[n-1] = 0
	for l := 0; l < n; l++ {
		iter := 0
		for {
			// Look for a negligible subdiagonal element to split at.
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(e[m]) <= machEps*dd {
					break
				}
			}
			if m == l {
				break
			}
			iter++
			if iter > maxQLIterations {
				return errors.New("linalg: QL iteration failed to converge")
			}
			// Wilkinson shift from the leading 2×2.
			g := (d[l+1] - d[l]) / (2 * e[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + e[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * e[i]
				b := c * e[i]
				r = math.Hypot(f, g)
				e[i+1] = r
				if r == 0 {
					d[i+1] -= p
					e[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
				// Rotate eigenvector columns i and i+1.
				for k := 0; k < n; k++ {
					fk := z.At(k, i+1)
					z.Set(k, i+1, complex(s, 0)*z.At(k, i)+complex(c, 0)*fk)
					z.Set(k, i, complex(c, 0)*z.At(k, i)-complex(s, 0)*fk)
				}
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			e[l] = g
			e[m] = 0
		}
	}
	return nil
}

// machEps is the double-precision unit roundoff used by convergence tests.
const machEps = 2.220446049250313e-16
