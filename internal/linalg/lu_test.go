package linalg

import (
	"errors"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestLUSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 5, 17, 40} {
		a := randMatrix(rng, n, n)
		// Diagonal boost keeps the random systems comfortably non-singular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(n), 0))
		}
		b := randMatrix(rng, n, 3)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatalf("n=%d: Solve failed: %v", n, err)
		}
		res := a.Mul(x).Sub(b)
		if res.MaxAbs() > 1e-10 {
			t.Fatalf("n=%d: residual %g too large", n, res.MaxAbs())
		}
	}
}

func TestLUInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 12
	a := randMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+10)
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(n), 1e-10) {
		t.Fatal("A·A⁻¹ != I")
	}
	if !inv.Mul(a).Equal(Identity(n), 1e-10) {
		t.Fatal("A⁻¹·A != I")
	}
}

func TestLUDeterminant(t *testing.T) {
	// Known 2×2 determinant.
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(f.Det()-(-2)) > 1e-13 {
		t.Fatalf("det = %v, want -2", f.Det())
	}
	// Determinant of the identity is 1 regardless of pivoting.
	f2, _ := Factor(Identity(5))
	if cmplx.Abs(f2.Det()-1) > 1e-14 {
		t.Fatalf("det(I) = %v", f2.Det())
	}
	// det is multiplicative on a random pair.
	rng := rand.New(rand.NewSource(12))
	x := randMatrix(rng, 6, 6)
	y := randMatrix(rng, 6, 6)
	fx, _ := Factor(x)
	fy, _ := Factor(y)
	fxy, _ := Factor(x.Mul(y))
	if cmplx.Abs(fxy.Det()-fx.Det()*fy.Det()) > 1e-8*(1+cmplx.Abs(fxy.Det())) {
		t.Fatal("det(XY) != det(X)det(Y)")
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {2, 4}})
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor of singular matrix returned %v, want ErrSingular", err)
	}
	if _, err := Factor(New(3, 3)); !errors.Is(err, ErrSingular) {
		t.Fatalf("Factor of zero matrix returned %v", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factor(New(2, 3)); err == nil {
		t.Fatal("Factor accepted a non-square matrix")
	}
}

func TestLUPivotingStability(t *testing.T) {
	// Without pivoting this system loses all accuracy: tiny leading pivot.
	a := FromRows([][]complex128{{1e-20, 1}, {1, 1}})
	b := FromRows([][]complex128{{1}, {2}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	res := a.Mul(x).Sub(b)
	if res.MaxAbs() > 1e-12 {
		t.Fatalf("pivoted solve residual %g", res.MaxAbs())
	}
}

func TestLUSolveManyRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 15
	a := randMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+8)
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	// Solving column-by-column must agree with the block solve.
	b := randMatrix(rng, n, 7)
	block := f.Solve(b)
	for j := 0; j < 7; j++ {
		col := b.Submatrix(0, j, n, 1)
		xj := f.Solve(col)
		if !xj.Equal(block.Submatrix(0, j, n, 1), 1e-11) {
			t.Fatalf("column %d of block solve disagrees with single solve", j)
		}
	}
}
