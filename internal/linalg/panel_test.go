package linalg

import "testing"

// TestPanelBlockGeometry checks the packed layout: width views of
// rows×cols over one contiguous backing slice, stable across calls.
func TestPanelBlockGeometry(t *testing.T) {
	ws := GetWorkspace()
	p := ws.GetPanel(3, 4, 5)
	if p.Width() != 3 || p.Rows() != 4 || p.Cols() != 5 {
		t.Fatalf("geometry: got %d×(%d×%d)", p.Width(), p.Rows(), p.Cols())
	}
	p.Zero()
	for i := 0; i < 3; i++ {
		b := p.Block(i)
		if b.Rows != 4 || b.Cols != 5 {
			t.Fatalf("block %d shape %d×%d", i, b.Rows, b.Cols)
		}
		if b != p.Block(i) {
			t.Fatalf("block %d view not stable", i)
		}
		b.Data[0] = complex(float64(i+1), 0)
	}
	for i := 0; i < 3; i++ {
		if p.Block(i).Data[0] != complex(float64(i+1), 0) {
			t.Fatalf("block %d storage not independent", i)
		}
	}
	ws.PutPanel(p)
}

// TestPanelDoubleReturnPanics checks that returning the same panel
// twice panics — the double-checkout guard of the panel free list.
func TestPanelDoubleReturnPanics(t *testing.T) {
	ws := GetWorkspace()
	p := ws.GetPanel(2, 3, 3)
	ws.PutPanel(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double PutPanel did not panic")
		}
	}()
	ws.PutPanel(p)
}

// TestPanelForeignReturnPanics checks that a panel checked out of one
// workspace cannot be returned to another.
func TestPanelForeignReturnPanics(t *testing.T) {
	ws1 := GetWorkspace()
	ws2 := GetWorkspace()
	p := ws1.GetPanel(2, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign PutPanel did not panic")
		}
		ws1.PutPanel(p)
	}()
	ws2.PutPanel(p)
}

// TestPanelReuseAfterReturn checks the free list recycles backing
// storage across checkouts of compatible capacity classes.
func TestPanelReuseAfterReturn(t *testing.T) {
	ws := GetWorkspace()
	p1 := ws.GetPanel(4, 8, 8)
	ws.PutPanel(p1)
	p2 := ws.GetPanel(4, 8, 8)
	if p1 != p2 {
		t.Fatal("panel of identical geometry not recycled")
	}
	ws.PutPanel(p2)
}
