package linalg

import (
	"math/cmplx"

	"repro/internal/perf"
)

// This file holds the flop-minimal fused kernels of the transport hot
// paths: O(n²) replacements for trace/diagonal observables that the naive
// formulas compute via full O(n³) products, and in-place elementwise
// helpers that kill scaled temporaries (Scale(-1) copies, materialized
// adjoints).

// TraceMulConj returns Tr[a·b†] in O(rows·cols) via
// Σ_ij a_ij·conj(b_ij), instead of forming the O(n³) product. a and b
// must have the same shape (a·b† is then square). This is the Caroli
// transmission kernel: T = Tr[(Γ_L·G·Γ_R)·G†].
func TraceMulConj(a, b *Matrix) complex128 {
	checkSameShape(a, b, "TraceMulConj")
	var s complex128
	for i, v := range a.Data {
		s += v * cmplx.Conj(b.Data[i])
	}
	perf.AddFlops(int64(len(a.Data)) * perf.FlopsCMulAdd)
	return s
}

// TraceMul returns Tr[a·b] in O(n²) via Σ_ij a_ij·b_ji. a must be m×n and
// b n×m.
func TraceMul(a, b *Matrix) complex128 {
	if a.Cols != b.Rows || a.Rows != b.Cols {
		panic("linalg: dimension mismatch in TraceMul")
	}
	var s complex128
	for i := 0; i < a.Rows; i++ {
		aRow := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range aRow {
			s += v * b.Data[j*b.Cols+i]
		}
	}
	perf.AddFlops(int64(len(a.Data)) * perf.FlopsCMulAdd)
	return s
}

// DiagMulConjInto writes diag(x·g·x†) into dst using one n×m product and
// n row dots — O(n·m²) instead of the O(n²·m) of materializing x·g·x†.
// x is n×m, g is m×m, dst has length n. This is the spectral-function
// assembly kernel: the contact-resolved density needs only [G·Γ·G†]_ii.
func DiagMulConjInto(dst []complex128, x, g *Matrix, ws *Workspace) {
	if g.Rows != x.Cols || g.Cols != x.Cols {
		panic("linalg: dimension mismatch in DiagMulConjInto")
	}
	if len(dst) != x.Rows {
		panic("linalg: output length mismatch in DiagMulConjInto")
	}
	m := x.Cols
	y := ws.Get(x.Rows, m)
	GemmInto(y, 1, x, NoTrans, g, NoTrans, 0)
	for i := 0; i < x.Rows; i++ {
		yRow := y.Data[i*m : (i+1)*m]
		xRow := x.Data[i*m : (i+1)*m]
		var s complex128
		for j, v := range yRow {
			s += v * cmplx.Conj(xRow[j])
		}
		dst[i] = s
	}
	ws.Put(y)
	perf.AddFlops(int64(x.Rows) * int64(m) * perf.FlopsCMulAdd)
}

// DiagMulConj returns diag(x·g·x†) as a fresh slice; see DiagMulConjInto.
func DiagMulConj(x, g *Matrix) []complex128 {
	ws := GetWorkspace()
	defer ws.Release()
	dst := make([]complex128, x.Rows)
	DiagMulConjInto(dst, x, g, ws)
	return dst
}

// AddScaled sets m = m + s·b without materializing the scaled copy.
func (m *Matrix) AddScaled(b *Matrix, s complex128) {
	checkSameShape(m, b, "AddScaled")
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCMulAdd)
}

// AddInto sets dst = a + b. dst may alias a or b (pure elementwise).
func AddInto(dst, a, b *Matrix) {
	checkSameShape(a, b, "AddInto")
	checkSameShape(dst, a, "AddInto")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
	perf.AddFlops(int64(len(a.Data)) * perf.FlopsCAdd)
}

// SubInto sets dst = a − b. dst may alias a or b (pure elementwise).
func SubInto(dst, a, b *Matrix) {
	checkSameShape(a, b, "SubInto")
	checkSameShape(dst, a, "SubInto")
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
	perf.AddFlops(int64(len(a.Data)) * perf.FlopsCAdd)
}

// ConjTransposeInto writes m† into dst, which must be m.Cols×m.Rows and
// must not alias m.
func ConjTransposeInto(dst, m *Matrix) {
	if dst == m {
		panic("linalg: ConjTransposeInto output aliases its input")
	}
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic("linalg: dimension mismatch in ConjTransposeInto")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = cmplx.Conj(v)
		}
	}
}

// ShiftedNegInto writes dst = z·I − m for a square m. dst may alias m.
// This is the resolvent assembly step (z − H) of the decimation and SCBA
// loops, fused so no identity or scaled copy is materialized.
func ShiftedNegInto(dst, m *Matrix, z complex128) {
	if m.Rows != m.Cols {
		panic("linalg: ShiftedNegInto requires a square matrix")
	}
	checkSameShape(dst, m, "ShiftedNegInto")
	n := m.Rows
	for i := 0; i < n; i++ {
		dstRow := dst.Data[i*n : (i+1)*n]
		mRow := m.Data[i*n : (i+1)*n]
		for j, v := range mRow {
			dstRow[j] = -v
		}
		dstRow[i] += z
	}
	perf.AddFlops(int64(n) * int64(n) * perf.FlopsCAdd)
}
