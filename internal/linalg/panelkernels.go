package linalg

import (
	"errors"
	"math/cmplx"

	"repro/internal/perf"
)

// This file is the vectorized kernel backend of the batched (panel) solve
// path. Each Vec* routine is the corresponding reference kernel with its
// elementwise inner loops dispatched through the AVX microkernels of
// veckernels.go; everything else — loop order, cache blocking, zero-skip
// placement, pivot selection, flop accounting — is copied line for line
// from the reference kernel next to it. Because every microkernel lane
// computes exactly the scalar expression tree (see veckernels_amd64.s),
// the Vec* kernels are bitwise-identical to the reference kernels on
// every element, and the property tests in batch_test.go hold them to
// exact equality.
//
// Reduction kernels (dot-product GEMM cases, TraceMulConj,
// DiagMulConjInto) are deliberately NOT vectorized: a vector register
// changes the partial-sum association, which is no longer the scalar
// bit pattern. Those cases delegate to the reference kernels unchanged.

// VecGemmInto is GemmInto with vectorized elementwise inner loops:
//
//	dst = alpha·opA(a)·opB(b) + beta·dst
//
// Bitwise-identical to GemmInto on every operand (the dot-product operand
// combinations delegate to GemmInto wholesale, reductions included).
func VecGemmInto(dst *Matrix, alpha complex128, a *Matrix, opA Op, b *Matrix, opB Op, beta complex128) {
	if opB == ConjTrans {
		// NoTrans/ConjTrans and ConjTrans/ConjTrans are dot-product
		// shapes: vector lanes would reassociate the partial sums.
		GemmInto(dst, alpha, a, opA, b, opB, beta)
		return
	}
	if dst == a || dst == b {
		panic("linalg: GemmInto output aliases an operand")
	}
	ra, ca := opDims(a, opA)
	rb, cb := opDims(b, opB)
	if ca != rb {
		panic("linalg: inner dimension mismatch in GemmInto")
	}
	if dst.Rows != ra || dst.Cols != cb {
		panic("linalg: output dimension mismatch in GemmInto")
	}
	if beta == 0 {
		dst.Zero()
	} else if beta != 1 {
		scaleTo(dst.Data, beta)
		perf.AddFlops(int64(len(dst.Data)) * perf.FlopsCMul)
	}
	n, k, p := ra, ca, cb
	if opA == NoTrans {
		// Same i-k-j blocked order as the reference kernel; the two-deep
		// unrolled row update is exactly axpy2AddTo's expression tree. The
		// zero skips test the unscaled multipliers, before alpha, exactly
		// like the reference loop — 0·x is not a no-op in IEEE arithmetic.
		// The vector/scalar dispatch is hoisted out of the inner loops:
		// the row-segment width is fixed per column block, and the direct
		// assembly calls skip the non-inlinable wrapper per update.
		for jj := 0; jj < p; jj += gemmBlock {
			jEnd := min(jj+gemmBlock, p)
			wB := jEnd - jj
			vec := hasAVX && wB >= vecMinLen
			for kk := 0; kk < k; kk += gemmBlock {
				kEnd := min(kk+gemmBlock, k)
				for i := 0; i < n; i++ {
					if vec {
						// One fused call runs the whole l-loop of this
						// tile: pair skips, alpha scaling, updates, tail.
						avxGemmTileNN(&dst.Data[i*p+jj], &a.Data[i*k+kk], &b.Data[kk*p+jj], kEnd-kk, p, wB, alpha)
						continue
					}
					dstRow := dst.Data[i*p+jj : i*p+jEnd]
					aRow := a.Data[i*k : (i+1)*k]
					l := kk
					for ; l+1 < kEnd; l += 2 {
						av0 := aRow[l]
						av1 := aRow[l+1]
						if av0 == 0 && av1 == 0 {
							continue
						}
						av0 *= alpha
						av1 *= alpha
						b0 := b.Data[l*p+jj : l*p+jEnd]
						b1 := b.Data[(l+1)*p+jj : (l+1)*p+jEnd]
						axpy2AddScalar(dstRow, b0, b1, av0, av1)
					}
					for ; l < kEnd; l++ {
						av := aRow[l]
						if av == 0 {
							continue
						}
						av *= alpha
						bRow := b.Data[l*p+jj : l*p+jEnd]
						axpyAddScalar(dstRow, bRow, av)
					}
				}
			}
		}
	} else {
		// ConjTrans/NoTrans: l-outer rank-1 updates, same order as the
		// reference kernel; each dst row update is one axpy.
		pEven := p &^ 1
		vec := hasAVX && p >= vecMinLen
		for l := 0; l < k; l++ {
			aRow := a.Data[l*n : (l+1)*n]
			bRow := b.Data[l*p : (l+1)*p]
			for i := 0; i < n; i++ {
				av := aRow[i]
				if av == 0 {
					continue
				}
				av = alpha * cmplx.Conj(av)
				dstRow := dst.Data[i*p : (i+1)*p]
				if vec {
					avxAxpyAdd(&dstRow[0], &bRow[0], pEven, av)
					if pEven < p {
						dstRow[pEven] += av * bRow[pEven]
					}
				} else {
					axpyAddScalar(dstRow, bRow, av)
				}
			}
		}
	}
	perf.AddFlops(perf.GemmFlops(n, k, p))
}

// VecMulInto sets dst = opA(a)·opB(b) through the vectorized kernel.
func VecMulInto(dst *Matrix, a *Matrix, opA Op, b *Matrix, opB Op) {
	VecGemmInto(dst, 1, a, opA, b, opB, 0)
}

// VecMul3Into is Mul3Into with both products routed through the
// vectorized kernel: dst = opA(a)·opB(b)·opC(c), associating to minimize
// work with the same cost rule as the reference.
func VecMul3Into(dst *Matrix, a *Matrix, opA Op, b *Matrix, opB Op, c *Matrix, opC Op, ws *Workspace) {
	ra, ca := opDims(a, opA)
	rb, cb := opDims(b, opB)
	rc, cc := opDims(c, opC)
	if ca != rb || cb != rc {
		panic("linalg: inner dimension mismatch in Mul3Into")
	}
	if dst.Rows != ra || dst.Cols != cc {
		panic("linalg: output dimension mismatch in Mul3Into")
	}
	left := int64(ra)*int64(ca)*int64(cb) + int64(ra)*int64(cb)*int64(cc)
	right := int64(rb)*int64(cb)*int64(cc) + int64(ra)*int64(ca)*int64(cc)
	if left <= right {
		tmp := ws.Get(ra, cb)
		VecGemmInto(tmp, 1, a, opA, b, opB, 0)
		VecGemmInto(dst, 1, tmp, NoTrans, c, opC, 0)
		ws.Put(tmp)
	} else {
		tmp := ws.Get(rb, cc)
		VecGemmInto(tmp, 1, b, opB, c, opC, 0)
		VecGemmInto(dst, 1, a, opA, tmp, NoTrans, 0)
		ws.Put(tmp)
	}
}

// factorInPlaceVec is factorInPlace with the row-update loop vectorized;
// pivot search, row swaps and the singularity test are untouched.
func factorInPlaceVec(m *Matrix, piv []int) (sign int, err error) {
	if !hasAVX {
		return factorInPlace(m, piv)
	}
	n := m.Rows
	lu := m.Data
	sign = 1
	for k := 0; k < n; k++ {
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		piv[k] = p
		if maxAbs == 0 {
			return sign, ErrSingular
		}
		if p != k {
			rowK := lu[k*n : (k+1)*n]
			rowP := lu[p*n : (p+1)*n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			sign = -sign
		}
		pivInv := 1 / lu[k*n+k]
		if rl := n - k - 1; hasAVX && rl >= vecMinLen {
			// One fused call scales the whole column by pivInv and
			// applies every surviving row update (zero skips included).
			avxFactorColUpdate(&lu[(k+1)*n+k], &lu[k*n+k+1], rl, n, pivInv)
		} else {
			for i := k + 1; i < n; i++ {
				m := lu[i*n+k] * pivInv
				lu[i*n+k] = m
				if m == 0 {
					continue
				}
				rowI := lu[i*n+k+1 : (i+1)*n]
				rowK := lu[k*n+k+1 : (k+1)*n]
				axpySubScalar(rowI, rowK, m)
			}
		}
	}
	perf.AddFlops(perf.LUFlops(n))
	return sign, nil
}

// luSolveInPlaceVec is luSolveInPlace with the substitution row updates
// and the diagonal scale vectorized: each row's whole forward or
// backward update runs as one fused assembly call. Narrow right-hand
// sides (and non-AVX builds) delegate to the scalar reference kernel,
// which is the identical computation by construction.
func luSolveInPlaceVec(f *Matrix, piv []int, b *Matrix) {
	n := f.Rows
	if b.Rows != n {
		panic("linalg: RHS row count mismatch in Solve")
	}
	nrhs := b.Cols
	if !hasAVX || nrhs < vecMinLen {
		luSolveInPlace(f, piv, b)
		return
	}
	lu := f.Data
	rEven := nrhs &^ 1
	for k := 0; k < n; k++ {
		if p := piv[k]; p != k {
			rowK := b.Data[k*nrhs : (k+1)*nrhs]
			rowP := b.Data[p*nrhs : (p+1)*nrhs]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
		}
	}
	for i := 1; i < n; i++ {
		avxLuRowUpdate(&b.Data[i*nrhs], &b.Data[0], &lu[i*n], i, nrhs)
	}
	for i := n - 1; i >= 0; i-- {
		if cnt := n - i - 1; cnt > 0 {
			avxLuRowUpdate(&b.Data[i*nrhs], &b.Data[(i+1)*nrhs], &lu[i*n+i+1], cnt, nrhs)
		}
		rowI := b.Data[i*nrhs : (i+1)*nrhs]
		dInv := 1 / lu[i*n+i]
		avxScale(&rowI[0], rEven, dInv)
		if rEven < nrhs {
			rowI[rEven] *= dInv
		}
	}
	perf.AddFlops(perf.SolveFlops(n, nrhs))
}

// VecSolveInto writes the solution of A·X = B into dst through the
// vectorized substitution kernel. dst and b must have the same shape;
// dst may alias b.
func (f *LU) VecSolveInto(dst, b *Matrix) {
	if dst != b {
		dst.CopyFrom(b)
	}
	luSolveInPlaceVec(f.lu, f.piv, dst)
}

// VecInverseInto is InverseInto with factorization and solve routed
// through the vectorized kernels.
func VecInverseInto(dst, a *Matrix, ws *Workspace) error {
	if a.Rows != a.Cols {
		return errors.New("linalg: InverseInto requires a square matrix")
	}
	if dst == a {
		return errors.New("linalg: InverseInto output aliases its input")
	}
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		return errors.New("linalg: output dimension mismatch in InverseInto")
	}
	n := a.Rows
	lu := ws.Get(n, n)
	defer ws.Put(lu)
	lu.CopyFrom(a)
	piv := ws.GetInts(n)
	defer ws.PutInts(piv)
	if _, err := factorInPlaceVec(lu, piv); err != nil {
		return err
	}
	dst.Zero()
	for i := 0; i < n; i++ {
		dst.Data[i*n+i] = 1
	}
	luSolveInPlaceVec(lu, piv, dst)
	return nil
}

// VecAddScaled sets m = m + s·b through the vectorized axpy. Like the
// reference AddScaled, there is no short-circuit on s.
func VecAddScaled(m, b *Matrix, s complex128) {
	checkSameShape(m, b, "AddScaled")
	axpyAddTo(m.Data, b.Data, s)
	perf.AddFlops(int64(len(m.Data)) * perf.FlopsCMulAdd)
}

// VecSubInto sets dst = a − b elementwise. dst may alias a or b.
func VecSubInto(dst, a, b *Matrix) {
	checkSameShape(a, b, "SubInto")
	checkSameShape(dst, a, "SubInto")
	subTo(dst.Data, a.Data, b.Data)
	perf.AddFlops(int64(len(a.Data)) * perf.FlopsCAdd)
}

// VecShiftedNegInto writes dst = z·I − m for a square m, with the row
// negation vectorized (an exact sign flip). dst may alias m.
func VecShiftedNegInto(dst, m *Matrix, z complex128) {
	if m.Rows != m.Cols {
		panic("linalg: ShiftedNegInto requires a square matrix")
	}
	checkSameShape(dst, m, "ShiftedNegInto")
	n := m.Rows
	for i := 0; i < n; i++ {
		dstRow := dst.Data[i*n : (i+1)*n]
		mRow := m.Data[i*n : (i+1)*n]
		negTo(dstRow, mRow)
		dstRow[i] += z
	}
	perf.AddFlops(int64(n) * int64(n) * perf.FlopsCAdd)
}
