package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/perf"
)

// genMatrix draws a bounded random square matrix from the quick generator's
// source so property tests are reproducible under -quickchecks.
func genMatrix(rng *rand.Rand, n int) *Matrix {
	a := New(n, n)
	for i := range a.Data {
		a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func TestQuickHermitizationIsHermitian(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		h := a.Add(a.ConjTranspose()).Scale(0.5)
		return h.IsHermitian(1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLURoundTrip(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%12) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+complex(float64(2*n), 0))
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		return a.Mul(inv).Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGemmDistributesOverAdd(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		b := genMatrix(rng, n)
		c := genMatrix(rng, n)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		return left.Equal(right, 1e-9*(1+left.MaxAbs()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAdjointOfProduct(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		b := genMatrix(rng, n)
		left := a.Mul(b).ConjTranspose()
		right := b.ConjTranspose().Mul(a.ConjTranspose())
		return left.Equal(right, 1e-10*(1+left.MaxAbs()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEigHResidualAndOrthonormality(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%9) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		h := a.Add(a.ConjTranspose()).Scale(0.5)
		eig, err := EigH(h)
		if err != nil {
			return false
		}
		scale := 1 + h.MaxAbs()
		for j := 0; j < n; j++ {
			v := make([]complex128, n)
			for i := 0; i < n; i++ {
				v[i] = eig.Vectors.At(i, j)
			}
			hv := h.MulVec(v)
			for i := 0; i < n; i++ {
				if cmplx.Abs(hv[i]-complex(eig.Values[j], 0)*v[i]) > 1e-8*scale {
					return false
				}
			}
		}
		vtv := eig.Vectors.ConjTranspose().Mul(eig.Vectors)
		return vtv.Equal(Identity(n), 1e-8)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTraceSimilarityInvariant(t *testing.T) {
	// Tr(AB) == Tr(BA) for square matrices.
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		b := genMatrix(rng, n)
		d := a.Mul(b).Trace() - b.Mul(a).Trace()
		return cmplx.Abs(d) < 1e-9*(1+cmplx.Abs(a.Mul(b).Trace()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFlopCounterMonotone(t *testing.T) {
	f := func(szRaw uint8) bool {
		n := int(szRaw%16) + 1
		before := perf.Flops()
		a := Identity(n)
		b := Identity(n)
		_ = a.Mul(b)
		after := perf.Flops()
		return after-before >= perf.GemmFlops(n, n, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDetOfUnitaryHasUnitModulus(t *testing.T) {
	// Eigenvectors of a Hermitian matrix form a unitary matrix whose
	// determinant must have modulus 1.
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%6) + 2
		rng := rand.New(rand.NewSource(seed))
		a := genMatrix(rng, n)
		h := a.Add(a.ConjTranspose()).Scale(0.5)
		eig, err := EigH(h)
		if err != nil {
			return false
		}
		fac, err := Factor(eig.Vectors)
		if err != nil {
			return false
		}
		return math.Abs(cmplx.Abs(fac.Det())-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
