//go:build amd64

package linalg

// hasAVX reports whether the CPU and OS support AVX ymm arithmetic
// (CPUID OSXSAVE+AVX and XCR0 xmm+ymm state). The probe runs once at
// package init; tests flip the variable to force the scalar fallback.
var hasAVX = cpuHasAVX()

// cpuHasAVX is the CPUID/XGETBV feature probe (veckernels_amd64.s).
func cpuHasAVX() bool

// The assembly kernels require n even and >= 2; the dispatch wrappers
// in veckernels.go guarantee it and handle the odd tail element.

//go:noescape
func avxAxpyAdd(y, x *complex128, n int, m complex128)

//go:noescape
func avxAxpySub(y, x *complex128, n int, m complex128)

//go:noescape
func avxAxpy2Add(y, x0, x1 *complex128, n int, m0, m1 complex128)

//go:noescape
func avxAxpy2Sub(y, x0, x1 *complex128, n int, m0, m1 complex128)

//go:noescape
func avxScale(y *complex128, n int, d complex128)

//go:noescape
func avxNeg(dst, src *complex128, n int)

//go:noescape
func avxSub(dst, a, b *complex128, n int)

// The fused kernels below move a whole solver inner loop — zero checks,
// multiplier scaling, row updates, odd tails — into one assembly call,
// amortizing the ABI0 call overhead over O(n·nrhs) work instead of one
// row segment. They require the row length >= vecMinLen; odd lengths are
// handled inside.

// avxLuRowUpdate applies y[j] -= Σ_k ms[k]·rows[k·nrhs+j] for k in
// [0,cnt), j in [0,nrhs) — the forward/backward substitution update of
// one RHS row against cnt earlier rows — pairing k two-deep with the
// reference kernel's zero skips.
//
//go:noescape
func avxLuRowUpdate(y, rows, ms *complex128, cnt, nrhs int)

// avxFactorColUpdate runs the pivot-k elimination: for each of rows
// trailing rows it scales the column entry by pivInv (storing the
// multiplier back), skips zero multipliers, and subtracts m·rowK from
// the trailing row segment of length rows. col walks down the column
// with the given stride (in elements).
//
//go:noescape
func avxFactorColUpdate(col, rowK *complex128, rows, stride int, pivInv complex128)

// avxGemmTileNN accumulates dst[j] += Σ_l (alpha·aRow[l])·b[l·p+j] for
// l in [0,kLen), j in [0,w) — one (i, k-block) tile of the NoTrans GEMM
// — pairing l two-deep with the reference kernel's unscaled zero skips.
//
//go:noescape
func avxGemmTileNN(dst, aRow, b *complex128, kLen, p, w int, alpha complex128)
