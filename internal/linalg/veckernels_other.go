//go:build !amd64

package linalg

// Non-amd64 builds always take the scalar loops; the stubs below are
// never reached (hasAVX is constant false) but keep the dispatch code
// building unmodified.

var hasAVX = false

func avxAxpyAdd(y, x *complex128, n int, m complex128) { panic("linalg: no vector kernel") }
func avxAxpySub(y, x *complex128, n int, m complex128) { panic("linalg: no vector kernel") }
func avxAxpy2Add(y, x0, x1 *complex128, n int, m0, m1 complex128) {
	panic("linalg: no vector kernel")
}
func avxAxpy2Sub(y, x0, x1 *complex128, n int, m0, m1 complex128) {
	panic("linalg: no vector kernel")
}
func avxScale(y *complex128, n int, d complex128) { panic("linalg: no vector kernel") }
func avxNeg(dst, src *complex128, n int)          { panic("linalg: no vector kernel") }
func avxSub(dst, a, b *complex128, n int)         { panic("linalg: no vector kernel") }

func avxLuRowUpdate(y, rows, ms *complex128, cnt, nrhs int) { panic("linalg: no vector kernel") }
func avxFactorColUpdate(col, rowK *complex128, rows, stride int, pivInv complex128) {
	panic("linalg: no vector kernel")
}
func avxGemmTileNN(dst, aRow, b *complex128, kLen, p, w int, alpha complex128) {
	panic("linalg: no vector kernel")
}
