package linalg

import "sync"

// Workspace is a size-bucketed scratch allocator for the dense kernels.
// Hot solver loops (RGF sweeps, Sancho-Rubio decimation, SCBA iterations)
// check temporary matrices out with Get and return them with Put, so a
// whole per-energy-point solve touches the garbage collector only on its
// first use of each buffer size instead of on every product.
//
// Ownership rules (DESIGN.md §8):
//
//   - A Workspace is single-goroutine: check one out per solve with
//     GetWorkspace and hand it back with Release when the solve is done.
//     Never store a Workspace on a long-lived Solver — parallel energy
//     points would race on it.
//   - Matrices obtained from Get are scratch. They must never escape the
//     solve that checked them out (not into results, caches, or other
//     goroutines); Release recycles every outstanding buffer.
//   - Put panics on a double return and on a matrix the workspace did not
//     hand out, so ownership bugs fail loudly in tests instead of
//     corrupting a neighbouring solve.
type Workspace struct {
	// free holds returned matrices keyed by their power-of-two capacity
	// class (in complex128 elements).
	free map[int][]*Matrix
	// out tracks checked-out matrices and their capacity class.
	out map[*Matrix]int
	// ints is a free list of pivot-index scratch slices.
	ints [][]int
	// panelFree and panelOut are the free/checked-out sets of the batched
	// path's Panels, bucketed like free/out by total capacity class.
	panelFree map[int][]*Panel
	panelOut  map[*Panel]int
}

// workspacePool recycles whole Workspaces across solves. sync.Pool's
// per-P fast path means a worker goroutine pinned to a processor keeps
// reusing the same warm buffers for consecutive energy points.
var workspacePool = sync.Pool{New: func() any {
	return &Workspace{
		free:      make(map[int][]*Matrix),
		out:       make(map[*Matrix]int),
		panelFree: make(map[int][]*Panel),
		panelOut:  make(map[*Panel]int),
	}
}}

// GetWorkspace checks a Workspace out of the shared pool.
func GetWorkspace() *Workspace { return workspacePool.Get().(*Workspace) }

// Release reclaims every matrix still checked out and returns the
// workspace to the shared pool. After Release the workspace, and every
// matrix it ever handed out, must not be used.
func (w *Workspace) Release() {
	for m, class := range w.out {
		delete(w.out, m)
		w.free[class] = append(w.free[class], m)
	}
	for p, class := range w.panelOut {
		delete(w.panelOut, p)
		w.panelFree[class] = append(w.panelFree[class], p)
	}
	workspacePool.Put(w)
}

// capClass returns the smallest power of two ≥ n (minimum 1), the bucket
// granularity of the free lists. Rounding up lets one buffer serve every
// nearby block size a solve cycles through.
func capClass(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Get checks out a zeroed rows×cols scratch matrix.
func (w *Workspace) Get(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension in Workspace.Get")
	}
	n := rows * cols
	class := capClass(n)
	var m *Matrix
	if list := w.free[class]; len(list) > 0 {
		m = list[len(list)-1]
		w.free[class] = list[:len(list)-1]
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		m.Zero()
	} else {
		m = &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, n, class)}
	}
	w.out[m] = class
	return m
}

// Put returns a matrix previously obtained from Get. It panics on a
// double return and on a matrix this workspace did not hand out.
func (w *Workspace) Put(m *Matrix) {
	class, ok := w.out[m]
	if !ok {
		panic("linalg: Workspace.Put of a matrix it did not hand out (double or foreign return)")
	}
	delete(w.out, m)
	w.free[class] = append(w.free[class], m)
}

// GetInts checks out a length-n int scratch slice (pivot indices).
func (w *Workspace) GetInts(n int) []int {
	for i, s := range w.ints {
		if cap(s) >= n {
			w.ints[i] = w.ints[len(w.ints)-1]
			w.ints = w.ints[:len(w.ints)-1]
			return s[:n]
		}
	}
	return make([]int, n, capClass(n))
}

// PutInts returns an int slice obtained from GetInts.
func (w *Workspace) PutInts(s []int) {
	w.ints = append(w.ints, s)
}
