// Package units centralizes the physical constants and statistical
// functions shared by the electrostatics and transport packages. The
// simulator works in (eV, nm, e) units: energies in electron-volts,
// lengths in nanometers, charge counted in elementary charges.
package units

import "math"

const (
	// Eps0 is the vacuum permittivity in e/(V·nm): ε₀ = 8.8541878128e-12
	// F/m = 0.055263494 e/(V·nm).
	Eps0 = 0.055263494

	// KBoltzmann is Boltzmann's constant in eV/K.
	KBoltzmann = 8.617333262e-5

	// RoomTemperature in kelvin.
	RoomTemperature = 300.0

	// HBar is the reduced Planck constant in eV·s.
	HBar = 6.582119569e-16

	// QElectron is the elementary charge in coulomb, used only when
	// converting currents to amperes.
	QElectron = 1.602176634e-19

	// ConductanceQuantum G₀ = 2e²/h in siemens (spin-degenerate).
	ConductanceQuantum = 7.748091729e-5

	// CurrentQuantum e/h in A/eV: the Landauer prefactor per spin for
	// energies in eV, I = (e/h)∫T(E)(f_L−f_R)dE.
	CurrentQuantum = 2.4179892e14 * QElectron // e/h ≈ 3.874e-5 A/eV
)

// KT returns k_B·T in eV.
func KT(temperature float64) float64 { return KBoltzmann * temperature }

// Fermi returns the Fermi-Dirac occupation 1/(1+exp((e−mu)/kT)).
// kT must be positive; the zero-temperature limit is handled by callers
// passing a small kT.
func Fermi(e, mu, kT float64) float64 {
	x := (e - mu) / kT
	// Guard the exponential for numerical robustness far from mu.
	switch {
	case x > 40:
		return math.Exp(-x)
	case x < -40:
		return 1
	default:
		return 1 / (1 + math.Exp(x))
	}
}

// FermiHalf returns the complete Fermi-Dirac integral of order 1/2,
// F_{1/2}(η) = (2/√π)∫₀^∞ √x/(1+exp(x−η))dx, using the Bednarczyk &
// Bednarczyk analytic approximation (accurate to ~0.4% for all η), the
// standard choice for semiclassical carrier statistics.
func FermiHalf(eta float64) float64 {
	a := math.Pow(eta, 4) + 50 + 33.6*eta*(1-0.68*math.Exp(-0.17*(eta+1)*(eta+1)))
	b := 1.0 / (math.Exp(-eta) + 3*math.SqrtPi/(4*math.Pow(a, 0.375)))
	return b
}

// LogisticDerivative returns −∂f/∂E of the Fermi function, the thermal
// broadening kernel (1/eV).
func LogisticDerivative(e, mu, kT float64) float64 {
	x := (e - mu) / (2 * kT)
	if x > 40 || x < -40 {
		return 0
	}
	c := math.Cosh(x)
	return 1 / (4 * kT * c * c)
}
