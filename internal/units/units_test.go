package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFermiLimits(t *testing.T) {
	kt := KT(300)
	if f := Fermi(-10, 0, kt); math.Abs(f-1) > 1e-12 {
		t.Fatalf("deep-below occupation %g, want 1", f)
	}
	if f := Fermi(10, 0, kt); f > 1e-12 {
		t.Fatalf("far-above occupation %g, want ~0", f)
	}
	if f := Fermi(0, 0, kt); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("at-mu occupation %g, want 0.5", f)
	}
}

func TestFermiSymmetry(t *testing.T) {
	// f(mu+x) + f(mu−x) = 1.
	f := func(x float64, tRaw uint8) bool {
		x = math.Mod(x, 5)
		kt := KT(float64(tRaw)*2 + 10)
		s := Fermi(0.3+x, 0.3, kt) + Fermi(0.3-x, 0.3, kt)
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFermiMonotone(t *testing.T) {
	kt := KT(300)
	prev := 2.0
	for e := -1.0; e <= 1.0; e += 0.01 {
		f := Fermi(e, 0, kt)
		// Non-increasing everywhere (the tails saturate in floating
		// point), strictly decreasing within a few kT of mu.
		if f > prev || (math.Abs(e) < 5*kt && f == prev) {
			t.Fatalf("Fermi function not decreasing at %g", e)
		}
		prev = f
	}
}

func TestFermiHalfLimits(t *testing.T) {
	// Non-degenerate limit: F½(η) → exp(η) for η ≪ 0.
	for _, eta := range []float64{-8, -5, -4} {
		got := FermiHalf(eta)
		want := math.Exp(eta)
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("F½(%g) = %g, want ≈ %g", eta, got, want)
		}
	}
	// Degenerate limit: F½(η) → (4/3√π)·η^{3/2} for η ≫ 0.
	for _, eta := range []float64{10, 20, 40} {
		got := FermiHalf(eta)
		want := 4 / (3 * math.SqrtPi) * math.Pow(eta, 1.5)
		if math.Abs(got-want)/want > 0.05 {
			t.Fatalf("F½(%g) = %g, want ≈ %g", eta, got, want)
		}
	}
}

func TestFermiHalfMonotone(t *testing.T) {
	prev := 0.0
	for eta := -10.0; eta <= 10; eta += 0.25 {
		v := FermiHalf(eta)
		if v <= prev {
			t.Fatalf("F½ not increasing at η=%g", eta)
		}
		prev = v
	}
}

func TestLogisticDerivative(t *testing.T) {
	kt := KT(300)
	// Peak value at E = mu is 1/(4kT).
	if d := LogisticDerivative(0.2, 0.2, kt); math.Abs(d-1/(4*kt)) > 1e-9 {
		t.Fatalf("thermal kernel peak %g, want %g", d, 1/(4*kt))
	}
	// Integral over energy is 1 (it is −∂f/∂E of a unit step).
	var integral float64
	de := 1e-4
	for e := -0.5; e <= 0.5; e += de {
		integral += LogisticDerivative(e, 0, kt) * de
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Fatalf("thermal kernel integrates to %g", integral)
	}
}

func TestConstantsConsistency(t *testing.T) {
	// e/h in A/eV: CurrentQuantum = e²/h / e... numerically e/h·e:
	// G0 = 2e²/h → CurrentQuantum should equal G0/2 in A/V units when
	// multiplied by 1V worth of energy window.
	if math.Abs(CurrentQuantum-ConductanceQuantum/2) > 1e-9 {
		t.Fatalf("CurrentQuantum %g inconsistent with G0/2 = %g",
			CurrentQuantum, ConductanceQuantum/2)
	}
	if math.Abs(KT(300)-0.025852) > 1e-4 {
		t.Fatalf("kT(300K) = %g", KT(300))
	}
}
