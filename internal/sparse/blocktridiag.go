package sparse

import (
	"fmt"

	"repro/internal/linalg"
)

// BlockTridiag is a complex block-tridiagonal matrix: the matrix of a
// device partitioned into principal layers 0..L-1 where layer i couples
// only to layers i−1 and i+1. Blocks may be rectangular when layer sizes
// differ.
//
//	⎡ D0  U0           ⎤
//	⎢ L0  D1  U1       ⎥
//	⎢     L1  D2  U2   ⎥
//	⎣         L2  D3   ⎦
//
// Diag[i] is n_i×n_i, Upper[i] is n_i×n_{i+1}, Lower[i] is n_{i+1}×n_i.
type BlockTridiag struct {
	Diag  []*linalg.Matrix
	Upper []*linalg.Matrix
	Lower []*linalg.Matrix
}

// NewBlockTridiag validates the block shapes and wraps them. Upper and
// Lower must have exactly one fewer block than Diag.
func NewBlockTridiag(diag, upper, lower []*linalg.Matrix) (*BlockTridiag, error) {
	l := len(diag)
	if l == 0 {
		return nil, fmt.Errorf("sparse: block-tridiagonal matrix needs at least one layer")
	}
	if len(upper) != l-1 || len(lower) != l-1 {
		return nil, fmt.Errorf("sparse: got %d diagonal, %d upper, %d lower blocks; want L, L-1, L-1",
			l, len(upper), len(lower))
	}
	for i, d := range diag {
		if d.Rows != d.Cols {
			return nil, fmt.Errorf("sparse: diagonal block %d is %dx%d, not square", i, d.Rows, d.Cols)
		}
	}
	for i := 0; i < l-1; i++ {
		ni, nj := diag[i].Rows, diag[i+1].Rows
		if upper[i].Rows != ni || upper[i].Cols != nj {
			return nil, fmt.Errorf("sparse: upper block %d is %dx%d, want %dx%d",
				i, upper[i].Rows, upper[i].Cols, ni, nj)
		}
		if lower[i].Rows != nj || lower[i].Cols != ni {
			return nil, fmt.Errorf("sparse: lower block %d is %dx%d, want %dx%d",
				i, lower[i].Rows, lower[i].Cols, nj, ni)
		}
	}
	return &BlockTridiag{Diag: diag, Upper: upper, Lower: lower}, nil
}

// Layers returns the number of principal layers.
func (m *BlockTridiag) Layers() int { return len(m.Diag) }

// LayerSize returns the orbital count of layer i.
func (m *BlockTridiag) LayerSize(i int) int { return m.Diag[i].Rows }

// N returns the total matrix order (sum of layer sizes).
func (m *BlockTridiag) N() int {
	n := 0
	for _, d := range m.Diag {
		n += d.Rows
	}
	return n
}

// Offsets returns the starting global row index of each layer plus a final
// sentinel equal to N().
func (m *BlockTridiag) Offsets() []int {
	off := make([]int, m.Layers()+1)
	for i, d := range m.Diag {
		off[i+1] = off[i] + d.Rows
	}
	return off
}

// Clone returns a deep copy of m.
func (m *BlockTridiag) Clone() *BlockTridiag {
	c := &BlockTridiag{
		Diag:  make([]*linalg.Matrix, len(m.Diag)),
		Upper: make([]*linalg.Matrix, len(m.Upper)),
		Lower: make([]*linalg.Matrix, len(m.Lower)),
	}
	for i, d := range m.Diag {
		c.Diag[i] = d.Clone()
	}
	for i := range m.Upper {
		c.Upper[i] = m.Upper[i].Clone()
		c.Lower[i] = m.Lower[i].Clone()
	}
	return c
}

// Dense expands m into a dense matrix (for tests and small systems).
func (m *BlockTridiag) Dense() *linalg.Matrix {
	off := m.Offsets()
	d := linalg.New(m.N(), m.N())
	for i, blk := range m.Diag {
		d.SetSubmatrix(off[i], off[i], blk)
	}
	for i := range m.Upper {
		d.SetSubmatrix(off[i], off[i+1], m.Upper[i])
		d.SetSubmatrix(off[i+1], off[i], m.Lower[i])
	}
	return d
}

// MulVec returns m·x for a global vector x.
func (m *BlockTridiag) MulVec(x []complex128) []complex128 {
	off := m.Offsets()
	if len(x) != off[len(off)-1] {
		panic("sparse: dimension mismatch in BlockTridiag.MulVec")
	}
	y := make([]complex128, len(x))
	l := m.Layers()
	for i := 0; i < l; i++ {
		xi := x[off[i]:off[i+1]]
		yi := m.Diag[i].MulVec(xi)
		copy(y[off[i]:off[i+1]], yi)
	}
	for i := 0; i < l-1; i++ {
		// Upper: layer i gains coupling to layer i+1.
		u := m.Upper[i].MulVec(x[off[i+1]:off[i+2]])
		for k, v := range u {
			y[off[i]+k] += v
		}
		// Lower: layer i+1 gains coupling to layer i.
		lo := m.Lower[i].MulVec(x[off[i]:off[i+1]])
		for k, v := range lo {
			y[off[i+1]+k] += v
		}
	}
	return y
}

// IsHermitian reports whether every diagonal block is Hermitian and every
// lower block is the adjoint of its upper partner, to within tol.
func (m *BlockTridiag) IsHermitian(tol float64) bool {
	for _, d := range m.Diag {
		if !d.IsHermitian(tol) {
			return false
		}
	}
	for i := range m.Upper {
		if !m.Lower[i].Equal(m.Upper[i].ConjTranspose(), tol) {
			return false
		}
	}
	return true
}

// ShiftedFromHermitian builds A = z·I − H for a Hermitian block-tridiagonal
// H, the open-boundary system matrix before self-energies are subtracted.
func ShiftedFromHermitian(h *BlockTridiag, z complex128) *BlockTridiag {
	a := &BlockTridiag{
		Diag:  make([]*linalg.Matrix, len(h.Diag)),
		Upper: make([]*linalg.Matrix, len(h.Upper)),
		Lower: make([]*linalg.Matrix, len(h.Lower)),
	}
	for i, d := range h.Diag {
		blk := linalg.New(d.Rows, d.Cols)
		linalg.ShiftedNegInto(blk, d, z)
		a.Diag[i] = blk
	}
	for i := range h.Upper {
		a.Upper[i] = h.Upper[i].Scale(-1)
		a.Lower[i] = h.Lower[i].Scale(-1)
	}
	return a
}

// ShiftedFromHermitianWS is ShiftedFromHermitian with every block checked
// out of ws: the per-solve open-system matrix of the transport kernels,
// valid only until ws is released. Callers mutate the diagonal blocks
// (self-energy subtraction) but must not let them escape the solve.
func ShiftedFromHermitianWS(h *BlockTridiag, z complex128, ws *linalg.Workspace) *BlockTridiag {
	a := &BlockTridiag{
		Diag:  make([]*linalg.Matrix, len(h.Diag)),
		Upper: make([]*linalg.Matrix, len(h.Upper)),
		Lower: make([]*linalg.Matrix, len(h.Lower)),
	}
	for i, d := range h.Diag {
		blk := ws.Get(d.Rows, d.Cols)
		linalg.ShiftedNegInto(blk, d, z)
		a.Diag[i] = blk
	}
	for i := range h.Upper {
		u, l := h.Upper[i], h.Lower[i]
		a.Upper[i] = ws.Get(u.Rows, u.Cols)
		a.Upper[i].AddScaled(u, -1)
		a.Lower[i] = ws.Get(l.Rows, l.Cols)
		a.Lower[i].AddScaled(l, -1)
	}
	return a
}

// AddToDiagBlock accumulates s into diagonal block i (used to subtract
// contact self-energies in place).
func (m *BlockTridiag) AddToDiagBlock(i int, s *linalg.Matrix) {
	m.Diag[i].AddInPlace(s)
}

// AddScaledToDiagBlock accumulates scale·s into diagonal block i without
// materializing the scaled copy — the self-energy subtraction pattern
// AddScaledToDiagBlock(i, sigma, -1) of the open-system assembly.
func (m *BlockTridiag) AddScaledToDiagBlock(i int, s *linalg.Matrix, scale complex128) {
	m.Diag[i].AddScaled(s, scale)
}

// CSR flattens the block-tridiagonal matrix into CSR form.
func (m *BlockTridiag) CSR() *CSR {
	off := m.Offsets()
	n := m.N()
	b := NewBuilder(n, n)
	for i, blk := range m.Diag {
		addDenseBlock(b, off[i], off[i], blk)
	}
	for i := range m.Upper {
		addDenseBlock(b, off[i], off[i+1], m.Upper[i])
		addDenseBlock(b, off[i+1], off[i], m.Lower[i])
	}
	return b.Build()
}

func addDenseBlock(b *Builder, r0, c0 int, blk *linalg.Matrix) {
	for i := 0; i < blk.Rows; i++ {
		for j := 0; j < blk.Cols; j++ {
			if v := blk.At(i, j); v != 0 {
				b.Add(r0+i, c0+j, v)
			}
		}
	}
}
