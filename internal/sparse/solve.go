package sparse

import (
	"fmt"

	"repro/internal/linalg"
)

// SolveBlocks solves M·X = B for a block right-hand side given per layer
// (rhs[i] is LayerSize(i)×k, possibly zero-filled), using the block Thomas
// algorithm: one forward elimination over the layer stack and one back
// substitution. This is the serial direct solver at the heart of the
// wave-function formalism; its cost is one block LU plus a handful of
// block products per layer, against the several products per layer of the
// full RGF pass.
func (m *BlockTridiag) SolveBlocks(rhs []*linalg.Matrix) ([]*linalg.Matrix, error) {
	f, err := m.FactorBTD()
	if err != nil {
		return nil, err
	}
	return f.SolveBlocks(rhs)
}

// BTDFactor is a reusable block-Thomas factorization of a block-
// tridiagonal matrix: the per-layer pivot factorizations and the
// eliminated coupling products are computed once, after which every
// SolveBlocks call costs only triangular solves and block products —
// the pattern behind shift-invert eigensolvers and repeated-RHS
// transport drivers.
type BTDFactor struct {
	m    *BlockTridiag
	facs []*linalg.LU
	// dU[i] caches d̃_i⁻¹·U_i for the forward elimination of the RHS.
	dU []*linalg.Matrix
}

// FactorBTD computes the reusable factorization.
func (m *BlockTridiag) FactorBTD() (*BTDFactor, error) {
	l := m.Layers()
	f := &BTDFactor{m: m, facs: make([]*linalg.LU, l), dU: make([]*linalg.Matrix, l-1)}
	var err error
	f.facs[0], err = linalg.Factor(m.Diag[0])
	if err != nil {
		return nil, fmt.Errorf("sparse: block Thomas pivot 0: %w", err)
	}
	for i := 1; i < l; i++ {
		// dU_{i-1} = d̃_{i-1}⁻¹·U_{i-1}
		f.dU[i-1] = linalg.New(m.Upper[i-1].Rows, m.Upper[i-1].Cols)
		f.facs[i-1].SolveInto(f.dU[i-1], m.Upper[i-1])
		// d̃_i = D_i − L_{i-1}·d̃_{i-1}⁻¹·U_{i-1}, accumulated straight into
		// the buffer that becomes the packed factor.
		di := m.Diag[i].Clone()
		linalg.GemmInto(di, -1, m.Lower[i-1], linalg.NoTrans, f.dU[i-1], linalg.NoTrans, 1)
		f.facs[i], err = linalg.FactorInPlace(di)
		if err != nil {
			return nil, fmt.Errorf("sparse: block Thomas pivot %d: %w", i, err)
		}
	}
	return f, nil
}

// SolveBlocks solves M·X = B against the stored factorization. The
// returned blocks are freshly allocated; the solve itself runs without
// temporaries (forward elimination and back substitution accumulate
// directly into the output blocks through the fused GEMM kernel).
func (f *BTDFactor) SolveBlocks(rhs []*linalg.Matrix) ([]*linalg.Matrix, error) {
	m := f.m
	l := m.Layers()
	if len(rhs) != l {
		return nil, fmt.Errorf("sparse: SolveBlocks got %d RHS blocks for %d layers", len(rhs), l)
	}
	k := rhs[0].Cols
	for i, b := range rhs {
		if b.Rows != m.LayerSize(i) || b.Cols != k {
			return nil, fmt.Errorf("sparse: RHS block %d is %dx%d, want %dx%d",
				i, b.Rows, b.Cols, m.LayerSize(i), k)
		}
	}
	// Forward elimination, with the eliminated RHS solved layer by layer:
	// y_i = d̃_i⁻¹·(b_i − L_{i-1}·y_{i-1}), held in the output slot.
	x := make([]*linalg.Matrix, l)
	x[0] = linalg.New(m.LayerSize(0), k)
	f.facs[0].SolveInto(x[0], rhs[0])
	for i := 1; i < l; i++ {
		x[i] = linalg.New(m.LayerSize(i), k)
		x[i].CopyFrom(rhs[i])
		linalg.GemmInto(x[i], -1, m.Lower[i-1], linalg.NoTrans, x[i-1], linalg.NoTrans, 1)
		f.facs[i].SolveInPlace(x[i])
	}
	// Back substitution: x_i = y_i − d̃_i⁻¹·U_i·x_{i+1}.
	for i := l - 2; i >= 0; i-- {
		linalg.GemmInto(x[i], -1, f.dU[i], linalg.NoTrans, x[i+1], linalg.NoTrans, 1)
	}
	return x, nil
}

// SolveVec solves M·x = b for a single flat vector in layer order.
func (f *BTDFactor) SolveVec(b []complex128) ([]complex128, error) {
	m := f.m
	off := m.Offsets()
	if len(b) != off[len(off)-1] {
		return nil, fmt.Errorf("sparse: SolveVec got %d entries for order %d", len(b), off[len(off)-1])
	}
	rhs := make([]*linalg.Matrix, m.Layers())
	for i := 0; i < m.Layers(); i++ {
		blk := linalg.New(m.LayerSize(i), 1)
		copy(blk.Data, b[off[i]:off[i+1]])
		rhs[i] = blk
	}
	x, err := f.SolveBlocks(rhs)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(b))
	for i := range x {
		copy(out[off[i]:off[i+1]], x[i].Data)
	}
	return out, nil
}
