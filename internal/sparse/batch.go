package sparse

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/perf"
)

// Panel-traffic observability of the batched solve path: a "load" is one
// panel of homologous per-energy blocks brought into play (one checkout
// per layer-block per batch), and each load is "reused" by the other
// width−1 batch elements that consume the same shared source block while
// it is hot. The counters ride perf.Snapshot onto the distributed wire
// like every other named counter.
var (
	panelLoads  = perf.GetCounter("panel-loads")
	panelReuses = perf.GetCounter("panel-reuses")
)

// countPanel records one panel checkout of the given batch width.
func countPanel(w int) {
	panelLoads.Add(1)
	if w > 1 {
		panelReuses.Add(int64(w - 1))
	}
}

// ShiftedBatchFromHermitianWS builds A_j = zs[j]·I − H for a batch of
// energies, advancing layer by layer so each Hamiltonian block is read
// once per batch while its width shifted copies are written into one
// contiguous panel. Element j is arithmetically identical to
// ShiftedFromHermitianWS(h, zs[j], ws): the same per-block kernels run on
// the same operands, only the iteration order (layer-major instead of
// energy-major) and the storage (panels instead of scattered workspace
// blocks) change. Like the width-1 form, the returned matrices are
// workspace scratch, valid only until ws is released.
func ShiftedBatchFromHermitianWS(h *BlockTridiag, zs []complex128, ws *linalg.Workspace) []*BlockTridiag {
	w := len(zs)
	as := make([]*BlockTridiag, w)
	for j := range as {
		as[j] = &BlockTridiag{
			Diag:  make([]*linalg.Matrix, len(h.Diag)),
			Upper: make([]*linalg.Matrix, len(h.Upper)),
			Lower: make([]*linalg.Matrix, len(h.Lower)),
		}
	}
	for i, d := range h.Diag {
		p := ws.GetPanel(w, d.Rows, d.Cols)
		countPanel(w)
		for j := 0; j < w; j++ {
			as[j].Diag[i] = p.Block(j)
		}
		// ShiftedNegInto fully overwrites, so the unzeroed panel is fine.
		linalg.BatchShiftedNegInto(p.Blocks(), d, zs)
	}
	for i := range h.Upper {
		u, lo := h.Upper[i], h.Lower[i]
		pu := ws.GetPanel(w, u.Rows, u.Cols)
		pu.Zero() // AddScaled accumulates: start from zero like Workspace.Get
		countPanel(w)
		for j := 0; j < w; j++ {
			as[j].Upper[i] = pu.Block(j)
		}
		linalg.BatchAddScaled(pu.Blocks(), u, -1)
		pl := ws.GetPanel(w, lo.Rows, lo.Cols)
		pl.Zero()
		countPanel(w)
		for j := 0; j < w; j++ {
			as[j].Lower[i] = pl.Block(j)
		}
		linalg.BatchAddScaled(pl.Blocks(), lo, -1)
	}
	return as
}

// SolveBlocksBatchWS solves the batch of same-shape block-tridiagonal
// systems as[j]·X_j = rhss[j] by the block Thomas algorithm, advancing
// every system one block-column at a time: all width factorizations of
// layer i, then all width eliminations of layer i, live in panel storage
// and are processed while the layer's working set is hot. Right-hand-side
// widths may differ per element (the ragged injection ranks of the
// wave-function formalism); those blocks come from plain workspace
// checkouts instead of panels.
//
// Element j runs the exact kernel sequence of as[j].SolveBlocks(rhss[j])
// — same factorizations, same triangular solves, same fused products on
// the same values, and therefore bitwise-identical solutions and flop
// counts. An element that fails (shape mismatch, singular pivot) gets its
// error in errs[j] with the width-1 error text, stops consuming arithmetic
// at the failing layer, and leaves the rest of the batch running.
//
// The returned solution blocks are workspace scratch, valid until ws is
// released; xs[j] is nil where errs[j] is set.
func SolveBlocksBatchWS(as []*BlockTridiag, rhss [][]*linalg.Matrix, ws *linalg.Workspace) (xs [][]*linalg.Matrix, errs []error) {
	w := len(as)
	xs = make([][]*linalg.Matrix, w)
	errs = make([]error, w)
	if w == 0 {
		return xs, errs
	}
	if len(rhss) != w {
		panic("sparse: batch width mismatch in SolveBlocksBatchWS")
	}
	l := as[0].Layers()
	alive := make([]bool, w)
	for j, m := range as {
		if m.Layers() != l || func() bool {
			for i := 0; i < l; i++ {
				if m.LayerSize(i) != as[0].LayerSize(i) {
					return true
				}
			}
			return false
		}() {
			errs[j] = fmt.Errorf("sparse: batch element %d does not match the batch layer shape", j)
			continue
		}
		alive[j] = true
	}

	// Factorization, layer-major (the FactorBTD recurrence across the
	// whole batch, one block-column at a time).
	facPanels := make([]*linalg.Panel, l)
	dUPanels := make([]*linalg.Panel, l-1)
	luAll := make([][]linalg.LU, l)
	sel := make([]*linalg.Matrix, w)
	defer func() {
		for i := range luAll {
			if luAll[i] != nil {
				linalg.BatchReleaseLU(luAll[i], ws)
			}
		}
		for _, p := range facPanels {
			if p != nil {
				ws.PutPanel(p)
			}
		}
		for _, p := range dUPanels {
			if p != nil {
				ws.PutPanel(p)
			}
		}
	}()
	factorLayer := func(i int) {
		ni := as[0].LayerSize(i)
		facPanels[i] = ws.GetPanel(w, ni, ni)
		countPanel(w)
		for j := 0; j < w; j++ {
			sel[j] = nil
			if !alive[j] {
				continue
			}
			blk := facPanels[i].Block(j)
			blk.CopyFrom(as[j].Diag[i])
			if i > 0 {
				linalg.VecGemmInto(blk, -1, as[j].Lower[i-1], linalg.NoTrans,
					dUPanels[i-1].Block(j), linalg.NoTrans, 1)
			}
			sel[j] = blk
		}
		lus, ferrs := linalg.BatchFactorInPlace(sel, ws)
		luAll[i] = lus
		for j := 0; j < w; j++ {
			if alive[j] && ferrs[j] != nil {
				errs[j] = fmt.Errorf("sparse: block Thomas pivot %d: %w", i, ferrs[j])
				alive[j] = false
			}
		}
	}
	factorLayer(0)
	for i := 1; i < l; i++ {
		ni := as[0].LayerSize(i)
		prev := as[0].LayerSize(i - 1)
		dUPanels[i-1] = ws.GetPanel(w, prev, ni)
		countPanel(w)
		for j := 0; j < w; j++ {
			if !alive[j] {
				continue
			}
			du := dUPanels[i-1].Block(j)
			luAll[i-1][j].VecSolveInto(du, as[j].Upper[i-1]) // d̃_{i-1}⁻¹·U_{i-1}
		}
		factorLayer(i)
	}

	// RHS validation, identical per element to the width-1 SolveBlocks.
	ks := make([]int, w)
	for j := 0; j < w; j++ {
		if !alive[j] {
			continue
		}
		rhs := rhss[j]
		if len(rhs) != l {
			errs[j] = fmt.Errorf("sparse: SolveBlocks got %d RHS blocks for %d layers", len(rhs), l)
			alive[j] = false
			continue
		}
		k := rhs[0].Cols
		for i, b := range rhs {
			if b.Rows != as[j].LayerSize(i) || b.Cols != k {
				errs[j] = fmt.Errorf("sparse: RHS block %d is %dx%d, want %dx%d",
					i, b.Rows, b.Cols, as[j].LayerSize(i), k)
				alive[j] = false
				break
			}
		}
		ks[j] = k
	}

	// Forward elimination of the RHS, layer-major across the batch. The
	// solution blocks are plain (zeroed) workspace checkouts because their
	// widths are ragged across the batch.
	for j := 0; j < w; j++ {
		if !alive[j] {
			continue
		}
		xs[j] = make([]*linalg.Matrix, l)
		x0 := ws.Get(as[j].LayerSize(0), ks[j])
		luAll[0][j].VecSolveInto(x0, rhss[j][0])
		xs[j][0] = x0
	}
	for i := 1; i < l; i++ {
		for j := 0; j < w; j++ {
			if !alive[j] {
				continue
			}
			xi := ws.Get(as[j].LayerSize(i), ks[j])
			xi.CopyFrom(rhss[j][i])
			linalg.VecGemmInto(xi, -1, as[j].Lower[i-1], linalg.NoTrans, xs[j][i-1], linalg.NoTrans, 1)
			luAll[i][j].VecSolveInto(xi, xi)
			xs[j][i] = xi
		}
	}
	// Back substitution, layer-major from the bottom up.
	for i := l - 2; i >= 0; i-- {
		for j := 0; j < w; j++ {
			if !alive[j] {
				continue
			}
			linalg.VecGemmInto(xs[j][i], -1, dUPanels[i].Block(j), linalg.NoTrans, xs[j][i+1], linalg.NoTrans, 1)
		}
	}
	for j := 0; j < w; j++ {
		if !alive[j] {
			xs[j] = nil
		}
	}
	return xs, errs
}
