// Package sparse provides the complex sparse-matrix types used by the
// transport kernels: a general compressed-sparse-row (CSR) matrix for
// Hamiltonian assembly and spectral estimates, and a block-tridiagonal
// matrix that captures the nearest-neighbor tight-binding structure —
// a device sliced into principal layers where layer i couples only to
// layers i±1 — which every open-boundary solver in this repository
// (RGF, wave-function, SplitSolve) exploits.
package sparse

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/perf"
)

// CSR is a complex matrix in compressed-sparse-row format.
type CSR struct {
	Rows, Cols int
	RowPtr     []int // length Rows+1
	ColIdx     []int // length nnz, column indices, ascending within a row
	Values     []complex128
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Values) }

// At returns element (i, j) by binary search within row i.
func (m *CSR) At(i, j int) complex128 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Values[k]
	}
	return 0
}

// MulVec returns m·x.
func (m *CSR) MulVec(x []complex128) []complex128 {
	if len(x) != m.Cols {
		panic("sparse: dimension mismatch in MulVec")
	}
	y := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
	perf.AddFlops(int64(m.NNZ()) * perf.FlopsCMulAdd)
	return y
}

// Dense expands m into a dense matrix (intended for tests and small blocks).
func (m *CSR) Dense() *linalg.Matrix {
	d := linalg.New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d.Set(i, m.ColIdx[k], m.Values[k])
		}
	}
	return d
}

// IsHermitian reports whether m equals its conjugate transpose to within tol.
func (m *CSR) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			d := m.Values[k] - conj(m.At(j, i))
			if abs2(d) > tol*tol {
				return false
			}
		}
	}
	return true
}

func conj(v complex128) complex128 { return complex(real(v), -imag(v)) }
func abs2(v complex128) float64    { return real(v)*real(v) + imag(v)*imag(v) }

// Builder accumulates triplets and assembles a CSR matrix. Duplicate
// entries at the same (row, col) are summed, which makes Hamiltonian
// assembly from per-bond contributions natural.
type Builder struct {
	rows, cols int
	entries    map[int64]complex128
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols, entries: make(map[int64]complex128)}
}

// Add accumulates v into entry (i, j).
func (b *Builder) Add(i, j int, v complex128) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.entries[int64(i)<<32|int64(uint32(j))] += v
}

// Build assembles the accumulated entries into a CSR matrix.
func (b *Builder) Build() *CSR {
	keys := make([]int64, 0, len(b.entries))
	for k, v := range b.entries {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, c int) bool { return keys[a] < keys[c] })
	m := &CSR{
		Rows:   b.rows,
		Cols:   b.cols,
		RowPtr: make([]int, b.rows+1),
		ColIdx: make([]int, len(keys)),
		Values: make([]complex128, len(keys)),
	}
	for idx, k := range keys {
		i := int(k >> 32)
		j := int(uint32(k))
		m.ColIdx[idx] = j
		m.Values[idx] = b.entries[k]
		m.RowPtr[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}
