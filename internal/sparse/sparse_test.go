package sparse

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randDense(rng *rand.Rand, r, c int) *linalg.Matrix {
	m := linalg.New(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return m
}

func TestBuilderBuildAndAt(t *testing.T) {
	b := NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(2, 1, 2i)
	b.Add(2, 1, 3) // duplicate accumulates
	b.Add(1, 2, -1)
	m := b.Build()
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if m.At(0, 0) != 1 || m.At(2, 1) != 3+2i || m.At(1, 2) != -1 {
		t.Fatal("CSR content mismatch")
	}
	if m.At(0, 1) != 0 {
		t.Fatal("missing entry should read as zero")
	}
}

func TestBuilderDropsCancelledEntries(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 5)
	b.Add(0, 1, -5)
	b.Add(1, 0, 0)
	m := b.Build()
	if m.NNZ() != 0 {
		t.Fatalf("cancelled entries still stored: NNZ = %d", m.NNZ())
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestCSRMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	b := NewBuilder(8, 6)
	for k := 0; k < 20; k++ {
		b.Add(rng.Intn(8), rng.Intn(6), complex(rng.Float64(), rng.Float64()))
	}
	m := b.Build()
	d := m.Dense()
	x := make([]complex128, 6)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	ys := m.MulVec(x)
	yd := d.MulVec(x)
	for i := range ys {
		if abs2(ys[i]-yd[i]) > 1e-24 {
			t.Fatalf("SpMV component %d: %v vs %v", i, ys[i], yd[i])
		}
	}
}

func TestCSRIsHermitian(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 2+1i)
	b.Add(1, 0, 2-1i)
	b.Add(1, 1, 3)
	if !b.Build().IsHermitian(1e-14) {
		t.Fatal("Hermitian CSR not detected")
	}
	b2 := NewBuilder(2, 2)
	b2.Add(0, 1, 1i)
	b2.Add(1, 0, 1i)
	if b2.Build().IsHermitian(1e-14) {
		t.Fatal("non-Hermitian CSR reported Hermitian")
	}
}

// buildRandomBTD assembles a random Hermitian block-tridiagonal matrix with
// the given layer sizes.
func buildRandomBTD(rng *rand.Rand, sizes []int) *BlockTridiag {
	l := len(sizes)
	diag := make([]*linalg.Matrix, l)
	upper := make([]*linalg.Matrix, l-1)
	lower := make([]*linalg.Matrix, l-1)
	for i, n := range sizes {
		a := randDense(rng, n, n)
		diag[i] = a.Add(a.ConjTranspose()).Scale(0.5)
	}
	for i := 0; i < l-1; i++ {
		upper[i] = randDense(rng, sizes[i], sizes[i+1])
		lower[i] = upper[i].ConjTranspose()
	}
	m, err := NewBlockTridiag(diag, upper, lower)
	if err != nil {
		panic(err)
	}
	return m
}

func TestBlockTridiagShapesValidated(t *testing.T) {
	d := []*linalg.Matrix{linalg.New(2, 2), linalg.New(3, 3)}
	good := []*linalg.Matrix{linalg.New(2, 3)}
	bad := []*linalg.Matrix{linalg.New(3, 3)}
	if _, err := NewBlockTridiag(d, good, []*linalg.Matrix{linalg.New(3, 2)}); err != nil {
		t.Fatalf("valid shapes rejected: %v", err)
	}
	if _, err := NewBlockTridiag(d, bad, []*linalg.Matrix{linalg.New(3, 2)}); err == nil {
		t.Fatal("invalid upper block accepted")
	}
	if _, err := NewBlockTridiag(d, good, good); err == nil {
		t.Fatal("invalid lower block accepted")
	}
	if _, err := NewBlockTridiag(nil, nil, nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestBlockTridiagDenseAndMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := buildRandomBTD(rng, []int{2, 3, 2, 4})
	if m.N() != 11 || m.Layers() != 4 {
		t.Fatalf("N=%d layers=%d", m.N(), m.Layers())
	}
	d := m.Dense()
	x := make([]complex128, m.N())
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	yb := m.MulVec(x)
	yd := d.MulVec(x)
	for i := range yb {
		if abs2(yb[i]-yd[i]) > 1e-22 {
			t.Fatalf("BTD MulVec component %d mismatch", i)
		}
	}
}

func TestBlockTridiagHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := buildRandomBTD(rng, []int{3, 3, 3})
	if !m.IsHermitian(1e-13) {
		t.Fatal("Hermitian BTD not detected")
	}
	m.Upper[0].Set(0, 0, m.Upper[0].At(0, 0)+1)
	if m.IsHermitian(1e-6) {
		t.Fatal("perturbed BTD still Hermitian")
	}
}

func TestShiftedFromHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	h := buildRandomBTD(rng, []int{2, 2})
	z := complex(0.7, 1e-3)
	a := ShiftedFromHermitian(h, z)
	want := linalg.Identity(h.N()).Scale(z).Sub(h.Dense())
	if !a.Dense().Equal(want, 1e-13) {
		t.Fatal("ShiftedFromHermitian != zI − H")
	}
}

func TestBlockTridiagCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	m := buildRandomBTD(rng, []int{2, 4, 3})
	if !m.CSR().Dense().Equal(m.Dense(), 1e-14) {
		t.Fatal("CSR flattening disagrees with dense expansion")
	}
}

func TestBlockTridiagCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	m := buildRandomBTD(rng, []int{2, 2})
	c := m.Clone()
	m.Diag[0].Set(0, 0, 999)
	if c.Diag[0].At(0, 0) == 999 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestBlockTridiagOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	m := buildRandomBTD(rng, []int{1, 5, 2})
	off := m.Offsets()
	want := []int{0, 1, 6, 8}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("Offsets = %v, want %v", off, want)
		}
	}
}

func TestQuickCSRDenseEquivalence(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		r := int(rRaw%6) + 1
		c := int(cRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(r, c)
		n := rng.Intn(3 * r * c)
		for k := 0; k < n; k++ {
			b.Add(rng.Intn(r), rng.Intn(c), complex(rng.NormFloat64(), rng.NormFloat64()))
		}
		m := b.Build()
		d := m.Dense()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if abs2(m.At(i, j)-d.At(i, j)) > 1e-24 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBTDHermitianPreservedByShift(t *testing.T) {
	// zI − H with real z must remain Hermitian; with complex z the
	// anti-Hermitian part is exactly Im(z)·I.
	f := func(seed int64, layersRaw uint8) bool {
		l := int(layersRaw%4) + 2
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, l)
		for i := range sizes {
			sizes[i] = rng.Intn(3) + 1
		}
		h := buildRandomBTD(rng, sizes)
		a := ShiftedFromHermitian(h, complex(rng.NormFloat64(), 0))
		return a.IsHermitian(1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
