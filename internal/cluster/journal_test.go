package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/perf"
)

// appendRecords writes n records with recognizable payloads through a
// fresh journal handle and closes it.
func appendRecords(t *testing.T, path string, lo, hi int, opts ...JournalOption) {
	t.Helper()
	j, err := OpenFileJournal(path, opts...)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	for i := lo; i < hi; i++ {
		if err := j.Append(TaskRecord{Index: i, Payload: []byte(fmt.Sprintf("payload-%d", i))}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func loadIndices(t *testing.T, path string) []int {
	t.Helper()
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	defer j.Close()
	recs, err := j.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var idx []int
	for _, r := range recs {
		idx = append(idx, r.Index)
	}
	return idx
}

// TestJournalTornTailRecovery kills a journal mid-record (by truncating
// the file inside the last line, as a crashed writer would leave it) and
// verifies the full recovery contract: the torn record is dropped, the
// intact prefix survives, and — critically — a record appended by the
// next process does not merge into the torn line and get destroyed too.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 5)

	// Truncate mid-record: cut the file 7 bytes into the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastLine := trimmed[bytes.LastIndexByte(trimmed, '\n')+1:]
	cut := len(data) - len(lastLine) - 1 + 7
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	// Reopen (which must repair the unterminated tail) and append one more.
	appendRecords(t, path, 5, 6)

	// Record 4 was torn and must stay lost; 0–3 and the new record 5 must
	// all survive intact.
	got := loadIndices(t, path)
	want := []int{0, 1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
}

// TestJournalTornTailEveryCut truncates at every byte offset inside the
// last record and asserts the invariant that matters for resume: recovery
// never loses an intact record and never resurrects the torn one, no
// matter where the crash landed.
func TestJournalTornTailEveryCut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1

	for cut := lastStart; cut < len(data); cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.journal")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		appendRecords(t, cutPath, 3, 4)
		got := loadIndices(t, cutPath)
		// Records 0 and 1 are intact; record 2 survives only at the final
		// offset (cut == len-1 strips just the newline but Load still
		// parses the complete JSON line after tail repair); record 3 must
		// always survive.
		want := []int{0, 1, 3}
		if cut == len(data)-1 {
			want = []int{0, 1, 2, 3}
		}
		if len(got) != len(want) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: recovered %v, want %v", cut, got, want)
			}
		}
	}
}

// TestJournalWithFsync exercises the fsync path end to end; correctness
// beyond "records survive and load" can't be asserted without crashing
// the kernel, but the option must at least not disturb the format.
func TestJournalWithFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 4, WithFsync())
	got := loadIndices(t, path)
	if len(got) != 4 {
		t.Fatalf("loaded %d records, want 4", len(got))
	}
	for i := 0; i < 4; i++ {
		if got[i] != i {
			t.Fatalf("loaded indices %v, want [0 1 2 3]", got)
		}
	}
}

// TestJournalHeaderRoundTrip: a fresh journal's header survives append
// traffic, Load skips it, and CheckHeader accepts the matching hash.
func TestJournalHeaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	const hash = "deadbeefcafe0123deadbeefcafe0123deadbeefcafe0123deadbeefcafe0123"
	if err := j.WriteHeader(Header{SpecHash: hash, Spec: []byte(`{"mode":"transmission"}`)}); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append(TaskRecord{Index: i, Payload: []byte(fmt.Sprintf("p%d", i))}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	h, err := j2.ReadHeader()
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if h == nil || h.SpecHash != hash {
		t.Fatalf("ReadHeader = %+v, want SpecHash %s", h, hash)
	}
	if string(h.Spec) != `{"mode":"transmission"}` {
		t.Fatalf("embedded spec = %s", h.Spec)
	}
	recs, err := j2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("Load returned %d records (header must not count), want 4", len(recs))
	}
	warned := false
	if err := j2.CheckHeader(hash, func(string, ...any) { warned = true }); err != nil {
		t.Fatalf("CheckHeader(matching): %v", err)
	}
	if warned {
		t.Fatal("CheckHeader warned on a matching header")
	}
}

// TestJournalHeaderMismatchRejected: resuming a journal written by a
// different spec must fail loudly.
func TestJournalHeaderMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	defer j.Close()
	if err := j.WriteHeader(Header{SpecHash: "aaaa"}); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	err = j.CheckHeader("bbbb", nil)
	if err == nil {
		t.Fatal("CheckHeader accepted a foreign-spec journal")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("different run spec")) {
		t.Fatalf("mismatch error %q does not name the cause", err)
	}
}

// TestJournalWithoutHeaderStillResumes is the backward-compat shim: a
// journal written before headers existed (PR ≤ 5 format, task records
// only) must still load and resume, with a warning rather than a
// failure — and old-format readers of the same bytes are unaffected.
func TestJournalWithoutHeaderStillResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.journal")
	appendRecords(t, path, 0, 6) // PR≤5 journals: records from line one
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	defer j.Close()
	h, err := j.ReadHeader()
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if h != nil {
		t.Fatalf("ReadHeader invented a header: %+v", h)
	}
	var warning string
	if err := j.CheckHeader("whatever", func(f string, a ...any) { warning = fmt.Sprintf(f, a...) }); err != nil {
		t.Fatalf("CheckHeader on headerless journal: %v", err)
	}
	if !bytes.Contains([]byte(warning), []byte("no spec header")) {
		t.Fatalf("warning %q does not explain the missing header", warning)
	}
	recs, err := j.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(recs) != 6 {
		t.Fatalf("Load returned %d records, want 6", len(recs))
	}
}

// TestJournalHeaderInvisibleToOldReader pins the forward-compat claim:
// a header line decoded as a TaskRecord has no digest, so a pre-header
// Load implementation (digest check only) would skip it — the explicit
// discriminator is an optimization, not load-bearing for correctness.
func TestJournalHeaderInvisibleToOldReader(t *testing.T) {
	line := []byte(`{"header":1,"specHash":"abc"}`)
	var rec TaskRecord
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatalf("unmarshal header as TaskRecord: %v", err)
	}
	if rec.Verify() {
		t.Fatal("header line passes TaskRecord.Verify — old readers would mistake it for a task")
	}
}

// TestJournalEpochLifecycle: a fresh journal is implicitly at epoch 1;
// each BumpEpoch persists and returns the next incarnation number, which
// survives reopen; epoch records are invisible to Load and to readers
// from before epochs existed.
func TestJournalEpochLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	if e, err := j.LatestEpoch(); err != nil || e != 1 {
		t.Fatalf("fresh LatestEpoch = %d, %v; want 1", e, err)
	}
	if e, err := j.BumpEpoch(); err != nil || e != 2 {
		t.Fatalf("first BumpEpoch = %d, %v; want 2", e, err)
	}
	if err := j.Append(TaskRecord{Index: 0, Payload: []byte("p0")}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if e, err := j.BumpEpoch(); err != nil || e != 3 {
		t.Fatalf("second BumpEpoch = %d, %v; want 3", e, err)
	}
	j.Close()

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if e, err := j2.LatestEpoch(); err != nil || e != 3 {
		t.Fatalf("reopened LatestEpoch = %d, %v; want 3", e, err)
	}
	recs, err := j2.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(recs) != 1 || recs[0].Index != 0 {
		t.Fatalf("Load sees %d records (want 1 task, epochs invisible)", len(recs))
	}
	// Old readers: an epoch line parsed as a TaskRecord must fail Verify.
	var rec TaskRecord
	if err := json.Unmarshal([]byte(`{"epoch":3}`), &rec); err != nil {
		t.Fatalf("unmarshal epoch as TaskRecord: %v", err)
	}
	if rec.Verify() {
		t.Fatal("epoch line passes TaskRecord.Verify — old readers would mistake it for a task")
	}
}

// TestJournalRunIDRoundTrip: the header's run ID survives reopen and is
// absent (not invented) on journals written without one.
func TestJournalRunIDRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	if err := j.WriteHeader(Header{SpecHash: "abc", RunID: "abc-0011"}); err != nil {
		t.Fatalf("WriteHeader: %v", err)
	}
	j.Close()
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	h, err := j2.ReadHeader()
	if err != nil || h == nil {
		t.Fatalf("ReadHeader: %+v, %v", h, err)
	}
	if h.RunID != "abc-0011" {
		t.Fatalf("RunID = %q, want abc-0011", h.RunID)
	}
}

// TestJournalTaskPerfRoundTrip: a record's perf delta survives the disk
// round trip and its absence leaves old-style records untouched.
func TestJournalTaskPerfRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	if err := j.Append(TaskRecord{Index: 4, Payload: []byte("p4"), Perf: &perf.Snapshot{Flops: 12345}}); err != nil {
		t.Fatalf("Append with perf: %v", err)
	}
	if err := j.Append(TaskRecord{Index: 5, Payload: []byte("p5")}); err != nil {
		t.Fatalf("Append without perf: %v", err)
	}
	j.Close()
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	recs, err := j2.Load()
	if err != nil || len(recs) != 2 {
		t.Fatalf("Load: %d recs, %v", len(recs), err)
	}
	if recs[0].Perf == nil || recs[0].Perf.Flops != 12345 {
		t.Fatalf("record 0 perf = %+v, want Flops 12345", recs[0].Perf)
	}
	if recs[1].Perf != nil {
		t.Fatalf("record 1 perf = %+v, want nil", recs[1].Perf)
	}
}
