package cluster

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendRecords writes n records with recognizable payloads through a
// fresh journal handle and closes it.
func appendRecords(t *testing.T, path string, lo, hi int, opts ...JournalOption) {
	t.Helper()
	j, err := OpenFileJournal(path, opts...)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	for i := lo; i < hi; i++ {
		if err := j.Append(TaskRecord{Index: i, Payload: []byte(fmt.Sprintf("payload-%d", i))}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func loadIndices(t *testing.T, path string) []int {
	t.Helper()
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("OpenFileJournal: %v", err)
	}
	defer j.Close()
	recs, err := j.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var idx []int
	for _, r := range recs {
		idx = append(idx, r.Index)
	}
	return idx
}

// TestJournalTornTailRecovery kills a journal mid-record (by truncating
// the file inside the last line, as a crashed writer would leave it) and
// verifies the full recovery contract: the torn record is dropped, the
// intact prefix survives, and — critically — a record appended by the
// next process does not merge into the torn line and get destroyed too.
func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 5)

	// Truncate mid-record: cut the file 7 bytes into the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastLine := trimmed[bytes.LastIndexByte(trimmed, '\n')+1:]
	cut := len(data) - len(lastLine) - 1 + 7
	if err := os.Truncate(path, int64(cut)); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	// Reopen (which must repair the unterminated tail) and append one more.
	appendRecords(t, path, 5, 6)

	// Record 4 was torn and must stay lost; 0–3 and the new record 5 must
	// all survive intact.
	got := loadIndices(t, path)
	want := []int{0, 1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
}

// TestJournalTornTailEveryCut truncates at every byte offset inside the
// last record and asserts the invariant that matters for resume: recovery
// never loses an intact record and never resurrects the torn one, no
// matter where the crash landed.
func TestJournalTornTailEveryCut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	trimmed := bytes.TrimSuffix(data, []byte("\n"))
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1

	for cut := lastStart; cut < len(data); cut++ {
		cutPath := filepath.Join(t.TempDir(), "cut.journal")
		if err := os.WriteFile(cutPath, data[:cut], 0o644); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
		appendRecords(t, cutPath, 3, 4)
		got := loadIndices(t, cutPath)
		// Records 0 and 1 are intact; record 2 survives only at the final
		// offset (cut == len-1 strips just the newline but Load still
		// parses the complete JSON line after tail repair); record 3 must
		// always survive.
		want := []int{0, 1, 3}
		if cut == len(data)-1 {
			want = []int{0, 1, 2, 3}
		}
		if len(got) != len(want) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cut %d: recovered %v, want %v", cut, got, want)
			}
		}
	}
}

// TestJournalWithFsync exercises the fsync path end to end; correctness
// beyond "records survive and load" can't be asserted without crashing
// the kernel, but the option must at least not disturb the format.
func TestJournalWithFsync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.journal")
	appendRecords(t, path, 0, 4, WithFsync())
	got := loadIndices(t, path)
	if len(got) != 4 {
		t.Fatalf("loaded %d records, want 4", len(got))
	}
	for i := 0; i < 4; i++ {
		if got[i] != i {
			t.Fatalf("loaded indices %v, want [0 1 2 3]", got)
		}
	}
}
