package cluster

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/resilience"
	"repro/internal/sched"
)

// sweepFixture is a deterministic stand-in for a (bias, k, E) sweep whose
// "observable" is a per-task float64 accumulated into a results slice —
// enough structure to assert bitwise-identical recovery.
type sweepFixture struct {
	nBias, nK, nE int
	mu            sync.Mutex
	results       []float64
}

func newFixture(nBias, nK, nE int) *sweepFixture {
	return &sweepFixture{nBias: nBias, nK: nK, nE: nE, results: make([]float64, nBias*nK*nE)}
}

func (f *sweepFixture) idx(t Task) int { return (t.Bias*f.nK+t.K)*f.nE + t.E }

// value is the deterministic per-task observable.
func (f *sweepFixture) value(t Task) float64 {
	i := f.idx(t)
	return math.Sin(float64(i)*0.7) + float64(t.Bias) - 0.25*float64(t.K)
}

func (f *sweepFixture) fn(_ context.Context, t Task) ([]byte, error) {
	v := f.value(t)
	f.mu.Lock()
	f.results[f.idx(t)] = v
	f.mu.Unlock()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return b[:], nil
}

func (f *sweepFixture) restore(t Task, payload []byte) error {
	if len(payload) != 8 {
		return errors.New("bad payload length")
	}
	f.results[f.idx(t)] = math.Float64frombits(binary.LittleEndian.Uint64(payload))
	return nil
}

func fastRetry(attempts int) resilience.Policy {
	return resilience.Policy{MaxAttempts: attempts, BaseDelay: 1, MaxDelay: 1}
}

// TestFaultDrillRetriesToCompletion is the first acceptance drill: with
// 10% injected task failures — mixed errors and panics — a full sweep
// completes via retries and reproduces the fault-free observables
// bitwise.
func TestFaultDrillRetriesToCompletion(t *testing.T) {
	clean := newFixture(2, 3, 40)
	if _, err := RunTasksResumable(context.Background(), 2, 3, 40, SweepOptions{}, clean.fn); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	inj := &resilience.Injector{Seed: 2024, Rate: 0.1}
	faulty := 0
	for i := 0; i < 2*3*40; i++ {
		if inj.FaultFor(i) != resilience.FaultNone {
			faulty++
		}
	}
	if faulty == 0 {
		t.Fatal("drill has no faulty tasks; pick a different seed")
	}

	drilled := newFixture(2, 3, 40)
	rep, err := RunTasksResumable(context.Background(), 2, 3, 40, SweepOptions{
		Pool:     sched.New(4),
		Retry:    fastRetry(3),
		Injector: inj,
	}, drilled.fn)
	if err != nil {
		t.Fatalf("drilled run did not survive 10%% faults: %v", err)
	}
	if rep.Retries < faulty {
		t.Fatalf("report counts %d retries for %d faulty tasks", rep.Retries, faulty)
	}
	if rep.Completed != rep.Total {
		t.Fatalf("completed %d/%d", rep.Completed, rep.Total)
	}
	for i := range clean.results {
		if clean.results[i] != drilled.results[i] {
			t.Fatalf("observable %d differs: %v vs %v", i, clean.results[i], drilled.results[i])
		}
	}
}

// TestKillAndResumeBitwiseIdentical is the second acceptance drill: fault
// injection plus a mid-sweep kill; resuming from the journal reruns only
// the unfinished tasks and the final observables match an uninterrupted
// fault-free run bit for bit.
func TestKillAndResumeBitwiseIdentical(t *testing.T) {
	const nBias, nK, nE = 2, 2, 30
	total := nBias * nK * nE
	clean := newFixture(nBias, nK, nE)
	if _, err := RunTasksResumable(context.Background(), nBias, nK, nE, SweepOptions{}, clean.fn); err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	inj := &resilience.Injector{Seed: 7, Rate: 0.1}

	// First run: killed (context canceled) once half the sweep completed.
	j1, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	first := newFixture(nBias, nK, nE)
	_, err = RunTasksResumable(ctx, nBias, nK, nE, SweepOptions{
		Pool:     sched.New(4),
		Journal:  j1,
		Restore:  first.restore,
		Retry:    fastRetry(3),
		Injector: inj,
		OnProgress: func(done, tot int) {
			if done >= tot/2 {
				cancel()
			}
		},
	}, first.fn)
	cancel()
	j1.Close()
	if err == nil {
		t.Fatal("killed run reported success")
	}

	// Second run: resume from the journal with the same injection drill.
	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := newFixture(nBias, nK, nE)
	rep, err := RunTasksResumable(context.Background(), nBias, nK, nE, SweepOptions{
		Pool:     sched.New(4),
		Journal:  j2,
		Restore:  resumed.restore,
		Retry:    fastRetry(3),
		Injector: inj,
	}, resumed.fn)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Restored == 0 {
		t.Fatal("resume restored nothing — the kill left no checkpoint")
	}
	if rep.Restored+rep.Completed != total {
		t.Fatalf("restored %d + completed %d != total %d", rep.Restored, rep.Completed, total)
	}
	if rep.Completed == 0 {
		t.Fatal("resume had no work left; kill came too late to exercise restart")
	}
	for i := range clean.results {
		if clean.results[i] != resumed.results[i] {
			t.Fatalf("observable %d differs after resume: %v vs %v", i, clean.results[i], resumed.results[i])
		}
	}
}

// TestQuarantineDegradesGracefully: tasks whose faults never heal are set
// aside after the retry budget, the sweep completes, and the quarantined
// set names exactly the faulty tasks.
func TestQuarantineDegradesGracefully(t *testing.T) {
	const nBias, nK, nE = 1, 2, 50
	inj := &resilience.Injector{Seed: 31, Rate: 0.08, FailuresPerTask: 1 << 20} // hard faults
	f := newFixture(nBias, nK, nE)
	rep, err := RunTasksResumable(context.Background(), nBias, nK, nE, SweepOptions{
		Pool:       sched.New(4),
		Retry:      fastRetry(2),
		Injector:   inj,
		Quarantine: true,
	}, f.fn)
	if err != nil {
		t.Fatalf("quarantined sweep failed outright: %v", err)
	}
	want := make(map[int]bool)
	for i := 0; i < nBias*nK*nE; i++ {
		if inj.FaultFor(i) != resilience.FaultNone {
			want[i] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("no hard faults injected; pick a different seed")
	}
	got := rep.QuarantinedSet(nK, nE)
	if len(got) != len(want) {
		t.Fatalf("quarantined %d tasks, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i] {
			t.Fatalf("faulty task %d missing from quarantine set", i)
		}
	}
	if rep.CompletedTasks() != rep.Total {
		t.Fatalf("accounting: %d of %d", rep.CompletedTasks(), rep.Total)
	}
	// Healthy observables are untouched by their quarantined neighbors.
	for i := range f.results {
		if want[i] {
			continue
		}
		if f.results[i] != f.value(taskAt(i, nK, nE)) {
			t.Fatalf("surviving observable %d corrupted", i)
		}
	}
}

// TestQuarantineBudgetCapsLoss: a sweep losing more than the configured
// fraction must fail rather than silently renormalize away its grid.
func TestQuarantineBudgetCapsLoss(t *testing.T) {
	inj := &resilience.Injector{Seed: 5, Rate: 1, FailuresPerTask: 1 << 20, Modes: []resilience.Fault{resilience.FaultError}}
	f := newFixture(1, 1, 40)
	_, err := RunTasksResumable(context.Background(), 1, 1, 40, SweepOptions{
		Pool:              sched.New(2),
		Retry:             fastRetry(2),
		Injector:          inj,
		Quarantine:        true,
		MaxQuarantineFrac: 0.1,
	}, f.fn)
	if err == nil {
		t.Fatal("sweep losing 100% of its tasks passed a 10% quarantine budget")
	}
}

// TestResumableWithoutRetriesSurfacesPanicError: the safety net under the
// retry layer — a panicking task fails the sweep as a typed error, not a
// crash.
func TestResumableWithoutRetriesSurfacesPanicError(t *testing.T) {
	inj := &resilience.Injector{Seed: 3, Rate: 1, Modes: []resilience.Fault{resilience.FaultPanic}}
	f := newFixture(1, 1, 8)
	_, err := RunTasksResumable(context.Background(), 1, 1, 8, SweepOptions{
		Pool:     sched.New(2),
		Injector: inj,
	}, f.fn)
	if err == nil {
		t.Fatal("panicking sweep reported success")
	}
	if _, ok := resilience.AsPanicError(err); !ok {
		t.Fatalf("panic not preserved in %v", err)
	}
}

func TestFileJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(TaskRecord{Index: i, Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// Simulate a writer killed mid-line plus a digest-corrupted record.
	fh, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	fh.WriteString(`{"idx":9,"payload":"AA==","sha":"deadbeef"}` + "\n")
	fh.WriteString(`{"idx":10,"payl`) // torn tail
	fh.Close()

	j2, err := OpenFileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recs, err := j2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("loaded %d records, want the 5 intact ones", len(recs))
	}
	for i, rec := range recs {
		if rec.Index != i || !rec.Verify() {
			t.Fatalf("record %d mangled: %+v", i, rec)
		}
	}
}

func TestMemJournalRoundTrip(t *testing.T) {
	j := &MemJournal{}
	if err := j.Append(TaskRecord{Index: 2, Payload: []byte("xy")}); err != nil {
		t.Fatal(err)
	}
	recs, err := j.Load()
	if err != nil || len(recs) != 1 || recs[0].Index != 2 || !recs[0].Verify() {
		t.Fatalf("round trip: %v %v", recs, err)
	}
	if j.Len() != 1 {
		t.Fatalf("Len = %d", j.Len())
	}
}

// TestResumableRejectsOutOfRangeRecords: records from a journal written
// for a different sweep shape must not crash or pollute the run.
func TestResumableRejectsOutOfRangeRecords(t *testing.T) {
	j := &MemJournal{}
	j.Append(TaskRecord{Index: -4, Payload: []byte{0, 0, 0, 0, 0, 0, 0, 0}})
	j.Append(TaskRecord{Index: 999, Payload: []byte{0, 0, 0, 0, 0, 0, 0, 0}})
	f := newFixture(1, 1, 4)
	rep, err := RunTasksResumable(context.Background(), 1, 1, 4, SweepOptions{
		Journal: j,
		Restore: f.restore,
	}, f.fn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 0 || rep.Completed != 4 {
		t.Fatalf("foreign records restored: %+v", rep)
	}
}
