package cluster

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// See resumable.go for the fault-tolerant variant (RunTasksResumable) with
// checkpoint/restart, retries, and quarantine.

// Task identifies one independent work item of the multi-level sweep.
type Task struct {
	// Bias, K, E index the bias point, transverse momentum point, and
	// energy point.
	Bias, K, E int
}

// TaskAt maps a flat task index to sweep coordinates — the inverse of the
// bias·nK·nE + k·nE + E layout RunTasks iterates in. Exported so the
// distributed engine (internal/distrib), which ships flat indices over
// the wire, reconstructs the same coordinates the local runner uses.
func TaskAt(idx, nK, nE int) Task { return taskAt(idx, nK, nE) }

// RunTasks executes fn for every (bias, k, E) task on the given worker
// pool — the real (shared-memory) counterpart of the distributed
// decomposition modeled by Predict. Each task must write only to its own
// output slot. A nil pool runs on a private GOMAXPROCS-sized one. The
// first error (by task order, so failures are deterministic) cancels the
// in-flight siblings through ctx and is returned after all running tasks
// have drained.
func RunTasks(ctx context.Context, nBias, nK, nE int, pool *sched.Pool, fn func(context.Context, Task) error) error {
	if nBias < 1 || nK < 1 || nE < 1 {
		return fmt.Errorf("cluster: task counts must be positive")
	}
	if pool == nil {
		pool = sched.New(0)
	}
	total := nBias * nK * nE
	err := pool.ForEach(ctx, "sweep", total, func(ctx context.Context, idx int) error {
		return fn(ctx, taskAt(idx, nK, nE))
	})
	return wrapTaskErr(err, nK, nE)
}
