package cluster

import (
	"fmt"
	"runtime"
	"sync"
)

// Task identifies one independent work item of the multi-level sweep.
type Task struct {
	// Bias, K, E index the bias point, transverse momentum point, and
	// energy point.
	Bias, K, E int
}

// RunTasks executes fn for every (bias, k, E) task on a bounded worker
// pool — the real (shared-memory) counterpart of the distributed
// decomposition modeled by Predict. Each task must write only to its own
// output slot; the runner guarantees all tasks complete before returning
// and surfaces the first error encountered (by task order, so failures
// are deterministic too).
func RunTasks(nBias, nK, nE, workers int, fn func(Task) error) error {
	if nBias < 1 || nK < 1 || nE < 1 {
		return fmt.Errorf("cluster: task counts must be positive")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := nBias * nK * nE
	errs := make([]error, total)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for idx := 0; idx < total; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			t := Task{
				Bias: idx / (nK * nE),
				K:    (idx / nE) % nK,
				E:    idx % nE,
			}
			errs[idx] = fn(t)
		}(idx)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: task %d (bias %d, k %d, E %d): %w",
				idx, idx/(nK*nE), (idx/nE)%nK, idx%nE, err)
		}
	}
	return nil
}
