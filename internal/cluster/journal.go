package cluster

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/perf"
)

// TaskRecord is one completed task in the sweep journal: its flat index,
// the serialized result payload the task produced, and the payload's
// SHA-256 digest. The digest makes each record self-verifying, so a
// journal written by a crashed run can be trusted record by record — a
// corrupt or truncated record is simply treated as "not done" and the
// task reruns.
type TaskRecord struct {
	// Index is the flat task index (see RunTasks for the layout).
	Index int `json:"idx"`
	// Payload is the task's serialized result, restored on resume.
	Payload []byte `json:"payload,omitempty"`
	// Digest is the lowercase hex SHA-256 of Payload.
	Digest string `json:"sha,omitempty"`
	// Perf optionally records the perf delta the task's execution cost
	// (distributed coordinators persist it so a restarted coordinator's
	// merged flop total stays exactly equal to the serial run's; serial
	// journals leave it nil). It rides outside Digest, which keeps old
	// journals valid — a damaged Perf at worst skews counters, never
	// observables.
	Perf *perf.Snapshot `json:"perf,omitempty"`
	// Shard records which coordinator scheduling shard owned the task when
	// the result was committed (sharded coordinators only; zero for serial
	// journals and single-shard runs). Provenance only — like Perf it rides
	// outside Digest, so journals from before sharding stay valid and a
	// resume with a different -shards simply re-derives the partition.
	Shard int `json:"shard,omitempty"`
}

// digestOf returns the canonical payload digest.
func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// Header is the journal's typed header record: it identifies the run
// spec that wrote the journal, so a -resume against a journal written
// by a different spec fails loudly instead of silently merging
// incompatible results. Journals from before headers existed (PR ≤ 5)
// simply have none — readers treat that as "unverifiable", not an error.
type Header struct {
	// SpecHash is the content hash of the writing run's spec
	// (spec.RunSpec.SpecHash — the result-determining subset).
	SpecHash string `json:"specHash"`
	// RunID names this run instance (spec hash prefix + random suffix).
	// It outlives coordinator incarnations: a restarted coordinator
	// serves the same RunID at a higher epoch, which is how rejoining
	// workers tell "my coordinator came back" from "a different run
	// reused the address". Empty for journals written before failover
	// existed — fencing is skipped, exactly like a missing header.
	RunID string `json:"runID,omitempty"`
	// Spec optionally embeds the full canonical spec for forensics, so
	// a journal is self-describing without the original command line.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// headerRecord is the on-disk line shape of a Header. The "header"
// field doubles as a format version and as the discriminator that keeps
// header lines out of Load's task records. (Old readers skip header
// lines too, without knowing about them: unmarshaled as a TaskRecord
// the line has no digest, so Verify rejects it.)
type headerRecord struct {
	Header   int             `json:"header"`
	SpecHash string          `json:"specHash,omitempty"`
	RunID    string          `json:"runID,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
}

// headerVersion is the header format this package writes.
const headerVersion = 1

// epochRecord marks the start of a coordinator incarnation in the
// journal. Like the header, it is invisible to task-record readers (no
// digest → Verify rejects it as a TaskRecord) and to pre-failover
// versions of this package, so journals stay fully backward-compatible.
type epochRecord struct {
	Epoch uint64 `json:"epoch"`
}

// Verify reports whether the record's digest matches its payload.
func (r TaskRecord) Verify() bool { return r.Digest == digestOf(r.Payload) }

// Checkpointer persists completed-task records of a sweep so an
// interrupted run can resume without redoing finished work. Append must be
// safe for concurrent use from many workers and must not return until the
// record is handed to the underlying medium (a crashed process loses at
// most what the OS had not flushed; those tasks rerun on resume, which is
// always safe because records are idempotent).
type Checkpointer interface {
	// Append records one completed task.
	Append(rec TaskRecord) error
	// Load returns the records persisted so far, tolerating a corrupt or
	// truncated tail (such records are dropped, not errors).
	Load() ([]TaskRecord, error)
	// Close flushes and releases the journal.
	Close() error
}

// FileJournal is an append-only JSON-lines checkpoint file: one TaskRecord
// per line. The format is deliberately dumb — append-only, self-verifying
// per record, order-insensitive, duplicate-tolerant — so that a process
// killed mid-write leaves at worst one garbage tail line, which Load
// skips. It is the single-node stand-in for the parallel checkpoint
// streams extreme-scale transport codes write per communicator.
type FileJournal struct {
	path string
	sync bool

	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// JournalOption configures OpenFileJournal.
type JournalOption func(*FileJournal)

// WithFsync makes every Append force the record to stable storage
// (fsync) before returning. The default (flush-to-OS only) survives a
// process crash but can lose the unsynced tail on an OS or power crash —
// acceptable for a worker, whose lost tasks simply rerun, but not for a
// distributed coordinator, whose journal is the cluster-wide source of
// truth: a coordinator restarted after a machine crash must trust every
// record it acknowledged to the workers.
func WithFsync() JournalOption {
	return func(j *FileJournal) { j.sync = true }
}

// OpenFileJournal opens (creating if needed) the journal at path for
// appending. Existing records are preserved; call Load to read them. If
// the previous writer was killed mid-record, the torn trailing line is
// terminated so that records appended by this process start on a fresh
// line instead of merging into the torn one (which would corrupt them).
func OpenFileJournal(path string, opts ...JournalOption) (*FileJournal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: open journal: %w", err)
	}
	j := &FileJournal{path: path, f: f, w: bufio.NewWriter(f)}
	for _, o := range opts {
		o(j)
	}
	if err := j.repairTail(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// repairTail terminates an unterminated trailing line (the torn tail of a
// writer killed mid-record). Load already ignores the torn record; the
// repair only guarantees the *next* record is not appended onto the same
// line, which would destroy it too.
func (j *FileJournal) repairTail() error {
	st, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("cluster: journal stat: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	var b [1]byte
	if _, err := j.f.ReadAt(b[:], st.Size()-1); err != nil {
		return fmt.Errorf("cluster: journal tail: %w", err)
	}
	if b[0] == '\n' {
		return nil
	}
	if _, err := j.f.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("cluster: journal tail repair: %w", err)
	}
	return nil
}

// Path returns the journal file path.
func (j *FileJournal) Path() string { return j.path }

// WriteHeader appends the typed header record identifying the run spec
// this journal belongs to. Call it once, right after creating a fresh
// journal; resumed journals already carry theirs. Like Append, the
// record is flushed (and fsync'd when configured) before returning.
func (j *FileJournal) WriteHeader(h Header) error {
	line, err := json.Marshal(headerRecord{Header: headerVersion, SpecHash: h.SpecHash, RunID: h.RunID, Spec: h.Spec})
	if err != nil {
		return fmt.Errorf("cluster: journal header marshal: %w", err)
	}
	return j.appendLine(line, "header")
}

// appendLine writes one pre-marshaled metadata line under the journal
// lock with the same flush/fsync discipline as Append.
func (j *FileJournal) appendLine(line []byte, what string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("cluster: journal %s is closed", j.path)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("cluster: journal %s: %w", what, err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("cluster: journal flush: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("cluster: journal fsync: %w", err)
		}
	}
	return nil
}

// LatestEpoch returns the highest coordinator-incarnation epoch recorded
// in the journal, or 1 when none is — a journal with no epoch records
// was written by a single (first) incarnation.
func (j *FileJournal) LatestEpoch() (uint64, error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return 1, nil
		}
		return 0, fmt.Errorf("cluster: read journal: %w", err)
	}
	defer f.Close()
	latest := uint64(1)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var er epochRecord
		if err := json.Unmarshal(line, &er); err == nil && er.Epoch > latest {
			latest = er.Epoch
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("cluster: scan journal: %w", err)
	}
	return latest, nil
}

// BumpEpoch persists the start of a new coordinator incarnation and
// returns its epoch number (latest recorded + 1; the first bump on a
// fresh journal therefore returns 2 — epoch 1 is the implicit first
// incarnation). The record is fsync'd under WithFsync, so a worker can
// never be welcomed into an epoch the journal might forget.
func (j *FileJournal) BumpEpoch() (uint64, error) {
	latest, err := j.LatestEpoch()
	if err != nil {
		return 0, err
	}
	next := latest + 1
	line, err := json.Marshal(epochRecord{Epoch: next})
	if err != nil {
		return 0, fmt.Errorf("cluster: journal epoch marshal: %w", err)
	}
	if err := j.appendLine(line, "epoch"); err != nil {
		return 0, err
	}
	return next, nil
}

// ReadHeader returns the journal's header record, or nil when the file
// has none — either an empty fresh journal or one written before
// headers existed. Malformed lines are skipped the same way Load skips
// them.
func (j *FileJournal) ReadHeader() (*Header, error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cluster: read journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hr headerRecord
		if err := json.Unmarshal(line, &hr); err != nil || hr.Header == 0 {
			continue
		}
		return &Header{SpecHash: hr.SpecHash, RunID: hr.RunID, Spec: hr.Spec}, nil
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: scan journal: %w", err)
	}
	return nil, nil
}

// CheckHeader verifies that the journal was written by the run spec
// identified by specHash. A mismatch is an error — resuming would merge
// results computed under a different device/grid/solver configuration.
// A journal without a header (written by an older version) cannot be
// verified; that degrades to a warning through warnf (when non-nil) so
// pre-header journals keep resuming.
func (j *FileJournal) CheckHeader(specHash string, warnf func(format string, args ...any)) error {
	h, err := j.ReadHeader()
	if err != nil {
		return err
	}
	if h == nil {
		if warnf != nil {
			warnf("journal %s has no spec header (written before run specs existed); cannot verify it matches this run", j.path)
		}
		return nil
	}
	if h.SpecHash != specHash {
		return fmt.Errorf("cluster: journal %s was written by a different run spec (journal %.16s…, this run %.16s…); resuming would merge incompatible results — remove the journal or rerun with the original spec",
			j.path, h.SpecHash, specHash)
	}
	return nil
}

// / Append implements Checkpointer: one JSON line per record, flushed to the
// OS before returning so a process crash cannot lose an acknowledged
// record (an OS crash can lose the unsynced tail; affected tasks rerun).
func (j *FileJournal) Append(rec TaskRecord) error {
	if rec.Digest == "" {
		rec.Digest = digestOf(rec.Payload)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("cluster: journal marshal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("cluster: journal %s is closed", j.path)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("cluster: journal append: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("cluster: journal flush: %w", err)
	}
	if j.sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("cluster: journal fsync: %w", err)
		}
	}
	return nil
}

// Load implements Checkpointer: it reads every well-formed, digest-valid
// record from the file, silently dropping malformed lines (the torn tail
// of a killed writer) and records whose digest does not match.
func (j *FileJournal) Load() ([]TaskRecord, error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cluster: read journal: %w", err)
	}
	defer f.Close()
	var recs []TaskRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hr headerRecord
		if err := json.Unmarshal(line, &hr); err == nil && hr.Header != 0 {
			continue // the header is metadata, not a task
		}
		var rec TaskRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn tail or foreign garbage: rerun those tasks
		}
		if !rec.Verify() {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: scan journal: %w", err)
	}
	return recs, nil
}

// Close implements Checkpointer.
func (j *FileJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f, j.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}

// MemJournal is an in-memory Checkpointer for tests and for callers that
// want resume-within-process semantics without touching disk.
type MemJournal struct {
	mu   sync.Mutex
	recs []TaskRecord
}

// Append implements Checkpointer.
func (j *MemJournal) Append(rec TaskRecord) error {
	if rec.Digest == "" {
		rec.Digest = digestOf(rec.Payload)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, rec)
	return nil
}

// Load implements Checkpointer.
func (j *MemJournal) Load() ([]TaskRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TaskRecord, len(j.recs))
	copy(out, j.recs)
	return out, nil
}

// Close implements Checkpointer.
func (j *MemJournal) Close() error { return nil }

// Len returns the number of records appended so far.
func (j *MemJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}
