package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Tail incrementally reads the task records of a journal file as they
// are appended — the streaming face of FileJournal that the job
// service's SSE endpoint follows. Each Poll returns the digest-valid
// records appended since the previous Poll, in file order, skipping
// header/epoch metadata and malformed lines exactly like Load.
//
// The reader is deliberately stateless about the writer: it reopens the
// file on every Poll (cheap at streaming cadence, and immune to the
// writer rotating file descriptors), and it only ever advances past
// complete, newline-terminated lines — a torn tail the writer is still
// mid-append on is re-read whole on the next Poll, so no record can be
// half-seen. A missing file is "nothing yet", not an error: a job's
// journal is created a moment after the job is admitted.
//
// Tail is not safe for concurrent use; give each stream its own.
type Tail struct {
	path string
	off  int64
	// r is the scratch read buffer, reused across Polls (Reset onto each
	// freshly opened file). A long-lived SSE stream polls for the life of
	// the job; allocating a fresh 64 KiB buffer per poll was pure churn.
	r *bufio.Reader
}

// NewTail returns a tail reader starting at the head of the journal.
func NewTail(path string) *Tail { return &Tail{path: path} }

// Offset returns the byte offset of the next unread line.
func (t *Tail) Offset() int64 { return t.off }

// Poll returns the verified task records appended since the last Poll.
// An empty batch means no complete new records — poll again later.
func (t *Tail) Poll() ([]TaskRecord, error) {
	f, err := os.Open(t.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("cluster: tail journal: %w", err)
	}
	defer f.Close()
	if _, err := f.Seek(t.off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("cluster: tail seek: %w", err)
	}

	var recs []TaskRecord
	if t.r == nil {
		t.r = bufio.NewReaderSize(f, 1<<16)
	} else {
		t.r.Reset(f)
	}
	r := t.r
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			// A partial line without its newline is the writer's in-flight
			// append (or a torn tail a resume will repair); leave the offset
			// at its start so the completed line is read next time.
			if err == io.EOF {
				return recs, nil
			}
			return recs, fmt.Errorf("cluster: tail read: %w", err)
		}
		t.off += int64(len(line))
		line = line[:len(line)-1] // strip '\n'
		if len(line) == 0 {
			continue
		}
		var hr headerRecord
		if err := json.Unmarshal(line, &hr); err == nil && hr.Header != 0 {
			continue // header metadata, not a task
		}
		var rec TaskRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // epoch record, repaired torn tail, or foreign garbage
		}
		if !rec.Verify() {
			continue
		}
		recs = append(recs, rec)
	}
}
