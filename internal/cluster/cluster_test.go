package cluster

import (
	"context"
	"math"
	"repro/internal/sched"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// flagship is a Jaguar-scale workload: a full I-V sweep of a large
// nanowire FET (the paper's production scenario).
func flagship() Workload {
	return Workload{
		NBias: 16, NK: 21, NE: 1024,
		NLayers: 140, BlockSize: 480, RHSWidth: 480,
		SelfEnergyIterations: 30,
		EnergyCostCV:         0.1,
		CouplingRank:         120,
	}
}

func small() Workload {
	return Workload{
		NBias: 2, NK: 3, NE: 16,
		NLayers: 12, BlockSize: 8, RHSWidth: 8,
		SelfEnergyIterations: 20,
	}
}

func TestWorkloadValidate(t *testing.T) {
	w := small()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := w
	bad.NE = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero energy points")
	}
	bad = w
	bad.NLayers = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted single-layer device")
	}
}

func TestAutoDecomposeSaturatesLevels(t *testing.T) {
	w := small() // 2×3×16 tasks, 12 layers
	d, err := AutoDecompose(2*3*16, w)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bias != 2 || d.Momentum != 3 || d.Energy != 16 || d.Domains != 1 {
		t.Fatalf("decomposition %v did not saturate the cheap levels first", d)
	}
	// With more cores than tasks, spatial domains absorb the rest.
	d2, err := AutoDecompose(2*3*16*4, w)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Domains != 4 {
		t.Fatalf("excess cores not spent on domains: %v", d2)
	}
	// Never exceeds the budget.
	if d2.Cores() > 2*3*16*4 {
		t.Fatalf("decomposition %v exceeds its core budget", d2)
	}
}

func TestPredictBasicInvariants(t *testing.T) {
	m := Jaguar()
	w := flagship()
	for _, cores := range []int{12, 1200, 12000, 120000} {
		r, err := m.PredictAuto(w, cores)
		if err != nil {
			t.Fatalf("%d cores: %v", cores, err)
		}
		if r.WallTime <= 0 {
			t.Fatalf("%d cores: non-positive wall time", cores)
		}
		if r.Efficiency <= 0 || r.Efficiency > 1+1e-9 {
			t.Fatalf("%d cores: efficiency %g outside (0, 1]", cores, r.Efficiency)
		}
		peak := float64(r.CoresUsed) * m.PeakFlopsPerCore
		if r.SustainedFlops > peak {
			t.Fatalf("%d cores: sustained %g exceeds peak %g", cores, r.SustainedFlops, peak)
		}
		// Breakdown must reassemble the wall time.
		if math.Abs(r.Breakdown.Total()-r.WallTime) > 1e-6*r.WallTime {
			t.Fatalf("%d cores: breakdown %g != wall %g", cores, r.Breakdown.Total(), r.WallTime)
		}
	}
}

func TestStrongScalingShape(t *testing.T) {
	m := Jaguar()
	w := flagship()
	counts := []int{1344, 5376, 21504, 86016, 221400}
	reports, err := m.StrongScaling(w, counts)
	if err != nil {
		t.Fatal(err)
	}
	// Wall time must decrease monotonically with core count.
	for i := 1; i < len(reports); i++ {
		if reports[i].WallTime >= reports[i-1].WallTime {
			t.Fatalf("no speedup from %d to %d cores: %g vs %g s",
				counts[i-1], counts[i], reports[i-1].WallTime, reports[i].WallTime)
		}
	}
	// Efficiency must roll off at scale (the paper's curves bend once the
	// embarrassing levels saturate and domain overheads appear).
	if reports[len(reports)-1].Efficiency >= reports[0].Efficiency {
		t.Fatal("efficiency did not roll off at scale")
	}
	// The flagship point: sustained performance at 221,400 cores must be
	// petaflop-class — the 1.44 PFlop/s headline within modeling slack.
	last := reports[len(reports)-1]
	if last.SustainedFlops < 0.7e15 || last.SustainedFlops > 2.5e15 {
		t.Fatalf("221,400-core sustained %.3g Flop/s not petaflop-class", last.SustainedFlops)
	}
}

func TestDomainsOnlyAmdahl(t *testing.T) {
	// With a single (bias,k,E) task, all parallelism must come from
	// domains, whose reduced system caps the speedup (Amdahl).
	m := Jaguar()
	w := flagship()
	w.NBias, w.NK, w.NE = 1, 1, 1
	base, err := m.Predict(w, Decomposition{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	prevSpeedup := 0.0
	sat := false
	for _, p := range []int{2, 4, 8, 16, 32, 64, 128} {
		if p > w.NLayers {
			break
		}
		r, err := m.Predict(w, Decomposition{1, 1, 1, p})
		if err != nil {
			t.Fatal(err)
		}
		s := r.Speedup(base)
		if s < prevSpeedup*0.5 {
			sat = true // strong saturation/regression appears
		}
		prevSpeedup = s
	}
	// Speedup at the largest domain count must be visibly sublinear.
	rMax, err := m.Predict(w, Decomposition{1, 1, 1, 128})
	if err != nil {
		t.Fatal(err)
	}
	if rMax.Speedup(base) > 128*0.7 {
		t.Fatalf("domain-level speedup %g at P=128 is implausibly linear", rMax.Speedup(base))
	}
	_ = sat
}

func TestCommunicationMatters(t *testing.T) {
	// A zero-latency, infinite-bandwidth machine must predict a shorter
	// wall time for a domain-decomposed run.
	w := flagship()
	w.NBias, w.NK, w.NE = 1, 1, 4
	m := Jaguar()
	fast := m
	fast.Latency = 0
	fast.Bandwidth = 1e15
	d := Decomposition{1, 1, 4, 16}
	slow, err := m.Predict(w, d)
	if err != nil {
		t.Fatal(err)
	}
	quick0, err := fast.Predict(w, d)
	if err != nil {
		t.Fatal(err)
	}
	if quick0.WallTime >= slow.WallTime {
		t.Fatal("removing communication cost did not reduce wall time")
	}
	if slow.Breakdown.Communication <= 0 {
		t.Fatal("communication phase missing from breakdown")
	}
}

func TestPredictValidation(t *testing.T) {
	m := Jaguar()
	w := small()
	if _, err := m.Predict(w, Decomposition{0, 1, 1, 1}); err == nil {
		t.Fatal("accepted zero-level decomposition")
	}
	if _, err := m.Predict(w, Decomposition{3, 1, 1, 1}); err == nil {
		t.Fatal("accepted bias level above task count")
	}
	if _, err := m.Predict(w, Decomposition{1, 1, 1, 20}); err == nil {
		t.Fatal("accepted more domains than layers")
	}
	huge := Decomposition{2, 3, 16, 12}
	m2 := m
	m2.TotalCores = 100
	if _, err := m2.Predict(w, huge); err == nil {
		t.Fatal("accepted decomposition beyond machine size")
	}
}

func TestSplitSolveCostCrossover(t *testing.T) {
	// The reduced-system cost grows as P³; past some P it dominates and
	// per-solve time rises again — the crossover the F3 experiment shows.
	w := flagship()
	m := Jaguar()
	rate := m.SustainedFlopsPerCore()
	timeAt := func(p int) float64 {
		ss, err := w.SplitSolve(p)
		if err != nil {
			t.Fatal(err)
		}
		return (float64(ss.CriticalFlops) + float64(ss.ReducedFlops)) / rate
	}
	t2 := timeAt(2)
	t8 := timeAt(8)
	t128 := timeAt(128)
	if t8 >= t2 {
		t.Fatalf("moderate decomposition not beneficial: t(8)=%g ≥ t(2)=%g", t8, t2)
	}
	if t128 <= t8 {
		t.Fatalf("no reduced-system crossover: t(128)=%g ≤ t(8)=%g", t128, t8)
	}
}

func TestRunTasksCoversAllAndIsOrdered(t *testing.T) {
	const nb, nk, ne = 2, 3, 5
	var count atomic.Int64
	seen := make([]atomic.Bool, nb*nk*ne)
	err := RunTasks(context.Background(), nb, nk, ne, sched.New(4), func(_ context.Context, task Task) error {
		idx := (task.Bias*nk+task.K)*ne + task.E
		if seen[idx].Swap(true) {
			t.Errorf("task %v executed twice", task)
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != nb*nk*ne {
		t.Fatalf("executed %d tasks, want %d", count.Load(), nb*nk*ne)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("task %d never executed", i)
		}
	}
}

func TestRunTasksPropagatesError(t *testing.T) {
	err := RunTasks(context.Background(), 1, 1, 4, sched.New(2), func(_ context.Context, task Task) error {
		if task.E == 2 {
			return errTest
		}
		return nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
}

var errTest = errDummy{}

type errDummy struct{}

func (errDummy) Error() string { return "dummy" }

func TestQuickAutoDecomposeBudget(t *testing.T) {
	w := flagship()
	f := func(coresRaw uint32) bool {
		cores := int(coresRaw%500000) + 1
		d, err := AutoDecompose(cores, w)
		if err != nil {
			return false
		}
		return d.Cores() <= cores && d.Validate(w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateBlockSolve(t *testing.T) {
	n, err := CalibrateBlockSolve(func() error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("no-op calibration measured %d flops", n)
	}
}

func TestAutoDecomposeSingleCore(t *testing.T) {
	w := Workload{NBias: 4, NK: 3, NE: 16, NLayers: 10, BlockSize: 8, RHSWidth: 8, SelfEnergyIterations: 5}
	d, err := AutoDecompose(1, w)
	if err != nil {
		t.Fatal(err)
	}
	if d != (Decomposition{Bias: 1, Momentum: 1, Energy: 1, Domains: 1}) {
		t.Fatalf("cores=1 gave %v, want all-serial", d)
	}
	if d.Cores() != 1 {
		t.Fatalf("Cores() = %d", d.Cores())
	}
}

func TestAutoDecomposeCoresExceedTasks(t *testing.T) {
	w := Workload{NBias: 2, NK: 3, NE: 4, NLayers: 5, BlockSize: 8, RHSWidth: 8, SelfEnergyIterations: 5}
	// Far more cores than bias×k×E×layers: every level must saturate at
	// its task count and never exceed it.
	d, err := AutoDecompose(1_000_000, w)
	if err != nil {
		t.Fatal(err)
	}
	want := Decomposition{Bias: 2, Momentum: 3, Energy: 4, Domains: 5}
	if d != want {
		t.Fatalf("got %v, want fully saturated %v", d, want)
	}
	if err := d.Validate(w); err != nil {
		t.Fatalf("saturated decomposition invalid: %v", err)
	}
}

func TestAutoDecomposeNonDivisibleCores(t *testing.T) {
	w := Workload{NBias: 2, NK: 2, NE: 100, NLayers: 20, BlockSize: 8, RHSWidth: 8, SelfEnergyIterations: 5}
	for _, cores := range []int{3, 7, 11, 13, 97} {
		d, err := AutoDecompose(cores, w)
		if err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
		if d.Cores() > cores {
			t.Fatalf("cores=%d: decomposition %v uses %d cores", cores, d, d.Cores())
		}
		if err := d.Validate(w); err != nil {
			t.Fatalf("cores=%d: %v", cores, err)
		}
	}
	// A prime budget smaller than NBias goes entirely to the bias level.
	d, err := AutoDecompose(7, Workload{NBias: 16, NK: 2, NE: 4, NLayers: 5, BlockSize: 8, RHSWidth: 8, SelfEnergyIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Bias != 7 || d.Momentum != 1 || d.Energy != 1 || d.Domains != 1 {
		t.Fatalf("prime budget split oddly: %v", d)
	}
}

func TestAutoDecomposeInvalidInputs(t *testing.T) {
	w := Workload{NBias: 2, NK: 2, NE: 4, NLayers: 5, BlockSize: 8, RHSWidth: 8, SelfEnergyIterations: 5}
	if _, err := AutoDecompose(0, w); err == nil {
		t.Fatal("cores=0 accepted")
	}
	if _, err := AutoDecompose(-5, w); err == nil {
		t.Fatal("negative cores accepted")
	}
	if _, err := AutoDecompose(4, Workload{}); err == nil {
		t.Fatal("invalid workload accepted")
	}
}

func TestPredictEnergyImbalance(t *testing.T) {
	base := Workload{
		NBias: 2, NK: 2, NE: 64, NLayers: 12, BlockSize: 16, RHSWidth: 16,
		SelfEnergyIterations: 5,
	}
	m := Jaguar()
	d := Decomposition{Bias: 2, Momentum: 2, Energy: 16, Domains: 1}

	uniform, err := m.Predict(base, d)
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Breakdown.Imbalance != 0 {
		t.Fatalf("CV=0 with divisible groups predicted imbalance %g", uniform.Breakdown.Imbalance)
	}

	hetero := base
	hetero.EnergyCostCV = 0.3
	spread, err := m.Predict(hetero, d)
	if err != nil {
		t.Fatal(err)
	}
	if spread.Breakdown.Imbalance <= 0 {
		t.Fatalf("CV=0.3 predicted no imbalance")
	}
	if spread.WallTime <= uniform.WallTime {
		t.Fatalf("heterogeneous points did not slow the sweep: %g vs %g",
			spread.WallTime, uniform.WallTime)
	}
	if spread.Efficiency >= uniform.Efficiency {
		t.Fatalf("imbalance did not cost efficiency: %g vs %g",
			spread.Efficiency, uniform.Efficiency)
	}

	// CV only bites when the energy level is actually split (g > 1).
	serial := Decomposition{Bias: 2, Momentum: 2, Energy: 1, Domains: 1}
	su, err := m.Predict(base, serial)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := m.Predict(hetero, serial)
	if err != nil {
		t.Fatal(err)
	}
	if su.WallTime != sh.WallTime {
		t.Fatalf("CV changed wall time with a single energy group: %g vs %g", su.WallTime, sh.WallTime)
	}
}
