package cluster

import (
	"fmt"
	"math"
)

// Decomposition assigns core groups to the four parallelism levels of the
// simulator: bias points × transverse momentum × energy points × spatial
// (SplitSolve) domains. The total core count is the product.
type Decomposition struct {
	Bias, Momentum, Energy, Domains int
}

// Cores returns the number of cores the decomposition occupies.
func (d Decomposition) Cores() int { return d.Bias * d.Momentum * d.Energy * d.Domains }

// String implements fmt.Stringer.
func (d Decomposition) String() string {
	return fmt.Sprintf("%d bias × %d k × %d E × %d domains = %d cores",
		d.Bias, d.Momentum, d.Energy, d.Domains, d.Cores())
}

// Validate reports structural errors against a workload.
func (d Decomposition) Validate(w Workload) error {
	if d.Bias < 1 || d.Momentum < 1 || d.Energy < 1 || d.Domains < 1 {
		return fmt.Errorf("cluster: decomposition levels must be positive, got %v", d)
	}
	if d.Bias > w.NBias || d.Momentum > w.NK || d.Energy > w.NE {
		return fmt.Errorf("cluster: decomposition %v exceeds workload task counts (%d, %d, %d)",
			d, w.NBias, w.NK, w.NE)
	}
	if d.Domains > w.NLayers {
		return fmt.Errorf("cluster: %d domains exceed %d layers", d.Domains, w.NLayers)
	}
	return nil
}

// AutoDecompose chooses a decomposition for the given core budget,
// saturating the embarrassingly parallel levels first (bias, then
// momentum, then energy) and spending leftover cores on spatial domains —
// the strategy the paper's multi-level scheme uses, since domain
// parallelism is the only level that pays communication and Schur
// overhead.
func AutoDecompose(cores int, w Workload) (Decomposition, error) {
	if err := w.Validate(); err != nil {
		return Decomposition{}, err
	}
	if cores < 1 {
		return Decomposition{}, fmt.Errorf("cluster: need at least one core")
	}
	d := Decomposition{Bias: 1, Momentum: 1, Energy: 1, Domains: 1}
	rem := cores
	take := func(limit int) int {
		if rem <= 1 {
			return 1
		}
		n := rem
		if n > limit {
			n = limit
		}
		rem /= n
		return n
	}
	d.Bias = take(w.NBias)
	d.Momentum = take(w.NK)
	d.Energy = take(w.NE)
	d.Domains = take(w.NLayers)
	return d, nil
}

// PhaseBreakdown splits a predicted wall time into its components
// (seconds).
type PhaseBreakdown struct {
	// SelfEnergy is the contact surface-GF decimation time.
	SelfEnergy float64
	// Solve is the domain-parallel factorization/substitution time.
	Solve float64
	// Reduced is the serial Schur-complement interface solve of SplitSolve.
	Reduced float64
	// Communication is the interface message time.
	Communication float64
	// Imbalance is time lost to uneven task-to-group assignment at the
	// embarrassingly parallel levels.
	Imbalance float64
}

// Total returns the summed wall time.
func (p PhaseBreakdown) Total() float64 {
	return p.SelfEnergy + p.Solve + p.Reduced + p.Communication + p.Imbalance
}

// Report is the outcome of a performance prediction.
type Report struct {
	Machine        string
	Decomposition  Decomposition
	CoresUsed      int
	WallTime       float64 // seconds
	SustainedFlops float64 // useful flop/s
	Efficiency     float64 // sustained / (cores × per-core sustained)
	Breakdown      PhaseBreakdown
}

// Predict models the wall time and sustained performance of running
// workload w with decomposition d on machine m. Sustained Flop/s counts
// only the algorithmically useful flops of the serial algorithm, so
// parallel overheads (spike columns, reduced system, replication) lower —
// never inflate — the reported rate, as in the paper's methodology.
func (m MachineModel) Predict(w Workload, d Decomposition) (Report, error) {
	if err := m.Validate(); err != nil {
		return Report{}, err
	}
	if err := w.Validate(); err != nil {
		return Report{}, err
	}
	if err := d.Validate(w); err != nil {
		return Report{}, err
	}
	if d.Cores() > m.TotalCores {
		return Report{}, fmt.Errorf("cluster: %v exceeds the %d cores of %s", d, m.TotalCores, m.Name)
	}
	rate := m.SustainedFlopsPerCore()

	// Rounds of task execution at the embarrassingly parallel levels.
	rounds := float64(ceilDiv(w.NBias, d.Bias)) *
		float64(ceilDiv(w.NK, d.Momentum)) *
		float64(ceilDiv(w.NE, d.Energy))
	idealRounds := float64(w.Tasks()) / float64(d.Bias*d.Momentum*d.Energy)
	// Heterogeneous energy points: the slowest of g groups averaging m
	// points each runs ≈ (1 + cv·√(2·ln g / m)) over the mean — the
	// balls-in-bins tail that bends the paper's curves once groups shrink
	// to a handful of points.
	if w.EnergyCostCV > 0 && d.Energy > 1 {
		g := float64(d.Energy)
		mPts := float64(ceilDiv(w.NE, d.Energy))
		rounds *= 1 + w.EnergyCostCV*math.Sqrt(2*math.Log(g)/mPts)
	}

	ss, err := w.SplitSolve(d.Domains)
	if err != nil {
		return Report{}, err
	}
	tSE := float64(w.SelfEnergyFlops()) / rate
	tSolve := float64(ss.CriticalFlops) / rate
	tReduced := float64(ss.ReducedFlops) / rate
	tComm := float64(ss.Messages) * (m.Latency + float64(ss.BytesPerMessage)/m.Bandwidth)

	perTask := tSE + tSolve + tReduced + tComm
	wall := rounds * perTask
	// Sweep-level collectives: the observables (transmission, charge) are
	// reduced across all task groups once per sweep — a log-depth
	// allreduce of the layer-resolved charge vector.
	var allreduce float64
	if groups := d.Bias * d.Momentum * d.Energy; groups > 1 {
		vecBytes := 16 * float64(w.NLayers) * float64(w.BlockSize)
		allreduce = math.Log2(float64(groups)) * (m.Latency + vecBytes/m.Bandwidth)
		wall += allreduce
	}
	breakdown := PhaseBreakdown{
		SelfEnergy:    idealRounds * tSE,
		Solve:         idealRounds * tSolve,
		Reduced:       idealRounds * tReduced,
		Communication: idealRounds*tComm + allreduce,
		Imbalance:     (rounds - idealRounds) * perTask,
	}
	sustained := float64(w.UsefulFlops()) / wall
	eff := sustained / (float64(d.Cores()) * rate)
	return Report{
		Machine:        m.Name,
		Decomposition:  d,
		CoresUsed:      d.Cores(),
		WallTime:       wall,
		SustainedFlops: sustained,
		Efficiency:     eff,
		Breakdown:      breakdown,
	}, nil
}

// PredictAuto composes AutoDecompose and Predict.
func (m MachineModel) PredictAuto(w Workload, cores int) (Report, error) {
	d, err := AutoDecompose(cores, w)
	if err != nil {
		return Report{}, err
	}
	return m.Predict(w, d)
}

// StrongScaling sweeps core counts for a fixed workload, returning one
// report per count — the raw series behind the paper-style strong-scaling
// figure.
func (m MachineModel) StrongScaling(w Workload, coreCounts []int) ([]Report, error) {
	reports := make([]Report, 0, len(coreCounts))
	for _, c := range coreCounts {
		r, err := m.PredictAuto(w, c)
		if err != nil {
			return nil, fmt.Errorf("cluster: %d cores: %w", c, err)
		}
		reports = append(reports, r)
	}
	return reports, nil
}

// Speedup returns t(ref)/t(this) given a reference report.
func (r Report) Speedup(ref Report) float64 {
	if r.WallTime == 0 {
		return math.Inf(1)
	}
	return ref.WallTime / r.WallTime
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
