package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/resilience"
	"repro/internal/sched"
)

// SweepFunc runs one (bias, k, E) task and returns its result serialized
// as an opaque payload. The payload is what the journal persists and what
// Restore receives on resume, so it must capture everything the caller
// needs to reconstruct the task's contribution to the observables —
// typically a few float64s (a transmission value, a charge column). It
// must be a deterministic function of the task for resumed sweeps to be
// bitwise-identical to uninterrupted ones.
type SweepFunc func(ctx context.Context, t Task) ([]byte, error)

// RestoreFunc reinstates a completed task's result from its journaled
// payload. It runs serially before the sweep starts.
type RestoreFunc func(t Task, payload []byte) error

// BatchFunc solves a group of same-(bias,k) tasks in one batched call,
// returning payloads and errors positionally: payloads[i] is valid exactly
// where errs[i] is nil. Each element must be the deterministic result the
// SweepFunc would have produced for ts[i] alone — batching is an executor
// choice, not an observable one.
type BatchFunc func(ctx context.Context, ts []Task) ([][]byte, []error)

// SweepOptions configures RunTasksResumable. The zero value degrades to
// plain RunTasks semantics: no journal, no retries, no injection, fail on
// first error.
type SweepOptions struct {
	// Pool supplies the worker budget (nil: a private GOMAXPROCS pool).
	Pool *sched.Pool
	// Journal, when non-nil, records every completed task and is consulted
	// at startup to skip tasks a previous run already finished.
	Journal Checkpointer
	// Restore reinstates journaled results. Required when Journal is set
	// and the caller accumulates results outside the journal.
	Restore RestoreFunc
	// Retry is the per-task retry policy (zero value: single attempt).
	Retry resilience.Policy
	// Injector, when non-nil, deterministically perturbs tasks — the
	// reproducible failure-drill hook.
	Injector *resilience.Injector
	// Quarantine enables graceful degradation: a task that fails past its
	// retry budget (or permanently, e.g. a non-finite observable) is set
	// aside and the sweep continues; the quarantined set is reported so
	// the caller can renormalize its integrals over the surviving points.
	Quarantine bool
	// MaxQuarantineFrac caps the quarantined fraction of the sweep;
	// exceeding it fails the run (a sweep that loses that much of its
	// grid is not salvageable by renormalization). <= 0 means 0.25.
	MaxQuarantineFrac float64
	// OnProgress, when non-nil, observes completion: done counts both
	// restored and newly finished tasks. It must be cheap and
	// thread-safe; quarantined tasks count as done.
	OnProgress func(done, total int)
	// BatchWidth groups runs of consecutive unfinished same-(bias,k) tasks
	// into batches of up to this width and hands each group to Batch for a
	// single first attempt. ≤ 1 (or a nil Batch) schedules per task —
	// exactly the classic path.
	BatchWidth int
	// Batch, with BatchWidth > 1, is the batched first-attempt solver.
	// Retries of failed elements fall back to the per-task SweepFunc, so
	// every fault-tolerance guarantee (injection, retry classification,
	// quarantine, journaling) is per task regardless of batching.
	Batch BatchFunc
}

// SweepReport summarizes a resumable sweep.
type SweepReport struct {
	// Total is the task count of the full sweep.
	Total int
	// Restored tasks were skipped because the journal already held their
	// verified results.
	Restored int
	// Completed tasks ran (successfully) in this invocation.
	Completed int
	// Retries is the number of extra attempts spent beyond first tries.
	Retries int
	// Quarantined lists the tasks abandoned after exhausting retries,
	// sorted by flat index. Empty unless SweepOptions.Quarantine is set.
	Quarantined []Task
}

// QuarantinedSet returns the quarantined tasks keyed by flat index
// (bias·nK·nE + k·nE + E layout, matching RunTasks).
func (r *SweepReport) QuarantinedSet(nK, nE int) map[int]bool {
	set := make(map[int]bool, len(r.Quarantined))
	for _, t := range r.Quarantined {
		set[(t.Bias*nK+t.K)*nE+t.E] = true
	}
	return set
}

// taskAt maps a flat index to sweep coordinates (inverse of the RunTasks
// layout).
func taskAt(idx, nK, nE int) Task {
	return Task{Bias: idx / (nK * nE), K: (idx / nE) % nK, E: idx % nE}
}

// groupTaskError pins a failure inside a batched group to its member's
// flat task index: the scheduler's own task index counts groups, not
// tasks, when the sweep runs batched.
type groupTaskError struct {
	idx int
	err error
}

func (e *groupTaskError) Error() string { return e.err.Error() }

func (e *groupTaskError) Unwrap() error { return e.err }

// wrapTaskErr rewrites a sched.TaskError into sweep coordinates.
func wrapTaskErr(err error, nK, nE int) error {
	if te, ok := sched.AsTaskError(err); ok {
		idx, inner := te.Index, te.Err
		var ge *groupTaskError
		if errors.As(te.Err, &ge) {
			idx, inner = ge.idx, ge.err
		}
		t := taskAt(idx, nK, nE)
		return fmt.Errorf("cluster: task %d (bias %d, k %d, E %d): %w",
			idx, t.Bias, t.K, t.E, inner)
	}
	return err
}

// RunTasksResumable is the fault-tolerant sweep engine: RunTasks plus
// checkpoint/restart, per-task retry with backoff, panic isolation,
// deterministic fault injection, and optional quarantine of unsalvageable
// points.
//
// Execution of one task: injected fault (if drilling) → fn → journal
// append, all under the retry policy; a panic anywhere inside is recovered
// into a *resilience.PanicError and retried like an ordinary transient
// error. On startup every verified journal record marks its task done and
// replays its payload through Restore, so a rerun after a crash performs
// only the unfinished work — and because payloads capture the results
// exactly, the resumed observables are bitwise-identical to an
// uninterrupted run.
//
// The returned report is valid (and meaningful) even when err != nil: it
// describes how far the sweep got.
func RunTasksResumable(ctx context.Context, nBias, nK, nE int, opts SweepOptions, fn SweepFunc) (*SweepReport, error) {
	if nBias < 1 || nK < 1 || nE < 1 {
		return nil, fmt.Errorf("cluster: task counts must be positive")
	}
	total := nBias * nK * nE
	rep := &SweepReport{Total: total}

	done := make([]bool, total)
	if opts.Journal != nil {
		recs, err := opts.Journal.Load()
		if err != nil {
			return rep, fmt.Errorf("cluster: resume: %w", err)
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= total || done[rec.Index] {
				continue
			}
			if opts.Restore != nil {
				if err := opts.Restore(taskAt(rec.Index, nK, nE), rec.Payload); err != nil {
					return rep, fmt.Errorf("cluster: restore task %d: %w", rec.Index, err)
				}
			}
			done[rec.Index] = true
			rep.Restored++
		}
	}

	maxQuarantine := total
	if opts.Quarantine {
		frac := opts.MaxQuarantineFrac
		if frac <= 0 {
			frac = 0.25
		}
		if frac < 1 {
			maxQuarantine = int(frac * float64(total))
			if maxQuarantine < 1 {
				maxQuarantine = 1
			}
		}
	}

	pool := opts.Pool
	if pool == nil {
		pool = sched.New(0)
	}
	var (
		progress    atomic.Int64
		retries     atomic.Int64
		completed   atomic.Int64
		mu          sync.Mutex // guards quarantined
		quarantined []int
	)
	progress.Store(int64(rep.Restored))

	step := func() {
		if opts.OnProgress != nil {
			opts.OnProgress(int(progress.Add(1)), total)
		} else {
			progress.Add(1)
		}
	}

	// finish is the shared task epilogue of both scheduling modes: journal
	// the payload on success, otherwise quarantine or surface the error.
	finish := func(ctx context.Context, idx int, payload []byte, runErr error) error {
		if runErr == nil {
			if opts.Journal != nil {
				if err := opts.Journal.Append(TaskRecord{Index: idx, Payload: payload, Digest: digestOf(payload)}); err != nil {
					return err
				}
			}
			completed.Add(1)
			step()
			return nil
		}
		if ctx.Err() != nil {
			return runErr
		}
		if opts.Quarantine {
			mu.Lock()
			over := len(quarantined) >= maxQuarantine
			if !over {
				quarantined = append(quarantined, idx)
			}
			mu.Unlock()
			if over {
				return fmt.Errorf("cluster: quarantine budget (%d tasks) exceeded: %w", maxQuarantine, runErr)
			}
			step()
			return nil
		}
		return runErr
	}

	var err error
	if opts.Batch != nil && opts.BatchWidth > 1 {
		err = runBatched(ctx, pool, done, total, nK, nE, opts, fn, &retries, finish)
	} else {
		err = pool.ForEach(ctx, "sweep", total, func(ctx context.Context, idx int) error {
			if done[idx] {
				return nil
			}
			t := taskAt(idx, nK, nE)
			var payload []byte
			attempt := 0
			runErr := opts.Retry.Do(ctx, func(actx context.Context) error {
				a := attempt
				attempt++
				if a > 0 {
					retries.Add(1)
				}
				if err := opts.Injector.Trip(actx, idx, a); err != nil {
					return err
				}
				b, err := fn(actx, t)
				if err != nil {
					return err
				}
				payload = b
				return nil
			})
			return finish(ctx, idx, payload, runErr)
		})
	}

	rep.Completed = int(completed.Load())
	rep.Retries = int(retries.Load())
	sort.Ints(quarantined)
	for _, idx := range quarantined {
		rep.Quarantined = append(rep.Quarantined, taskAt(idx, nK, nE))
	}
	if err != nil {
		return rep, wrapTaskErr(err, nK, nE)
	}
	return rep, nil
}

// batchGroups cuts the unfinished tasks into runs of consecutive
// same-(bias,k) flat indices of length ≤ width. Batches never span a
// (bias, k) row: the batched solvers share one device Hamiltonian and one
// momentum per call, so only the energy coordinate varies inside a group.
func batchGroups(done []bool, total, nE, width int) [][]int {
	var groups [][]int
	for start := 0; start < total; {
		if done[start] {
			start++
			continue
		}
		row := start / nE
		g := []int{start}
		next := start + 1
		for next < total && len(g) < width && next/nE == row && !done[next] {
			g = append(g, next)
			next++
		}
		groups = append(groups, g)
		start = next
	}
	return groups
}

// runBatched is the grouped scheduling mode of RunTasksResumable: each
// group's first attempts run as one batched solve, and every per-task
// guarantee — injected faults, retry classification, backoff, quarantine,
// journaling — is preserved by feeding the recorded batched outcome
// through the same retry policy as the classic path, with failed elements
// retried solo through fn.
func runBatched(ctx context.Context, pool *sched.Pool, done []bool, total, nK, nE int, opts SweepOptions, fn SweepFunc, retries *atomic.Int64, finish func(context.Context, int, []byte, error) error) error {
	groups := batchGroups(done, total, nE, opts.BatchWidth)
	return pool.ForEach(ctx, "sweep", len(groups), func(ctx context.Context, g int) error {
		idxs := groups[g]
		w := len(idxs)
		ts := make([]Task, w)
		for i, idx := range idxs {
			ts[i] = taskAt(idx, nK, nE)
		}
		// First attempts, batched: screen each member's injected fault the
		// way its solo attempt 0 would see it, then solve the survivors in
		// one call. A panic or attempt timeout inside the batched solve
		// fails every live member's first attempt; those members are
		// retried solo below. Tripped or screened-out members never enter
		// the batched call, so they burn no solver work — exactly like the
		// classic path.
		a0Err := make([]error, w)
		a0Payload := make([][]byte, w)
		live := make([]int, 0, w)
		for i, idx := range idxs {
			tripIdx := idx
			if err := opts.Retry.Attempt(ctx, func(actx context.Context) error {
				return opts.Injector.Trip(actx, tripIdx, 0)
			}); err != nil {
				a0Err[i] = err
				continue
			}
			live = append(live, i)
		}
		if len(live) > 0 {
			liveTasks := make([]Task, len(live))
			for li, i := range live {
				liveTasks[li] = ts[i]
			}
			var payloads [][]byte
			var berrs []error
			if err := opts.Retry.Attempt(ctx, func(actx context.Context) error {
				payloads, berrs = opts.Batch(actx, liveTasks)
				return nil
			}); err != nil {
				for _, i := range live {
					a0Err[i] = err
				}
			} else {
				for li, i := range live {
					if berrs[li] != nil {
						a0Err[i] = berrs[li]
					} else {
						a0Payload[i] = payloads[li]
					}
				}
			}
		}
		// Per-task retry loop, identical to the classic path except that
		// attempt 0 replays the recorded batched outcome.
		for i, idx := range idxs {
			t := ts[i]
			var payload []byte
			attempt := 0
			runErr := opts.Retry.Do(ctx, func(actx context.Context) error {
				a := attempt
				attempt++
				if a == 0 {
					if a0Err[i] != nil {
						return a0Err[i]
					}
					payload = a0Payload[i]
					return nil
				}
				retries.Add(1)
				if err := opts.Injector.Trip(actx, idx, a); err != nil {
					return err
				}
				b, err := fn(actx, t)
				if err != nil {
					return err
				}
				payload = b
				return nil
			})
			if err := finish(ctx, idx, payload, runErr); err != nil {
				return &groupTaskError{idx: idx, err: err}
			}
		}
		return nil
	})
}

// CompletedTasks returns how many tasks the report accounts for: restored,
// newly completed, and quarantined.
func (r *SweepReport) CompletedTasks() int {
	return r.Restored + r.Completed + len(r.Quarantined)
}
