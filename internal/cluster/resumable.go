package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/resilience"
	"repro/internal/sched"
)

// SweepFunc runs one (bias, k, E) task and returns its result serialized
// as an opaque payload. The payload is what the journal persists and what
// Restore receives on resume, so it must capture everything the caller
// needs to reconstruct the task's contribution to the observables —
// typically a few float64s (a transmission value, a charge column). It
// must be a deterministic function of the task for resumed sweeps to be
// bitwise-identical to uninterrupted ones.
type SweepFunc func(ctx context.Context, t Task) ([]byte, error)

// RestoreFunc reinstates a completed task's result from its journaled
// payload. It runs serially before the sweep starts.
type RestoreFunc func(t Task, payload []byte) error

// SweepOptions configures RunTasksResumable. The zero value degrades to
// plain RunTasks semantics: no journal, no retries, no injection, fail on
// first error.
type SweepOptions struct {
	// Pool supplies the worker budget (nil: a private GOMAXPROCS pool).
	Pool *sched.Pool
	// Journal, when non-nil, records every completed task and is consulted
	// at startup to skip tasks a previous run already finished.
	Journal Checkpointer
	// Restore reinstates journaled results. Required when Journal is set
	// and the caller accumulates results outside the journal.
	Restore RestoreFunc
	// Retry is the per-task retry policy (zero value: single attempt).
	Retry resilience.Policy
	// Injector, when non-nil, deterministically perturbs tasks — the
	// reproducible failure-drill hook.
	Injector *resilience.Injector
	// Quarantine enables graceful degradation: a task that fails past its
	// retry budget (or permanently, e.g. a non-finite observable) is set
	// aside and the sweep continues; the quarantined set is reported so
	// the caller can renormalize its integrals over the surviving points.
	Quarantine bool
	// MaxQuarantineFrac caps the quarantined fraction of the sweep;
	// exceeding it fails the run (a sweep that loses that much of its
	// grid is not salvageable by renormalization). <= 0 means 0.25.
	MaxQuarantineFrac float64
	// OnProgress, when non-nil, observes completion: done counts both
	// restored and newly finished tasks. It must be cheap and
	// thread-safe; quarantined tasks count as done.
	OnProgress func(done, total int)
}

// SweepReport summarizes a resumable sweep.
type SweepReport struct {
	// Total is the task count of the full sweep.
	Total int
	// Restored tasks were skipped because the journal already held their
	// verified results.
	Restored int
	// Completed tasks ran (successfully) in this invocation.
	Completed int
	// Retries is the number of extra attempts spent beyond first tries.
	Retries int
	// Quarantined lists the tasks abandoned after exhausting retries,
	// sorted by flat index. Empty unless SweepOptions.Quarantine is set.
	Quarantined []Task
}

// QuarantinedSet returns the quarantined tasks keyed by flat index
// (bias·nK·nE + k·nE + E layout, matching RunTasks).
func (r *SweepReport) QuarantinedSet(nK, nE int) map[int]bool {
	set := make(map[int]bool, len(r.Quarantined))
	for _, t := range r.Quarantined {
		set[(t.Bias*nK+t.K)*nE+t.E] = true
	}
	return set
}

// taskAt maps a flat index to sweep coordinates (inverse of the RunTasks
// layout).
func taskAt(idx, nK, nE int) Task {
	return Task{Bias: idx / (nK * nE), K: (idx / nE) % nK, E: idx % nE}
}

// wrapTaskErr rewrites a sched.TaskError into sweep coordinates.
func wrapTaskErr(err error, nK, nE int) error {
	if te, ok := sched.AsTaskError(err); ok {
		t := taskAt(te.Index, nK, nE)
		return fmt.Errorf("cluster: task %d (bias %d, k %d, E %d): %w",
			te.Index, t.Bias, t.K, t.E, te.Err)
	}
	return err
}

// RunTasksResumable is the fault-tolerant sweep engine: RunTasks plus
// checkpoint/restart, per-task retry with backoff, panic isolation,
// deterministic fault injection, and optional quarantine of unsalvageable
// points.
//
// Execution of one task: injected fault (if drilling) → fn → journal
// append, all under the retry policy; a panic anywhere inside is recovered
// into a *resilience.PanicError and retried like an ordinary transient
// error. On startup every verified journal record marks its task done and
// replays its payload through Restore, so a rerun after a crash performs
// only the unfinished work — and because payloads capture the results
// exactly, the resumed observables are bitwise-identical to an
// uninterrupted run.
//
// The returned report is valid (and meaningful) even when err != nil: it
// describes how far the sweep got.
func RunTasksResumable(ctx context.Context, nBias, nK, nE int, opts SweepOptions, fn SweepFunc) (*SweepReport, error) {
	if nBias < 1 || nK < 1 || nE < 1 {
		return nil, fmt.Errorf("cluster: task counts must be positive")
	}
	total := nBias * nK * nE
	rep := &SweepReport{Total: total}

	done := make([]bool, total)
	if opts.Journal != nil {
		recs, err := opts.Journal.Load()
		if err != nil {
			return rep, fmt.Errorf("cluster: resume: %w", err)
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= total || done[rec.Index] {
				continue
			}
			if opts.Restore != nil {
				if err := opts.Restore(taskAt(rec.Index, nK, nE), rec.Payload); err != nil {
					return rep, fmt.Errorf("cluster: restore task %d: %w", rec.Index, err)
				}
			}
			done[rec.Index] = true
			rep.Restored++
		}
	}

	maxQuarantine := total
	if opts.Quarantine {
		frac := opts.MaxQuarantineFrac
		if frac <= 0 {
			frac = 0.25
		}
		if frac < 1 {
			maxQuarantine = int(frac * float64(total))
			if maxQuarantine < 1 {
				maxQuarantine = 1
			}
		}
	}

	pool := opts.Pool
	if pool == nil {
		pool = sched.New(0)
	}
	var (
		progress    atomic.Int64
		retries     atomic.Int64
		completed   atomic.Int64
		mu          sync.Mutex // guards quarantined
		quarantined []int
	)
	progress.Store(int64(rep.Restored))

	step := func() {
		if opts.OnProgress != nil {
			opts.OnProgress(int(progress.Add(1)), total)
		} else {
			progress.Add(1)
		}
	}

	err := pool.ForEach(ctx, "sweep", total, func(ctx context.Context, idx int) error {
		if done[idx] {
			return nil
		}
		t := taskAt(idx, nK, nE)
		var payload []byte
		attempt := 0
		runErr := opts.Retry.Do(ctx, func(actx context.Context) error {
			a := attempt
			attempt++
			if a > 0 {
				retries.Add(1)
			}
			if err := opts.Injector.Trip(actx, idx, a); err != nil {
				return err
			}
			b, err := fn(actx, t)
			if err != nil {
				return err
			}
			payload = b
			return nil
		})
		if runErr == nil {
			if opts.Journal != nil {
				if err := opts.Journal.Append(TaskRecord{Index: idx, Payload: payload, Digest: digestOf(payload)}); err != nil {
					return err
				}
			}
			completed.Add(1)
			step()
			return nil
		}
		if ctx.Err() != nil {
			return runErr
		}
		if opts.Quarantine {
			mu.Lock()
			over := len(quarantined) >= maxQuarantine
			if !over {
				quarantined = append(quarantined, idx)
			}
			mu.Unlock()
			if over {
				return fmt.Errorf("cluster: quarantine budget (%d tasks) exceeded: %w", maxQuarantine, runErr)
			}
			step()
			return nil
		}
		return runErr
	})

	rep.Completed = int(completed.Load())
	rep.Retries = int(retries.Load())
	sort.Ints(quarantined)
	for _, idx := range quarantined {
		rep.Quarantined = append(rep.Quarantined, taskAt(idx, nK, nE))
	}
	if err != nil {
		return rep, wrapTaskErr(err, nK, nE)
	}
	return rep, nil
}

// CompletedTasks returns how many tasks the report accounts for: restored,
// newly completed, and quarantined.
func (r *SweepReport) CompletedTasks() int {
	return r.Restored + r.Completed + len(r.Quarantined)
}
