package cluster

import (
	"fmt"

	"repro/internal/perf"
)

// Workload describes one self-consistent-iteration sweep of the simulator:
// the outer product of bias points, transverse momentum points, and energy
// points, each requiring one open-boundary solve on a device of NLayers
// principal layers with BlockSize orbitals per layer and RHSWidth
// right-hand-side columns (contact injection width).
type Workload struct {
	NBias     int
	NK        int
	NE        int
	NLayers   int
	BlockSize int
	RHSWidth  int
	// SelfEnergyIterations is the decimation depth of the contact surface
	// Green's functions (per solve).
	SelfEnergyIterations int
	// CouplingRank is the number of nonzero coupling columns between
	// adjacent layers (the boundary atomic planes). Zero means full rank
	// (dense coupling); zinc-blende [100] layers have rank BlockSize/4.
	CouplingRank int
	// EnergyCostCV is the coefficient of variation of per-energy-point
	// solve cost (adaptive grids and decimation depth make energy points
	// heterogeneous). Zero models perfectly uniform points; production
	// sweeps sit near 0.1.
	EnergyCostCV float64
}

// Validate reports parameter errors.
func (w Workload) Validate() error {
	if w.NBias < 1 || w.NK < 1 || w.NE < 1 {
		return fmt.Errorf("cluster: task counts must be positive")
	}
	if w.NLayers < 2 || w.BlockSize < 1 || w.RHSWidth < 1 {
		return fmt.Errorf("cluster: device dimensions invalid")
	}
	if w.SelfEnergyIterations < 1 {
		return fmt.Errorf("cluster: self-energy iteration count must be positive")
	}
	return nil
}

// Tasks returns the number of independent (bias, k, E) points.
func (w Workload) Tasks() int { return w.NBias * w.NK * w.NE }

// SelfEnergyFlops returns the flops of the two contact self-energies of
// one solve: each Sancho-Rubio iteration costs one block LU, one solve
// against two operand groups, and four block products.
func (w Workload) SelfEnergyFlops() int64 {
	n := w.BlockSize
	perIter := perf.LUFlops(n) + perf.SolveFlops(n, n) + 4*perf.GemmFlops(n, n, n)
	return 2 * int64(w.SelfEnergyIterations) * perIter
}

// WFSolveFlops returns the flops of one wave-function (block-Thomas) solve
// at a single energy with P = 1: per layer one block LU, triangular solves
// against the coupling block and the RHS, and two block products.
func (w Workload) WFSolveFlops() int64 {
	n, l, k := w.BlockSize, w.NLayers, w.RHSWidth
	perLayer := perf.LUFlops(n) +
		perf.SolveFlops(n, n+k) +
		perf.GemmFlops(n, n, n) + perf.GemmFlops(n, n, k) +
		perf.GemmFlops(n, n, k) // back substitution product
	return int64(l) * perLayer
}

// RGFSolveFlops returns the flops of one recursive Green's function solve
// (transmission-only): per layer one inversion (LU + N-column solve) and
// roughly six block products for the connected recursions.
func (w Workload) RGFSolveFlops() int64 {
	n, l := w.BlockSize, w.NLayers
	perLayer := perf.LUFlops(n) + perf.SolveFlops(n, n) + 6*perf.GemmFlops(n, n, n)
	return int64(l) * perLayer
}

// SplitSolveCost describes the parallel cost structure of one SplitSolve
// execution over P spatial domains.
type SplitSolveCost struct {
	// CriticalFlops is the per-domain (parallel) work on the critical path.
	CriticalFlops int64
	// ReducedFlops is the serial Schur-complement interface solve.
	ReducedFlops int64
	// Messages and BytesPerMessage describe the interface exchange.
	Messages        int
	BytesPerMessage int64
}

// SplitSolve returns the cost model of one energy-point solve decomposed
// over p spatial domains. The spike columns widen the local solves from
// RHSWidth to RHSWidth + 2·BlockSize; the reduced interface system is
// block-tridiagonal over domains with 2·BlockSize groups (solved serially
// on the critical path, O(p·n³) like the implementation in
// internal/splitsolve); each interface exchanges its boundary blocks.
func (w Workload) SplitSolve(p int) (SplitSolveCost, error) {
	if p < 1 || p > w.NLayers {
		return SplitSolveCost{}, fmt.Errorf("cluster: %d domains invalid for %d layers", p, w.NLayers)
	}
	n := int64(w.BlockSize)
	if p == 1 {
		return SplitSolveCost{CriticalFlops: w.WFSolveFlops()}, nil
	}
	layersPerDomain := (w.NLayers + p - 1) / p
	c := w.CouplingRank
	if c <= 0 || c > w.BlockSize {
		c = w.BlockSize
	}
	width := w.RHSWidth + 2*c
	perLayer := perf.LUFlops(w.BlockSize) +
		perf.SolveFlops(w.BlockSize, w.BlockSize+width) +
		perf.GemmFlops(w.BlockSize, w.BlockSize, w.BlockSize) +
		2*perf.GemmFlops(w.BlockSize, w.BlockSize, width)
	group := 2 * w.BlockSize
	perGroup := perf.LUFlops(group) +
		perf.SolveFlops(group, group+w.RHSWidth) +
		2*perf.GemmFlops(group, group, group)
	reduced := int64(p) * perGroup
	return SplitSolveCost{
		CriticalFlops: int64(layersPerDomain) * perLayer,
		ReducedFlops:  reduced,
		// Gather interface blocks to the reduced solve and scatter back.
		Messages:        2 * (p - 1),
		BytesPerMessage: 16 * n * int64(c), // complex128 boundary coupling block
	}, nil
}

// UsefulFlops returns the algorithmically necessary flops of the whole
// workload with the serial (P = 1) solver — the numerator of the sustained
// performance metric, held fixed across decompositions so that parallel
// overhead never inflates the reported Flop/s.
func (w Workload) UsefulFlops() int64 {
	perTask := w.SelfEnergyFlops() + w.WFSolveFlops()
	return int64(w.Tasks()) * perTask
}

// CalibrateBlockSolve measures the actual flops of one solve on the local
// kernels by running fn under the global flop counter and returns the
// measured count; the scaling harness uses it to replace the analytic
// WFSolveFlops with a measured value where a real device is available.
func CalibrateBlockSolve(fn func() error) (int64, error) {
	perf.ResetFlops()
	if err := fn(); err != nil {
		return 0, err
	}
	return perf.ResetFlops(), nil
}
