package cluster

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/perf"
)

// TestTailIncremental: Poll returns exactly the records appended since
// the previous Poll, skipping the header and epoch metadata, and an
// absent file reads as "nothing yet".
func TestTailIncremental(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.journal")
	tail := NewTail(path)

	recs, err := tail.Poll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("Poll on missing file = %v, %v; want empty, nil", recs, err)
	}

	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()
	if err := j.WriteHeader(Header{SpecHash: "abc", RunID: "abc-1"}); err != nil {
		t.Fatalf("header: %v", err)
	}
	if _, err := j.BumpEpoch(); err != nil {
		t.Fatalf("epoch: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(TaskRecord{Index: i, Payload: []byte{byte(i)}, Perf: &perf.Snapshot{Flops: int64(i)}}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}

	recs, err = tail.Poll()
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("first Poll returned %d records, want 3 (header/epoch must be skipped)", len(recs))
	}
	for i, r := range recs {
		if r.Index != i {
			t.Errorf("record %d has index %d; want file order", i, r.Index)
		}
	}

	// Nothing new: an idle Poll is empty, not a replay.
	if recs, err = tail.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("idle Poll = %v, %v; want empty, nil", recs, err)
	}

	if err := j.Append(TaskRecord{Index: 7, Payload: []byte("x")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if recs, err = tail.Poll(); err != nil || len(recs) != 1 || recs[0].Index != 7 {
		t.Fatalf("incremental Poll = %v, %v; want just record 7", recs, err)
	}
}

// TestTailTornLine: a partial trailing line (a writer killed mid-append)
// is not consumed; once the line is completed the record is delivered
// whole. Garbage that never becomes a record is skipped.
func TestTailTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.journal")
	tail := NewTail(path)

	full, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer full.Close()

	rec := TaskRecord{Index: 0, Payload: []byte("p")}
	rec.Digest = digestOf(rec.Payload)
	line := `{"idx":0,"payload":"cA==","sha":"` + rec.Digest + `"}`

	// Write only half the line: Poll must not advance past it.
	if _, err := full.WriteString(line[:10]); err != nil {
		t.Fatalf("write: %v", err)
	}
	if recs, err := tail.Poll(); err != nil || len(recs) != 0 {
		t.Fatalf("Poll on torn line = %v, %v; want empty", recs, err)
	}
	if tail.Offset() != 0 {
		t.Fatalf("torn Poll advanced offset to %d; a later completed record would be skipped", tail.Offset())
	}

	// Complete the line: the whole record arrives.
	if _, err := full.WriteString(line[10:] + "\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	recs, err := tail.Poll()
	if err != nil || len(recs) != 1 || recs[0].Index != 0 || string(recs[0].Payload) != "p" {
		t.Fatalf("Poll after completion = %+v, %v; want the one record", recs, err)
	}

	// A garbage line followed by a good record: garbage is skipped, the
	// record still arrives (the Load contract, incrementally).
	if _, err := full.WriteString("not json\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	rec2 := TaskRecord{Index: 1, Payload: []byte("q")}
	rec2.Digest = digestOf(rec2.Payload)
	if _, err := full.WriteString(`{"idx":1,"payload":"cQ==","sha":"` + rec2.Digest + `"}` + "\n"); err != nil {
		t.Fatalf("write: %v", err)
	}
	recs, err = tail.Poll()
	if err != nil || len(recs) != 1 || recs[0].Index != 1 {
		t.Fatalf("Poll past garbage = %+v, %v; want just record 1", recs, err)
	}
}

// TestTailIdlePollAllocs pins the scratch-buffer reuse: an idle Poll (no
// new records — the steady state of a long-lived SSE stream) must not
// re-allocate its 64 KiB read buffer every time. The budget of 4 covers
// the open/stat path; the buffer alone would blow it.
func TestTailIdlePollAllocs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "allocs.journal")
	j, err := OpenFileJournal(path)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()
	if err := j.Append(TaskRecord{Index: 0, Payload: []byte("p")}); err != nil {
		t.Fatalf("append: %v", err)
	}
	tail := NewTail(path)
	if _, err := tail.Poll(); err != nil {
		t.Fatalf("warm-up Poll: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := tail.Poll(); err != nil {
			t.Fatalf("Poll: %v", err)
		}
	})
	if allocs > 4 {
		t.Fatalf("idle Poll costs %.0f allocs/op, want <= 4 (is the read buffer being re-created per poll?)", allocs)
	}
}
