// Package cluster models the parallel execution of the simulator on a
// large distributed-memory machine — the substitution for the Cray XT5
// "Jaguar" of the paper (see DESIGN.md).
//
// Correctness-level parallelism (worker pools over bias, momentum, and
// energy points; goroutine-parallel SplitSolve domains) lives in the
// physics packages and runs on real cores. This package supplies the
// *performance* dimension: an analytic machine model calibrated against
// the exact flop counts reported by the numerical kernels, a multi-level
// decomposition scheduler (bias × momentum × energy × spatial domains, the
// paper's four levels), and predicted wall times, sustained Flop/s, and
// parallel efficiencies for core counts up to the full 221,400-core
// machine. The scaling *shapes* — where each level saturates, where the
// SplitSolve reduced system bites, where communication flattens the curve
// — emerge from the same algorithmic quantities that governed the real
// machine.
package cluster

import "fmt"

// MachineModel is an analytic description of a distributed-memory machine.
type MachineModel struct {
	Name string
	// TotalCores is the largest usable core count.
	TotalCores int
	// CoresPerNode groups cores into shared-memory nodes.
	CoresPerNode int
	// PeakFlopsPerCore is the per-core double-precision peak (flop/s).
	PeakFlopsPerCore float64
	// KernelEfficiency is the fraction of peak the dense complex kernels
	// sustain (ZGEMM/LU-dominated inner loops).
	KernelEfficiency float64
	// Latency is the point-to-point message latency in seconds.
	Latency float64
	// Bandwidth is the per-link bandwidth in bytes/s.
	Bandwidth float64
}

// Jaguar returns a model of the Cray XT5 at ORNL as of 2011: 18,688
// dual-socket hex-core Opteron nodes (224,256 cores, 2.6 GHz, 4 flops per
// cycle per core), SeaStar2+ interconnect. The kernel efficiency is the
// fraction of peak the ZGEMM/ZGETRF-dominated inner loops sustain on that
// core (~72%), so that dense-solver-dominated full-machine runs land in
// the 1-1.5 PFlop/s band the paper reports.
func Jaguar() MachineModel {
	return MachineModel{
		Name:             "Cray XT5 (Jaguar)",
		TotalCores:       224256,
		CoresPerNode:     12,
		PeakFlopsPerCore: 2.6e9 * 4,
		KernelEfficiency: 0.72,
		Latency:          6e-6,
		Bandwidth:        2.0e9,
	}
}

// Laptop returns a model of a single-node commodity machine, used to
// cross-check predictions against locally measured kernel rates.
func Laptop() MachineModel {
	return MachineModel{
		Name:             "single-node reference",
		TotalCores:       8,
		CoresPerNode:     8,
		PeakFlopsPerCore: 3.0e9 * 4,
		KernelEfficiency: 0.10, // pure-Go complex kernels without SIMD
		Latency:          1e-7,
		Bandwidth:        2.0e10,
	}
}

// Validate reports configuration errors.
func (m MachineModel) Validate() error {
	if m.TotalCores < 1 || m.CoresPerNode < 1 {
		return fmt.Errorf("cluster: machine needs positive core counts")
	}
	if m.PeakFlopsPerCore <= 0 || m.KernelEfficiency <= 0 || m.KernelEfficiency > 1 {
		return fmt.Errorf("cluster: invalid flop rates")
	}
	if m.Latency < 0 || m.Bandwidth <= 0 {
		return fmt.Errorf("cluster: invalid network parameters")
	}
	return nil
}

// SustainedFlopsPerCore returns the modeled per-core sustained rate.
func (m MachineModel) SustainedFlopsPerCore() float64 {
	return m.PeakFlopsPerCore * m.KernelEfficiency
}
