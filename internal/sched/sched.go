// Package sched is the shared bounded-parallelism execution layer of the
// simulator. Every concurrent site — the bias sweep of core.FET, the
// momentum fan-out of core.Simulator, the energy grids of
// transport.Engine, and the spatial-domain stages of splitsolve — runs on
// a sched.Pool instead of an ad-hoc goroutine-per-item loop, which gives
// all of them uniformly:
//
//   - a hard bound on live goroutines: work is pulled from a shared index
//     counter by at most Workers goroutines, never spawned per item;
//   - deterministic output ordering (results land in their input slots);
//   - first-error short-circuit: one failing task cancels its in-flight
//     siblings through context.Context and stops the scheduling of
//     remaining items;
//   - nested-pool accounting: a pool hands out Workers−1 helper tokens,
//     and a task that itself fans out (e.g. an energy point running a
//     SplitSolve domain decomposition) borrows from the same token budget,
//     falling back to running inline when the budget is exhausted — so
//     nesting levels share one worker budget instead of oversubscribing
//     multiplicatively;
//   - per-task instrumentation: wall time is attributed to a named phase
//     via internal/perf, mirroring the paper's per-level performance
//     accounting;
//   - fault containment: a panic in a task is recovered on the worker,
//     converted to a *resilience.PanicError with the captured stack, and
//     reported with ordinary task-error semantics (siblings canceled,
//     lowest failing index wins) instead of crashing the process; an
//     optional per-task deadline (Pool.TaskTimeout) bounds runaway solves.
//
// The nesting rule mirrors the paper's four-level parallel hierarchy
// (bias × momentum × energy × spatial domains): outer levels grab workers
// first and inner levels soak up whatever budget remains, which is exactly
// the work-conserving schedule the multi-level decomposition of the SC11
// simulator implements with MPI communicators.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/perf"
	"repro/internal/resilience"
)

// Pool is a bounded-parallelism executor. The zero value is not usable;
// construct with New. A Pool is safe for concurrent and nested use: all
// ForEach/Map calls on the same pool share one worker budget.
type Pool struct {
	workers int
	// tokens is the helper budget: capacity Workers−1, because the caller
	// of ForEach always contributes its own goroutine as the first worker.
	tokens chan struct{}

	// Hook, if set before the pool is used, observes every completed task.
	// It runs on the worker goroutine and must be cheap and thread-safe.
	Hook func(TaskEvent)

	// TaskTimeout, if set before the pool is used, bounds each task's wall
	// time: the task's context is canceled with context.DeadlineExceeded
	// once the deadline passes, and a task that returns the deadline error
	// fails with ordinary task-error semantics (siblings canceled, lowest
	// index reported). Zero means no per-task deadline.
	TaskTimeout time.Duration
}

// TaskEvent describes one completed (or failed) task for the Hook.
type TaskEvent struct {
	// Phase is the name the ForEach/Map call ran under ("" if unnamed).
	Phase string
	// Index is the task's input index.
	Index int
	// Wall is the task's execution wall time.
	Wall time.Duration
	// Err is the task's error (nil on success).
	Err error
}

// New returns a pool bounding concurrent task execution to workers
// (0 or negative: runtime.GOMAXPROCS(0)).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// TaskError reports the failure of one task, preserving which input index
// failed so callers can reconstruct domain-specific messages (energy value,
// gate voltage, domain number). It unwraps to the task's own error.
type TaskError struct {
	// Phase is the phase name of the failing ForEach/Map call.
	Phase string
	// Index is the input index of the failing task — the first failing
	// index in input order among the tasks that ran.
	Index int
	// Err is the task's error.
	Err error
}

// Error implements error.
func (e *TaskError) Error() string {
	if e.Phase != "" {
		return fmt.Sprintf("sched: %s task %d: %v", e.Phase, e.Index, e.Err)
	}
	return fmt.Sprintf("sched: task %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying task error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// AsTaskError unwraps err to a *TaskError if one is in its chain.
func AsTaskError(err error) (*TaskError, bool) {
	var te *TaskError
	ok := errors.As(err, &te)
	return te, ok
}

// Panicked reports whether err carries a recovered worker panic, returning
// the *resilience.PanicError (panic value + captured stack) when it does.
func Panicked(err error) (*resilience.PanicError, bool) {
	return resilience.AsPanicError(err)
}

// tracker keeps the best (lowest-index, preferring non-cancellation)
// error seen across workers.
type tracker struct {
	mu       sync.Mutex
	set      bool
	idx      int
	err      error
	canceled bool
}

func (t *tracker) record(i int, err error) {
	c := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case !t.set:
	case t.canceled && !c:
	case t.canceled == c && i < t.idx:
	default:
		return
	}
	t.set, t.idx, t.err, t.canceled = true, i, err, c
}

func (t *tracker) get() (int, error, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.idx, t.err, t.set
}

// ForEach runs fn(ctx, i) for i in [0, n) on the pool, bounding live
// goroutines to the pool's worker budget and preserving the input indexing
// (fn must write only to its own output slot). The first task error cancels
// the context passed to in-flight siblings, stops the scheduling of
// remaining indices, and is returned as a *TaskError carrying the lowest
// failing index in input order among the tasks that ran. If ctx is
// canceled externally, ForEach drains and returns ctx.Err(). When phase is
// non-empty, every task's wall time is recorded under that phase name in
// internal/perf. A panicking task does not unwind ForEach: the panic is
// recovered into a *resilience.PanicError (see Panicked) and handled as a
// task error.
//
// Nested calls — fn itself calling ForEach/Map on the same pool — are safe
// and share the worker budget: the inner call runs on the calling worker's
// goroutine plus however many helper tokens remain, degrading to an inline
// serial loop when the budget is exhausted. ForEach never blocks waiting
// for helpers, so nested use cannot deadlock.
func (p *Pool) ForEach(ctx context.Context, phase string, n int, fn func(context.Context, int) error) error {
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next atomic.Int64
		done atomic.Int64
		tr   tracker
	)
	work := func() {
		for ctx2.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			start := time.Now()
			err := p.runTask(ctx2, i, fn)
			wall := time.Since(start)
			if phase != "" {
				perf.RecordPhase(phase, wall, 0)
			}
			if p.Hook != nil {
				p.Hook(TaskEvent{Phase: phase, Index: i, Wall: wall, Err: err})
			}
			if err != nil {
				tr.record(i, err)
				cancel()
				return
			}
			done.Add(1)
		}
	}

	// Borrow helper workers from the shared budget without blocking: if
	// the budget is exhausted (an outer level holds the tokens), the loop
	// below degrades to a serial run on the calling goroutine.
	var wg sync.WaitGroup
	helpers := n - 1
	if max := p.workers - 1; helpers > max {
		helpers = max
	}
acquire:
	for h := 0; h < helpers; h++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-p.tokens }()
				work()
			}()
		default:
			break acquire
		}
	}
	work()
	wg.Wait()

	if done.Load() == int64(n) {
		return nil
	}
	if idx, err, ok := tr.get(); ok {
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			// The task failed only because the parent context was
			// canceled; report the cancellation, not the task.
			return ctx.Err()
		}
		return &TaskError{Phase: phase, Index: idx, Err: err}
	}
	// No task error but not all tasks completed: the parent context was
	// canceled before scheduling finished.
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// runTask executes one task with the pool's safety envelope: an optional
// per-task deadline and a panic boundary. A panicking task becomes an
// ordinary *resilience.PanicError — carrying the panic value and the
// worker's stack — so one bad energy point cancels its siblings like any
// failing task instead of killing the process.
func (p *Pool) runTask(ctx context.Context, i int, fn func(context.Context, int) error) error {
	if p.TaskTimeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, p.TaskTimeout)
		defer cancel()
		ctx = tctx
	}
	return resilience.Call(ctx, func(ctx context.Context) error { return fn(ctx, i) })
}

// Map runs fn(ctx, i) for i in [0, n) on the pool and collects the results
// in input order. Error and cancellation semantics match Pool.ForEach; on
// any error the partial results are discarded and nil is returned.
func Map[T any](ctx context.Context, p *Pool, phase string, n int, fn func(context.Context, int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.ForEach(ctx, phase, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
