package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gauge tracks the peak number of concurrent holders.
type gauge struct {
	cur, peak atomic.Int64
}

func (g *gauge) enter() {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			return
		}
	}
}

func (g *gauge) exit() { g.cur.Add(-1) }

func TestMapPreservesOrder(t *testing.T) {
	p := New(8)
	got, err := Map(context.Background(), p, "", 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d results, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 4
	p := New(workers)
	var g gauge
	err := p.ForEach(context.Background(), "", 200, func(_ context.Context, i int) error {
		g.enter()
		defer g.exit()
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak := g.peak.Load(); peak > workers {
		t.Fatalf("peak concurrency %d exceeds worker budget %d", peak, workers)
	}
}

func TestNestedPoolsShareOneBudget(t *testing.T) {
	// An energy-level ForEach whose tasks each run a spatial-domain
	// ForEach on the same pool: the combined concurrency must stay within
	// the single worker budget (inner levels borrow, never add).
	const workers = 4
	p := New(workers)
	var g gauge
	err := p.ForEach(context.Background(), "outer", 16, func(ctx context.Context, i int) error {
		return p.ForEach(ctx, "inner", 8, func(_ context.Context, j int) error {
			g.enter()
			defer g.exit()
			time.Sleep(200 * time.Microsecond)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak := g.peak.Load(); peak > workers {
		t.Fatalf("nested peak concurrency %d exceeds shared budget %d", peak, workers)
	}
}

func TestSerialPoolRunsInline(t *testing.T) {
	p := New(1)
	before := runtime.NumGoroutine()
	err := p.ForEach(context.Background(), "", 50, func(_ context.Context, i int) error {
		if n := runtime.NumGoroutine(); n > before+2 {
			t.Errorf("serial pool spawned helpers: %d goroutines (baseline %d)", n, before)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorByIndex(t *testing.T) {
	p := New(8)
	boom := errors.New("boom")
	for trial := 0; trial < 20; trial++ {
		err := p.ForEach(context.Background(), "phase", 64, func(_ context.Context, i int) error {
			if i >= 5 {
				return fmt.Errorf("task %d: %w", i, boom)
			}
			return nil
		})
		te, ok := AsTaskError(err)
		if !ok {
			t.Fatalf("error %v is not a TaskError", err)
		}
		if te.Index != 5 {
			t.Fatalf("reported index %d, want lowest failing index 5", te.Index)
		}
		if te.Phase != "phase" {
			t.Fatalf("reported phase %q", te.Phase)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("cause not preserved through %v", err)
		}
	}
}

func TestFailureCancelsInFlightSiblings(t *testing.T) {
	p := New(4)
	var started, sawCancel atomic.Int64
	var once sync.Once
	siblingUp := make(chan struct{})
	err := p.ForEach(context.Background(), "", 1000, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			// Fail only once a sibling is provably in flight, so the
			// cancellation below has someone to reach.
			select {
			case <-siblingUp:
			case <-time.After(2 * time.Second):
				return errors.New("no sibling ever started")
			}
			return errors.New("fail fast")
		}
		once.Do(func() { close(siblingUp) })
		// After the index-0 failure, this sibling must observe
		// cancellation promptly instead of running to completion.
		select {
		case <-ctx.Done():
			sawCancel.Add(1)
			return ctx.Err()
		case <-time.After(2 * time.Second):
			return errors.New("sibling never canceled")
		}
	})
	te, ok := AsTaskError(err)
	if !ok || te.Index != 0 {
		t.Fatalf("got %v, want the index-0 failure", err)
	}
	if started.Load() == 1000 {
		t.Fatal("cancellation did not short-circuit dispatch")
	}
	if sawCancel.Load() == 0 {
		t.Fatal("no in-flight sibling observed cancellation")
	}
}

func TestParentCancellation(t *testing.T) {
	p := New(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.ForEach(ctx, "", 100, func(_ context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestNoGoroutineLeak(t *testing.T) {
	p := New(8)
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 10; trial++ {
		_ = p.ForEach(context.Background(), "", 500, func(_ context.Context, i int) error {
			if i == 250 {
				return errors.New("mid-sweep failure")
			}
			return nil
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d live, baseline %d", runtime.NumGoroutine(), baseline)
}

func TestHookSeesEveryTask(t *testing.T) {
	p := New(4)
	var mu sync.Mutex
	seen := make(map[int]int)
	p.Hook = func(ev TaskEvent) {
		mu.Lock()
		defer mu.Unlock()
		if ev.Phase != "hooked" {
			t.Errorf("event phase %q", ev.Phase)
		}
		seen[ev.Index]++
	}
	if err := p.ForEach(context.Background(), "hooked", 40, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 40 {
		t.Fatalf("hook saw %d distinct tasks, want 40", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("task %d hooked %d times", i, n)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := New(-3).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(-3).Workers() = %d, want GOMAXPROCS", w)
	}
	if w := New(5).Workers(); w != 5 {
		t.Fatalf("New(5).Workers() = %d", w)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	p := New(4)
	got, err := Map(context.Background(), p, "", 0, func(_ context.Context, i int) (string, error) {
		return "x", nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	one, err := Map(context.Background(), p, "", 1, func(_ context.Context, i int) (string, error) {
		return "only", nil
	})
	if err != nil || len(one) != 1 || one[0] != "only" {
		t.Fatalf("single map: %v, %v", one, err)
	}
}

func TestPanicBecomesTaskError(t *testing.T) {
	p := New(4)
	var sawCancel atomic.Int64
	err := p.ForEach(context.Background(), "sweep", 64, func(ctx context.Context, i int) error {
		if i == 3 {
			panic(fmt.Sprintf("bad energy point %d", i))
		}
		select {
		case <-ctx.Done():
			sawCancel.Add(1)
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
			return nil
		}
	})
	te, ok := AsTaskError(err)
	if !ok {
		t.Fatalf("panic surfaced as %v, not a *TaskError", err)
	}
	if te.Index != 3 || te.Phase != "sweep" {
		t.Fatalf("panic attributed to (%q, %d), want (sweep, 3)", te.Phase, te.Index)
	}
	pe, ok := Panicked(err)
	if !ok {
		t.Fatalf("Panicked() did not find the recovered panic in %v", err)
	}
	if pe.Value != "bad energy point 3" || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack lost: %+v", pe)
	}
	if sawCancel.Load() == 0 {
		t.Fatal("panic did not cancel in-flight siblings")
	}
}

func TestPanicInNestedLevelContained(t *testing.T) {
	p := New(4)
	err := p.ForEach(context.Background(), "outer", 4, func(ctx context.Context, i int) error {
		return p.ForEach(ctx, "inner", 4, func(_ context.Context, j int) error {
			if i == 1 && j == 2 {
				panic("domain blow-up")
			}
			return nil
		})
	})
	if _, ok := Panicked(err); !ok {
		t.Fatalf("nested panic not recovered: %v", err)
	}
	te, ok := AsTaskError(err)
	if !ok || te.Phase != "outer" || te.Index != 1 {
		t.Fatalf("outer attribution wrong: %v", err)
	}
}

func TestTaskTimeoutFailsSlowTask(t *testing.T) {
	p := New(4)
	p.TaskTimeout = 10 * time.Millisecond
	err := p.ForEach(context.Background(), "", 8, func(ctx context.Context, i int) error {
		if i == 2 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(2 * time.Second):
				return errors.New("deadline never fired")
			}
		}
		return nil
	})
	te, ok := AsTaskError(err)
	if !ok || te.Index != 2 {
		t.Fatalf("got %v, want the timed-out task 2", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error is %v, want DeadlineExceeded in chain", err)
	}
}

func TestTaskTimeoutLeavesFastTasksAlone(t *testing.T) {
	p := New(4)
	p.TaskTimeout = time.Second
	var n atomic.Int64
	err := p.ForEach(context.Background(), "", 50, func(ctx context.Context, i int) error {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		n.Add(1)
		return nil
	})
	if err != nil || n.Load() != 50 {
		t.Fatalf("fast tasks under a generous deadline: err=%v done=%d", err, n.Load())
	}
}
