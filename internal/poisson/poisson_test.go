package poisson

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 1, 1, 1, 1, 1); err == nil {
		t.Fatal("accepted zero-size grid")
	}
	if _, err := NewGrid(2, 2, 2, -1, 1, 1); err == nil {
		t.Fatal("accepted negative spacing")
	}
	g, err := NewGrid(4, 1, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Solve(make([]float64, 3), 1e-10, 100); err == nil {
		t.Fatal("accepted short charge vector")
	}
}

// TestCapacitor1D: two Dirichlet plates, no charge → linear potential.
func TestCapacitor1D(t *testing.T) {
	n := 21
	g, err := NewGrid(n, 1, 1, 0.5, 0.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g.SetDirichlet(0, 0, 0, 0)
	g.SetDirichlet(n-1, 0, 0, 1)
	v, err := g.Solve(make([]float64, n), 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / float64(n-1)
		if math.Abs(v[i]-want) > 1e-9 {
			t.Fatalf("node %d: V=%g, want %g", i, v[i], want)
		}
	}
}

// TestUniformCharge1D: uniform ρ between grounded plates → parabola
// V(x) = ρ/(2ε) · x(L−x), exact on the grid for the 3-point stencil.
func TestUniformCharge1D(t *testing.T) {
	n := 41
	dx := 0.25
	g, err := NewGrid(n, 1, 1, dx, dx, dx)
	if err != nil {
		t.Fatal(err)
	}
	g.SetDirichlet(0, 0, 0, 0)
	g.SetDirichlet(n-1, 0, 0, 0)
	rho := make([]float64, n)
	const rho0 = 1e-3
	for i := range rho {
		rho[i] = rho0
	}
	v, err := g.Solve(rho, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	l := float64(n-1) * dx
	for i := 1; i < n-1; i++ {
		x := float64(i) * dx
		want := rho0 / units.Eps0 / 2 * x * (l - x)
		if math.Abs(v[i]-want) > 1e-8*(1+want) {
			t.Fatalf("node %d: V=%g, want %g", i, v[i], want)
		}
	}
}

// TestLaplaceMaximumPrinciple: a harmonic function on a 2-D grid attains
// its extrema on the boundary.
func TestLaplaceMaximumPrinciple(t *testing.T) {
	nx, ny := 15, 11
	g, err := NewGrid(nx, ny, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ix := 0; ix < nx; ix++ {
		g.SetDirichlet(ix, 0, 0, 0)
		g.SetDirichlet(ix, ny-1, 0, math.Sin(math.Pi*float64(ix)/float64(nx-1)))
	}
	for iy := 0; iy < ny; iy++ {
		g.SetDirichlet(0, iy, 0, 0)
		g.SetDirichlet(nx-1, iy, 0, 0)
	}
	v, err := g.Solve(make([]float64, g.N()), 1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	for iy := 1; iy < ny-1; iy++ {
		for ix := 1; ix < nx-1; ix++ {
			val := v[g.Index(ix, iy, 0)]
			if val < -1e-9 || val > 1+1e-9 {
				t.Fatalf("interior value %g violates maximum principle", val)
			}
		}
	}
	// The solution must be strictly positive inside (boundary data ≥ 0,
	// not identically 0).
	if v[g.Index(nx/2, ny/2, 0)] <= 0 {
		t.Fatal("interior of Laplace solution not positive")
	}
}

// TestSeparableLaplace2D compares against the discrete analytic solution
// of the Laplace equation with sin boundary data, which for the 5-point
// stencil is sin(kx·x)·sinh-like in y with a modified wavenumber; we use a
// fine grid and compare with the continuum solution to ~h² accuracy.
func TestSeparableLaplace2D(t *testing.T) {
	nx, ny := 33, 33
	h := 1.0 / float64(nx-1)
	g, err := NewGrid(nx, ny, 1, h, h, h)
	if err != nil {
		t.Fatal(err)
	}
	for ix := 0; ix < nx; ix++ {
		g.SetDirichlet(ix, ny-1, 0, math.Sin(math.Pi*float64(ix)*h))
		g.SetDirichlet(ix, 0, 0, 0)
	}
	for iy := 0; iy < ny; iy++ {
		g.SetDirichlet(0, iy, 0, 0)
		g.SetDirichlet(nx-1, iy, 0, 0)
	}
	v, err := g.Solve(make([]float64, g.N()), 1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for iy := 1; iy < ny-1; iy++ {
		for ix := 1; ix < nx-1; ix++ {
			x := float64(ix) * h
			y := float64(iy) * h
			want := math.Sin(math.Pi*x) * math.Sinh(math.Pi*y) / math.Sinh(math.Pi)
			if e := math.Abs(v[g.Index(ix, iy, 0)] - want); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 5e-3 {
		t.Fatalf("2-D Laplace max error %g exceeds discretization budget", maxErr)
	}
}

// TestPoisson3DPointChargeSymmetry: a point charge at the center of a
// grounded box produces a potential symmetric under the octahedral group.
func TestPoisson3DPointChargeSymmetry(t *testing.T) {
	n := 11
	g, err := NewGrid(n, n, n, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			g.SetDirichlet(0, a, b, 0)
			g.SetDirichlet(n-1, a, b, 0)
			g.SetDirichlet(a, 0, b, 0)
			g.SetDirichlet(a, n-1, b, 0)
			g.SetDirichlet(a, b, 0, 0)
			g.SetDirichlet(a, b, n-1, 0)
		}
	}
	rho := make([]float64, g.N())
	c := n / 2
	rho[g.Index(c, c, c)] = 1
	v, err := g.Solve(rho, 1e-11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v[g.Index(c, c, c)] <= 0 {
		t.Fatal("potential at the charge is not positive")
	}
	ref := v[g.Index(c+2, c, c)]
	for _, idx := range []int{
		g.Index(c-2, c, c), g.Index(c, c+2, c), g.Index(c, c-2, c),
		g.Index(c, c, c+2), g.Index(c, c, c-2),
	} {
		if math.Abs(v[idx]-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("point-charge potential not symmetric: %g vs %g", v[idx], ref)
		}
	}
}

// TestPNJunctionBuiltInPotential is the canonical non-linear Poisson test:
// the equilibrium potential drop across an abrupt pn junction must equal
// V_bi = kT·ln(N_A·N_D / n_i²).
func TestPNJunctionBuiltInPotential(t *testing.T) {
	mat := SiliconBulk()
	n := 400
	const na, nd = 1e-4, 1e-4 // 1e17 cm⁻³ in nm⁻³
	dev := &Device1D{
		Dx:     1.0,
		Doping: make([]float64, n),
		EpsR:   make([]float64, n),
		Mat:    mat,
	}
	for i := 0; i < n; i++ {
		dev.EpsR[i] = 11.7
		if i < n/2 {
			dev.Doping[i] = -na
		} else {
			dev.Doping[i] = nd
		}
	}
	v, err := dev.SolveEquilibrium(1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	kt := units.KT(mat.Temperature)
	wantVbi := kt * math.Log(na*nd/(mat.Ni()*mat.Ni()))
	gotVbi := v[n-1] - v[0]
	if math.Abs(gotVbi-wantVbi) > 0.005 {
		t.Fatalf("built-in potential %g V, want %g V", gotVbi, wantVbi)
	}
	// Far from the junction the material must be neutral: carrier density
	// equals doping.
	ne, _ := mat.Carriers(v[n-1])
	if math.Abs(ne-nd)/nd > 0.01 {
		t.Fatalf("n-side electron density %g, want %g", ne, nd)
	}
}

func TestCarriersMassAction(t *testing.T) {
	mat := SiliconBulk()
	ni := mat.Ni()
	for _, v := range []float64{-0.4, -0.1, 0, 0.2, 0.5} {
		n, p := mat.Carriers(v)
		if math.Abs(n*p-ni*ni)/(ni*ni) > 1e-10 {
			t.Fatalf("np product violated at V=%g: %g vs %g", v, n*p, ni*ni)
		}
	}
	// Si intrinsic density sanity: ~1e10 cm⁻³ = 1e-11 nm⁻³ within a
	// factor of a few (parameter-set dependent).
	if ni < 1e-12 || ni > 1e-10 {
		t.Fatalf("Si intrinsic density %g nm⁻³ outside sanity window", ni)
	}
}

func TestGateAllAroundPinchOff(t *testing.T) {
	n := 61
	gaa := &GateAllAround1D{
		Dx:         1,
		EpsChannel: 11.7,
		EpsOxide:   3.9,
		Lambda:     3,
		GateMask:   make([]bool, n),
		VSource:    0,
		VDrain:     0.05,
	}
	for i := 20; i < 40; i++ {
		gaa.GateMask[i] = true
	}
	rho := make([]float64, n)
	vNeg, err := gaa.Solve(-0.5, rho)
	if err != nil {
		t.Fatal(err)
	}
	vPos, err := gaa.Solve(0.5, rho)
	if err != nil {
		t.Fatal(err)
	}
	// Under the gate, the channel potential must follow the gate within
	// the screening model: negative gate → barrier, positive → well.
	mid := n / 2
	if !(vNeg[mid] < -0.2 && vPos[mid] > 0.2) {
		t.Fatalf("gate control broken: V_mid(-0.5)=%g, V_mid(+0.5)=%g", vNeg[mid], vPos[mid])
	}
	// Ends pinned.
	if vNeg[0] != 0 || math.Abs(vNeg[n-1]-0.05) > 1e-12 {
		t.Fatal("contact boundary conditions not enforced")
	}
}

func TestTridiagSolver(t *testing.T) {
	low := []float64{0, -1, -1, -1}
	diag := []float64{2, 2, 2, 2}
	up := []float64{-1, -1, -1, 0}
	rhs := []float64{1, 0, 0, 1}
	x, err := solveTridiag(low, diag, up, rhs)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	n := len(diag)
	for i := 0; i < n; i++ {
		r := diag[i] * x[i]
		if i > 0 {
			r += low[i] * x[i-1]
		}
		if i < n-1 {
			r += up[i] * x[i+1]
		}
		if math.Abs(r-rhs[i]) > 1e-12 {
			t.Fatalf("tridiag residual %g at row %d", r-rhs[i], i)
		}
	}
}
