package poisson

import (
	"fmt"
	"math"

	"repro/internal/perf"
	"repro/internal/units"
)

// Semiconductor bundles the semiclassical carrier statistics of a bulk
// material used by the non-linear Poisson solver.
type Semiconductor struct {
	// Nc and Nv are the conduction/valence effective densities of states
	// in 1/nm³ (Si at 300K: Nc = 2.8e19 cm⁻³ = 2.8e-2 nm⁻³).
	Nc, Nv float64
	// Gap is the band gap in eV.
	Gap float64
	// Temperature in kelvin.
	Temperature float64
}

// SiliconBulk returns room-temperature silicon statistics.
func SiliconBulk() Semiconductor {
	return Semiconductor{Nc: 2.8e-2, Nv: 1.04e-2, Gap: 1.12, Temperature: units.RoomTemperature}
}

// Ni returns the intrinsic carrier density (1/nm³).
func (s Semiconductor) Ni() float64 {
	kt := units.KT(s.Temperature)
	return math.Sqrt(s.Nc*s.Nv) * math.Exp(-s.Gap/(2*kt))
}

// Carriers returns the electron and hole densities (1/nm³) at local
// potential v (V) for a Fermi level pinned at 0 eV, with the intrinsic
// level at v = 0 sitting mid-gap (Boltzmann statistics).
func (s Semiconductor) Carriers(v float64) (n, p float64) {
	kt := units.KT(s.Temperature)
	ni := s.Ni()
	n = ni * math.Exp(v/kt)
	p = ni * math.Exp(-v/kt)
	return n, p
}

// Device1D is a one-dimensional semiconductor stack for the non-linear
// equilibrium Poisson problem.
type Device1D struct {
	// Dx is the node spacing (nm); Doping the net donor density N_D−N_A
	// per node (1/nm³); EpsR the relative permittivity per node.
	Dx     float64
	Doping []float64
	EpsR   []float64
	// Mat provides the carrier statistics.
	Mat Semiconductor
}

// SolveEquilibrium computes the equilibrium potential profile (V) of the
// stack by damped Newton iteration on the non-linear Poisson equation
// −d/dx(ε dV/dx) = (p − n + N_D − N_A)/ε₀ with zero-field (Neumann)
// boundaries, which for a pn junction reproduces the built-in potential
// V_bi = kT·ln(N_A·N_D/n_i²).
func (d *Device1D) SolveEquilibrium(tol float64, maxIter int) ([]float64, error) {
	n := len(d.Doping)
	if n < 3 {
		return nil, fmt.Errorf("poisson: 1-D device needs at least 3 nodes")
	}
	if len(d.EpsR) != n {
		return nil, fmt.Errorf("poisson: EpsR has %d entries for %d nodes", len(d.EpsR), n)
	}
	kt := units.KT(d.Mat.Temperature)
	ni := d.Mat.Ni()
	// Charge-neutral initial guess: v = kT·asinh(N/2ni).
	v := make([]float64, n)
	for i, nd := range d.Doping {
		v[i] = kt * math.Asinh(nd/(2*ni))
	}
	h2 := 1 / (d.Dx * d.Dx)
	// Newton loop on F(v) = A·v − q(v) = 0 where A is the (Neumann)
	// Laplacian scaled by ε_r and q(v) = (p − n + N)/ε₀.
	diag := make([]float64, n)
	lowr := make([]float64, n)
	uppr := make([]float64, n)
	rhs := make([]float64, n)
	for iter := 0; iter < maxIter; iter++ {
		var maxRes float64
		for i := 0; i < n; i++ {
			var aDiag, aOff float64
			harm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
			lowr[i], uppr[i] = 0, 0
			if i > 0 {
				e := harm(d.EpsR[i], d.EpsR[i-1]) * h2
				aDiag += e
				lowr[i] = -e
				aOff += e * v[i-1]
			}
			if i < n-1 {
				e := harm(d.EpsR[i], d.EpsR[i+1]) * h2
				aDiag += e
				uppr[i] = -e
				aOff += e * v[i+1]
			}
			ne, pe := d.Mat.Carriers(v[i])
			q := (pe - ne + d.Doping[i]) / units.Eps0
			res := aDiag*v[i] - aOff - q
			// Jacobian: ∂/∂v of −q adds (n + p)/(kT·ε₀) to the diagonal.
			diag[i] = aDiag + (ne+pe)/(kt*units.Eps0)
			rhs[i] = -res
			if math.Abs(res) > maxRes {
				maxRes = math.Abs(res)
			}
		}
		dv, err := solveTridiag(lowr, diag, uppr, rhs)
		if err != nil {
			return nil, err
		}
		// Damped update: cap the per-node step at a few kT to keep the
		// exponential charge terms in their convergence basin.
		step := 1.0
		var maxDv float64
		for _, x := range dv {
			if math.Abs(x) > maxDv {
				maxDv = math.Abs(x)
			}
		}
		if maxDv > 5*kt {
			step = 5 * kt / maxDv
		}
		var maxUpd float64
		for i := range v {
			v[i] += step * dv[i]
			if math.Abs(step*dv[i]) > maxUpd {
				maxUpd = math.Abs(step * dv[i])
			}
		}
		if maxUpd < tol {
			return v, nil
		}
	}
	return nil, fmt.Errorf("poisson: Newton did not converge in %d iterations", maxIter)
}

// solveTridiag solves a real tridiagonal system by the Thomas algorithm.
// low[i] couples node i to i−1, up[i] to i+1.
func solveTridiag(low, diag, up, rhs []float64) ([]float64, error) {
	n := len(diag)
	c := make([]float64, n)
	d := make([]float64, n)
	if diag[0] == 0 {
		return nil, fmt.Errorf("poisson: zero pivot in tridiagonal solve")
	}
	c[0] = up[0] / diag[0]
	d[0] = rhs[0] / diag[0]
	for i := 1; i < n; i++ {
		den := diag[i] - low[i]*c[i-1]
		if den == 0 {
			return nil, fmt.Errorf("poisson: zero pivot in tridiagonal solve at %d", i)
		}
		c[i] = up[i] / den
		d[i] = (rhs[i] - low[i]*d[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = d[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = d[i] - c[i]*x[i+1]
	}
	return x, nil
}

// GateAllAround1D is the compact electrostatic model of a cylindrical
// gate-all-around FET used by the self-consistent transport loop: the
// channel potential V(x) obeys a modified 1-D Poisson equation
//
//	ε_ch·V'' − (ε_ox/λ²)·(V − V_G*) = −ρ/ε₀,
//
// where λ is the natural electrostatic length of the geometry and V_G*
// the gate potential (flat-band corrected). Outside the gated window the
// screening term is absent. Contact ends are Dirichlet-pinned.
type GateAllAround1D struct {
	// Dx is the node spacing (nm).
	Dx float64
	// EpsChannel and EpsOxide are relative permittivities.
	EpsChannel, EpsOxide float64
	// Lambda is the screening length (nm).
	Lambda float64
	// GateMask marks nodes under the gate.
	GateMask []bool
	// VSource and VDrain pin the two end nodes (V).
	VSource, VDrain float64
}

// SolveLinearized performs one Gummel-stabilized Poisson update: the
// charge is linearized around the previous potential u0 as
// ρ(u) ≈ ρ₀ + ρ'·(u − u0) with ρ' = rhoDeriv ≤ 0 (for electrons,
// ∂n/∂U = −n/kT), which moves the exponential charge response onto the
// matrix diagonal and makes the self-consistent iteration robust through
// the threshold region.
func (g *GateAllAround1D) SolveLinearized(vg float64, rho, rhoDeriv, u0 []float64) ([]float64, error) {
	defer perf.StartPhase("poisson")()
	n := len(g.GateMask)
	if len(rho) != n || len(rhoDeriv) != n || len(u0) != n {
		return nil, fmt.Errorf("poisson: GAA linearized solve: inconsistent vector lengths")
	}
	if n < 3 {
		return nil, fmt.Errorf("poisson: GAA model needs at least 3 nodes")
	}
	h2 := g.EpsChannel / (g.Dx * g.Dx)
	kappa := g.EpsOxide / (g.Lambda * g.Lambda)
	low := make([]float64, n)
	diag := make([]float64, n)
	up := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		switch {
		case i == 0:
			diag[i] = 1
			rhs[i] = g.VSource
		case i == n-1:
			diag[i] = 1
			rhs[i] = g.VDrain
		default:
			low[i] = -h2
			up[i] = -h2
			diag[i] = 2*h2 - rhoDeriv[i]/units.Eps0
			rhs[i] = rho[i]/units.Eps0 - rhoDeriv[i]*u0[i]/units.Eps0
			if g.GateMask[i] {
				diag[i] += kappa
				rhs[i] += kappa * vg
			}
		}
	}
	return solveTridiag(low, diag, up, rhs)
}

// Solve returns the channel potential for gate voltage vg and the given
// charge density rho (e/nm³, negative for electrons).
func (g *GateAllAround1D) Solve(vg float64, rho []float64) ([]float64, error) {
	n := len(g.GateMask)
	if len(rho) != n {
		return nil, fmt.Errorf("poisson: GAA charge density has %d entries for %d nodes", len(rho), n)
	}
	if n < 3 {
		return nil, fmt.Errorf("poisson: GAA model needs at least 3 nodes")
	}
	h2 := g.EpsChannel / (g.Dx * g.Dx)
	kappa := g.EpsOxide / (g.Lambda * g.Lambda)
	low := make([]float64, n)
	diag := make([]float64, n)
	up := make([]float64, n)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		switch {
		case i == 0:
			diag[i] = 1
			rhs[i] = g.VSource
		case i == n-1:
			diag[i] = 1
			rhs[i] = g.VDrain
		default:
			low[i] = -h2
			up[i] = -h2
			diag[i] = 2 * h2
			rhs[i] = rho[i] / units.Eps0
			if g.GateMask[i] {
				diag[i] += kappa
				rhs[i] += kappa * vg
			}
		}
	}
	return solveTridiag(low, diag, up, rhs)
}
