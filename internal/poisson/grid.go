// Package poisson implements the electrostatic substrate of the simulator:
// a finite-difference Poisson solver on 1-D/2-D/3-D tensor grids with
// Dirichlet (gate/contact) and natural Neumann boundaries, solved by
// preconditioned conjugate gradients; a non-linear Newton solver with
// semiclassical carrier statistics for equilibrium initial guesses and
// pn-junction physics; and a gate-all-around 1-D device model used by the
// self-consistent transport loop.
package poisson

import (
	"fmt"
	"math"

	"repro/internal/perf"
	"repro/internal/units"
)

// Grid is a tensor-product finite-difference grid. Nz = 1 collapses to a
// 2-D problem, Ny = Nz = 1 to a 1-D problem. Potentials are in volts,
// lengths in nm, and charge densities in elementary charges per nm³.
type Grid struct {
	Nx, Ny, Nz int
	Dx, Dy, Dz float64
	// EpsR is the relative permittivity per node.
	EpsR []float64
	// Dirichlet marks nodes with fixed potential (gates, ohmic contacts).
	Dirichlet []bool
	// VFixed holds the fixed potential at Dirichlet nodes (V).
	VFixed []float64
}

// NewGrid allocates a uniform grid with unit relative permittivity and no
// Dirichlet nodes.
func NewGrid(nx, ny, nz int, dx, dy, dz float64) (*Grid, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("poisson: grid dimensions must be positive, got %d×%d×%d", nx, ny, nz)
	}
	if dx <= 0 || dy <= 0 || dz <= 0 {
		return nil, fmt.Errorf("poisson: grid spacings must be positive")
	}
	n := nx * ny * nz
	g := &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		Dx: dx, Dy: dy, Dz: dz,
		EpsR:      make([]float64, n),
		Dirichlet: make([]bool, n),
		VFixed:    make([]float64, n),
	}
	for i := range g.EpsR {
		g.EpsR[i] = 1
	}
	return g, nil
}

// N returns the total node count.
func (g *Grid) N() int { return g.Nx * g.Ny * g.Nz }

// Index maps (ix, iy, iz) to the flat node index.
func (g *Grid) Index(ix, iy, iz int) int { return (iz*g.Ny+iy)*g.Nx + ix }

// SetDirichlet fixes the potential of node (ix, iy, iz).
func (g *Grid) SetDirichlet(ix, iy, iz int, v float64) {
	i := g.Index(ix, iy, iz)
	g.Dirichlet[i] = true
	g.VFixed[i] = v
}

// applyOperator computes y = A·v where A is the negative divergence of
// ε∇ (SPD on the free nodes), with Dirichlet rows pinned to the identity.
// Face permittivities are harmonic means of the adjacent nodes.
func (g *Grid) applyOperator(v, y []float64) {
	hx2 := 1 / (g.Dx * g.Dx)
	hy2 := 1 / (g.Dy * g.Dy)
	hz2 := 1 / (g.Dz * g.Dz)
	harm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				i := g.Index(ix, iy, iz)
				if g.Dirichlet[i] {
					y[i] = v[i]
					continue
				}
				var diag, off float64
				couple := func(j int, w float64) {
					e := harm(g.EpsR[i], g.EpsR[j]) * w
					diag += e
					off += e * v[j]
				}
				if ix > 0 {
					couple(g.Index(ix-1, iy, iz), hx2)
				}
				if ix < g.Nx-1 {
					couple(g.Index(ix+1, iy, iz), hx2)
				}
				if iy > 0 {
					couple(g.Index(ix, iy-1, iz), hy2)
				}
				if iy < g.Ny-1 {
					couple(g.Index(ix, iy+1, iz), hy2)
				}
				if iz > 0 {
					couple(g.Index(ix, iy, iz-1), hz2)
				}
				if iz < g.Nz-1 {
					couple(g.Index(ix, iy, iz+1), hz2)
				}
				y[i] = diag*v[i] - off
			}
		}
	}
	perf.AddFlops(int64(g.N()) * 14)
}

// Solve computes the potential V (volts) satisfying
// −∇·(ε_r ∇V) = ρ/ε₀ on free nodes with the grid's boundary conditions,
// where rho is in e/nm³. It uses Jacobi-preconditioned conjugate
// gradients; tol is the relative residual target (e.g. 1e-10) and maxIter
// bounds the iterations (0 means 10·N).
func (g *Grid) Solve(rho []float64, tol float64, maxIter int) ([]float64, error) {
	defer perf.StartPhase("poisson")()
	n := g.N()
	if len(rho) != n {
		return nil, fmt.Errorf("poisson: charge density has %d entries for %d nodes", len(rho), n)
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	// Right-hand side: ρ/ε₀ on free nodes, pinned values on Dirichlet
	// nodes. Dirichlet coupling contributions are folded into b by
	// evaluating A on the pinned field.
	b := make([]float64, n)
	for i := range b {
		if g.Dirichlet[i] {
			b[i] = g.VFixed[i]
		} else {
			b[i] = rho[i] / units.Eps0
		}
	}
	x := make([]float64, n)
	copy(x, g.VFixed) // start from the pinned field; free nodes at 0
	r := make([]float64, n)
	g.applyOperator(x, r)
	var bnorm float64
	for i := range r {
		r[i] = b[i] - r[i]
		bnorm += b[i] * b[i]
	}
	bnorm = math.Sqrt(bnorm)
	if bnorm == 0 {
		return x, nil
	}
	// Jacobi preconditioner: diagonal of A.
	diag := g.operatorDiagonal()
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	var rz float64
	for i := range z {
		z[i] = r[i] / diag[i]
		p[i] = z[i]
		rz += r[i] * z[i]
	}
	for iter := 0; iter < maxIter; iter++ {
		g.applyOperator(p, ap)
		var pap float64
		for i := range p {
			pap += p[i] * ap[i]
		}
		if pap == 0 {
			break
		}
		alpha := rz / pap
		var rnorm float64
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
			rnorm += r[i] * r[i]
		}
		perf.AddFlops(int64(n) * 6)
		if math.Sqrt(rnorm) <= tol*bnorm {
			return x, nil
		}
		var rzNew float64
		for i := range z {
			z[i] = r[i] / diag[i]
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, fmt.Errorf("poisson: CG did not reach tol %g in %d iterations", tol, maxIter)
}

// operatorDiagonal returns diag(A) for the Jacobi preconditioner.
func (g *Grid) operatorDiagonal() []float64 {
	n := g.N()
	d := make([]float64, n)
	hx2 := 1 / (g.Dx * g.Dx)
	hy2 := 1 / (g.Dy * g.Dy)
	hz2 := 1 / (g.Dz * g.Dz)
	harm := func(a, b float64) float64 { return 2 * a * b / (a + b) }
	for iz := 0; iz < g.Nz; iz++ {
		for iy := 0; iy < g.Ny; iy++ {
			for ix := 0; ix < g.Nx; ix++ {
				i := g.Index(ix, iy, iz)
				if g.Dirichlet[i] {
					d[i] = 1
					continue
				}
				var diag float64
				if ix > 0 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix-1, iy, iz)]) * hx2
				}
				if ix < g.Nx-1 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix+1, iy, iz)]) * hx2
				}
				if iy > 0 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix, iy-1, iz)]) * hy2
				}
				if iy < g.Ny-1 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix, iy+1, iz)]) * hy2
				}
				if iz > 0 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix, iy, iz-1)]) * hz2
				}
				if iz < g.Nz-1 {
					diag += harm(g.EpsR[i], g.EpsR[g.Index(ix, iy, iz+1)]) * hz2
				}
				if diag == 0 {
					diag = 1 // isolated node (1×1×1 grid): pin to identity
				}
				d[i] = diag
			}
		}
	}
	return d
}
