package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// WorkerOptions configures RunWorker. The zero value is usable: anonymous
// identity, a private GOMAXPROCS pool, lease capacity equal to the pool
// width, single-attempt execution, no fault injection, no rejoin (a
// coordinator crash is surfaced as an error).
type WorkerOptions struct {
	// ID names the worker in coordinator-side diagnostics ("" lets the
	// coordinator assign one).
	ID string
	// Pool executes leased tasks (nil: a private GOMAXPROCS pool). A
	// one-worker pool makes each per-task perf delta the exact cost of
	// its own task, which is what lets the coordinator's merge reproduce
	// the single-process flop total: duplicates of re-dispatched tasks
	// are discarded delta and all, and with a serial pool a discarded
	// delta holds only the duplicate's own flops. A wider pool smears
	// concurrently running tasks into every delta, so once a duplicate
	// is discarded the cluster flop total undercounts — use width 1
	// whenever exact merged flop accounting matters.
	Pool *sched.Pool
	// Capacity is how many tasks to request per lease (default: the
	// pool's worker count). Production CLIs ask for several tasks per
	// width-1 pool (DefaultLeaseBatch) so the lease-request/grant
	// round-trip amortizes over a batch — one of the two halves of
	// keeping frames/task below one.
	Capacity int
	// UploadBatch is how many finished results to coalesce into one
	// upload frame (default: the lease capacity; minimum 1). A batch is
	// flushed when it reaches this size, when its oldest result has
	// waited a quarter of the lease TTL, and at lease end. With
	// UploadBatch 1 on the JSON wire the worker sends the v3
	// one-result-per-frame messages — the compatibility (and benchmark
	// baseline) shape.
	UploadBatch int
	// WireFormat is the worker's wire preference: "" or "binary"
	// advertises the compact binary payloads for hot messages (used only
	// when the coordinator accepts), "json" forces the v3 JSON wire.
	WireFormat string
	// Retry is the per-task retry policy, identical in semantics to
	// cluster.SweepOptions.Retry (zero value: single attempt).
	Retry resilience.Policy
	// Injector, when non-nil, deterministically perturbs tasks — the same
	// reproducible failure-drill hook the local engine takes.
	Injector *resilience.Injector
	// PerfNow samples the performance counters this worker's deltas are
	// computed from (default perf.TakeSnapshot, the process globals —
	// correct when the worker is its own process; in-process tests with
	// several workers inject per-worker counters here).
	PerfNow func() perf.Snapshot
	// SpecHash is the content hash of the run spec this worker was built
	// from, announced in the hello so a coordinator running a different
	// spec rejects the worker outright. The worker symmetrically refuses
	// a welcome whose hash differs from its own. "" skips both checks.
	SpecHash string
	// HandshakeTimeout bounds the wait for the coordinator's welcome
	// after sending hello (default 30s).
	HandshakeTimeout time.Duration
	// RejoinWindow is how long the worker keeps re-dialing after losing
	// its coordinator mid-run before giving up (0: rejoin disabled — a
	// pre-done hangup is then an error, never a silent clean exit). The
	// window restarts at each connection loss, so a worker survives any
	// number of coordinator restarts as long as each one comes back
	// within the window. Requires Dial.
	RejoinWindow time.Duration
	// Dial re-establishes the coordinator connection during a rejoin.
	// Typically a comms.DialRetry closure; its jittered exponential
	// backoff is what keeps a rejoining fleet from thundering-herding
	// the restarting coordinator.
	Dial func(ctx context.Context) (net.Conn, error)
	// OnRejoin, when non-nil, runs after a connection loss before the
	// re-handshake. CLIs use it to reset the worker's self-energy cache:
	// work executed under the dead epoch is discarded by the fence, and
	// a warm cache would otherwise let its re-dispatched twin skip the
	// decimation flops the serial run counts, breaking exact accounting.
	OnRejoin func()
	// Logf reports worker lifecycle events — connection loss, rejoin
	// attempts, epoch changes (default: standard error). Set to a no-op
	// to silence.
	Logf func(format string, args ...any)

	// forceProto, when non-zero, pins the protocol version announced in
	// the hello — in-package tests use it to simulate a legacy v3 worker
	// (JSON wire, one result per frame) against a v4 coordinator.
	forceProto int
}

// DefaultLeaseBatch is the lease capacity the CLIs request per width-1
// worker pool: enough tasks per grant that the request/grant round-trip
// and the coalesced result upload amortize to well under one frame per
// task, small enough that a straggling worker strands little work.
const DefaultLeaseBatch = 8

// RunWorker speaks the worker side of the protocol until the coordinator
// dismisses it with an explicit done message (returns nil) or ctx is
// canceled. Since protocol v3 a hangup is never a clean exit: losing the
// connection before done means the coordinator crashed. With a
// RejoinWindow the worker then re-dials (jittered backoff via Dial),
// re-handshakes, verifies it rejoined the same run (pinned RunID),
// adopts the new epoch, and resumes pulling leases; without one the
// crash is surfaced as an error.
//
// Each leased task runs under the retry policy and fault injector with
// exactly the attempt semantics of cluster.RunTasksResumable; a task that
// exhausts its budget is reported to the coordinator as failed rather
// than ending the worker, so quarantine decisions stay centralized.
func RunWorker(ctx context.Context, conn net.Conn, nBias, nK, nE int, opts WorkerOptions, fn cluster.SweepFunc) error {
	pool := opts.Pool
	if pool == nil {
		pool = sched.New(0)
	}
	capacity := opts.Capacity
	if capacity < 1 {
		capacity = pool.Workers()
	}
	perfNow := opts.PerfNow
	if perfNow == nil {
		perfNow = perf.TakeSnapshot
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "distrib: "+format+"\n", args...)
		}
	}

	uploadBatch := opts.UploadBatch
	if uploadBatch < 1 {
		uploadBatch = capacity
	}
	wantBin := true
	switch opts.WireFormat {
	case "", "binary", wireBin:
	case wireJSON:
		wantBin = false
	}
	proto := ProtoVersion
	if opts.forceProto != 0 {
		proto = opts.forceProto
	}
	if proto < ProtoVersion {
		wantBin = false // pre-v4 wire: JSON frames, one result per frame
	}

	w := &worker{
		pool: pool, capacity: capacity, uploadBatch: uploadBatch,
		proto: proto, wantBin: wantBin,
		nBias: nBias, nK: nK, nE: nE,
		retry: opts.Retry, injector: opts.Injector,
		perfNow: perfNow, fn: fn,
		opts: opts, logf: logf,
	}

	for {
		err := w.session(ctx, conn)
		conn = nil // each further session dials its own connection
		if err == nil {
			return nil // dismissed with done: the sweep is over for us
		}
		if resilience.Classify(err) == resilience.Permanent || ctx.Err() != nil {
			return err
		}
		// The coordinator vanished mid-run. Without a rejoin window that
		// is a crash to surface — the silent status-0 exit this error
		// path replaced would strand the sweep with nobody noticing.
		if opts.RejoinWindow <= 0 || opts.Dial == nil {
			return fmt.Errorf("distrib: lost coordinator before the sweep was done: %w", err)
		}
		logf("worker %s: lost coordinator (%v); rejoining for up to %v", w.name(), err, opts.RejoinWindow)
		if opts.OnRejoin != nil {
			opts.OnRejoin()
		}
		rejoinCtx, cancel := context.WithTimeout(ctx, opts.RejoinWindow)
		nc, derr := opts.Dial(rejoinCtx)
		cancel()
		if derr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("distrib: rejoin after losing coordinator (%v) failed: %w", err, derr)
		}
		conn = nc
	}
}

// worker is the state of one RunWorker invocation, spanning sessions.
type worker struct {
	pool          *sched.Pool
	capacity      int
	uploadBatch   int
	proto         int
	wantBin       bool   // advertise the binary wire in the hello
	wire          string // the current session's negotiated wire format
	nBias, nK, nE int
	retry         resilience.Policy
	injector      *resilience.Injector
	fn            cluster.SweepFunc
	opts          WorkerOptions
	logf          func(format string, args ...any)
	running       atomic.Int64

	perfNow func() perf.Snapshot
	perfMu  sync.Mutex
	last    perf.Snapshot

	// runID pins the run across sessions; epoch tracks the coordinator
	// incarnation the current session was welcomed into.
	runID string
	epoch uint64
}

// name identifies the worker in log lines.
func (w *worker) name() string {
	if w.opts.ID != "" {
		return w.opts.ID
	}
	return "(anonymous)"
}

// session runs one connection's worth of protocol: handshake, then the
// lease/result loop until dismissal or failure. A nil error means the
// coordinator sent done. Errors classify via resilience.Classify:
// Permanent ends RunWorker (rejections, run mismatches, caller
// cancellation), Transient sends it to the rejoin path (hangups,
// timeouts, corrupted frames).
func (w *worker) session(ctx context.Context, conn net.Conn) error {
	cd := comms.NewCodec(conn)
	defer cd.Close()
	// Wire observability: frames and bytes this worker moves ride the
	// process-global perf counters, so for out-of-process workers (whose
	// deltas come from perf.TakeSnapshot) they travel inside the per-task
	// deltas and merge cluster-wide at the coordinator.
	cd.Meter(meterWireSend, meterWireRecv)

	// A session-local context lets the heartbeat goroutine abort the
	// lease loop when its sends start failing — a one-way wedge (worker
	// can read but not write) would otherwise only surface once the
	// coordinator reaps our silent leases.
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	var hbFailed atomic.Bool

	hello := helloMsg{ID: w.opts.ID, Proto: w.proto, NBias: w.nBias, NK: w.nK, NE: w.nE, SpecHash: w.opts.SpecHash}
	if w.wantBin {
		hello.Wire = wireBin
	}
	if err := cd.Send(msgHello, hello); err != nil {
		return fmt.Errorf("distrib: hello: %w", err)
	}
	hsTimeout := w.opts.HandshakeTimeout
	if hsTimeout <= 0 {
		hsTimeout = 30 * time.Second
	}
	cd.SetReadDeadline(time.Now().Add(hsTimeout))
	t, payload, err := cd.Recv()
	cd.SetReadDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("distrib: handshake: %w", err)
	}
	var welcome welcomeMsg
	switch t {
	case msgWelcome:
		if err := decode(t, payload, &welcome); err != nil {
			return err
		}
		if w.opts.SpecHash != "" && welcome.SpecHash != "" && welcome.SpecHash != w.opts.SpecHash {
			return resilience.MarkPermanent(fmt.Errorf("distrib: coordinator runs a different spec (%.16s… vs this worker's %.16s…); refusing to pull its leases",
				welcome.SpecHash, w.opts.SpecHash))
		}
		if w.runID != "" && welcome.RunID != "" && welcome.RunID != w.runID {
			return resilience.MarkPermanent(fmt.Errorf("distrib: rejoined a different run (%s, expected %s) — another sweep reused the coordinator address; discarding nothing, contributing nothing",
				welcome.RunID, w.runID))
		}
		if welcome.RunID != "" {
			w.runID = welcome.RunID
		}
		if w.epoch != 0 && welcome.Epoch != 0 && welcome.Epoch != w.epoch {
			w.logf("worker %s: rejoined run %s at epoch %d (was %d); results from the dead epoch are fenced off", w.name(), w.runID, welcome.Epoch, w.epoch)
		}
		w.epoch = welcome.Epoch
		// The session's wire format is the coordinator's pick, honored
		// only if we offered binary — a coordinator cannot talk a JSON
		// worker into a format it never advertised. Each session (rejoins
		// included) renegotiates, so mixed-format failover works.
		w.wire = wireJSON
		if w.wantBin && welcome.Wire == wireBin {
			w.wire = wireBin
		}
	case msgDone:
		// The sweep finished before this worker arrived (or got back).
		cd.Send(msgBye, byeMsg{})
		return nil
	case msgError:
		var e errorMsg
		if err := decode(t, payload, &e); err != nil {
			return err
		}
		return resilience.MarkPermanent(fmt.Errorf("distrib: coordinator rejected worker: %s", e.Reason))
	default:
		return fmt.Errorf("distrib: unexpected handshake message type %d", t)
	}

	// The perf baseline restarts with the session: work executed under a
	// dead epoch was discarded by everyone (fence on the coordinator,
	// re-dispatch from the journal), so its flops must not leak into the
	// first delta of the new epoch.
	w.perfMu.Lock()
	w.last = w.perfNow()
	w.perfMu.Unlock()

	// Heartbeats: periodic liveness beacons on their own goroutine. A
	// send failure cancels the session — the connection is wedged or
	// dead, and waiting for a read deadline would just waste the lease.
	hbEvery := welcome.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbDone := make(chan struct{})
	// Close the codec before waiting: a heartbeat Send wedged against a
	// dead synchronous pipe only unblocks when the conn closes.
	defer func() { scancel(); cd.Close(); <-hbDone }()
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-sctx.Done():
				return
			case <-tick.C:
				hb := heartbeatMsg{Running: int(w.running.Load())}
				var err error
				if w.wire == wireBin {
					err = cd.SendBin(msgHeartbeatBin, func(bw *comms.BinWriter) { appendHeartbeatBin(bw, hb) })
				} else {
					err = cd.Send(msgHeartbeat, hb)
				}
				if err != nil {
					hbFailed.Store(true)
					scancel()
					return
				}
			}
		}
	}()

	// Liveness symmetry with the coordinator: while awaiting a lease
	// response, three missed heartbeat intervals of silence mean the
	// coordinator is wedged-but-connected — treat it like a crash.
	silence := 3*hbEvery + time.Second

	failed := func(err error) error {
		// Heartbeat-send failure caused the cancellation: rejoinable, so
		// mark it transient (the cancellation in its chain would
		// otherwise classify it permanent).
		if hbFailed.Load() && ctx.Err() == nil {
			return resilience.MarkTransient(fmt.Errorf("distrib: heartbeat send failed (coordinator connection wedged): %w", err))
		}
		return err
	}

	for {
		if err := sctx.Err(); err != nil {
			return failed(err)
		}
		if err := cd.Send(msgLeaseRequest, leaseRequestMsg{Capacity: w.capacity}); err != nil {
			return failed(fmt.Errorf("distrib: lease request: %w", err))
		}
		cd.SetReadDeadline(time.Now().Add(silence))
		t, payload, err := cd.Recv()
		cd.SetReadDeadline(time.Time{})
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				return failed(fmt.Errorf("distrib: coordinator silent for %v awaiting lease: %w", silence, err))
			}
			return failed(fmt.Errorf("distrib: awaiting lease: %w", err))
		}
		var lease leaseMsg
		switch t {
		case msgLease:
			if err := decode(t, payload, &lease); err != nil {
				return err
			}
		case msgLeaseBin:
			var err error
			if lease, err = decodeLeaseBin(payload); err != nil {
				return err
			}
		case msgDone:
			cd.Send(msgBye, byeMsg{})
			return nil
		case msgError:
			var e errorMsg
			if err := decode(t, payload, &e); err != nil {
				return err
			}
			return resilience.MarkPermanent(fmt.Errorf("distrib: coordinator error: %s", e.Reason))
		default:
			return fmt.Errorf("distrib: unexpected message type %d awaiting lease", t)
		}
		if len(lease.Tasks) == 0 {
			wait := lease.RetryAfter
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			timer := time.NewTimer(wait)
			select {
			case <-sctx.Done():
				timer.Stop()
				return failed(sctx.Err())
			case <-timer.C:
			}
			continue
		}
		w.running.Store(int64(len(lease.Tasks)))
		err = w.runLease(sctx, cd, lease)
		w.running.Store(0)
		if err != nil {
			return failed(err)
		}
	}
}

// runLease executes one lease's tasks on the pool and reports results
// (success or exhausted failure) to the coordinator, tagged with the
// session's epoch and coalesced into batched uploads (see uploader).
// Only transport-level send failures end the lease early.
func (w *worker) runLease(ctx context.Context, cd *comms.Codec, lease leaseMsg) error {
	up := newUploader(cd, w.wire, w.proto, w.uploadBatch, lease.TTL)
	tasks := lease.Tasks
	err := w.pool.ForEach(ctx, "distrib-lease", len(tasks), func(ctx context.Context, i int) error {
		idx := tasks[i]
		t := cluster.TaskAt(idx, w.nK, w.nE)
		var payload []byte
		attempt := 0
		runErr := w.retry.Do(ctx, func(actx context.Context) error {
			a := attempt
			attempt++
			if err := w.injector.Trip(actx, idx, a); err != nil {
				return err
			}
			b, err := w.fn(actx, t)
			if err != nil {
				return err
			}
			payload = b
			return nil
		})
		if runErr != nil && ctx.Err() != nil {
			return runErr // canceled mid-task: nothing to report
		}
		res := resultMsg{Task: idx, Retries: attempt - 1, Perf: w.perfDelta(), Epoch: w.epoch}
		if runErr != nil {
			res.Failed = true
			res.Error = runErr.Error()
		} else {
			res.Payload = payload
		}
		return up.add(res)
	})
	if err != nil {
		if te, ok := sched.AsTaskError(err); ok {
			err = te.Err
		}
		if ctx.Err() != nil {
			return err // canceled: the lease will expire, nothing to flush
		}
		// A task failed terminally but results already accumulated still
		// belong to the coordinator; flush them before surfacing.
		up.flush()
		return err
	}
	return up.flush()
}

// uploader coalesces finished results into batched upload frames: one
// frame per UploadBatch results instead of one per task. A batch also
// flushes when its oldest result has waited a quarter of the lease TTL,
// so a batch can never age a lease into expiry, and at lease end. On
// the JSON wire with batch size 1 it degrades to exactly the v3
// one-result-per-frame messages (what a v3 coordinator understands).
type uploader struct {
	cd         *comms.Codec
	wire       string
	proto      int
	max        int
	flushAfter time.Duration

	mu     sync.Mutex
	buf    []resultMsg
	oldest time.Time
}

// newUploader sizes an uploader for one lease.
func newUploader(cd *comms.Codec, wire string, proto, max int, ttl time.Duration) *uploader {
	if max < 1 {
		max = 1
	}
	flushAfter := ttl / 4
	if flushAfter <= 0 {
		flushAfter = time.Second
	}
	return &uploader{cd: cd, wire: wire, proto: proto, max: max, flushAfter: flushAfter}
}

// add queues one result, flushing when the batch is full or overdue.
func (u *uploader) add(res resultMsg) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.buf) == 0 {
		u.oldest = time.Now()
	}
	u.buf = append(u.buf, res)
	if len(u.buf) >= u.max || time.Since(u.oldest) >= u.flushAfter {
		return u.flushLocked()
	}
	return nil
}

// flush sends any buffered results.
func (u *uploader) flush() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.flushLocked()
}

// flushLocked sends the buffered batch as one frame (or, pre-v4 or for
// a single JSON result, as v3 singles). Callers hold mu; the send is
// serialized by the codec anyway, and holding mu keeps batch order
// deterministic.
func (u *uploader) flushLocked() error {
	if len(u.buf) == 0 {
		return nil
	}
	batch := u.buf
	u.buf = u.buf[:0]
	switch {
	case u.wire == wireBin:
		return u.cd.SendBin(msgResultBatchBin, func(bw *comms.BinWriter) {
			appendResultBatchBin(bw, batch)
		})
	case u.proto < ProtoVersion || len(batch) == 1:
		// v3 compatibility (and the minimal shape for a lone result): one
		// resultMsg frame per task.
		for i := range batch {
			if err := u.cd.Send(msgResult, batch[i]); err != nil {
				return err
			}
		}
		return nil
	default:
		return u.cd.Send(msgResultBatch, resultBatchMsg{Results: batch})
	}
}

// perfDelta returns the counters accrued since the previous delta (or
// since the session began). Successive deltas partition this worker's
// counters exactly, with no overlap and no gap — but the coordinator
// discards the deltas of duplicate results, so its sum equals the
// worker's true total only when every delta it keeps is self-contained. A
// serial pool guarantees that: each delta is then the exact cost of its
// own task (see WorkerOptions.Pool for the concurrent-pool caveat).
func (w *worker) perfDelta() perf.Snapshot {
	w.perfMu.Lock()
	defer w.perfMu.Unlock()
	now := w.perfNow()
	d := now.Diff(w.last)
	w.last = now
	return d
}

// isHangup reports whether err means the peer closed the connection.
// Since protocol v3 this is never a clean dismissal — done is explicit —
// so a hangup classifies the session as crashed and (when a rejoin
// window is configured) re-joinable.
func isHangup(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}
