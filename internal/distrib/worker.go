package distrib

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/perf"
	"repro/internal/resilience"
	"repro/internal/sched"
)

// WorkerOptions configures RunWorker. The zero value is usable: anonymous
// identity, a private GOMAXPROCS pool, lease capacity equal to the pool
// width, single-attempt execution, no fault injection.
type WorkerOptions struct {
	// ID names the worker in coordinator-side diagnostics ("" lets the
	// coordinator assign one).
	ID string
	// Pool executes leased tasks (nil: a private GOMAXPROCS pool). A
	// one-worker pool makes each per-task perf delta the exact cost of
	// its own task, which is what lets the coordinator's merge reproduce
	// the single-process flop total: duplicates of re-dispatched tasks
	// are discarded delta and all, and with a serial pool a discarded
	// delta holds only the duplicate's own flops. A wider pool smears
	// concurrently running tasks into every delta, so once a duplicate
	// is discarded the cluster flop total undercounts — use width 1
	// whenever exact merged flop accounting matters.
	Pool *sched.Pool
	// Capacity is how many tasks to request per lease (default: the
	// pool's worker count).
	Capacity int
	// Retry is the per-task retry policy, identical in semantics to
	// cluster.SweepOptions.Retry (zero value: single attempt).
	Retry resilience.Policy
	// Injector, when non-nil, deterministically perturbs tasks — the same
	// reproducible failure-drill hook the local engine takes.
	Injector *resilience.Injector
	// PerfNow samples the performance counters this worker's deltas are
	// computed from (default perf.TakeSnapshot, the process globals —
	// correct when the worker is its own process; in-process tests with
	// several workers inject per-worker counters here).
	PerfNow func() perf.Snapshot
	// SpecHash is the content hash of the run spec this worker was built
	// from, announced in the hello so a coordinator running a different
	// spec rejects the worker outright. The worker symmetrically refuses
	// a welcome whose hash differs from its own. "" skips both checks.
	SpecHash string
}

// RunWorker speaks the worker side of the protocol over conn until the
// coordinator declares the sweep done (returns nil), the connection drops
// (a hang-up after the handshake also returns nil — the coordinator only
// hangs up when the run is over, and if it ended in failure the
// coordinator process is the one reporting it), or ctx is canceled.
//
// Each leased task runs under the retry policy and fault injector with
// exactly the attempt semantics of cluster.RunTasksResumable; a task that
// exhausts its budget is reported to the coordinator as failed rather
// than ending the worker, so quarantine decisions stay centralized.
func RunWorker(ctx context.Context, conn net.Conn, nBias, nK, nE int, opts WorkerOptions, fn cluster.SweepFunc) error {
	cd := comms.NewCodec(conn)
	defer cd.Close()
	pool := opts.Pool
	if pool == nil {
		pool = sched.New(0)
	}
	capacity := opts.Capacity
	if capacity < 1 {
		capacity = pool.Workers()
	}
	perfNow := opts.PerfNow
	if perfNow == nil {
		perfNow = perf.TakeSnapshot
	}

	if err := cd.Send(msgHello, helloMsg{ID: opts.ID, Proto: ProtoVersion, NBias: nBias, NK: nK, NE: nE, SpecHash: opts.SpecHash}); err != nil {
		return fmt.Errorf("distrib: hello: %w", err)
	}
	cd.SetReadDeadline(time.Now().Add(30 * time.Second))
	t, payload, err := cd.Recv()
	cd.SetReadDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("distrib: handshake: %w", err)
	}
	var welcome welcomeMsg
	switch t {
	case msgWelcome:
		if err := decode(t, payload, &welcome); err != nil {
			return err
		}
		if opts.SpecHash != "" && welcome.SpecHash != "" && welcome.SpecHash != opts.SpecHash {
			return fmt.Errorf("distrib: coordinator runs a different spec (%.16s… vs this worker's %.16s…); refusing to pull its leases",
				welcome.SpecHash, opts.SpecHash)
		}
	case msgError:
		var e errorMsg
		if err := decode(t, payload, &e); err != nil {
			return err
		}
		return fmt.Errorf("distrib: coordinator rejected worker: %s", e.Reason)
	case msgLease:
		// The sweep finished before this worker arrived.
		var l leaseMsg
		if err := decode(t, payload, &l); err != nil {
			return err
		}
		if l.Done {
			cd.Send(msgBye, byeMsg{})
			return nil
		}
		return fmt.Errorf("distrib: unexpected lease before welcome")
	default:
		return fmt.Errorf("distrib: unexpected handshake message type %d", t)
	}

	w := &worker{
		cd: cd, pool: pool,
		nK: nK, nE: nE,
		retry: opts.Retry, injector: opts.Injector,
		perfNow: perfNow, fn: fn,
	}
	w.last = perfNow()

	// Heartbeats: fire-and-forget liveness beacons on their own goroutine.
	// A send failure here is not acted on — the main loop sees the dead
	// connection on its next exchange.
	hbEvery := welcome.HeartbeatEvery
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	defer hbCancel()
	go func() {
		tick := time.NewTicker(hbEvery)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				cd.Send(msgHeartbeat, heartbeatMsg{Running: int(w.running.Load())})
			}
		}
	}()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := cd.Send(msgLeaseRequest, leaseRequestMsg{Capacity: capacity}); err != nil {
			if isHangup(err) {
				return nil
			}
			return fmt.Errorf("distrib: lease request: %w", err)
		}
		t, payload, err := cd.Recv()
		if err != nil {
			if isHangup(err) {
				return nil
			}
			return fmt.Errorf("distrib: awaiting lease: %w", err)
		}
		switch t {
		case msgLease:
		case msgError:
			var e errorMsg
			if err := decode(t, payload, &e); err != nil {
				return err
			}
			return fmt.Errorf("distrib: coordinator error: %s", e.Reason)
		default:
			return fmt.Errorf("distrib: unexpected message type %d awaiting lease", t)
		}
		var lease leaseMsg
		if err := decode(t, payload, &lease); err != nil {
			return err
		}
		if lease.Done {
			cd.Send(msgBye, byeMsg{})
			return nil
		}
		if len(lease.Tasks) == 0 {
			wait := lease.RetryAfter
			if wait <= 0 {
				wait = 50 * time.Millisecond
			}
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			case <-timer.C:
			}
			continue
		}
		w.running.Store(int64(len(lease.Tasks)))
		err = w.runLease(ctx, lease.Tasks)
		w.running.Store(0)
		if err != nil {
			if isHangup(err) {
				return nil
			}
			return err
		}
	}
}

// worker is the state of one RunWorker invocation.
type worker struct {
	cd       *comms.Codec
	pool     *sched.Pool
	nK, nE   int
	retry    resilience.Policy
	injector *resilience.Injector
	fn       cluster.SweepFunc
	running  atomic.Int64

	perfNow func() perf.Snapshot
	perfMu  sync.Mutex
	last    perf.Snapshot
}

// runLease executes one lease's tasks on the pool and reports each result
// (success or exhausted failure) to the coordinator. Only transport-level
// send failures end the lease early.
func (w *worker) runLease(ctx context.Context, tasks []int) error {
	err := w.pool.ForEach(ctx, "distrib-lease", len(tasks), func(ctx context.Context, i int) error {
		idx := tasks[i]
		t := cluster.TaskAt(idx, w.nK, w.nE)
		var payload []byte
		attempt := 0
		runErr := w.retry.Do(ctx, func(actx context.Context) error {
			a := attempt
			attempt++
			if err := w.injector.Trip(actx, idx, a); err != nil {
				return err
			}
			b, err := w.fn(actx, t)
			if err != nil {
				return err
			}
			payload = b
			return nil
		})
		if runErr != nil && ctx.Err() != nil {
			return runErr // canceled mid-task: nothing to report
		}
		res := resultMsg{Task: idx, Retries: attempt - 1, Perf: w.perfDelta()}
		if runErr != nil {
			res.Failed = true
			res.Error = runErr.Error()
		} else {
			res.Payload = payload
		}
		return w.cd.Send(msgResult, res)
	})
	if err != nil {
		if te, ok := sched.AsTaskError(err); ok {
			return te.Err
		}
	}
	return err
}

// perfDelta returns the counters accrued since the previous delta (or
// since startup). Successive deltas partition this worker's counters
// exactly, with no overlap and no gap — but the coordinator discards the
// deltas of duplicate results, so its sum equals the worker's true total
// only when every delta it keeps is self-contained. A serial pool
// guarantees that: each delta is then the exact cost of its own task
// (see WorkerOptions.Pool for the concurrent-pool caveat).
func (w *worker) perfDelta() perf.Snapshot {
	w.perfMu.Lock()
	defer w.perfMu.Unlock()
	now := w.perfNow()
	d := now.Diff(w.last)
	w.last = now
	return d
}

// isHangup reports whether err means the peer closed the connection — the
// coordinator's normal way of dismissing workers once the sweep is over.
func isHangup(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}
