package distrib

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/comms"
	"repro/internal/perf"
)

// ErrDrained is returned by Serve when a graceful drain (Options.Drain)
// dismissed the workers before the sweep completed. The report still
// carries the completed/restored accounting, every accepted result is in
// the journal, and a later -resume finishes the remainder.
var ErrDrained = errors.New("distrib: sweep drained before completion")

// Options configures Serve. The zero value is usable: 30 s leases,
// heartbeats at a quarter of that, no journal, fail on the first
// unsalvageable task.
type Options struct {
	// LeaseTimeout is how long a worker may hold a task before the
	// coordinator assumes it straggled or died and re-dispatches the task
	// (default 30s). It must comfortably exceed the cost of one task.
	LeaseTimeout time.Duration
	// HeartbeatEvery is the liveness beacon interval imposed on workers
	// (default LeaseTimeout/4, clamped to [100ms, 5s]). A worker silent
	// for three intervals is declared dead and its leases re-dispatched.
	HeartbeatEvery time.Duration
	// RetryAfter is the back-off told to an idle worker when every
	// remaining task is leased elsewhere (default 50ms).
	RetryAfter time.Duration
	// Journal, when non-nil, records every accepted result and seeds the
	// done set on startup — the same checkpoint/restart contract as
	// cluster.SweepOptions.Journal. First-result-wins dedup guarantees at
	// most one record per task is appended per run.
	Journal cluster.Checkpointer
	// Restore reinstates payloads into the caller's accumulators, both
	// for journaled records at startup and for results as they arrive.
	Restore cluster.RestoreFunc
	// Quarantine, MaxQuarantineFrac: as in cluster.SweepOptions — a task
	// whose worker-side retry budget is exhausted is set aside instead of
	// failing the sweep, up to the budget (default 25% of the grid).
	Quarantine        bool
	MaxQuarantineFrac float64
	// OnProgress observes completion (restored + completed + quarantined,
	// total). Must be cheap and thread-safe.
	OnProgress func(done, total int)
	// OnResult observes each committed result — after the journal append
	// and Restore, so an observer that reads the journal on the callback
	// is guaranteed to see the record. Duplicates and epoch-stale results
	// never reach it. Must be cheap and thread-safe; it runs on the
	// worker-connection goroutine that delivered the result.
	OnResult func(task cluster.Task, payload []byte)
	// SpecHash, when non-empty, is the content hash of the run spec this
	// coordinator executes (spec.RunSpec.SpecHash). A worker whose hello
	// carries a different hash is rejected at handshake — the grid-dims
	// check below only catches size mismatches, while the spec hash
	// covers the device, energy window, formalism, and solver knobs that
	// actually determine results. Empty disables the check (callers
	// driving the protocol without a spec).
	SpecHash string
	// RunID names the run instance across coordinator incarnations (the
	// journal header's RunID). Rejoining workers pin it: a changed RunID
	// means a different run reused the address. Empty disables fencing.
	RunID string
	// Epoch is this coordinator incarnation's number within the run (1
	// for a first start, bumped by the supervisor on every restart —
	// cluster.FileJournal.BumpEpoch persists it). Results tagged with an
	// older epoch are discarded: their tasks were already re-dispatched
	// from the journal-seeded lease table. Zero disables fencing.
	Epoch uint64
	// Shards is the number of coordinator scheduling shards the task grid
	// is partitioned across (default 1 — the classic single FIFO). Each
	// worker is homed on one shard round-robin at registration and is
	// granted leases from its home shard's queue; a worker whose home
	// shard is empty steals a capacity-sized batch from the most loaded
	// shard, so a slow shard never idles the fleet. Shards partition
	// scheduling, not locking or the journal: all shards share one lease
	// table, one mutex, and one journal (records are shard-tagged), which
	// keeps exactly-once commits and epoch fencing exactly as strong as
	// the single-shard engine — the wire, not the lock, is what caps
	// scaling at fleet sizes.
	Shards int
	// WireFormat picks the wire for the hot messages: "" or "binary"
	// offers the compact binary payloads to v4 workers that advertise
	// them; "json" forces the v3 JSON wire for every worker. Pure
	// transport knob — results are bitwise identical either way.
	WireFormat string
	// ShardHold is a failure-drill knob (CLI -shard-hold): for this long
	// after startup, workers homed on shard 0 are told to back off
	// instead of being granted leases, so other shards drain their own
	// partitions and then demonstrably steal shard 0's. Zero (the
	// default, and anything with Shards < 2) disables it.
	ShardHold time.Duration
	// Drain, when non-nil, triggers a graceful drain when it becomes
	// receivable (close it): the coordinator stops granting leases,
	// dismisses workers with done as they ask for more work, keeps
	// accepting and journaling in-flight results until none are
	// outstanding or DrainTimeout passes, then returns ErrDrained with
	// the partial accounting. This is the SIGTERM path of `omen -serve`.
	Drain <-chan struct{}
	// DrainTimeout bounds how long a drain waits for outstanding leases
	// to resolve (default 10s).
	DrainTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.LeaseTimeout <= 0 {
		o.LeaseTimeout = 30 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = o.LeaseTimeout / 4
		if o.HeartbeatEvery < 100*time.Millisecond {
			o.HeartbeatEvery = 100 * time.Millisecond
		}
		if o.HeartbeatEvery > 5*time.Second {
			o.HeartbeatEvery = 5 * time.Second
		}
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 50 * time.Millisecond
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	return o
}

// binWire reports whether the coordinator offers the binary wire.
func (o Options) binWire() bool {
	switch o.WireFormat {
	case "", "binary", wireBin:
		return true
	default:
		return false
	}
}

// Report summarizes a distributed sweep: the familiar per-task accounting
// plus the cluster-level quantities only the coordinator can see.
type Report struct {
	// Sweep is the task accounting, type-compatible with the local
	// engine's report so assembly code is path-agnostic.
	Sweep *cluster.SweepReport
	// Workers is the number of distinct workers that ever connected.
	Workers int
	// Redispatched counts leases reclaimed from dead, silent, or
	// straggling workers and handed to another worker.
	Redispatched int
	// Perf is the cluster-wide merge of the per-task performance deltas
	// of every accepted result: total flops and per-phase wall/flop
	// attribution across all workers. When each worker executes its tasks
	// serially (a 1-wide pool — the CLIs' self-spawn default), the flop
	// total is exact: each delta is then the exact cost of its own task,
	// so summing only winning results reproduces the single-process
	// count. With a wider pool, deltas smear concurrently running tasks
	// together, and discarding a duplicate's delta also discards flops
	// that belong to winning tasks — the total then undercounts whenever
	// a lease was re-dispatched, and is approximate in general.
	//
	// Across coordinator restarts exactness additionally relies on the
	// journal persisting each record's perf delta (TaskRecord.Perf,
	// re-summed at seed time) and on rejoining workers resetting their
	// perf baseline and σ-cache, so work discarded with a dead epoch
	// neither leaks into nor is shaved off later deltas.
	Perf perf.Snapshot
	// StaleEpoch counts results discarded by the epoch fence — reported
	// by a worker that computed them under a previous coordinator
	// incarnation.
	StaleEpoch int
	// Shards is the number of scheduling shards the grid was partitioned
	// across (1 for the classic single-queue coordinator).
	Shards int
	// Steals counts lease grants served by stealing from another shard's
	// queue because the worker's home shard was empty.
	Steals int
}

// task lease states.
const (
	statePending uint8 = iota
	stateLeased
	stateCommitting // result accepted; journal append + restore in flight outside the mutex
	stateDone
	stateQuarantined
)

// taskState is one cell of the coordinator's lease table.
type taskState struct {
	phase    uint8
	worker   string
	deadline time.Time
}

// workerState is the coordinator's view of one connected worker.
type workerState struct {
	id     string
	cd     *comms.Codec
	leased map[int]bool
	wire   string // negotiated wire format for this connection
	home   int    // scheduling shard this worker is homed on
}

// coordinator owns the lease table of one sweep.
type coordinator struct {
	opts          Options
	nBias, nK, nE int
	total         int
	maxQuarantine int

	mu sync.Mutex
	st []taskState
	// commitMu serializes journal appends and Restore calls for accepted
	// results. It is separate from mu so that lease grants, heartbeats,
	// and the reaper never wait behind a journal fsync, while Restore
	// keeps the same never-called-concurrently contract the local
	// engine's replay gives it.
	commitMu sync.Mutex
	// shards holds the per-shard pending FIFOs: contiguous blocks of the
	// flat grid, so shard 0 owns the lowest (bias,k,E) indices. Queues
	// may hold stale entries (see popPendingLocked). With Shards 1 this
	// is the classic single queue.
	shards       [][]int
	nextHome     int // round-robin cursor for homing new workers
	start        time.Time
	steals       int // grants served from another shard's queue
	grants       int // non-empty lease grants
	batchedGrant int // grants carrying more than one task
	remaining    int // tasks not yet done or quarantined
	quarantined  []int
	restored     int
	completed    int
	retries      int
	redispatched int
	workersSeen  int
	workers      map[string]*workerState
	perf         perf.Snapshot
	staleEpoch   int
	failure      error
	finished     bool
	draining     bool // drain requested: grant nothing, dismiss on request
	drained      bool // drain completed the shutdown before the sweep finished
	done         chan struct{}

	// Coordinator-side wire accounting (the workers' sides ride their
	// perf deltas). Atomics: the codec meters fire on every connection
	// goroutine.
	framesSent, framesRecv atomic.Int64
	bytesSent, bytesRecv   atomic.Int64
}

// shardOf maps a task index to the shard owning it: contiguous balanced
// blocks, deterministic for the life of the run (journal shard tags stay
// meaningful across restarts with the same -shards).
func (c *coordinator) shardOf(idx int) int {
	if len(c.shards) <= 1 {
		return 0
	}
	return idx * len(c.shards) / c.total
}

// Serve runs a sweep's coordinator: it shards the nBias × nK × nE task
// grid over the workers that connect to lis, re-dispatches lost leases,
// and returns when every task is accounted for (or the run fails, or ctx
// is canceled). The listener is closed before Serve returns. Even on
// error the report describes how far the sweep got.
func Serve(ctx context.Context, lis net.Listener, nBias, nK, nE int, opts Options) (*Report, error) {
	if nBias < 1 || nK < 1 || nE < 1 {
		lis.Close()
		return nil, fmt.Errorf("distrib: task counts must be positive")
	}
	opts = opts.withDefaults()
	total := nBias * nK * nE
	nShards := opts.Shards
	if nShards > total {
		nShards = total // never more shards than tasks
	}
	c := &coordinator{
		opts:  opts,
		nBias: nBias, nK: nK, nE: nE,
		total:         total,
		maxQuarantine: quarantineBudget(opts, total),
		st:            make([]taskState, total),
		shards:        make([][]int, nShards),
		start:         time.Now(),
		workers:       make(map[string]*workerState),
		done:          make(chan struct{}),
	}
	rep := &Report{Sweep: &cluster.SweepReport{Total: total}}

	// Seed the done set from the journal, exactly like the local engine.
	if opts.Journal != nil {
		recs, err := opts.Journal.Load()
		if err != nil {
			lis.Close()
			return rep, fmt.Errorf("distrib: resume: %w", err)
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= total || c.st[rec.Index].phase == stateDone {
				continue
			}
			if opts.Restore != nil {
				if err := opts.Restore(cluster.TaskAt(rec.Index, nK, nE), rec.Payload); err != nil {
					lis.Close()
					return rep, fmt.Errorf("distrib: restore task %d: %w", rec.Index, err)
				}
			}
			if rec.Perf != nil {
				// Re-sum the persisted per-task perf deltas so a restarted
				// coordinator's merged flop total stays exactly the serial
				// count (see Report.Perf).
				c.perf.Add(*rec.Perf)
			}
			c.st[rec.Index].phase = stateDone
			c.restored++
		}
	}
	c.remaining = 0
	for i := 0; i < total; i++ {
		if c.st[i].phase == statePending {
			sh := c.shardOf(i)
			c.shards[sh] = append(c.shards[sh], i)
			c.remaining++
		}
	}
	c.progress()
	if c.remaining == 0 {
		lis.Close()
		c.fill(rep)
		return rep, nil
	}

	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.acceptLoop(ctx2, lis, &wg)
	}()
	go func() {
		defer wg.Done()
		c.reap(ctx2)
	}()
	if opts.Drain != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.drainWatch(ctx2)
		}()
	}

	select {
	case <-c.done:
	case <-ctx.Done():
		c.fail(ctx.Err())
	}
	cancel()
	lis.Close()
	// On a clean finish (drain included), give connected workers a moment
	// to pick up their explicit done dismissal and sign off — without it,
	// a worker whose lease request races the teardown sees a hangup,
	// which since protocol v3 means "coordinator crashed" and would send
	// it into its rejoin loop for nothing.
	if c.cleanSoFar() {
		c.awaitGoodbyes(2 * time.Second)
	}
	c.closeConns()
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.fill(rep)
	if c.failure == nil && c.drained && c.remaining > 0 {
		return rep, ErrDrained
	}
	return rep, c.failure
}

// cleanSoFar reports whether no fatal error has been recorded.
func (c *coordinator) cleanSoFar() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure == nil
}

// awaitGoodbyes waits (bounded by grace) for every connected worker to
// receive its done dismissal and disconnect.
func (c *coordinator) awaitGoodbyes(grace time.Duration) {
	deadline := time.Now().Add(grace)
	for {
		c.mu.Lock()
		n := len(c.workers)
		c.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// drainWatch arms the graceful-drain path: when Options.Drain fires, stop
// granting, let in-flight leases resolve (results are still accepted and
// journaled), and force the shutdown when DrainTimeout passes first.
func (c *coordinator) drainWatch(ctx context.Context) {
	select {
	case <-ctx.Done():
		return
	case <-c.done:
		return
	case <-c.opts.Drain:
	}
	c.mu.Lock()
	c.draining = true
	c.maybeFinishDrainLocked()
	c.mu.Unlock()
	timer := time.NewTimer(c.opts.DrainTimeout)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-c.done:
	case <-timer.C:
		c.mu.Lock()
		c.finishDrainLocked()
		c.mu.Unlock()
	}
}

// maybeFinishDrainLocked completes a drain once no lease is outstanding:
// every task is pending (safely re-dispatchable from the journal on
// resume), committing results have landed, and nothing more will arrive.
func (c *coordinator) maybeFinishDrainLocked() {
	if !c.draining || c.finished {
		return
	}
	for i := range c.st {
		if p := c.st[i].phase; p == stateLeased || p == stateCommitting {
			return
		}
	}
	c.finishDrainLocked()
}

// finishDrainLocked ends the run as drained (idempotent).
func (c *coordinator) finishDrainLocked() {
	if c.finished {
		return
	}
	c.finished = true
	c.drained = true
	close(c.done)
}

// quarantineBudget mirrors cluster.RunTasksResumable's budget arithmetic.
func quarantineBudget(opts Options, total int) int {
	if !opts.Quarantine {
		return 0
	}
	frac := opts.MaxQuarantineFrac
	if frac <= 0 {
		frac = 0.25
	}
	if frac >= 1 {
		return total
	}
	n := int(frac * float64(total))
	if n < 1 {
		n = 1
	}
	return n
}

// fill writes the coordinator's accounting into rep. Callers hold mu or
// have exclusive access.
func (c *coordinator) fill(rep *Report) {
	rep.Sweep.Restored = c.restored
	rep.Sweep.Completed = c.completed
	rep.Sweep.Retries = c.retries
	sort.Ints(c.quarantined)
	rep.Sweep.Quarantined = nil
	for _, idx := range c.quarantined {
		rep.Sweep.Quarantined = append(rep.Sweep.Quarantined, cluster.TaskAt(idx, c.nK, c.nE))
	}
	rep.Workers = c.workersSeen
	rep.Redispatched = c.redispatched
	rep.Perf = c.perf
	rep.StaleEpoch = c.staleEpoch
	rep.Shards = len(c.shards)
	rep.Steals = c.steals

	// Fold the coordinator's own wire and scheduling counters into the
	// merged perf snapshot (the workers' wire counters already arrived
	// inside their per-task deltas). Counters are copied before the fold:
	// rep.Perf shares c.perf's maps, which must stay a pure sum of
	// deltas for a possible later fill.
	extra := map[string]int64{
		"wire-frames-sent": c.framesSent.Load(),
		"wire-frames-recv": c.framesRecv.Load(),
		"wire-bytes-sent":  c.bytesSent.Load(),
		"wire-bytes-recv":  c.bytesRecv.Load(),
		"shard-steals":     int64(c.steals),
		"batched-grants":   int64(c.batchedGrant),
		"lease-grants":     int64(c.grants),
	}
	merged := make(map[string]int64, len(c.perf.Counters)+len(extra))
	for k, v := range c.perf.Counters {
		merged[k] = v
	}
	for k, v := range extra {
		if v != 0 {
			merged[k] += v
		}
	}
	if len(merged) > 0 {
		rep.Perf.Counters = merged
	}
}

// acceptLoop admits workers until the listener closes.
func (c *coordinator) acceptLoop(ctx context.Context, lis net.Listener, wg *sync.WaitGroup) {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.handle(ctx, conn)
		}()
	}
}

// handle speaks the protocol with one worker for the life of its
// connection. On any exit — clean bye, crash, protocol violation — the
// worker's outstanding leases go back to the pending queue.
func (c *coordinator) handle(ctx context.Context, conn net.Conn) {
	cd := comms.NewCodec(conn)
	defer cd.Close()
	cd.Meter(
		func(n int) { c.framesSent.Add(1); c.bytesSent.Add(int64(n)) },
		func(n int) { c.framesRecv.Add(1); c.bytesRecv.Add(int64(n)) },
	)

	// The hello must arrive promptly; a connection that never identifies
	// itself is dropped rather than tracked.
	cd.SetReadDeadline(time.Now().Add(10 * time.Second))
	t, payload, err := cd.Recv()
	if err != nil || t != msgHello {
		return
	}
	var hello helloMsg
	if decode(t, payload, &hello) != nil {
		return
	}
	if hello.Proto < ProtoVersionMin || hello.Proto > ProtoVersion {
		cd.Send(msgError, errorMsg{Reason: fmt.Sprintf(
			"protocol version mismatch: worker speaks %d, coordinator accepts %d–%d",
			hello.Proto, ProtoVersionMin, ProtoVersion)})
		return
	}
	if hello.NBias != c.nBias || hello.NK != c.nK || hello.NE != c.nE {
		cd.Send(msgError, errorMsg{Reason: fmt.Sprintf(
			"task grid mismatch: worker configured for %d×%d×%d, coordinator for %d×%d×%d (check that both processes share the same flags)",
			hello.NBias, hello.NK, hello.NE, c.nBias, c.nK, c.nE)})
		return
	}
	if c.opts.SpecHash != "" && hello.SpecHash != c.opts.SpecHash {
		cd.Send(msgError, errorMsg{Reason: fmt.Sprintf(
			"run-spec mismatch: worker spec %.16s…, coordinator %.16s… — the worker was launched with a different device/grid/solver configuration and its results would not belong to this sweep",
			hello.SpecHash, c.opts.SpecHash)})
		return
	}

	// Wire negotiation: binary only when the worker advertised it (which
	// implies v4) and this coordinator offers it; everything else — v3
	// workers in particular — gets the JSON wire.
	wire := wireJSON
	if hello.Proto >= 4 && hello.Wire == wireBin && c.opts.binWire() {
		wire = wireBin
	}
	w := c.register(cd, hello.ID, wire)
	if w == nil {
		// The run is over (or draining): dismiss explicitly so the late
		// worker exits cleanly instead of reading the close as a crash.
		cd.Send(msgDone, doneMsg{Epoch: c.opts.Epoch})
		return
	}
	defer c.unregister(w)
	if err := cd.Send(msgWelcome, welcomeMsg{
		NBias: c.nBias, NK: c.nK, NE: c.nE,
		SpecHash:       c.opts.SpecHash,
		RunID:          c.opts.RunID,
		Epoch:          c.opts.Epoch,
		HeartbeatEvery: c.opts.HeartbeatEvery,
		LeaseTimeout:   c.opts.LeaseTimeout,
		Wire:           wire,
	}); err != nil {
		return
	}

	// Liveness: every inbound frame (heartbeats included) refreshes the
	// read deadline; three missed heartbeats kill the connection, which
	// releases the worker's leases via the deferred unregister.
	silence := 3*c.opts.HeartbeatEvery + time.Second
	for {
		cd.SetReadDeadline(time.Now().Add(silence))
		t, payload, err := cd.Recv()
		if err != nil {
			return
		}
		switch t {
		case msgLeaseRequest:
			var req leaseRequestMsg
			if decode(t, payload, &req) != nil {
				return
			}
			lease, over := c.grant(w, req.Capacity)
			if over {
				if err := cd.Send(msgDone, doneMsg{Epoch: c.opts.Epoch}); err != nil {
					return
				}
				continue // the worker answers with a bye
			}
			if w.wire == wireBin {
				err = cd.SendBin(msgLeaseBin, func(bw *comms.BinWriter) { appendLeaseBin(bw, lease) })
			} else {
				err = cd.Send(msgLease, lease)
			}
			if err != nil {
				return
			}
		case msgResult:
			var res resultMsg
			if decode(t, payload, &res) != nil {
				return
			}
			if err := c.applyResult(w, res); err != nil {
				c.fail(err)
				return
			}
		case msgResultBatch:
			var batch resultBatchMsg
			if decode(t, payload, &batch) != nil {
				return
			}
			for _, res := range batch.Results {
				if err := c.applyResult(w, res); err != nil {
					c.fail(err)
					return
				}
			}
		case msgResultBatchBin:
			batch, err := decodeResultBatchBin(payload)
			if err != nil {
				return // malformed frame: drop the worker, leases re-dispatch
			}
			for _, res := range batch {
				if err := c.applyResult(w, res); err != nil {
					c.fail(err)
					return
				}
			}
		case msgHeartbeat, msgHeartbeatBin:
			// The deadline refresh above is the entire effect.
		case msgBye:
			return
		default:
			return // protocol violation: drop the worker
		}
	}
}

// register admits a worker under a unique id, homing it on the next
// shard round-robin, or returns nil when the run is already over or
// draining.
func (c *coordinator) register(cd *comms.Codec, id, wire string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failure != nil || c.draining {
		return nil
	}
	c.workersSeen++
	if id == "" {
		id = fmt.Sprintf("worker-%d", c.workersSeen)
	}
	if _, dup := c.workers[id]; dup {
		id = fmt.Sprintf("%s#%d", id, c.workersSeen)
	}
	w := &workerState{id: id, cd: cd, leased: make(map[int]bool), wire: wire, home: c.nextHome}
	c.nextHome = (c.nextHome + 1) % len(c.shards)
	c.workers[id] = w
	return w
}

// unregister removes a worker and returns its unfinished leases to the
// pending queue — the immediate re-dispatch path for crashed workers.
func (c *coordinator) unregister(w *workerState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, w.id)
	for idx := range w.leased {
		delete(w.leased, idx)
		if c.st[idx].phase == stateLeased && c.st[idx].worker == w.id {
			c.st[idx].phase = statePending
			c.st[idx].worker = ""
			c.requeueLocked(idx)
			c.redispatched++
		}
	}
	c.maybeFinishDrainLocked()
}

// grant answers one lease request; over=true means the worker should be
// dismissed with done — the sweep is complete, failed, or draining (a
// draining coordinator grants nothing new; a dismissed worker has by
// construction no results in flight, since it only asks after finishing
// its previous batch). The grant comes from the worker's home shard
// when it has pending work, and is stolen from the most loaded shard
// otherwise.
func (c *coordinator) grant(w *workerState, capacity int) (lease leaseMsg, over bool) {
	if capacity < 1 {
		capacity = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.failure != nil || c.remaining == 0 || c.draining {
		return leaseMsg{}, true
	}
	if c.heldLocked(w) {
		// Failure-drill hold: this worker's home shard is frozen, and it
		// may neither drain it nor steal — the other shards must come get
		// its work.
		return leaseMsg{RetryAfter: c.opts.RetryAfter}, false
	}
	tasks, stolen := c.popShardedLocked(w.home, capacity)
	if len(tasks) == 0 {
		// Everything pending is leased elsewhere; reclaim stragglers
		// opportunistically before telling the worker to wait.
		c.reclaimExpiredLocked(time.Now())
		tasks, stolen = c.popShardedLocked(w.home, capacity)
	}
	if len(tasks) == 0 {
		return leaseMsg{RetryAfter: c.opts.RetryAfter}, false
	}
	if stolen {
		c.steals++
	}
	c.grants++
	if len(tasks) > 1 {
		c.batchedGrant++
	}
	deadline := time.Now().Add(c.opts.LeaseTimeout)
	for _, idx := range tasks {
		c.st[idx] = taskState{phase: stateLeased, worker: w.id, deadline: deadline}
		w.leased[idx] = true
	}
	return leaseMsg{Tasks: tasks, TTL: c.opts.LeaseTimeout}, false
}

// heldLocked reports whether the failure-drill shard hold currently
// freezes this worker's grants (see Options.ShardHold).
func (c *coordinator) heldLocked(w *workerState) bool {
	return c.opts.ShardHold > 0 && len(c.shards) > 1 && w.home == 0 &&
		time.Since(c.start) < c.opts.ShardHold
}

// popShardedLocked pops up to n tasks for a worker homed on shard home:
// from its own queue if possible, else a steal from the most loaded
// shard. stolen reports the steal (for the counter; at most one victim
// per grant — a steal is a whole lease batch).
func (c *coordinator) popShardedLocked(home, n int) (tasks []int, stolen bool) {
	if tasks = c.popPendingLocked(home, n); len(tasks) > 0 {
		return tasks, false
	}
	for {
		victim, max := -1, 0
		for sh := range c.shards {
			if sh != home && len(c.shards[sh]) > max {
				victim, max = sh, len(c.shards[sh])
			}
		}
		if victim < 0 {
			return nil, false
		}
		if tasks = c.popPendingLocked(victim, n); len(tasks) > 0 {
			return tasks, true
		}
		// The victim's queue was all stale entries and is now drained;
		// look for the next-most-loaded shard.
	}
}

// popPendingLocked removes up to n indices from the head of one shard's
// queue, returning only those still pending. A queue entry can go stale:
// when a reclaimed task's original holder reports before the
// re-dispatched copy is granted, applyResult accepts the straggler's
// result directly from statePending and the re-queued index now names a
// finished task. Handing such an index out again would overwrite
// stateDone with stateLeased and let a second result be accepted — a
// duplicate journal record and a double decrement of remaining — so
// stale entries are dropped here.
func (c *coordinator) popPendingLocked(sh, n int) []int {
	var tasks []int
	q := c.shards[sh]
	for len(tasks) < n && len(q) > 0 {
		idx := q[0]
		q = q[1:]
		if c.st[idx].phase != statePending {
			continue
		}
		tasks = append(tasks, idx)
	}
	c.shards[sh] = q
	return tasks
}

// requeueLocked returns a reclaimed task to its home shard's queue.
func (c *coordinator) requeueLocked(idx int) {
	sh := c.shardOf(idx)
	c.shards[sh] = append(c.shards[sh], idx)
}

// reclaimExpiredLocked returns every lease past its deadline to the
// pending queues. The holder may still be running the task — that is the
// straggler case, and whichever execution reports first wins.
func (c *coordinator) reclaimExpiredLocked(now time.Time) {
	for idx := range c.st {
		s := &c.st[idx]
		if s.phase != stateLeased || now.Before(s.deadline) {
			continue
		}
		if w := c.workers[s.worker]; w != nil {
			delete(w.leased, idx)
		}
		s.phase = statePending
		s.worker = ""
		c.requeueLocked(idx)
		c.redispatched++
	}
}

// reap periodically reclaims expired leases so re-dispatch does not wait
// for the next lease request.
func (c *coordinator) reap(ctx context.Context) {
	interval := c.opts.LeaseTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			c.mu.Lock()
			if !c.finished && c.failure == nil {
				c.reclaimExpiredLocked(now)
				// During a drain, an expired lease resolves it: the task is
				// safely pending again and will be re-dispatched on resume.
				c.maybeFinishDrainLocked()
			}
			c.mu.Unlock()
		}
	}
}

// applyResult commits one worker-reported result. Duplicates (a task the
// first responder already finished, or is committing right now) are
// discarded along with their perf delta, so re-dispatched stragglers can
// never double-count a task — note the flop-exactness caveat on
// Report.Perf about what discarding a delta means for concurrent pools.
// The first-wins decision is made under c.mu, but the journal append
// (fsync'd in coordinator deployments) and the Restore call happen
// outside it, under commitMu, so result I/O never stalls lease grants,
// heartbeat handling, or the reaper. The returned error, if any, is
// fatal to the whole run.
func (c *coordinator) applyResult(w *workerState, res resultMsg) error {
	c.mu.Lock()
	if res.Task < 0 || res.Task >= c.total {
		c.mu.Unlock()
		return fmt.Errorf("distrib: worker %s reported task %d outside the %d-task grid", w.id, res.Task, c.total)
	}
	if res.Epoch != 0 && c.opts.Epoch != 0 && res.Epoch != c.opts.Epoch {
		// Epoch fence: the worker computed this under a previous
		// coordinator incarnation. The restarted coordinator re-seeded its
		// lease table from the journal, so the task is either already done
		// or owned by a fresh lease — either way this result is stale.
		c.staleEpoch++
		c.mu.Unlock()
		return nil
	}
	delete(w.leased, res.Task)
	s := &c.st[res.Task]
	if s.phase == stateCommitting || s.phase == stateDone || s.phase == stateQuarantined {
		c.mu.Unlock() // first result won; this one is a re-dispatch echo
		return nil
	}
	c.retries += res.Retries
	task := cluster.TaskAt(res.Task, c.nK, c.nE)

	if res.Failed {
		if !c.opts.Quarantine {
			c.mu.Unlock()
			return fmt.Errorf("distrib: task %d (bias %d, k %d, E %d) failed on worker %s: %s",
				res.Task, task.Bias, task.K, task.E, w.id, res.Error)
		}
		if len(c.quarantined) >= c.maxQuarantine {
			c.mu.Unlock()
			return fmt.Errorf("distrib: quarantine budget (%d tasks) exceeded: task %d failed on worker %s: %s",
				c.maxQuarantine, res.Task, w.id, res.Error)
		}
		s.phase = stateQuarantined
		s.worker = w.id
		c.quarantined = append(c.quarantined, res.Task)
		c.perf.Add(res.Perf)
		c.noteDoneLocked()
		c.maybeFinishDrainLocked()
		c.mu.Unlock()
		c.progress()
		return nil
	}

	// Claim the task so concurrent duplicates are turned away, then do
	// the I/O without blocking the rest of the coordinator. On error the
	// task stays in stateCommitting — harmless, because the caller fails
	// the whole run and stateCommitting is never re-dispatched.
	s.phase = stateCommitting
	s.worker = w.id
	c.mu.Unlock()

	c.commitMu.Lock()
	if c.opts.Journal != nil {
		// Persist the perf delta alongside the payload so a restarted
		// coordinator can re-sum exactly what this incarnation counted.
		// The shard tag (which scheduling shard owns the task) is pure
		// provenance — outside the digest, like the perf delta, so old
		// journals and single-shard runs are unaffected.
		delta := res.Perf
		if err := c.opts.Journal.Append(cluster.TaskRecord{
			Index: res.Task, Payload: res.Payload, Perf: &delta, Shard: c.shardOf(res.Task),
		}); err != nil {
			c.commitMu.Unlock()
			return fmt.Errorf("distrib: journal: %w", err)
		}
	}
	if c.opts.Restore != nil {
		if err := c.opts.Restore(task, res.Payload); err != nil {
			c.commitMu.Unlock()
			return fmt.Errorf("distrib: restore task %d from worker %s: %w", res.Task, w.id, err)
		}
	}
	c.commitMu.Unlock()

	c.mu.Lock()
	s.phase = stateDone
	c.completed++
	c.perf.Add(res.Perf)
	c.noteDoneLocked()
	c.maybeFinishDrainLocked()
	c.mu.Unlock()
	if c.opts.OnResult != nil {
		c.opts.OnResult(task, res.Payload)
	}
	c.progress()
	return nil
}

// noteDoneLocked retires one task and completes the run when it was the
// last.
func (c *coordinator) noteDoneLocked() {
	c.remaining--
	if c.remaining == 0 && !c.finished {
		c.finished = true
		close(c.done)
	}
}

// progress reports completion to the observer.
func (c *coordinator) progress() {
	if c.opts.OnProgress == nil {
		return
	}
	c.mu.Lock()
	done := c.restored + c.completed + len(c.quarantined)
	c.mu.Unlock()
	c.opts.OnProgress(done, c.total)
}

// fail records the first fatal error and tears the run down.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	already := c.finished
	c.finished = true
	c.mu.Unlock()
	if !already {
		close(c.done)
	}
}

// closeConns drops every live worker connection, unblocking their
// handlers.
func (c *coordinator) closeConns() {
	c.mu.Lock()
	conns := make([]*comms.Codec, 0, len(c.workers))
	for _, w := range c.workers {
		conns = append(conns, w.cd)
	}
	c.mu.Unlock()
	for _, cd := range conns {
		cd.Close()
	}
}
